package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTinySystem(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 400); err != nil {
		t.Fatalf("precond demo failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "matrix: n=400") {
		t.Fatalf("header missing:\n%s", s)
	}
	for _, pc := range []string{"Jacobi", "Neumann-2"} {
		if !strings.Contains(s, pc) {
			t.Fatalf("result row for %s missing:\n%s", pc, s)
		}
	}
}
