// Precond demonstrates the extension the paper's conclusion calls for:
// protecting a *preconditioned* CG, where the preconditioner itself — an
// explicit sparse approximate inverse applied as an SpMxV — gets the same
// ABFT checksum protection as the system matrix, and both live in
// corruptible memory.
//
// Run with:
//
//	go run ./examples/precond
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/precond"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func main() {
	if err := run(os.Stdout, 4000); err != nil {
		fmt.Fprintf(os.Stderr, "precond: %v\n", err)
		os.Exit(1)
	}
}

// run solves one n×n SPD system under faults with two protected
// preconditioners. The smoke tests call it with a tiny n.
func run(w io.Writer, n int) error {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: n, Density: 0.005, Seed: 11})
	b, xTrue := sim.RHS(a, 11)

	jacobi, err := precond.Jacobi(a)
	if err != nil {
		return err
	}
	neumann, err := precond.Neumann(a, precond.NeumannOptions{Terms: 2})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "matrix: n=%d nnz=%d; Neumann approximate inverse: nnz=%d\n\n",
		a.Rows, a.NNZ(), neumann.NNZ())

	for _, pc := range []struct {
		name string
		m    *sparse.CSR
	}{{"Jacobi", jacobi}, {"Neumann-2", neumann}} {
		inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 77})
		x, st, err := core.SolvePCG(a, b, core.PCGConfig{
			Scheme:   core.ABFTCorrection,
			M:        pc.m,
			Tol:      1e-9,
			Injector: inj,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", pc.name, err)
		}
		fmt.Fprintf(w, "%-10s iters=%-4d faults=%-3d corrected=%-3d rollbacks=%-2d residual=%.2e err=%.2e\n",
			pc.name, st.UsefulIterations, st.FaultsInjected, st.Corrections,
			st.Rollbacks, st.FinalResidual, vec.MaxAbsDiff(x, xTrue))
	}
	fmt.Fprintln(w, "\nBoth preconditioners are protected by the same checksum rows as A;")
	fmt.Fprintln(w, "faults striking the preconditioner arrays are corrected in place.")
	return nil
}
