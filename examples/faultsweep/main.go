// Faultsweep compares the three resilient schemes of the paper across a
// range of fault rates on one matrix of the test suite — a one-matrix
// version of the paper's Figure 1. The repetitions at each point fan out
// across the shared worker pool.
//
// Run with:
//
//	go run ./examples/faultsweep
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Stdout, 24, 10); err != nil {
		fmt.Fprintf(os.Stderr, "faultsweep: %v\n", err)
		os.Exit(1)
	}
}

// run sweeps matrix #341 at the given downscale with reps repetitions per
// point. The smoke tests call it heavily downscaled with a single rep.
func run(w io.Writer, scale, reps int) error {
	sm, ok := sim.SuiteByID(341)
	if !ok {
		return fmt.Errorf("suite matrix 341 missing")
	}
	a := sm.Generate(scale) // nnz/row is preserved under downscaling
	b, _ := sim.RHS(a, 7)

	fmt.Fprintf(w, "matrix #%d at 1/%d scale: n=%d, nnz=%d\n\n", sm.ID, scale, a.Rows, a.NNZ())
	fmt.Fprintf(w, "%-14s %-20s %-20s %-20s\n", "MTBF (1/α)",
		core.OnlineDetection, core.ABFTDetection, core.ABFTCorrection)

	pl := pool.Default()
	for _, mtbf := range []float64{16, 50, 100, 1000, 10000} {
		fmt.Fprintf(w, "%-14.0f", mtbf)
		for _, scheme := range core.Schemes {
			mean, _, fails := sim.AverageTimePool(pl, a, b, scheme, 1/mtbf, 0, 0, 1e-8, 99, reps)
			marker := ""
			if fails > 0 {
				marker = "*"
			}
			fmt.Fprintf(w, " %-19s", fmt.Sprintf("%.4fs%s", mean, marker))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n(averages over %d runs; * marks runs that failed to converge)\n", reps)
	fmt.Fprintln(w, "Expected shape, as in the paper: ABFT-Correction wins at high")
	fmt.Fprintln(w, "fault rates by correcting forward instead of rolling back; at")
	fmt.Fprintln(w, "very low rates its extra checksums make it slightly slower.")
	return nil
}
