// Faultsweep compares the three resilient schemes of the paper across a
// range of fault rates on one matrix of the test suite — a one-matrix
// version of the paper's Figure 1.
//
// Run with:
//
//	go run ./examples/faultsweep
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	sm, _ := sim.SuiteByID(341)
	a := sm.Generate(24) // downscaled for a quick demo; nnz/row is preserved
	b, _ := sim.RHS(a, 7)

	fmt.Printf("matrix #%d at 1/24 scale: n=%d, nnz=%d\n\n", sm.ID, a.Rows, a.NNZ())
	fmt.Printf("%-14s %-20s %-20s %-20s\n", "MTBF (1/α)",
		core.OnlineDetection, core.ABFTDetection, core.ABFTCorrection)

	for _, mtbf := range []float64{16, 50, 100, 1000, 10000} {
		fmt.Printf("%-14.0f", mtbf)
		for _, scheme := range core.Schemes {
			mean, _, fails := sim.AverageTime(a, b, scheme, 1/mtbf, 0, 0, 1e-8, 99, 10)
			marker := ""
			if fails > 0 {
				marker = "*"
			}
			fmt.Printf(" %-19s", fmt.Sprintf("%.4fs%s", mean, marker))
		}
		fmt.Println()
	}
	fmt.Println("\n(averages over 10 runs; * marks runs that failed to converge)")
	fmt.Println("Expected shape, as in the paper: ABFT-Correction wins at high")
	fmt.Println("fault rates by correcting forward instead of rolling back; at")
	fmt.Println("very low rates its extra checksums make it slightly slower.")
}
