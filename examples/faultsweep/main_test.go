package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTinySweep(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 128, 1); err != nil {
		t.Fatalf("faultsweep demo failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "matrix #341") {
		t.Fatalf("header missing:\n%s", s)
	}
	// One row per MTBF point.
	for _, mtbf := range []string{"16 ", "50 ", "100 ", "1000 ", "10000 "} {
		if !strings.Contains(s, mtbf) {
			t.Fatalf("sweep row for MTBF %s missing:\n%s", mtbf, s)
		}
	}
}
