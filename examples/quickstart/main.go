// Quickstart: solve a 2D Poisson system with the ABFT-Correction resilient
// CG while silent errors strike the matrix and the solver vectors, and
// print what the protection machinery did.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func main() {
	// A 100×100 Poisson grid: the classic SPD test problem.
	if err := run(os.Stdout, 100); err != nil {
		log.Fatalf("solve failed: %v", err)
	}
}

// run solves the side×side Poisson system under fault injection and writes
// the report to w. The smoke tests call it with a tiny grid.
func run(w io.Writer, side int) error {
	a := sparse.Poisson2D(side, side)
	b, xTrue := sim.RHS(a, 1)

	// One expected silent error every 16 CG iterations — the fault rate of
	// the paper's Table 1.
	inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 2024})

	x, st, err := core.Solve(a, b, core.Config{
		Scheme:   core.ABFTCorrection,
		Tol:      1e-10,
		Injector: inj,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "solved %dx%d system (%d nonzeros) with %v\n",
		a.Rows, a.Cols, a.NNZ(), st.Scheme)
	fmt.Fprintf(w, "  iterations: %d useful, %d executed\n", st.UsefulIterations, st.TotalIterations)
	fmt.Fprintf(w, "  faults:     %d injected, %d detected\n", st.FaultsInjected, st.Detections)
	fmt.Fprintf(w, "  recovery:   %d corrected forward, %d rollbacks\n", st.Corrections, st.Rollbacks)
	fmt.Fprintf(w, "  residual:   %.2e   solution error: %.2e\n",
		st.FinalResidual, vec.MaxAbsDiff(x, xTrue))
	fmt.Fprintf(w, "  model time: %.4f s (checkpoints: %d at interval s=%d)\n",
		st.SimTime, st.Checkpoints, st.S)
	return nil
}
