// Quickstart: solve a 2D Poisson system with the ABFT-Correction resilient
// CG while silent errors strike the matrix and the solver vectors, and
// print what the protection machinery did.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func main() {
	// A 100×100 Poisson grid: the classic SPD test problem.
	a := sparse.Poisson2D(100, 100)
	b, xTrue := sim.RHS(a, 1)

	// One expected silent error every 16 CG iterations — the fault rate of
	// the paper's Table 1.
	inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 2024})

	x, st, err := core.Solve(a, b, core.Config{
		Scheme:   core.ABFTCorrection,
		Tol:      1e-10,
		Injector: inj,
	})
	if err != nil {
		log.Fatalf("solve failed: %v", err)
	}

	fmt.Printf("solved %dx%d system (%d nonzeros) with %v\n",
		a.Rows, a.Cols, a.NNZ(), st.Scheme)
	fmt.Printf("  iterations: %d useful, %d executed\n", st.UsefulIterations, st.TotalIterations)
	fmt.Printf("  faults:     %d injected, %d detected\n", st.FaultsInjected, st.Detections)
	fmt.Printf("  recovery:   %d corrected forward, %d rollbacks\n", st.Corrections, st.Rollbacks)
	fmt.Printf("  residual:   %.2e   solution error: %.2e\n",
		st.FinalResidual, vec.MaxAbsDiff(x, xTrue))
	fmt.Printf("  model time: %.4f s (checkpoints: %d at interval s=%d)\n",
		st.SimTime, st.Checkpoints, st.S)
}
