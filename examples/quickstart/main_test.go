package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallGrid(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 12); err != nil {
		t.Fatalf("quickstart on a 12x12 grid failed: %v", err)
	}
	if !strings.Contains(out.String(), "solved 144x144 system") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ABFT-Correction") {
		t.Fatal("report must name the scheme")
	}
}
