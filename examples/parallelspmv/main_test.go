package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallMatrix(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 400); err != nil {
		t.Fatalf("parallelspmv demo failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "clean product:        detected=false") {
		t.Fatalf("clean product report wrong:\n%s", s)
	}
	if !strings.Contains(s, "one Val flip:         detected=true") {
		t.Fatalf("single-flip report wrong:\n%s", s)
	}
	if !strings.Contains(s, "two flips, 2 blocks:  detected=true") {
		t.Fatalf("double-flip report wrong:\n%s", s)
	}
}
