// Parallelspmv demonstrates the row-block parallel ABFT SpMxV from the
// paper's introduction: each goroutine owns a block of rows with its own
// local checksums, so errors in different blocks are detected — and single
// errors per block corrected — independently and concurrently.
//
// Run with:
//
//	go run ./examples/parallelspmv
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/bitflip"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

func main() {
	n := 2000
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.01, DiagShift: 1, Seed: 5})
	p := parallel.New(a, 8)
	fmt.Printf("matrix: n=%d, nnz=%d, partitioned into %d row blocks\n\n", n, a.NNZ(), p.Blocks())

	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)

	// Clean product.
	out := p.MulVec(y, x)
	fmt.Printf("clean product:        detected=%v\n", out.Detected)

	// One error: a bit flip in a matrix value.
	k1 := a.Rowidx[100]
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61)
	out = p.MulVec(y, x)
	fmt.Printf("one Val flip:         detected=%v in blocks %v\n", out.Detected, out.BlockErrors)
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61) // restore

	// Two simultaneous errors in two different blocks: the sequential
	// single-error decoder would have to roll back; the block scheme
	// localises both independently.
	k1 = a.Rowidx[50]      // block 0
	k2 := a.Rowidx[n/2+50] // a middle block
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61)
	a.Val[k2] = bitflip.Float64(a.Val[k2], 61)
	out = p.MulVec(y, x)
	fmt.Printf("two flips, 2 blocks:  detected=%v in blocks %v\n", out.Detected, out.BlockErrors)
	fmt.Println("\nLocal detection in each block implies global detection for the")
	fmt.Println("whole SpMxV — the property the paper uses to argue the scheme")
	fmt.Println("carries over to message-passing implementations unchanged.")
}
