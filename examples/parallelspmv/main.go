// Parallelspmv demonstrates the row-block parallel ABFT SpMxV from the
// paper's introduction: each block of rows owns its own local checksums and
// is verified concurrently on the shared worker pool, so errors in
// different blocks are detected — and single errors per block corrected —
// independently.
//
// Run with:
//
//	go run ./examples/parallelspmv
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/bitflip"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

func main() {
	if err := run(os.Stdout, 2000); err != nil {
		fmt.Fprintf(os.Stderr, "parallelspmv: %v\n", err)
		os.Exit(1)
	}
}

// run demonstrates block-local detection and correction on an n×n random
// SPD matrix. The smoke tests call it with a tiny n.
func run(w io.Writer, n int) error {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.01, DiagShift: 1, Seed: 5})
	p := parallel.New(a, 8)
	fmt.Fprintf(w, "matrix: n=%d, nnz=%d, partitioned into %d row blocks\n\n", n, a.NNZ(), p.Blocks())

	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)

	// Clean product.
	out := p.MulVec(y, x)
	fmt.Fprintf(w, "clean product:        detected=%v\n", out.Detected)
	if out.Detected {
		return fmt.Errorf("false positive on the clean product")
	}

	// One error: a bit flip in a matrix value.
	k1 := a.Rowidx[n/20]
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61)
	out = p.MulVec(y, x)
	fmt.Fprintf(w, "one Val flip:         detected=%v in blocks %v\n", out.Detected, out.BlockErrors)
	if !out.Detected {
		return fmt.Errorf("single Val flip went undetected")
	}
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61) // restore

	// Two simultaneous errors in two different blocks: the sequential
	// single-error decoder would have to roll back; the block scheme
	// localises both independently.
	k1 = a.Rowidx[n/40]      // an early block
	k2 := a.Rowidx[n/2+n/40] // a middle block
	a.Val[k1] = bitflip.Float64(a.Val[k1], 61)
	a.Val[k2] = bitflip.Float64(a.Val[k2], 61)
	out = p.MulVec(y, x)
	fmt.Fprintf(w, "two flips, 2 blocks:  detected=%v in blocks %v\n", out.Detected, out.BlockErrors)
	if !out.Detected {
		return fmt.Errorf("double flip went undetected")
	}
	fmt.Fprintln(w, "\nLocal detection in each block implies global detection for the")
	fmt.Fprintln(w, "whole SpMxV — the property the paper uses to argue the scheme")
	fmt.Fprintln(w, "carries over to message-passing implementations unchanged.")
	return nil
}
