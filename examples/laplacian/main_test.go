package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTinyLaplacian(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 120); err != nil {
		t.Fatalf("laplacian demo failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "graph Laplacian: n=120") {
		t.Fatalf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "error DETECTED") {
		t.Fatalf("shifted test must detect the corruption:\n%s", s)
	}
	if !strings.Contains(s, "detected=true") {
		t.Fatalf("full ABFT must report detection:\n%s", s)
	}
}
