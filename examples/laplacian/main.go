// Laplacian demonstrates the paper's shifted-checksum fix (Section 3.2):
// graph Laplacians have exactly zero column sums, so the unshifted
// checksum test of Shantharam et al. is blind to errors striking the input
// vector — the shift constant k restores detection without restricting the
// matrix class.
//
// Run with:
//
//	go run ./examples/laplacian
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/abft"
	"repro/internal/checksum"
	"repro/internal/sparse"
)

func main() {
	if err := run(os.Stdout, 500); err != nil {
		fmt.Fprintf(os.Stderr, "laplacian: %v\n", err)
		os.Exit(1)
	}
}

// run demonstrates the shifted test on the combinatorial Laplacian of a
// random graph with n vertices. The smoke tests call it with a tiny graph.
func run(w io.Writer, n int) error {
	// The combinatorial Laplacian of a random graph: every column sums to 0.
	a := sparse.RandomGraphLaplacian(n, 6, 0, 42)
	cs := checksum.NewMatrix(a)

	zeroCols := 0
	for _, c := range cs.C1 {
		if c == 0 {
			zeroCols++
		}
	}
	fmt.Fprintf(w, "graph Laplacian: n=%d, nnz=%d, zero-sum columns: %d of %d\n",
		n, a.NNZ(), zeroCols, n)
	fmt.Fprintf(w, "shift constant k = %v (chosen so every shifted checksum is nonzero)\n\n", cs.K)

	// Corrupt one entry of the input vector AFTER taking its trusted copy.
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xPrime := append([]float64(nil), x...) // the paper's auxiliary copy x′
	hit := n / 4
	x[hit] += 2.5 // silent memory fault

	p := abft.NewProtected(a, abft.DetectCorrect)
	y := make([]float64, n)
	p.MulVec(y, x)

	// Unshifted test: C1ᵀx′ vs Σy. With all-zero checksums both sides see
	// nothing — the corruption is invisible.
	var unshifted float64
	for j := range xPrime {
		unshifted += cs.C1[j] * xPrime[j]
	}
	var sy float64
	for _, v := range y {
		sy += v
	}
	fmt.Fprintf(w, "unshifted test:  |C1ᵀx′ − Σy| = |%.3g − %.3g| = %.3g  → error INVISIBLE\n",
		unshifted, sy, abs(unshifted-sy))

	// The paper's shifted test sees it.
	if p.ShiftedTest(y, x, xPrime) {
		fmt.Fprintln(w, "shifted test:    PASSED — this should not happen!")
		return fmt.Errorf("shifted test missed the corruption")
	}
	fmt.Fprintln(w, "shifted test:    FAILED as it should → error DETECTED")

	// And the full two-row machinery locates and repairs it.
	ref := checksum.NewVector(xPrime)
	out := p.Verify(y, x, ref, rowSums(p))
	fmt.Fprintf(w, "full ABFT:       detected=%v corrected=%v class=%v\n",
		out.Detected, out.Corrected, out.Class)
	fmt.Fprintf(w, "x[%d] repaired to %.6f (original %.6f)\n", hit, x[hit], xPrime[hit])
	return nil
}

func rowSums(p *abft.Protected) abft.RowSums {
	var sr abft.RowSums
	for idx, v := range p.A.Rowidx {
		fv := float64(v)
		sr.S1 += fv
		sr.S2 += float64(idx+1) * fv
	}
	return sr
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
