package repro

import (
	"testing"

	"repro/internal/abft"
	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// This file is the allocation-regression gate of the zero-allocation kernel
// engine: the protected product + verification and the steady-state solver
// iterations (a warm workspace-carrying solve) must not touch the heap.
// testing.AllocsPerRun reports average allocations per call, so any
// per-iteration allocation sneaking back into a hot path fails these tests
// deterministically.

// allocMatrix is a suite-shaped SPD test system, large enough that every
// kernel takes its real path but small enough for fast runs.
func allocMatrix(tb testing.TB) (*sparse.CSR, []float64) {
	tb.Helper()
	a := sparse.Poisson2D(24, 24)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return a, b
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up: workspaces, lazy scratch, encodings
	if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
	}
}

func TestZeroAllocProtectedMulVecVerify(t *testing.T) {
	a, b := allocMatrix(t)
	for _, mode := range []abft.Mode{abft.Detect, abft.DetectCorrect} {
		p := abft.NewProtected(a, mode)
		x := b
		ref := checksum.NewVector(x)
		y := make([]float64, a.Rows)
		assertZeroAllocs(t, "Protected.MulVec+Verify/"+mode.String(), func() {
			sr := p.MulVec(y, x)
			if out := p.Verify(y, x, ref, sr); out.Detected {
				t.Fatal("false positive")
			}
		})
	}
}

func TestZeroAllocProtectedReencode(t *testing.T) {
	a, _ := allocMatrix(t)
	p := abft.NewProtected(a, abft.DetectCorrect)
	assertZeroAllocs(t, "Protected.Reencode", p.Reencode)
}

func TestZeroAllocVectorGuard(t *testing.T) {
	_, b := allocMatrix(t)
	g := abft.NewGuard(b, abft.DetectCorrect)
	assertZeroAllocs(t, "VectorGuard.Check+Refresh", func() {
		if out := g.Check(b); out.Detected {
			t.Fatal("false positive")
		}
		g.Refresh(b)
	})
}

func TestZeroAllocSolverSteadyState(t *testing.T) {
	a, b := allocMatrix(t)
	ws := solver.NewWorkspace()
	opt := solver.Options{Tol: 1e-8, Ws: ws}

	cases := []struct {
		name string
		run  func() (solver.Result, error)
	}{
		{"CG", func() (solver.Result, error) { return solver.CG(a, b, opt) }},
		{"PCG", func() (solver.Result, error) { return solver.PCG(a, b, opt) }},
		{"BiCGstab", func() (solver.Result, error) { return solver.BiCGstab(a, b, opt) }},
	}
	for _, tc := range cases {
		tc.run() // warm the workspace
		assertZeroAllocs(t, "solver."+tc.name, func() {
			if _, err := tc.run(); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
	}
}

func TestZeroAllocCoreSolveSteadyState(t *testing.T) {
	a, b := allocMatrix(t)
	ws := core.NewWorkspace()
	for _, scheme := range []core.Scheme{core.ABFTDetection, core.ABFTCorrection, core.OnlineDetection} {
		cfg := core.Config{Scheme: scheme, Tol: 1e-8, S: 4, D: 2, Ws: ws}
		assertZeroAllocs(t, "core.Solve/"+scheme.String(), func() {
			if _, st, err := core.Solve(a, b, cfg); err != nil || !st.Converged {
				t.Fatalf("%v: err=%v converged=%v", scheme, err, st.Converged)
			}
		})
	}
}

func TestZeroAllocBlockedSolvers(t *testing.T) {
	a, b := allocMatrix(t)
	const k = 3
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = make([]float64, len(b))
		for i := range b {
			bs[j][i] = b[i] + float64(j)
		}
	}

	sws := solver.NewWorkspace()
	res := make([]solver.Result, k)
	serrs := make([]error, k)
	assertZeroAllocs(t, "solver.CGBlock", func() {
		if err := solver.CGBlock(a, bs, solver.BlockOptions{Tol: 1e-8, Ws: sws}, res, serrs); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if serrs[j] != nil || !res[j].Converged {
				t.Fatalf("lane %d: err=%v converged=%v", j, serrs[j], res[j].Converged)
			}
		}
	})

	bw := core.NewBlockWorkspace()
	sts := make([]core.Stats, k)
	errs := make([]error, k)
	for _, scheme := range []core.Scheme{core.ABFTDetection, core.ABFTCorrection} {
		cfg := core.BlockConfig{Scheme: scheme, Tol: 1e-8, S: 4, Ws: bw}
		assertZeroAllocs(t, "core.SolveBlock/"+scheme.String(), func() {
			if _, err := core.SolveBlock(a, bs, cfg, sts, errs); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < k; j++ {
				if errs[j] != nil || !sts[j].Converged {
					t.Fatalf("lane %d: err=%v converged=%v", j, errs[j], sts[j].Converged)
				}
			}
		})
	}
}

func TestZeroAllocPoolVecKernels(t *testing.T) {
	x := randVec(3*vec.BlockSize, 1)
	y := randVec(3*vec.BlockSize, 2)
	assertZeroAllocs(t, "vec.DotPool(nil)", func() { vec.DotPool(nil, x, y) })
	assertZeroAllocs(t, "vec.Norm2SqPool(nil)", func() { vec.Norm2SqPool(nil, x) })
}
