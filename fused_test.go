package repro

import (
	"math"
	"testing"

	"repro/internal/checksum"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// This file pins the bitwise contract of the fused kernel engine on every
// matrix of the paper suite: the fused SpMV+checksum kernels must produce
// exactly the bits of the unfused multi-pass code, and the parallel
// products must produce exactly the sequential bits at every worker count.

// suiteInstances generates a small instance of each of the nine paper
// suite matrices (scale keeps the row counts in the low thousands so the
// parallel paths engage without slowing the suite down).
func suiteInstances(tb testing.TB) map[int]*sparse.CSR {
	tb.Helper()
	out := make(map[int]*sparse.CSR, len(harness.PaperSuite))
	for _, sm := range harness.PaperSuite {
		out[sm.ID] = sm.Generate(8)
	}
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestFusedKernelsBitwiseOnSuite(t *testing.T) {
	for id, a := range suiteInstances(t) {
		x := randVec(a.Cols, int64(id))
		yRef := make([]float64, a.Rows)
		yFused := make([]float64, a.Rows)

		// Plain fused product vs MulVec + separate checksum pass.
		a.MulVec(yRef, x)
		s1Ref, s2Ref := checksum.Sums(yRef)
		s1, s2 := a.MulVecSums(yFused, x)
		if !bitsEqual(yRef, yFused) {
			t.Errorf("matrix %d: MulVecSums output differs from MulVec", id)
		}
		if math.Float64bits(s1) != math.Float64bits(s1Ref) || math.Float64bits(s2) != math.Float64bits(s2Ref) {
			t.Errorf("matrix %d: fused sums (%v,%v) != unfused (%v,%v)", id, s1, s2, s1Ref, s2Ref)
		}

		// Robust fused product vs MulVecRobust + sums + max-norm passes.
		a.MulVecRobust(yRef, x)
		s1Ref, s2Ref = checksum.Sums(yRef)
		var normRef float64
		for _, v := range yRef {
			if av := math.Abs(v); av > normRef {
				normRef = av
			}
		}
		s1, s2, normY := a.MulVecRobustSums(yFused, x)
		if !bitsEqual(yRef, yFused) {
			t.Errorf("matrix %d: MulVecRobustSums output differs from MulVecRobust", id)
		}
		if math.Float64bits(s1) != math.Float64bits(s1Ref) || math.Float64bits(s2) != math.Float64bits(s2Ref) {
			t.Errorf("matrix %d: fused robust sums differ", id)
		}
		if math.Float64bits(normY) != math.Float64bits(normRef) {
			t.Errorf("matrix %d: fused ‖y‖∞ %v != %v", id, normY, normRef)
		}
	}
}

func TestParallelProductsBitwiseAcrossWorkers(t *testing.T) {
	for id, a := range suiteInstances(t) {
		x := randVec(a.Cols, int64(id))
		yRef := make([]float64, a.Rows)
		a.MulVec(yRef, x)
		yRobustRef := make([]float64, a.Rows)
		a.MulVecRobust(yRobustRef, x)

		for _, workers := range []int{1, 2, 3, 4, 8} {
			p := pool.New(workers)
			y := make([]float64, a.Rows)
			a.MulVecParallel(p, y, x)
			if !bitsEqual(yRef, y) {
				t.Errorf("matrix %d: MulVecParallel differs at %d workers", id, workers)
			}
			a.MulVecRobustParallel(p, y, x)
			if !bitsEqual(yRobustRef, y) {
				t.Errorf("matrix %d: MulVecRobustParallel differs at %d workers", id, workers)
			}
			p.Close()
		}
	}
}

func TestBlockProtectedBitwiseAcrossWorkers(t *testing.T) {
	for id, a := range suiteInstances(t) {
		x := randVec(a.Cols, int64(id))
		pr := parallel.New(a, 8)
		yRef := make([]float64, a.Rows)
		if out := pr.MulVecOn(nil, yRef, x); out.Detected {
			t.Fatalf("matrix %d: false positive (sequential)", id)
		}
		for _, workers := range []int{2, 4} {
			p := pool.New(workers)
			y := make([]float64, a.Rows)
			if out := pr.MulVecOn(p, y, x); out.Detected {
				t.Fatalf("matrix %d: false positive at %d workers", id, workers)
			}
			if !bitsEqual(yRef, y) {
				t.Errorf("matrix %d: block-protected product differs at %d workers", id, workers)
			}
			p.Close()
		}
	}
}
