// Package precond implements the preconditioners the paper's conclusion
// singles out as compatible with its protection scheme: "diagonal,
// approximate inverse, and triangular preconditioners seem to be
// particularly attracting, since it should be possible to treat them by
// adapting the techniques described in this paper".
//
// The key observation is that a preconditioner applied as a sparse
// matrix–vector product (a Jacobi diagonal or an explicit sparse
// approximate inverse) is protected by exactly the ABFT-SpMxV machinery of
// internal/abft: its representation gets checksum rows, its application
// gets the same detect-2/correct-1 verification. The resilient PCG driver
// in internal/core does precisely that.
package precond

import (
	"fmt"

	"repro/internal/sparse"
)

// Jacobi returns the diagonal preconditioner M = D⁻¹ as an explicit sparse
// matrix, so it can be wrapped in the same ABFT protection as A. Returns an
// error if any diagonal entry is zero.
func Jacobi(a *sparse.CSR) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: Jacobi needs a square matrix")
	}
	d := a.Diag()
	c := sparse.NewCOO(a.Rows, a.Rows)
	for i, di := range d {
		if di == 0 {
			return nil, fmt.Errorf("precond: zero diagonal at row %d", i)
		}
		c.Add(i, i, 1/di)
	}
	return c.ToCSR(), nil
}

// NeumannOptions configures the truncated Neumann-series approximate
// inverse.
type NeumannOptions struct {
	// Terms is the number of series terms (≥ 1). One term is plain Jacobi;
	// two terms give M = D⁻¹(2I − A·D⁻¹), the classic first-order sparse
	// approximate inverse.
	Terms int
	// DropTol discards entries of the assembled inverse with absolute value
	// below DropTol × (max entry), keeping the preconditioner sparse. Zero
	// keeps everything.
	DropTol float64
}

// Neumann builds an explicit sparse approximate inverse from the truncated
// Neumann series
//
//	A⁻¹ ≈ Σ_{k<Terms} (I − D⁻¹A)ᵏ D⁻¹
//
// which converges for diagonally dominant A. The result is an explicit
// sparse matrix applied as an SpMxV — the approximate-inverse class the
// paper's conclusion targets. For SPD A with symmetric scaling the result
// is symmetrised to keep PCG's inner product well defined.
func Neumann(a *sparse.CSR, opt NeumannOptions) (*sparse.CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: Neumann needs a square matrix")
	}
	if opt.Terms < 1 {
		opt.Terms = 2
	}
	n := a.Rows
	d := a.Diag()
	for i, di := range d {
		if di == 0 {
			return nil, fmt.Errorf("precond: zero diagonal at row %d", i)
		}
		_ = i
	}

	switch opt.Terms {
	case 1:
		return Jacobi(a)
	case 2:
		// M = 2·D⁻¹ − D⁻¹·A·D⁻¹, assembled entrywise: M[i][j] =
		// 2/d_i·δ_ij − a_ij/(d_i·d_j). Symmetric whenever A is.
		c := sparse.NewCOO(n, n)
		maxAbs := 0.0
		type entry struct {
			i, j int
			v    float64
		}
		var entries []entry
		for i := 0; i < n; i++ {
			for k := a.Rowidx[i]; k < a.Rowidx[i+1]; k++ {
				j := a.Colid[k]
				v := -a.Val[k] / (d[i] * d[j])
				if i == j {
					v += 2 / d[i]
				}
				if v != 0 {
					entries = append(entries, entry{i, j, v})
					if av := abs(v); av > maxAbs {
						maxAbs = av
					}
				}
			}
		}
		thresh := opt.DropTol * maxAbs
		for _, e := range entries {
			if e.i == e.j || abs(e.v) >= thresh {
				c.Add(e.i, e.j, e.v)
			}
		}
		return c.ToCSR(), nil
	default:
		return nil, fmt.Errorf("precond: Neumann supports 1 or 2 terms, got %d", opt.Terms)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ConditionProxy estimates the Jacobi-scaled diagonal spread max(d)/min(d)
// as a cheap proxy for how much diagonal preconditioning can help. Purely
// diagnostic.
func ConditionProxy(a *sparse.CSR) float64 {
	d := a.Diag()
	lo, hi := 0.0, 0.0
	for i, v := range d {
		av := abs(v)
		if i == 0 || av < lo {
			lo = av
		}
		if av > hi {
			hi = av
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}
