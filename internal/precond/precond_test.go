package precond

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/vec"
)

func TestJacobi(t *testing.T) {
	a := sparse.Tridiag(4, 2, -1)
	m, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("Jacobi nnz = %d, want 4", m.NNZ())
	}
	for i := 0; i < 4; i++ {
		if m.At(i, i) != 0.5 {
			t.Fatalf("M[%d][%d] = %v, want 0.5", i, i, m.At(i, i))
		}
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	a := sparse.Dense(2, 2, []float64{0, 1, 1, 0})
	if _, err := Jacobi(a); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestJacobiNonSquare(t *testing.T) {
	a := sparse.Dense(2, 3, make([]float64, 6))
	if _, err := Jacobi(a); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestNeumannOneTermIsJacobi(t *testing.T) {
	a := sparse.Tridiag(5, 2, -1)
	m1, err := Neumann(a, NeumannOptions{Terms: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := Jacobi(a)
	if !m1.Equal(j) {
		t.Fatal("one-term Neumann must equal Jacobi")
	}
}

func TestNeumannTwoTermsSymmetric(t *testing.T) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 60, Density: 0.1, DiagShift: 1, Seed: 3})
	m, err := Neumann(a, NeumannOptions{Terms: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(1e-14) {
		t.Fatal("two-term Neumann of symmetric A must be symmetric")
	}
}

func TestNeumannImprovesOverJacobi(t *testing.T) {
	// ‖I − M·A‖ should shrink going from 1 to 2 terms on a diagonally
	// dominant matrix. Measure via the residual of applying M to random
	// vectors: ‖M·A·v − v‖ / ‖v‖.
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 80, Density: 0.08, DiagShift: 2, Seed: 5})
	resid := func(m *sparse.CSR) float64 {
		n := a.Rows
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i%7) - 3
		}
		av := make([]float64, n)
		mav := make([]float64, n)
		a.MulVec(av, v)
		m.MulVec(mav, av)
		vec.Sub(mav, mav, v)
		return vec.Norm2(mav) / vec.Norm2(v)
	}
	m1, _ := Neumann(a, NeumannOptions{Terms: 1})
	m2, _ := Neumann(a, NeumannOptions{Terms: 2})
	r1, r2 := resid(m1), resid(m2)
	if r2 >= r1 {
		t.Fatalf("two-term residual %v not below one-term %v", r2, r1)
	}
}

func TestNeumannDropTol(t *testing.T) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 60, Density: 0.1, DiagShift: 1, Seed: 7})
	full, _ := Neumann(a, NeumannOptions{Terms: 2})
	dropped, _ := Neumann(a, NeumannOptions{Terms: 2, DropTol: 0.5})
	if dropped.NNZ() >= full.NNZ() {
		t.Fatalf("drop tolerance did not sparsify: %d vs %d", dropped.NNZ(), full.NNZ())
	}
	// Diagonal must be preserved regardless of dropping.
	for i := 0; i < 60; i++ {
		if dropped.At(i, i) == 0 {
			t.Fatalf("diagonal entry %d dropped", i)
		}
	}
}

func TestNeumannBadTerms(t *testing.T) {
	a := sparse.Tridiag(4, 2, -1)
	if _, err := Neumann(a, NeumannOptions{Terms: 3}); err == nil {
		t.Fatal("expected error for unsupported term count")
	}
}

func TestNeumannDefaultTerms(t *testing.T) {
	a := sparse.Tridiag(4, 2, -1)
	m, err := Neumann(a, NeumannOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() <= 4 {
		t.Fatal("default (2-term) Neumann should have off-diagonal entries")
	}
}

func TestConditionProxy(t *testing.T) {
	a := sparse.Dense(2, 2, []float64{1, 0, 0, 100})
	if got := ConditionProxy(a); math.Abs(got-100) > 1e-12 {
		t.Fatalf("ConditionProxy = %v, want 100", got)
	}
	z := sparse.Dense(2, 2, []float64{0, 1, 1, 0})
	if ConditionProxy(z) != 0 {
		t.Fatal("zero diagonal must give 0 proxy")
	}
}
