package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(7)
	r.CounterFunc("test_mapped_total", "Mapped counter.", func() float64 { return 42 })
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 3.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // beyond last bucket: only +Inf

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 7",
		"test_mapped_total 42",
		"# TYPE test_depth gauge",
		"test_depth 3.5",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.10 || got > 5.11 {
		t.Fatalf("Sum = %v, want ~5.105", got)
	}
}

// TestExpositionParses walks every line of a populated exposition and
// checks it is well-formed Prometheus text format: comments are HELP or
// TYPE, samples are "name[{le="..."}] value" with a parseable float.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.GaugeFunc("b", "B.", func() float64 { return 0.25 })
	r.Histogram("c_seconds", "C.", nil).Observe(0.002)

	var b strings.Builder
	r.WriteTo(&b)
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("no sample value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if name == "" {
			t.Fatalf("empty metric name: %q", line)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value %q in %q", val, line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") || !strings.Contains(name, `le="`) {
				t.Fatalf("bad label set: %q", line)
			}
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "", []float64{1, 2, 3})
	for i := 0; i < 6; i++ {
		h.Observe(float64(i) * 0.7) // 0, .7, 1.4, 2.1, 2.8, 3.5
	}
	var b strings.Builder
	r.WriteTo(&b)
	text := b.String()
	for _, want := range []string{
		`cum_seconds_bucket{le="1"} 2`,
		`cum_seconds_bucket{le="2"} 3`,
		`cum_seconds_bucket{le="3"} 5`,
		`cum_seconds_bucket{le="+Inf"} 6`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in\n%s", want, text)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.").Add(3)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 3") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: %d, want 405", rec.Code)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{0: "0", 7: "7", 3.5: "3.5", 0.001: "0.001"}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
