package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerMintAndReuse(t *testing.T) {
	tr := NewTracer("router", 8)
	a := tr.Start("")
	if a.ID() == "" || !ValidTraceID(a.ID()) {
		t.Fatalf("minted ID invalid: %q", a.ID())
	}
	minted := a.ID()
	tr.Finish(a)

	b := tr.Start("client-supplied_ID-42")
	if b.ID() != "client-supplied_ID-42" {
		t.Fatalf("valid inbound ID not reused: %q", b.ID())
	}
	tr.Finish(b)

	c := tr.Start("bad id with spaces")
	if c.ID() == "bad id with spaces" || !ValidTraceID(c.ID()) {
		t.Fatalf("invalid inbound ID should be replaced, got %q", c.ID())
	}
	if c.ID() == minted {
		t.Fatalf("minted IDs must be unique")
	}
	tr.Finish(c)
}

func TestValidTraceID(t *testing.T) {
	good := []string{"a", "A-Z_0-9", strings.Repeat("x", 64)}
	bad := []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "new\nline", "ünïcode"}
	for _, id := range good {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	for _, id := range bad {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestTraceSpansAndSolverEvents(t *testing.T) {
	tr := NewTracer("shard", 4)
	a := tr.Start("trace-1")
	a.AddSpan(SpanQueueWait, "", "", 100, 1000)
	a.AddSpan(SpanSolve, "s0", "pcg", 1100, 5000)
	a.Solver.Iterations = 17
	a.RecordDetection(9, 1, 1, false)
	a.FillSolver(SolverTallies{Iterations: 17, TotalIterations: 19, Detections: 1, Corrections: 1, Checkpoints: 3})
	a.SetError("")
	tr.Finish(a)

	recs := tr.Snapshot(0, "trace-1")
	if len(recs) != 1 {
		t.Fatalf("by-ID snapshot: got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if len(rec.Spans) != 2 || rec.Spans[0].Name != SpanQueueWait || rec.Spans[1].Name != SpanSolve {
		t.Fatalf("spans mangled: %+v", rec.Spans)
	}
	if rec.Spans[1].Shard != "s0" || rec.Spans[1].Detail != "pcg" {
		t.Fatalf("span attribution lost: %+v", rec.Spans[1])
	}
	if rec.Solver == nil || rec.Solver.Iterations != 17 || rec.Solver.TotalIterations != 19 || rec.Solver.Checkpoints != 3 {
		t.Fatalf("solver tallies wrong: %+v", rec.Solver)
	}
	if len(rec.Detections) != 1 || rec.Detections[0].Iteration != 9 {
		t.Fatalf("detection events wrong: %+v", rec.Detections)
	}
}

func TestTraceSpanOverflowCountsDrops(t *testing.T) {
	tr := NewTracer("shard", 2)
	a := tr.Start("overflow")
	for i := 0; i < MaxSpans+5; i++ {
		a.AddSpan(SpanRetry, "", "", int64(i), 1)
	}
	tr.Finish(a)
	rec := tr.Snapshot(1, "")[0]
	if len(rec.Spans) != MaxSpans || rec.DroppedSpans != 5 {
		t.Fatalf("got %d spans / %d dropped, want %d / 5", len(rec.Spans), rec.DroppedSpans, MaxSpans)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer("router", 3)
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		a := tr.Start(id)
		tr.Finish(a)
	}
	if tr.Total() != 4 {
		t.Fatalf("Total = %d, want 4", tr.Total())
	}
	recs := tr.Snapshot(0, "")
	if len(recs) != 3 {
		t.Fatalf("ring retained %d, want 3", len(recs))
	}
	if recs[0].ID != "t4" || recs[1].ID != "t3" || recs[2].ID != "t2" {
		t.Fatalf("newest-first order wrong: %s %s %s", recs[0].ID, recs[1].ID, recs[2].ID)
	}
	if got := tr.Snapshot(0, "t1"); len(got) != 0 {
		t.Fatalf("evicted trace still visible: %+v", got)
	}
	if got := tr.Snapshot(2, ""); len(got) != 2 || got[0].ID != "t4" {
		t.Fatalf("last-N wrong: %+v", got)
	}
}

func TestTracerPoolReuseResetsState(t *testing.T) {
	tr := NewTracer("shard", 4)
	a := tr.Start("first")
	a.AddSpan(SpanSolve, "", "", 0, 1)
	a.SetError("boom")
	a.Solver.Iterations = 99
	a.RecordDetection(1, 1, 0, true)
	tr.Finish(a)

	b := tr.Start("second")
	defer tr.Finish(b)
	if b.nspans != 0 || b.errMsg != "" || b.Solver.Iterations != 0 || b.ndets != 0 {
		t.Fatalf("pooled Active not reset: %+v", b)
	}
}

func TestAddSpanConcurrent(t *testing.T) {
	tr := NewTracer("router", 4)
	a := tr.Start("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.AddSpan(SpanAttempt, "s", "", int64(i), 1)
			}
		}()
	}
	wg.Wait()
	tr.Finish(a)
	rec := tr.Snapshot(1, "")[0]
	if len(rec.Spans)+rec.DroppedSpans != 800 {
		t.Fatalf("lost spans: %d kept + %d dropped != 800", len(rec.Spans), rec.DroppedSpans)
	}
}

func TestNilActiveIsSafe(t *testing.T) {
	var a *Active
	a.AddSpan(SpanSolve, "", "", 0, 0)
	a.SetError("x")
	a.RecordDetection(0, 0, 0, false)
	a.FillSolver(SolverTallies{})
	var tr Tracer
	tr.Finish(nil)
}
