package obs

import (
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
)

// NewLogger builds a slog.Logger for the -log-format flag: "json" selects
// the JSON handler, anything else the text handler. quiet raises the
// level to Warn so progress lines disappear but problems still surface.
func NewLogger(w io.Writer, format string, quiet bool) *slog.Logger {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// Version reports the main module's version from build info, falling back
// to "devel" for plain `go build` trees without VCS stamping.
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// Runtime describes the running process for statusz build-info blocks.
func Runtime() (version, goVersion string, maxProcs int) {
	return Version(), runtime.Version(), runtime.GOMAXPROCS(0)
}
