// Package obs is the dependency-free telemetry layer of the solve
// service: per-request distributed traces (Tracer/Active), a small
// Prometheus-text metrics registry (Registry/Histogram) and the shared
// logging and build-info helpers the cmd mains use. It imports nothing
// but the standard library, so every tier — api, server, router, the
// daemons — can depend on it without cycles, and the instrumentation it
// adds to the warm solve path is allocation-free by construction: an
// Active trace is pooled, its spans and solver events live in fixed
// arrays, and the hot-path hooks only increment fields on a struct that
// already exists.
package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span capacity per trace and detection-event capacity per trace. Fixed
// arrays, not slices: recording a span into a live trace never touches
// the heap, and a trace that overflows reports how many it dropped
// instead of growing.
const (
	MaxSpans      = 24
	MaxDetections = 16
)

// Canonical span names recorded by the tiers. The set is open — a span
// is just a name — but sharing the constants keeps the two tiers'
// vocabularies aligned with the documented contract.
const (
	SpanRoute        = "route"
	SpanAttempt      = "attempt"
	SpanRetry        = "retry"
	SpanHedgeArm     = "hedge-arm"
	SpanStream       = "stream"
	SpanDigestVerify = "digest-verify"
	SpanQueueWait    = "queue-wait"
	SpanCoalesce     = "coalesce"
	SpanCacheFill    = "cache-fill"
	SpanSolve        = "solve"
)

// SolverTallies aggregates the solver-side events of one traced solve:
// the iteration counts and the ABFT fault accounting, exactly the
// numbers core.Stats reports for the same run.
type SolverTallies struct {
	Iterations      int64 `json:"iterations"`
	TotalIterations int64 `json:"total_iterations,omitempty"`
	Detections      int64 `json:"detections,omitempty"`
	Corrections     int64 `json:"corrections,omitempty"`
	Rollbacks       int64 `json:"rollbacks,omitempty"`
	Checkpoints     int64 `json:"checkpoints,omitempty"`
	FaultsInjected  int64 `json:"faults_injected,omitempty"`
}

// SpanRecord is one completed span as exposed at /v1/tracez: a stage
// name, optional shard attribution and detail, and monotonic offsets
// relative to the trace start.
type SpanRecord struct {
	Name           string  `json:"name"`
	Shard          string  `json:"shard,omitempty"`
	Detail         string  `json:"detail,omitempty"`
	OffsetMillis   float64 `json:"offset_ms"`
	DurationMillis float64 `json:"duration_ms"`
}

// DetectionRecord is one fault-detection episode observed live through
// the solver's OnDetection hook, with the iteration it fired at.
type DetectionRecord struct {
	Iteration   int   `json:"iteration"`
	Detections  int64 `json:"detections"`
	Corrections int64 `json:"corrections"`
	RolledBack  bool  `json:"rolled_back"`
}

// TraceRecord is one completed trace in the tracez ring — the wire
// shape served by GET /v1/tracez on both tiers.
type TraceRecord struct {
	ID             string            `json:"id"`
	Tier           string            `json:"tier"`
	StartUnixNanos int64             `json:"start_unix_nanos"`
	DurationMillis float64           `json:"duration_ms"`
	Error          string            `json:"error,omitempty"`
	Spans          []SpanRecord      `json:"spans"`
	DroppedSpans   int               `json:"dropped_spans,omitempty"`
	Solver         *SolverTallies    `json:"solver,omitempty"`
	Detections     []DetectionRecord `json:"detection_events,omitempty"`
}

// span and detection are the fixed-array in-flight representations.
type span struct {
	name, shard, detail   string
	offsetNanos, durNanos int64
}

// Active is one in-flight trace. It is drawn from the owning Tracer's
// pool by Start and returned by Finish; between the two it is owned by
// the request it traces. Spans may be added from concurrent goroutines
// (the router's hedged fetches race) — AddSpan locks. The Solver
// tallies and detection events are written only from the solving
// goroutine, whose completion the handler observes through the task's
// done channel before reading them, so the hot-path increments take no
// lock and allocate nothing.
type Active struct {
	id        string
	start     time.Time // monotonic reference for span offsets
	wallStart int64

	mu           sync.Mutex
	spans        [MaxSpans]span
	nspans       int
	droppedSpans int
	errMsg       string

	// Solver is the live solver-event surface: the solve path's
	// pre-bound hooks increment Iterations per useful iteration and
	// RecordDetection appends detection episodes; the handler overwrites
	// the tallies with the solver's exact core.Stats once the solve
	// completes (identical numbers, plus the fields hooks cannot see).
	Solver       SolverTallies
	solverFilled bool
	dets         [MaxDetections]DetectionRecord
	ndets        int
}

// ID returns the trace identifier (inbound or minted).
func (a *Active) ID() string { return a.id }

// Now returns the monotonic offset from the trace start in nanoseconds —
// the time base every span offset is expressed in.
func (a *Active) Now() int64 { return time.Since(a.start).Nanoseconds() }

// AddSpan records one completed stage. Safe for concurrent callers;
// spans beyond MaxSpans are counted as dropped instead of grown.
func (a *Active) AddSpan(name, shard, detail string, offsetNanos, durNanos int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.nspans < MaxSpans {
		a.spans[a.nspans] = span{name: name, shard: shard, detail: detail, offsetNanos: offsetNanos, durNanos: durNanos}
		a.nspans++
	} else {
		a.droppedSpans++
	}
	a.mu.Unlock()
}

// SetError annotates the trace with its terminal failure (the error
// code or message the request was answered with).
func (a *Active) SetError(msg string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.errMsg = msg
	a.mu.Unlock()
}

// RecordDetection appends one fault-detection episode observed through
// the solver's OnDetection hook. Called from the solving goroutine only;
// allocation-free (fixed array, drop past capacity).
func (a *Active) RecordDetection(iteration int, detections, corrections int64, rolledBack bool) {
	if a == nil {
		return
	}
	if a.ndets < MaxDetections {
		a.dets[a.ndets] = DetectionRecord{Iteration: iteration, Detections: detections, Corrections: corrections, RolledBack: rolledBack}
		a.ndets++
	}
}

// FillSolver overwrites the solver tallies with the exact statistics of
// the completed solve. The live hooks count the same events as they
// happen; the stats are authoritative and additionally carry the fields
// the hooks never see (checkpoints, injected faults, re-executed work).
func (a *Active) FillSolver(t SolverTallies) {
	if a == nil {
		return
	}
	a.Solver = t
	a.solverFilled = true
}

// Tracer owns a tier's traces: it mints IDs, pools Active traces and
// keeps the last ringSize completed traces for /v1/tracez.
type Tracer struct {
	tier     string
	idPrefix uint64
	idCtr    atomic.Uint64
	finished atomic.Uint64

	pool sync.Pool

	mu    sync.Mutex
	ring  []TraceRecord
	next  int
	count int
}

// DefaultTraceRing is the completed-trace ring capacity when a tier is
// configured with zero.
const DefaultTraceRing = 128

// NewTracer builds a tracer for the tier ("router" or "shard") keeping
// the last ringSize completed traces (<=0 selects DefaultTraceRing).
func NewTracer(tier string, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	t := &Tracer{
		tier: tier,
		// The prefix makes IDs from distinct processes (and distinct
		// tracers in one process) disjoint without any coordination:
		// start time, pid and the tier label all mix in.
		idPrefix: mixID(uint64(time.Now().UnixNano()), uint64(os.Getpid()), tier),
		ring:     make([]TraceRecord, ringSize),
	}
	t.pool.New = func() any { return new(Active) }
	return t
}

// mixID is a small FNV-1a fold of the seeding material.
func mixID(a, b uint64, s string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(a)
	mix(b)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewID mints a process-unique trace identifier.
func (t *Tracer) NewID() string {
	return fmt.Sprintf("%016x%08x", t.idPrefix, t.idCtr.Add(1))
}

// ValidTraceID reports whether an inbound trace identifier is
// acceptable: 1–64 characters drawn from [A-Za-z0-9_-]. Anything else
// is replaced with a minted ID rather than echoed into logs and
// responses verbatim.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Start begins a trace, reusing the inbound identifier when it is valid
// and minting one otherwise. The returned Active is owned by the caller
// until Finish.
func (t *Tracer) Start(inboundID string) *Active {
	a := t.pool.Get().(*Active)
	if !ValidTraceID(inboundID) {
		inboundID = t.NewID()
	}
	a.id = inboundID
	a.start = time.Now()
	a.wallStart = a.start.UnixNano()
	a.nspans = 0
	a.droppedSpans = 0
	a.errMsg = ""
	a.Solver = SolverTallies{}
	a.solverFilled = false
	a.ndets = 0
	return a
}

// Finish completes the trace: the Active's content is copied into the
// ring as a TraceRecord and the Active returns to the pool. The Active
// must not be used after Finish.
func (t *Tracer) Finish(a *Active) {
	if a == nil {
		return
	}
	a.mu.Lock()
	rec := TraceRecord{
		ID:             a.id,
		Tier:           t.tier,
		StartUnixNanos: a.wallStart,
		DurationMillis: float64(a.Now()) / 1e6,
		Error:          a.errMsg,
		DroppedSpans:   a.droppedSpans,
	}
	rec.Spans = make([]SpanRecord, a.nspans)
	for i := 0; i < a.nspans; i++ {
		s := a.spans[i]
		rec.Spans[i] = SpanRecord{
			Name:           s.name,
			Shard:          s.shard,
			Detail:         s.detail,
			OffsetMillis:   float64(s.offsetNanos) / 1e6,
			DurationMillis: float64(s.durNanos) / 1e6,
		}
	}
	a.mu.Unlock()
	if a.solverFilled || a.Solver != (SolverTallies{}) {
		st := a.Solver
		rec.Solver = &st
	}
	if a.ndets > 0 {
		rec.Detections = append([]DetectionRecord(nil), a.dets[:a.ndets]...)
	}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
	t.finished.Add(1)
	t.pool.Put(a)
}

// Total is the number of traces finished since the tracer started
// (monotonic; the ring keeps only the most recent of them).
func (t *Tracer) Total() uint64 { return t.finished.Load() }

// RingSize is the ring capacity.
func (t *Tracer) RingSize() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Snapshot returns completed traces, newest first. With a non-empty id
// only traces with that exact identifier are returned (a request that
// crossed a tier twice — retried through another path — may legitimately
// appear more than once); otherwise the most recent n (<=0 = all
// retained).
func (t *Tracer) Snapshot(n int, id string) []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.count)
	for i := 0; i < t.count; i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		rec := t.ring[idx]
		if id != "" && rec.ID != id {
			continue
		}
		out = append(out, rec)
		if id == "" && n > 0 && len(out) >= n {
			break
		}
	}
	return out
}
