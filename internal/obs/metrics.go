package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal metrics surface rendered in the Prometheus text
// exposition format (version 0.0.4): counters, gauges and fixed-bucket
// histograms, no labels except a histogram's le. Most series are
// registered as CounterFunc/GaugeFunc closures over counters the service
// already maintains, so exposition never double-counts and costs nothing
// off the scrape path.
type Registry struct {
	mu      sync.Mutex
	names   map[string]bool
	metrics []metricEntry
}

type metricEntry struct {
	name, help, kind string
	value            func() float64 // counter and gauge kinds
	counter          *Counter
	hist             *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(e metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic("obs: duplicate metric " + e.name)
	}
	r.names[e.name] = true
	r.metrics = append(r.metrics, e)
}

// Counter is an owned monotonic counter for call sites that have no
// existing atomic to map.
type Counter struct {
	v atomic.Int64
}

// Inc adds one; Add adds n.
func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Add(n int64)  { c.v.Add(n) }
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metricEntry{name: name, help: help, kind: "counter", counter: c})
	return c
}

// CounterFunc registers a monotonic counter read from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(metricEntry{name: name, help: help, kind: "counter", value: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(metricEntry{name: name, help: help, kind: "gauge", value: fn})
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond warm solves to multi-second cold ones.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram. Observe is lock-free (atomic
// bucket counters, CAS-accumulated sum) so it can sit on request paths.
type Histogram struct {
	upper   []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Histogram registers a histogram with the given upper bucket bounds
// (nil selects DefBuckets). Bounds are sorted; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	h := &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper))}
	r.register(metricEntry{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the accumulated observed value.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// formatValue renders a sample the way Prometheus expects: integers
// bare, floats in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	metrics := append([]metricEntry(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch {
		case m.hist != nil:
			cum := int64(0)
			for i, ub := range m.hist.upper {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatValue(ub), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.hist.Count())
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatValue(m.hist.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.hist.Count())
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		default:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.value()))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
