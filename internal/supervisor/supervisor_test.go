package supervisor

import (
	"os/exec"
	"sync"
	"testing"
	"time"
)

// recorder collects lifecycle events for assertions.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) observe(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func (r *recorder) count(kind string) int {
	n := 0
	for _, ev := range r.snapshot() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRestartsCrashedChildWithCappedBackoff runs a child that exits
// immediately: the supervisor must keep restarting it, doubling the
// backoff per crash up to the cap, and every exit event must carry the
// delay that was actually about to be slept.
func TestRestartsCrashedChildWithCappedBackoff(t *testing.T) {
	rec := &recorder{}
	c := Supervise("crashy", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "exit 3")
	}, Config{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		ResetAfter: time.Hour, // a fast-exiting child never earns forgiveness
		OnEvent:    rec.observe,
	})
	defer c.Stop()

	waitUntil(t, "5 crashes", func() bool { return rec.count("exit") >= 5 })
	c.Stop()

	var backoffs []time.Duration
	for _, ev := range rec.snapshot() {
		if ev.Kind == "exit" {
			backoffs = append(backoffs, ev.Backoff)
		}
	}
	want := []time.Duration{10, 20, 40, 40, 40} // ms: doubling, then capped
	for i, w := range want {
		if got := backoffs[i]; got != w*time.Millisecond {
			t.Errorf("crash %d: backoff %s, want %s", i, got, w*time.Millisecond)
		}
	}
	if rec.count("start") < 5 {
		t.Errorf("only %d starts for %d exits", rec.count("start"), rec.count("exit"))
	}
}

// TestResetAfterForgivesLongRuns: a child that stays up past ResetAfter
// restarts at the base backoff again, not at wherever the crash loop
// left off.
func TestResetAfterForgivesLongRuns(t *testing.T) {
	rec := &recorder{}
	c := Supervise("steady", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "sleep 0.2; exit 1")
	}, Config{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
		ResetAfter: 100 * time.Millisecond, // 200ms uptime counts as healthy
		OnEvent:    rec.observe,
	})
	defer c.Stop()

	waitUntil(t, "3 exits", func() bool { return rec.count("exit") >= 3 })
	c.Stop()
	for _, ev := range rec.snapshot() {
		if ev.Kind == "exit" && ev.Backoff != 10*time.Millisecond {
			t.Errorf("exit after healthy uptime backed off %s, want the base 10ms", ev.Backoff)
		}
	}
}

// TestStopTerminatesAndDoesNotRestart: Stop must bring down a
// long-running child promptly (SIGTERM) and no restart may follow.
func TestStopTerminatesAndDoesNotRestart(t *testing.T) {
	rec := &recorder{}
	c := Supervise("longrun", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "sleep 60")
	}, Config{
		Backoff: 5 * time.Millisecond,
		Grace:   2 * time.Second,
		OnEvent: rec.observe,
	})
	waitUntil(t, "child start", c.Alive)
	pid := c.PID()
	if pid == 0 {
		t.Fatal("alive child has pid 0")
	}

	begun := time.Now()
	c.Stop()
	if took := time.Since(begun); took > 3*time.Second {
		t.Errorf("Stop of a sleeping child took %s — SIGTERM not delivered?", took)
	}
	if c.Alive() {
		t.Error("child still alive after Stop")
	}

	starts := rec.count("start")
	time.Sleep(50 * time.Millisecond) // would be several backoffs
	if got := rec.count("start"); got != starts {
		t.Errorf("%d new starts after Stop", got-starts)
	}
	if starts != 1 {
		t.Errorf("%d starts before Stop, want 1", starts)
	}

	// Stop is idempotent.
	c.Stop()
}

// TestStopKillsStubbornChild: a child that ignores SIGTERM dies by
// SIGKILL after the grace period.
func TestStopKillsStubbornChild(t *testing.T) {
	rec := &recorder{}
	c := Supervise("stubborn", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "trap '' TERM; sleep 60 & wait")
	}, Config{
		Grace:   100 * time.Millisecond,
		OnEvent: rec.observe,
	})
	waitUntil(t, "child start", c.Alive)
	time.Sleep(50 * time.Millisecond) // let the shell install its trap

	begun := time.Now()
	c.Stop()
	if took := time.Since(begun); took > 5*time.Second {
		t.Errorf("Stop took %s, want grace (100ms) + kill", took)
	}
	if c.Alive() {
		t.Error("child survived SIGKILL")
	}
}
