package supervisor

import (
	"net"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// recorder collects lifecycle events for assertions.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) observe(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func (r *recorder) count(kind string) int {
	n := 0
	for _, ev := range r.snapshot() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRestartsCrashedChildWithCappedBackoff runs a child that exits
// immediately: the supervisor must keep restarting it, doubling the
// backoff per crash up to the cap, and every exit event must carry the
// delay that was actually about to be slept.
func TestRestartsCrashedChildWithCappedBackoff(t *testing.T) {
	rec := &recorder{}
	c := Supervise("crashy", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "exit 3")
	}, Config{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		ResetAfter: time.Hour, // a fast-exiting child never earns forgiveness
		OnEvent:    rec.observe,
	})
	defer c.Stop()

	waitUntil(t, "5 crashes", func() bool { return rec.count("exit") >= 5 })
	c.Stop()

	var backoffs []time.Duration
	for _, ev := range rec.snapshot() {
		if ev.Kind == "exit" {
			backoffs = append(backoffs, ev.Backoff)
		}
	}
	want := []time.Duration{10, 20, 40, 40, 40} // ms: doubling, then capped
	for i, w := range want {
		if got := backoffs[i]; got != w*time.Millisecond {
			t.Errorf("crash %d: backoff %s, want %s", i, got, w*time.Millisecond)
		}
	}
	if rec.count("start") < 5 {
		t.Errorf("only %d starts for %d exits", rec.count("start"), rec.count("exit"))
	}
}

// TestResetAfterForgivesLongRuns: a child that stays up past ResetAfter
// restarts at the base backoff again, not at wherever the crash loop
// left off.
func TestResetAfterForgivesLongRuns(t *testing.T) {
	rec := &recorder{}
	c := Supervise("steady", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "sleep 0.2; exit 1")
	}, Config{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
		ResetAfter: 100 * time.Millisecond, // 200ms uptime counts as healthy
		OnEvent:    rec.observe,
	})
	defer c.Stop()

	waitUntil(t, "3 exits", func() bool { return rec.count("exit") >= 3 })
	c.Stop()
	for _, ev := range rec.snapshot() {
		if ev.Kind == "exit" && ev.Backoff != 10*time.Millisecond {
			t.Errorf("exit after healthy uptime backed off %s, want the base 10ms", ev.Backoff)
		}
	}
}

// TestStopTerminatesAndDoesNotRestart: Stop must bring down a
// long-running child promptly (SIGTERM) and no restart may follow.
func TestStopTerminatesAndDoesNotRestart(t *testing.T) {
	rec := &recorder{}
	c := Supervise("longrun", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "sleep 60")
	}, Config{
		Backoff: 5 * time.Millisecond,
		Grace:   2 * time.Second,
		OnEvent: rec.observe,
	})
	waitUntil(t, "child start", c.Alive)
	pid := c.PID()
	if pid == 0 {
		t.Fatal("alive child has pid 0")
	}

	begun := time.Now()
	c.Stop()
	if took := time.Since(begun); took > 3*time.Second {
		t.Errorf("Stop of a sleeping child took %s — SIGTERM not delivered?", took)
	}
	if c.Alive() {
		t.Error("child still alive after Stop")
	}

	starts := rec.count("start")
	time.Sleep(50 * time.Millisecond) // would be several backoffs
	if got := rec.count("start"); got != starts {
		t.Errorf("%d new starts after Stop", got-starts)
	}
	if starts != 1 {
		t.Errorf("%d starts before Stop, want 1", starts)
	}

	// Stop is idempotent.
	c.Stop()
}

// TestStopKillsStubbornChild: a child that ignores SIGTERM dies by
// SIGKILL after the grace period.
func TestStopKillsStubbornChild(t *testing.T) {
	rec := &recorder{}
	c := Supervise("stubborn", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "trap '' TERM; sleep 60 & wait")
	}, Config{
		Grace:   100 * time.Millisecond,
		OnEvent: rec.observe,
	})
	waitUntil(t, "child start", c.Alive)
	time.Sleep(50 * time.Millisecond) // let the shell install its trap

	begun := time.Now()
	c.Stop()
	if took := time.Since(begun); took > 5*time.Second {
		t.Errorf("Stop took %s, want grace (100ms) + kill", took)
	}
	if c.Alive() {
		t.Error("child survived SIGKILL")
	}
}

// TestCrashLoopExhaustion pins the restart-limit contract: a child that
// dies instantly gets its initial run plus MaxRestarts relaunches, then a
// terminal "exhausted" event — no further restarts, nothing left holding
// the port the child was supposed to serve on, and Stop stays safe to
// call on the given-up child.
func TestCrashLoopExhaustion(t *testing.T) {
	// Reserve a port the way resrouter's proc runtime does for a
	// supervised shard: the address must be reusable once supervision
	// gives the child up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hostport := ln.Addr().String()
	ln.Close()

	const maxRestarts = 3
	rec := &recorder{}
	c := Supervise("doomed", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "exit 7")
	}, Config{
		Backoff:     5 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		ResetAfter:  time.Hour, // instant deaths never earn forgiveness
		MaxRestarts: maxRestarts,
		OnEvent:     rec.observe,
	})
	defer c.Stop()

	waitUntil(t, "exhaustion", func() bool { return rec.count("exhausted") == 1 })

	// The supervision loop must have fully exited, not be sleeping toward
	// another relaunch.
	time.Sleep(50 * time.Millisecond) // several backoffs past the last exit
	if got := rec.count("start"); got != maxRestarts+1 {
		t.Errorf("%d starts, want initial run + %d restarts = %d", got, maxRestarts, maxRestarts+1)
	}
	if got := rec.count("exit"); got != maxRestarts+1 {
		t.Errorf("%d exits, want %d", got, maxRestarts+1)
	}
	if got := rec.count("exhausted"); got != 1 {
		t.Errorf("%d exhausted events, want exactly 1", got)
	}
	if c.Alive() {
		t.Error("child alive after exhaustion")
	}
	// Terminal event ordering: nothing follows "exhausted".
	events := rec.snapshot()
	if last := events[len(events)-1]; last.Kind != "exhausted" {
		t.Errorf("last event %q, want exhausted", last.Kind)
	}

	// The reserved port is free again — an exhausted child leaks nothing.
	ln2, err := net.Listen("tcp", hostport)
	if err != nil {
		t.Errorf("reserved port not rebindable after exhaustion: %v", err)
	} else {
		ln2.Close()
	}

	// Stop on an exhausted child returns promptly and is idempotent.
	begun := time.Now()
	c.Stop()
	c.Stop()
	if took := time.Since(begun); took > 2*time.Second {
		t.Errorf("Stop took %s on an exhausted child", took)
	}
}

// TestUnlimitedRestartsWithoutCap: MaxRestarts 0 keeps the pre-limit
// behavior — the crash loop just keeps relaunching.
func TestUnlimitedRestartsWithoutCap(t *testing.T) {
	rec := &recorder{}
	c := Supervise("forever", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "exit 1")
	}, Config{
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		ResetAfter: time.Hour,
		OnEvent:    rec.observe,
	})
	defer c.Stop()
	waitUntil(t, "many restarts", func() bool { return rec.count("start") >= 8 })
	if got := rec.count("exhausted"); got != 0 {
		t.Errorf("%d exhausted events with no cap configured", got)
	}
}
