package supervisor

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter serialises slog output from the supervision goroutine
// against the test's reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestLogEventsEmitsStructuredFields crash-loops a child to exhaustion
// under a JSON slog handler and asserts the lifecycle lines carry the
// typed fields operators (and the obs tooling) key on: child name, kind,
// restart count, backoff, and severity graded per kind.
func TestLogEventsEmitsStructuredFields(t *testing.T) {
	var w syncWriter
	logger := slog.New(slog.NewJSONHandler(&w, nil))
	c := Supervise("shard-x", func() *exec.Cmd {
		return exec.Command("/bin/sh", "-c", "exit 3")
	}, Config{
		Backoff:     time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxRestarts: 2,
		OnEvent:     LogEvents(logger),
	})
	defer c.Stop()

	waitUntil(t, "exhaustion line", func() bool {
		return strings.Contains(w.String(), "exhausted")
	})

	type line struct {
		Level    string  `json:"level"`
		Msg      string  `json:"msg"`
		Child    string  `json:"child"`
		Kind     string  `json:"kind"`
		PID      int     `json:"pid"`
		Error    string  `json:"error"`
		Backoff  float64 `json:"backoff_ms"`
		Restarts int     `json:"restarts"`
	}
	byKind := map[string][]line{}
	for _, raw := range strings.Split(strings.TrimSpace(w.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("unparseable slog line %q: %v", raw, err)
		}
		if l.Child != "shard-x" {
			t.Errorf("line %q: child = %q, want shard-x", raw, l.Child)
		}
		byKind[l.Kind] = append(byKind[l.Kind], l)
	}

	starts, exits, exhausted := byKind["start"], byKind["exit"], byKind["exhausted"]
	if len(starts) != 3 { // initial run + MaxRestarts relaunches
		t.Errorf("start lines = %d, want 3", len(starts))
	}
	for _, l := range starts {
		if l.Level != "INFO" || l.PID == 0 {
			t.Errorf("start line malformed: %+v", l)
		}
	}
	if len(exits) != 3 {
		t.Errorf("exit lines = %d, want 3", len(exits))
	}
	for _, l := range exits {
		if l.Level != "WARN" {
			t.Errorf("exit line level = %q, want WARN", l.Level)
		}
		if !strings.Contains(l.Error, "exit status 3") {
			t.Errorf("exit line error = %q", l.Error)
		}
		if l.Backoff <= 0 {
			t.Errorf("exit line has no backoff_ms: %+v", l)
		}
	}
	if len(exits) >= 2 && exits[1].Restarts != 1 {
		t.Errorf("second exit restarts = %d, want 1", exits[1].Restarts)
	}
	if len(exhausted) != 1 || exhausted[0].Level != "ERROR" {
		t.Fatalf("exhausted lines = %+v, want one ERROR", exhausted)
	}
	// All three runs (initial + MaxRestarts relaunches) exited before the
	// terminal event, so it reports three completed restarts.
	if exhausted[0].Restarts != 3 {
		t.Errorf("exhausted restarts = %d, want 3", exhausted[0].Restarts)
	}
}
