// Package supervisor restarts crashed child processes with capped
// exponential backoff: the watchdog half of resrouter's -supervise mode.
// It owns only process lifecycle — starting, waiting, backing off,
// stopping — and stays deliberately ignorant of what the children serve;
// the router's health probes decide when a restarted shard is fit to
// take keys again, so supervision and routing converge through the same
// state machine as any other ejection.
package supervisor

import (
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Config tunes one supervised child. Zero values select the defaults.
type Config struct {
	// Backoff is the delay before the first restart (default 250ms);
	// each consecutive crash doubles it up to MaxBackoff (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// ResetAfter is the healthy uptime that forgives past crashes: a
	// child that ran at least this long restarts at Backoff again
	// (default 10s).
	ResetAfter time.Duration
	// Grace is how long Stop waits after SIGTERM before SIGKILL
	// (default 5s).
	Grace time.Duration
	// MaxRestarts caps the consecutive restarts a crash-looping child
	// gets: after the cap is spent (the initial run plus MaxRestarts
	// relaunches all died before ResetAfter), supervision gives up with a
	// terminal "exhausted" event instead of relaunching forever. 0 means
	// unlimited. A run of at least ResetAfter forgives the count along
	// with the backoff.
	MaxRestarts int
	// OnEvent, when set, observes every lifecycle transition.
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.ResetAfter <= 0 {
		c.ResetAfter = 10 * time.Second
	}
	if c.Grace <= 0 {
		c.Grace = 5 * time.Second
	}
	return c
}

// Event is one lifecycle transition of a supervised child.
type Event struct {
	// Name labels the child (the shard name in resrouter).
	Name string
	// Kind is "start", "start-error", "exit", "exhausted" or "stop".
	// "exhausted" is terminal: the crash-loop spent MaxRestarts and no
	// further restart follows.
	Kind string
	// PID is set on "start" and "exit".
	PID int
	// Err carries the start error or the exit status.
	Err error
	// Backoff is the delay before the next restart attempt ("start-error"
	// and "exit" events).
	Backoff time.Duration
	// Restarts counts completed restarts so far.
	Restarts int
}

// Child is one supervised process. Construct with Supervise; Stop to
// terminate for good.
type Child struct {
	name  string
	build func() *exec.Cmd
	cfg   Config

	mu       sync.Mutex
	cmd      *exec.Cmd
	stopping bool

	stop chan struct{}
	done chan struct{}
}

// Supervise launches the child and keeps it running: every exit that was
// not requested through Stop triggers a restart after the current
// backoff. build must return a fresh, unstarted command each call (a
// started *exec.Cmd cannot be reused).
func Supervise(name string, build func() *exec.Cmd, cfg Config) *Child {
	c := &Child{
		name:  name,
		build: build,
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.loop()
	return c
}

func (c *Child) event(kind string, pid int, err error, backoff time.Duration, restarts int) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(Event{Name: c.name, Kind: kind, PID: pid, Err: err, Backoff: backoff, Restarts: restarts})
	}
}

func (c *Child) loop() {
	defer close(c.done)
	backoff := c.cfg.Backoff
	restarts := 0
	// loopCrashes counts consecutive short-lived runs; a run of at least
	// ResetAfter forgives it together with the backoff.
	loopCrashes := 0
	for {
		cmd := c.build()
		c.mu.Lock()
		if c.stopping {
			c.mu.Unlock()
			return
		}
		err := cmd.Start()
		if err == nil {
			c.cmd = cmd
		}
		c.mu.Unlock()

		if err != nil {
			c.event("start-error", 0, err, backoff, restarts)
			loopCrashes++
		} else {
			pid := cmd.Process.Pid
			c.event("start", pid, nil, 0, restarts)
			began := time.Now()
			werr := cmd.Wait()
			c.mu.Lock()
			c.cmd = nil
			stopping := c.stopping
			c.mu.Unlock()
			if stopping {
				return
			}
			if time.Since(began) >= c.cfg.ResetAfter {
				// Long enough a run to call the crash fresh, not a loop.
				backoff = c.cfg.Backoff
				loopCrashes = 0
			}
			c.event("exit", pid, werr, backoff, restarts)
			restarts++
			loopCrashes++
		}
		if c.cfg.MaxRestarts > 0 && loopCrashes > c.cfg.MaxRestarts {
			// The initial run plus MaxRestarts relaunches all died young:
			// this child is beyond supervision. Terminal — no relaunch, and
			// nothing (port, process slot) stays reserved behind it.
			c.event("exhausted", 0, nil, 0, restarts)
			return
		}

		select {
		case <-c.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// Alive reports whether a child process is currently running.
func (c *Child) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cmd != nil
}

// PID returns the running child's pid, or 0.
func (c *Child) PID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cmd == nil || c.cmd.Process == nil {
		return 0
	}
	return c.cmd.Process.Pid
}

// Kill SIGKILLs the currently running process WITHOUT ending
// supervision: the loop observes the death as a crash and restarts the
// child after backoff. Reports whether a live process was signalled.
// This is the fault-injection hook — a chaos "shard kill" is exactly an
// unplanned death the watchdog must absorb.
func (c *Child) Kill() bool {
	c.mu.Lock()
	cmd := c.cmd
	c.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return false
	}
	return cmd.Process.Kill() == nil
}

// Stop terminates the child for good: SIGTERM, a grace period, then
// SIGKILL. No restart follows. Idempotent; returns once the process is
// gone and the supervision loop has exited.
func (c *Child) Stop() {
	c.mu.Lock()
	already := c.stopping
	c.stopping = true
	cmd := c.cmd
	c.mu.Unlock()
	if !already {
		close(c.stop)
	}
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-c.done:
			c.event("stop", cmd.Process.Pid, nil, 0, 0)
			return
		case <-time.After(c.cfg.Grace):
			_ = cmd.Process.Kill()
		}
	}
	<-c.done
	if cmd != nil && cmd.Process != nil {
		c.event("stop", cmd.Process.Pid, nil, 0, 0)
	}
}
