package supervisor

import (
	"log/slog"
	"time"
)

// LogEvents adapts a structured logger into an OnEvent hook: every
// lifecycle transition becomes one slog line with typed fields, severity
// graded by how alarming the transition is — routine starts and stops at
// Info, crashes and failed launches at Warn, a spent crash-loop budget
// at Error. The field names are part of the operational contract (the
// obs tests parse them), so change them like any other schema.
func LogEvents(log *slog.Logger) func(Event) {
	return func(ev Event) {
		args := []any{
			slog.String("child", ev.Name),
			slog.String("kind", ev.Kind),
		}
		if ev.PID != 0 {
			args = append(args, slog.Int("pid", ev.PID))
		}
		if ev.Err != nil {
			args = append(args, slog.String("error", ev.Err.Error()))
		}
		if ev.Backoff > 0 {
			args = append(args, slog.Float64("backoff_ms", float64(ev.Backoff)/float64(time.Millisecond)))
		}
		args = append(args, slog.Int("restarts", ev.Restarts))
		switch ev.Kind {
		case "exhausted":
			log.Error("supervised child exhausted restart budget", args...)
		case "exit", "start-error":
			log.Warn("supervised child down", args...)
		default: // "start", "stop"
			log.Info("supervised child "+ev.Kind, args...)
		}
	}
}
