package sim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// Table 1 of the paper validates the performance model: for each suite
// matrix and for both ABFT schemes, it compares the model-chosen checkpoint
// interval s̃ (Eq. (6)) against the empirically best interval s* found by
// simulation, reporting the average execution times Et(s̃) and Et(s*) over
// 50 repetitions and the relative loss lᵢ = (Et(s̃) − Et(s*))/Et(s*)·100.
// The fault rate is λ = 1/(16·M), i.e. α = 1/16 expected faults per
// iteration.

// Table1Config parameterises the experiment.
type Table1Config struct {
	// Scale downscales the suite matrices (1 = full size; tests and benches
	// use 16–64). Cost *ratios* are scale-invariant by construction.
	Scale int
	// Reps is the number of repetitions per (matrix, scheme, s) cell
	// (the paper uses 50).
	Reps int
	// Alpha is the expected faults per iteration (default 1/16).
	Alpha float64
	// Tol is the solver tolerance (default 1e-8).
	Tol float64
	// Seed bases the deterministic seeding.
	Seed int64
	// Workers sizes the worker pool the repetitions of each cell fan out
	// on: 0 uses the shared GOMAXPROCS-sized pool, 1 runs sequentially, any
	// other value sizes a dedicated pool. Results are deterministic in the
	// seed for every setting.
	Workers int
	// Progress, when non-nil, receives status lines.
	Progress Progress
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Reps == 0 {
		c.Reps = 50
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0 / 16
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	return c
}

// cellScenario names the harness scenario of one (matrix, scheme, s) cell.
// All cells of a (matrix, scheme) pair share the same seed, so the s* scan
// is paired (common random numbers), like rerunning the same fault trace.
func (c Table1Config) cellScenario(mi int, sm SuiteMatrix, si int, scheme core.Scheme, s int) harness.Scenario {
	return harness.Scenario{
		Name: fmt.Sprintf("table1/m%d/%s/s%d", sm.ID, harness.SchemeSlug(scheme), s),
		Tags: []string{"table1", "campaign"},
		Matrix: harness.MatrixSpec{
			Gen: "suite", ID: sm.ID, Scale: c.Scale,
		},
		Solver: "cg",
		Scheme: harness.SchemeSlug(scheme),
		Alpha:  c.Alpha,
		Tol:    c.Tol,
		S:      s,
		D:      1,
		Reps:   c.Reps,
		Seed:   c.Seed + int64(mi*1000+si*100),
	}.WithRHSSeed(c.Seed + int64(sm.ID))
}

// Table1Scenarios expands the experiment into its model-interval harness
// scenarios (s = 0 lets the driver choose s̃ via Eq. (6)) — the registered
// entry points; RunTable1 additionally scans the s* neighbourhood grid.
func (c Table1Config) Table1Scenarios(suite []SuiteMatrix) []harness.Scenario {
	c = c.withDefaults()
	var out []harness.Scenario
	for mi, sm := range suite {
		for si, scheme := range []core.Scheme{core.ABFTDetection, core.ABFTCorrection} {
			sc := c.cellScenario(mi, sm, si, scheme, 0)
			sc.Name = fmt.Sprintf("table1/m%d/%s/model-s", sm.ID, harness.SchemeSlug(scheme))
			out = append(out, sc)
		}
	}
	return out
}

// SchemeEval holds the Table-1 cells for one scheme on one matrix.
type SchemeEval struct {
	STilde  int     // model-chosen checkpoint interval s̃
	EtTilde float64 // average execution time at s̃
	SStar   int     // empirically best interval s*
	EtStar  float64 // average execution time at s*
	LossPct float64 // l = (Et(s̃) − Et(s*)) / Et(s*) · 100
}

// Table1Row is one row of the reproduced table.
type Table1Row struct {
	ID      int
	N       int // scaled dimension actually used
	Density float64
	Det     SchemeEval // ABFT-Detection  (columns s̃₁ … l₁)
	Cor     SchemeEval // ABFT-Correction (columns s̃₂ … l₂)
}

// RunTable1 reproduces the paper's Table 1 on the given suite.
func RunTable1(cfg Table1Config, suite []SuiteMatrix) []Table1Row {
	cfg = cfg.withDefaults()
	pl := campaignPool(cfg.Workers)
	if cfg.Workers > 1 {
		defer pl.Close() // dedicated pool: release its workers on return
	}
	rows := make([]Table1Row, 0, len(suite))
	for mi, sm := range suite {
		a := sm.Generate(cfg.Scale)
		row := Table1Row{ID: sm.ID, N: a.Rows, Density: a.Density()}

		for si, scheme := range []core.Scheme{core.ABFTDetection, core.ABFTCorrection} {
			report(cfg.Progress, "table1: matrix #%d (%d/%d) scheme %v", sm.ID, mi+1, len(suite), scheme)
			eval := evalScheme(cfg, pl, a, mi, sm, si, scheme)
			if scheme == core.ABFTDetection {
				row.Det = eval
			} else {
				row.Cor = eval
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// evalScheme computes the model interval s̃, scans a grid of intervals for
// the empirically best s* and fills the evaluation cells. Each grid cell
// runs as a harness scenario against the prebuilt matrix.
func evalScheme(cfg Table1Config, pl *pool.Pool, a *sparse.CSR, mi int, sm SuiteMatrix, si int, scheme core.Scheme) SchemeEval {
	_, sTilde := core.OptimalIntervals(a, scheme, cfg.Alpha, core.DefaultCostParams())

	grid := sGrid(sTilde)
	var eval SchemeEval
	eval.STilde = sTilde
	bestTime, bestS := 0.0, 0
	for _, s := range grid {
		res, err := harness.RunOn(pl, a, cfg.cellScenario(mi, sm, si, scheme, s))
		if err != nil {
			report(cfg.Progress, "table1: m%d %v s=%d: %v", sm.ID, scheme, s, err)
			continue
		}
		if s == sTilde {
			eval.EtTilde = res.MeanSimTime
		}
		if bestS == 0 || res.MeanSimTime < bestTime {
			bestTime, bestS = res.MeanSimTime, s
		}
	}
	eval.SStar = bestS
	eval.EtStar = bestTime
	if eval.EtStar > 0 {
		eval.LossPct = (eval.EtTilde - eval.EtStar) / eval.EtStar * 100
	}
	return eval
}

// sGrid returns the candidate checkpoint intervals scanned for s*: a
// geometric-ish neighbourhood of the model value plus the small constants,
// deduplicated and sorted.
func sGrid(sTilde int) []int {
	set := map[int]bool{sTilde: true, 1: true, 2: true}
	for _, f := range []float64{0.25, 0.5, 0.75, 1.25, 1.5, 2, 3, 4} {
		s := int(float64(sTilde)*f + 0.5)
		if s >= 1 {
			set[s] = true
		}
	}
	grid := make([]int, 0, len(set))
	for s := range set {
		grid = append(grid, s)
	}
	sort.Ints(grid)
	return grid
}

// WriteTable1 renders the rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "%6s %8s %10s | %5s %10s %5s %10s %7s | %5s %10s %5s %10s %7s\n",
		"id", "n", "density",
		"s~1", "Et(s~1)", "s*1", "Et(s*1)", "l1(%)",
		"s~2", "Et(s~2)", "s*2", "Et(s*2)", "l2(%)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%6d %8d %10.2e | %5d %10.4f %5d %10.4f %7.2f | %5d %10.4f %5d %10.4f %7.2f\n",
			r.ID, r.N, r.Density,
			r.Det.STilde, r.Det.EtTilde, r.Det.SStar, r.Det.EtStar, r.Det.LossPct,
			r.Cor.STilde, r.Cor.EtTilde, r.Cor.SStar, r.Cor.EtStar, r.Cor.LossPct); err != nil {
			return err
		}
	}
	return nil
}
