package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pool"
)

// TestCampaignFanOutDeterministic runs the same fault campaign sequentially
// and fanned out across pools of several sizes: per-trial injector seeds are
// fixed by trial index and samples land in per-trial slots, so the sample
// vector, mean and failure count must match exactly. Faults are injected in
// every trial (alpha = 1/16), so under -race this doubles as the campaign
// concurrency stress test.
func TestCampaignFanOutDeterministic(t *testing.T) {
	sm, _ := SuiteByID(341)
	a := sm.Generate(96)
	b, _ := RHS(a, 3)

	const reps = 8
	wantMean, wantSamples, wantFailures := AverageTimePool(nil, a, b, core.ABFTCorrection, 1.0/16, 2, 1, 1e-8, 77, reps)
	for _, workers := range []int{1, 2, 4} {
		p := pool.New(workers)
		mean, samples, failures := AverageTimePool(p, a, b, core.ABFTCorrection, 1.0/16, 2, 1, 1e-8, 77, reps)
		if mean != wantMean || failures != wantFailures {
			t.Fatalf("workers=%d: mean/failures %v/%d, want %v/%d", workers, mean, failures, wantMean, wantFailures)
		}
		if len(samples) != len(wantSamples) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(samples), len(wantSamples))
		}
		for i := range samples {
			if samples[i] != wantSamples[i] {
				t.Fatalf("workers=%d: sample %d = %v, want %v", workers, i, samples[i], wantSamples[i])
			}
		}
	}
}

// TestAverageTimeMatchesPooledSequential pins the compatibility contract:
// the legacy AverageTime entry point is AverageTimePool with a nil pool.
func TestAverageTimeMatchesPooledSequential(t *testing.T) {
	sm, _ := SuiteByID(2213)
	a := sm.Generate(96)
	b, _ := RHS(a, 5)
	m1, s1, f1 := AverageTime(a, b, core.ABFTDetection, 1.0/16, 2, 1, 1e-8, 9, 3)
	m2, s2, f2 := AverageTimePool(nil, a, b, core.ABFTDetection, 1.0/16, 2, 1, 1e-8, 9, 3)
	if m1 != m2 || f1 != f2 || len(s1) != len(s2) {
		t.Fatalf("AverageTime diverged from nil-pool AverageTimePool: %v/%d vs %v/%d", m1, f1, m2, f2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

// TestCampaignWorkersKnob checks the Workers resolution used by the
// experiment configs.
func TestCampaignWorkersKnob(t *testing.T) {
	if campaignPool(1) != nil {
		t.Fatal("Workers=1 must run sequentially (nil pool)")
	}
	if p := campaignPool(3); p == nil || p.Workers() != 3 {
		t.Fatal("Workers=3 must size a dedicated pool")
	}
	if p := campaignPool(0); p != pool.Default() {
		t.Fatal("Workers=0 must select the shared default pool")
	}
}
