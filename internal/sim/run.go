package sim

import (
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// RunOnce executes one resilient solve with a fresh injector and returns
// its statistics. s and d override the model-optimal intervals when > 0.
func RunOnce(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, seed int64) (core.Stats, error) {
	sc := harness.Scenario{
		Solver: "cg", Scheme: harness.SchemeSlug(scheme),
		Alpha: alpha, S: s, D: d, Tol: tol,
	}
	_, st, err := harness.SolveOne(nil, a, b, sc, seed, nil)
	return st, err
}

// AverageTime runs `reps` independent solves (distinct injector seeds)
// sequentially and returns the mean simulated execution time and the raw
// samples. Runs that fail to converge are charged at their (large)
// accumulated time — exactly what an operator would experience — and
// counted.
func AverageTime(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, baseSeed int64, reps int) (mean float64, samples []float64, failures int) {
	return AverageTimePool(nil, a, b, scheme, alpha, s, d, tol, baseSeed, reps)
}

// AverageTimePool is AverageTime with the independent trials fanned out
// across the worker pool (nil runs them sequentially on the caller). It is
// a thin veneer over the harness trial engine: each trial owns a fresh
// injector seeded deterministically by its index and samples land in
// per-trial slots, making mean, samples and the failure count identical
// for any worker count.
func AverageTimePool(p *pool.Pool, a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, baseSeed int64, reps int) (mean float64, samples []float64, failures int) {
	if reps < 0 {
		reps = 0
	}
	if reps == 0 {
		return 0, []float64{}, 0
	}
	sc := harness.Scenario{
		Solver: "cg", Scheme: harness.SchemeSlug(scheme),
		Alpha: alpha, S: s, D: d, Tol: tol,
		Reps: reps, Seed: baseSeed,
	}
	return harness.TrialsOn(p, a, b, sc)
}

// campaignPool resolves the Workers knob shared by the experiment configs:
// 0 selects the process-wide default pool, 1 forces sequential execution,
// and any other value sizes a dedicated pool.
func campaignPool(workers int) *pool.Pool {
	p, _ := harness.PoolFor(workers)
	return p
}

// Progress is an optional hook the long-running experiments call with a
// human-readable status line; nil disables reporting.
type Progress func(format string, args ...any)

func report(p Progress, format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
