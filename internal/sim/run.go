package sim

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sparse"
)

// RunOnce executes one resilient solve with a fresh injector and returns
// its statistics. s and d override the model-optimal intervals when > 0.
func RunOnce(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, seed int64) (core.Stats, error) {
	var inj *fault.Injector
	if alpha > 0 {
		inj = fault.New(fault.Config{Alpha: alpha, Seed: seed})
	}
	_, st, err := core.Solve(a, b, core.Config{
		Scheme:   scheme,
		S:        s,
		D:        d,
		Tol:      tol,
		Injector: inj,
	})
	return st, err
}

// AverageTime runs `reps` independent solves (distinct injector seeds) and
// returns the mean simulated execution time and the raw samples. Runs that
// fail to converge are charged at their (large) accumulated time — exactly
// what an operator would experience — and counted.
func AverageTime(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, baseSeed int64, reps int) (mean float64, samples []float64, failures int) {
	samples = make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		st, err := RunOnce(a, b, scheme, alpha, s, d, tol, baseSeed+int64(rep)*7919)
		if err != nil {
			failures++
		}
		samples = append(samples, st.SimTime)
	}
	return Mean(samples), samples, failures
}

// Progress is an optional hook the long-running experiments call with a
// human-readable status line; nil disables reporting.
type Progress func(format string, args ...any)

func report(p Progress, format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
