package sim

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// RunOnce executes one resilient solve with a fresh injector and returns
// its statistics. s and d override the model-optimal intervals when > 0.
func RunOnce(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, seed int64) (core.Stats, error) {
	var inj *fault.Injector
	if alpha > 0 {
		inj = fault.New(fault.Config{Alpha: alpha, Seed: seed})
	}
	_, st, err := core.Solve(a, b, core.Config{
		Scheme:   scheme,
		S:        s,
		D:        d,
		Tol:      tol,
		Injector: inj,
	})
	return st, err
}

// AverageTime runs `reps` independent solves (distinct injector seeds)
// sequentially and returns the mean simulated execution time and the raw
// samples. Runs that fail to converge are charged at their (large)
// accumulated time — exactly what an operator would experience — and
// counted.
func AverageTime(a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, baseSeed int64, reps int) (mean float64, samples []float64, failures int) {
	return AverageTimePool(nil, a, b, scheme, alpha, s, d, tol, baseSeed, reps)
}

// AverageTimePool is AverageTime with the independent trials fanned out
// across the worker pool (nil runs them sequentially on the caller). Each
// trial owns a fresh injector seeded deterministically by its index and the
// solver clones the matrix internally, so trials share only read-only
// state; samples land in per-trial slots and are aggregated in index order,
// making mean, samples and the failure count identical for any worker
// count.
func AverageTimePool(p *pool.Pool, a *sparse.CSR, b []float64, scheme core.Scheme, alpha float64, s, d int, tol float64, baseSeed int64, reps int) (mean float64, samples []float64, failures int) {
	if reps < 0 {
		reps = 0
	}
	samples = make([]float64, reps)
	failed := make([]bool, reps)
	trial := func(rep int) {
		st, err := RunOnce(a, b, scheme, alpha, s, d, tol, baseSeed+int64(rep)*7919)
		samples[rep] = st.SimTime
		failed[rep] = err != nil
	}
	if p == nil {
		for rep := 0; rep < reps; rep++ {
			trial(rep)
		}
	} else {
		p.ForEach(reps, trial)
	}
	for _, f := range failed {
		if f {
			failures++
		}
	}
	return Mean(samples), samples, failures
}

// campaignPool resolves the Workers knob shared by the experiment configs:
// 0 selects the process-wide default pool, 1 forces sequential execution,
// and any other value sizes a dedicated pool.
func campaignPool(workers int) *pool.Pool {
	switch {
	case workers == 1:
		return nil
	case workers > 1:
		return pool.New(workers)
	default:
		return pool.Default()
	}
}

// Progress is an optional hook the long-running experiments call with a
// human-readable status line; nil disables reporting.
type Progress func(format string, args ...any)

func report(p Progress, format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
