package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSuiteProperties(t *testing.T) {
	if len(PaperSuite) != 9 {
		t.Fatalf("suite has %d matrices, the paper uses 9", len(PaperSuite))
	}
	for _, sm := range PaperSuite {
		if sm.N < 17456 || sm.N > 74752 {
			t.Errorf("#%d: n = %d outside the paper's range", sm.ID, sm.N)
		}
		if sm.Density >= 1e-2 {
			t.Errorf("#%d: density %v not below 1e-2", sm.ID, sm.Density)
		}
	}
}

func TestSuiteByID(t *testing.T) {
	m, ok := SuiteByID(341)
	if !ok || m.N != 23052 {
		t.Fatal("SuiteByID(341) wrong")
	}
	if _, ok := SuiteByID(1); ok {
		t.Fatal("unknown id must return false")
	}
}

func TestGeneratePreservesRowProfile(t *testing.T) {
	sm := PaperSuite[0] // #341: ~50 nnz/row
	full := float64(sm.N) * sm.Density
	a := sm.Generate(32)
	got := float64(a.NNZ()) / float64(a.Rows)
	if got < full/3 || got > full*3 {
		t.Fatalf("scaled nnz/row = %v, want ≈ %v", got, full)
	}
	if !a.IsSymmetric(0) {
		t.Fatal("generated matrix must be symmetric")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := PaperSuite[3].Generate(64)
	b := PaperSuite[3].Generate(64)
	if !a.Equal(b) {
		t.Fatal("suite generation not deterministic")
	}
}

func TestRHSDeterministic(t *testing.T) {
	a := PaperSuite[8].Generate(64)
	b1, x1 := RHS(a, 5)
	b2, x2 := RHS(a, 5)
	for i := range b1 {
		if b1[i] != b2[i] || x1[i] != x2[i] {
			t.Fatal("RHS not deterministic")
		}
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatal("Mean wrong")
	}
	if math.Abs(StdDev(xs)-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate stats wrong")
	}
	m, ci := MeanCI(xs)
	if m != 2.5 || ci <= 0 {
		t.Fatal("MeanCI wrong")
	}
	if Min(xs) != 1 || Min(nil) != 0 {
		t.Fatal("Min wrong")
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(100, 10000, 3)
	want := []float64{100, 1000, 10000}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("LogSpace = %v", xs)
		}
	}
	if len(LogSpace(1, 10, 1)) != 1 {
		t.Fatal("k=1 must return single point")
	}
}

func TestRunOnceFaultFree(t *testing.T) {
	a := PaperSuite[8].Generate(64) // smallest after scaling
	b, _ := RHS(a, 1)
	st, err := RunOnce(a, b, core.ABFTCorrection, 0, 0, 0, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Rollbacks != 0 {
		t.Fatalf("fault-free run: %+v", st)
	}
}

func TestAverageTimePaired(t *testing.T) {
	a := PaperSuite[8].Generate(64)
	b, _ := RHS(a, 2)
	m1, s1, _ := AverageTime(a, b, core.ABFTDetection, 0.05, 5, 1, 1e-8, 7, 3)
	m2, s2, _ := AverageTime(a, b, core.ABFTDetection, 0.05, 5, 1, 1e-8, 7, 3)
	if m1 != m2 || len(s1) != len(s2) {
		t.Fatal("AverageTime not deterministic for equal seeds")
	}
	if len(s1) != 3 {
		t.Fatalf("want 3 samples, got %d", len(s1))
	}
}

func TestSGridContainsModelValueAndNeighborhood(t *testing.T) {
	g := sGrid(12)
	has := func(v int) bool {
		for _, x := range g {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, v := range []int{1, 3, 6, 12, 24, 48} {
		if !has(v) {
			t.Fatalf("grid %v missing %d", g, v)
		}
	}
	for i := 1; i < len(g); i++ {
		if g[i-1] >= g[i] {
			t.Fatal("grid not sorted/deduped")
		}
	}
}

func TestRunTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 smoke is slow")
	}
	rows := RunTable1(Table1Config{Scale: 80, Reps: 3, Seed: 1}, PaperSuite[8:9])
	if len(rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.Det.STilde < 1 || r.Cor.STilde < 1 {
		t.Fatalf("degenerate model intervals: %+v", r)
	}
	if r.Det.EtTilde <= 0 || r.Cor.EtStar <= 0 {
		t.Fatalf("missing execution times: %+v", r)
	}
	// By construction Et(s*) ≤ Et(s̃), so the loss is non-negative.
	if r.Det.LossPct < 0 || r.Cor.LossPct < 0 {
		t.Fatalf("negative loss: %+v", r)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2213") {
		t.Fatal("table output missing matrix id")
	}
}

func TestRunFigure1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure1 smoke is slow")
	}
	series := RunFigure1(Figure1Config{
		Scale: 80, Reps: 2, MTBFs: []float64{1e2, 1e4}, Seed: 2,
	}, PaperSuite[8:9])
	if len(series) != 1 {
		t.Fatal("want 1 series")
	}
	s := series[0]
	for _, scheme := range core.Schemes {
		pts := s.Points[scheme]
		if len(pts) != 2 {
			t.Fatalf("%v: %d points", scheme, len(pts))
		}
		for _, p := range pts {
			if p.Mean <= 0 {
				t.Fatalf("%v: non-positive time %+v", scheme, p)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure1CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ABFT-Correction") {
		t.Fatal("CSV missing scheme name")
	}
	buf.Reset()
	if err := WriteFigure1Text(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Matrix #2213") {
		t.Fatal("text output missing matrix header")
	}
}
