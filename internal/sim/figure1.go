package sim

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Figure 1 of the paper plots, for each suite matrix, the average execution
// time of the three methods (Online-Detection dotted, ABFT-Detection
// dashed, ABFT-Correction solid) against the normalised mean time between
// failures x = 1/α, swept over [1e2, 1e4]. Each point averages 50 runs at
// the model-optimal intervals for that scheme and fault rate.

// Figure1Config parameterises the sweep.
type Figure1Config struct {
	// Scale downscales the suite matrices.
	Scale int
	// Reps is the repetitions per point (the paper uses 50).
	Reps int
	// MTBFs are the normalised MTBF values 1/α; nil means a 7-point log
	// grid over [1e2, 1e4].
	MTBFs []float64
	// Tol is the solver tolerance (default 1e-8).
	Tol float64
	// Seed bases the deterministic seeding.
	Seed int64
	// Workers sizes the worker pool the repetitions of each point fan out
	// on: 0 uses the shared GOMAXPROCS-sized pool, 1 runs sequentially, any
	// other value sizes a dedicated pool. Results are deterministic in the
	// seed for every setting.
	Workers int
	// Progress, when non-nil, receives status lines.
	Progress Progress
}

func (c Figure1Config) withDefaults() Figure1Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Reps == 0 {
		c.Reps = 50
	}
	if len(c.MTBFs) == 0 {
		c.MTBFs = LogSpace(1e2, 1e4, 7)
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	return c
}

// Figure1Point is one (MTBF, scheme) cell: the mean execution time and the
// spread over the repetitions.
type Figure1Point struct {
	MTBF     float64
	Mean     float64
	CI95     float64
	Failures int
}

// Figure1Series is one subplot: a matrix with one time series per scheme.
type Figure1Series struct {
	ID     int
	N      int
	Points map[core.Scheme][]Figure1Point
}

// RunFigure1 reproduces the paper's Figure 1 on the given suite.
func RunFigure1(cfg Figure1Config, suite []SuiteMatrix) []Figure1Series {
	cfg = cfg.withDefaults()
	pl := campaignPool(cfg.Workers)
	if cfg.Workers > 1 {
		defer pl.Close() // dedicated pool: release its workers on return
	}
	out := make([]Figure1Series, 0, len(suite))
	for mi, sm := range suite {
		a := sm.Generate(cfg.Scale)
		b, _ := RHS(a, cfg.Seed+int64(sm.ID))
		series := Figure1Series{ID: sm.ID, N: a.Rows, Points: make(map[core.Scheme][]Figure1Point)}
		for _, scheme := range core.Schemes {
			for xi, x := range cfg.MTBFs {
				alpha := 1 / x
				report(cfg.Progress, "figure1: matrix #%d (%d/%d) %v MTBF=%.0f",
					sm.ID, mi+1, len(suite), scheme, x)
				seed := cfg.Seed + int64(mi*100000+int(scheme)*10000+xi*100)
				mean, samples, failures := AverageTimePool(pl, a, b, scheme, alpha, 0, 0, cfg.Tol, seed, cfg.Reps)
				_, ci := MeanCI(samples)
				series.Points[scheme] = append(series.Points[scheme], Figure1Point{
					MTBF: x, Mean: mean, CI95: ci, Failures: failures,
				})
			}
		}
		out = append(out, series)
	}
	return out
}

// WriteFigure1CSV emits the sweep as CSV: matrix, scheme, mtbf, mean, ci95,
// failures. One file feeds all nine subplots.
func WriteFigure1CSV(w io.Writer, series []Figure1Series) error {
	if _, err := fmt.Fprintln(w, "matrix,n,scheme,mtbf,mean_time,ci95,failures"); err != nil {
		return err
	}
	for _, s := range series {
		for _, scheme := range core.Schemes {
			for _, pt := range s.Points[scheme] {
				if _, err := fmt.Fprintf(w, "%d,%d,%s,%.6g,%.6g,%.6g,%d\n",
					s.ID, s.N, scheme, pt.MTBF, pt.Mean, pt.CI95, pt.Failures); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteFigure1Text renders one aligned text block per matrix — the textual
// equivalent of the paper's 3×3 subplot grid.
func WriteFigure1Text(w io.Writer, series []Figure1Series) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "Matrix #%d (n = %d)\n", s.ID, s.N); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %12s %18s %18s %18s\n", "MTBF (1/a)",
			core.OnlineDetection, core.ABFTDetection, core.ABFTCorrection); err != nil {
			return err
		}
		online := s.Points[core.OnlineDetection]
		det := s.Points[core.ABFTDetection]
		cor := s.Points[core.ABFTCorrection]
		for i := range online {
			if _, err := fmt.Fprintf(w, "  %12.0f %18.4f %18.4f %18.4f\n",
				online[i].MTBF, online[i].Mean, det[i].Mean, cor[i].Mean); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
