package sim

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
)

// Figure 1 of the paper plots, for each suite matrix, the average execution
// time of the three methods (Online-Detection dotted, ABFT-Detection
// dashed, ABFT-Correction solid) against the normalised mean time between
// failures x = 1/α, swept over [1e2, 1e4]. Each point averages 50 runs at
// the model-optimal intervals for that scheme and fault rate.

// Figure1Config parameterises the sweep.
type Figure1Config struct {
	// Scale downscales the suite matrices.
	Scale int
	// Reps is the repetitions per point (the paper uses 50).
	Reps int
	// MTBFs are the normalised MTBF values 1/α; nil means a 7-point log
	// grid over [1e2, 1e4].
	MTBFs []float64
	// Tol is the solver tolerance (default 1e-8).
	Tol float64
	// Seed bases the deterministic seeding.
	Seed int64
	// Workers sizes the worker pool the repetitions of each point fan out
	// on: 0 uses the shared GOMAXPROCS-sized pool, 1 runs sequentially, any
	// other value sizes a dedicated pool. Results are deterministic in the
	// seed for every setting.
	Workers int
	// Progress, when non-nil, receives status lines.
	Progress Progress
}

func (c Figure1Config) withDefaults() Figure1Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Reps == 0 {
		c.Reps = 50
	}
	if len(c.MTBFs) == 0 {
		c.MTBFs = LogSpace(1e2, 1e4, 7)
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	return c
}

// cellScenario names the harness scenario of one (matrix, scheme, MTBF)
// cell. The seed formula is position-based and matches the historical
// campaign seeding, so the refactored sweep reproduces its previous
// outputs exactly.
func (c Figure1Config) cellScenario(mi int, sm SuiteMatrix, scheme core.Scheme, xi int, mtbf float64) harness.Scenario {
	return harness.Scenario{
		Name: fmt.Sprintf("figure1/m%d/%s/mtbf%g", sm.ID, harness.SchemeSlug(scheme), mtbf),
		Tags: []string{"figure1", "campaign"},
		Matrix: harness.MatrixSpec{
			Gen: "suite", ID: sm.ID, Scale: c.Scale,
		},
		Solver: "cg",
		Scheme: harness.SchemeSlug(scheme),
		Alpha:  1 / mtbf,
		Tol:    c.Tol,
		Reps:   c.Reps,
		Seed:   c.Seed + int64(mi*100000+int(scheme)*10000+xi*100),
	}.WithRHSSeed(c.Seed + int64(sm.ID))
}

// Figure1Scenarios expands the sweep into its harness scenarios — one per
// (matrix, scheme, MTBF) cell — for registration and sharded execution.
// The position indices follow the given suite slice.
func (c Figure1Config) Figure1Scenarios(suite []SuiteMatrix) []harness.Scenario {
	c = c.withDefaults()
	var out []harness.Scenario
	for mi, sm := range suite {
		for _, scheme := range core.Schemes {
			for xi, x := range c.MTBFs {
				out = append(out, c.cellScenario(mi, sm, scheme, xi, x))
			}
		}
	}
	return out
}

// Figure1Point is one (MTBF, scheme) cell: the mean execution time and the
// spread over the repetitions.
type Figure1Point struct {
	MTBF     float64
	Mean     float64
	CI95     float64
	Failures int
}

// Figure1Series is one subplot: a matrix with one time series per scheme.
type Figure1Series struct {
	ID     int
	N      int
	Points map[core.Scheme][]Figure1Point
}

// RunFigure1 reproduces the paper's Figure 1 on the given suite: each cell
// runs as a harness scenario (matrix built once per suite entry, trials
// fanned out across the pool) and its record folds into the series.
func RunFigure1(cfg Figure1Config, suite []SuiteMatrix) []Figure1Series {
	series, _ := RunFigure1Results(cfg, suite)
	return series
}

// RunFigure1Results is RunFigure1 returning both the folded series and the
// raw harness records of every cell, for the machine-readable pipeline
// (faultsim -json, CI artifacts, shard merges).
func RunFigure1Results(cfg Figure1Config, suite []SuiteMatrix) ([]Figure1Series, []harness.Result) {
	cfg = cfg.withDefaults()
	pl := campaignPool(cfg.Workers)
	if cfg.Workers > 1 {
		defer pl.Close() // dedicated pool: release its workers on return
	}
	out := make([]Figure1Series, 0, len(suite))
	var records []harness.Result
	for mi, sm := range suite {
		a := sm.Generate(cfg.Scale)
		series := Figure1Series{ID: sm.ID, N: a.Rows, Points: make(map[core.Scheme][]Figure1Point)}
		for _, scheme := range core.Schemes {
			for xi, x := range cfg.MTBFs {
				report(cfg.Progress, "figure1: matrix #%d (%d/%d) %v MTBF=%.0f",
					sm.ID, mi+1, len(suite), scheme, x)
				sc := cfg.cellScenario(mi, sm, scheme, xi, x)
				res, err := harness.RunOn(pl, a, sc)
				if err != nil {
					report(cfg.Progress, "figure1: %s: %v", sc.Name, err)
					continue
				}
				records = append(records, res)
				series.Points[scheme] = append(series.Points[scheme], Figure1Point{
					MTBF: x, Mean: res.MeanSimTime, CI95: res.CI95SimTime, Failures: res.Failures,
				})
			}
		}
		out = append(out, series)
	}
	return out, records
}

// WriteFigure1CSV emits the sweep as CSV: matrix, scheme, mtbf, mean, ci95,
// failures. One file feeds all nine subplots.
func WriteFigure1CSV(w io.Writer, series []Figure1Series) error {
	if _, err := fmt.Fprintln(w, "matrix,n,scheme,mtbf,mean_time,ci95,failures"); err != nil {
		return err
	}
	for _, s := range series {
		for _, scheme := range core.Schemes {
			for _, pt := range s.Points[scheme] {
				if _, err := fmt.Fprintf(w, "%d,%d,%s,%.6g,%.6g,%.6g,%d\n",
					s.ID, s.N, scheme, pt.MTBF, pt.Mean, pt.CI95, pt.Failures); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteFigure1Text renders one aligned text block per matrix — the textual
// equivalent of the paper's 3×3 subplot grid.
func WriteFigure1Text(w io.Writer, series []Figure1Series) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "Matrix #%d (n = %d)\n", s.ID, s.N); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %12s %18s %18s %18s\n", "MTBF (1/a)",
			core.OnlineDetection, core.ABFTDetection, core.ABFTCorrection); err != nil {
			return err
		}
		online := s.Points[core.OnlineDetection]
		det := s.Points[core.ABFTDetection]
		cor := s.Points[core.ABFTCorrection]
		for i := range online {
			if _, err := fmt.Fprintf(w, "  %12.0f %18.4f %18.4f %18.4f\n",
				online[i].MTBF, online[i].Mean, det[i].Mean, cor[i].Mean); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
