package sim

import "repro/internal/harness"

// The aggregate statistics helpers moved to internal/harness with the
// campaign engine; these wrappers keep the historical sim API.

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 { return harness.Mean(xs) }

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 { return harness.StdDev(xs) }

// MeanCI returns the mean and the half-width of its 95% normal confidence
// interval.
func MeanCI(xs []float64) (mean, halfWidth float64) { return harness.MeanCI(xs) }

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 { return harness.Min(xs) }

// LogSpace returns k points logarithmically spaced between lo and hi
// inclusive.
func LogSpace(lo, hi float64, k int) []float64 { return harness.LogSpace(lo, hi, k) }
