// Package sim implements the experiment campaigns that regenerate the
// paper's evaluation (Section 5): the synthetic counterpart of its
// nine-matrix UFL test suite, the Table 1 model-validation experiment and
// the Figure 1 fault-rate sweep. The campaigns are defined as
// internal/harness scenarios (see Figure1Scenarios and Table1Scenarios)
// and executed through the harness trial engine, so every cell is a named,
// seeded, reproducible record.
package sim

import (
	"repro/internal/harness"
	"repro/internal/sparse"
)

// SuiteMatrix, the paper suite and the RHS manufacture moved to
// internal/harness (the scenario substrate); the aliases below keep the
// historical sim API intact for the commands and tests.

// SuiteMatrix describes one matrix of the paper's test suite.
type SuiteMatrix = harness.SuiteMatrix

// PaperSuite lists the nine positive definite matrices of the paper's
// Table 1.
var PaperSuite = harness.PaperSuite

// SuiteByID returns the suite entry with the given UFL id, or false.
func SuiteByID(id int) (SuiteMatrix, bool) { return harness.SuiteByID(id) }

// SelectSuite resolves a comma-separated list of UFL ids against the paper
// suite; an empty string selects all nine matrices.
func SelectSuite(ids string) ([]SuiteMatrix, error) { return harness.SelectSuite(ids) }

// RHS manufactures a right-hand side b = A·xTrue for a random solution
// vector, deterministic in the seed. Returns b and xTrue.
func RHS(a *sparse.CSR, seed int64) (b, xTrue []float64) { return harness.RHS(a, seed) }
