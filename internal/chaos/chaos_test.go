package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// cleanBody is the digest-stamped payload the stub shard always answers.
var cleanBody = []byte(`{"schema":1,"served_by":"stub"}` + "\n")

// okShard answers every request 200 with cleanBody, stamped like a real
// resilientd would stamp it.
func okShard() http.RoundTripper {
	return rtFunc(func(req *http.Request) (*http.Response, error) {
		h := make(http.Header)
		h.Set("Content-Type", "application/json")
		h.Set(api.DigestHeader, api.DigestBytes(cleanBody))
		return &http.Response{
			StatusCode:    http.StatusOK,
			Status:        "200 OK",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(bytes.NewReader(cleanBody)),
			ContentLength: int64(len(cleanBody)),
			Request:       req,
		}, nil
	})
}

// solveReq builds a POST /v1/solve request with a distinct body per i.
// http.NewRequest wires GetBody for the reader types used here, which is
// what the injector fingerprints.
func solveReq(t *testing.T, i int) *http.Request {
	t.Helper()
	body := fmt.Sprintf(`{"matrix":{"gen":"poisson2d","n":%d},"seed":7}`, 8+i)
	req, err := http.NewRequest(http.MethodPost, "http://127.0.0.1:19999/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func forcedPlan(set func(p *Plan)) Plan {
	p := Plan{Schema: PlanSchemaVersion, Seed: 42}
	set(&p)
	return p
}

func TestPlanValidate(t *testing.T) {
	bad := map[string]Plan{
		"schema":        {Schema: 99},
		"negative prob": {PReset: -0.1},
		"prob over 1":   {PBitFlip: 1.5},
		"sum over 1":    {PReset: 0.5, PTruncate: 0.3, PBitFlip: 0.3},
		"neg latency":   {PLatency: 0.1, LatencyMillis: -5},
		"neg kills":     {MaxKills: -1},
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: plan %+v accepted", name, p)
		}
	}
	ok := Plan{Schema: PlanSchemaVersion, Seed: 1, PReset: 0.05, PTruncate: 0.05, PBitFlip: 0.08, P503: 0.03, PLatency: 0.5, LatencyMillis: 50}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// PLatency is an independent draw: it must not count against the
	// primary-band sum.
	indep := Plan{PReset: 0.6, PLatency: 0.9}
	if err := indep.Validate(); err != nil {
		t.Errorf("latency counted into the primary sum: %v", err)
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	write := func(body string) string {
		p := filepath.Join(dir, "plan.json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	plan, err := LoadPlan(write(`{"schema":1,"seed":77,"p_kill":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 77 {
		t.Errorf("seed %d, want 77", plan.Seed)
	}
	if plan.MaxKills != 1 {
		t.Errorf("MaxKills defaulted to %d, want 1 when p_kill > 0", plan.MaxKills)
	}

	if _, err := LoadPlan(write(`{"schema":1,`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadPlan(write(`{"schema":1,"p_reset":0.9,"p_bitflip":0.9}`)); err == nil {
		t.Error("over-unity primary sum accepted")
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInjectedReset(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.PReset = 1 }), okShard())
	_, err := in.RoundTrip(solveReq(t, 0))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if s := in.Stats(); s.Resets != 1 || s.Passed != 0 {
		t.Errorf("stats %+v: want 1 reset, 0 passed", s)
	}
}

func TestInjected503CarriesRetryHint(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.P503 = 1 }), okShard())
	resp, err := in.RoundTrip(solveReq(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != api.SchemaVersion || e.Code != api.CodeDraining || e.RetryAfterMillis <= 0 {
		t.Errorf("envelope %+v: want schema %d, code %q, retry hint > 0", e, api.SchemaVersion, api.CodeDraining)
	}
	if s := in.Stats(); s.Storms503 != 1 {
		t.Errorf("storms = %d, want 1", s.Storms503)
	}
}

func TestInjectedTruncationFailsMidBody(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.PTruncate = 1 }), okShard())
	resp, err := in.RoundTrip(solveReq(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) >= len(cleanBody) {
		t.Errorf("read %d bytes, want a strict prefix of %d", len(got), len(cleanBody))
	}
	if !bytes.HasPrefix(cleanBody, got) {
		t.Errorf("truncation changed bytes: %q is not a prefix of %q", got, cleanBody)
	}
	if s := in.Stats(); s.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", s.Truncations)
	}
}

func TestInjectedBitFlipIsDigestVisible(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.PBitFlip = 1 }), okShard())
	resp, err := in.RoundTrip(solveReq(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cleanBody) {
		t.Fatalf("flip changed length: %d vs %d", len(got), len(cleanBody))
	}
	diffBits := 0
	for i := range got {
		for b := got[i] ^ cleanBody[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("%d bits differ, want exactly 1", diffBits)
	}
	// The whole point: the stamped digest must catch it.
	if api.VerifyDigest(resp.Header.Get(api.DigestHeader), got) {
		t.Error("digest verified a bit-flipped body")
	}
	if s := in.Stats(); s.BitFlips != 1 {
		t.Errorf("bitFlips = %d, want 1", s.BitFlips)
	}
}

func TestInjectedLatencySpike(t *testing.T) {
	var slept time.Duration
	in := New(forcedPlan(func(p *Plan) { p.PLatency = 1; p.LatencyMillis = 35 }), okShard(),
		withSleep(func(d time.Duration) { slept += d }))
	resp, err := in.RoundTrip(solveReq(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 35*time.Millisecond {
		t.Errorf("slept %s, want 35ms", slept)
	}
	if s := in.Stats(); s.LatencySpikes != 1 || s.Passed != 1 {
		t.Errorf("stats %+v: want 1 spike composing with a passed response", s)
	}
}

// TestKillDegradesWithoutHook: a kill fault with no KillFunc must still
// consume the same draw (plan-shaped trace) but surface as a reset.
func TestKillDegradesWithoutHook(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.PKill = 1; p.MaxKills = 1 }), okShard())
	_, err := in.RoundTrip(solveReq(t, 0))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want degradation to ErrInjectedReset", err)
	}
	if s := in.Stats(); s.Kills != 0 || s.Resets != 1 {
		t.Errorf("stats %+v: want 0 kills, 1 reset", s)
	}
}

func TestKillHookAndBudget(t *testing.T) {
	var mu sync.Mutex
	var killed []string
	in := New(forcedPlan(func(p *Plan) { p.PKill = 1; p.MaxKills = 1 }), okShard(),
		WithKillFunc(func(host string) bool {
			mu.Lock()
			killed = append(killed, host)
			mu.Unlock()
			return true
		}))

	// First kill: hook fires, request still forwards into the dying shard.
	resp, err := in.RoundTrip(solveReq(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(killed) != 1 || killed[0] != "127.0.0.1:19999" {
		t.Fatalf("killed = %v, want the target host once", killed)
	}
	// Budget spent: further kill draws degrade to resets, hook untouched.
	if _, err := in.RoundTrip(solveReq(t, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-budget err = %v, want ErrInjectedReset", err)
	}
	if len(killed) != 1 {
		t.Errorf("hook fired %d times, want 1 (max_kills)", len(killed))
	}
	if s := in.Stats(); s.Kills != 1 || s.Resets != 1 {
		t.Errorf("stats %+v: want 1 kill, 1 reset", s)
	}
}

// TestOnlySolveTrafficIsTouched: health probes and admin calls must pass
// through even a 100%-reset plan — chaos distorts data paths, never the
// control plane observing them.
func TestOnlySolveTrafficIsTouched(t *testing.T) {
	in := New(forcedPlan(func(p *Plan) { p.PReset = 1 }), okShard())
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/healthz"},
		{http.MethodGet, "/routerz"},
		{http.MethodPost, "/v1/admin/shards"},
		{http.MethodGet, "/v1/solve"}, // wrong method: not solve traffic
	} {
		req, err := http.NewRequest(c.method, "http://127.0.0.1:19999"+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := in.RoundTrip(req)
		if err != nil {
			t.Fatalf("%s %s: injected into non-solve traffic: %v", c.method, c.path, err)
		}
		resp.Body.Close()
	}
	if s := in.Stats(); s.Requests != 0 {
		t.Errorf("%d solve requests counted for control-plane traffic", s.Requests)
	}
	// And solve traffic with the same plan is reset, proving the plan was live.
	if _, err := in.RoundTrip(solveReq(t, 0)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("solve err = %v, want ErrInjectedReset", err)
	}
}

// mixedPlan has every fault on at modest probability — the shape the CI
// chaos-smoke gate uses.
func mixedPlan(seed int64) Plan {
	return Plan{
		Schema: PlanSchemaVersion, Seed: seed,
		PReset: 0.1, PTruncate: 0.1, PBitFlip: 0.15, P503: 0.1,
		PLatency: 0.2, LatencyMillis: 1,
	}
}

// runSequence drives reqs through a fresh injector and returns its stats.
// Responses are drained so body-stage faults (truncation) fully play out.
func runSequence(t *testing.T, plan Plan, order []int, attempts int) *api.ChaosStats {
	t.Helper()
	in := New(plan, okShard(), withSleep(func(time.Duration) {}))
	for a := 0; a < attempts; a++ {
		for _, i := range order {
			resp, err := in.RoundTrip(solveReq(t, i))
			if err != nil {
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return in.Stats()
}

// TestTraceDeterminism is the property the chaos-smoke CI gate leans on:
// the same plan over the same request multiset yields the same per-fault
// counters and the same trace hash — even when the requests arrive in a
// different order — and a different seed yields a different trace.
func TestTraceDeterminism(t *testing.T) {
	const n = 64
	forward := make([]int, n)
	reverse := make([]int, n)
	for i := 0; i < n; i++ {
		forward[i] = i
		reverse[i] = n - 1 - i
	}

	a := runSequence(t, mixedPlan(1234), forward, 2)
	b := runSequence(t, mixedPlan(1234), reverse, 2)
	if a.TraceHash != b.TraceHash {
		t.Errorf("trace diverged across orderings: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if *a != *b {
		t.Errorf("counters diverged:\n  forward %+v\n  reverse %+v", a, b)
	}
	// The mixed plan must actually have injected something, or the gate
	// above is vacuous.
	if a.Resets == 0 || a.BitFlips == 0 || a.Truncations == 0 || a.Storms503 == 0 {
		t.Errorf("plan injected nothing in some class: %+v", a)
	}
	if a.Requests != a.Passed+a.Resets+a.Storms503+a.Kills+a.Truncations+a.BitFlips {
		t.Errorf("fault classes do not partition requests: %+v", a)
	}

	c := runSequence(t, mixedPlan(99), forward, 2)
	if c.TraceHash == a.TraceHash {
		t.Errorf("different seeds produced identical trace %s", a.TraceHash)
	}
}

// TestAttemptsDrawFreshFates: the same identity resent (a router
// failover) must not be glued to its first fate — a request that drew a
// reset on attempt 0 must be able to pass on a later attempt.
func TestAttemptsDrawFreshFates(t *testing.T) {
	plan := forcedPlan(func(p *Plan) { p.PReset = 0.5 })
	in := New(plan, okShard())
	outcomes := make(map[bool]int)
	for a := 0; a < 32; a++ {
		resp, err := in.RoundTrip(solveReq(t, 0))
		if err != nil {
			outcomes[false]++
			continue
		}
		resp.Body.Close()
		outcomes[true]++
	}
	if outcomes[true] == 0 || outcomes[false] == 0 {
		t.Errorf("32 attempts at p_reset=0.5 were uniform (%d pass, %d reset): attempts are not drawing fresh fates",
			outcomes[true], outcomes[false])
	}
}
