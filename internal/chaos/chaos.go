// Package chaos is the deterministic fault-injection layer of the
// distributed tier: a seeded http.RoundTripper that injects the failure
// modes a sharded deployment actually sees on the wire — connection
// resets, mid-body truncation, single-bit flips in response payloads,
// latency spikes, 5xx storms and shard kill signals mid-solve — between
// the router and its shards (resrouter -chaos-plan) or as a standalone
// reverse proxy (cmd/reschaos).
//
// Every injection decision is a pure function of (plan seed, request
// identity, attempt): the identity fingerprints the request bytes with
// the repository's FNV-1a family, and the attempt counts how many times
// this identity has been seen (so a router's failover resend of the same
// body draws a fresh, but reproducible, fate). The same plan against the
// same request sequence therefore injects the same faults — the property
// the chaos-smoke CI gate pins by comparing trace hashes across runs.
//
// The router's end-to-end integrity machinery is the system under test:
// resets and truncations must surface as retryable transport failures,
// bit flips must be caught by the X-Resilient-Digest check, and none of
// it may ever reach a client as corrupt bytes.
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/sparse"
)

// PlanSchemaVersion identifies the chaos plan file layout.
const PlanSchemaVersion = 1

// Plan is the seeded fault mix, loaded from JSON:
//
//	{
//	  "schema": 1, "seed": 1234,
//	  "p_reset": 0.05, "p_truncate": 0.05, "p_bitflip": 0.08,
//	  "p_503": 0.03, "p_kill": 0, "max_kills": 1,
//	  "p_latency": 0.05, "latency_ms": 50
//	}
//
// The five primary probabilities are mutually exclusive per attempt (one
// draw, cumulative bands, so they must sum to ≤ 1); the latency spike is
// an independent draw that composes with any of them. Faults apply only
// to solve traffic (POST /v1/solve and /v1/solve/batch) — health probes
// and admin calls pass through untouched, so chaos distorts data paths,
// not the control plane that is supposed to observe it.
type Plan struct {
	Schema int   `json:"schema"`
	Seed   int64 `json:"seed"`
	// PReset aborts the exchange with a transport error before the shard
	// sees the request — a connection reset.
	PReset float64 `json:"p_reset"`
	// PTruncate forwards the request, then cuts the response body short
	// at a seeded offset — the shard died mid-answer.
	PTruncate float64 `json:"p_truncate"`
	// PBitFlip forwards the request, then flips one seeded bit in the
	// response payload, length preserved — wire corruption the transport
	// cannot see.
	PBitFlip float64 `json:"p_bitflip"`
	// P503 synthesizes a 503 envelope (with a retry_after_ms hint)
	// without forwarding — a refusing or mid-drain shard.
	P503 float64 `json:"p_503"`
	// PKill sends the target shard a kill signal through the configured
	// KillFunc, then forwards into the dying process. Downgrades to a
	// reset when no KillFunc is wired or MaxKills is spent.
	PKill float64 `json:"p_kill"`
	// MaxKills bounds process kills per run (default 1 when PKill > 0).
	MaxKills int `json:"max_kills,omitempty"`
	// PLatency stalls the exchange by LatencyMillis before anything else.
	PLatency      float64 `json:"p_latency"`
	LatencyMillis int     `json:"latency_ms,omitempty"`
}

// Validate rejects malformed plans.
func (p *Plan) Validate() error {
	if p.Schema != 0 && p.Schema != PlanSchemaVersion {
		return fmt.Errorf("chaos plan: unsupported schema %d (want %d)", p.Schema, PlanSchemaVersion)
	}
	sum := 0.0
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"p_reset", p.PReset}, {"p_truncate", p.PTruncate}, {"p_bitflip", p.PBitFlip},
		{"p_503", p.P503}, {"p_kill", p.PKill}, {"p_latency", p.PLatency},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos plan: %s = %g out of [0, 1]", pr.name, pr.v)
		}
		if pr.name != "p_latency" {
			sum += pr.v
		}
	}
	if sum > 1 {
		return fmt.Errorf("chaos plan: primary fault probabilities sum to %g > 1", sum)
	}
	if p.LatencyMillis < 0 {
		return fmt.Errorf("chaos plan: negative latency_ms")
	}
	if p.MaxKills < 0 {
		return fmt.Errorf("chaos plan: negative max_kills")
	}
	return nil
}

// LoadPlan reads and validates a chaos plan file.
func LoadPlan(path string) (Plan, error) {
	var p Plan
	raw, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(raw, &p); err != nil {
		return p, fmt.Errorf("chaos plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	if p.PKill > 0 && p.MaxKills == 0 {
		p.MaxKills = 1
	}
	return p, nil
}

// Fault names one injected outcome.
type Fault int

const (
	FaultNone Fault = iota
	FaultReset
	Fault503
	FaultKill
	FaultTruncate
	FaultBitFlip
)

func (f Fault) String() string {
	switch f {
	case FaultReset:
		return "reset"
	case Fault503:
		return "503"
	case FaultKill:
		return "kill"
	case FaultTruncate:
		return "truncate"
	case FaultBitFlip:
		return "bitflip"
	default:
		return "none"
	}
}

// ErrInjectedReset is the transport error an injected connection reset
// surfaces as.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// maxTrackedIdentities bounds the per-identity attempt counters; beyond
// the bound, unseen identities draw as attempt 0 every time (still
// seeded, no longer occurrence-distinct).
const maxTrackedIdentities = 1 << 16

// Injector is the fault-injecting RoundTripper. Wrap a base transport
// with New and hand the result to an http.Client (resrouter) or a
// reverse proxy (reschaos).
type Injector struct {
	plan Plan
	base http.RoundTripper
	// kill, when set, delivers FaultKill to the shard behind the target
	// host. Reports whether a process was actually signalled.
	kill func(host string) bool
	// sleep is the latency-spike clock, swappable in tests.
	sleep func(time.Duration)

	mu       sync.Mutex
	attempts map[uint64]uint64
	kills    int
	trace    uint64 // XOR-fold of per-event hashes: order-independent

	requests  atomic.Int64
	passed    atomic.Int64
	resets    atomic.Int64
	storms    atomic.Int64
	killsSent atomic.Int64
	truncates atomic.Int64
	bitFlips  atomic.Int64
	spikes    atomic.Int64
}

// Option customises an Injector.
type Option func(*Injector)

// WithKillFunc wires the shard-kill hook: it receives the target host
// ("127.0.0.1:9101") and reports whether a process was signalled. Without
// it, kill faults downgrade to connection resets.
func WithKillFunc(kill func(host string) bool) Option {
	return func(in *Injector) { in.kill = kill }
}

// withSleep substitutes the latency clock (tests).
func withSleep(sleep func(time.Duration)) Option {
	return func(in *Injector) { in.sleep = sleep }
}

// New builds an injector over the base transport (nil selects
// http.DefaultTransport).
func New(plan Plan, base http.RoundTripper, opts ...Option) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	in := &Injector{
		plan:     plan,
		base:     base,
		sleep:    time.Sleep,
		attempts: make(map[uint64]uint64),
	}
	for _, opt := range opts {
		opt(in)
	}
	return in
}

// solvePath reports whether the request is solve traffic — the only
// traffic chaos touches.
func solvePath(req *http.Request) bool {
	return req.Method == http.MethodPost && strings.HasPrefix(req.URL.Path, "/v1/solve")
}

// identity fingerprints the request: path plus body bytes, through the
// repository's FNV-1a family. The router resends a bit-identical body on
// failover, so a retry maps to the same identity at the next attempt.
func identity(req *http.Request) (uint64, error) {
	h := sparse.FNV1aString(req.URL.Path)
	if req.GetBody == nil {
		return h, nil
	}
	body, err := req.GetBody()
	if err != nil {
		return 0, err
	}
	defer body.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		for _, b := range buf[:n] {
			h = sparse.FNVMix64(h, uint64(b))
		}
		if err == io.EOF {
			return h, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// nextAttempt returns this identity's occurrence index and increments it.
func (in *Injector) nextAttempt(id uint64) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	n, ok := in.attempts[id]
	if !ok && len(in.attempts) >= maxTrackedIdentities {
		return 0
	}
	in.attempts[id] = n + 1
	return n
}

// eventHash folds one trace event; XOR in the accumulator makes the
// trace hash independent of cross-identity interleaving, so concurrent
// runs of the same request multiset agree.
func eventHash(id, attempt uint64, f Fault) uint64 {
	h := uint64(sparse.FNV1aOffset64)
	h = sparse.FNVMix64(h, id)
	h = sparse.FNVMix64(h, attempt)
	h = sparse.FNVMix64(h, uint64(f))
	return h
}

func (in *Injector) record(id, attempt uint64, f Fault) {
	in.mu.Lock()
	in.trace ^= eventHash(id, attempt, f)
	in.mu.Unlock()
}

// seedMix derives the per-(identity, attempt) PRNG seed.
func seedMix(seed int64, id, attempt uint64) int64 {
	h := uint64(sparse.FNV1aOffset64)
	h = sparse.FNVMix64(h, uint64(seed))
	h = sparse.FNVMix64(h, id)
	h = sparse.FNVMix64(h, attempt)
	return int64(h)
}

// draw picks this attempt's fate. The rng is consumed in a fixed order
// (latency first, then the primary band, then any fault-shape draws at
// corruption time), so every decision is reproducible.
func (in *Injector) draw(rng *rand.Rand) (f Fault, spike bool) {
	if in.plan.PLatency > 0 && rng.Float64() < in.plan.PLatency {
		spike = true
	}
	u := rng.Float64()
	switch {
	case u < in.plan.PReset:
		return FaultReset, spike
	case u < in.plan.PReset+in.plan.P503:
		return Fault503, spike
	case u < in.plan.PReset+in.plan.P503+in.plan.PKill:
		return FaultKill, spike
	case u < in.plan.PReset+in.plan.P503+in.plan.PKill+in.plan.PTruncate:
		return FaultTruncate, spike
	case u < in.plan.PReset+in.plan.P503+in.plan.PKill+in.plan.PTruncate+in.plan.PBitFlip:
		return FaultBitFlip, spike
	}
	return FaultNone, spike
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	if !solvePath(req) {
		return in.base.RoundTrip(req)
	}
	id, err := identity(req)
	if err != nil {
		return nil, err
	}
	attempt := in.nextAttempt(id)
	rng := rand.New(rand.NewSource(seedMix(in.plan.Seed, id, attempt)))
	fault, spike := in.draw(rng)
	in.requests.Add(1)
	if spike && in.plan.LatencyMillis > 0 {
		in.spikes.Add(1)
		in.sleep(time.Duration(in.plan.LatencyMillis) * time.Millisecond)
	}

	// A kill with no hook (or a spent kill budget) degrades to a reset so
	// the draw sequence — and with it the trace — stays plan-shaped.
	if fault == FaultKill {
		in.mu.Lock()
		spent := in.kill == nil || (in.plan.MaxKills > 0 && in.kills >= in.plan.MaxKills)
		if !spent {
			in.kills++
		}
		in.mu.Unlock()
		if spent {
			fault = FaultReset
		}
	}
	in.record(id, attempt, fault)

	switch fault {
	case FaultReset:
		in.resets.Add(1)
		return nil, ErrInjectedReset
	case Fault503:
		in.storms.Add(1)
		return synth503(req), nil
	case FaultKill:
		in.killsSent.Add(1)
		// Signal the shard, then forward into the dying process: the
		// request races the death, which is exactly the mid-solve crash
		// the router must absorb.
		in.kill(req.URL.Host)
		return in.base.RoundTrip(req)
	}

	resp, err := in.base.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK || resp.Body == nil {
		// Only successful payloads are worth corrupting: errors already
		// exercise the retry path.
		return resp, err
	}
	switch fault {
	case FaultTruncate:
		in.truncates.Add(1)
		resp.Body = &truncatingBody{rc: resp.Body, frac: 0.1 + 0.8*rng.Float64()}
	case FaultBitFlip:
		in.bitFlips.Add(1)
		if err := flipBit(resp, rng); err != nil {
			resp.Body.Close()
			return nil, err
		}
	default:
		in.passed.Add(1)
	}
	return resp, nil
}

// synth503 fabricates the refusal a saturated or draining shard would
// answer, retry hint included, so the router's internal retry path sees
// a fully-formed envelope.
func synth503(req *http.Request) *http.Response {
	body, _ := json.Marshal(&api.Error{
		Schema:           api.SchemaVersion,
		Code:             api.CodeDraining,
		Message:          "chaos: injected 503 storm",
		RetryAfterMillis: 10,
	})
	body = append(body, '\n')
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		StatusCode:    http.StatusServiceUnavailable,
		Status:        "503 Service Unavailable",
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatingBody yields a seeded fraction of the underlying body, then
// fails the read — the reader sees a connection that died mid-body.
type truncatingBody struct {
	rc   io.ReadCloser
	frac float64

	buf  []byte
	off  int
	read bool
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if !t.read {
		all, err := io.ReadAll(t.rc)
		if err != nil {
			return 0, err
		}
		keep := int(t.frac * float64(len(all)))
		if keep >= len(all) && len(all) > 0 {
			keep = len(all) - 1
		}
		t.buf = all[:keep]
		t.read = true
	}
	if t.off >= len(t.buf) {
		return 0, fmt.Errorf("chaos: injected mid-body truncation after %d bytes: %w", len(t.buf), io.ErrUnexpectedEOF)
	}
	n := copy(p, t.buf[t.off:])
	t.off += n
	return n, nil
}

func (t *truncatingBody) Close() error { return t.rc.Close() }

// flipBit rewrites the response body with one seeded bit inverted,
// length and headers preserved — corruption only a content digest can
// see.
func flipBit(resp *http.Response, rng *rand.Rand) error {
	all, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(all) > 0 {
		i := rng.Intn(len(all))
		all[i] ^= 1 << uint(rng.Intn(8))
	}
	resp.Body = io.NopCloser(bytes.NewReader(all))
	resp.ContentLength = int64(len(all))
	return nil
}

// Stats snapshots the injector for /routerz and reschaos's /chaosz.
func (in *Injector) Stats() *api.ChaosStats {
	in.mu.Lock()
	trace := in.trace
	in.mu.Unlock()
	return &api.ChaosStats{
		Seed:          in.plan.Seed,
		Requests:      in.requests.Load(),
		Passed:        in.passed.Load(),
		Resets:        in.resets.Load(),
		Storms503:     in.storms.Load(),
		Kills:         in.killsSent.Load(),
		Truncations:   in.truncates.Load(),
		BitFlips:      in.bitFlips.Load(),
		LatencySpikes: in.spikes.Load(),
		TraceHash:     fmt.Sprintf("fnv1a:%016x", trace),
	}
}
