package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/server"
)

// SchemaVersion identifies the wire layout of every router endpoint —
// /routerz, /v1/healthz, the admin surface and the error envelope. It is
// the shared contract version from internal/api.
const SchemaVersion = api.SchemaVersion

// Wire types, aliased from the shared contract package. See internal/api
// for field documentation.
type (
	RouterzResponse = api.RouterzResponse
	ShardStatus     = api.ShardStatus
	KeyDistribution = api.KeyDistribution
	RouterHealth    = api.RouterHealth
)

// maxBodyBytes mirrors the shard-side request bound.
const maxBodyBytes = 64 << 20

// maxTrackedKeys bounds the distinct-key distribution kept for /routerz;
// once full, unseen keys are no longer tracked — /routerz then reports
// the distribution as saturated and its distinct count as a floor.
const maxTrackedKeys = 4096

// Retry-After hints relayed with refusals, mirroring the shard side.
const (
	retryAfterSaturatedMillis = 250
	retryAfterDrainingMillis  = 1000
)

// Config parameterises the router. Zero values select the defaults.
type Config struct {
	// Vnodes is the virtual-node count per shard (default DefaultVnodes).
	Vnodes int
	// Replicas is how many distinct ring successors a request may try:
	// the key's owner plus Replicas−1 failover candidates (default 2).
	Replicas int
	// ProbeInterval paces the active health checks (default 2s);
	// ProbeTimeout bounds each probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold ejects a shard after this many consecutive probe
	// failures, and opens the passive circuit after this many
	// consecutive forwarded-request failures (default 3).
	FailThreshold int
	// RequestTimeout bounds a forwarded solve when the request names no
	// deadline of its own (default 2m). Requests carrying timeout_ms get
	// that deadline plus scheduling slack instead.
	RequestTimeout time.Duration
	// RetryBodyBytes caps the request bodies eligible for replica
	// failover (default 8 MiB; negative = no cap). Failover needs the
	// whole body buffered for a bit-identical resend, so bodies above the
	// cap — huge inline matrices — are forwarded to the key's owner only,
	// in a single attempt, instead of pinning the buffer across retries.
	RetryBodyBytes int64
	// RetryBudget is the per-request attempt ceiling (first try included,
	// default 4): attempts cycle the ring candidates until one answer is
	// relayable or the budget is spent. The budget is what keeps an
	// injected fault storm from amplifying into a retry storm — corrupt
	// responses, resets and 5xxs all draw from the same pool.
	RetryBudget int
	// RetryBackoff is the base delay before the second attempt (default
	// 25ms), doubling per attempt with ±50% jitter. A shard-supplied
	// retry_after_ms hint (429/503 envelope) overrides the backoff when
	// longer. Backoff paces retries only; it never touches result bytes.
	RetryBackoff time.Duration
	// AdminToken enables the /v1/admin surface: requests must carry it as
	// a bearer token. Empty disables the surface entirely (403).
	AdminToken string
	// Runtime materialises shards declared without an address — topology
	// entries and admin adds whose addr is empty ask it to start the
	// process and report where it listens. Nil means address-less shards
	// are rejected.
	Runtime ShardRuntime
	// Transport, when set, replaces the default shard-facing transport —
	// the seam the chaos injector wires into (-chaos-plan).
	Transport http.RoundTripper
	// ChaosStats, when set, contributes a fault-injection snapshot to
	// /routerz (the chaos section is omitted otherwise).
	ChaosStats func() *api.ChaosStats
	// HedgeEnabled turns on hedged replica reads: an idempotent solve is
	// armed on the next ring successor after a tail-latency delay, and the
	// first digest-verified answer wins (the loser is canceled). Safe
	// because every solve is deterministic — both replicas compute
	// bit-identical bytes, so which one answers never changes the result.
	HedgeEnabled bool
	// HedgeDelay is the arm delay used until a shard has enough latency
	// samples for a P99 estimate (default 30ms). Once the per-shard window
	// fills, the observed P99 replaces it — the hedge then fires only for
	// requests already slower than 99% of their peers.
	HedgeDelay time.Duration
	// HedgeMaxDelay caps the P99-derived arm delay (default 2s): a shard
	// whose tail blew out still gets hedged within a bounded wait.
	HedgeMaxDelay time.Duration
	// TraceRing bounds the completed traces retained for /v1/tracez
	// (default obs.DefaultTraceRing).
	TraceRing int
	// Logger receives request-scoped structured log lines (failovers,
	// budget exhaustion), each carrying the request's trace_id. Nil
	// discards them.
	Logger *slog.Logger
	// Observe, when set, is called once with the router's metrics
	// registry so the embedding process can contribute series of its own
	// (the resrouter daemon registers supervisor restart counts here).
	Observe func(*obs.Registry)
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.RetryBodyBytes == 0 {
		c.RetryBodyBytes = 8 << 20
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 2 * time.Second
	}
	return c
}

// Shard names one routing target: a unique label and the base URL of a
// resilientd process. An empty Addr asks the configured ShardRuntime to
// materialise the process. VnodeWeight scales the shard's share of the
// ring relative to the router's default vnode count (0 = 1.0).
type Shard struct {
	Name        string  `json:"name"`
	Addr        string  `json:"addr"`
	VnodeWeight float64 `json:"vnode_weight,omitempty"`
}

// maxVnodeWeight bounds a shard's relative ring weight: high enough for
// any sane capacity skew, low enough that one entry cannot blow the
// point list up.
const maxVnodeWeight = 16.0

// vnodesFor maps a relative weight to a concrete vnode count on this
// router's ring (weight 0 = the default count; always at least 1).
func (r *Router) vnodesFor(weight float64) int {
	if weight == 0 {
		return r.cfg.Vnodes
	}
	n := int(weight*float64(r.cfg.Vnodes) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Router is the consistent-hash routing tier. Construct with New, mount
// Handler, Shutdown to drain. Topology is live: Apply, AddShard,
// DrainShard and RemoveShard reshape the ring under traffic with minimal
// key movement.
type Router struct {
	cfg     Config
	client  *http.Client
	runtime ShardRuntime

	// applyMu serialises topology mutations (Apply and the admin verbs)
	// against each other; readers of ring/shards take ringMu only.
	applyMu sync.Mutex

	ringMu sync.RWMutex
	ring   *Ring
	shards map[string]*shardState

	keysMu sync.Mutex
	keys   map[uint64]string // key hash -> owning shard at first routing

	mux     *http.ServeMux
	started time.Time
	// drainMu orders solve admission against StartDraining: an admission
	// holds the read side while it checks draining and registers with
	// inflight, so once StartDraining returns, no new inflight.Add can
	// race Shutdown's inflight.Wait at zero.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup
	stopOnce sync.Once
	stop     chan struct{}
	probing  sync.WaitGroup

	routed     atomic.Int64
	failovers  atomic.Int64
	unroutable atomic.Int64

	// Integrity counters: every forwarded response is digest- and
	// schema-verified before relay (see fetch).
	digestVerified   atomic.Int64
	corruptResponses atomic.Int64
	retriesSpent     atomic.Int64
	budgetExhausted  atomic.Int64

	// Hedge counters (the /routerz hedge section).
	hedgeArmed          atomic.Int64 // secondary requests actually launched
	hedgeWins           atomic.Int64 // races won by the hedge
	hedgePrimaryWins    atomic.Int64 // races won by the primary after arming
	hedgeCanceled       atomic.Int64 // losers canceled while still in flight
	streamedPassthrough atomic.Int64 // streaming solves relayed unbuffered

	tracer  *obs.Tracer
	metrics *obs.Registry
	reqHist *obs.Histogram
	logger  *slog.Logger
}

// New builds a router over the shard set and starts its health prober.
// Shards start healthy (optimistic admission); the prober ejects dead
// ones within FailThreshold probe intervals. Shards with an empty Addr
// are materialised through cfg.Runtime.
func New(cfg Config, shards []Shard) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		return nil, errors.New("router: empty shard set")
	}
	r := &Router{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport},
		runtime: cfg.Runtime,
		ring:    NewRing(cfg.Vnodes),
		shards:  make(map[string]*shardState, len(shards)),
		keys:    make(map[uint64]string),
		started: time.Now(),
		stop:    make(chan struct{}),
		tracer:  obs.NewTracer(api.TierRouter, cfg.TraceRing),
		logger:  cfg.Logger,
	}
	if r.logger == nil {
		r.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	r.registerMetrics()
	if cfg.Observe != nil {
		cfg.Observe(r.metrics)
	}
	for _, sh := range shards {
		if sh.Name == "" {
			return nil, fmt.Errorf("router: shard needs a name (got %+v)", sh)
		}
		if _, dup := r.shards[sh.Name]; dup {
			return nil, fmt.Errorf("router: duplicate shard name %q", sh.Name)
		}
		st, err := r.materialize(sh)
		if err != nil {
			return nil, err
		}
		r.shards[sh.Name] = st
		r.ring.AddN(sh.Name, r.vnodesFor(sh.VnodeWeight))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", r.handleSolve)
	mux.HandleFunc("/v1/solve/batch", r.handleSolveBatch)
	mux.HandleFunc("/routerz", r.handleRouterz)
	mux.HandleFunc("/v1/statusz", r.handleStatusz)
	mux.HandleFunc("/v1/healthz", r.handleHealthz)
	mux.HandleFunc("/v1/tracez", r.handleTracez)
	mux.Handle("/metrics", r.metrics.Handler())
	api.MountPprof(mux, cfg.AdminToken)
	r.mountAdmin(mux)
	r.mux = mux
	r.probing.Add(1)
	go r.probeLoop(time.NewTicker(cfg.ProbeInterval))
	return r, nil
}

// materialize turns a topology entry into live shard state, starting the
// process through the runtime when the entry names no address.
func (r *Router) materialize(sh Shard) (*shardState, error) {
	addr := sh.Addr
	managed := false
	if addr == "" {
		if r.runtime == nil {
			return nil, fmt.Errorf("router: shard %q has no addr and no runtime is configured", sh.Name)
		}
		started, err := r.runtime.Start(sh.Name)
		if err != nil {
			return nil, fmt.Errorf("router: starting shard %q: %w", sh.Name, err)
		}
		addr = started
		managed = true
	}
	return &shardState{name: sh.Name, addr: addr, managed: managed, healthy: true, weight: sh.VnodeWeight}, nil
}

// Handler returns the HTTP API: /v1/solve (routed), /routerz,
// /v1/healthz and the token-gated /v1/admin surface.
func (r *Router) Handler() http.Handler { return r.mux }

// StartDraining refuses new solves with 503 without blocking.
func (r *Router) StartDraining() {
	r.drainMu.Lock()
	r.draining.Store(true)
	r.drainMu.Unlock()
}

// Shutdown drains: new solves are refused, in-flight forwards complete,
// the prober stops, runtime-managed shards are stopped. Idempotent.
func (r *Router) Shutdown() {
	r.StartDraining()
	r.stopOnce.Do(func() { close(r.stop) })
	r.probing.Wait()
	r.inflight.Wait()
	if r.runtime != nil {
		r.ringMu.RLock()
		var managed []string
		for n, s := range r.shards {
			if s.managed {
				managed = append(managed, n)
			}
		}
		r.ringMu.RUnlock()
		for _, n := range managed {
			_ = r.runtime.Stop(n)
		}
	}
	r.client.CloseIdleConnections()
}

// candidates returns the failover sequence for a key: up to Replicas
// distinct ring successors, routable shards first (in ring order), then —
// only if every candidate is ejected — the unhealthy ones anyway, so a
// fully-ejected shard set degrades to optimistic forwarding instead of
// refusing outright. Drained shards are never candidates: they are off
// the ring, so Successors cannot name them.
func (r *Router) candidates(key string) []*shardState {
	r.ringMu.RLock()
	names := r.ring.Successors(key, r.cfg.Replicas)
	out := make([]*shardState, 0, len(names))
	var down []*shardState
	for _, n := range names {
		if s := r.shards[n]; s != nil {
			if s.isRoutable() {
				out = append(out, s)
			} else {
				down = append(down, s)
			}
		}
	}
	r.ringMu.RUnlock()
	return append(out, down...)
}

// trackKey attributes a routed key to the shard that served it, for the
// /routerz distribution (bounded; drops attribution past the cap).
func (r *Router) trackKey(key string, shard string) {
	h := KeyHash(key)
	r.keysMu.Lock()
	if _, ok := r.keys[h]; ok || len(r.keys) < maxTrackedKeys {
		r.keys[h] = shard
	}
	r.keysMu.Unlock()
}

// forgetShardKeys drops the key attributions of a shard leaving the ring
// (drain or removal): its keys re-attribute to their new owners as
// traffic replays them, so /routerz reflects the post-change placement.
func (r *Router) forgetShardKeys(name string) {
	r.keysMu.Lock()
	for h, shard := range r.keys {
		if shard == name {
			delete(r.keys, h)
		}
	}
	r.keysMu.Unlock()
}

func (r *Router) handleSolve(w http.ResponseWriter, req *http.Request) {
	r.routeSolve(w, req, "/v1/solve")
}

func (r *Router) handleSolveBatch(w http.ResponseWriter, req *http.Request) {
	r.routeSolve(w, req, "/v1/solve/batch")
}

// routeSolve forwards a single or batched solve to the shard owning its
// matrix identity, failing over across ring replicas. Batch requests route
// by the same key as their singles — the embedded SolveRequest carries the
// matrix — so batched and single solves of one matrix warm one shard.
func (r *Router) routeSolve(w http.ResponseWriter, req *http.Request, path string) {
	if req.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, errors.New("POST only"), 0)
		return
	}
	// Mint (or adopt) the request's trace ID before anything can fail:
	// every answer this handler writes — success or error envelope —
	// carries the header, and every shard attempt forwards it.
	tr := r.tracer.Start(req.Header.Get(api.TraceHeader))
	defer r.tracer.Finish(tr)
	w.Header().Set(api.TraceHeader, tr.ID())
	r.drainMu.RLock()
	if r.draining.Load() {
		r.drainMu.RUnlock()
		tr.SetError(api.CodeDraining)
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, errors.New("router: shutting down"), retryAfterDrainingMillis)
		return
	}
	r.inflight.Add(1)
	r.drainMu.RUnlock()
	defer r.inflight.Done()

	// The body is read whole up front: the routing key comes out of it,
	// and a retry on the next replica needs to resend it bit-identically.
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		tr.SetError(api.CodeBadRequest)
		respondBadRequest(w, fmt.Errorf("reading request: %w", err))
		return
	}
	var sreq api.SolveRequest
	if path == "/v1/solve/batch" {
		var breq api.BatchSolveRequest
		if err := json.Unmarshal(body, &breq); err != nil {
			tr.SetError(api.CodeBadRequest)
			respondBadRequest(w, fmt.Errorf("decoding request: %w", err))
			return
		}
		breq.WithDefaults()
		if err := breq.Validate(); err != nil {
			tr.SetError(api.CodeBadRequest)
			respondBadRequest(w, err)
			return
		}
		sreq = breq.SolveRequest
	} else {
		if err := json.Unmarshal(body, &sreq); err != nil {
			tr.SetError(api.CodeBadRequest)
			respondBadRequest(w, fmt.Errorf("decoding request: %w", err))
			return
		}
		sreq.WithDefaults()
		if err := sreq.Validate(); err != nil {
			tr.SetError(api.CodeBadRequest)
			respondBadRequest(w, err)
			return
		}
	}
	// The routing key is the shard-side cache identity, so a matrix's
	// artifacts warm exactly one shard.
	id, err := server.ResolveIdentity(&sreq)
	if err != nil {
		tr.SetError(api.CodeBadRequest)
		respondBadRequest(w, err)
		return
	}
	cands := r.candidates(id.Key)
	if len(cands) == 0 {
		r.unroutable.Add(1)
		tr.SetError(api.CodeUnroutable)
		api.WriteError(w, http.StatusBadGateway, api.CodeUnroutable, errors.New("router: no shard available"), 0)
		return
	}
	if path == "/v1/solve" && wantsStream(req) {
		// Streaming is explicitly non-idempotent at the relay layer: frames
		// go to the client as they arrive, so once the stream starts there
		// is nothing to retry, hedge or buffer. Dedicated pass-through path.
		r.streamSolve(w, req, &sreq, id.Key, body, cands, tr)
		return
	}
	budget := r.cfg.RetryBudget
	if r.cfg.RetryBodyBytes > 0 && int64(len(body)) > r.cfg.RetryBodyBytes {
		// Too large to hold for a resend: single attempt on the key's
		// owner, no failover. The solve still runs; only retry is waived.
		cands = cands[:1]
		budget = 1
	}

	timeout := r.cfg.RequestTimeout
	if sreq.TimeoutMillis > 0 {
		// Respect the request's own deadline plus forwarding slack; the
		// shard still enforces the precise one.
		timeout = time.Duration(sreq.TimeoutMillis)*time.Millisecond + 15*time.Second
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	defer cancel()

	// The first attempt may be hedged: when enabled and at least two
	// routable replicas exist, the request goes to the lowest-EWMA shard
	// with a second copy armed on the next-best after a tail-derived
	// delay. A hedged round is still one attempt against the budget —
	// hedging trades a duplicate request for latency, never extra retries.
	hedgeP, hedgeS := (*shardState)(nil), (*shardState)(nil)
	if r.cfg.HedgeEnabled && budget > 1 && req.Header.Get(api.HedgeHeader) != api.HedgeOff {
		hedgeP, hedgeS = hedgePair(cands)
	}

	// Attempts cycle the candidate list until one response is relayable
	// or the per-request budget is spent. The budget bounds every retry
	// cause at once — connection failures, 5xx refusals and corrupt
	// (digest- or schema-failing) responses — so a fault storm between
	// router and shards cannot amplify into a retry storm.
	var lastErr error
	var retryHint time.Duration
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			r.failovers.Add(1)
			r.retriesSpent.Add(1)
			r.logger.Warn("failover retry", "trace_id", tr.ID(), "path", path, "attempt", attempt, "last_error", fmt.Sprint(lastErr))
			if !r.retrySleep(ctx, attempt, retryHint) {
				break
			}
		}
		var rel *relayable
		var hedgedWin bool
		var hint time.Duration
		var err error
		if attempt == 0 && hedgeP != nil {
			rel, hedgedWin, hint, err = r.fetchHedged(ctx, hedgeP, hedgeS, path, body, tr)
		} else {
			// Span bookkeeping stays on this goroutine: the fetch both
			// starts and finishes here, so the span brackets it exactly.
			shard := cands[attempt%len(cands)]
			t0 := tr.Now()
			rel, hint, err = r.fetch(ctx, shard, path, body, tr.ID())
			name := obs.SpanAttempt
			if attempt > 0 {
				name = obs.SpanRetry
			}
			tr.AddSpan(name, shard.name, "", t0, tr.Now()-t0)
		}
		if rel != nil {
			if rel.verifyNanos > 0 {
				tr.AddSpan(obs.SpanDigestVerify, rel.shard.name, "", tr.Now()-rel.verifyNanos, rel.verifyNanos)
			}
			tr.AddSpan(obs.SpanRoute, rel.shard.name, path, 0, tr.Now())
			r.reqHist.Observe(float64(tr.Now()) / 1e9)
			r.relay(w, rel, attempt > 0, hedgedWin)
			r.routed.Add(1)
			r.trackKey(id.Key, rel.shard.name)
			return
		}
		lastErr = err
		retryHint = hint
		if ctx.Err() != nil {
			break
		}
	}
	if ctx.Err() == nil {
		r.budgetExhausted.Add(1)
	}
	r.unroutable.Add(1)
	status := http.StatusBadGateway
	code := api.CodeUnroutable
	retry := 0
	switch {
	case ctx.Err() != nil:
		status = http.StatusGatewayTimeout
		code = api.CodeExpired
	case errors.Is(lastErr, errSaturated):
		// Every candidate was merely full: relay the backpressure as the
		// 429 a single shard would have answered.
		status = http.StatusTooManyRequests
		code = api.CodeSaturated
		retry = retryAfterSaturatedMillis
	}
	tr.SetError(code)
	r.logger.Warn("request exhausted", "trace_id", tr.ID(), "path", path, "code", code, "last_error", fmt.Sprint(lastErr))
	api.WriteError(w, status, code, fmt.Errorf("router: %d attempts over %d candidate shards failed, last: %w", budget, len(cands), lastErr), retry)
}

// errSaturated marks a 429 refusal: retryable on the next replica, and
// relayed as 429 (not 502) when every candidate refuses.
var errSaturated = errors.New("shard queue saturated (429)")

// maxRetryAfterHint clamps a shard-supplied retry_after_ms before the
// router honors it internally: a shard cannot stall a routed request's
// retry loop for longer than this per attempt.
const maxRetryAfterHint = 2 * time.Second

// retrySleep paces one retry: the jittered exponential backoff
// (RetryBackoff·2^(attempt−1), ±50%) or the shard's retry_after hint,
// whichever is longer. Returns false when the request deadline expires
// mid-wait. Jitter decorrelates concurrent retry waves; it never touches
// result bytes, so the determinism gates are indifferent to it.
func (r *Router) retrySleep(ctx context.Context, attempt int, hint time.Duration) bool {
	d := r.cfg.RetryBackoff << uint(attempt-1)
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	if hint > maxRetryAfterHint {
		hint = maxRetryAfterHint
	}
	if hint > d {
		d = hint
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// retryAfterHint pulls the retry_after_ms hint out of a 429/503 envelope
// body, so the internal retry path honors the same backpressure signal
// the envelope relays to clients.
func retryAfterHint(body []byte) time.Duration {
	var e api.Error
	if json.Unmarshal(body, &e) != nil || e.RetryAfterMillis <= 0 {
		return 0
	}
	return time.Duration(e.RetryAfterMillis) * time.Millisecond
}

// relayable is one fully verified shard answer, buffered and ready to
// write to the client. Splitting fetch (talk to the shard, verify) from
// relay (write to the client) is what makes hedging possible: two
// fetches can race with no client-visible effect until one wins.
type relayable struct {
	status  int
	ctype   string
	digest  string
	payload []byte
	shard   *shardState
	// verifyNanos is the time spent digest- and schema-verifying the
	// payload; the winning answer's verification becomes a trace span,
	// recorded by the routing goroutine (never a hedge loser's).
	verifyNanos int64
}

// fetch sends the solve to one shard and returns the verified answer.
// A nil relayable with the cause means the next replica should be
// tried: the solve is deterministic and idempotent, so retrying is
// always safe when the shard could not take the request — a connection
// failure, a 503 (draining) or a 429 (queue saturated; the replica can
// absorb the burst) — or when the response failed integrity
// verification: a stamped digest that does not match the received
// bytes, or a 200 body without the current schema stamp, is treated
// exactly like a connection failure (the bytes are corrupt; the next
// shard computes the identical answer). Responses the shard actually
// computed and that verify — 200s, validation 4xxs, solver 5xxs — are
// relayable, not retried. hint carries a shard-supplied retry_after_ms
// to pace the next attempt.
func (r *Router) fetch(ctx context.Context, s *shardState, path string, body []byte, traceID string) (rel *relayable, hint time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.baseURL()+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		// Propagate the trace so the shard's spans land under the same ID
		// — every attempt of a hedged or failover round shares it.
		hreq.Header.Set(api.TraceHeader, traceID)
	}
	// GetBody lets seam transports (the chaos injector) fingerprint the
	// request without consuming the primary reader.
	hreq.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	s.inflight.Add(1)
	start := time.Now()
	resp, err := r.client.Do(hreq)
	latency := time.Since(start)
	s.inflight.Add(-1)
	if err != nil {
		// A deadline, client disconnect or canceled hedge loser shows up
		// here as a context error: that says nothing about the shard's
		// health, so it must not feed the circuit breaker.
		if ctx.Err() == nil {
			s.notePassive(false, err.Error(), r.cfg.FailThreshold)
		}
		return nil, 0, err
	}
	defer resp.Body.Close()
	s.routed.Add(1)
	s.observeLatency(latency)
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		// Draining or refusing: the next replica can serve this key, after
		// any backoff the shard asked for.
		refusal, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		s.notePassive(false, "shard answered 503", r.cfg.FailThreshold)
		return nil, retryAfterHint(refusal), fmt.Errorf("%s: 503 from shard", s.name)
	case http.StatusTooManyRequests:
		// Saturated, not sick: spill to the replica without feeding the
		// circuit breaker. Backpressure reaches the client only when
		// every candidate refuses.
		refusal, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, retryAfterHint(refusal), fmt.Errorf("%s: %w", s.name, errSaturated)
	}
	// Buffer the body before relaying: once headers go to the client the
	// request cannot fail over, so a connection that dies mid-body (the
	// shard was killed while answering) must surface here — before
	// anything was written — and be retried on the next replica.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		if ctx.Err() == nil {
			s.notePassive(false, err.Error(), r.cfg.FailThreshold)
		}
		return nil, 0, fmt.Errorf("%s: reading shard response: %w", s.name, err)
	}
	// End-to-end integrity: recompute the stamped content digest over the
	// exact received bytes, and require the current schema stamp inside
	// every 200 body. A failure means the bytes in hand are not what the
	// shard computed — never relay them.
	verifyStart := time.Now()
	digest := resp.Header.Get(api.DigestHeader)
	if !api.VerifyDigest(digest, payload) {
		r.corruptResponses.Add(1)
		s.notePassive(false, "response digest mismatch", r.cfg.FailThreshold)
		return nil, 0, fmt.Errorf("%s: response digest mismatch (corrupt body)", s.name)
	}
	if resp.StatusCode == http.StatusOK {
		var stamp struct {
			Schema int `json:"schema"`
		}
		if json.Unmarshal(payload, &stamp) != nil || stamp.Schema != api.SchemaVersion {
			r.corruptResponses.Add(1)
			s.notePassive(false, "response schema violation", r.cfg.FailThreshold)
			return nil, 0, fmt.Errorf("%s: response schema violation (corrupt body)", s.name)
		}
	}
	verifyNanos := time.Since(verifyStart).Nanoseconds()
	if digest != "" {
		r.digestVerified.Add(1)
	}
	s.notePassive(resp.StatusCode < 500, "shard answered "+resp.Status, r.cfg.FailThreshold)
	return &relayable{
		status:      resp.StatusCode,
		ctype:       resp.Header.Get("Content-Type"),
		digest:      digest,
		payload:     payload,
		shard:       s,
		verifyNanos: verifyNanos,
	}, 0, nil
}

// relay writes one verified shard answer to the client, with the
// provenance headers: which shard served it, whether it took a
// failover, and whether the hedge won the race.
func (r *Router) relay(w http.ResponseWriter, rel *relayable, isRetry, hedged bool) {
	h := w.Header()
	if rel.ctype != "" {
		h.Set("Content-Type", rel.ctype)
	}
	if rel.digest != "" {
		// Relay the verified digest so the client can check the final hop.
		h.Set(api.DigestHeader, rel.digest)
	}
	h.Set("X-Resilient-Shard", rel.shard.name)
	if isRetry {
		h.Set("X-Resilient-Failover", "true")
	}
	if hedged {
		h.Set(api.HedgedHeader, "1")
	}
	w.WriteHeader(rel.status)
	w.Write(rel.payload)
}

func (r *Router) handleRouterz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, errors.New("GET only"), 0)
		return
	}
	out := r.routerz()
	api.WriteJSON(w, http.StatusOK, out)
}

// handleStatusz answers the cross-tier introspection contract: the same
// typed RouterzResponse, wrapped in a StatuszResponse that names the
// tier. Shards expose the shard-shaped variant at the same path, so one
// client call pattern reads either tier.
func (r *Router) handleStatusz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, errors.New("GET only"), 0)
		return
	}
	rz := r.routerz()
	api.WriteJSON(w, http.StatusOK, api.StatuszResponse{
		Schema: SchemaVersion,
		Tier:   api.TierRouter,
		Build:  r.buildInfo(),
		Router: &rz,
	})
}

// routerz snapshots the router for /routerz and /v1/statusz.
func (r *Router) routerz() RouterzResponse {
	// Iterate the shard map, not the ring: drained shards are off the
	// ring but operators still need to watch them coast to idle.
	r.ringMu.RLock()
	names := make([]string, 0, len(r.shards))
	for n := range r.shards {
		names = append(names, n)
	}
	sort.Strings(names)
	statuses := make([]ShardStatus, 0, len(names))
	healthy := 0
	for _, n := range names {
		// Report the shard's actual point count on the ring: weighted
		// shards own more or fewer than the default, drained shards zero.
		st := r.shards[n].status(r.ring.VNodes(n))
		if st.Healthy {
			healthy++
		}
		statuses = append(statuses, st)
	}
	r.ringMu.RUnlock()

	perShard := make(map[string]int, len(names))
	r.keysMu.Lock()
	distinct := len(r.keys)
	for _, shard := range r.keys {
		perShard[shard]++
	}
	r.keysMu.Unlock()

	out := RouterzResponse{
		Schema:        SchemaVersion,
		UptimeSeconds: time.Since(r.started).Seconds(),
		Vnodes:        r.cfg.Vnodes,
		Replicas:      r.cfg.Replicas,
		Draining:      r.draining.Load(),
		Shards:        statuses,
		HealthyShards: healthy,
		Routed:        r.routed.Load(),
		Failovers:     r.failovers.Load(),
		Unroutable:    r.unroutable.Load(),
		Keys: KeyDistribution{
			Distinct:  distinct,
			Saturated: distinct >= maxTrackedKeys,
			PerShard:  perShard,
		},
		Integrity: api.IntegrityStats{
			DigestVerified:   r.digestVerified.Load(),
			CorruptResponses: r.corruptResponses.Load(),
			RetriesSpent:     r.retriesSpent.Load(),
			BudgetExhausted:  r.budgetExhausted.Load(),
		},
		Hedge: api.HedgeStats{
			Enabled:             r.cfg.HedgeEnabled,
			Armed:               r.hedgeArmed.Load(),
			Wins:                r.hedgeWins.Load(),
			PrimaryWins:         r.hedgePrimaryWins.Load(),
			LosersCanceled:      r.hedgeCanceled.Load(),
			StreamedPassthrough: r.streamedPassthrough.Load(),
		},
	}
	if r.cfg.HedgeEnabled {
		out.Hedge.BaseDelayMs = float64(r.cfg.HedgeDelay) / 1e6
		out.Hedge.MaxDelayMs = float64(r.cfg.HedgeMaxDelay) / 1e6
	}
	if r.cfg.ChaosStats != nil {
		out.Chaos = r.cfg.ChaosStats()
	}
	return out
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	status := "ok"
	if r.draining.Load() {
		status = "draining"
	}
	healthy := 0
	r.ringMu.RLock()
	for _, s := range r.shards {
		if s.isHealthy() {
			healthy++
		}
	}
	total := len(r.shards)
	r.ringMu.RUnlock()
	api.WriteJSON(w, http.StatusOK, RouterHealth{
		Schema:        SchemaVersion,
		Status:        status,
		HealthyShards: healthy,
		TotalShards:   total,
	})
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func respondBadRequest(w http.ResponseWriter, err error) {
	api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err, 0)
}
