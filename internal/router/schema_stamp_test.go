package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
)

// TestEveryEndpointStampsSchema sweeps the router's whole HTTP surface —
// success bodies, error envelopes, the admin plane, auth failures — and
// asserts every single response carries the wire schema version. A client
// must be able to version-check any answer it gets, including rejections.
func TestEveryEndpointStampsSchema(t *testing.T) {
	_, _, ts := mockRouter(t, Config{AdminToken: "sekrit", Replicas: 2}, "s0", "s1")
	_, _, tsNoAdmin := mockRouter(t, Config{}, "s0")

	good := solveBody(t, "poisson2d", 16)
	cases := []struct {
		name       string
		base       string
		method     string
		path       string
		body       string
		token      string
		wantStatus int
	}{
		{"routerz", ts.URL, http.MethodGet, "/routerz", "", "", http.StatusOK},
		{"statusz", ts.URL, http.MethodGet, "/v1/statusz", "", "", http.StatusOK},
		{"statusz wrong method", ts.URL, http.MethodPost, "/v1/statusz", "", "", http.StatusMethodNotAllowed},
		{"healthz", ts.URL, http.MethodGet, "/v1/healthz", "", "", http.StatusOK},
		{"solve ok", ts.URL, http.MethodPost, "/v1/solve", string(good), "", http.StatusOK},
		{"solve wrong method", ts.URL, http.MethodGet, "/v1/solve", "", "", http.StatusMethodNotAllowed},
		{"solve bad body", ts.URL, http.MethodPost, "/v1/solve", "{not json", "", http.StatusBadRequest},
		{"batch wrong method", ts.URL, http.MethodGet, "/v1/solve/batch", "", "", http.StatusMethodNotAllowed},
		{"batch bad body", ts.URL, http.MethodPost, "/v1/solve/batch", "{not json", "", http.StatusBadRequest},
		{"admin topology", ts.URL, http.MethodGet, "/v1/admin/topology", "", "sekrit", http.StatusOK},
		{"admin no token", ts.URL, http.MethodGet, "/v1/admin/topology", "", "", http.StatusUnauthorized},
		{"admin bad token", ts.URL, http.MethodGet, "/v1/admin/topology", "", "wrong", http.StatusUnauthorized},
		{"admin disabled", tsNoAdmin.URL, http.MethodGet, "/v1/admin/topology", "", "", http.StatusForbidden},
		{"admin unknown path", ts.URL, http.MethodGet, "/v1/admin/bogus", "", "sekrit", http.StatusNotFound},
		{"admin add bad body", ts.URL, http.MethodPost, "/v1/admin/shards", "{not json", "sekrit", http.StatusBadRequest},
		{"admin add conflict", ts.URL, http.MethodPost, "/v1/admin/shards", `{"name":"s0"}`, "sekrit", http.StatusConflict},
		{"admin drain unknown", ts.URL, http.MethodPost, "/v1/admin/shards/nope/drain", "", "sekrit", http.StatusNotFound},
		{"admin remove unknown", ts.URL, http.MethodDelete, "/v1/admin/shards/nope", "", "sekrit", http.StatusNotFound},
		{"tracez", ts.URL, http.MethodGet, "/v1/tracez", "", "", http.StatusOK},
		{"tracez last-n", ts.URL, http.MethodGet, "/v1/tracez?n=2", "", "", http.StatusOK},
		{"tracez by id", ts.URL, http.MethodGet, "/v1/tracez?id=nosuchtrace", "", "", http.StatusOK},
		{"tracez wrong method", ts.URL, http.MethodPost, "/v1/tracez", "", "", http.StatusMethodNotAllowed},
		{"pprof no token", tsNoAdmin.URL, http.MethodGet, "/debug/pprof/", "", "", http.StatusForbidden},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, tc.base+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			if tc.token != "" {
				req.Header.Set("Authorization", "Bearer "+tc.token)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("content type %q, want application/json", ct)
			}
			var stamped struct {
				Schema int `json:"schema"`
			}
			if err := json.Unmarshal(raw, &stamped); err != nil {
				t.Fatalf("response is not JSON: %v (body %s)", err, raw)
			}
			if stamped.Schema != api.SchemaVersion {
				t.Errorf("schema %d, want %d (body %s)", stamped.Schema, api.SchemaVersion, raw)
			}
		})
	}
}
