package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Streaming pass-through. A solve streamed as SSE is the one routed
// request that is explicitly NOT idempotent at the relay layer: frames
// reach the client as the solver produces them, so once the stream has
// started there is nothing left to buffer, retry or hedge. The router
// therefore forwards it on a dedicated fast path — single attempt at
// the best replica, chunks relayed and flushed as they arrive — and if
// the shard dies mid-stream the failure surfaces as a typed terminal
// error frame inside the stream instead of a silent truncation.

// wantsStream reports whether the client asked for an event stream.
func wantsStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamTarget picks the replica a stream goes to: the routable
// candidate with the best measured EWMA latency, falling back to the
// ring owner (cands[0] — candidates orders routable shards first) when
// nothing is measured yet.
func streamTarget(cands []*shardState) *shardState {
	target := cands[0]
	best := math.Inf(1)
	for _, s := range cands {
		if !s.isRoutable() {
			continue
		}
		if e := s.ewmaLatency(); e > 0 && e < best {
			best, target = e, s
		}
	}
	return target
}

// streamSolve relays one streaming solve unbuffered. Failures before
// the upstream answers are still plain JSON envelopes (the client has
// seen nothing yet); failures after the first relayed byte become a
// typed error frame in the stream.
func (r *Router) streamSolve(w http.ResponseWriter, req *http.Request, sreq *api.SolveRequest, key string, body []byte, cands []*shardState, tr *obs.Active) {
	target := streamTarget(cands)
	streamStart := tr.Now()

	timeout := r.cfg.RequestTimeout
	if sreq.TimeoutMillis > 0 {
		timeout = time.Duration(sreq.TimeoutMillis)*time.Millisecond + 15*time.Second
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	defer cancel()

	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target.baseURL()+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		r.unroutable.Add(1)
		tr.SetError(api.CodeUnroutable)
		api.WriteError(w, http.StatusBadGateway, api.CodeUnroutable, err, 0)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	hreq.Header.Set(api.TraceHeader, tr.ID())
	hreq.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }

	target.inflight.Add(1)
	defer target.inflight.Add(-1)
	resp, err := r.client.Do(hreq)
	if err != nil {
		// Nothing was relayed: answer a plain envelope. (No retry — the
		// client asked for a stream, and a silent replay could interleave
		// a second solver's progress with the first's admission effects.)
		if ctx.Err() == nil {
			target.notePassive(false, err.Error(), r.cfg.FailThreshold)
		}
		r.unroutable.Add(1)
		tr.SetError(api.CodeUnroutable)
		api.WriteError(w, http.StatusBadGateway, api.CodeUnroutable,
			fmt.Errorf("streaming to shard %s: %w", target.name, err), 0)
		return
	}
	defer resp.Body.Close()
	target.routed.Add(1)
	// No observeLatency here on purpose: a stream's wall time is solver
	// time, not relay latency, and would poison the P99 window that
	// derives the hedge arm delay.

	ctype := resp.Header.Get("Content-Type")
	sse := strings.Contains(ctype, "text/event-stream")
	h := w.Header()
	if ctype != "" {
		h.Set("Content-Type", ctype)
	}
	h.Set("X-Resilient-Shard", target.name)
	if sse {
		// Declare the digest trailer before headers go out; the shard
		// stamps the terminal frame's digest there and we relay it after
		// the body below.
		h.Set("Trailer", api.DigestHeader)
		if cc := resp.Header.Get("Cache-Control"); cc != "" {
			h.Set("Cache-Control", cc)
		}
	} else if d := resp.Header.Get(api.DigestHeader); d != "" {
		// A buffered answer (error envelope, or a shard that cannot
		// flush): relay its digest as the usual header.
		h.Set(api.DigestHeader, d)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)

	buf := make([]byte, 32<<10)
	var copyErr error
	clientGone := false
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 && !clientGone {
			if _, werr := w.Write(buf[:n]); werr != nil {
				// The client went away; keep draining upstream so the
				// shard-side solve finishes cleanly, but stop writing.
				clientGone = true
			} else if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			copyErr = rerr
			break
		}
	}

	if copyErr != nil {
		// The upstream connection died mid-stream — the shard was killed
		// or the deadline hit while frames were flowing. Headers are long
		// gone, so the failure is reported in-band: one terminal typed
		// error frame, exactly what a client-side SSE decoder expects.
		if ctx.Err() == nil {
			target.notePassive(false, copyErr.Error(), r.cfg.FailThreshold)
		}
		tr.AddSpan(obs.SpanStream, target.name, "died mid-stream", streamStart, tr.Now()-streamStart)
		tr.SetError(api.CodeUnroutable)
		if sse && !clientGone {
			frame, merr := api.MarshalSSE(&api.SolveEvent{Kind: api.EventError, Error: &api.Error{
				Schema:  SchemaVersion,
				Code:    api.CodeUnroutable,
				Message: fmt.Sprintf("shard %s died mid-stream: %v", target.name, copyErr),
			}})
			if merr == nil {
				w.Write(frame)
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
		return
	}

	if sse {
		// Clean end of stream: relay the shard's terminal-frame digest as
		// our own trailer (set after the body writes, per net/http).
		if d := resp.Trailer.Get(api.DigestHeader); d != "" {
			h.Set(api.DigestHeader, d)
		}
	}
	target.notePassive(resp.StatusCode < 500, "shard answered "+resp.Status, r.cfg.FailThreshold)
	tr.AddSpan(obs.SpanStream, target.name, "", streamStart, tr.Now()-streamStart)
	r.streamedPassthrough.Add(1)
	r.routed.Add(1)
	r.trackKey(key, target.name)
}
