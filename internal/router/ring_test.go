package router

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the real routing keys (spec JSON identities).
		keys[i] = fmt.Sprintf(`spec:{"gen":"poisson2d","n":%d}`, 4+i)
	}
	return keys
}

// TestRingDeterministicPlacement pins that placement is a pure function
// of the member set: insertion order must not matter, and rebuilding the
// ring from scratch reproduces every assignment.
func TestRingDeterministicPlacement(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3", "s4"}
	a := NewRing(64)
	for _, s := range shards {
		a.Add(s)
	}
	b := NewRing(64)
	for i := len(shards) - 1; i >= 0; i-- {
		b.Add(shards[i])
	}
	for _, k := range testKeys(500) {
		if ga, gb := a.Lookup(k), b.Lookup(k); ga != gb {
			t.Fatalf("insertion order changed placement of %q: %s vs %s", k, ga, gb)
		}
	}
}

// TestRingMinimalDisruption counts exactly which keys move when a shard
// leaves: every key the departed shard owned must move (it has no owner
// anymore), and no other key may.
func TestRingMinimalDisruption(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3", "s4"}
	r := NewRing(64)
	for _, s := range shards {
		r.Add(s)
	}
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	const victim = "s2"
	owned := 0
	for _, o := range before {
		if o == victim {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("victim shard owned no keys; test is vacuous")
	}

	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == victim {
			t.Fatalf("key %q still routed to the removed shard", k)
		}
		if after != before[k] {
			moved++
			if before[k] != victim {
				t.Errorf("key %q moved from surviving shard %s to %s", k, before[k], after)
			}
		} else if before[k] == victim {
			t.Errorf("key %q did not move off the removed shard", k)
		}
	}
	if moved != owned {
		t.Errorf("%d keys moved, want exactly the %d the departed shard owned", moved, owned)
	}

	// Re-adding the shard restores the original placement bit for bit.
	r.Add(victim)
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("after re-admission key %q routes to %s, originally %s", k, got, before[k])
		}
	}
}

// TestRingDistribution sanity-checks that virtual nodes spread keys over
// every shard instead of dogpiling one.
func TestRingDistribution(t *testing.T) {
	r := NewRing(64)
	shards := []string{"s0", "s1", "s2", "s3"}
	for _, s := range shards {
		r.Add(s)
	}
	counts := make(map[string]int)
	keys := testKeys(2000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, s := range shards {
		if share := float64(counts[s]) / float64(len(keys)); share < 0.05 {
			t.Errorf("shard %s owns only %.1f%% of keys: %v", s, 100*share, counts)
		}
	}
}

// TestRingSuccessors pins the failover sequence: distinct shards, the
// owner first, capped at the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s0", "s1", "s2"} {
		r.Add(s)
	}
	for _, k := range testKeys(100) {
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 5) = %v, want all 3 distinct shards", k, succ)
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("first successor %s is not the owner %s", succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) repeats %s: %v", k, s, succ)
			}
			seen[s] = true
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0) // defaulted vnodes
	if got := r.Lookup("k"); got != "" {
		t.Errorf("empty ring Lookup = %q, want empty", got)
	}
	if got := r.Successors("k", 2); got != nil {
		t.Errorf("empty ring Successors = %v, want nil", got)
	}
	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if len(r.points) != DefaultVnodes {
		t.Errorf("duplicate Add grew the ring to %d points", len(r.points))
	}
	if got := r.Lookup("k"); got != "only" {
		t.Errorf("single-shard ring Lookup = %q", got)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Errorf("ring not empty after removing the only shard: %d shards, %d points", r.Len(), len(r.points))
	}
}
