package router

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/api"
)

// mountAdmin wires the token-gated control plane:
//
//	GET    /v1/admin/topology              live shard set
//	POST   /v1/admin/shards                add a shard / re-admit a drained one
//	POST   /v1/admin/shards/{label}/drain  latch a shard out of the ring
//	DELETE /v1/admin/shards/{label}        remove a shard entirely
//
// Every endpoint requires "Authorization: Bearer <AdminToken>"; with no
// token configured the whole surface answers 403.
func (r *Router) mountAdmin(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/admin/topology", r.withAdmin(r.handleAdminTopology))
	mux.HandleFunc("POST /v1/admin/shards", r.withAdmin(r.handleAdminAddShard))
	mux.HandleFunc("POST /v1/admin/shards/{label}/drain", r.withAdmin(r.handleAdminDrainShard))
	mux.HandleFunc("DELETE /v1/admin/shards/{label}", r.withAdmin(r.handleAdminRemoveShard))
	// Anything else under the prefix is a 404 in the envelope, not the
	// mux's plain-text default — but still only after passing auth, so
	// the surface leaks nothing unauthenticated.
	mux.HandleFunc("/v1/admin/", r.withAdmin(func(w http.ResponseWriter, req *http.Request) {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
			fmt.Errorf("no admin endpoint %s %s", req.Method, req.URL.Path), 0)
	}))
}

// withAdmin gates a handler behind the bearer token. No configured token
// means the control plane is disabled outright (403 — distinct from the
// 401 a wrong token earns, so operators can tell misconfiguration from
// bad credentials).
func (r *Router) withAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.cfg.AdminToken == "" {
			api.WriteError(w, http.StatusForbidden, api.CodeForbidden,
				errors.New("admin API disabled: router started without an admin token"), 0)
			return
		}
		got := strings.TrimPrefix(req.Header.Get("Authorization"), "Bearer ")
		if subtle.ConstantTimeCompare([]byte(got), []byte(r.cfg.AdminToken)) != 1 {
			api.WriteError(w, http.StatusUnauthorized, api.CodeUnauthorized,
				errors.New("missing or invalid admin token"), 0)
			return
		}
		h(w, req)
	}
}

func (r *Router) handleAdminTopology(w http.ResponseWriter, req *http.Request) {
	api.WriteJSON(w, http.StatusOK, r.CurrentTopology())
}

func (r *Router) handleAdminAddShard(w http.ResponseWriter, req *http.Request) {
	var body api.AdminAddShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&body); err != nil {
		respondBadRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	if body.Schema != 0 && body.Schema != api.SchemaVersion {
		respondBadRequest(w, fmt.Errorf("unsupported schema %d (want %d)", body.Schema, api.SchemaVersion))
		return
	}
	if body.Name == "" {
		respondBadRequest(w, errors.New("shard needs a name"))
		return
	}
	sh, err := r.AddShard(body.Name, body.Addr, body.VnodeWeight)
	if err != nil {
		respondAdminErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.AdminShardResponse{Schema: SchemaVersion, Shard: sh})
}

func (r *Router) handleAdminDrainShard(w http.ResponseWriter, req *http.Request) {
	sh, err := r.DrainShard(req.PathValue("label"))
	if err != nil {
		respondAdminErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.AdminShardResponse{Schema: SchemaVersion, Shard: sh})
}

func (r *Router) handleAdminRemoveShard(w http.ResponseWriter, req *http.Request) {
	label := req.PathValue("label")
	if err := r.RemoveShard(label); err != nil {
		respondAdminErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.AdminRemoveResponse{Schema: SchemaVersion, Removed: label})
}

// respondAdminErr maps the topology verbs' sentinel errors onto the
// envelope: unknown shard → 404, already-active add or last-shard guard
// → 409, anything else (runtime start failures) → 500.
func respondAdminErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShardNotFound):
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, err, 0)
	case errors.Is(err, ErrShardExists), errors.Is(err, ErrLastShard):
		api.WriteError(w, http.StatusConflict, api.CodeConflict, err, 0)
	default:
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, err, 0)
	}
}
