package router

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Observability wiring for the routing tier: every routerz counter is
// exported as a Prometheus series, so a scrape and a /routerz snapshot
// are two views of the same atomics — the obs-smoke CI job reconciles
// them. All mapped series are scrape-time closures over the existing
// counters (nothing is counted twice); the request-latency histogram is
// the only metric the registry owns.
func (r *Router) registerMetrics() {
	m := obs.NewRegistry()
	m.GaugeFunc("resilient_schema_version", "Wire schema version stamped into every response.",
		func() float64 { return float64(api.SchemaVersion) })
	m.GaugeFunc("resilient_router_uptime_seconds", "Seconds since the router started.",
		func() float64 { return time.Since(r.started).Seconds() })
	m.GaugeFunc("resilient_router_draining", "1 while the router refuses new solves for shutdown.",
		func() float64 { return b2f(r.draining.Load()) })
	m.CounterFunc("resilient_router_routed_total", "Solves relayed to a shard (including streamed pass-throughs).",
		func() float64 { return float64(r.routed.Load()) })
	m.CounterFunc("resilient_router_failovers_total", "Attempts re-sent to another replica after a failure.",
		func() float64 { return float64(r.failovers.Load()) })
	m.CounterFunc("resilient_router_unroutable_total", "Requests answered with an error after every candidate failed.",
		func() float64 { return float64(r.unroutable.Load()) })
	m.CounterFunc("resilient_router_digest_verified_total", "Shard responses whose content digest verified before relay.",
		func() float64 { return float64(r.digestVerified.Load()) })
	m.CounterFunc("resilient_router_corrupt_responses_total", "Shard responses discarded for digest or schema violations.",
		func() float64 { return float64(r.corruptResponses.Load()) })
	m.CounterFunc("resilient_router_retries_spent_total", "Retry-budget units consumed across all requests.",
		func() float64 { return float64(r.retriesSpent.Load()) })
	m.CounterFunc("resilient_router_budget_exhausted_total", "Requests that spent their whole retry budget without an answer.",
		func() float64 { return float64(r.budgetExhausted.Load()) })
	m.CounterFunc("resilient_router_hedge_armed_total", "Hedged secondary requests actually launched.",
		func() float64 { return float64(r.hedgeArmed.Load()) })
	m.CounterFunc("resilient_router_hedge_wins_total", "Hedged races won by the secondary.",
		func() float64 { return float64(r.hedgeWins.Load()) })
	m.CounterFunc("resilient_router_hedge_primary_wins_total", "Hedged races won by the primary after the hedge armed.",
		func() float64 { return float64(r.hedgePrimaryWins.Load()) })
	m.CounterFunc("resilient_router_hedge_losers_canceled_total", "Hedge losers canceled while still in flight.",
		func() float64 { return float64(r.hedgeCanceled.Load()) })
	m.CounterFunc("resilient_router_streamed_passthrough_total", "Streaming solves relayed unbuffered.",
		func() float64 { return float64(r.streamedPassthrough.Load()) })
	m.GaugeFunc("resilient_router_healthy_shards", "Shards currently admitting routed traffic.",
		func() float64 {
			r.ringMu.RLock()
			defer r.ringMu.RUnlock()
			n := 0
			for _, s := range r.shards {
				if s.isHealthy() {
					n++
				}
			}
			return float64(n)
		})
	m.GaugeFunc("resilient_router_shards", "Shards in the topology (healthy or not).",
		func() float64 {
			r.ringMu.RLock()
			defer r.ringMu.RUnlock()
			return float64(len(r.shards))
		})
	m.CounterFunc("resilient_router_traces_total", "Requests traced since start.",
		func() float64 { return float64(r.tracer.Total()) })
	r.reqHist = m.Histogram("resilient_router_request_seconds",
		"End-to-end routed request latency (receipt to relay), successful requests.", nil)
	if r.cfg.ChaosStats != nil {
		m.CounterFunc("resilient_router_chaos_requests_total", "Requests seen by the fault-injection transport.",
			func() float64 { return float64(r.cfg.ChaosStats().Requests) })
		m.CounterFunc("resilient_router_chaos_faults_total", "Faults injected by the chaos transport (all kinds).",
			func() float64 {
				c := r.cfg.ChaosStats()
				return float64(c.Resets + c.Storms503 + c.Kills + c.Truncations + c.BitFlips + c.LatencySpikes)
			})
	}
	r.metrics = m
}

// b2f maps a bool onto the 0/1 gauge convention.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func (r *Router) handleTracez(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, errors.New("GET only"), 0)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.TracezSnapshot(r.tracer, api.TierRouter, req))
}

// buildInfo snapshots the running binary for /v1/statusz.
func (r *Router) buildInfo() *api.BuildInfo {
	version, goVersion, maxProcs := obs.Runtime()
	return &api.BuildInfo{
		Version:       version,
		GoVersion:     goVersion,
		GOMAXPROCS:    maxProcs,
		UptimeSeconds: time.Since(r.started).Seconds(),
	}
}
