package router

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/api"
)

// Sentinel errors of the topology verbs; the admin surface maps them to
// HTTP statuses.
var (
	// ErrShardNotFound: the named shard is not in the topology.
	ErrShardNotFound = errors.New("router: shard not found")
	// ErrShardExists: an add named a shard that is already active.
	ErrShardExists = errors.New("router: shard already active")
	// ErrLastShard: draining or removing the shard would leave the ring
	// empty.
	ErrLastShard = errors.New("router: refusing to take the last routable shard out of the ring")
)

// ApplyReport says what a topology apply changed. Shards absent from all
// four lists did not exist before or after.
type ApplyReport struct {
	Added   []string // new shards joined to the ring
	Removed []string // shards taken off the ring and forgotten
	Updated []string // retained shards whose addr changed or drain latch cleared
	Kept    []string // retained shards, untouched
}

// Changed reports whether the apply moved anything.
func (a ApplyReport) Changed() bool {
	return len(a.Added)+len(a.Removed)+len(a.Updated) > 0
}

func (a ApplyReport) String() string {
	return fmt.Sprintf("added=%v removed=%v updated=%v kept=%d", a.Added, a.Removed, a.Updated, len(a.Kept))
}

// Apply reconciles the live ring with a desired topology under traffic,
// with minimal key movement: only shards that join or leave touch the
// ring, so retained shards keep every key they own. Presence in the
// topology means desired-active — a drained shard named by the topology
// is re-admitted (latch cleared, back on the ring). A shard whose entry
// names a new addr is repointed in place without leaving the ring. On any
// error the previous ring keeps serving untouched.
func (r *Router) Apply(topo Topology) (ApplyReport, error) {
	var rep ApplyReport
	if err := topo.Validate(); err != nil {
		return rep, err
	}
	r.applyMu.Lock()
	defer r.applyMu.Unlock()

	desired := make(map[string]Shard, len(topo.Shards))
	for _, sh := range topo.Shards {
		desired[sh.Name] = sh
	}

	// Phase 1 (no locks): materialise joiners. A start failure aborts the
	// whole apply — already-started joiners are stopped again and the
	// live ring is left exactly as it was.
	r.ringMu.RLock()
	var joiners []Shard
	for _, sh := range topo.Shards {
		if _, ok := r.shards[sh.Name]; !ok {
			joiners = append(joiners, sh)
		}
	}
	r.ringMu.RUnlock()
	states := make(map[string]*shardState, len(joiners))
	for _, sh := range joiners {
		st, err := r.materialize(sh)
		if err != nil {
			for started, s := range states {
				if s.managed && r.runtime != nil {
					_ = r.runtime.Stop(started)
				}
			}
			return rep, err
		}
		states[sh.Name] = st
	}

	// Phase 2: swap the membership in one critical section.
	var leaverStops []string
	r.ringMu.Lock()
	for name, s := range r.shards {
		want, keep := desired[name]
		if !keep {
			r.ring.Remove(name)
			delete(r.shards, name)
			rep.Removed = append(rep.Removed, name)
			if s.managed {
				leaverStops = append(leaverStops, name)
			}
			continue
		}
		changed := false
		if want.Addr != "" && want.Addr != s.baseURL() {
			s.setAddr(want.Addr)
			changed = true
		}
		if want.VnodeWeight != s.getWeight() {
			// Reweight in place: vnodes keep their canonical "name#i"
			// positions, so only the keys owned by the count difference
			// move — a weighted rebalance is as minimal as a join or leave.
			s.setWeight(want.VnodeWeight)
			if !s.isDrained() {
				r.ring.Remove(name)
				r.ring.AddN(name, r.vnodesFor(want.VnodeWeight))
			}
			changed = true
		}
		if s.isDrained() {
			s.setDrained(false)
			r.ring.AddN(name, r.vnodesFor(s.getWeight()))
			changed = true
		}
		if changed {
			rep.Updated = append(rep.Updated, name)
		} else {
			rep.Kept = append(rep.Kept, name)
		}
	}
	for name, st := range states {
		r.shards[name] = st
		r.ring.AddN(name, r.vnodesFor(st.getWeight()))
		rep.Added = append(rep.Added, name)
	}
	r.ringMu.Unlock()

	for _, name := range rep.Removed {
		r.forgetShardKeys(name)
	}
	if r.runtime != nil {
		for _, name := range leaverStops {
			_ = r.runtime.Stop(name)
		}
	}
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	sort.Strings(rep.Updated)
	sort.Strings(rep.Kept)
	return rep, nil
}

// AddShard joins a new shard to the ring, or re-admits a drained one of
// the same name (clearing the drain latch), or rebalances an active one
// whose weight changed. An empty addr asks the runtime to materialise
// the process; weight 0 selects the router's default vnode count. The
// shard is probed synchronously before it joins, so its health picture
// is current the moment keys can land on it — a dead addr joins as
// ejected and converges through the probe loop like any other ejection.
func (r *Router) AddShard(name, addr string, weight float64) (api.AdminShard, error) {
	if name == "" {
		return api.AdminShard{}, errors.New("router: shard needs a name")
	}
	if weight < 0 || weight > maxVnodeWeight {
		return api.AdminShard{}, fmt.Errorf("router: vnode_weight %g out of (0, %g]", weight, maxVnodeWeight)
	}
	r.applyMu.Lock()
	defer r.applyMu.Unlock()

	r.ringMu.RLock()
	existing := r.shards[name]
	r.ringMu.RUnlock()

	if existing != nil {
		if !existing.isDrained() {
			if weight != 0 && weight != existing.getWeight() {
				// Weighted re-add of an active shard = in-place rebalance:
				// vnodes keep their canonical positions, so only the keys
				// owned by the count difference change owner.
				existing.setWeight(weight)
				r.ringMu.Lock()
				r.ring.Remove(name)
				r.ring.AddN(name, r.vnodesFor(weight))
				r.ringMu.Unlock()
				return existing.adminView(), nil
			}
			return existing.adminView(), fmt.Errorf("%w: %q", ErrShardExists, name)
		}
		// Re-admission: same state machine as a probe re-admission, just
		// with the latch cleared first so the probe outcome can stick.
		if addr != "" {
			existing.setAddr(addr)
		}
		if weight != 0 {
			existing.setWeight(weight)
		}
		existing.setDrained(false)
		r.probe(existing)
		r.ringMu.Lock()
		r.ring.AddN(name, r.vnodesFor(existing.getWeight()))
		r.ringMu.Unlock()
		return existing.adminView(), nil
	}

	st, err := r.materialize(Shard{Name: name, Addr: addr, VnodeWeight: weight})
	if err != nil {
		return api.AdminShard{}, err
	}
	r.probe(st)
	r.ringMu.Lock()
	r.shards[name] = st
	r.ring.AddN(name, r.vnodesFor(weight))
	r.ringMu.Unlock()
	return st.adminView(), nil
}

// DrainShard latches the shard out of the ring: new keys route past it
// (its keys move to their ring successors), in-flight requests finish,
// probes keep watching it, and only an add of the same name brings it
// back. Draining the last routable shard is refused. Idempotent.
func (r *Router) DrainShard(name string) (api.AdminShard, error) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()

	r.ringMu.RLock()
	s := r.shards[name]
	routable := 0
	for _, sh := range r.shards {
		if !sh.isDrained() {
			routable++
		}
	}
	r.ringMu.RUnlock()
	if s == nil {
		return api.AdminShard{}, fmt.Errorf("%w: %q", ErrShardNotFound, name)
	}
	if s.isDrained() {
		return s.adminView(), nil
	}
	if routable <= 1 {
		return api.AdminShard{}, fmt.Errorf("%w (%q is the only one left)", ErrLastShard, name)
	}
	s.setDrained(true)
	r.ringMu.Lock()
	r.ring.Remove(name)
	r.ringMu.Unlock()
	r.forgetShardKeys(name)
	return s.adminView(), nil
}

// RemoveShard deletes the shard from the topology entirely, stopping its
// process when the runtime started it. An active shard may be removed
// directly (drain first to let in-flight work finish); removing the last
// routable shard is refused.
func (r *Router) RemoveShard(name string) error {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()

	r.ringMu.RLock()
	s := r.shards[name]
	routable := 0
	for _, sh := range r.shards {
		if !sh.isDrained() {
			routable++
		}
	}
	r.ringMu.RUnlock()
	if s == nil {
		return fmt.Errorf("%w: %q", ErrShardNotFound, name)
	}
	if !s.isDrained() && routable <= 1 {
		return fmt.Errorf("%w (%q is the only one left)", ErrLastShard, name)
	}
	r.ringMu.Lock()
	r.ring.Remove(name)
	delete(r.shards, name)
	r.ringMu.Unlock()
	r.forgetShardKeys(name)
	if s.managed && r.runtime != nil {
		_ = r.runtime.Stop(name)
	}
	return nil
}

// CurrentTopology snapshots the live shard set for the admin API,
// sorted by name.
func (r *Router) CurrentTopology() api.AdminTopologyResponse {
	r.ringMu.RLock()
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.ringMu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].name < shards[j].name })
	out := api.AdminTopologyResponse{
		Schema:   SchemaVersion,
		Vnodes:   r.cfg.Vnodes,
		Replicas: r.cfg.Replicas,
		Shards:   make([]api.AdminShard, 0, len(shards)),
	}
	for _, s := range shards {
		out.Shards = append(out.Shards, s.adminView())
	}
	return out
}

// adminView snapshots the shard for the admin API.
func (s *shardState) adminView() api.AdminShard {
	s.mu.Lock()
	v := api.AdminShard{
		Name:        s.name,
		Addr:        s.addr,
		State:       s.stateLocked(),
		Healthy:     s.healthy,
		VnodeWeight: s.weight,
	}
	s.mu.Unlock()
	v.Inflight = s.inflight.Load()
	return v
}
