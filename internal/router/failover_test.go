package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
)

// realShard is a full resident solve service mounted as one shard.
type realShard struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
}

func newRealShard(t *testing.T, name string) *realShard {
	t.Helper()
	s := server.New(server.Config{Workers: 1, Concurrency: 2, QueueDepth: 32, ShardLabel: name})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return &realShard{name: name, srv: s, ts: ts}
}

func (s *realShard) kill() {
	s.ts.CloseClientConnections()
	s.ts.Close()
}

// routedSolve posts through the router and returns the full response.
func routedSolve(t *testing.T, url string, req *server.SolveRequest) (server.SolveResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed solve: status %d", resp.StatusCode)
	}
	var sr server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr, resp.Header.Get("X-Resilient-Shard")
}

// TestFailoverDeterminism is the sharded determinism gate, live: a mix
// of matrices is served through the router over three real solve
// services, one shard is killed, and every key must (1) keep answering,
// (2) fail over to exactly its next ring replica while all other keys
// stay put — the live minimal-disruption property — and (3) return
// residual hashes bit-identical to before the kill and to direct,
// router-less serving.
func TestFailoverDeterminism(t *testing.T) {
	shards := []*realShard{newRealShard(t, "s0"), newRealShard(t, "s1"), newRealShard(t, "s2")}
	specs := make([]Shard, len(shards))
	for i, s := range shards {
		specs[i] = Shard{Name: s.name, Addr: s.ts.URL}
	}
	r, err := New(Config{ProbeInterval: time.Hour, FailThreshold: 3}, specs)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		rts.Close()
		r.Shutdown()
	})

	// A direct, router-less reference service for the hash cross-check.
	direct := newRealShard(t, "direct")

	// Grow the matrix mix until every shard owns at least one key, so
	// the kill below always has victims and survivors.
	var reqs []*server.SolveRequest
	var keys []string
	owners := map[string]bool{}
	for n := 64; n <= 400 && (len(reqs) < 8 || len(owners) < 3); n += 17 {
		for _, gen := range []string{"poisson2d", "tridiag"} {
			spec, err := harness.NewMatrixSpec(gen, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			req := &server.SolveRequest{Matrix: &spec, Seed: 7}
			id, err := server.ResolveIdentity(req)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, req)
			keys = append(keys, id.Key)
			owners[r.ring.Lookup(id.Key)] = true
		}
	}
	if len(owners) != 3 {
		t.Fatalf("mix covers only shards %v; grow the cell set", owners)
	}

	// Phase 1: all healthy. Record placement and hashes.
	hash1 := make([]string, len(reqs))
	shard1 := make([]string, len(reqs))
	for i, req := range reqs {
		sr, shard := routedSolve(t, rts.URL, req)
		if sr.SolveError != "" {
			t.Fatalf("cell %d: solve error %s", i, sr.SolveError)
		}
		hash1[i] = sr.Result.ResidualHash
		shard1[i] = shard
		if want := r.ring.Lookup(keys[i]); shard != want {
			t.Errorf("cell %d served by %s, ring owner is %s", i, shard, want)
		}
		if sr.Result.Shard != shard {
			t.Errorf("cell %d: record provenance %q, routing header %q", i, sr.Result.Shard, shard)
		}
		// Cross-check against direct serving: the routed path must not
		// perturb the solve.
		dsr, _ := routedSolve(t, direct.ts.URL, req)
		if dsr.Result.ResidualHash != hash1[i] {
			t.Errorf("cell %d: routed hash %s != direct hash %s", i, hash1[i], dsr.Result.ResidualHash)
		}
	}

	// Kill s1 mid-campaign, with requests in flight.
	const victim = "s1"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		shards[1].kill()
	}()
	// Phase 2: concurrent re-request of the full mix during/after the
	// kill. Every request must still answer 200 with the same hash.
	hash2 := make([]string, len(reqs))
	shard2 := make([]string, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *server.SolveRequest) {
			defer wg.Done()
			sr, shard := routedSolve(t, rts.URL, req)
			hash2[i], shard2[i] = sr.Result.ResidualHash, shard
		}(i, req)
	}
	wg.Wait()

	for i := range reqs {
		if hash2[i] != hash1[i] {
			t.Errorf("cell %d: hash changed across failover: %s -> %s", i, hash1[i], hash2[i])
		}
		if shard1[i] == victim {
			want := r.ring.Successors(keys[i], 2)[1]
			if shard2[i] != want {
				t.Errorf("cell %d: victim's key served by %s, want next replica %s", i, shard2[i], want)
			}
		} else if shard2[i] != shard1[i] {
			t.Errorf("cell %d: unaffected key moved %s -> %s (disruption beyond the dead shard)", i, shard1[i], shard2[i])
		}
	}

	// Phase 3: steady state after the kill — hashes still identical.
	for i, req := range reqs {
		sr, shard := routedSolve(t, rts.URL, req)
		if sr.Result.ResidualHash != hash1[i] {
			t.Errorf("cell %d: post-failover hash %s != original %s", i, sr.Result.ResidualHash, hash1[i])
		}
		if shard == victim {
			t.Errorf("cell %d still served by the dead shard", i)
		}
	}
}

// routedStatus posts through the router and returns just the status code
// (routedSolve fatals on non-200, which here is the expected outcome).
func routedStatus(t *testing.T, url, path string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestRetryBodyCap pins the bounded-buffering rule: a request body over
// RetryBodyBytes is forwarded once to the key's owner — the solve still
// runs — but is never held for a failover resend, so the same request
// answers 502 when the owner dies, while a router without the cap fails
// over and answers the identical hash.
func TestRetryBodyCap(t *testing.T) {
	shards := []*realShard{newRealShard(t, "s0"), newRealShard(t, "s1")}
	specs := []Shard{
		{Name: shards[0].name, Addr: shards[0].ts.URL},
		{Name: shards[1].name, Addr: shards[1].ts.URL},
	}
	newRouter := func(retryBytes int64) *Router {
		t.Helper()
		r, err := New(Config{ProbeInterval: time.Hour, FailThreshold: 3, RetryBodyBytes: retryBytes}, specs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Shutdown)
		return r
	}
	capped := newRouter(16) // every real request body exceeds 16 bytes
	free := newRouter(-1)   // unbounded: retry always allowed
	cappedTS := httptest.NewServer(capped.Handler())
	freeTS := httptest.NewServer(free.Handler())
	t.Cleanup(func() { cappedTS.Close(); freeTS.Close() })

	spec, err := harness.NewMatrixSpec("poisson2d", 225, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := &server.SolveRequest{Matrix: &spec, Seed: 7}
	id, err := server.ResolveIdentity(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := capped.ring.Lookup(id.Key)

	// Healthy owner: the cap waives only the retry, never the solve.
	sr, shard := routedSolve(t, cappedTS.URL, req)
	if sr.SolveError != "" {
		t.Fatalf("capped healthy solve: %s", sr.SolveError)
	}
	if shard != owner {
		t.Fatalf("served by %s, ring owner is %s", shard, owner)
	}
	hash := sr.Result.ResidualHash

	for _, s := range shards {
		if s.name == owner {
			s.kill()
		}
	}

	// Without the cap the body is held and resent: the request fails over
	// to the surviving replica with a bit-identical answer.
	fsr, fshard := routedSolve(t, freeTS.URL, req)
	if fshard == owner {
		t.Fatalf("failover request served by the dead owner %s", owner)
	}
	if fsr.Result.ResidualHash != hash {
		t.Errorf("failover hash %s != pre-kill hash %s", fsr.Result.ResidualHash, hash)
	}

	// With the cap the single candidate is the dead owner: no resend, 502.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if code := routedStatus(t, cappedTS.URL, "/v1/solve", body); code != http.StatusBadGateway {
		t.Errorf("capped request to dead owner: status %d, want 502", code)
	}
}
