package router

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/server"
)

// traceShard is a shard stand-in that records the trace header of every
// solve it receives — the observability tests' probe for propagation.
// It can refuse its first N requests with 503 (driving failover) and
// stall answers (driving the hedge arm).
type traceShard struct {
	name string
	ts   *httptest.Server

	mu     sync.Mutex
	seen   []string // trace header of each solve request, in arrival order
	refuse int      // initial requests to refuse with 503
	delay  time.Duration
}

func newTraceShard(t *testing.T, name string) *traceShard {
	t.Helper()
	f := &traceShard{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Schema: api.SchemaVersion, Status: "ok"})
	})
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.seen = append(f.seen, r.Header.Get(api.TraceHeader))
		refuse := f.refuse > 0
		if refuse {
			f.refuse--
		}
		delay := f.delay
		f.mu.Unlock()
		if refuse {
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, errors.New("injected refusal"), 1)
			return
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return // canceled hedge loser
			}
		}
		resp := api.SolveResponse{Schema: api.SchemaVersion}
		resp.Result.Schema = api.SchemaVersion
		resp.Result.Reps = 1
		resp.Result.Converged = 1
		resp.Result.ResidualHash = "trace-shard-" + f.name
		if wantsStream(r) {
			sw, err := api.NewSSEWriter(w)
			if err != nil {
				api.WriteJSON(w, http.StatusOK, resp)
				return
			}
			_ = sw.Send(&api.SolveEvent{Kind: api.EventIteration, Iteration: 1, Rho: 0.5})
			_ = sw.Send(&api.SolveEvent{Kind: api.EventResult, Result: &resp})
			return
		}
		api.WriteJSON(w, http.StatusOK, resp)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// traces returns a copy of the trace IDs this shard has seen.
func (f *traceShard) traces() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.seen...)
}

func traceRouter(t *testing.T, cfg Config, fakes ...*traceShard) (*Router, *httptest.Server) {
	t.Helper()
	shards := make([]Shard, len(fakes))
	for i, f := range fakes {
		shards[i] = Shard{Name: f.name, Addr: f.ts.URL}
	}
	r, err := New(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Shutdown()
	})
	return r, ts
}

// postTraced posts a solve with an optional inbound trace header and
// returns the response status plus the echoed trace header.
func postTraced(t *testing.T, url string, body []byte, inbound string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if inbound != "" {
		req.Header.Set(api.TraceHeader, inbound)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get(api.TraceHeader)
}

func routerTraceByID(t *testing.T, url, id string) obs.TraceRecord {
	t.Helper()
	tz, err := api.NewClient(url).Tracez(context.Background(), 0, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(tz.Traces) != 1 {
		t.Fatalf("tracez by id %q returned %d traces", id, len(tz.Traces))
	}
	return tz.Traces[0]
}

func spanNames(rec obs.TraceRecord) map[string]bool {
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	return names
}

func TestRouterMintsTraceAndPropagatesToShard(t *testing.T) {
	sh := newTraceShard(t, "s0")
	_, ts := traceRouter(t, Config{}, sh)

	body := solveBody(t, "poisson2d", 16)
	status, id := postTraced(t, ts.URL, body, "")
	if status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	if id == "" || !obs.ValidTraceID(id) {
		t.Fatalf("router did not mint a valid trace ID: %q", id)
	}
	got := sh.traces()
	if len(got) != 1 || got[0] != id {
		t.Fatalf("shard saw traces %v, want [%s]", got, id)
	}
	rec := routerTraceByID(t, ts.URL, id)
	if rec.Tier != api.TierRouter {
		t.Fatalf("trace tier = %q", rec.Tier)
	}
	names := spanNames(rec)
	if !names[obs.SpanAttempt] || !names[obs.SpanRoute] {
		t.Errorf("router trace missing attempt/route spans: %+v", rec.Spans)
	}

	// A client-supplied trace ID is adopted and propagated verbatim.
	status, id = postTraced(t, ts.URL, body, "client-supplied-7")
	if status != http.StatusOK || id != "client-supplied-7" {
		t.Fatalf("inbound ID not adopted: status %d, id %q", status, id)
	}
	got = sh.traces()
	if got[len(got)-1] != "client-supplied-7" {
		t.Fatalf("inbound ID not propagated to shard: %v", got)
	}
}

func TestRouterTraceSurvivesFailoverRetry(t *testing.T) {
	// Both shards refuse their first request with 503, so the winning
	// answer is guaranteed to arrive on a retry attempt — whatever ring
	// order the key hashes to.
	a, b := newTraceShard(t, "s0"), newTraceShard(t, "s1")
	a.refuse, b.refuse = 1, 1
	_, ts := traceRouter(t, Config{Replicas: 2, RetryBackoff: time.Millisecond}, a, b)

	status, id := postTraced(t, ts.URL, solveBody(t, "poisson2d", 16), "")
	if status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	for _, sh := range []*traceShard{a, b} {
		for i, seen := range sh.traces() {
			if seen != id {
				t.Errorf("%s attempt %d carried trace %q, want %q", sh.name, i, seen, id)
			}
		}
	}
	rec := routerTraceByID(t, ts.URL, id)
	names := spanNames(rec)
	if !names[obs.SpanRetry] {
		t.Errorf("failover trace has no retry span: %+v", rec.Spans)
	}
	if !names[obs.SpanRoute] {
		t.Errorf("failover trace has no route span: %+v", rec.Spans)
	}
}

func TestRouterTraceSurvivesHedgedRace(t *testing.T) {
	// Both shards stall long enough that the 1ms arm delay always fires:
	// the round is a genuine two-shard race, and the loser is canceled
	// while in flight — exactly the shape that would trip a use-after-put
	// on the pooled trace if any fetch goroutine touched it.
	a, b := newTraceShard(t, "s0"), newTraceShard(t, "s1")
	a.delay, b.delay = 50*time.Millisecond, 50*time.Millisecond
	_, ts := traceRouter(t, Config{Replicas: 2, HedgeEnabled: true, HedgeDelay: time.Millisecond}, a, b)

	status, id := postTraced(t, ts.URL, solveBody(t, "poisson2d", 16), "")
	if status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	if !obs.ValidTraceID(id) {
		t.Fatalf("invalid trace ID %q", id)
	}
	// Both racers carried the same ID.
	for _, sh := range []*traceShard{a, b} {
		got := sh.traces()
		if len(got) != 1 || got[0] != id {
			t.Errorf("%s saw traces %v, want [%s]", sh.name, got, id)
		}
	}
	rec := routerTraceByID(t, ts.URL, id)
	names := spanNames(rec)
	if !names[obs.SpanHedgeArm] {
		t.Errorf("hedged trace has no hedge-arm span: %+v", rec.Spans)
	}
	if !names[obs.SpanAttempt] || !names[obs.SpanRoute] {
		t.Errorf("hedged trace missing attempt/route spans: %+v", rec.Spans)
	}
}

func TestRouterTraceSurvivesStreamingPassThrough(t *testing.T) {
	sh := newTraceShard(t, "s0")
	_, ts := traceRouter(t, Config{}, sh)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(solveBody(t, "poisson2d", 16)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get(api.TraceHeader)
	if !obs.ValidTraceID(id) {
		t.Fatalf("streamed response has no valid trace ID: %q", id)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := sh.traces(); len(got) != 1 || got[0] != id {
		t.Fatalf("shard saw traces %v, want [%s]", got, id)
	}
	rec := routerTraceByID(t, ts.URL, id)
	if !spanNames(rec)[obs.SpanStream] {
		t.Errorf("streamed trace has no stream span: %+v", rec.Spans)
	}
}

// scrapeRouterMetrics fetches /metrics and returns every plain
// (label-free) sample.
func scrapeRouterMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestRouterMetricsReconcileWithRouterz(t *testing.T) {
	sh := newTraceShard(t, "s0")
	r, ts := traceRouter(t, Config{}, sh)

	body := solveBody(t, "poisson2d", 16)
	for i := 0; i < 3; i++ {
		if status, _ := postTraced(t, ts.URL, body, ""); status != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, status)
		}
	}
	m := scrapeRouterMetrics(t, ts.URL)
	rz := r.routerz()
	checks := map[string]float64{
		"resilient_schema_version":               float64(api.SchemaVersion),
		"resilient_router_routed_total":          float64(rz.Routed),
		"resilient_router_failovers_total":       float64(rz.Failovers),
		"resilient_router_unroutable_total":      float64(rz.Unroutable),
		"resilient_router_digest_verified_total": float64(rz.Integrity.DigestVerified),
		"resilient_router_healthy_shards":        float64(rz.HealthyShards),
		"resilient_router_shards":                1,
	}
	for name, want := range checks {
		got, ok := m[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if m["resilient_router_routed_total"] != 3 {
		t.Errorf("routed_total = %v, want 3", m["resilient_router_routed_total"])
	}
	if m["resilient_router_request_seconds_count"] != 3 {
		t.Errorf("request_seconds_count = %v, want 3", m["resilient_router_request_seconds_count"])
	}
	if m["resilient_router_traces_total"] != 3 {
		t.Errorf("traces_total = %v, want 3", m["resilient_router_traces_total"])
	}
}

func TestRouterStatuszBuildInfo(t *testing.T) {
	sh := newTraceShard(t, "s0")
	_, ts := traceRouter(t, Config{}, sh)
	st, err := api.NewClient(ts.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Build == nil {
		t.Fatal("router statusz has no build info")
	}
	if !strings.HasPrefix(st.Build.GoVersion, "go") {
		t.Errorf("go_version = %q", st.Build.GoVersion)
	}
	if st.Build.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", st.Build.GOMAXPROCS)
	}
}

// TestTracePropagationAcrossTiers is the PR's acceptance scenario: real
// solver shards behind a hedge-enabled router, one request, and the
// trace ID from the response header retrievable from BOTH tiers'
// /v1/tracez — router spans (route/attempt/hedge bookkeeping) on one
// side, shard spans (queue-wait/solve) on the other, under one ID.
func TestTracePropagationAcrossTiers(t *testing.T) {
	shardURLs := make([]string, 2)
	shards := make([]Shard, 2)
	for i, name := range []string{"s0", "s1"} {
		s := server.New(server.Config{Workers: 1, ShardLabel: name})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Shutdown() })
		shardURLs[i] = ts.URL
		shards[i] = Shard{Name: name, Addr: ts.URL}
	}
	r, err := New(Config{Replicas: 2, HedgeEnabled: true, HedgeDelay: time.Millisecond}, shards)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r.Handler())
	t.Cleanup(func() { rts.Close(); r.Shutdown() })

	status, id := postTraced(t, rts.URL, solveBody(t, "poisson2d", 225), "")
	if status != http.StatusOK {
		t.Fatalf("routed solve: status %d", status)
	}
	if !obs.ValidTraceID(id) {
		t.Fatalf("invalid trace ID %q", id)
	}

	// Router tier: the trace shows the routing work.
	rec := routerTraceByID(t, rts.URL, id)
	if rec.Tier != api.TierRouter {
		t.Fatalf("router trace tier = %q", rec.Tier)
	}
	names := spanNames(rec)
	if !names[obs.SpanAttempt] || !names[obs.SpanRoute] {
		t.Errorf("router trace missing attempt/route spans: %+v", rec.Spans)
	}

	// Shard tier: the same ID names the solve's trace on whichever
	// replica(s) served it (both, when the hedge armed and raced).
	found := 0
	for i, url := range shardURLs {
		tz, err := api.NewClient(url).Tracez(context.Background(), 0, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(tz.Traces) == 0 {
			continue
		}
		found++
		srec := tz.Traces[0]
		if srec.Tier != api.TierShard {
			t.Errorf("shard %d trace tier = %q", i, srec.Tier)
		}
		snames := spanNames(srec)
		if !snames[obs.SpanSolve] || !snames[obs.SpanQueueWait] {
			t.Errorf("shard %d trace missing solve/queue-wait spans: %+v", i, srec.Spans)
		}
		if srec.Solver == nil || srec.Solver.Iterations == 0 {
			t.Errorf("shard %d trace has no solver tallies", i)
		}
	}
	if found == 0 {
		t.Fatalf("trace %s not found on any shard tier", id)
	}
}
