package router

// ShardRuntime materialises shards that the topology declares without an
// address: resrouter plugs in an in-process runtime (-spawn), the
// supervisor plugs in one that forks resilientd child processes, and
// tests plug in MockRuntime. The router calls Start when a topology entry
// or admin add names no addr, and Stop when such a shard is removed (or
// at Shutdown).
//
// Start must return the base URL the shard listens on (e.g.
// "http://127.0.0.1:9000") with the shard already accepting connections —
// the router routes to it immediately. Start may be called again for a
// name that was stopped earlier (an admin remove followed by a re-add);
// runtimes should treat that as a fresh launch. Stop must be idempotent.
type ShardRuntime interface {
	Start(name string) (addr string, err error)
	Stop(name string) error
}
