package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
)

// fakeShard is a minimal shard-API stand-in: it answers /v1/solve with a
// canned body naming itself and /v1/healthz with a settable status, and
// records which requests it served.
type fakeShard struct {
	name string
	ts   *httptest.Server

	mu      sync.Mutex
	served  int
	healthy bool
	code    int // /v1/solve status to answer (0 = 200)
}

func newFakeShard(t *testing.T, name string) *fakeShard {
	t.Helper()
	f := &fakeShard{name: name, healthy: true}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.served++
		code := f.code
		f.mu.Unlock()
		if code != 0 {
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"schema":1,"error":"injected %d"}`, code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema":1,"served_by":%q}`, f.name)
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		ok := f.healthy
		f.mu.Unlock()
		status := "ok"
		if !ok {
			status = "draining"
		}
		json.NewEncoder(w).Encode(server.HealthResponse{Schema: server.SchemaVersion, Status: status})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeShard) setHealthy(ok bool) {
	f.mu.Lock()
	f.healthy = ok
	f.mu.Unlock()
}

func (f *fakeShard) setSolveCode(code int) {
	f.mu.Lock()
	f.code = code
	f.mu.Unlock()
}

func (f *fakeShard) servedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served
}

func testRouter(t *testing.T, cfg Config, fakes ...*fakeShard) (*Router, *httptest.Server) {
	t.Helper()
	shards := make([]Shard, len(fakes))
	for i, f := range fakes {
		shards[i] = Shard{Name: f.name, Addr: f.ts.URL}
	}
	r, err := New(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Shutdown()
	})
	return r, ts
}

func solveBody(t *testing.T, gen string, n int) []byte {
	t.Helper()
	spec, err := harness.NewMatrixSpec(gen, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(server.SolveRequest{Matrix: &spec, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postRouted posts a solve body and returns status, the serving shard
// (from the routing header) and the decoded served_by field.
func postRouted(t *testing.T, url string, body []byte) (int, string, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ServedBy string `json:"served_by"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, resp.Header.Get("X-Resilient-Shard"), out.ServedBy
}

// TestRouterAffinity pins cache affinity: every request for the same
// matrix identity lands on the same shard, and the shard matches the
// ring's deterministic placement.
func TestRouterAffinity(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1"), newFakeShard(t, "s2")}
	r, ts := testRouter(t, Config{ProbeInterval: time.Hour}, fakes...)

	sizes := []int{16, 25, 36, 49, 64, 81, 100}
	for _, n := range sizes {
		body := solveBody(t, "poisson2d", n)
		spec, _ := harness.NewMatrixSpec("poisson2d", n, 0)
		id, err := server.ResolveIdentity(&server.SolveRequest{Matrix: &spec})
		if err != nil {
			t.Fatal(err)
		}
		want := r.ring.Lookup(id.Key)
		for rep := 0; rep < 3; rep++ {
			code, shard, served := postRouted(t, ts.URL, body)
			if code != http.StatusOK {
				t.Fatalf("n=%d rep %d: status %d", n, rep, code)
			}
			if shard != want || served != want {
				t.Errorf("n=%d rep %d: served by %s/%s, ring says %s", n, rep, shard, served, want)
			}
		}
	}
}

// TestRouterFailoverOnConnectionFailure kills a shard outright: requests
// for its keys must fail over to the next ring replica and succeed, the
// failover is marked, and after FailThreshold passive failures the dead
// shard is ejected so later requests skip the doomed attempt.
func TestRouterFailoverOnConnectionFailure(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1"), newFakeShard(t, "s2")}
	r, ts := testRouter(t, Config{ProbeInterval: time.Hour, FailThreshold: 2}, fakes...)

	// Find a matrix size owned by s1 so the kill is targeted.
	var body []byte
	var key string
	for n := 16; n < 400; n++ {
		spec, _ := harness.NewMatrixSpec("tridiag", n, 0)
		id, err := server.ResolveIdentity(&server.SolveRequest{Matrix: &spec})
		if err != nil {
			t.Fatal(err)
		}
		if r.ring.Lookup(id.Key) == "s1" {
			req := server.SolveRequest{Matrix: &spec, Seed: 7}
			body, _ = json.Marshal(req)
			key = id.Key
			break
		}
	}
	if body == nil {
		t.Fatal("no tridiag size maps to s1")
	}
	wantFailover := r.ring.Successors(key, 2)[1]

	fakes[1].ts.Close() // connection refused from now on

	for rep := 0; rep < 3; rep++ {
		code, shard, _ := postRouted(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("rep %d: status %d, want failover success", rep, code)
		}
		if shard != wantFailover {
			t.Errorf("rep %d: served by %s, want next replica %s", rep, shard, wantFailover)
		}
	}
	// Two consecutive connection failures tripped the passive circuit.
	if r.shards["s1"].isHealthy() {
		t.Error("dead shard still marked healthy after threshold passive failures")
	}
	if got := r.failovers.Load(); got < 2 {
		t.Errorf("failovers = %d, want ≥ 2", got)
	}
}

// TestRouterRetriesDrainingShard pins 503 failover: a draining shard
// refuses new solves with 503, which must be retried on the next
// replica, not relayed to the client.
func TestRouterRetriesDrainingShard(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1")}
	_, ts := testRouter(t, Config{ProbeInterval: time.Hour}, fakes...)

	body := solveBody(t, "poisson2d", 36)
	_, owner, _ := postRouted(t, ts.URL, body)
	var ownerFake, otherFake *fakeShard
	for _, f := range fakes {
		if f.name == owner {
			ownerFake = f
		} else {
			otherFake = f
		}
	}
	ownerFake.setSolveCode(http.StatusServiceUnavailable)

	code, shard, _ := postRouted(t, ts.URL, body)
	if code != http.StatusOK || shard != otherFake.name {
		t.Fatalf("draining owner: status %d from %q, want 200 from %q", code, shard, otherFake.name)
	}
}

// TestRouterSpillsSaturatedShard pins 429 handling: a saturated owner
// spills to the next replica without tripping the circuit breaker, and
// when every candidate is saturated the client gets the 429 back.
func TestRouterSpillsSaturatedShard(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1")}
	r, ts := testRouter(t, Config{ProbeInterval: time.Hour, FailThreshold: 2}, fakes...)

	body := solveBody(t, "poisson2d", 25)
	_, owner, _ := postRouted(t, ts.URL, body)
	var ownerFake, otherFake *fakeShard
	for _, f := range fakes {
		if f.name == owner {
			ownerFake = f
		} else {
			otherFake = f
		}
	}
	ownerFake.setSolveCode(http.StatusTooManyRequests)

	for rep := 0; rep < 3; rep++ {
		code, shard, _ := postRouted(t, ts.URL, body)
		if code != http.StatusOK || shard != otherFake.name {
			t.Fatalf("rep %d: status %d from %q, want spill to %q", rep, code, shard, otherFake.name)
		}
	}
	// Saturation is load, not sickness: the owner must stay healthy.
	if !r.shards[owner].isHealthy() {
		t.Error("saturated shard tripped the circuit breaker")
	}

	// Both candidates saturated: the backpressure reaches the client as
	// the 429 a single shard would have answered.
	otherFake.setSolveCode(http.StatusTooManyRequests)
	code, _, _ := postRouted(t, ts.URL, body)
	if code != http.StatusTooManyRequests {
		t.Errorf("fully saturated tier answered %d, want 429", code)
	}
}

// TestRouterRelaysShardErrors pins the no-retry cases: an answer the
// shard actually computed — including a 400 — is relayed verbatim, not
// re-asked of another replica that would answer identically.
func TestRouterRelaysShardErrors(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1")}
	_, ts := testRouter(t, Config{ProbeInterval: time.Hour}, fakes...)

	body := solveBody(t, "poisson2d", 49)
	_, owner, _ := postRouted(t, ts.URL, body)
	for _, f := range fakes {
		if f.name == owner {
			f.setSolveCode(http.StatusInternalServerError)
		}
	}
	before := 0
	for _, f := range fakes {
		before += f.servedCount()
	}
	code, shard, _ := postRouted(t, ts.URL, body)
	if code != http.StatusInternalServerError || shard != owner {
		t.Fatalf("shard 500: relayed status %d from %q, want 500 from owner %q", code, shard, owner)
	}
	after := 0
	for _, f := range fakes {
		after += f.servedCount()
	}
	if after != before+1 {
		t.Errorf("a computed 500 was retried: %d shard hits for one request", after-before)
	}
}

// TestRouterProbeEjectionAndReadmission drives the active health checks:
// a shard whose healthz goes unhealthy is ejected within the failure
// threshold and re-admitted after one good probe.
func TestRouterProbeEjectionAndReadmission(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1")}
	r, _ := testRouter(t, Config{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 3,
	}, fakes...)

	fakes[0].setHealthy(false)
	waitFor(t, func() bool { return !r.shards["s0"].isHealthy() })

	fakes[0].setHealthy(true)
	waitFor(t, func() bool { return r.shards["s0"].isHealthy() })

	st := r.shards["s0"].status(r.cfg.Vnodes)
	if st.EWMALatencyMs <= 0 {
		t.Errorf("probe latency EWMA not tracked: %+v", st)
	}
}

// TestRouterzEndpoint pins the /routerz schema and its shard map.
func TestRouterzEndpoint(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0"), newFakeShard(t, "s1"), newFakeShard(t, "s2")}
	_, ts := testRouter(t, Config{ProbeInterval: time.Hour}, fakes...)

	for _, n := range []int{16, 25, 36, 49} {
		if code, _, _ := postRouted(t, ts.URL, solveBody(t, "poisson2d", n)); code != http.StatusOK {
			t.Fatalf("n=%d: status %d", n, code)
		}
	}
	resp, err := http.Get(ts.URL + "/routerz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz RouterzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if rz.Schema != SchemaVersion || len(rz.Shards) != 3 || rz.HealthyShards != 3 {
		t.Errorf("routerz %+v: want schema %d, 3 healthy shards", rz, SchemaVersion)
	}
	if rz.Routed != 4 || rz.Keys.Distinct != 4 {
		t.Errorf("routed=%d distinct keys=%d, want 4 and 4", rz.Routed, rz.Keys.Distinct)
	}
	total := 0
	for _, c := range rz.Keys.PerShard {
		total += c
	}
	if total != 4 {
		t.Errorf("per-shard key counts sum to %d, want 4: %v", total, rz.Keys.PerShard)
	}
	names := map[string]bool{}
	for _, s := range rz.Shards {
		names[s.Name] = true
		if s.VNodes != DefaultVnodes {
			t.Errorf("shard %s vnodes=%d, want %d", s.Name, s.VNodes, DefaultVnodes)
		}
	}
	if !names["s0"] || !names["s1"] || !names["s2"] {
		t.Errorf("shard map incomplete: %v", names)
	}

	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.HealthyShards != 3 || h.TotalShards != 3 {
		t.Errorf("router health %+v", h)
	}
}

// TestRouterValidation pins edge rejections: malformed requests are
// answered at the router without touching any shard, and a draining
// router refuses with 503.
func TestRouterValidation(t *testing.T) {
	fakes := []*fakeShard{newFakeShard(t, "s0")}
	r, ts := testRouter(t, Config{ProbeInterval: time.Hour}, fakes...)

	cases := []struct {
		name string
		body string
		code int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"no matrix", `{"solver":"cg"}`, http.StatusBadRequest},
		{"unknown solver", `{"matrix":{"gen":"poisson2d","n":16},"solver":"magic"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != tc.code || er.Message == "" {
			t.Errorf("%s: status %d (err %q), want %d with an error body", tc.name, resp.StatusCode, er.Message, tc.code)
		}
	}
	if got := fakes[0].servedCount(); got != 0 {
		t.Errorf("invalid requests reached the shard %d times", got)
	}

	r.StartDraining()
	code, _, _ := postRouted(t, ts.URL, solveBody(t, "poisson2d", 16))
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining router answered %d, want 503", code)
	}
}

func TestRouterNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := New(Config{}, []Shard{{Name: "a"}}); err == nil {
		t.Error("shard without addr accepted")
	}
	if _, err := New(Config{}, []Shard{
		{Name: "a", Addr: "http://x"}, {Name: "a", Addr: "http://y"},
	}); err == nil {
		t.Error("duplicate shard name accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
