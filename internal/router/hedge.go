package router

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Hedged replica reads. A solve is deterministic and idempotent: every
// replica computes bit-identical bytes for the same request, so sending
// the same request to two shards and taking whichever verified answer
// lands first cuts the tail without any risk to correctness — the
// determinism gates cannot tell a hedged answer from a plain one. The
// cost is bounded duplicate work: the second copy is only armed once
// the primary has been out longer than its own observed P99, i.e. for
// the ~1% of requests already in the tail.

// hedgePair picks the two shards a hedged attempt races: the routable
// candidates with the lowest EWMA latency, primary first. Shards with
// no sample yet sort after every measured one (in ring order among
// themselves, so a fresh ring behaves like unhedged ring routing).
// Returns nils when fewer than two candidates are routable — hedging
// against a known-unhealthy shard would just double the failure.
func hedgePair(cands []*shardState) (primary, secondary *shardState) {
	routable := make([]*shardState, 0, len(cands))
	for _, s := range cands {
		if s.isRoutable() {
			routable = append(routable, s)
		}
	}
	if len(routable) < 2 {
		return nil, nil
	}
	sort.SliceStable(routable, func(i, j int) bool {
		ei, ej := routable[i].ewmaLatency(), routable[j].ewmaLatency()
		if ei == 0 {
			ei = math.Inf(1)
		}
		if ej == 0 {
			ej = math.Inf(1)
		}
		return ei < ej
	})
	return routable[0], routable[1]
}

// hedgeDelayFor derives the arm delay for a hedged request to s: the
// shard's observed P99 latency once its sample window is warm, the
// configured base delay before that, clamped to [1ms, HedgeMaxDelay].
// Keying the delay to the primary's own tail means the hedge fires
// almost exclusively for requests that are genuinely late.
func (r *Router) hedgeDelayFor(s *shardState) time.Duration {
	d := r.cfg.HedgeDelay
	if p99 := s.latencyP99(); p99 > 0 {
		d = time.Duration(p99 * float64(time.Millisecond))
	}
	if d > r.cfg.HedgeMaxDelay {
		d = r.cfg.HedgeMaxDelay
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// fetchHedged runs one hedged round: the request goes to primary
// immediately, and to secondary once the arm delay elapses with no
// answer yet. The first verified relayable wins; the loser's context is
// canceled on return (fetch's ctx.Err() guard keeps a canceled loser
// from feeding the circuit breaker or the latency window). hedgedWin
// reports whether the armed secondary won the race — the relay stamps
// that as the hedged-response header.
//
// Failure shape mirrors plain fetch so the caller's retry loop is
// indifferent: a primary failure before the hedge arms returns at once
// (the outer loop's next attempt is the failover); after arming, the
// round only fails when both replicas have.
func (r *Router) fetchHedged(ctx context.Context, primary, secondary *shardState, path string, body []byte, tr *obs.Active) (rel *relayable, hedgedWin bool, hint time.Duration, err error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser (or both, on outer-deadline exit)

	type result struct {
		rel  *relayable
		hint time.Duration
		err  error
		s    *shardState
	}
	results := make(chan result, 2) // buffered: a loser's send never blocks
	// The fetch goroutines get the trace ID as a plain string and never
	// touch tr: a canceled loser can outlive this call — and tr's return
	// to its pool — so only this (synchronous) select loop records spans.
	traceID := tr.ID()
	launch := func(s *shardState) {
		go func() {
			rel, hint, err := r.fetch(hctx, s, path, body, traceID)
			results <- result{rel, hint, err, s}
		}()
	}
	started := map[*shardState]int64{primary: tr.Now()}
	launch(primary)

	timer := time.NewTimer(r.hedgeDelayFor(primary))
	defer timer.Stop()

	pending := 1
	armed := false
	for {
		select {
		case <-timer.C:
			armed = true
			r.hedgeArmed.Add(1)
			pending++
			tr.AddSpan(obs.SpanHedgeArm, secondary.name, "", tr.Now(), 0)
			started[secondary] = tr.Now()
			launch(secondary)
		case out := <-results:
			pending--
			tr.AddSpan(obs.SpanAttempt, out.s.name, "", started[out.s], tr.Now()-started[out.s])
			if out.rel != nil {
				if pending > 0 {
					r.hedgeCanceled.Add(int64(pending))
				}
				if armed {
					if out.s == secondary {
						r.hedgeWins.Add(1)
					} else {
						r.hedgePrimaryWins.Add(1)
					}
				}
				return out.rel, armed && out.s == secondary, out.hint, nil
			}
			if !armed || pending == 0 {
				// Unarmed: the primary failed fast — fall back to the plain
				// failover loop rather than racing a doomed round. Armed
				// with none pending: both replicas failed; report the last.
				return nil, false, out.hint, out.err
			}
			// One replica failed but the other is still in flight: the
			// round is decided by whichever way that one lands.
		case <-ctx.Done():
			return nil, false, 0, ctx.Err()
		}
	}
}
