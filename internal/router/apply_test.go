package router

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/api"
)

// ringOwners snapshots the ring placement for a set of synthetic keys.
func ringOwners(r *Router, n int) map[string]string {
	out := make(map[string]string, n)
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		out[k] = r.ring.Lookup(k)
	}
	return out
}

// TestApplyMinimalKeyMovement is the tentpole invariant: reconciling a
// topology moves only the keys of shards that joined or left. Growing
// s0..s2 by s3 may move keys only onto s3; shrinking back may move only
// s3's keys, and everything else returns to its pre-grow owner.
func TestApplyMinimalKeyMovement(t *testing.T) {
	r, _, _ := mockRouter(t, Config{}, "s0", "s1", "s2")
	topoOf := func(names ...string) Topology {
		tp := Topology{Schema: TopologySchemaVersion}
		for _, n := range names {
			tp.Shards = append(tp.Shards, Shard{Name: n})
		}
		return tp
	}

	const keys = 512
	before := ringOwners(r, keys)

	rep, err := r.Apply(topoOf("s0", "s1", "s2", "s3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "s3" || len(rep.Removed) != 0 || len(rep.Kept) != 3 {
		t.Fatalf("grow report %+v, want added=[s3] kept=3", rep)
	}
	grown := ringOwners(r, keys)
	movedToS3 := 0
	for k, was := range before {
		switch now := grown[k]; {
		case now == was:
		case now == "s3":
			movedToS3++
		default:
			t.Errorf("key %s moved %s→%s on a grow that only added s3", k, was, now)
		}
	}
	if movedToS3 == 0 {
		t.Error("no key moved to the new shard — vnode placement suspect")
	}

	rep, err = r.Apply(topoOf("s0", "s1", "s2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "s3" {
		t.Fatalf("shrink report %+v, want removed=[s3]", rep)
	}
	for k, was := range before {
		if now := ringOwners(r, keys)[k]; now != was {
			t.Errorf("key %s: owner %s after grow+shrink, want %s (round trip must be exact)", k, now, was)
			break
		}
	}
}

// TestApplyRejectsMalformedKeepsRing feeds Apply every malformed-topology
// shape; each must be rejected whole with the previous ring untouched
// and still serving.
func TestApplyRejectsMalformedKeepsRing(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{}, "s0", "s1")
	before := ringOwners(r, 128)

	bad := []Topology{
		{}, // no shards
		{Schema: 99, Shards: []Shard{{Name: "s0"}}},                                                // unknown schema
		{Schema: 1, Shards: []Shard{{Name: "a"}, {Name: "a"}}},                                     // duplicate labels
		{Schema: 1, Shards: []Shard{{Name: ""}}},                                                   // empty name
		{Schema: 1, Shards: []Shard{{Name: "x", Addr: "not a url"}}},                               // bad addr
		{Schema: 1, Shards: []Shard{{Name: "s0"}, {Name: "s1"}, {Name: "s2", Addr: "ftp://nope"}}}, // one bad entry poisons all
	}
	for i, tp := range bad {
		if _, err := r.Apply(tp); err == nil {
			t.Errorf("malformed topology %d accepted", i)
		}
	}
	if got := ringOwners(r, 128); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Error("rejected topologies disturbed the ring")
	}
	// The old ring is not just intact but serving.
	code, _, _ := postRouted(t, ts.URL, solveBody(t, "poisson2d", 36))
	if code != http.StatusOK {
		t.Errorf("solve after rejected reloads: status %d", code)
	}
	_ = rt
}

// TestApplyStartFailureAborts: when materialising any joiner fails, the
// whole apply aborts — no partial membership change, and joiners that did
// start are stopped again.
func TestApplyStartFailureAborts(t *testing.T) {
	r, rt, _ := mockRouter(t, Config{}, "s0")
	rt.StartErr = errors.New("injected start failure")
	_, err := r.Apply(Topology{Schema: 1, Shards: []Shard{{Name: "s0"}, {Name: "s1"}}})
	if err == nil {
		t.Fatal("apply with failing runtime succeeded")
	}
	topo := r.CurrentTopology()
	if len(topo.Shards) != 1 || topo.Shards[0].Name != "s0" {
		t.Errorf("membership %+v after aborted apply, want s0 only", topo.Shards)
	}
	if rt.Get("s1") != nil {
		t.Error("aborted apply leaked a running shard")
	}
}

// TestApplyReAdmitsDrainedAndRepoints: presence in an applied topology
// means desired-active — a drained shard named by the file comes back on
// the ring — and an entry with a new addr repoints the retained shard in
// place.
func TestApplyReAdmitsDrained(t *testing.T) {
	r, _, _ := mockRouter(t, Config{}, "s0", "s1")
	if _, err := r.DrainShard("s1"); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Apply(Topology{Schema: 1, Shards: []Shard{{Name: "s0"}, {Name: "s1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Updated) != 1 || rep.Updated[0] != "s1" {
		t.Fatalf("report %+v, want updated=[s1]", rep)
	}
	for _, sh := range r.CurrentTopology().Shards {
		if sh.State != api.ShardActive {
			t.Errorf("shard %s state %q after re-admitting apply", sh.Name, sh.State)
		}
	}
}

func TestApplyRepointsAddr(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{}, "s0", "s1")

	// A replacement process, outside the runtime's management.
	repl, err := NewMockShard("s1-replacement")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(repl.Kill)

	rep, err := r.Apply(Topology{Schema: 1, Shards: []Shard{
		{Name: "s0"},
		{Name: "s1", Addr: repl.URL()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Updated) != 1 || rep.Updated[0] != "s1" {
		t.Fatalf("report %+v, want updated=[s1]", rep)
	}

	// Traffic for s1's keys now lands on the replacement process while
	// the ring name (and key ownership) never changed.
	prev := repl.Solves()
	for n := 16; n <= 80; n += 4 {
		code, _, _ := postRouted(t, ts.URL, solveBody(t, "tridiag", n))
		if code != http.StatusOK {
			t.Fatalf("n=%d: status %d", n, code)
		}
	}
	if repl.Solves() == prev {
		t.Error("repointed shard never received traffic")
	}
	_ = rt
}

// TestApplyUnderTraffic races reloads against live solves: growing and
// shrinking the ring while requests are in flight must never surface an
// error to a client — affected keys fail over, unaffected keys never
// notice. (Run with -race to make this earn its keep.)
func TestApplyUnderTraffic(t *testing.T) {
	r, _, ts := mockRouter(t, Config{Replicas: 2}, "s0", "s1", "s2")

	bodies := [][]byte{
		solveBody(t, "poisson2d", 16),
		solveBody(t, "poisson2d", 25),
		solveBody(t, "poisson2d", 36),
		solveBody(t, "poisson2d", 49),
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := bodies[(i+w)%len(bodies)]
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					select {
					case errs <- fmt.Sprintf("worker %d: %v", w, err):
					default:
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("worker %d: status %d", w, resp.StatusCode):
					default:
					}
				}
			}
		}(w)
	}
	withS3 := Topology{Schema: 1, Shards: []Shard{{Name: "s0"}, {Name: "s1"}, {Name: "s2"}, {Name: "s3"}}}
	withoutS3 := Topology{Schema: 1, Shards: []Shard{{Name: "s0"}, {Name: "s1"}, {Name: "s2"}}}
	for i := 0; i < 6; i++ {
		if _, err := r.Apply(withS3); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Apply(withoutS3); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
