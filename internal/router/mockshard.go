package router

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// MockShard is a stand-in resilientd for contract tests: it speaks just
// enough of the wire protocol — /v1/healthz and deterministic /v1/solve
// answers — that the router's routing, draining, probing and admin paths
// can be exercised without spawning real solver processes. The solve
// answer is a pure function of the request body and the shard's name, so
// a test can tell which shard served a key and assert that re-routing
// moved exactly the keys it expected.
type MockShard struct {
	name string
	srv  *http.Server
	ln   net.Listener
	url  string

	healthy atomic.Bool
	solves  atomic.Int64
	// delayNanos stalls every solve answer — the knob hedge tests turn to
	// make this shard the slow replica.
	delayNanos atomic.Int64
	// killMidStream makes a streamed solve emit one iteration frame, flush
	// it, then hard-kill the shard — the mid-stream death scenario.
	killMidStream atomic.Bool

	closeOnce sync.Once
}

// NewMockShard starts a mock shard on an ephemeral localhost port.
func NewMockShard(name string) (*MockShard, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	m := &MockShard{
		name: name,
		ln:   ln,
		url:  "http://" + ln.Addr().String(),
	}
	m.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", m.handleHealthz)
	mux.HandleFunc("/v1/solve", m.handleSolve)
	mux.HandleFunc("/v1/solve/batch", m.handleSolve)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return m, nil
}

// URL returns the shard's base URL.
func (m *MockShard) URL() string { return m.url }

// Name returns the shard's label.
func (m *MockShard) Name() string { return m.name }

// Solves counts the solve requests this shard answered.
func (m *MockShard) Solves() int64 { return m.solves.Load() }

// SetHealthy flips what /v1/healthz reports, so tests can drive the
// router's ejection and re-admission paths.
func (m *MockShard) SetHealthy(ok bool) { m.healthy.Store(ok) }

// SetDelay stalls every subsequent solve answer by d, making this shard
// the slow replica in a hedge race.
func (m *MockShard) SetDelay(d time.Duration) { m.delayNanos.Store(int64(d)) }

// KillMidStream arms the mid-stream death mode: the next streamed solve
// sends one iteration frame and then the shard dies.
func (m *MockShard) KillMidStream() { m.killMidStream.Store(true) }

// Kill hard-closes the listener — from the router's side the shard
// vanishes mid-flight, like a kill -9.
func (m *MockShard) Kill() {
	m.closeOnce.Do(func() {
		m.ln.Close()
		m.srv.Close()
	})
}

func (m *MockShard) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if !m.healthy.Load() {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Schema: api.SchemaVersion, Status: "unhealthy"})
		return
	}
	api.WriteJSON(w, http.StatusOK, api.HealthResponse{Schema: api.SchemaVersion, Status: "ok"})
}

// handleSolve answers with a deterministic fake result: the residual-hash
// field is an FNV-1a digest of the request body alone (stable across
// shards, like the real engine), while the X-Mock-Shard header names the
// serving shard so tests can observe placement.
func (m *MockShard) handleSolve(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, fmt.Errorf("POST only"), 0)
		return
	}
	var body json.RawMessage
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err, 0)
		return
	}
	m.solves.Add(1)
	if d := time.Duration(m.delayNanos.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return // canceled hedge loser: give the connection back
		}
	}
	canon, _ := json.Marshal(body)
	h := fnv.New64a()
	h.Write(canon)
	resp := api.SolveResponse{Schema: api.SchemaVersion}
	resp.Result.Schema = api.SchemaVersion
	resp.Result.Reps = 1
	resp.Result.Converged = 1
	resp.Result.ResidualHash = fmt.Sprintf("mock-%016x", h.Sum64())
	if req.URL.Path == "/v1/solve" && wantsStream(req) {
		m.streamSolve(w, &resp)
		return
	}
	w.Header().Set("X-Mock-Shard", m.name)
	api.WriteJSON(w, http.StatusOK, resp)
}

// streamSolve answers a streamed solve: one iteration frame, then the
// terminal result — the same ResidualHash the buffered path computes,
// so pass-through tests can assert stream/buffered hash equality. In
// killMidStream mode the shard dies right after the first frame.
func (m *MockShard) streamSolve(w http.ResponseWriter, resp *api.SolveResponse) {
	sw, err := api.NewSSEWriter(w)
	if err != nil {
		api.WriteJSON(w, http.StatusOK, resp)
		return
	}
	_ = sw.Send(&api.SolveEvent{Kind: api.EventIteration, Iteration: 1, Rho: 0.5})
	if m.killMidStream.Load() {
		m.Kill()
		// Killing closes the listener and active connections; returning
		// without a terminal frame is the point.
		return
	}
	_ = sw.Send(&api.SolveEvent{Kind: api.EventResult, Result: resp})
}

// MockRuntime is a ShardRuntime backed by MockShards: the router's
// "materialise this shard" requests start in-memory mock servers instead
// of real processes. Tests reach the underlying shards through Get to
// flip health or kill them.
type MockRuntime struct {
	mu     sync.Mutex
	shards map[string]*MockShard
	// StartErr, when set, makes every Start fail — for exercising the
	// apply-abort path.
	StartErr error
}

// NewMockRuntime builds an empty runtime.
func NewMockRuntime() *MockRuntime {
	return &MockRuntime{shards: make(map[string]*MockShard)}
}

// Start launches a mock shard for the name and returns its base URL.
func (rt *MockRuntime) Start(name string) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.StartErr != nil {
		return "", rt.StartErr
	}
	if _, ok := rt.shards[name]; ok {
		return "", fmt.Errorf("mock runtime: shard %q already running", name)
	}
	m, err := NewMockShard(name)
	if err != nil {
		return "", err
	}
	rt.shards[name] = m
	return m.URL(), nil
}

// Stop kills the named mock shard. Idempotent.
func (rt *MockRuntime) Stop(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m, ok := rt.shards[name]; ok {
		m.Kill()
		delete(rt.shards, name)
	}
	return nil
}

// Get returns the live mock shard for the name, or nil.
func (rt *MockRuntime) Get(name string) *MockShard {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.shards[name]
}

// StopAll kills every running mock shard.
func (rt *MockRuntime) StopAll() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for name, m := range rt.shards {
		m.Kill()
		delete(rt.shards, name)
	}
}
