package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

// solveRequestOf decodes a solveBody back into the typed request the
// streaming client speaks.
func solveRequestOf(t *testing.T, body []byte) *api.SolveRequest {
	t.Helper()
	var req api.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	return &req
}

// TestStreamPassThrough routes a streamed solve through the router and
// requires the terminal hash to be bit-identical to a buffered solve of
// the same request — the relay must not perturb a single byte.
func TestStreamPassThrough(t *testing.T) {
	r, _, ts := mockRouter(t, Config{Replicas: 2}, "s0", "s1")
	body := solveBody(t, "poisson2d", 16)

	// Buffered baseline.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buffered api.SolveResponse
	err = json.NewDecoder(resp.Body).Decode(&buffered)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if buffered.Result.ResidualHash == "" {
		t.Fatal("buffered baseline has no hash")
	}

	var events []string
	streamed, err := api.NewClient(ts.URL).SolveStream(context.Background(), solveRequestOf(t, body), func(ev *api.SolveEvent) error {
		events = append(events, ev.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Result.ResidualHash != buffered.Result.ResidualHash {
		t.Errorf("streamed hash %q != buffered hash %q", streamed.Result.ResidualHash, buffered.Result.ResidualHash)
	}
	if len(events) < 2 {
		t.Errorf("saw %d events %v, want at least an iteration and the terminal", len(events), events)
	}

	rz := r.routerz()
	if rz.Hedge.StreamedPassthrough != 1 {
		t.Errorf("streamed_passthrough = %d, want 1", rz.Hedge.StreamedPassthrough)
	}
}

// TestStreamPassThroughNeverHedges: even with hedging on and the
// serving shard slow, a streamed solve takes the single-attempt
// pass-through path and never arms a duplicate.
func TestStreamPassThroughNeverHedges(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{
		Replicas:     2,
		HedgeEnabled: true,
		HedgeDelay:   5 * time.Millisecond,
	}, "s0", "s1")
	body := solveBody(t, "poisson2d", 16)
	owner := ownerOf(t, ts.URL, body)
	rt.Get(owner).SetDelay(60 * time.Millisecond)

	if _, err := api.NewClient(ts.URL).SolveStream(context.Background(), solveRequestOf(t, body), nil); err != nil {
		t.Fatal(err)
	}
	rz := r.routerz()
	if rz.Hedge.Armed != 0 {
		t.Errorf("a streamed solve armed %d hedges, want 0", rz.Hedge.Armed)
	}
	if rz.Hedge.StreamedPassthrough != 1 {
		t.Errorf("streamed_passthrough = %d, want 1", rz.Hedge.StreamedPassthrough)
	}
}

// TestStreamMidStreamKill kills the shard between the first frame and
// the terminal: the router must convert the upstream death into a typed
// in-stream error event, not a silent truncation.
func TestStreamMidStreamKill(t *testing.T) {
	_, rt, ts := mockRouter(t, Config{Replicas: 2}, "s0", "s1")
	body := solveBody(t, "tridiag", 16)
	owner := ownerOf(t, ts.URL, body)
	rt.Get(owner).KillMidStream()

	var kinds []string
	_, err := api.NewClient(ts.URL).SolveStream(context.Background(), solveRequestOf(t, body), func(ev *api.SolveEvent) error {
		kinds = append(kinds, ev.Kind)
		return nil
	})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("mid-stream kill error = %v, want a typed *api.Error from the error event", err)
	}
	if ae.Code != api.CodeUnroutable {
		t.Errorf("error code %q, want %q", ae.Code, api.CodeUnroutable)
	}
	if ae.Schema != api.SchemaVersion {
		t.Errorf("error event schema %d, want %d", ae.Schema, api.SchemaVersion)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != api.EventError {
		t.Errorf("event kinds %v, want a terminal error event", kinds)
	}
}

// TestSchemaStampStatusz extends the schema sweep to the new unified
// introspection path on the router tier.
func TestSchemaStampStatusz(t *testing.T) {
	_, _, ts := mockRouter(t, Config{}, "s0")
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var stamped struct {
		Schema int `json:"schema"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stamped); err != nil {
		t.Fatal(err)
	}
	if stamped.Schema != server.SchemaVersion {
		t.Errorf("schema %d, want %d", stamped.Schema, server.SchemaVersion)
	}
}
