// Package router implements the sharded solve tier: a consistent-hash
// routing front end over N resilientd shards. Requests are keyed on the
// same canonical matrix identity the solve service's artifact cache uses
// (server.ResolveIdentity), so every matrix's artifacts — assembled CSR,
// checksum encodings, partition plans, warm workspaces — stay warm on
// exactly one shard and the cache scales horizontally.
//
// The pieces: Ring is a ketama-style hash ring with virtual nodes and
// deterministic, minimal-disruption placement; Router is the reverse
// proxy with per-request deadlines, retry of idempotent solves on the
// next ring replica on connection failure, active /v1/healthz probing
// (EWMA latency, consecutive-failure ejection, re-admission) and passive
// circuit-breaking on 5xx; /routerz exposes the shard map and per-shard
// stats as schema-versioned JSON.
package router

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// DefaultVnodes is the per-shard virtual node count: high enough that a
// departing shard's keys spread over all survivors instead of dogpiling
// one, low enough that a lookup's binary search stays trivial.
const DefaultVnodes = 64

// Ring is a ketama-style consistent-hash ring: each shard owns Vnodes
// points placed by hashing "name#i" with the repository's FNV-1a family,
// and a key routes to the shard owning the first point at or clockwise
// after the key's hash. Placement is a pure function of the shard names
// in the ring — insertion order, process and platform never matter — and
// removing a shard moves only the keys it owned (the minimal-disruption
// property, pinned by TestRingMinimalDisruption).
//
// Ring is not safe for concurrent mutation; Router guards it.
type Ring struct {
	vnodes int
	shards map[string]int // name → its vnode count on the ring
	points []point        // sorted by hash
}

type point struct {
	hash  uint64
	shard string
}

// NewRing returns an empty ring with the given virtual-node count per
// shard (≤ 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]int)}
}

// Add inserts a shard's virtual nodes at the ring's default count. Adding
// a present shard is a no-op.
func (r *Ring) Add(shard string) { r.AddN(shard, r.vnodes) }

// AddN inserts a shard with an explicit vnode count — the weighted-ring
// primitive: a shard's share of the key space is proportional to its
// count, and each vnode keeps its canonical "name#i" position, so
// reweighting from n to m moves only the keys owned by the vnodes in the
// difference. n is clamped to at least 1 (a member shard must own keys).
// Adding a present shard is a no-op regardless of n; reweight via
// Remove + AddN.
func (r *Ring) AddN(shard string, n int) {
	if _, ok := r.shards[shard]; ok {
		return
	}
	if n < 1 {
		n = 1
	}
	r.shards[shard] = n
	for i := 0; i < n; i++ {
		r.points = append(r.points, point{hash: vnodeHash(shard, i), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-hash collision between vnodes is vanishingly unlikely;
		// break it by name so placement stays insertion-order independent.
		return r.points[i].shard < r.points[j].shard
	})
}

// VNodes returns a member shard's vnode count (0 for non-members).
func (r *Ring) VNodes(shard string) int { return r.shards[shard] }

// Remove deletes a shard's virtual nodes; only its keys change owner.
func (r *Ring) Remove(shard string) {
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the member names, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.shards) }

// KeyHash is the position of a routing key on the ring.
func KeyHash(key string) uint64 { return spread(sparse.FNV1aString(key)) }

func vnodeHash(shard string, i int) uint64 {
	return spread(sparse.FNV1aString(fmt.Sprintf("%s#%d", shard, i)))
}

// spread is a 64-bit finalizer (splitmix64's mixer) over the FNV point
// hashes. FNV-1a alone leaves the nearly-identical "name#i" strings — and
// the spec keys, which differ only in a few digits — in tight clusters on
// the ring, so arc lengths stop tracking vnode counts and weighting a
// shard barely moves its share. Full avalanche restores the property the
// ring's balance (and vnode_weight) depends on: point positions that are
// uniform regardless of how similar the inputs look.
func spread(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Lookup returns the shard owning the key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(KeyHash(key))].shard
}

// Successors returns up to n distinct shards in ring order starting at
// the key's owner — the failover sequence: if the owner is unreachable,
// the next replica serves (and re-warms) the key.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.at(KeyHash(key)); len(out) < n && i < len(r.points); i++ {
		s := r.points[(start+i)%len(r.points)].shard
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// at finds the index of the first point at or clockwise after h.
func (r *Ring) at(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
