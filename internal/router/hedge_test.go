package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/api"
)

// ownerOf posts one unhedged solve and returns which shard served it —
// the ring owner for this body's key while every shard is healthy.
func ownerOf(t *testing.T, url string, body []byte) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HedgeHeader, api.HedgeOff)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner probe: status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Resilient-Shard")
}

// TestHedgeWinsWhenPrimaryIsSlow is the core hedging contract: a slow
// primary gets a duplicate armed on the replica after the arm delay, the
// replica's verified answer is relayed (stamped as hedged), the loser is
// canceled, and the counters account for all of it.
func TestHedgeWinsWhenPrimaryIsSlow(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{
		Replicas:      2,
		HedgeEnabled:  true,
		HedgeDelay:    20 * time.Millisecond,
		HedgeMaxDelay: 50 * time.Millisecond,
	}, "s0", "s1")

	body := solveBody(t, "poisson2d", 16)
	owner := ownerOf(t, ts.URL, body)
	if owner == "" {
		t.Fatal("no X-Resilient-Shard header on the owner probe")
	}
	// Stall the ring owner well past the arm delay: the hedge must win.
	rt.Get(owner).SetDelay(400 * time.Millisecond)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged solve: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HedgedHeader); got != "1" {
		t.Errorf("%s = %q, want 1", api.HedgedHeader, got)
	}
	if got := resp.Header.Get("X-Resilient-Shard"); got == owner {
		t.Errorf("hedged answer served by the stalled owner %s", got)
	}
	var sr api.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Result.ResidualHash == "" {
		t.Error("hedged answer carries no residual hash")
	}
	// The win must arrive well before the stalled primary would have
	// answered — that is the whole point.
	if elapsed >= 400*time.Millisecond {
		t.Errorf("hedged request took %v, no faster than the stalled primary", elapsed)
	}

	rz := r.routerz()
	if !rz.Hedge.Enabled || rz.Hedge.Armed != 1 || rz.Hedge.Wins != 1 {
		t.Errorf("hedge stats %+v, want enabled with 1 armed / 1 win", rz.Hedge)
	}
	if rz.Hedge.LosersCanceled != 1 {
		t.Errorf("losers_canceled = %d, want 1", rz.Hedge.LosersCanceled)
	}

	// The canceled loser must actually wind down: its in-flight gauge
	// returns to zero once the cancellation propagates (the leak check).
	loser := r.shards[owner]
	deadline := time.Now().Add(2 * time.Second)
	for loser.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled loser still in flight %d after cancel", loser.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A canceled loser must not have fed the circuit breaker.
	if !r.shards[owner].isHealthy() {
		t.Error("canceled hedge loser opened the owner's circuit")
	}
}

// TestHedgeOffHeaderDisablesHedging: the per-request opt-out must reach
// the slow owner and never arm a duplicate.
func TestHedgeOffHeaderDisablesHedging(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{
		Replicas:     2,
		HedgeEnabled: true,
		HedgeDelay:   10 * time.Millisecond,
	}, "s0", "s1")

	body := solveBody(t, "tridiag", 25)
	owner := ownerOf(t, ts.URL, body)
	rt.Get(owner).SetDelay(100 * time.Millisecond)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HedgeHeader, api.HedgeOff)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Resilient-Shard"); got != owner {
		t.Errorf("opted-out request served by %s, want the owner %s", got, owner)
	}
	if got := resp.Header.Get(api.HedgedHeader); got != "" {
		t.Errorf("%s = %q on an opted-out request", api.HedgedHeader, got)
	}
	if rz := r.routerz(); rz.Hedge.Armed != 0 {
		t.Errorf("armed = %d after an opted-out request, want 0", rz.Hedge.Armed)
	}
}

// TestHedgePrimaryWinStillCounts: when the primary answers after the
// hedge armed but before the secondary, the race is a primary win and
// the secondary is the canceled loser.
func TestHedgePrimaryWinStillCounts(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{
		Replicas:      2,
		HedgeEnabled:  true,
		HedgeDelay:    10 * time.Millisecond,
		HedgeMaxDelay: 20 * time.Millisecond,
	}, "s0", "s1")

	body := solveBody(t, "poisson2d", 25)
	owner := ownerOf(t, ts.URL, body)
	// Both slow: the hedge arms, but the primary (head start) wins.
	rt.Get("s0").SetDelay(80 * time.Millisecond)
	rt.Get("s1").SetDelay(80 * time.Millisecond)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Resilient-Shard"); got != owner {
		t.Errorf("served by %s, want the primary %s", got, owner)
	}
	if got := resp.Header.Get(api.HedgedHeader); got != "" {
		t.Errorf("%s = %q on a primary win", api.HedgedHeader, got)
	}
	rz := r.routerz()
	if rz.Hedge.Armed != 1 || rz.Hedge.PrimaryWins != 1 || rz.Hedge.Wins != 0 {
		t.Errorf("hedge stats %+v, want 1 armed / 1 primary win / 0 hedge wins", rz.Hedge)
	}
}

// TestRouterStatusz checks the unified introspection endpoint: the
// router tier answers a typed StatuszResponse wrapping its routerz.
func TestRouterStatusz(t *testing.T) {
	_, _, ts := mockRouter(t, Config{HedgeEnabled: true}, "s0", "s1")
	st, err := api.NewClient(ts.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema != api.SchemaVersion || st.Tier != api.TierRouter {
		t.Errorf("statusz schema %d tier %q, want %d/%q", st.Schema, st.Tier, api.SchemaVersion, api.TierRouter)
	}
	if st.Router == nil || st.Shard != nil {
		t.Fatalf("statusz sections: router=%v shard=%v, want router only", st.Router != nil, st.Shard != nil)
	}
	if len(st.Router.Shards) != 2 {
		t.Errorf("statusz reports %d shards, want 2", len(st.Router.Shards))
	}
	if !st.Router.Hedge.Enabled {
		t.Error("statusz hedge section does not report enabled")
	}
	if st.Router.Hedge.BaseDelayMs <= 0 || st.Router.Hedge.MaxDelayMs <= 0 {
		t.Errorf("hedge delays %.1f/%.1f ms, want the configured defaults surfaced", st.Router.Hedge.BaseDelayMs, st.Router.Hedge.MaxDelayMs)
	}
}
