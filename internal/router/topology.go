package router

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
)

// TopologySchemaVersion identifies the topology file layout.
const TopologySchemaVersion = 1

// Topology is the JSON shard-set description resrouter consumes:
//
//	{
//	  "schema": 1,
//	  "shards": [
//	    {"name": "s0", "addr": "http://127.0.0.1:9000"},
//	    {"name": "s1", "addr": ""}
//	  ]
//	}
//
// A shard with an addr attaches to a running resilientd; a shard with an
// empty addr is spawned in-process by resrouter on an ephemeral port.
type Topology struct {
	Schema int     `json:"schema"`
	Shards []Shard `json:"shards"`
}

// Validate rejects malformed topologies: unknown schema, no shards,
// duplicate or empty names, unparseable addresses.
func (t *Topology) Validate() error {
	if t.Schema != 0 && t.Schema != TopologySchemaVersion {
		return fmt.Errorf("topology: unsupported schema %d (want %d)", t.Schema, TopologySchemaVersion)
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("topology: no shards")
	}
	seen := make(map[string]bool, len(t.Shards))
	for i, sh := range t.Shards {
		if sh.Name == "" {
			return fmt.Errorf("topology: shard %d has no name", i)
		}
		if seen[sh.Name] {
			return fmt.Errorf("topology: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
		if sh.VnodeWeight < 0 || sh.VnodeWeight > maxVnodeWeight {
			return fmt.Errorf("topology: shard %q: vnode_weight %g out of (0, %g]", sh.Name, sh.VnodeWeight, maxVnodeWeight)
		}
		if sh.Addr == "" {
			continue // spawned in-process by resrouter
		}
		u, err := url.Parse(sh.Addr)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("topology: shard %q: addr %q is not an http(s) base URL", sh.Name, sh.Addr)
		}
	}
	return nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	var t Topology
	raw, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(raw, &t); err != nil {
		return t, fmt.Errorf("topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return t, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
