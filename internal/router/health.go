package router

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// ewmaAlpha weights the latest latency sample in the per-shard EWMA:
// heavy enough to track load shifts within a few probes, light enough
// that one slow probe does not whipsaw the estimate.
const ewmaAlpha = 0.3

// latencyWindow is the per-shard ring of recent latency samples backing
// the P99 estimate that derives the hedge arm delay. 256 samples is
// enough for a stable tail read and small enough to copy-and-sort on
// demand without contention.
const latencyWindow = 256

// latencyMinSamples is the floor below which latencyP99 declines to
// estimate (callers fall back to the configured base delay): a tail
// quantile over a handful of samples is noise.
const latencyMinSamples = 20

// shardState is everything the router knows about one shard: its place
// in the topology plus the live health picture built from active probes
// and passive per-request observations.
type shardState struct {
	name string
	// managed marks a shard whose process the router's ShardRuntime
	// started (topology entry or admin add with no addr): removal stops
	// the process too. Immutable after creation.
	managed bool

	mu sync.Mutex
	// addr is the shard's base URL, e.g. http://127.0.0.1:8723. Guarded
	// by mu: a topology reload may repoint a retained shard.
	addr string
	// healthy gates routing: an unhealthy shard is skipped at candidate
	// selection (still probed, and re-admitted on the next good probe).
	// Shards start healthy — a router in front of a live shard set must
	// route before the first probe round completes.
	healthy bool
	// weight is the shard's relative ring weight (0 = the router default).
	// Guarded by mu: an admin re-add may rebalance a shard in place.
	weight float64
	// drained is the admin drain latch: a drained shard is off the ring
	// (new keys route past it) and stays out no matter what the probes
	// say — only an admin re-add clears the latch. Probes keep running so
	// the health picture stays current while the shard coasts to idle.
	drained bool
	// probeFails counts consecutive active-probe failures; at
	// FailThreshold the shard is ejected.
	probeFails int
	// passiveFails counts consecutive forwarded requests that died on
	// transport or answered 5xx; at FailThreshold the circuit opens
	// (healthy = false) until an active probe succeeds — the probe loop
	// is the half-open path.
	passiveFails int
	ewmaMs       float64
	// latencies is a fixed ring of recent samples (ms), mixed probe +
	// solve like the EWMA; latCount is the total ever recorded (the ring
	// holds min(latCount, latencyWindow) valid entries).
	latencies [latencyWindow]float64
	latCount  int
	lastErr   string
	lastProbe time.Time

	inflight atomic.Int64
	routed   atomic.Int64 // requests answered by this shard (any status)
	errors   atomic.Int64 // transport failures + 5xx answers
}

func (s *shardState) isHealthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy
}

// isRoutable reports whether new keys may be sent here: healthy and not
// latched out by an admin drain.
func (s *shardState) isRoutable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy && !s.drained
}

func (s *shardState) setDrained(d bool) {
	s.mu.Lock()
	s.drained = d
	s.mu.Unlock()
}

func (s *shardState) setWeight(w float64) {
	s.mu.Lock()
	s.weight = w
	s.mu.Unlock()
}

func (s *shardState) getWeight() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.weight
}

func (s *shardState) isDrained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drained
}

// baseURL returns the shard's current base address.
func (s *shardState) baseURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

func (s *shardState) setAddr(addr string) {
	s.mu.Lock()
	s.addr = addr
	s.mu.Unlock()
}

// stateLocked names the lifecycle state. Callers hold s.mu.
func (s *shardState) stateLocked() string {
	switch {
	case s.drained:
		return api.ShardDraining
	case !s.healthy:
		return api.ShardEjected
	default:
		return api.ShardActive
	}
}

func (s *shardState) observeLatency(d time.Duration) {
	s.mu.Lock()
	s.updateEWMALocked(d)
	s.mu.Unlock()
}

// updateEWMALocked folds one latency sample in; the first sample seeds
// the estimate. Callers hold s.mu.
func (s *shardState) updateEWMALocked(d time.Duration) {
	ms := float64(d) / 1e6
	if s.ewmaMs == 0 {
		s.ewmaMs = ms
	} else {
		s.ewmaMs = ewmaAlpha*ms + (1-ewmaAlpha)*s.ewmaMs
	}
	s.latencies[s.latCount%latencyWindow] = ms
	s.latCount++
}

// ewmaLatency returns the shard's current EWMA estimate in milliseconds
// (0 before the first sample).
func (s *shardState) ewmaLatency() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewmaMs
}

// latencyP99 estimates the shard's tail latency (ms) by nearest rank
// over the recent sample window. It returns 0 while the window holds
// fewer than latencyMinSamples samples — callers treat that as "no
// estimate" and use the configured base hedge delay.
func (s *shardState) latencyP99() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latencyP99Locked()
}

// latencyP99Locked is latencyP99 with s.mu already held. Sorting a ≤256
// element copy under the lock is cheap against per-request work.
func (s *shardState) latencyP99Locked() float64 {
	n := s.latCount
	if n > latencyWindow {
		n = latencyWindow
	}
	if n < latencyMinSamples {
		return 0
	}
	buf := make([]float64, n)
	copy(buf, s.latencies[:n])
	sort.Float64s(buf)
	return api.NearestRank(buf, 0.99)
}

// noteProbe folds one active health-probe outcome in. A success
// re-admits the shard immediately (and closes a passively-opened
// circuit); failures eject it after threshold consecutive misses.
func (s *shardState) noteProbe(ok bool, errText string, latency time.Duration, threshold int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastProbe = time.Now()
	if ok {
		s.probeFails = 0
		s.passiveFails = 0
		s.healthy = true
		s.lastErr = ""
		s.updateEWMALocked(latency)
		return
	}
	s.probeFails++
	s.lastErr = errText
	if s.probeFails >= threshold {
		s.healthy = false
	}
}

// notePassive folds one forwarded-request outcome in: ok is "the shard
// answered below 500". Consecutive failures open the circuit.
func (s *shardState) notePassive(ok bool, errText string, threshold int) {
	if ok {
		s.mu.Lock()
		s.passiveFails = 0
		s.mu.Unlock()
		return
	}
	s.errors.Add(1)
	s.mu.Lock()
	s.passiveFails++
	s.lastErr = errText
	if s.passiveFails >= threshold {
		s.healthy = false
	}
	s.mu.Unlock()
}

// status snapshots the shard for /routerz. A drained shard owns no ring
// points, so its VNodes report as zero.
func (s *shardState) status(vnodes int) ShardStatus {
	s.mu.Lock()
	if s.drained {
		vnodes = 0
	}
	st := ShardStatus{
		Name:                s.name,
		Addr:                s.addr,
		State:               s.stateLocked(),
		Healthy:             s.healthy,
		ConsecutiveFailures: max(s.probeFails, s.passiveFails),
		EWMALatencyMs:       s.ewmaMs,
		P99LatencyMs:        s.latencyP99Locked(),
		LastError:           s.lastErr,
		VNodes:              vnodes,
		VnodeWeight:         s.weight,
	}
	if !s.lastProbe.IsZero() {
		st.LastProbeAgeSeconds = time.Since(s.lastProbe).Seconds()
	}
	s.mu.Unlock()
	st.Inflight = s.inflight.Load()
	st.Routed = s.routed.Load()
	st.Errors = s.errors.Load()
	return st
}

// probeLoop actively probes every shard each interval until stop closes.
// Probes run concurrently so one hung shard cannot starve the others'
// re-admission, and each round is awaited so loops never pile up.
func (r *Router) probeLoop(t *time.Ticker) {
	defer r.probing.Done()
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	// Snapshot the shard set: a concurrent topology apply may grow or
	// shrink r.shards while the round is in flight.
	r.ringMu.RLock()
	shards := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.ringMu.RUnlock()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			r.probe(s)
		}(s)
	}
	wg.Wait()
}

// probe issues one active health check: a shard is up when /v1/healthz
// answers 200 with status "ok" inside the probe timeout. A draining
// shard reports itself unhealthy here on purpose — it refuses new solves
// with 503, so routing must move its keys to the next replica now.
func (r *Router) probe(s *shardState) {
	req, err := http.NewRequest(http.MethodGet, s.baseURL()+"/v1/healthz", nil)
	if err != nil {
		s.noteProbe(false, err.Error(), 0, r.cfg.FailThreshold)
		return
	}
	ctx, cancel := contextWithTimeout(r.cfg.ProbeTimeout)
	defer cancel()
	start := time.Now()
	resp, err := r.client.Do(req.WithContext(ctx))
	latency := time.Since(start)
	if err != nil {
		s.noteProbe(false, err.Error(), latency, r.cfg.FailThreshold)
		return
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	switch {
	case resp.StatusCode != http.StatusOK:
		s.noteProbe(false, "healthz status "+resp.Status, latency, r.cfg.FailThreshold)
	case json.NewDecoder(resp.Body).Decode(&h) != nil:
		s.noteProbe(false, "healthz: undecodable body", latency, r.cfg.FailThreshold)
	case h.Status != "ok":
		s.noteProbe(false, "healthz status "+h.Status, latency, r.cfg.FailThreshold)
	default:
		s.noteProbe(true, "", latency, r.cfg.FailThreshold)
	}
}
