package router

import (
	"context"
	"testing"
	"time"
)

// TestRingAddNSkewsOwnership: a shard holding more vnodes must own a
// proportionally larger share of the keyspace, and VNodes must report
// what each member actually holds.
func TestRingAddNSkewsOwnership(t *testing.T) {
	r := NewRing(64)
	r.AddN("small", 32)
	r.AddN("big", 96)
	if got := r.VNodes("small"); got != 32 {
		t.Errorf("VNodes(small) = %d, want 32", got)
	}
	if got := r.VNodes("big"); got != 96 {
		t.Errorf("VNodes(big) = %d, want 96", got)
	}
	if got := r.VNodes("absent"); got != 0 {
		t.Errorf("VNodes(absent) = %d, want 0", got)
	}
	owned := map[string]int{}
	for _, k := range testKeys(3000) {
		owned[r.Lookup(k)]++
	}
	if owned["big"] <= owned["small"] {
		t.Errorf("ownership %v: 3× vnodes did not yield a larger share", owned)
	}
}

// TestRingReweightMinimalMovement pins the rebalancing contract: growing
// a shard's vnode count via Remove+AddN keeps its original vnode
// positions, so no key leaves the reweighted shard and every key that
// moves, moves onto it.
func TestRingReweightMinimalMovement(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s0", "s1", "s2"} {
		r.Add(s)
	}
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	r.Remove("s1")
	r.AddN("s1", 128) // double s1's share

	gained := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if before[k] == "s1" && after != "s1" {
			t.Errorf("key %q left the upweighted shard (%s)", k, after)
		}
		if after != before[k] {
			if after != "s1" {
				t.Errorf("key %q moved %s -> %s: reweighting s1 must not shuffle bystanders", k, before[k], after)
			}
			gained++
		}
	}
	if gained == 0 {
		t.Error("doubling s1's vnodes moved no keys; test is vacuous")
	}
}

func TestVnodesFor(t *testing.T) {
	r, _, _ := mockRouter(t, Config{Vnodes: 64}, "s0")
	cases := []struct {
		weight float64
		want   int
	}{
		{0, 64},   // zero = default weight
		{1, 64},   // explicit default
		{0.5, 32}, // half share
		{2, 128},  // double share
		{0.001, 1},
	}
	for _, c := range cases {
		if got := r.vnodesFor(c.weight); got != c.want {
			t.Errorf("vnodesFor(%g) = %d, want %d", c.weight, got, c.want)
		}
	}
}

// TestApplyReweightsShard: a topology reload that only changes a shard's
// vnode_weight must rebalance the ring in place and report the shard as
// updated — no restart, no remove/re-add churn.
func TestApplyReweightsShard(t *testing.T) {
	r, _, ts := mockRouter(t, Config{Vnodes: 16}, "s0", "s1")
	if got := r.ring.VNodes("s0"); got != 16 {
		t.Fatalf("initial VNodes(s0) = %d, want 16", got)
	}

	topo := Topology{Schema: TopologySchemaVersion}
	for _, sh := range r.CurrentTopology().Shards {
		entry := Shard{Name: sh.Name, Addr: sh.Addr}
		if sh.Name == "s0" {
			entry.VnodeWeight = 3
		}
		topo.Shards = append(topo.Shards, entry)
	}
	rep, err := r.Apply(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Updated) != 1 || rep.Updated[0] != "s0" || len(rep.Added)+len(rep.Removed) != 0 {
		t.Errorf("report %s: want exactly s0 updated", rep)
	}
	if got := r.ring.VNodes("s0"); got != 48 {
		t.Errorf("VNodes(s0) = %d after reweight, want 48", got)
	}
	if got := r.ring.VNodes("s1"); got != 16 {
		t.Errorf("VNodes(s1) = %d, want untouched 16", got)
	}

	// /routerz reports the lived truth: actual vnode counts and weights.
	rz := routerzOf(t, ts.URL)
	for _, s := range rz.Shards {
		switch s.Name {
		case "s0":
			if s.VNodes != 48 || s.VnodeWeight != 3 {
				t.Errorf("routerz s0: vnodes %d weight %g, want 48 / 3", s.VNodes, s.VnodeWeight)
			}
		case "s1":
			if s.VNodes != 16 || s.VnodeWeight != 0 {
				t.Errorf("routerz s1: vnodes %d weight %g, want 16 / 0", s.VNodes, s.VnodeWeight)
			}
		}
	}

	// Re-applying the same topology is a no-op: reweighting is level-
	// triggered, not edge-triggered.
	rep, err = r.Apply(topo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed() {
		t.Errorf("idempotent re-apply reported %s", rep)
	}
}

// TestAdminAddShardWeighted drives the satellite end to end through the
// typed client: a weighted add materializes with the scaled ring share,
// and re-adding an active shard with a new weight rebalances in place.
func TestAdminAddShardWeighted(t *testing.T) {
	r, _, ts := mockRouter(t, Config{Vnodes: 16, AdminToken: "sekrit"}, "s0")
	cl := adminClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	add, err := cl.AdminAddShardWeighted(ctx, "w0", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if add.Shard.VnodeWeight != 2 {
		t.Errorf("admin view weight %g, want 2", add.Shard.VnodeWeight)
	}
	if got := r.ring.VNodes("w0"); got != 32 {
		t.Errorf("VNodes(w0) = %d, want 32", got)
	}

	// In-place rebalance of an active shard: same name, new weight.
	if _, err := cl.AdminAddShardWeighted(ctx, "w0", "", 0.5); err != nil {
		t.Fatalf("weighted re-add of an active shard: %v", err)
	}
	if got := r.ring.VNodes("w0"); got != 8 {
		t.Errorf("VNodes(w0) = %d after rebalance, want 8", got)
	}

	// Same weight again is the plain duplicate-add error.
	if _, err := cl.AdminAddShardWeighted(ctx, "w0", "", 0.5); err == nil {
		t.Error("duplicate add with unchanged weight accepted")
	}

	// Out-of-range weights are rejected at the API boundary.
	if _, err := cl.AdminAddShardWeighted(ctx, "w1", "", maxVnodeWeight+1); err == nil {
		t.Error("over-limit vnode_weight accepted")
	}
	if _, err := cl.AdminAddShardWeighted(ctx, "w1", "", -1); err == nil {
		t.Error("negative vnode_weight accepted")
	}
}
