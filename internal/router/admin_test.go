package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
)

// mockRouter builds a router whose shards are all MockRuntime-managed
// mock processes, plus an HTTP front end — the contract-test rig for the
// admin surface, no real solver processes involved.
func mockRouter(t *testing.T, cfg Config, names ...string) (*Router, *MockRuntime, *httptest.Server) {
	t.Helper()
	rt := NewMockRuntime()
	cfg.Runtime = rt
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // probes by hand in tests
	}
	shards := make([]Shard, len(names))
	for i, n := range names {
		shards[i] = Shard{Name: n}
	}
	r, err := New(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Shutdown()
		rt.StopAll()
	})
	return r, rt, ts
}

func adminClient(base string) *api.Client {
	return api.NewClient(base, api.WithAdminToken("sekrit"), api.WithTimeout(10*time.Second))
}

// asAPIError asserts err is the typed envelope and returns it.
func asAPIError(t *testing.T, err error) *api.Error {
	t.Helper()
	var e *api.Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T), want *api.Error", err, err)
	}
	return e
}

// TestAdminAuth pins the auth contract: a router without a token answers
// 403 on the whole surface, a wrong (or missing) bearer token answers
// 401, and the right token passes — all in the schema-stamped envelope.
func TestAdminAuth(t *testing.T) {
	_, _, tsOff := mockRouter(t, Config{}, "s0")
	e := asAPIError(t, func() error {
		_, err := api.NewClient(tsOff.URL).AdminTopology(context.Background())
		return err
	}())
	if e.Code != api.CodeForbidden || e.Schema != api.SchemaVersion {
		t.Errorf("disabled admin: %+v, want code %q schema %d", e, api.CodeForbidden, api.SchemaVersion)
	}

	_, _, ts := mockRouter(t, Config{AdminToken: "sekrit"}, "s0")
	for _, cl := range []*api.Client{
		api.NewClient(ts.URL),                                // no token
		api.NewClient(ts.URL, api.WithAdminToken("wrong")),   // bad token
		api.NewClient(ts.URL, api.WithAdminToken("sekrit2")), // near miss
	} {
		e := asAPIError(t, func() error { _, err := cl.AdminTopology(context.Background()); return err }())
		if e.Code != api.CodeUnauthorized {
			t.Errorf("bad token: code %q, want %q", e.Code, api.CodeUnauthorized)
		}
	}

	topo, err := adminClient(ts.URL).AdminTopology(context.Background())
	if err != nil {
		t.Fatalf("good token: %v", err)
	}
	if topo.Schema != api.SchemaVersion || len(topo.Shards) != 1 || topo.Shards[0].State != api.ShardActive {
		t.Errorf("topology %+v, want schema %d, one active shard", topo, api.SchemaVersion)
	}
}

// TestAdminDrainAddRemoveLifecycle walks a shard through the whole admin
// state machine: active → drained (off the ring, keys move, probes keep
// watching) → re-added (back on the ring, keys return) → drained →
// removed (process stopped). Throughout, the surviving shards keep their
// keys — drain moves only the drained shard's keys.
func TestAdminDrainAddRemoveLifecycle(t *testing.T) {
	r, rt, ts := mockRouter(t, Config{AdminToken: "sekrit", Replicas: 2}, "s0", "s1", "s2")
	cl := adminClient(ts.URL)
	ctx := context.Background()

	// Route a spread of keys and remember each placement.
	owner := func(n int) string {
		code, shard, _ := postRouted(t, ts.URL, solveBody(t, "tridiag", n))
		if code != http.StatusOK {
			t.Fatalf("n=%d: status %d", n, code)
		}
		return shard
	}
	sizes := []int{16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60}
	before := map[int]string{}
	for _, n := range sizes {
		before[n] = owner(n)
	}

	// Drain s1: response says draining, topology agrees, /routerz shows
	// it off the ring (vnodes 0) but still visible.
	sh, err := cl.AdminDrainShard(ctx, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shard.State != api.ShardDraining {
		t.Errorf("drain answered state %q, want %q", sh.Shard.State, api.ShardDraining)
	}
	rz, err := cl.Routerz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rz.Shards {
		if s.Name == "s1" && (s.State != api.ShardDraining || s.VNodes != 0) {
			t.Errorf("routerz s1: state %q vnodes %d, want draining/0", s.State, s.VNodes)
		}
		if s.Name != "s1" && s.VNodes == 0 {
			t.Errorf("routerz %s: lost its vnodes on someone else's drain", s.Name)
		}
	}

	// Idempotent: draining a drained shard re-answers its state.
	if sh, err = cl.AdminDrainShard(ctx, "s1"); err != nil || sh.Shard.State != api.ShardDraining {
		t.Errorf("second drain: %+v, %v", sh, err)
	}

	// Only s1's keys move; every key that lived on s0 or s2 stays put,
	// and nothing routes to s1 any more.
	served := rt.Get("s1").Solves()
	moved := 0
	for _, n := range sizes {
		now := owner(n)
		if now == "s1" {
			t.Errorf("n=%d still routed to the drained shard", n)
		}
		if before[n] != "s1" && now != before[n] {
			t.Errorf("n=%d moved %s→%s though neither was drained", n, before[n], now)
		}
		if before[n] == "s1" {
			moved++
		}
	}
	if moved == 0 {
		t.Skip("hash spread put no test key on s1; widen sizes")
	}
	if got := rt.Get("s1").Solves(); got != served {
		t.Errorf("drained shard served %d new solves", got-served)
	}

	// Re-add through the same name: latch clears, the synchronous probe
	// re-admits, and every key returns to its original owner.
	add, err := cl.AdminAddShard(ctx, "s1", "")
	if err != nil {
		t.Fatal(err)
	}
	if add.Shard.State != api.ShardActive || !add.Shard.Healthy {
		t.Errorf("re-add answered %+v, want active+healthy", add.Shard)
	}
	for _, n := range sizes {
		if now := owner(n); now != before[n] {
			t.Errorf("n=%d: owner %s after re-add, want %s", n, now, before[n])
		}
	}

	// Adding an active shard conflicts.
	_, err = cl.AdminAddShard(ctx, "s1", "")
	if e := asAPIError(t, err); e.Code != api.CodeConflict {
		t.Errorf("add of active shard: code %q, want %q", e.Code, api.CodeConflict)
	}
	// Unknown names 404 on drain and remove.
	_, err = cl.AdminDrainShard(ctx, "nope")
	if e := asAPIError(t, err); e.Code != api.CodeNotFound {
		t.Errorf("drain unknown: code %q, want %q", e.Code, api.CodeNotFound)
	}
	_, err = cl.AdminRemoveShard(ctx, "nope")
	if e := asAPIError(t, err); e.Code != api.CodeNotFound {
		t.Errorf("remove unknown: code %q, want %q", e.Code, api.CodeNotFound)
	}

	// The last-routable guard: drain down to one shard, then refuse.
	if _, err := cl.AdminDrainShard(ctx, "s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AdminDrainShard(ctx, "s2"); err != nil {
		t.Fatal(err)
	}
	_, err = cl.AdminDrainShard(ctx, "s1")
	if e := asAPIError(t, err); e.Code != api.CodeConflict {
		t.Errorf("drain of last shard: code %q, want %q", e.Code, api.CodeConflict)
	}
	if err := func() error { _, err := cl.AdminRemoveShard(ctx, "s1"); return err }(); err == nil {
		t.Error("remove of last routable shard succeeded")
	}

	// Removing a drained shard stops its managed process.
	if _, err := cl.AdminRemoveShard(ctx, "s0"); err != nil {
		t.Fatal(err)
	}
	if rt.Get("s0") != nil {
		t.Error("removed shard's process still running")
	}
	topo, err := cl.AdminTopology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Shards) != 2 {
		t.Errorf("topology has %d shards after remove, want 2", len(topo.Shards))
	}
	_ = r
}

// TestAdminAddMaterializesViaRuntime adds a brand-new shard with no addr:
// the router must ask its runtime for a process and start routing to it.
func TestAdminAddMaterializesViaRuntime(t *testing.T) {
	_, rt, ts := mockRouter(t, Config{AdminToken: "sekrit"}, "s0", "s1")
	cl := adminClient(ts.URL)

	add, err := cl.AdminAddShard(context.Background(), "s2", "")
	if err != nil {
		t.Fatal(err)
	}
	if add.Shard.State != api.ShardActive || add.Shard.Addr == "" {
		t.Errorf("added shard %+v, want active with an addr", add.Shard)
	}
	if rt.Get("s2") == nil {
		t.Fatal("runtime did not materialise the shard")
	}
	// Route a spread of keys: the new shard must end up serving some.
	for n := 16; n <= 120; n += 4 {
		code, _, _ := postRouted(t, ts.URL, solveBody(t, "tridiag", n))
		if code != http.StatusOK {
			t.Fatalf("n=%d: status %d", n, code)
		}
	}
	if rt.Get("s2").Solves() == 0 {
		t.Error("new shard never served a key")
	}
}

// TestAdminUnknownEndpoint pins the catch-all: anything else under
// /v1/admin/ is a schema-stamped 404 envelope, still behind auth.
func TestAdminUnknownEndpoint(t *testing.T) {
	_, _, ts := mockRouter(t, Config{AdminToken: "sekrit"}, "s0")

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/admin/bogus", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound || e.Schema != api.SchemaVersion {
		t.Errorf("unknown admin path: status %d envelope %+v", resp.StatusCode, e)
	}

	// Unauthenticated, the same path leaks nothing but 401.
	resp2, err := http.Get(ts.URL + "/v1/admin/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated unknown admin path: status %d, want 401", resp2.StatusCode)
	}
}
