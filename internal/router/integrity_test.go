package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

func bodyReader(body []byte) io.Reader { return bytes.NewReader(body) }

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// evilShard is a shard stand-in with a settable integrity defect: it
// stamps digests like a real resilientd, then (per mode) corrupts what
// it sends — the upstream half of the router's end-to-end verification.
type evilShard struct {
	name string
	ts   *httptest.Server

	mu         sync.Mutex
	mode       string // "ok", "corrupt", "badschema", "refuse-once"
	served     int
	retryAfter int // retry_after_ms carried by "refuse-once"
}

func newEvilShard(t *testing.T, name string) *evilShard {
	t.Helper()
	f := &evilShard{name: name, mode: "ok"}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.served++
		mode := f.mode
		retryAfter := f.retryAfter
		if mode == "refuse-once" {
			f.mode = "ok"
		}
		f.mu.Unlock()

		if mode == "refuse-once" {
			api.WriteJSON(w, http.StatusTooManyRequests, &api.Error{
				Schema: api.SchemaVersion, Code: api.CodeSaturated,
				Message: "test refusal", RetryAfterMillis: retryAfter,
			})
			return
		}
		body := []byte(fmt.Sprintf(`{"schema":1,"served_by":%q}`+"\n", f.name))
		if mode == "badschema" {
			// Digest-consistent bytes claiming a schema this router does
			// not speak: only the schema gate can catch it.
			body = []byte(fmt.Sprintf(`{"schema":99,"served_by":%q}`+"\n", f.name))
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(api.DigestHeader, api.DigestBytes(body))
		if mode == "corrupt" {
			// Stamp the true digest, then flip one payload bit: wire
			// corruption the transport cannot see.
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x04
		}
		w.Write(body)
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.HealthResponse{Schema: server.SchemaVersion, Status: "ok"})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *evilShard) setMode(mode string, retryAfter int) {
	f.mu.Lock()
	f.mode = mode
	f.retryAfter = retryAfter
	f.mu.Unlock()
}

func (f *evilShard) servedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served
}

func evilRouter(t *testing.T, cfg Config, fakes ...*evilShard) (*Router, *httptest.Server) {
	t.Helper()
	shards := make([]Shard, len(fakes))
	for i, f := range fakes {
		shards[i] = Shard{Name: f.name, Addr: f.ts.URL}
	}
	r, err := New(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		r.Shutdown()
	})
	return r, ts
}

// routerzOf fetches and decodes /routerz.
func routerzOf(t *testing.T, base string) RouterzResponse {
	t.Helper()
	resp, err := http.Get(base + "/routerz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz RouterzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	return rz
}

// TestRouterRejectsCorruptResponse is the tentpole gate: a shard whose
// answer fails the digest check must be treated like a connection
// failure — the router retries the replica and the client sees only the
// clean, verified body, never the corrupt bytes.
func TestRouterRejectsCorruptResponse(t *testing.T) {
	s0 := newEvilShard(t, "s0")
	s1 := newEvilShard(t, "s1")
	cfg := Config{ProbeInterval: time.Hour, Replicas: 2, FailThreshold: 100, RetryBackoff: time.Millisecond}
	r, ts := evilRouter(t, cfg, s0, s1)

	body := solveBody(t, "poisson2d", 48)
	// Discover the owner with both shards clean, then corrupt it.
	_, _, owner := postRouted(t, ts.URL, body)
	shards := map[string]*evilShard{"s0": s0, "s1": s1}
	evil, ok := shards[owner]
	if !ok {
		t.Fatalf("unexpected owner %q", owner)
	}
	var replica string
	for n := range shards {
		if n != owner {
			replica = n
		}
	}
	evil.setMode("corrupt", 0)

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bodyReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		ServedBy string `json:"served_by"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.ServedBy != replica {
		t.Errorf("served by %q, want failover to clean replica %q", out.ServedBy, replica)
	}
	if got := resp.Header.Get("X-Resilient-Failover"); got != "true" {
		t.Errorf("failover header %q, want true", got)
	}
	// The relayed digest must verify over the exact client-side bytes:
	// zero corrupt bytes reached this side of the wire.
	if stamp := resp.Header.Get(api.DigestHeader); stamp == "" || !api.VerifyDigest(stamp, raw) {
		t.Errorf("client-side digest %q does not verify", stamp)
	}

	if got := r.corruptResponses.Load(); got != 1 {
		t.Errorf("corruptResponses = %d, want 1", got)
	}
	rz := routerzOf(t, ts.URL)
	if rz.Integrity.CorruptResponses != 1 || rz.Integrity.RetriesSpent < 1 || rz.Integrity.DigestVerified < 2 {
		t.Errorf("/routerz integrity %+v: want 1 corrupt, ≥1 retry, ≥2 verified", rz.Integrity)
	}
	if rz.Integrity.BudgetExhausted != 0 {
		t.Errorf("budget exhausted %d times on a recoverable fault", rz.Integrity.BudgetExhausted)
	}
}

// TestRouterRejectsSchemaViolation: digest-consistent bytes carrying the
// wrong schema stamp are just as unrelayable as flipped bits.
func TestRouterRejectsSchemaViolation(t *testing.T) {
	s0 := newEvilShard(t, "s0")
	s1 := newEvilShard(t, "s1")
	cfg := Config{ProbeInterval: time.Hour, Replicas: 2, FailThreshold: 100, RetryBackoff: time.Millisecond}
	r, ts := evilRouter(t, cfg, s0, s1)

	body := solveBody(t, "poisson2d", 49)
	_, _, owner := postRouted(t, ts.URL, body)
	shards := map[string]*evilShard{"s0": s0, "s1": s1}
	shards[owner].setMode("badschema", 0)

	status, _, servedBy := postRouted(t, ts.URL, body)
	if status != http.StatusOK || servedBy == owner {
		t.Errorf("status %d served_by %q: want 200 from the replica, not %q", status, servedBy, owner)
	}
	if got := r.corruptResponses.Load(); got != 1 {
		t.Errorf("corruptResponses = %d, want 1", got)
	}
}

// TestRouterRetryBudgetBoundsCorruption: when every candidate keeps
// answering corrupt bytes, the router spends exactly its budget, then
// fails the request — it never relays what it cannot verify and never
// retries forever.
func TestRouterRetryBudgetBoundsCorruption(t *testing.T) {
	s0 := newEvilShard(t, "s0")
	s0.setMode("corrupt", 0)
	cfg := Config{ProbeInterval: time.Hour, Replicas: 1, FailThreshold: 100, RetryBudget: 3, RetryBackoff: time.Millisecond}
	r, ts := evilRouter(t, cfg, s0)

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bodyReader(solveBody(t, "poisson2d", 50)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeUnroutable {
		t.Errorf("code %q, want %q", e.Code, api.CodeUnroutable)
	}
	if s0.servedCount() != 3 {
		t.Errorf("shard served %d attempts, want exactly the budget of 3", s0.servedCount())
	}
	if got := r.corruptResponses.Load(); got != 3 {
		t.Errorf("corruptResponses = %d, want 3", got)
	}
	if got := r.retriesSpent.Load(); got != 2 {
		t.Errorf("retriesSpent = %d, want 2", got)
	}
	if got := r.budgetExhausted.Load(); got != 1 {
		t.Errorf("budgetExhausted = %d, want 1", got)
	}
}

// TestRouterHonorsRetryAfterHint: a shard's retry_after_ms hint must
// pace the router's internal retry, overriding a (much shorter) default
// backoff.
func TestRouterHonorsRetryAfterHint(t *testing.T) {
	const hintMillis = 150
	s0 := newEvilShard(t, "s0")
	s0.setMode("refuse-once", hintMillis)
	cfg := Config{ProbeInterval: time.Hour, Replicas: 1, FailThreshold: 100, RetryBudget: 2, RetryBackoff: time.Millisecond}
	_, ts := evilRouter(t, cfg, s0)

	start := time.Now()
	status, _, servedBy := postRouted(t, ts.URL, solveBody(t, "poisson2d", 51))
	elapsed := time.Since(start)
	if status != http.StatusOK || servedBy != "s0" {
		t.Fatalf("status %d served_by %q, want recovery on the retry", status, servedBy)
	}
	if s0.servedCount() != 2 {
		t.Errorf("shard saw %d requests, want refusal + retry", s0.servedCount())
	}
	// The base backoff tops out at 1.5ms; only the honored hint explains
	// a wait of this order.
	if elapsed < (hintMillis-50)*time.Millisecond {
		t.Errorf("retry came after %s, want the %dms shard hint honored", elapsed, hintMillis)
	}
}
