package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	if !Equal(y, want) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestAxpyTo(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	dst := make([]float64, 3)
	AxpyTo(dst, -1, x, y)
	want := []float64{9, 18, 27}
	if !Equal(dst, want) {
		t.Fatalf("AxpyTo = %v, want %v", dst, want)
	}
	// y must be untouched.
	if !Equal(y, []float64{10, 20, 30}) {
		t.Fatalf("AxpyTo modified y: %v", y)
	}
}

func TestAxpyToAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	AxpyTo(y, 0.5, x, y) // dst aliases y
	want := []float64{10.5, 21, 31.5}
	if !Equal(y, want) {
		t.Fatalf("aliased AxpyTo = %v, want %v", y, want)
	}
}

func TestXpay(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Xpay(0.5, x, y) // y = x + 0.5 y
	want := []float64{6, 12, 18}
	if !Equal(y, want) {
		t.Fatalf("Xpay = %v, want %v", y, want)
	}
}

func TestNorms(t *testing.T) {
	a := []float64{3, -4}
	if got := Norm2(a); !almostEq(got, 5, 1e-15) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2Sq(a); got != 25 {
		t.Errorf("Norm2Sq = %v, want 25", got)
	}
	if got := Norm1(a); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(a); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow for huge entries.
	a := []float64{1e200, 1e200}
	got := Norm2(a)
	want := math.Sqrt2 * 1e200
	if !almostEq(got, want, 1e-14) {
		t.Fatalf("Norm2 overflow guard failed: got %v want %v", got, want)
	}
	if math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed to Inf")
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := Norm2([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Norm2(zero) = %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v", got)
	}
}

func TestSumWeightedSum(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Sum(a); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	w := []float64{1, 0, 1, 0}
	if got := WeightedSum(w, a); got != 4 {
		t.Errorf("WeightedSum = %v", got)
	}
}

func TestScaleCopyClone(t *testing.T) {
	a := []float64{1, 2}
	Scale(3, a)
	if !Equal(a, []float64{3, 6}) {
		t.Errorf("Scale = %v", a)
	}
	b := make([]float64, 2)
	Copy(b, a)
	if !Equal(a, b) {
		t.Errorf("Copy = %v", b)
	}
	c := Clone(a)
	c[0] = -1
	if a[0] == -1 {
		t.Error("Clone shares backing array")
	}
}

func TestSubAdd(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	d := make([]float64, 2)
	Sub(d, a, b)
	if !Equal(d, []float64{3, 4}) {
		t.Errorf("Sub = %v", d)
	}
	Add(d, a, b)
	if !Equal(d, []float64{7, 10}) {
		t.Errorf("Add = %v", d)
	}
}

func TestFillZero(t *testing.T) {
	a := make([]float64, 3)
	Fill(a, 2.5)
	if !Equal(a, []float64{2.5, 2.5, 2.5}) {
		t.Errorf("Fill = %v", a)
	}
	Zero(a)
	if !Equal(a, []float64{0, 0, 0}) {
		t.Errorf("Zero = %v", a)
	}
}

func TestEqualNaN(t *testing.T) {
	a := []float64{math.NaN(), 1}
	b := []float64{math.NaN(), 1}
	if !Equal(a, b) {
		t.Error("Equal should treat NaN==NaN as equal")
	}
	if Equal(a, []float64{0, 1}) {
		t.Error("Equal false positive")
	}
	if Equal(a, a[:1]) {
		t.Error("Equal must compare lengths")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 5, 3}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotPropertySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖a‖₂² ≈ Dot(a,a) and Norm2 ≥ NormInf ≥ 0.
func TestNormProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
		}
		n2 := Norm2(a)
		if !almostEq(n2*n2, Norm2Sq(a), 1e-10) {
			return false
		}
		if n2+1e-12 < NormInf(a) {
			return false
		}
		return Norm1(a)+1e-9 >= n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Axpy then Axpy with -alpha restores y (exactly, since the
// floating point ops are identical and symmetric around the original value
// only approximately — use a tolerance).
func TestAxpyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		y0 := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			y0[i] = y[i]
		}
		alpha := rng.NormFloat64()
		Axpy(alpha, x, y)
		Axpy(-alpha, x, y)
		return MaxAbsDiff(y, y0) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlopCounts(t *testing.T) {
	if FlopsDot(10) != 20 || FlopsAxpy(10) != 20 || FlopsNorm2(10) != 20 {
		t.Fatal("unexpected flop counts")
	}
}

func BenchmarkDot(b *testing.B) {
	n := 1 << 14
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(n - i)
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	n := 1 << 14
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1e-9, x, y)
	}
}
