// Package vec provides the dense vector kernels used by the iterative
// solvers in this repository: dot products, axpy updates, norms and
// element-wise helpers.
//
// All kernels operate on []float64 and panic on length mismatches, mirroring
// the contract of the BLAS level-1 routines they stand in for. Each kernel
// has a documented flop count (see Flops*) so the simulation clock in
// internal/sim can convert operations into model time units.
package vec

import (
	"fmt"
	"math"
)

// checkLen panics if the two vectors have different lengths. The solvers
// never mix lengths, so a mismatch is a programming error, not a runtime
// condition to recover from.
func checkLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec.%s: length mismatch %d != %d", op, len(a), len(b)))
	}
}

// Dot returns the inner product aᵀb.
func Dot(a, b []float64) float64 {
	checkLen("Dot", a, b)
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Axpy computes y ← y + alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	checkLen("Axpy", x, y)
	for i, xi := range x {
		y[i] += alpha * xi
	}
}

// AxpyTo computes dst ← y + alpha*x without modifying y. dst may alias y or x.
func AxpyTo(dst []float64, alpha float64, x, y []float64) {
	checkLen("AxpyTo", x, y)
	checkLen("AxpyTo", dst, y)
	for i := range dst {
		dst[i] = y[i] + alpha*x[i]
	}
}

// Xpay computes y ← x + alpha*y in place (used for the CG direction update
// p ← r + beta*p).
func Xpay(alpha float64, x, y []float64) {
	checkLen("Xpay", x, y)
	for i, xi := range x {
		y[i] = xi + alpha*y[i]
	}
}

// Norm2 returns the Euclidean norm ‖a‖₂. It guards against overflow by
// scaling, like the reference BLAS dnrm2.
func Norm2(a []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Norm2Sq returns ‖a‖₂² as a plain sum of squares (no overflow guard); this
// is the quantity the CG recurrences actually use.
func Norm2Sq(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// Norm1 returns the 1-norm Σ|aᵢ|.
func Norm1(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-norm max|aᵢ|.
func NormInf(a []float64) float64 {
	var m float64
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Sum returns Σaᵢ.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// WeightedSum returns Σ wᵢ aᵢ for arbitrary weights. It is the building block
// of the ABFT checksum rows.
func WeightedSum(w, a []float64) float64 {
	checkLen("WeightedSum", w, a)
	var s float64
	for i, v := range a {
		s += w[i] * v
	}
	return s
}

// Scale computes a ← alpha*a in place.
func Scale(alpha float64, a []float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	checkLen("Copy", dst, src)
	copy(dst, src)
}

// Clone returns a newly allocated copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Sub computes dst ← a − b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	checkLen("Sub", a, b)
	checkLen("Sub", dst, a)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Add computes dst ← a + b. dst may alias a or b.
func Add(dst, a, b []float64) {
	checkLen("Add", a, b)
	checkLen("Add", dst, a)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// Zero sets every element of a to 0.
func Zero(a []float64) { Fill(a, 0) }

// Equal reports whether a and b are element-wise identical (bit-for-bit,
// except that NaN==NaN is considered true so corrupted states compare sanely).
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns max |aᵢ − bᵢ|, a convenient convergence/corruption metric.
func MaxAbsDiff(a, b []float64) float64 {
	checkLen("MaxAbsDiff", a, b)
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Flop counts for the kernels above, in floating point operations, as used
// by the cost model. n is the vector length.

// FlopsDot is the flop count of Dot on length-n vectors.
func FlopsDot(n int) int64 { return 2 * int64(n) }

// FlopsAxpy is the flop count of Axpy on length-n vectors.
func FlopsAxpy(n int) int64 { return 2 * int64(n) }

// FlopsNorm2 is the flop count of Norm2 on a length-n vector.
func FlopsNorm2(n int) int64 { return 2 * int64(n) }
