package vec

import (
	"math/rand"
	"testing"

	"repro/internal/pool"
)

func randSlice(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// TestBlockedReductionsDeterministic is the core determinism contract: the
// pooled reductions must be bitwise identical to their nil-pool (sequential
// blocked) execution for every worker count, including lengths that are not
// block-aligned.
func TestBlockedReductionsDeterministic(t *testing.T) {
	for _, n := range []int{1, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17, 10 * BlockSize} {
		a := randSlice(n, 1)
		b := randSlice(n, 2)
		wantDot := DotPool(nil, a, b)
		wantNorm := Norm2SqPool(nil, a)
		for _, workers := range []int{1, 2, 3, 8} {
			p := pool.New(workers)
			for trial := 0; trial < 5; trial++ {
				if got := DotPool(p, a, b); got != wantDot {
					t.Fatalf("n=%d workers=%d: DotPool = %v, want %v", n, workers, got, wantDot)
				}
				if got := Norm2SqPool(p, a); got != wantNorm {
					t.Fatalf("n=%d workers=%d: Norm2SqPool = %v, want %v", n, workers, got, wantNorm)
				}
			}
			p.Close()
		}
	}
}

// TestSingleBlockMatchesPlainKernels pins the small-vector identity the TMR
// tests and the solvers rely on: under one block the blocked kernels are the
// plain kernels, bit for bit.
func TestSingleBlockMatchesPlainKernels(t *testing.T) {
	a := randSlice(BlockSize, 3)
	b := randSlice(BlockSize, 4)
	if DotPool(nil, a, b) != Dot(a, b) {
		t.Fatal("single-block DotPool must equal plain Dot")
	}
	if Norm2SqPool(nil, a) != Norm2Sq(a) {
		t.Fatal("single-block Norm2SqPool must equal plain Norm2Sq")
	}
}

// TestElementwisePoolKernels checks the parallel element-wise updates
// against their sequential counterparts — element-wise kernels are
// deterministic by construction, so equality must be exact.
func TestElementwisePoolKernels(t *testing.T) {
	const n = 3*BlockSize + 5
	p := pool.New(4)
	x := randSlice(n, 5)

	ySeq := randSlice(n, 6)
	yPar := append([]float64(nil), ySeq...)
	Axpy(0.75, x, ySeq)
	AxpyPool(p, 0.75, x, yPar)
	if !Equal(ySeq, yPar) {
		t.Fatal("AxpyPool differs from Axpy")
	}

	Xpay(-1.25, x, ySeq)
	XpayPool(p, -1.25, x, yPar)
	if !Equal(ySeq, yPar) {
		t.Fatal("XpayPool differs from Xpay")
	}

	dstSeq := make([]float64, n)
	dstPar := make([]float64, n)
	AxpyTo(dstSeq, 2.5, x, ySeq)
	AxpyToPool(p, dstPar, 2.5, x, yPar)
	if !Equal(dstSeq, dstPar) {
		t.Fatal("AxpyToPool differs from AxpyTo")
	}
}

func TestPoolKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotPool must panic on length mismatch")
		}
	}()
	DotPool(nil, make([]float64, 3), make([]float64, 4))
}
