package vec

import (
	"sync"

	"repro/internal/pool"
)

// This file provides pool-parallel variants of the hot level-1 kernels. The
// reductions (DotPool, Norm2SqPool) use a *deterministic blocked* scheme:
// the vector is cut into fixed BlockSize blocks, each block is summed
// left-to-right, and the per-block partials are folded in block order on the
// calling goroutine. The block boundaries depend only on the vector length,
// so the result is bitwise identical for any worker count — including one —
// and residual histories of the solvers stay reproducible when parallelism
// is toggled. A nil pool runs the same blocked algorithm sequentially.
//
// The element-wise kernels (AxpyPool, AxpyToPool, XpayPool) are trivially
// deterministic: each output element depends only on its own inputs.

// BlockSize is the reduction block length. Vectors no longer than BlockSize
// reduce in a single block, which makes the blocked kernels bit-identical
// to their plain sequential counterparts on small inputs.
const BlockSize = 4096

// minParallel is the length below which the element-wise kernels skip the
// pool: dispatch overhead dwarfs the O(n) work.
const minParallel = 2 * BlockSize

// blocks returns the number of BlockSize blocks covering a length-n vector.
func blocks(n int) int { return (n + BlockSize - 1) / BlockSize }

// partialsPool recycles the per-reduction partial-sum scratch so the
// blocked reductions allocate nothing in steady state. Partials are
// indexed, not appended, so stale contents never leak into a fold.
var partialsPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 64)
	return &s
}}

// foldBlocks runs partial(bi) for every block index across the pool and
// folds the partials in ascending block order.
func foldBlocks(p *pool.Pool, n int, partial func(lo, hi int) float64) float64 {
	nb := blocks(n)
	scratch := partialsPool.Get().(*[]float64)
	if cap(*scratch) < nb {
		*scratch = make([]float64, nb)
	}
	partials := (*scratch)[:nb]
	body := func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			lo := bi * BlockSize
			hi := lo + BlockSize
			if hi > n {
				hi = n
			}
			partials[bi] = partial(lo, hi)
		}
	}
	if p == nil || nb == 1 {
		body(0, nb)
	} else {
		p.Run(nb, 1, body)
	}
	var s float64
	for _, v := range partials {
		s += v
	}
	partialsPool.Put(scratch)
	return s
}

// DotPool returns aᵀb using the deterministic blocked reduction, parallel
// across p (sequential when p is nil, same result bit for bit). The
// sequential path folds block partials inline — no scratch, no escaping
// closures — so it allocates nothing.
func DotPool(p *pool.Pool, a, b []float64) float64 {
	checkLen("DotPool", a, b)
	if len(a) <= BlockSize {
		return Dot(a, b)
	}
	if p == nil {
		n := len(a)
		var total float64
		for lo := 0; lo < n; lo += BlockSize {
			hi := lo + BlockSize
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += a[i] * b[i]
			}
			total += s
		}
		return total
	}
	return foldBlocks(p, len(a), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// Norm2SqPool returns ‖a‖₂² using the deterministic blocked reduction.
func Norm2SqPool(p *pool.Pool, a []float64) float64 {
	if len(a) <= BlockSize {
		return Norm2Sq(a)
	}
	if p == nil {
		n := len(a)
		var total float64
		for lo := 0; lo < n; lo += BlockSize {
			hi := lo + BlockSize
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += a[i] * a[i]
			}
			total += s
		}
		return total
	}
	return foldBlocks(p, len(a), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * a[i]
		}
		return s
	})
}

// AxpyPool computes y ← y + alpha·x in place across the pool.
func AxpyPool(p *pool.Pool, alpha float64, x, y []float64) {
	checkLen("AxpyPool", x, y)
	if p == nil || len(x) < minParallel {
		Axpy(alpha, x, y)
		return
	}
	p.Run(len(x), BlockSize, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// AxpyToPool computes dst ← y + alpha·x across the pool.
func AxpyToPool(p *pool.Pool, dst []float64, alpha float64, x, y []float64) {
	checkLen("AxpyToPool", x, y)
	checkLen("AxpyToPool", dst, y)
	if p == nil || len(x) < minParallel {
		AxpyTo(dst, alpha, x, y)
		return
	}
	p.Run(len(dst), BlockSize, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = y[i] + alpha*x[i]
		}
	})
}

// XpayPool computes y ← x + alpha·y in place across the pool.
func XpayPool(p *pool.Pool, alpha float64, x, y []float64) {
	checkLen("XpayPool", x, y)
	if p == nil || len(x) < minParallel {
		Xpay(alpha, x, y)
		return
	}
	p.Run(len(x), BlockSize, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = x[i] + alpha*y[i]
		}
	})
}
