// Package model implements the paper's abstract performance model
// (Section 4): execution is divided into chunks of T time units, each
// followed by a verification of cost Tverif; s chunks form a frame, each
// frame ends with a checkpoint of cost Tcp; on a detected error the frame
// restarts after a recovery of cost Trec.
//
// With chunk success probability q, the expected frame time is (paper
// Eq. (5)):
//
//	E(s,T) = Tcp + (q^{-s} − 1)·Trec + (T + Tverif)·(1 − q^s)/(q^s·(1 − q))
//
// and the checkpointing interval s* minimises the overhead E(s,T)/(s·T)
// (Eq. (6)). The chunk success probability depends on the scheme:
//
//	detection only      q = e^{−λT}                 (Section 4.2.1–4.2.2)
//	single-error fixup  q = e^{−λT} + λT·e^{−λT}    (Section 4.2.3)
//
// because with ABFT-Correction an iteration survives zero OR one error.
package model

import (
	"math"
)

// Params describes one resilient scheme instance.
type Params struct {
	// T is the chunk duration (d·Titer for Online-Detection, Titer for the
	// ABFT schemes).
	T float64
	// Tverif is the verification cost paid after every chunk.
	Tverif float64
	// Tcp is the checkpoint cost paid after every s chunks.
	Tcp float64
	// Trec is the recovery cost paid on rollback.
	Trec float64
	// Lambda is the error rate per time unit.
	Lambda float64
	// Correcting is true for schemes that survive a single error per chunk
	// (ABFT-Correction).
	Correcting bool
}

// Q returns the chunk success probability.
func (p Params) Q() float64 {
	lt := p.Lambda * p.T
	q := math.Exp(-lt)
	if p.Correcting {
		q += lt * math.Exp(-lt)
	}
	if q > 1 {
		q = 1
	}
	return q
}

// FrameTime returns E(s,T), the expected time to complete one frame of s
// chunks (paper Eq. (5)). The λ→0 limit (q = 1) is handled exactly.
func (p Params) FrameTime(s int) float64 {
	if s < 1 {
		panic("model: frame needs at least one chunk")
	}
	q := p.Q()
	work := p.T + p.Tverif
	if q >= 1 {
		return float64(s)*work + p.Tcp
	}
	qs := math.Pow(q, float64(s))
	if qs == 0 {
		return math.Inf(1)
	}
	return p.Tcp + (1/qs-1)*p.Trec + work*(1-qs)/(qs*(1-q))
}

// Overhead returns the expected time per unit of useful work,
// E(s,T)/(s·T) — the objective of Eq. (6). Lower is better; 1 would be
// fault-free execution with zero resilience cost.
func (p Params) Overhead(s int) float64 {
	return p.FrameTime(s) / (float64(s) * p.T)
}

// OptimalS minimises the overhead over 1 ≤ s ≤ maxS (Eq. (6) must be solved
// numerically, as the paper notes). The overhead is unimodal in s for the
// regimes of interest, but we scan exhaustively — the range is small and
// correctness beats cleverness here.
func (p Params) OptimalS(maxS int) (s int, overhead float64) {
	if maxS < 1 {
		maxS = 1
	}
	best, bestS := math.Inf(1), 1
	for cand := 1; cand <= maxS; cand++ {
		if o := p.Overhead(cand); o < best {
			best, bestS = o, cand
		}
	}
	return bestS, best
}

// OnlineParams describes the Online-Detection scheme before its chunk
// length is chosen: a chunk is d iterations of cost Titer each, followed by
// a verification.
type OnlineParams struct {
	Titer  float64
	Tverif float64
	Tcp    float64
	Trec   float64
	Lambda float64
}

// Optimal jointly minimises the overhead over the verification interval d
// and checkpoint interval s (the paper instantiates Eq. (6) with T = d·Titer
// for Chen's method, Section 4.2.1).
func (o OnlineParams) Optimal(maxD, maxS int) (d, s int, overhead float64) {
	if maxD < 1 {
		maxD = 1
	}
	best := math.Inf(1)
	bestD, bestS := 1, 1
	for cd := 1; cd <= maxD; cd++ {
		p := Params{
			T:      float64(cd) * o.Titer,
			Tverif: o.Tverif,
			Tcp:    o.Tcp,
			Trec:   o.Trec,
			Lambda: o.Lambda,
		}
		cs, ov := p.OptimalS(maxS)
		if ov < best {
			best, bestD, bestS = ov, cd, cs
		}
	}
	return bestD, bestS, best
}

// YoungPeriod returns Young's first-order approximation of the optimal
// checkpoint period W (time of useful work between checkpoints) for pure
// periodic checkpointing: W = sqrt(2·Tcp/λ).
func YoungPeriod(tcp, lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * tcp / lambda)
}

// DalyPeriod returns Daly's higher-order estimate of the optimal checkpoint
// period: sqrt(2·Tcp·(1/λ + Trec)) − Tcp (clamped to be positive).
func DalyPeriod(tcp, trec, lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	w := math.Sqrt(2*tcp*(1/lambda+trec)) - tcp
	if w < tcp {
		w = tcp
	}
	return w
}

// ExpectedExecutionTime returns the model's prediction for executing
// `iters` iterations under the scheme: the number of frames times the
// expected frame time, with a partial last frame prorated. chunkIters is
// the number of iterations per chunk (d for Online-Detection, 1 for ABFT).
func ExpectedExecutionTime(p Params, s, chunkIters, iters int) float64 {
	if iters <= 0 {
		return 0
	}
	chunks := (iters + chunkIters - 1) / chunkIters
	frames := chunks / s
	rem := chunks % s
	t := float64(frames) * p.FrameTime(s)
	if rem > 0 {
		t += p.FrameTime(rem)
	}
	return t
}
