package model

import "math"

// This file implements a dynamic-programming placement baseline in the
// spirit of Benoit, Cavelan, Robert & Sun (PMBS 2014), which the paper
// cites as the known (non-closed-form) way to compute the optimal
// repartition of checkpoints and verifications: given a finite horizon of N
// chunks, choose after which chunks to checkpoint so the total expected
// time is minimal. Within a frame the expected time follows Eq. (5); the DP
// optimises the frame boundaries rather than assuming one fixed s, which
// matters for horizons that are not multiples of the periodic optimum.

// OptimalPlacement computes the minimum expected time to execute n chunks
// with a checkpoint after the last one of each frame, and returns the
// chosen frame lengths in execution order. O(n²) time, O(n) space.
func OptimalPlacement(p Params, n int) (total float64, frames []int) {
	if n <= 0 {
		return 0, nil
	}
	// frameCost[s] = E(s, T) for a frame of s chunks.
	frameCost := make([]float64, n+1)
	for s := 1; s <= n; s++ {
		frameCost[s] = p.FrameTime(s)
	}
	// best[i] = minimal expected time for the first i chunks; prev[i] = the
	// start of the last frame in the optimum for i chunks.
	best := make([]float64, n+1)
	prev := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = math.Inf(1)
		for j := 0; j < i; j++ {
			if c := best[j] + frameCost[i-j]; c < best[i] {
				best[i] = c
				prev[i] = j
			}
		}
	}
	// Reconstruct frame lengths.
	for i := n; i > 0; i = prev[i] {
		frames = append(frames, i-prev[i])
	}
	// Reverse into execution order.
	for l, r := 0, len(frames)-1; l < r; l, r = l+1, r-1 {
		frames[l], frames[r] = frames[r], frames[l]
	}
	return best[n], frames
}
