package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestQDetection(t *testing.T) {
	p := Params{T: 2, Lambda: 0.1}
	want := math.Exp(-0.2)
	if got := p.Q(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Q = %v, want %v", got, want)
	}
}

func TestQCorrection(t *testing.T) {
	p := Params{T: 2, Lambda: 0.1, Correcting: true}
	lt := 0.2
	want := math.Exp(-lt) + lt*math.Exp(-lt)
	if got := p.Q(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Q = %v, want %v", got, want)
	}
	// Correction always improves the chunk success probability.
	det := Params{T: 2, Lambda: 0.1}
	if p.Q() <= det.Q() {
		t.Fatal("correcting Q must exceed detecting Q")
	}
}

func TestFrameTimeFaultFree(t *testing.T) {
	p := Params{T: 1, Tverif: 0.1, Tcp: 0.5, Trec: 0.3, Lambda: 0}
	// q = 1: E = s(T+Tverif) + Tcp exactly.
	for s := 1; s <= 10; s++ {
		want := float64(s)*1.1 + 0.5
		if got := p.FrameTime(s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("s=%d: E = %v, want %v", s, got, want)
		}
	}
}

func TestFrameTimeSingleChunkClosedForm(t *testing.T) {
	// For s = 1, Eq. (5) reduces to Tcp + (1/q − 1)Trec + (T+Tverif)/q.
	p := Params{T: 1, Tverif: 0.2, Tcp: 0.5, Trec: 0.4, Lambda: 0.05}
	q := p.Q()
	want := 0.5 + (1/q-1)*0.4 + 1.2/q
	if got := p.FrameTime(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E(1) = %v, want %v", got, want)
	}
}

// TestFrameTimeMatchesMonteCarlo validates Eq. (5) against a direct
// stochastic simulation of the frame process: chunks succeed with
// probability q; on a failure, the error is detected at the end of the
// failing chunk, recovery is paid, and the frame restarts.
func TestFrameTimeMatchesMonteCarlo(t *testing.T) {
	p := Params{T: 1, Tverif: 0.15, Tcp: 0.6, Trec: 0.35, Lambda: 0.08}
	rng := rand.New(rand.NewSource(42))
	for _, s := range []int{1, 3, 8} {
		q := p.Q()
		const trials = 200000
		var total float64
		for trial := 0; trial < trials; trial++ {
			var elapsed float64
			for {
				failed := false
				for c := 1; c <= s; c++ {
					elapsed += p.T + p.Tverif
					if rng.Float64() > q {
						failed = true
						break
					}
				}
				if !failed {
					elapsed += p.Tcp
					break
				}
				elapsed += p.Trec
			}
			total += elapsed
		}
		got := total / trials
		want := p.FrameTime(s)
		if math.Abs(got-want) > 0.01*want {
			t.Fatalf("s=%d: Monte Carlo %v vs model %v", s, got, want)
		}
	}
}

func TestFrameTimePanicsOnBadS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Params{T: 1}.FrameTime(0)
}

func TestOptimalSIncreasesAsLambdaDrops(t *testing.T) {
	base := Params{T: 1, Tverif: 0.05, Tcp: 2, Trec: 1}
	prev := 0
	for _, lambda := range []float64{0.2, 0.05, 0.01, 0.002} {
		p := base
		p.Lambda = lambda
		s, _ := p.OptimalS(10000)
		if s < prev {
			t.Fatalf("optimal s decreased (%d after %d) as faults got rarer", s, prev)
		}
		prev = s
	}
}

func TestOptimalSCorrectionAllowsLongerFrames(t *testing.T) {
	det := Params{T: 1, Tverif: 0.05, Tcp: 2, Trec: 1, Lambda: 0.05}
	cor := det
	cor.Correcting = true
	sd, _ := det.OptimalS(10000)
	sc, _ := cor.OptimalS(10000)
	if sc < sd {
		t.Fatalf("correction should checkpoint less often: s_corr=%d < s_det=%d", sc, sd)
	}
}

func TestOptimalSMatchesYoungOrder(t *testing.T) {
	// For small λ and detection-only, the optimal useful work between
	// checkpoints s*·T should be within a small factor of Young's period.
	p := Params{T: 1, Tverif: 0.02, Tcp: 3, Trec: 1, Lambda: 0.001}
	s, _ := p.OptimalS(10000)
	young := YoungPeriod(p.Tcp, p.Lambda)
	ratio := float64(s) * p.T / young
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("s*T = %v vs Young %v (ratio %v)", float64(s)*p.T, young, ratio)
	}
}

func TestOnlineOptimalJoint(t *testing.T) {
	o := OnlineParams{Titer: 1, Tverif: 1.2, Tcp: 4, Trec: 2, Lambda: 0.01}
	d, s, ov := o.Optimal(200, 500)
	if d < 1 || s < 1 {
		t.Fatalf("degenerate optimum d=%d s=%d", d, s)
	}
	if ov <= 1 {
		t.Fatalf("overhead %v cannot be below fault-free unity", ov)
	}
	// Expensive verification should push d above 1.
	if d == 1 {
		t.Fatalf("with Tverif > Titer the optimal d should exceed 1, got %d", d)
	}
}

func TestYoungDaly(t *testing.T) {
	if !math.IsInf(YoungPeriod(1, 0), 1) || !math.IsInf(DalyPeriod(1, 1, 0), 1) {
		t.Fatal("zero fault rate must give infinite period")
	}
	y := YoungPeriod(2, 0.001)
	if math.Abs(y-math.Sqrt(4000)) > 1e-9 {
		t.Fatalf("Young = %v", y)
	}
	d := DalyPeriod(2, 1, 0.001)
	if d <= 0 {
		t.Fatal("Daly period must be positive")
	}
}

func TestExpectedExecutionTime(t *testing.T) {
	p := Params{T: 1, Tverif: 0.1, Tcp: 0.5, Trec: 0.2, Lambda: 0}
	// 10 iterations, chunk = 1 iter, s = 5: two full frames.
	got := ExpectedExecutionTime(p, 5, 1, 10)
	want := 2 * p.FrameTime(5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	// 12 iterations: two frames + partial frame of 2 chunks.
	got = ExpectedExecutionTime(p, 5, 1, 12)
	want = 2*p.FrameTime(5) + p.FrameTime(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	if ExpectedExecutionTime(p, 5, 1, 0) != 0 {
		t.Fatal("zero iterations must cost zero")
	}
}

func TestOptimalPlacementUniformMatchesPeriodic(t *testing.T) {
	p := Params{T: 1, Tverif: 0.05, Tcp: 1, Trec: 0.5, Lambda: 0.02}
	n := 60
	total, frames := OptimalPlacement(p, n)
	// Total chunks must be preserved.
	sum := 0
	for _, f := range frames {
		sum += f
	}
	if sum != n {
		t.Fatalf("frames sum to %d, want %d", sum, n)
	}
	// The DP can never do worse than the best fixed period that divides n.
	bestFixed := math.Inf(1)
	for s := 1; s <= n; s++ {
		if n%s != 0 {
			continue
		}
		c := float64(n/s) * p.FrameTime(s)
		if c < bestFixed {
			bestFixed = c
		}
	}
	if total > bestFixed+1e-9 {
		t.Fatalf("DP total %v worse than best fixed %v", total, bestFixed)
	}
}

func TestOptimalPlacementEmpty(t *testing.T) {
	total, frames := OptimalPlacement(Params{T: 1}, 0)
	if total != 0 || frames != nil {
		t.Fatal("empty horizon must cost nothing")
	}
}

func TestOverheadUnimodalSpotCheck(t *testing.T) {
	// Not a theorem, but for sane parameters the overhead should decrease
	// then increase around the optimum; catch gross formula errors.
	p := Params{T: 1, Tverif: 0.05, Tcp: 2, Trec: 1, Lambda: 0.01}
	s, _ := p.OptimalS(5000)
	if s <= 1 {
		t.Skip("optimum at boundary")
	}
	if p.Overhead(s) >= p.Overhead(s-1) || p.Overhead(s) >= p.Overhead(s+1) {
		t.Fatal("claimed optimum is not a local minimum")
	}
}
