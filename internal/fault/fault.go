// Package fault implements the silent-error injector used by the
// experiments, following Section 5.1 of the paper:
//
//   - Faults are bit flips striking independently at each iteration, with an
//     exponential distribution of inter-arrival times. With the iteration
//     cost Titer normalised to 1, the number of flips per iteration is
//     Poisson with mean α, where the per-word rate is λ = α/M and M is the
//     total number of corruptible memory words.
//   - Flips can strike the matrix representation (the Val, Colid and Rowidx
//     arrays of the CSR structure) or any entry of the solver vectors
//     (r, p, q, x for CG).
//   - Selective reliability: checksums, checksum operations, verification,
//     checkpoint and recovery are never corrupted. The injector therefore
//     never touches those — they are simply not registered as targets.
//
// The injector is deterministic for a fixed seed, making every experiment
// reproducible.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitflip"
	"repro/internal/sparse"
)

// Target identifies a corruptible memory region.
type Target uint8

// The corruptible regions of the resilient CG state.
const (
	TargetVal     Target = iota // matrix nonzero values (float64)
	TargetColid                 // matrix column indices (int)
	TargetRowidx                // matrix row pointers (int)
	TargetVecR                  // residual vector r
	TargetVecP                  // search direction p
	TargetVecQ                  // SpMxV output q = Ap
	TargetVecX                  // iterate x
	TargetVecZ                  // preconditioned residual z = M·r (PCG)
	TargetMVal                  // preconditioner nonzero values (float64)
	TargetMColid                // preconditioner column indices (int)
	TargetMRowidx               // preconditioner row pointers (int)
	numTargets
)

// String returns the short name used in logs and statistics.
func (t Target) String() string {
	switch t {
	case TargetVal:
		return "Val"
	case TargetColid:
		return "Colid"
	case TargetRowidx:
		return "Rowidx"
	case TargetVecR:
		return "r"
	case TargetVecP:
		return "p"
	case TargetVecQ:
		return "q"
	case TargetVecX:
		return "x"
	case TargetVecZ:
		return "z"
	case TargetMVal:
		return "MVal"
	case TargetMColid:
		return "MColid"
	case TargetMRowidx:
		return "MRowidx"
	default:
		return fmt.Sprintf("Target(%d)", uint8(t))
	}
}

// IsMatrix reports whether the target is part of the system matrix
// representation.
func (t Target) IsMatrix() bool {
	return t == TargetVal || t == TargetColid || t == TargetRowidx
}

// IsPrecond reports whether the target is part of the preconditioner
// representation.
func (t Target) IsPrecond() bool {
	return t == TargetMVal || t == TargetMColid || t == TargetMRowidx
}

// Event records one injected bit flip.
type Event struct {
	Target Target
	Index  int  // element index within the target array
	Bit    uint // flipped bit position
}

// State is the corruptible memory image the injector strikes. Vector slots
// may be nil (e.g. q outside the SpMxV), in which case they are skipped.
type State struct {
	A *sparse.CSR
	// M is the explicit sparse preconditioner of the PCG drivers (nil for
	// plain CG).
	M *sparse.CSR
	R []float64
	P []float64
	Q []float64
	X []float64
	// Z is the preconditioned residual z = M·r of the PCG drivers.
	Z []float64
}

// vector returns the slice backing a vector target, or nil.
func (s *State) vector(t Target) []float64 {
	switch t {
	case TargetVecR:
		return s.R
	case TargetVecP:
		return s.P
	case TargetVecQ:
		return s.Q
	case TargetVecX:
		return s.X
	case TargetVecZ:
		return s.Z
	default:
		return nil
	}
}

// Words returns the number of corruptible words in the state: the quantity M
// of the paper (matrix arrays plus solver vectors).
func (s *State) Words() int {
	m := 0
	if s.A != nil {
		m += s.A.MemoryWords()
	}
	if s.M != nil {
		m += s.M.MemoryWords()
	}
	for _, t := range []Target{TargetVecR, TargetVecP, TargetVecQ, TargetVecX, TargetVecZ} {
		m += len(s.vector(t))
	}
	return m
}

// Config parameterises an Injector.
type Config struct {
	// Alpha is the expected number of faults per iteration (the paper's α;
	// the per-word rate is λ = α/M with Titer normalised to 1).
	Alpha float64
	// Seed drives the deterministic RNG.
	Seed int64
	// IndexBits caps the bit positions flipped in integer index arrays
	// (Colid, Rowidx). Zero means the default of 30, which produces both
	// in-range index corruptions (correctable by ABFT) and wildly
	// out-of-range ones (detectable, not correctable).
	IndexBits uint
	// Disabled lists targets that must never be struck (used by ablations,
	// e.g. matrix-only or vector-only campaigns).
	Disabled []Target
}

// Stats aggregates what the injector has done.
type Stats struct {
	Iterations int64 // iterations advanced
	Flips      int64 // total bit flips injected
	PerTarget  [numTargets]int64
}

// Injector draws fault counts and applies bit flips to a State.
type Injector struct {
	alpha     float64
	indexBits uint
	rng       *rand.Rand
	disabled  [numTargets]bool
	stats     Stats
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	if cfg.Alpha < 0 {
		panic("fault: negative Alpha")
	}
	bits := cfg.IndexBits
	if bits == 0 {
		bits = 30
	}
	if bits > 62 {
		bits = 62
	}
	in := &Injector{
		alpha:     cfg.Alpha,
		indexBits: bits,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, t := range cfg.Disabled {
		in.disabled[t] = true
	}
	return in
}

// Alpha returns the configured expected faults per iteration.
func (in *Injector) Alpha() float64 { return in.alpha }

// Stats returns a copy of the accumulated statistics.
func (in *Injector) Stats() Stats { return in.stats }

// PoissonCount draws the number of faults striking one iteration
// (mean Alpha). Uses Knuth's method, which is exact and fast for the small
// means used by the experiments (α ≤ 1).
func (in *Injector) PoissonCount() int {
	if in.alpha == 0 {
		return 0
	}
	l := math.Exp(-in.alpha)
	k := 0
	p := 1.0
	for {
		p *= in.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// InjectIteration advances one iteration: it draws a Poisson count of faults
// and applies each to a uniformly random corruptible word of st. It returns
// the events applied (empty most iterations).
func (in *Injector) InjectIteration(st *State) []Event {
	in.stats.Iterations++
	k := in.PoissonCount()
	if k == 0 {
		return nil
	}
	events := make([]Event, 0, k)
	for i := 0; i < k; i++ {
		if ev, ok := in.strike(st); ok {
			events = append(events, ev)
		}
	}
	return events
}

// InjectIterationSplit is InjectIteration for drivers whose q (and, for
// PCG, z) vectors are produced mid-iteration by a protected product: faults
// drawn against TargetVecQ or TargetVecZ are *not* applied (the buffer
// would be overwritten) but returned separately, to be applied by the
// caller right after the corresponding product via ApplyEvent. This models
// a silent error in the product computation itself, struck with probability
// proportional to the buffer's share of the memory — still one uniform draw
// over all M words, as in the paper's setup.
func (in *Injector) InjectIterationSplit(st *State) (applied, deferred []Event) {
	in.stats.Iterations++
	k := in.PoissonCount()
	for i := 0; i < k; i++ {
		ev, ok := in.choose(st)
		if !ok {
			continue
		}
		if ev.Target == TargetVecQ || ev.Target == TargetVecZ {
			deferred = append(deferred, ev)
			continue
		}
		in.apply(st, ev)
		applied = append(applied, ev)
	}
	return applied, deferred
}

// ApplyEvent applies a previously chosen event (used for deferred q faults).
func (in *Injector) ApplyEvent(st *State, ev Event) {
	in.apply(st, ev)
}

// strike flips one bit in a uniformly random enabled word. Returns false if
// no enabled words exist.
func (in *Injector) strike(st *State) (Event, bool) {
	ev, ok := in.choose(st)
	if !ok {
		return Event{}, false
	}
	in.apply(st, ev)
	return ev, true
}

// choose picks a uniformly random enabled word and bit without applying the
// flip.
func (in *Injector) choose(st *State) (Event, bool) {
	// Build the cumulative layout of enabled regions.
	type region struct {
		t    Target
		size int
	}
	var regions []region
	add := func(t Target, size int) {
		if size > 0 && !in.disabled[t] {
			regions = append(regions, region{t, size})
		}
	}
	if st.A != nil {
		add(TargetVal, len(st.A.Val))
		add(TargetColid, len(st.A.Colid))
		add(TargetRowidx, len(st.A.Rowidx))
	}
	if st.M != nil {
		add(TargetMVal, len(st.M.Val))
		add(TargetMColid, len(st.M.Colid))
		add(TargetMRowidx, len(st.M.Rowidx))
	}
	add(TargetVecR, len(st.R))
	add(TargetVecP, len(st.P))
	add(TargetVecQ, len(st.Q))
	add(TargetVecX, len(st.X))
	add(TargetVecZ, len(st.Z))

	total := 0
	for _, r := range regions {
		total += r.size
	}
	if total == 0 {
		return Event{}, false
	}
	w := in.rng.Intn(total)
	var tgt Target
	idx := 0
	for _, r := range regions {
		if w < r.size {
			tgt, idx = r.t, w
			break
		}
		w -= r.size
	}

	ev := Event{Target: tgt, Index: idx}
	if tgt == TargetColid || tgt == TargetRowidx || tgt == TargetMColid || tgt == TargetMRowidx {
		ev.Bit = uint(in.rng.Intn(int(in.indexBits)))
	} else {
		ev.Bit = uint(in.rng.Intn(bitflip.Float64Bits))
	}
	return ev, true
}

// apply performs the bit flip described by ev and records it in the stats.
func (in *Injector) apply(st *State, ev Event) {
	switch ev.Target {
	case TargetVal:
		st.A.Val[ev.Index] = bitflip.Float64(st.A.Val[ev.Index], ev.Bit)
	case TargetColid:
		st.A.Colid[ev.Index] = bitflip.Int(st.A.Colid[ev.Index], ev.Bit)
	case TargetRowidx:
		st.A.Rowidx[ev.Index] = bitflip.Int(st.A.Rowidx[ev.Index], ev.Bit)
	case TargetMVal:
		st.M.Val[ev.Index] = bitflip.Float64(st.M.Val[ev.Index], ev.Bit)
	case TargetMColid:
		st.M.Colid[ev.Index] = bitflip.Int(st.M.Colid[ev.Index], ev.Bit)
	case TargetMRowidx:
		st.M.Rowidx[ev.Index] = bitflip.Int(st.M.Rowidx[ev.Index], ev.Bit)
	default:
		v := st.vector(ev.Target)
		v[ev.Index] = bitflip.Float64(v[ev.Index], ev.Bit)
	}
	in.stats.Flips++
	in.stats.PerTarget[ev.Target]++
}

// AlphaForMTBF converts a normalised mean time between failures x = 1/α
// (the x-axis of the paper's Figure 1) into α.
func AlphaForMTBF(x float64) float64 {
	if x <= 0 {
		panic("fault: MTBF must be positive")
	}
	return 1 / x
}

// WordRate returns the per-word fault rate λ_word = α/M used in the paper's
// setup (λ inversely proportional to memory size).
func WordRate(alpha float64, words int) float64 {
	if words <= 0 {
		return 0
	}
	return alpha / float64(words)
}
