package fault

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func newState(n int) *State {
	return &State{
		A: sparse.Tridiag(n, 4, -1),
		R: make([]float64, n),
		P: make([]float64, n),
		Q: make([]float64, n),
		X: make([]float64, n),
	}
}

func TestWords(t *testing.T) {
	st := newState(10)
	// Tridiag(10): nnz = 28, Rowidx 11, four vectors of 10.
	want := 28 + 28 + 11 + 40
	if got := st.Words(); got != want {
		t.Fatalf("Words = %d, want %d", got, want)
	}
}

func TestPoissonCountMean(t *testing.T) {
	in := New(Config{Alpha: 0.25, Seed: 1})
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += in.PoissonCount()
	}
	mean := float64(sum) / n
	if math.Abs(mean-0.25) > 0.02 {
		t.Fatalf("empirical Poisson mean = %v, want ≈ 0.25", mean)
	}
}

func TestPoissonZeroAlpha(t *testing.T) {
	in := New(Config{Alpha: 0, Seed: 1})
	for i := 0; i < 100; i++ {
		if in.PoissonCount() != 0 {
			t.Fatal("alpha=0 must never produce faults")
		}
	}
}

func TestInjectChangesExactlyOneWordPerEvent(t *testing.T) {
	in := New(Config{Alpha: 5, Seed: 42}) // high rate: every iteration strikes
	st := newState(20)
	ref := newState(20)

	events := in.InjectIteration(st)
	if len(events) == 0 {
		t.Skip("unlucky draw (possible but ~e^-5); rerun with different seed")
	}
	// Count differing words between st and ref.
	diff := 0
	for i := range st.A.Val {
		if st.A.Val[i] != ref.A.Val[i] {
			diff++
		}
	}
	for i := range st.A.Colid {
		if st.A.Colid[i] != ref.A.Colid[i] {
			diff++
		}
	}
	for i := range st.A.Rowidx {
		if st.A.Rowidx[i] != ref.A.Rowidx[i] {
			diff++
		}
	}
	for _, pair := range [][2][]float64{{st.R, ref.R}, {st.P, ref.P}, {st.Q, ref.Q}, {st.X, ref.X}} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				diff++
			}
		}
	}
	// Each event flips one bit; two events can hit the same word and cancel
	// or combine, so diff ≤ len(events). With distinct strikes diff equals.
	if diff > len(events) {
		t.Fatalf("%d words changed for %d events", diff, len(events))
	}
	if diff == 0 {
		t.Fatalf("events reported (%d) but nothing changed", len(events))
	}
}

func TestInjectDeterministic(t *testing.T) {
	run := func() Stats {
		in := New(Config{Alpha: 0.5, Seed: 7})
		st := newState(30)
		for i := 0; i < 200; i++ {
			in.InjectIteration(st)
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("injector not deterministic: %+v vs %+v", a, b)
	}
}

func TestInjectRespectsDisabled(t *testing.T) {
	in := New(Config{
		Alpha: 2, Seed: 3,
		Disabled: []Target{TargetVal, TargetColid, TargetRowidx},
	})
	st := newState(15)
	matRef := st.A.Clone()
	for i := 0; i < 300; i++ {
		in.InjectIteration(st)
	}
	if !st.A.Equal(matRef) {
		t.Fatal("disabled matrix targets were struck")
	}
	s := in.Stats()
	if s.PerTarget[TargetVal]+s.PerTarget[TargetColid]+s.PerTarget[TargetRowidx] != 0 {
		t.Fatal("stats recorded strikes on disabled targets")
	}
	if s.Flips == 0 {
		t.Fatal("no faults at all with alpha=2 over 300 iterations")
	}
}

func TestInjectNilVectors(t *testing.T) {
	in := New(Config{Alpha: 2, Seed: 9})
	st := &State{A: sparse.Tridiag(5, 4, -1)} // no vectors registered
	for i := 0; i < 100; i++ {
		in.InjectIteration(st)
	}
	if in.Stats().Flips == 0 {
		t.Fatal("matrix-only state should still be struck")
	}
}

func TestInjectEmptyState(t *testing.T) {
	in := New(Config{Alpha: 2, Seed: 9})
	st := &State{}
	ev := in.InjectIteration(st)
	if len(ev) != 0 {
		t.Fatal("empty state cannot be struck")
	}
}

func TestTargetDistributionRoughlyProportional(t *testing.T) {
	// With vectors much smaller than the matrix, most strikes must land on
	// the matrix — the paper's λ = α/M is uniform over words.
	in := New(Config{Alpha: 1, Seed: 11})
	n := 100
	st := &State{
		A: sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.2, DiagShift: 1, Seed: 2}),
		R: make([]float64, n),
	}
	for i := 0; i < 5000; i++ {
		in.InjectIteration(st)
	}
	s := in.Stats()
	mat := s.PerTarget[TargetVal] + s.PerTarget[TargetColid] + s.PerTarget[TargetRowidx]
	vecs := s.PerTarget[TargetVecR]
	words := st.Words()
	wantVecFrac := float64(n) / float64(words)
	gotVecFrac := float64(vecs) / float64(mat+vecs)
	if math.Abs(gotVecFrac-wantVecFrac) > 0.02 {
		t.Fatalf("vector strike fraction = %v, want ≈ %v", gotVecFrac, wantVecFrac)
	}
}

func TestTargetString(t *testing.T) {
	names := map[Target]string{
		TargetVal: "Val", TargetColid: "Colid", TargetRowidx: "Rowidx",
		TargetVecR: "r", TargetVecP: "p", TargetVecQ: "q", TargetVecX: "x",
	}
	for tgt, want := range names {
		if tgt.String() != want {
			t.Errorf("String(%d) = %q, want %q", tgt, tgt.String(), want)
		}
	}
	if !TargetVal.IsMatrix() || TargetVecR.IsMatrix() {
		t.Error("IsMatrix wrong")
	}
}

func TestAlphaForMTBF(t *testing.T) {
	if got := AlphaForMTBF(100); got != 0.01 {
		t.Fatalf("AlphaForMTBF(100) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive MTBF")
		}
	}()
	AlphaForMTBF(0)
}

func TestWordRate(t *testing.T) {
	if got := WordRate(0.5, 1000); got != 0.0005 {
		t.Fatalf("WordRate = %v", got)
	}
	if WordRate(0.5, 0) != 0 {
		t.Fatal("WordRate with zero words should be 0")
	}
}

func TestNegativeAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Alpha: -1})
}
