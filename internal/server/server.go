package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// maxBodyBytes bounds a request body (inline matrices dominate).
const maxBodyBytes = 64 << 20

// Config parameterises the service. Zero values select the defaults.
type Config struct {
	// Workers sizes the kernel worker pool the solves run on: 0 = the
	// shared GOMAXPROCS pool, 1 = sequential kernels, otherwise a
	// dedicated pool of that size (harness.PoolFor semantics).
	Workers int
	// Concurrency is the number of solves executing at once (default
	// GOMAXPROCS/2, at least 1). Kernel-level parallelism inside each
	// solve comes on top, bounded by the shared pool.
	Concurrency int
	// QueueDepth bounds the requests queued but not yet solving (default
	// 64); submissions beyond it are rejected with HTTP 429.
	QueueDepth int
	// MaxCoalesce caps the total right-hand sides merged into one blocked
	// solve when queued requests share a matrix and scenario axes (default
	// 8; 1 disables coalescing). Merging never changes result bits — each
	// merged system solves exactly as it would alone.
	MaxCoalesce int
	// CacheEntries bounds the per-matrix artifact cache (default 32,
	// LRU-evicted).
	CacheEntries int
	// CacheBytes additionally bounds the cache by the estimated memory
	// footprint of the resident matrices (NNZ-derived, so one huge inline
	// matrix weighs what it costs, not one slot). 0 = 256 MiB; negative =
	// unbounded.
	CacheBytes int64
	// CacheTTL ages out entries idle for longer than this on a background
	// ticker (default 15m; negative = never expire).
	CacheTTL time.Duration
	// DefaultTimeout applies when a request names no deadline (default
	// 30s); MaxTimeout clamps requested deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ShardLabel names this process in a sharded deployment; it is echoed
	// in /v1/healthz and stamped into every result record's Shard field so
	// routed responses carry their provenance.
	ShardLabel string
	// TraceRing bounds the completed traces retained for /v1/tracez
	// (default obs.DefaultTraceRing).
	TraceRing int
	// AdminToken, when non-empty, unlocks the /debug/pprof endpoints via
	// bearer auth; with no token profiling answers 403.
	AdminToken string
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 8
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 32
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the resident solve service. Construct with New, mount
// Handler on an http.Server, and Shutdown to drain.
type Server struct {
	cfg       Config
	pool      *pool.Pool
	poolClose func()
	cache     *cache
	sched     *scheduler
	mux       *http.ServeMux
	started   time.Time
	draining  atomic.Bool

	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64

	tracer    *obs.Tracer
	metrics   *obs.Registry
	solveHist *obs.Histogram
	queueHist *obs.Histogram

	// testHookPreSolve, when non-nil, runs on the scheduler goroutine
	// after a task is claimed and before its solve — a deterministic seam
	// for the saturation and drain tests.
	testHookPreSolve func()
}

// New builds a ready-to-serve service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	pl, done := harness.PoolFor(cfg.Workers)
	s := &Server{
		cfg:       cfg,
		pool:      pl,
		poolClose: done,
		cache:     newCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheTTL),
		sched:     newScheduler(cfg.Concurrency, cfg.QueueDepth, cfg.MaxCoalesce),
		started:   time.Now(),
		tracer:    obs.NewTracer(api.TierShard, cfg.TraceRing),
	}
	s.registerMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/solve/batch", s.handleSolveBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/statusz", s.handleStatusz)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/tracez", s.handleTracez)
	mux.Handle("/metrics", s.metrics.Handler())
	api.MountPprof(mux, cfg.AdminToken)
	s.mux = mux
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDraining flips the service into drain mode without blocking: new
// solve requests are refused with 503 and /v1/healthz reports "draining",
// while admitted work continues. Callers embedding the handler in an
// http.Server call it before stopping that server, so health probes see
// the documented draining state instead of a vanished listener. Shutdown
// implies it.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Shutdown drains gracefully: new solve requests are refused with 503
// immediately, every request already admitted to the queue still runs to
// completion, and the dedicated kernel pool (if any) is released last.
// Idempotent. Callers embedding the handler in an http.Server should stop
// that server first so in-flight handlers can collect their results.
func (s *Server) Shutdown() {
	s.StartDraining()
	s.sched.shutdown()
	s.cache.close()
	s.poolClose()
}

// kernelWorkers is the worker count the parallel kernels will plan for.
func (s *Server) kernelWorkers() int {
	if s.pool == nil {
		return 1
	}
	return s.pool.Workers()
}

func (s *Server) timeoutFor(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// solveOutcome is what the hot path hands back to the handler: the raw
// stats, the residual-history fingerprint bits and the measured solve
// time. Formatting into the response record happens off the hot path.
type solveOutcome struct {
	stats      core.Stats
	hash       uint64
	err        error
	solveNanos int64
}

// solve is the request hot path: it draws a warm per-matrix context from
// the entry's pool, resolves every per-matrix artifact from the cache
// (right-hand side, preconditioner, model-optimal intervals) and runs the
// single trial on the shared kernel pool. For a warm entry and a
// fault-free request this performs zero heap allocations (gated by
// alloc_test.go); fault-injecting requests additionally construct their
// injector. Deterministic: identical (entry, scenario, seeds) always
// produce bit-identical residual histories.
func (s *Server) solve(ent *entry, sc harness.Scenario, rhsSeed int64, tr *obs.Active) solveOutcome {
	return s.solveHooked(ent, sc, rhsSeed, tr, nil, nil)
}

// solveHooked is solve with optional observers: tr receives the live
// iteration tally through the context's pre-bound recorder (nil = not
// traced; either way the warm path stays allocation-free), onIter sees
// every useful iteration (after the fingerprint recorder) and onDet every
// fault-detection episode. Nil hooks reproduce solve exactly — same
// arithmetic, same zero-allocation warm path — because the observers ride
// on hooks the solvers already expose. OnDetection is only forwarded on
// the streaming path (non-nil onDet): the solver's per-episode emitter
// costs an allocation when armed, which streaming already pays and the
// warm buffered path must not.
func (s *Server) solveHooked(ent *entry, sc harness.Scenario, rhsSeed int64, tr *obs.Active, onIter func(it int, rho float64), onDet func(core.DetectionEvent)) solveOutcome {
	var out solveOutcome
	c := ent.ctxs.Get().(*solveCtx)
	defer ent.ctxs.Put(c)
	c.trace = tr
	defer c.clearTrace()

	b := ent.rhsFor(rhsSeed)
	var m *sparse.CSR
	if sc.Solver == "pcg" {
		var err error
		if m, err = ent.precondFor(sc.Precond); err != nil {
			out.err = err
			return out
		}
	}
	if scheme, unprotected, _ := harness.ParseScheme(sc.Scheme); !unprotected && (sc.D == 0 || sc.S == 0) {
		// Inject the cached model-optimal intervals — the same values the
		// drivers would derive per solve from the same inputs.
		d, sOpt := ent.intervalsFor(scheme, sc.Alpha)
		if sc.D == 0 {
			sc.D = d
		}
		if sc.S == 0 {
			sc.S = sOpt
		}
	}

	c.hist = c.hist[:0]
	record := c.record
	if onIter != nil {
		record = func(it int, rho float64) {
			c.record(it, rho)
			onIter(it, rho)
		}
	}
	det := onDet
	if onDet != nil && tr != nil {
		det = func(ev core.DetectionEvent) {
			tr.RecordDetection(ev.Iteration, ev.Detections, ev.Corrections, ev.RolledBack)
			onDet(ev)
		}
	}
	start := time.Now()
	_, st, err := harness.SolveWith(ent.a, b, sc, sc.Seed, harness.SolveOpts{
		Pool: s.pool, Ws: c.ws, M: m, OnIteration: record, OnDetection: det,
	})
	out.solveNanos = time.Since(start).Nanoseconds()
	out.stats = st
	out.hash = harness.HashBits(c.hist)
	out.err = err
	return out
}

// coalesceKey names the axes a queued request must share to be merged into
// one blocked solve: the matrix identity plus every scenario axis except
// the per-RHS seeds and the deadline. Requests with equal keys are
// interchangeable lanes of one block.
func coalesceKey(idKey string, r *SolveRequest) string {
	return fmt.Sprintf("%s|%s|%s|%s|%g|%g|%d|%d|%d",
		idKey, r.Solver, r.Precond, r.Scheme, r.Alpha, r.Tol, r.MaxIters, r.S, r.D)
}

// runGroup executes one scheduled group — the leader task plus any queued
// same-key tasks the worker merged in — and fills every member's outs and
// coalesced width. sc is the leader's scenario; key equality guarantees
// every member shares its axes, so only the per-RHS seeds vary.
func (s *Server) runGroup(ent *entry, sc harness.Scenario, group []*task) {
	total := 0
	for _, t := range group {
		total += len(t.specs)
	}
	if total == 1 {
		t := group[0]
		t.coalesced = 1
		sc.Seed = t.specs[0].seed
		t.outs[0] = s.solve(ent, sc, t.specs[0].rhsSeed, t.trace)
		return
	}
	s.solveBlock(ent, sc, group, total)
}

// solveBlock is the batched hot path: it draws a warm block context from
// the entry's pool, resolves the per-matrix artifacts exactly as solve()
// does and runs all k systems through one blocked solve (one matrix
// traversal per iteration serves every active lane). Each lane's residual
// history, statistics and outcome are bit-identical to a single solve of
// that system — the blocked drivers guarantee it by construction, gated in
// CI on every suite matrix.
func (s *Server) solveBlock(ent *entry, sc harness.Scenario, group []*task, k int) {
	s.cache.noteBatchWidth(ent, k)
	c := ent.bctxs.Get().(*batchCtx)
	defer ent.bctxs.Put(c)
	c.grow(k)
	i := 0
	for _, t := range group {
		t.coalesced = k
		for _, spec := range t.specs {
			c.bs[i] = ent.rhsFor(spec.rhsSeed)
			c.seeds[i] = spec.seed
			c.hists[i] = c.hists[i][:0]
			i++
		}
	}

	var m *sparse.CSR
	var setupErr error
	if sc.Solver == "pcg" {
		m, setupErr = ent.precondFor(sc.Precond)
	}
	if scheme, unprotected, _ := harness.ParseScheme(sc.Scheme); setupErr == nil && !unprotected && (sc.D == 0 || sc.S == 0) {
		d, sOpt := ent.intervalsFor(scheme, sc.Alpha)
		if sc.D == 0 {
			sc.D = d
		}
		if sc.S == 0 {
			sc.S = sOpt
		}
	}

	var nanos int64
	if setupErr == nil {
		start := time.Now()
		setupErr = harness.SolveBlockWith(ent.a, c.bs[:k], sc, c.seeds[:k], harness.BlockOpts{
			Pool: s.pool, Ws: c.ws, M: m, OnIteration: c.record,
		}, c.sts[:k], c.errs[:k])
		nanos = time.Since(start).Nanoseconds()
	}

	i = 0
	for _, t := range group {
		for j := range t.specs {
			out := &t.outs[j]
			out.solveNanos = nanos
			if setupErr != nil {
				out.err = setupErr
			} else {
				out.stats = c.sts[i]
				out.hash = harness.HashBits(c.hists[i])
				out.err = c.errs[i]
			}
			i++
		}
	}
}

// record shapes a solve outcome as the standard campaign record.
func (s *Server) record(ent *entry, sc harness.Scenario, out solveOutcome) harness.Result {
	st := out.stats
	r := harness.Result{
		Schema:   harness.SchemaVersion,
		Scenario: sc,
		Workers:  s.cfg.Workers,
		Matrix: harness.MatrixInfo{
			Label:   ent.label,
			N:       ent.a.Rows,
			NNZ:     ent.a.NNZ(),
			Density: ent.a.Density(),
		},
		Reps:             1,
		D:                st.D,
		S:                st.S,
		MeanUsefulIters:  float64(st.UsefulIterations),
		MeanTotalIters:   float64(st.TotalIterations),
		Detections:       st.Detections,
		Corrections:      st.Corrections,
		Rollbacks:        st.Rollbacks,
		Checkpoints:      st.Checkpoints,
		FaultsInjected:   st.FaultsInjected,
		MeanSimTime:      st.SimTime,
		SimTimes:         []float64{st.SimTime},
		MaxFinalResidual: st.FinalResidual,
		FlopsPerIter:     core.CGFlopsPerIter(ent.a),
		ResidualHash:     harness.FormatHash(out.hash),
		WallSeconds:      float64(out.solveNanos) / 1e9,
		Shard:            s.cfg.ShardLabel,
	}
	if sc.Solver == "bicgstab" {
		r.FlopsPerIter *= 2
	}
	if st.Converged {
		r.Converged = 1
	}
	if out.err != nil {
		r.Failures = 1
	}
	return r
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		respondErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	// Reuse a valid inbound trace ID (a fronting router minted one) or
	// mint a fresh one; either way the response echoes it before anything
	// can fail, so even error envelopes are correlatable.
	tr := s.tracer.Start(r.Header.Get(api.TraceHeader))
	defer s.tracer.Finish(tr)
	w.Header().Set(api.TraceHeader, tr.ID())
	if s.draining.Load() {
		tr.SetError(api.CodeDraining)
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, errShuttingDown, retryAfterDrainingMillis)
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.WithDefaults()
	if err := req.Validate(); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := ResolveIdentity(&req)
	if err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	ent, hit := s.cache.get(id.Key, id.Label, id.Spec)
	// Materialise on the handler goroutine: the cold construction cost
	// never occupies a solver slot, and concurrent first requests for the
	// same matrix block here on a single build.
	fillStart := tr.Now()
	if err := ent.materialise(s.kernelWorkers(), id.Build); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	if !hit {
		tr.AddSpan(obs.SpanCacheFill, s.cfg.ShardLabel, ent.label, fillStart, tr.Now()-fillStart)
	}
	s.cache.noteMaterialised(ent)
	sc := req.Scenario(ent.spec, ent.label)

	if wantsStream(r) {
		// Streaming needs a flushing ResponseWriter; without one (an
		// unusual middleware stack) the request falls through to the
		// buffered path — the client's Accept is a preference, not a
		// contract.
		if _, ok := w.(http.Flusher); ok {
			s.handleSolveStream(w, r, ent, hit, sc, &req, tr)
			return
		}
	}

	t := newTask(coalesceKey(id.Key, &req), []rhsSpec{{seed: req.Seed, rhsSeed: req.ResolvedRHSSeed()}})
	t.trace = tr
	t.exec = func(group []*task) {
		if hook := s.testHookPreSolve; hook != nil {
			hook()
		}
		s.runGroup(ent, sc, group)
	}
	submitAt := tr.Now()
	if !s.await(w, r, t, req.TimeoutMillis, tr) {
		return
	}

	out := t.outs[0]
	s.traceSolved(tr, t, &out, submitAt, sc.Solver)
	resp := SolveResponse{
		Schema:      SchemaVersion,
		Result:      s.record(ent, sc, out),
		CacheHit:    hit,
		QueueMillis: float64(t.queueNanos) / 1e6,
		SolveMillis: float64(out.solveNanos) / 1e6,
		Coalesced:   t.coalesced,
	}
	resp.Result.TraceID = tr.ID()
	if out.err != nil {
		s.failed.Add(1)
		tr.SetError(out.err.Error())
		resp.SolveError = out.err.Error()
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// await submits the task and blocks until it is solved or its deadline
// claims it while still queued. It answers 429/503/504 itself and reports
// whether the caller owns a completed task to respond with. A task a
// worker already claimed runs to completion and is delivered — the
// deadline bounds queue wait, not a started solve.
func (s *Server) await(w http.ResponseWriter, r *http.Request, t *task, timeoutMillis int, tr *obs.Active) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(timeoutMillis))
	defer cancel()
	if err := s.sched.submit(t); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejected.Add(1)
			tr.SetError(api.CodeSaturated)
			api.WriteError(w, http.StatusTooManyRequests, api.CodeSaturated, err, retryAfterSaturatedMillis)
		} else {
			tr.SetError(api.CodeDraining)
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, err, retryAfterDrainingMillis)
		}
		return false
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		if t.claim() {
			// Still queued: abandon it before a worker (or a coalescing
			// scan) picks it up.
			s.expired.Add(1)
			tr.SetError(api.CodeExpired)
			api.WriteError(w, http.StatusGatewayTimeout, api.CodeExpired,
				fmt.Errorf("deadline exceeded while queued: %w", ctx.Err()), 0)
			return false
		}
		<-t.done
	}
	return true
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		respondErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	tr := s.tracer.Start(r.Header.Get(api.TraceHeader))
	defer s.tracer.Finish(tr)
	w.Header().Set(api.TraceHeader, tr.ID())
	if s.draining.Load() {
		tr.SetError(api.CodeDraining)
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, errShuttingDown, retryAfterDrainingMillis)
		return
	}
	var req BatchSolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.WithDefaults()
	if err := req.Validate(); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := ResolveIdentity(&req.SolveRequest)
	if err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	ent, hit := s.cache.get(id.Key, id.Label, id.Spec)
	fillStart := tr.Now()
	if err := ent.materialise(s.kernelWorkers(), id.Build); err != nil {
		tr.SetError(api.CodeBadRequest)
		respondErr(w, http.StatusBadRequest, err)
		return
	}
	if !hit {
		tr.AddSpan(obs.SpanCacheFill, s.cfg.ShardLabel, ent.label, fillStart, tr.Now()-fillStart)
	}
	s.cache.noteMaterialised(ent)
	s.cache.noteBatchWidth(ent, len(req.RHS))
	sc := req.Scenario(ent.spec, ent.label)

	specs := make([]rhsSpec, len(req.RHS))
	for i := range req.RHS {
		specs[i] = rhsSpec{seed: req.RHS[i].Seed, rhsSeed: req.RHS[i].ResolvedRHSSeed()}
	}
	t := newTask(coalesceKey(id.Key, &req.SolveRequest), specs)
	t.exec = func(group []*task) {
		if hook := s.testHookPreSolve; hook != nil {
			hook()
		}
		s.runGroup(ent, sc, group)
	}
	// The deadline covers the whole batch: expiry while queued answers 504
	// for every right-hand side of this request (merged-in singles keep
	// their own deadlines and answers).
	submitAt := tr.Now()
	if !s.await(w, r, t, req.TimeoutMillis, tr) {
		return
	}
	s.traceSolved(tr, t, &t.outs[0], submitAt, sc.Solver)

	resp := BatchSolveResponse{
		Schema:      SchemaVersion,
		CacheHit:    hit,
		QueueMillis: float64(t.queueNanos) / 1e6,
		Coalesced:   t.coalesced,
		Results:     make([]BatchResult, len(specs)),
	}
	for i := range specs {
		// Stamp each record with its own seeds so batch results replay as
		// the equivalent single requests.
		ri := req.SolveRequest
		ri.Seed = req.RHS[i].Seed
		ri.RHSSeed = req.RHS[i].RHSSeed
		out := t.outs[i]
		br := BatchResult{
			Result:      s.record(ent, ri.Scenario(ent.spec, ent.label), out),
			SolveMillis: float64(out.solveNanos) / 1e6,
		}
		br.Result.TraceID = tr.ID()
		if out.err != nil {
			s.failed.Add(1)
			br.SolveError = out.err.Error()
		}
		resp.Results[i] = br
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// stats snapshots the service for /v1/stats and /v1/statusz.
func (s *Server) stats() StatsResponse {
	return StatsResponse{
		Schema:        SchemaVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.kernelWorkers(),
		Concurrency:   s.cfg.Concurrency,
		QueueDepth:    s.sched.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Expired:       s.expired.Load(),
		Draining:      s.draining.Load(),
		Cache:         s.cache.stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, s.stats())
}

// handleStatusz serves the cross-tier introspection alias: the same
// snapshot as /v1/stats, wrapped in the tier-tagged envelope the router
// also serves under this path.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	st := s.stats()
	writeJSON(w, http.StatusOK, api.StatuszResponse{
		Schema: SchemaVersion,
		Tier:   api.TierShard,
		Build:  s.buildInfo(),
		Shard:  &st,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Schema:        SchemaVersion,
		Status:        status,
		Shard:         s.cfg.ShardLabel,
		Draining:      s.draining.Load(),
		QueueDepth:    s.sched.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// Retry hints stamped into the error envelope: saturation clears as soon
// as a queue slot frees, draining resolves when a replacement comes up.
const (
	retryAfterSaturatedMillis = 250
	retryAfterDrainingMillis  = 1000
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	api.WriteJSON(w, code, v)
}

// respondErr answers with the unified envelope under the default
// status→code mapping; paths with a sharper classification or a retry
// hint call api.WriteError directly.
func respondErr(w http.ResponseWriter, code int, err error) {
	api.WriteError(w, code, "", err, 0)
}
