package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Streaming solves: POST /v1/solve with "Accept: text/event-stream"
// answers the same request as schema-versioned SSE frames — live
// iteration and detection events while the solver runs, then exactly one
// terminal frame (the full SolveResponse, or the error envelope). The
// terminal result is built by the same code as a buffered response, so
// its deterministic fields — residual hash included — are bit-identical
// to the buffered answer for the same request; CI gates that equality.

// wantsStream reports whether the request asked for an event stream.
func wantsStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamEventBuffer bounds the in-flight event queue between the solver
// goroutine and the HTTP writer. The solver never blocks on a slow
// client: when the buffer is full, progress events are dropped (the
// terminal frame never is — it travels through the task, not the
// channel).
const streamEventBuffer = 256

// handleSolveStream runs one admitted solve as an event stream. Admission
// errors (queue full, draining) are answered as ordinary JSON envelopes —
// the stream only starts once the task is queued, so a client always gets
// either a plain rejection or a stream with a terminal frame. The
// caller has already verified the ResponseWriter can flush.
func (s *Server) handleSolveStream(w http.ResponseWriter, r *http.Request, ent *entry, hit bool, sc harness.Scenario, req *SolveRequest, tr *obs.Active) {
	events := make(chan api.SolveEvent, streamEventBuffer)
	emit := func(ev api.SolveEvent) {
		select {
		case events <- ev:
		default: // slow client: shed progress, never block the solver
		}
	}
	onIter := func(it int, rho float64) {
		emit(api.SolveEvent{Kind: api.EventIteration, Iteration: it, Rho: rho})
	}
	onDet := func(ev core.DetectionEvent) {
		emit(api.SolveEvent{
			Kind:        api.EventDetection,
			Iteration:   ev.Iteration,
			Detections:  ev.Detections,
			Corrections: ev.Corrections,
			RolledBack:  ev.RolledBack,
		})
	}

	// An empty key never coalesces: a streamed solve owns its hooks and
	// cannot be merged into a blocked solve (the result bits would still
	// match, but the per-iteration events would interleave lanes).
	t := newTask("", []rhsSpec{{seed: req.Seed, rhsSeed: req.ResolvedRHSSeed()}})
	t.exec = func(group []*task) {
		if hook := s.testHookPreSolve; hook != nil {
			hook()
		}
		for _, m := range group {
			m.coalesced = 1
			scc := sc
			scc.Seed = m.specs[0].seed
			// The streamed solve runs on the scheduler goroutine while the
			// handler pumps events; handing it the trace is safe because
			// the handler only reads the trace after t.done.
			m.outs[0] = s.solveHooked(ent, scc, m.specs[0].rhsSeed, tr, onIter, onDet)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMillis))
	defer cancel()
	submitAt := tr.Now()
	if err := s.sched.submit(t); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejected.Add(1)
			tr.SetError(api.CodeSaturated)
			api.WriteError(w, http.StatusTooManyRequests, api.CodeSaturated, err, retryAfterSaturatedMillis)
		} else {
			tr.SetError(api.CodeDraining)
			api.WriteError(w, http.StatusServiceUnavailable, api.CodeDraining, err, retryAfterDrainingMillis)
		}
		return
	}

	sw, err := api.NewSSEWriter(w)
	if err != nil {
		// Flusher was pre-checked; losing it here is programmer error, but
		// the task is already queued — let it run and answer buffered.
		<-t.done
		s.traceSolved(tr, t, &t.outs[0], submitAt, sc.Solver)
		s.finishStreamBuffered(w, ent, hit, sc, t, tr)
		return
	}

	alive := true
	send := func(ev *api.SolveEvent) {
		if !alive {
			return
		}
		if err := sw.Send(ev); err != nil {
			// The client went away mid-stream. The solve still completes
			// (it may be feeding the cache and the counters); just stop
			// writing.
			alive = false
		}
	}

	ctxDone := ctx.Done()
	for {
		select {
		case ev := <-events:
			send(&ev)
		case <-ctxDone:
			if t.claim() {
				// Still queued at the deadline: the solve never ran. The
				// headers may already be out, so the rejection is a typed
				// terminal error frame instead of a 504.
				s.expired.Add(1)
				tr.SetError(api.CodeExpired)
				send(&api.SolveEvent{Kind: api.EventError, Error: &api.Error{
					Schema:  SchemaVersion,
					Code:    api.CodeExpired,
					Message: fmt.Sprintf("deadline exceeded while queued: %v", ctx.Err()),
				}})
				return
			}
			// A worker owns it: the deadline bounds queue wait, not a
			// started solve. Keep streaming until it completes.
			ctxDone = nil
		case <-t.done:
			// Flush progress events the solver emitted before finishing.
			for {
				select {
				case ev := <-events:
					send(&ev)
					continue
				default:
				}
				break
			}
			out := t.outs[0]
			s.traceSolved(tr, t, &out, submitAt, sc.Solver)
			resp := SolveResponse{
				Schema:      SchemaVersion,
				Result:      s.record(ent, sc, out),
				CacheHit:    hit,
				QueueMillis: float64(t.queueNanos) / 1e6,
				SolveMillis: float64(out.solveNanos) / 1e6,
				Coalesced:   t.coalesced,
			}
			resp.Result.TraceID = tr.ID()
			if out.err != nil {
				s.failed.Add(1)
				tr.SetError(out.err.Error())
				resp.SolveError = out.err.Error()
			}
			s.completed.Add(1)
			send(&api.SolveEvent{Kind: api.EventResult, Result: &resp})
			return
		}
	}
}

// finishStreamBuffered answers a completed streamed task as a plain JSON
// body — the fallback when the writer lost its Flusher between the
// pre-check and the stream start.
func (s *Server) finishStreamBuffered(w http.ResponseWriter, ent *entry, hit bool, sc harness.Scenario, t *task, tr *obs.Active) {
	out := t.outs[0]
	resp := SolveResponse{
		Schema:      SchemaVersion,
		Result:      s.record(ent, sc, out),
		CacheHit:    hit,
		QueueMillis: float64(t.queueNanos) / 1e6,
		SolveMillis: float64(out.solveNanos) / 1e6,
		Coalesced:   t.coalesced,
	}
	resp.Result.TraceID = tr.ID()
	if out.err != nil {
		s.failed.Add(1)
		resp.SolveError = out.err.Error()
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
