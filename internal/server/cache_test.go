package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sparse"
)

func specFor(t *testing.T, gen string, n int) harness.MatrixSpec {
	t.Helper()
	spec, err := harness.NewMatrixSpec(gen, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, 0, 0)
	var spec harness.MatrixSpec

	if _, hit := c.get("k1", "k1", spec); hit {
		t.Fatal("k1: hit on empty cache")
	}
	c.get("k2", "k2", spec)
	if _, hit := c.get("k1", "k1", spec); !hit {
		t.Fatal("k1: expected hit")
	}
	// k1 was just refreshed, so inserting k3 must evict k2 (the LRU)...
	c.get("k3", "k3", spec)
	if _, hit := c.get("k2", "k2", spec); hit {
		t.Error("k2 survived eviction")
	}
	// ...and that miss re-inserted k2, evicting k1 in turn.
	st := c.stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (capacity)", st.Entries)
	}
}

func TestEntryMaterialiseOnce(t *testing.T) {
	c := newCache(4, 0, 0)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})

	var builds int
	var mu sync.Mutex
	build := func() (*sparse.CSR, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return sparse.Poisson2D(8, 8), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ent.materialise(2, build); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	if ent.a == nil || ent.a.Rows != 64 {
		t.Errorf("entry matrix not materialised: %+v", ent.a)
	}
}

func TestEntryMaterialiseErrorSticky(t *testing.T) {
	c := newCache(4, 0, 0)
	ent, _ := c.get("bad", "bad", harness.MatrixSpec{})
	boom := errors.New("boom")
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed build must not rerun; the error is the entry's state.
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(4, 4), nil }); !errors.Is(err, boom) {
		t.Fatalf("second materialise: err = %v, want sticky boom", err)
	}
}

func TestEntryRHSCaching(t *testing.T) {
	c := newCache(4, 0, 0)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(6, 6), nil }); err != nil {
		t.Fatal(err)
	}

	b1 := ent.rhsFor(3)
	b2 := ent.rhsFor(3)
	if &b1[0] != &b2[0] {
		t.Error("same seed returned a rebuilt RHS")
	}
	b4 := ent.rhsFor(4)
	if &b1[0] == &b4[0] {
		t.Error("different seeds share an RHS")
	}

	// Overflow the per-entry bound: the cache resets but stays correct —
	// the rebuilt RHS is bitwise identical (deterministic in the seed).
	for seed := int64(10); seed < int64(10+maxRHSPerEntry); seed++ {
		ent.rhsFor(seed)
	}
	b1again := ent.rhsFor(3)
	if &b1[0] == &b1again[0] {
		t.Error("RHS cache did not reset after overflow")
	}
	for i := range b1 {
		if b1[i] != b1again[i] {
			t.Fatalf("rebuilt RHS differs at %d: %g != %g", i, b1again[i], b1[i])
		}
	}
}

func TestEntryPrecondAndIntervalCaching(t *testing.T) {
	c := newCache(4, 0, 0)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(8, 8), nil }); err != nil {
		t.Fatal(err)
	}

	m1, err := ent.precondFor("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := ent.precondFor("jacobi")
	if m1 != m2 {
		t.Error("jacobi preconditioner rebuilt instead of cached")
	}
	if mn, err := ent.precondFor("neumann"); err != nil || mn == m1 {
		t.Errorf("neumann preconditioner: m=%p err=%v", mn, err)
	}

	wantD, wantS := core.OptimalIntervals(ent.a, core.ABFTCorrection, 0.01, core.DefaultCostParams())
	for i := 0; i < 2; i++ {
		if d, s := ent.intervalsFor(core.ABFTCorrection, 0.01); d != wantD || s != wantS {
			t.Errorf("intervalsFor = (%d, %d), want (%d, %d)", d, s, wantD, wantS)
		}
	}
}

// TestInlineFingerprintKeying pins the content-addressed identity of
// inline matrices: equal content maps to the same cache key, any value
// perturbation to a different one.
func TestInlineFingerprintKeying(t *testing.T) {
	inline := func() *InlineCSR {
		return &InlineCSR{
			Rows: 2, Cols: 2,
			Rowidx: []int{0, 2, 3},
			Colid:  []int{0, 1, 1},
			Val:    []float64{4, -1, 4},
		}
	}
	key := func(ic *InlineCSR) string {
		t.Helper()
		id, err := ResolveIdentity(&SolveRequest{Inline: ic})
		if err != nil {
			t.Fatal(err)
		}
		return id.Key
	}
	if key(inline()) != key(inline()) {
		t.Error("identical inline matrices keyed differently")
	}
	perturbed := inline()
	perturbed.Val[2] = 4.0000000001
	if key(inline()) == key(perturbed) {
		t.Error("perturbed inline matrix shares the cache key")
	}
}

// TestSpecKeyingDistinguishesParameters pins the named-spec identity: the
// same generator with different parameters must not share artifacts.
func TestSpecKeyingDistinguishesParameters(t *testing.T) {
	keyOf := func(spec harness.MatrixSpec) string {
		t.Helper()
		id, err := ResolveIdentity(&SolveRequest{Matrix: &spec})
		if err != nil {
			t.Fatal(err)
		}
		return id.Key
	}
	a := specFor(t, "poisson2d", 100)
	b := specFor(t, "poisson2d", 144)
	c := specFor(t, "tridiag", 100)
	if keyOf(a) == keyOf(b) || keyOf(a) == keyOf(c) {
		t.Errorf("spec keys collide: %q %q %q", keyOf(a), keyOf(b), keyOf(c))
	}
	if keyOf(a) != keyOf(specFor(t, "poisson2d", 100)) {
		t.Error("identical specs keyed differently")
	}
}

// materialised inserts a matrix of the given grid side under key and
// charges its footprint, mirroring the handler's get → materialise →
// noteMaterialised sequence.
func materialised(t *testing.T, c *cache, key string, side int) *entry {
	t.Helper()
	ent, _ := c.get(key, key, harness.MatrixSpec{})
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(side, side), nil }); err != nil {
		t.Fatal(err)
	}
	c.noteMaterialised(ent)
	return ent
}

// TestCacheWeightEviction pins the footprint-weighted admission policy:
// the byte budget evicts by resident size, not entry count, and the
// eviction order is LRU.
func TestCacheWeightEviction(t *testing.T) {
	small := materialisedWeight(16)
	budget := 2*materialisedWeight(16) + materialisedWeight(16)/2
	c := newCache(64, budget, 0)

	materialised(t, c, "a", 16)
	materialised(t, c, "b", 16)
	st := c.stats()
	if st.Evictions != 0 || st.Bytes != 2*small {
		t.Fatalf("two small entries: stats %+v, want 0 evictions, %d bytes", st, 2*small)
	}

	// Refresh a, then admit c: the budget fits only two small matrices,
	// so the LRU entry b must go — weight decides, order is LRU.
	c.get("a", "a", harness.MatrixSpec{})
	materialised(t, c, "c", 16)
	if _, hit := c.get("b", "b", harness.MatrixSpec{}); hit {
		t.Error("b survived a byte-budget eviction that should have taken the LRU entry")
	}

	// One huge matrix blows the whole budget: everything else is evicted,
	// but the newest entry itself stays resident and keeps serving.
	materialised(t, c, "huge", 64)
	st = c.stats()
	if st.Entries != 1 {
		t.Fatalf("after over-budget admission: %d entries, want 1 (stats %+v)", st.Entries, st)
	}
	if ent, hit := c.get("huge", "huge", harness.MatrixSpec{}); !hit || ent.a == nil {
		t.Error("the over-budget entry itself was evicted")
	}
}

// materialisedWeight is the charged footprint of a side×side Poisson grid.
func materialisedWeight(side int) int64 {
	return entryFootprint(sparse.Poisson2D(side, side))
}

// TestCacheWeightAccounting verifies charges and refunds: bytes grows on
// materialisation, shrinks on eviction, and an entry evicted while still
// building is never charged.
func TestCacheWeightAccounting(t *testing.T) {
	c := newCache(2, 0, 0)
	materialised(t, c, "a", 8)
	materialised(t, c, "b", 8)
	if got, want := c.stats().Bytes, 2*materialisedWeight(8); got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
	materialised(t, c, "c", 8) // evicts a
	if got, want := c.stats().Bytes, 2*materialisedWeight(8); got != want {
		t.Errorf("bytes after eviction = %d, want %d", got, want)
	}

	// An entry that lost its slot before materialising finishes must not
	// charge the budget it is no longer part of.
	ent, _ := c.get("late", "late", harness.MatrixSpec{})
	c.get("d", "d", harness.MatrixSpec{})
	materialised(t, c, "e", 8) // "late" is now evicted
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(8, 8), nil }); err != nil {
		t.Fatal(err)
	}
	c.noteMaterialised(ent)
	if got, want := c.stats().Bytes, materialisedWeight(8); got != want {
		t.Errorf("evicted-while-building entry charged the budget: bytes = %d, want %d", got, want)
	}
}

// TestCacheTTLExpiry pins idle aging: entries idle past the TTL are swept
// (oldest first), fresh entries and recently-hit entries survive.
func TestCacheTTLExpiry(t *testing.T) {
	c := newCache(8, 0, time.Minute)
	defer c.close()
	materialised(t, c, "idle", 8)
	materialised(t, c, "fresh", 8)

	// Refresh "fresh" at t+45s, then sweep at t+70s: "idle" is 70s idle
	// (expired), "fresh" only 25s (kept).
	base := time.Now()
	c.mu.Lock()
	c.entries["idle"].Value.(*entry).lastUsed = base.Add(-70 * time.Second)
	c.entries["fresh"].Value.(*entry).lastUsed = base.Add(-25 * time.Second)
	c.mu.Unlock()
	c.sweepOnce(base)

	if _, hit := c.get("idle", "idle", harness.MatrixSpec{}); hit {
		t.Error("idle entry survived the TTL sweep")
	}
	if _, hit := c.get("fresh", "fresh", harness.MatrixSpec{}); !hit {
		t.Error("fresh entry was swept")
	}
	st := c.stats()
	if st.TTLEvictions != 1 {
		t.Errorf("ttl_evictions = %d, want 1", st.TTLEvictions)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (TTL evictions are a subset)", st.Evictions)
	}

	// A get refreshes lastUsed: sweeping right after must keep the entry.
	c.get("fresh", "fresh", harness.MatrixSpec{})
	c.sweepOnce(time.Now())
	if _, hit := c.get("fresh", "fresh", harness.MatrixSpec{}); !hit {
		t.Error("just-touched entry was swept")
	}
}
