package server

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sparse"
)

func specFor(t *testing.T, gen string, n int) harness.MatrixSpec {
	t.Helper()
	spec, err := harness.NewMatrixSpec(gen, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	var spec harness.MatrixSpec

	if _, hit := c.get("k1", "k1", spec); hit {
		t.Fatal("k1: hit on empty cache")
	}
	c.get("k2", "k2", spec)
	if _, hit := c.get("k1", "k1", spec); !hit {
		t.Fatal("k1: expected hit")
	}
	// k1 was just refreshed, so inserting k3 must evict k2 (the LRU)...
	c.get("k3", "k3", spec)
	if _, hit := c.get("k2", "k2", spec); hit {
		t.Error("k2 survived eviction")
	}
	// ...and that miss re-inserted k2, evicting k1 in turn.
	st := c.stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (capacity)", st.Entries)
	}
}

func TestEntryMaterialiseOnce(t *testing.T) {
	c := newCache(4)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})

	var builds int
	var mu sync.Mutex
	build := func() (*sparse.CSR, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return sparse.Poisson2D(8, 8), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ent.materialise(2, build); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	if ent.a == nil || ent.a.Rows != 64 {
		t.Errorf("entry matrix not materialised: %+v", ent.a)
	}
}

func TestEntryMaterialiseErrorSticky(t *testing.T) {
	c := newCache(4)
	ent, _ := c.get("bad", "bad", harness.MatrixSpec{})
	boom := errors.New("boom")
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed build must not rerun; the error is the entry's state.
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(4, 4), nil }); !errors.Is(err, boom) {
		t.Fatalf("second materialise: err = %v, want sticky boom", err)
	}
}

func TestEntryRHSCaching(t *testing.T) {
	c := newCache(4)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(6, 6), nil }); err != nil {
		t.Fatal(err)
	}

	b1 := ent.rhsFor(3)
	b2 := ent.rhsFor(3)
	if &b1[0] != &b2[0] {
		t.Error("same seed returned a rebuilt RHS")
	}
	b4 := ent.rhsFor(4)
	if &b1[0] == &b4[0] {
		t.Error("different seeds share an RHS")
	}

	// Overflow the per-entry bound: the cache resets but stays correct —
	// the rebuilt RHS is bitwise identical (deterministic in the seed).
	for seed := int64(10); seed < int64(10+maxRHSPerEntry); seed++ {
		ent.rhsFor(seed)
	}
	b1again := ent.rhsFor(3)
	if &b1[0] == &b1again[0] {
		t.Error("RHS cache did not reset after overflow")
	}
	for i := range b1 {
		if b1[i] != b1again[i] {
			t.Fatalf("rebuilt RHS differs at %d: %g != %g", i, b1again[i], b1[i])
		}
	}
}

func TestEntryPrecondAndIntervalCaching(t *testing.T) {
	c := newCache(4)
	ent, _ := c.get("k", "k", harness.MatrixSpec{})
	if err := ent.materialise(1, func() (*sparse.CSR, error) { return sparse.Poisson2D(8, 8), nil }); err != nil {
		t.Fatal(err)
	}

	m1, err := ent.precondFor("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := ent.precondFor("jacobi")
	if m1 != m2 {
		t.Error("jacobi preconditioner rebuilt instead of cached")
	}
	if mn, err := ent.precondFor("neumann"); err != nil || mn == m1 {
		t.Errorf("neumann preconditioner: m=%p err=%v", mn, err)
	}

	wantD, wantS := core.OptimalIntervals(ent.a, core.ABFTCorrection, 0.01, core.DefaultCostParams())
	for i := 0; i < 2; i++ {
		if d, s := ent.intervalsFor(core.ABFTCorrection, 0.01); d != wantD || s != wantS {
			t.Errorf("intervalsFor = (%d, %d), want (%d, %d)", d, s, wantD, wantS)
		}
	}
}

// TestInlineFingerprintKeying pins the content-addressed identity of
// inline matrices: equal content maps to the same cache key, any value
// perturbation to a different one.
func TestInlineFingerprintKeying(t *testing.T) {
	inline := func() *InlineCSR {
		return &InlineCSR{
			Rows: 2, Cols: 2,
			Rowidx: []int{0, 2, 3},
			Colid:  []int{0, 1, 1},
			Val:    []float64{4, -1, 4},
		}
	}
	key := func(ic *InlineCSR) string {
		t.Helper()
		k, _, _, _, err := resolveMatrix(&SolveRequest{Inline: ic})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(inline()) != key(inline()) {
		t.Error("identical inline matrices keyed differently")
	}
	perturbed := inline()
	perturbed.Val[2] = 4.0000000001
	if key(inline()) == key(perturbed) {
		t.Error("perturbed inline matrix shares the cache key")
	}
}

// TestSpecKeyingDistinguishesParameters pins the named-spec identity: the
// same generator with different parameters must not share artifacts.
func TestSpecKeyingDistinguishesParameters(t *testing.T) {
	keyOf := func(spec harness.MatrixSpec) string {
		t.Helper()
		k, _, _, _, err := resolveMatrix(&SolveRequest{Matrix: &spec})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	a := specFor(t, "poisson2d", 100)
	b := specFor(t, "poisson2d", 144)
	c := specFor(t, "tridiag", 100)
	if keyOf(a) == keyOf(b) || keyOf(a) == keyOf(c) {
		t.Errorf("spec keys collide: %q %q %q", keyOf(a), keyOf(b), keyOf(c))
	}
	if keyOf(a) != keyOf(specFor(t, "poisson2d", 100)) {
		t.Error("identical specs keyed differently")
	}
}
