package server

import (
	"testing"

	"repro/internal/harness"
)

// warmEntry resolves and materialises the request's cache entry exactly
// like the handler does. Shared by the determinism and allocation gates.
func warmEntry(t *testing.T, s *Server, req *SolveRequest) (*entry, harness.Scenario) {
	t.Helper()
	req.WithDefaults()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	id, err := ResolveIdentity(req)
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := s.cache.get(id.Key, id.Label, id.Spec)
	if err := ent.materialise(s.kernelWorkers(), id.Build); err != nil {
		t.Fatal(err)
	}
	return ent, req.Scenario(ent.spec, ent.label)
}

// TestWarmSolveBitIdentical pairs the allocation gate with the
// determinism acceptance: the warm (workspace-recycling, cache-served)
// solve must fingerprint identically to a cold solve of the same request.
func TestWarmSolveBitIdentical(t *testing.T) {
	spec, err := harness.NewMatrixSpec("poisson2d", 225, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"pcg", "abft-correction"},
		{"bicgstab", "abft-correction"},
		{"cg", "unprotected"},
	} {
		req := &SolveRequest{Matrix: &spec, Solver: tc.solver, Scheme: tc.scheme, Seed: 11}

		hashes := make(map[uint64]int)
		for round := 0; round < 2; round++ {
			s := New(Config{Workers: 1, Concurrency: 1})
			ent, sc := warmEntry(t, s, req)
			for rep := 0; rep < 3; rep++ { // rep 0 cold, reps 1–2 warm
				out := s.solve(ent, sc, req.ResolvedRHSSeed(), nil)
				if out.err != nil {
					t.Fatalf("%s/%s: %v", tc.solver, tc.scheme, out.err)
				}
				hashes[out.hash]++
			}
			s.Shutdown()
		}
		if len(hashes) != 1 {
			t.Errorf("%s/%s: %d distinct hashes across cold/warm solves: %v",
				tc.solver, tc.scheme, len(hashes), hashes)
		}
	}
}
