package server

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/api"
)

// TestStreamTerminalMatchesBuffered is the shard-side determinism gate
// for streaming: the terminal frame of a streamed solve must carry the
// exact residual hash a buffered solve of the same request produces.
func TestStreamTerminalMatchesBuffered(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, Concurrency: 2, QueueDepth: 8})
	req := poisson2DRequest(64)

	var buffered SolveResponse
	if code := postSolve(t, ts.URL, req, &buffered); code != http.StatusOK {
		t.Fatalf("buffered solve: status %d", code)
	}
	if buffered.Result.ResidualHash == "" {
		t.Fatal("buffered solve has no residual hash")
	}

	var iters int
	streamed, err := api.NewClient(ts.URL).SolveStream(context.Background(), req, func(ev *api.SolveEvent) error {
		if ev.Kind == api.EventIteration {
			iters++
		}
		if ev.Schema != api.SchemaVersion {
			t.Errorf("event schema %d, want %d", ev.Schema, api.SchemaVersion)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Result.ResidualHash != buffered.Result.ResidualHash {
		t.Errorf("streamed hash %q != buffered hash %q", streamed.Result.ResidualHash, buffered.Result.ResidualHash)
	}
	if iters == 0 {
		t.Error("streamed solve emitted no iteration events")
	}
}

// TestStreamDetectionEvents runs a fault-injected protected solve as a
// stream: detection events on the wire must agree with the detections the
// terminal record reports.
func TestStreamDetectionEvents(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	req := poisson2DRequest(64)
	req.Solver, req.Scheme, req.Alpha = "cg", "abft-correction", 0.5

	var iters, detections int
	resp, err := api.NewClient(ts.URL).SolveStream(context.Background(), req, func(ev *api.SolveEvent) error {
		switch ev.Kind {
		case api.EventIteration:
			iters++
		case api.EventDetection:
			detections++
			if ev.Detections == 0 {
				t.Errorf("detection event at iteration %d reports 0 detections", ev.Iteration)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("no iteration events")
	}
	if resp.Result.Detections > 0 && detections == 0 {
		t.Errorf("result records %d detections but the stream carried no detection events", resp.Result.Detections)
	}
	if detections > 0 && resp.Result.Detections == 0 {
		t.Errorf("stream carried %d detection events but the result records none", detections)
	}
}

// TestStreamQueuedExpiry pins the streamed flavor of admission control: a
// streamed request whose deadline expires while still queued terminates
// with a typed in-stream error event (the headers are already out, so a
// 504 status is no longer possible).
func TestStreamQueuedExpiry(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 2})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	// A claims the only solver slot and blocks inside the hook.
	blocked := make(chan int, 1)
	go func() {
		var resp SolveResponse
		blocked <- postSolve(t, ts.URL, poisson2DRequest(64), &resp)
	}()
	<-entered

	// The streamed request queues behind A and expires before a slot frees.
	timed := poisson2DRequest(64)
	timed.TimeoutMillis = 50
	_, err := api.NewClient(ts.URL).SolveStream(context.Background(), timed, nil)
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("queued expiry error = %v, want a typed *api.Error from the error event", err)
	}
	if ae.Code != api.CodeExpired {
		t.Errorf("error code %q, want %q", ae.Code, api.CodeExpired)
	}
	if ae.Schema != api.SchemaVersion {
		t.Errorf("error event schema %d, want %d", ae.Schema, api.SchemaVersion)
	}

	close(release)
	if code := <-blocked; code != http.StatusOK {
		t.Errorf("blocked solve: status %d", code)
	}
	if got := s.expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
}

// TestShardStatusz checks the unified introspection endpoint on the
// shard tier: a typed StatuszResponse wrapping the stats snapshot.
func TestShardStatusz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	st, err := api.NewClient(ts.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema != api.SchemaVersion || st.Tier != api.TierShard {
		t.Errorf("statusz schema %d tier %q, want %d/%q", st.Schema, st.Tier, api.SchemaVersion, api.TierShard)
	}
	if st.Shard == nil || st.Router != nil {
		t.Fatalf("statusz sections: shard=%v router=%v, want shard only", st.Shard != nil, st.Router != nil)
	}
	if st.Shard.QueueCapacity == 0 && st.Shard.Workers == 0 {
		t.Errorf("shard section looks empty: %+v", st.Shard)
	}
}
