package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// registerMetrics maps every typed shard stat onto the Prometheus
// surface. All series except the two latency histograms are closures
// over counters the server already maintains, so /metrics and
// /v1/statusz can never disagree.
func (s *Server) registerMetrics() {
	m := obs.NewRegistry()
	m.GaugeFunc("resilient_schema_version", "Wire schema version of the typed API.",
		func() float64 { return float64(api.SchemaVersion) })
	m.GaugeFunc("resilient_shard_uptime_seconds", "Seconds since the shard started.",
		func() float64 { return time.Since(s.started).Seconds() })
	m.GaugeFunc("resilient_shard_draining", "1 while the shard refuses new work.",
		func() float64 { return b2f(s.draining.Load()) })
	m.CounterFunc("resilient_shard_completed_total", "Solve requests answered 200 (including solve errors reported in-band).",
		func() float64 { return float64(s.completed.Load()) })
	m.CounterFunc("resilient_shard_failed_total", "Right-hand sides whose solve returned an error.",
		func() float64 { return float64(s.failed.Load()) })
	m.CounterFunc("resilient_shard_rejected_total", "Requests refused 429 at a full queue.",
		func() float64 { return float64(s.rejected.Load()) })
	m.CounterFunc("resilient_shard_expired_total", "Requests abandoned 504 while still queued.",
		func() float64 { return float64(s.expired.Load()) })
	m.GaugeFunc("resilient_shard_queue_depth", "Tasks queued but not yet solving.",
		func() float64 { return float64(s.sched.depth()) })
	m.GaugeFunc("resilient_shard_queue_capacity", "Bound of the solve queue.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	m.CounterFunc("resilient_shard_cache_hits_total", "Matrix cache hits.",
		func() float64 { return float64(s.cache.stats().Hits) })
	m.CounterFunc("resilient_shard_cache_misses_total", "Matrix cache misses.",
		func() float64 { return float64(s.cache.stats().Misses) })
	m.CounterFunc("resilient_shard_cache_evictions_total", "Matrix cache evictions (capacity and TTL).",
		func() float64 { return float64(s.cache.stats().Evictions) })
	m.CounterFunc("resilient_shard_cache_ttl_evictions_total", "Matrix cache entries aged out idle.",
		func() float64 { return float64(s.cache.stats().TTLEvictions) })
	m.GaugeFunc("resilient_shard_cache_entries", "Resident matrix cache entries.",
		func() float64 { return float64(s.cache.stats().Entries) })
	m.GaugeFunc("resilient_shard_cache_bytes", "Estimated resident footprint of the cached matrices.",
		func() float64 { return float64(s.cache.stats().Bytes) })
	m.CounterFunc("resilient_shard_traces_total", "Completed request traces.",
		func() float64 { return float64(s.tracer.Total()) })
	s.queueHist = m.Histogram("resilient_shard_queue_wait_seconds", "Time solved requests spent queued.", nil)
	s.solveHist = m.Histogram("resilient_shard_solve_seconds", "Solve execution time (per task; a coalesced block counts once per member).", nil)
	s.metrics = m
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// traceSolved records the queue-wait/solve/coalesce spans and latency
// observations of a completed task and fills the trace's solver tallies
// from the authoritative per-lane statistics (summed across a batch).
func (s *Server) traceSolved(tr *obs.Active, t *task, out *solveOutcome, submitAt int64, solverName string) {
	tr.AddSpan(obs.SpanQueueWait, "", "", submitAt, t.queueNanos)
	solveStart := submitAt + t.queueNanos
	tr.AddSpan(obs.SpanSolve, s.cfg.ShardLabel, solverName, solveStart, out.solveNanos)
	if t.coalesced > len(t.specs) {
		tr.AddSpan(obs.SpanCoalesce, "", "width="+strconv.Itoa(t.coalesced), solveStart, out.solveNanos)
	}
	var tally obs.SolverTallies
	for i := range t.outs {
		st := &t.outs[i].stats
		tally.Iterations += int64(st.UsefulIterations)
		tally.TotalIterations += st.TotalIterations
		tally.Detections += st.Detections
		tally.Corrections += st.Corrections
		tally.Rollbacks += st.Rollbacks
		tally.Checkpoints += st.Checkpoints
		tally.FaultsInjected += st.FaultsInjected
	}
	tr.FillSolver(tally)
	s.queueHist.Observe(float64(t.queueNanos) / 1e9)
	s.solveHist.Observe(float64(out.solveNanos) / 1e9)
}

// buildInfo identifies this process for statusz scrapes.
func (s *Server) buildInfo() *api.BuildInfo {
	version, goVersion, procs := obs.Runtime()
	return &api.BuildInfo{
		Version:       version,
		GoVersion:     goVersion,
		GOMAXPROCS:    procs,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Label:         s.cfg.ShardLabel,
	}
}

// handleTracez serves the completed-trace ring: last-N newest first, or
// an exact by-ID lookup.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		respondErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, api.TracezSnapshot(s.tracer, api.TierShard, r))
}
