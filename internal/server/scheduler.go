package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// errQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 429).
	errQueueFull = errors.New("server: solve queue is full")
	// errShuttingDown rejects submissions once draining began (HTTP 503).
	errShuttingDown = errors.New("server: shutting down")
)

// task is one scheduled solve. Ownership is decided by a single atomic
// claim: the worker claims it to execute, or the request's deadline claims
// it to abandon — whoever wins decides, so an expired task is never solved
// and a started solve is never double-reported.
type task struct {
	run      func()
	enqueued time.Time
	claimed  atomic.Bool
	done     chan struct{}
}

func newTask(run func()) *task {
	return &task{run: run, enqueued: time.Now(), done: make(chan struct{})}
}

// claim takes ownership; exactly one caller ever succeeds.
func (t *task) claim() bool { return t.claimed.CompareAndSwap(false, true) }

// scheduler executes tasks from a bounded queue on a fixed set of solver
// goroutines. It exists so concurrency is explicit and finite: admission
// fails fast when the queue is full, and shutdown drains every admitted
// task before returning.
type scheduler struct {
	mu     sync.RWMutex // guards closed against the queue send in submit
	closed bool
	queue  chan *task
	wg     sync.WaitGroup
}

func newScheduler(workers, depth int) *scheduler {
	s := &scheduler{queue: make(chan *task, depth)}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		if !t.claim() {
			continue // abandoned by its deadline while queued
		}
		t.run()
		close(t.done)
	}
}

// submit enqueues the task without blocking: a full queue or a draining
// scheduler is reported immediately so the caller can answer 429/503.
func (s *scheduler) submit(t *task) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errShuttingDown
	}
	select {
	case s.queue <- t:
		return nil
	default:
		return errQueueFull
	}
}

// shutdown stops admission and drains: every task already in the queue
// still runs to completion (waiters on task.done all get answers) before
// shutdown returns. Idempotent.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.queue)
	}
	s.wg.Wait()
}

// depth reports the number of queued-but-unclaimed tasks.
func (s *scheduler) depth() int { return len(s.queue) }
