package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

var (
	// errQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 429).
	errQueueFull = errors.New("server: solve queue is full")
	// errShuttingDown rejects submissions once draining began (HTTP 503).
	errShuttingDown = errors.New("server: shutting down")
)

// rhsSpec is one right-hand side of a scheduled solve: its trial seed and
// the seed of its manufactured right-hand side.
type rhsSpec struct {
	seed    int64
	rhsSeed int64
}

// task is one scheduled solve request carrying one or more right-hand
// sides. Ownership is decided by a single atomic claim: a worker claims it
// to execute (alone or merged into a same-key block), or the request's
// deadline claims it to abandon — whoever wins decides, so an expired task
// is never solved and a started solve is never double-reported.
type task struct {
	// key is the coalescing identity: tasks sharing a non-empty key solve
	// the same matrix under the same scenario axes and may be merged into
	// one block by the worker that dequeues the first of them. "" never
	// coalesces.
	key   string
	specs []rhsSpec
	// exec solves the whole merged group (set by the handler that created
	// the task; only the group leader's exec runs). It must fill every
	// group member's outs.
	exec func(group []*task)
	// outs receives one outcome per spec, written by the leader's exec.
	outs []solveOutcome
	// coalesced is the total RHS width of the merged block this task was
	// solved in (1 for an un-coalesced single).
	coalesced int
	// trace, when non-nil, is the request's active trace; the single-solve
	// path threads it into the solver hooks so iteration tallies are
	// recorded live. Coalesced blocks leave the members' traces alone —
	// the handlers fill solver tallies from the per-lane stats instead.
	trace *obs.Active

	enqueued   time.Time
	queueNanos int64
	claimed    atomic.Bool
	done       chan struct{}
}

func newTask(key string, specs []rhsSpec) *task {
	return &task{
		key:      key,
		specs:    specs,
		outs:     make([]solveOutcome, len(specs)),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
}

// claim takes ownership; exactly one caller ever succeeds.
func (t *task) claim() bool { return t.claimed.CompareAndSwap(false, true) }

// scheduler executes tasks from a bounded queue on a fixed set of solver
// goroutines, merging queued same-key tasks into one blocked solve. It
// exists so concurrency is explicit and finite: admission fails fast when
// the queue is full, and shutdown drains every admitted task before
// returning.
type scheduler struct {
	mu          sync.Mutex
	cond        *sync.Cond
	closed      bool
	q           []*task
	depthCap    int
	maxCoalesce int
	wg          sync.WaitGroup
}

func newScheduler(workers, depth, maxCoalesce int) *scheduler {
	if maxCoalesce < 1 {
		maxCoalesce = 1
	}
	s := &scheduler{depthCap: depth, maxCoalesce: maxCoalesce}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// worker dequeues the oldest claimable task, merges every queued task
// sharing its coalescing key into the group (up to maxCoalesce total
// right-hand sides), runs the leader's exec over the group and answers all
// of its waiters. Tasks whose deadline already claimed them are dropped
// without closing done — their handlers have answered 504.
func (s *scheduler) worker() {
	defer s.wg.Done()
	var group []*task
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.q) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		lead := s.q[0]
		copy(s.q, s.q[1:])
		s.q[len(s.q)-1] = nil
		s.q = s.q[:len(s.q)-1]
		if !lead.claim() {
			s.mu.Unlock()
			continue // abandoned by its deadline while queued
		}
		group = append(group[:0], lead)
		if lead.key != "" {
			total := len(lead.specs)
			kept := s.q[:0]
			for _, t := range s.q {
				if total < s.maxCoalesce && t.key == lead.key {
					if t.claim() {
						group = append(group, t)
						total += len(t.specs)
					}
					// A same-key task whose claim failed expired while
					// queued: drop it here instead of letting it ride to
					// the queue head.
					continue
				}
				kept = append(kept, t)
			}
			for i := len(kept); i < len(s.q); i++ {
				s.q[i] = nil
			}
			s.q = kept
		}
		s.mu.Unlock()

		now := time.Now()
		for _, t := range group {
			t.queueNanos = now.Sub(t.enqueued).Nanoseconds()
		}
		lead.exec(group)
		for _, t := range group {
			close(t.done)
		}
	}
}

// submit enqueues the task without blocking: a full queue or a draining
// scheduler is reported immediately so the caller can answer 429/503.
func (s *scheduler) submit(t *task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShuttingDown
	}
	if len(s.q) >= s.depthCap {
		return errQueueFull
	}
	s.q = append(s.q, t)
	s.cond.Signal()
	return nil
}

// shutdown stops admission and drains: every task already in the queue
// still runs to completion (waiters on task.done all get answers) before
// shutdown returns. Idempotent.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// depth reports the number of queued-but-unclaimed tasks.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}
