package server

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// maxRHSPerEntry and maxIntervalsPerEntry bound the seed- and
// alpha-keyed artifact maps cached per matrix; past the bound the
// cheapest correct policy is to drop them all (they rebuild
// deterministically). Both keys are client-supplied, so unbounded maps
// would let a parameter sweep grow a resident entry forever.
const (
	maxRHSPerEntry       = 16
	maxIntervalsPerEntry = 32
)

// cache is the per-matrix artifact cache: an LRU of entries keyed by the
// canonical matrix identity (the spec's JSON for named matrices, the
// content fingerprint for inline ones). Admission is bounded twice — by
// entry count and by the estimated memory footprint of the resident
// matrices — and entries idle past the TTL age out on a background
// sweeper. Eviction only drops references — requests holding an evicted
// entry finish on it undisturbed.
type cache struct {
	mu           sync.Mutex
	capacity     int
	bytesCap     int64 // ≤ 0 = unbounded
	ttl          time.Duration
	bytes        int64
	entries      map[string]*list.Element
	ll           *list.List // of *entry; front = most recently used
	hits         int64
	misses       int64
	evictions    int64
	ttlEvictions int64

	closeOnce sync.Once
	stop      chan struct{}
	sweeping  sync.WaitGroup
}

func newCache(capacity int, bytesCap int64, ttl time.Duration) *cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &cache{
		capacity: capacity,
		bytesCap: bytesCap,
		ttl:      ttl,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
		stop:     make(chan struct{}),
	}
	if ttl > 0 {
		// Sweep well inside the TTL so an idle entry overstays by at most
		// ~25%, without ticking hot enough to matter. The ticker is built
		// here, not in the goroutine, so the sweeper performs all its
		// setup allocation before newCache returns (the warm solve path is
		// gated at zero allocations process-wide).
		tick := ttl / 4
		if tick < time.Second {
			tick = time.Second
		}
		c.sweeping.Add(1)
		go c.sweepLoop(time.NewTicker(tick))
	}
	return c
}

func (c *cache) sweepLoop(t *time.Ticker) {
	defer c.sweeping.Done()
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.sweepOnce(now)
		}
	}
}

// sweepOnce ages out every entry idle longer than the TTL. The LRU order
// makes this a walk from the back that stops at the first fresh entry.
func (c *cache) sweepOnce(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		back := c.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if now.Sub(e.lastUsed) <= c.ttl {
			return
		}
		c.removeLocked(back)
		c.ttlEvictions++
	}
}

// close stops the TTL sweeper. Idempotent.
func (c *cache) close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.sweeping.Wait()
}

// get returns the entry for key, creating an unmaterialised skeleton on a
// miss and evicting least-recently-used entries beyond the count or byte
// budget. The second result reports whether the entry already existed.
func (c *cache) get(key, label string, spec harness.MatrixSpec) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry)
		e.lastUsed = time.Now()
		c.hits++
		return e, true
	}
	c.misses++
	e := &entry{key: key, label: label, spec: spec, lastUsed: time.Now()}
	c.entries[key] = c.ll.PushFront(e)
	c.evictOverBudgetLocked()
	return e, false
}

// noteMaterialised charges a freshly materialised entry's footprint to the
// byte budget (a skeleton weighs nothing until its matrix exists) and
// evicts if the admission overflowed it. Idempotent per entry; an entry
// evicted while it was still building is never charged.
func (c *cache) noteMaterialised(e *entry) {
	if e.a == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[e.key]
	if !ok || el.Value.(*entry) != e || e.weight != 0 {
		return
	}
	e.weight = entryFootprint(e.a)
	c.bytes += e.weight
	c.evictOverBudgetLocked()
}

// evictOverBudgetLocked drops LRU entries while either budget is
// exceeded. The most recently used entry always stays: a single matrix
// larger than the whole byte budget still serves (and is dropped as soon
// as anything else displaces it).
func (c *cache) evictOverBudgetLocked() {
	for c.ll.Len() > 1 && (c.ll.Len() > c.capacity || (c.bytesCap > 0 && c.bytes > c.bytesCap)) {
		c.removeLocked(c.ll.Back())
	}
}

func (c *cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.weight
	c.evictions++
}

// entryFootprint estimates the resident bytes of one entry's shareable
// artifacts. Everything scales with the CSR: the matrix itself is
// NNZ+rows words of values plus NNZ+rows+1 of indices, and the checksum
// encodings, partition plans and warm workspaces are small multiples of
// it — 3× covers them without per-artifact bookkeeping.
func entryFootprint(a *sparse.CSR) int64 {
	const wordBytes = 8
	return 3 * wordBytes * int64(a.MemoryWords()+a.Rows)
}

// perRHSFootprint estimates the resident bytes one blocked-solve lane adds
// on top of entryFootprint: each lane owns its iteration vectors, guards
// and rollback stores — the stores deep-copy the protected matrix per
// checkpoint slot (~2× the CSR words) plus ~10 lane vectors.
func perRHSFootprint(a *sparse.CSR) int64 {
	const wordBytes = 8
	return wordBytes * int64(2*a.MemoryWords()+10*a.Rows)
}

// noteBatchWidth charges the block workspaces of an entry that has served
// a k-wide blocked solve: lane arenas persist in the entry's batch-context
// pool, so the footprint grows by high-water RHS width, not per request.
// Widening may push the cache over its byte budget and evict colder
// entries. Never called with the entry's own cache lock held.
func (c *cache) noteBatchWidth(e *entry, k int) {
	if k <= 1 || e.a == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[e.key]
	if !ok || el.Value.(*entry) != e || e.weight == 0 || k <= e.blockK {
		// Unknown, evicted-while-building, not yet charged, or already
		// charged at this width or wider.
		return
	}
	delta := int64(k-e.blockK) * perRHSFootprint(e.a)
	e.blockK = k
	e.weight += delta
	c.bytes += delta
	c.evictOverBudgetLocked()
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
		Bytes:         c.bytes,
		CapacityBytes: max(c.bytesCap, 0),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		TTLEvictions:  c.ttlEvictions,
	}
}

// entry holds every reusable artifact of one matrix. It is created as a
// skeleton by cache.get and materialised exactly once (concurrent first
// requests block on the build instead of duplicating it); the
// seed-dependent artifacts fill in lazily under mu.
type entry struct {
	key   string
	label string
	spec  harness.MatrixSpec

	// weight, blockK and lastUsed belong to the owning cache (guarded by
	// its mu): the charged footprint in bytes (0 until materialised and
	// charged), the widest blocked solve charged so far (its lane arenas
	// stay resident in the bctxs pool), and the admission/last-hit time
	// driving TTL aging.
	weight   int64
	blockK   int
	lastUsed time.Time

	once sync.Once
	err  error
	a    *sparse.CSR

	mu        sync.Mutex
	rhs       map[int64][]float64
	preconds  map[string]*sparse.CSR
	intervals map[intervalKey][2]int

	// ctxs pools warm per-request solve contexts (see solveCtx); bctxs
	// pools warm blocked-solve contexts (see batchCtx).
	ctxs  sync.Pool
	bctxs sync.Pool
}

// intervalKey identifies one cached model-optimal (d, s) pair.
type intervalKey struct {
	scheme core.Scheme
	alpha  float64
}

// materialise builds the matrix and its shareable artifacts exactly once:
// the CSR itself, the NNZ-balanced partition plan for the server's kernel
// worker count, and a warm-workspace factory whose checksum encodings are
// prewarmed for the default scheme. Safe for concurrent callers; the
// first error is sticky.
func (e *entry) materialise(workers int, build func() (*sparse.CSR, error)) error {
	e.once.Do(func() {
		a, err := build()
		if err != nil {
			e.err = fmt.Errorf("matrix %s: %w", e.label, err)
			return
		}
		e.a = a
		if workers > 1 {
			a.PlanFor(workers) // precompute the partition plan the parallel kernels will ask for
		}
		e.ctxs.New = func() any {
			c := newSolveCtx()
			c.ws.Core.Prewarm(a, core.ABFTCorrection)
			return c
		}
		e.bctxs.New = func() any {
			c := newBatchCtx()
			c.ws.Core.Prewarm(a, core.ABFTCorrection)
			return c
		}
	})
	return e.err
}

// rhsFor returns the cached manufactured right-hand side for the seed,
// building and caching it on first use (the only allocating path; warm
// requests take the map hit only).
func (e *entry) rhsFor(seed int64) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.rhs[seed]; ok {
		return b
	}
	if e.rhs == nil {
		e.rhs = make(map[int64][]float64, maxRHSPerEntry)
	} else if len(e.rhs) >= maxRHSPerEntry {
		clear(e.rhs)
	}
	b, _ := harness.RHS(e.a, seed)
	e.rhs[seed] = b
	return b
}

// precondFor returns the cached explicit preconditioner of the given kind,
// building it on first use — the same construction the harness would
// perform per solve, hoisted to once per matrix.
func (e *entry) precondFor(kind string) (*sparse.CSR, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.preconds[kind]; ok {
		return m, nil
	}
	var m *sparse.CSR
	var err error
	switch kind {
	case "neumann":
		m, err = precond.Neumann(e.a, precond.NeumannOptions{})
	default:
		m, err = precond.Jacobi(e.a)
	}
	if err != nil {
		return nil, err
	}
	if e.preconds == nil {
		e.preconds = make(map[string]*sparse.CSR, 2)
	}
	e.preconds[kind] = m
	return m, nil
}

// intervalsFor returns the cached model-optimal (d, s) for the scheme at
// fault rate alpha — the exact values the drivers would recompute per
// solve from the same inputs, hoisted to once per (matrix, scheme, alpha).
func (e *entry) intervalsFor(scheme core.Scheme, alpha float64) (d, s int) {
	k := intervalKey{scheme: scheme, alpha: alpha}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ds, ok := e.intervals[k]; ok {
		return ds[0], ds[1]
	}
	d, s = core.OptimalIntervals(e.a, scheme, alpha, core.DefaultCostParams())
	if e.intervals == nil {
		e.intervals = make(map[intervalKey][2]int, 4)
	} else if len(e.intervals) >= maxIntervalsPerEntry {
		clear(e.intervals)
	}
	e.intervals[k] = [2]int{d, s}
	return d, s
}

// solveCtx is the per-request execution context drawn from an entry's
// pool: a warm workspace pair, the residual-history buffer and the
// recording closure bound to it. Everything is built once, so a warm
// request reuses it all and allocates nothing.
type solveCtx struct {
	ws     *harness.Workspaces
	hist   []float64
	record func(it int, rho float64)
	// trace, when set for the duration of one solve, receives the live
	// iteration tally through the pre-bound record closure — tracing a
	// warm solve therefore allocates exactly as much as not tracing it:
	// nothing.
	trace *obs.Active
}

func newSolveCtx() *solveCtx {
	c := &solveCtx{ws: &harness.Workspaces{
		Core:   core.NewWorkspace(),
		Solver: solver.NewWorkspace(),
	}}
	c.record = func(_ int, rho float64) {
		c.hist = append(c.hist, rho)
		if tr := c.trace; tr != nil {
			tr.Solver.Iterations++
		}
	}
	return c
}

// clearTrace detaches the trace before the context returns to the pool.
func (c *solveCtx) clearTrace() { c.trace = nil }

// batchCtx is the per-group execution context of a blocked solve, drawn
// from an entry's bctxs pool: the reusable block workspaces plus the
// per-lane argument and result slices and the recording closure. All
// slices grow to the high-water lane count and persist, so a warm batched
// request reuses everything.
type batchCtx struct {
	ws     *harness.BlockWorkspaces
	bs     [][]float64
	seeds  []int64
	hists  [][]float64
	sts    []core.Stats
	errs   []error
	record func(rhs, it int, rho float64)
}

func newBatchCtx() *batchCtx {
	c := &batchCtx{ws: harness.NewBlockWorkspaces()}
	c.record = func(rhs, _ int, rho float64) { c.hists[rhs] = append(c.hists[rhs], rho) }
	return c
}

// grow sizes the per-lane slices for a k-wide block, preserving warm
// capacity (hists keep their backing arrays across uses).
func (c *batchCtx) grow(k int) {
	for len(c.bs) < k {
		c.bs = append(c.bs, nil)
		c.seeds = append(c.seeds, 0)
		c.hists = append(c.hists, nil)
		c.sts = append(c.sts, core.Stats{})
		c.errs = append(c.errs, nil)
	}
}
