package server

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// maxRHSPerEntry and maxIntervalsPerEntry bound the seed- and
// alpha-keyed artifact maps cached per matrix; past the bound the
// cheapest correct policy is to drop them all (they rebuild
// deterministically). Both keys are client-supplied, so unbounded maps
// would let a parameter sweep grow a resident entry forever.
const (
	maxRHSPerEntry       = 16
	maxIntervalsPerEntry = 32
)

// cache is the per-matrix artifact cache: an LRU of entries keyed by the
// canonical matrix identity (the spec's JSON for named matrices, the
// content fingerprint for inline ones). Eviction only drops references —
// requests holding an evicted entry finish on it undisturbed.
type cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	ll        *list.List // of *entry; front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
	}
}

// get returns the entry for key, creating an unmaterialised skeleton on a
// miss and evicting least-recently-used entries beyond capacity. The
// second result reports whether the entry already existed.
func (c *cache) get(key, label string, spec harness.MatrixSpec) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry), true
	}
	c.misses++
	e := &entry{key: key, label: label, spec: spec}
	c.entries[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		evicted := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, evicted.key)
		c.evictions++
	}
	return e, false
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// entry holds every reusable artifact of one matrix. It is created as a
// skeleton by cache.get and materialised exactly once (concurrent first
// requests block on the build instead of duplicating it); the
// seed-dependent artifacts fill in lazily under mu.
type entry struct {
	key   string
	label string
	spec  harness.MatrixSpec

	once sync.Once
	err  error
	a    *sparse.CSR

	mu        sync.Mutex
	rhs       map[int64][]float64
	preconds  map[string]*sparse.CSR
	intervals map[intervalKey][2]int

	// ctxs pools warm per-request solve contexts; see solveCtx.
	ctxs sync.Pool
}

// intervalKey identifies one cached model-optimal (d, s) pair.
type intervalKey struct {
	scheme core.Scheme
	alpha  float64
}

// materialise builds the matrix and its shareable artifacts exactly once:
// the CSR itself, the NNZ-balanced partition plan for the server's kernel
// worker count, and a warm-workspace factory whose checksum encodings are
// prewarmed for the default scheme. Safe for concurrent callers; the
// first error is sticky.
func (e *entry) materialise(workers int, build func() (*sparse.CSR, error)) error {
	e.once.Do(func() {
		a, err := build()
		if err != nil {
			e.err = fmt.Errorf("matrix %s: %w", e.label, err)
			return
		}
		e.a = a
		if workers > 1 {
			a.PlanFor(workers) // precompute the partition plan the parallel kernels will ask for
		}
		e.ctxs.New = func() any {
			c := newSolveCtx()
			c.ws.Core.Prewarm(a, core.ABFTCorrection)
			return c
		}
	})
	return e.err
}

// rhsFor returns the cached manufactured right-hand side for the seed,
// building and caching it on first use (the only allocating path; warm
// requests take the map hit only).
func (e *entry) rhsFor(seed int64) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.rhs[seed]; ok {
		return b
	}
	if e.rhs == nil {
		e.rhs = make(map[int64][]float64, maxRHSPerEntry)
	} else if len(e.rhs) >= maxRHSPerEntry {
		clear(e.rhs)
	}
	b, _ := harness.RHS(e.a, seed)
	e.rhs[seed] = b
	return b
}

// precondFor returns the cached explicit preconditioner of the given kind,
// building it on first use — the same construction the harness would
// perform per solve, hoisted to once per matrix.
func (e *entry) precondFor(kind string) (*sparse.CSR, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.preconds[kind]; ok {
		return m, nil
	}
	var m *sparse.CSR
	var err error
	switch kind {
	case "neumann":
		m, err = precond.Neumann(e.a, precond.NeumannOptions{})
	default:
		m, err = precond.Jacobi(e.a)
	}
	if err != nil {
		return nil, err
	}
	if e.preconds == nil {
		e.preconds = make(map[string]*sparse.CSR, 2)
	}
	e.preconds[kind] = m
	return m, nil
}

// intervalsFor returns the cached model-optimal (d, s) for the scheme at
// fault rate alpha — the exact values the drivers would recompute per
// solve from the same inputs, hoisted to once per (matrix, scheme, alpha).
func (e *entry) intervalsFor(scheme core.Scheme, alpha float64) (d, s int) {
	k := intervalKey{scheme: scheme, alpha: alpha}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ds, ok := e.intervals[k]; ok {
		return ds[0], ds[1]
	}
	d, s = core.OptimalIntervals(e.a, scheme, alpha, core.DefaultCostParams())
	if e.intervals == nil {
		e.intervals = make(map[intervalKey][2]int, 4)
	} else if len(e.intervals) >= maxIntervalsPerEntry {
		clear(e.intervals)
	}
	e.intervals[k] = [2]int{d, s}
	return d, s
}

// solveCtx is the per-request execution context drawn from an entry's
// pool: a warm workspace pair, the residual-history buffer and the
// recording closure bound to it. Everything is built once, so a warm
// request reuses it all and allocates nothing.
type solveCtx struct {
	ws     *harness.Workspaces
	hist   []float64
	record func(it int, rho float64)
}

func newSolveCtx() *solveCtx {
	c := &solveCtx{ws: &harness.Workspaces{
		Core:   core.NewWorkspace(),
		Solver: solver.NewWorkspace(),
	}}
	c.record = func(_ int, rho float64) { c.hist = append(c.hist, rho) }
	return c
}
