package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// postBatch posts the batch request and decodes the body into out (a
// *BatchSolveResponse for 200, *ErrorResponse otherwise). Returns the
// status.
func postBatch(t *testing.T, url string, req *BatchSolveRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// TestBatchSolveMatchesSingles is the batch-path determinism gate: every
// right-hand side of a batched solve must answer the exact residual hash
// the equivalent single request answers, across the blocked drivers
// (cg × ABFT, cg × unprotected) and the sequential fallback (pcg), and a
// repeated batch must reproduce itself bit for bit.
func TestBatchSolveMatchesSingles(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, Concurrency: 2, QueueDepth: 16})

	for _, tc := range []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"cg", "unprotected"},
		{"pcg", "abft-correction"},
	} {
		name := tc.solver + "/" + tc.scheme
		breq := &BatchSolveRequest{
			SolveRequest: *poisson2DRequest(225),
			RHS:          []BatchRHS{{Seed: 1}, {Seed: 2}, {Seed: 3}},
		}
		breq.Solver, breq.Scheme = tc.solver, tc.scheme

		var first, second BatchSolveResponse
		if code := postBatch(t, ts.URL, breq, &first); code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		if code := postBatch(t, ts.URL, breq, &second); code != http.StatusOK {
			t.Fatalf("%s repeat: status %d", name, code)
		}
		if len(first.Results) != 3 || len(second.Results) != 3 {
			t.Fatalf("%s: %d/%d results, want 3", name, len(first.Results), len(second.Results))
		}
		if first.Coalesced != 3 {
			t.Errorf("%s: coalesced %d, want 3", name, first.Coalesced)
		}
		for i := range first.Results {
			br := first.Results[i]
			if br.SolveError != "" {
				t.Fatalf("%s rhs %d: solve error %s", name, i, br.SolveError)
			}
			if br.Result.ResidualHash != second.Results[i].Result.ResidualHash {
				t.Errorf("%s rhs %d: repeated batch hash %s != %s",
					name, i, second.Results[i].Result.ResidualHash, br.Result.ResidualHash)
			}
			if got := br.Result.Scenario.Seed; got != int64(i+1) {
				t.Errorf("%s rhs %d: scenario seed %d, want %d", name, i, got, i+1)
			}

			single := poisson2DRequest(225)
			single.Solver, single.Scheme, single.Seed = tc.solver, tc.scheme, int64(i+1)
			var sr SolveResponse
			if code := postSolve(t, ts.URL, single, &sr); code != http.StatusOK {
				t.Fatalf("%s rhs %d single: status %d", name, i, code)
			}
			if sr.Result.ResidualHash != br.Result.ResidualHash {
				t.Errorf("%s rhs %d: batch hash %s != single hash %s",
					name, i, br.Result.ResidualHash, sr.Result.ResidualHash)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Concurrency: 1})

	var er ErrorResponse
	empty := &BatchSolveRequest{SolveRequest: *poisson2DRequest(16)}
	if code := postBatch(t, ts.URL, empty, &er); code != http.StatusBadRequest {
		t.Errorf("empty rhs: status %d, want 400", code)
	}

	over := &BatchSolveRequest{SolveRequest: *poisson2DRequest(16), RHS: make([]BatchRHS, maxBatchRHS+1)}
	if code := postBatch(t, ts.URL, over, &er); code != http.StatusBadRequest {
		t.Errorf("oversized rhs: status %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/v1/solve/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestCoalescingMergesQueuedSingles pins the scheduler-level coalescer:
// single requests sharing a matrix and scenario axes that queue behind a
// busy solver are merged into one blocked solve, each answering its own
// response with the coalesced width — and with exactly the hash it would
// answer alone.
func TestCoalescingMergesQueuedSingles(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 8})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	// The blocker occupies the only solver slot on a different matrix, so
	// it can never merge with the requests queuing behind it.
	blocker := poisson2DRequest(64)
	results := make(chan SolveResponse, 4)
	async := func(req *SolveRequest) {
		go func() {
			var resp SolveResponse
			if code := postSolve(t, ts.URL, req, &resp); code != http.StatusOK {
				t.Errorf("status %d, want 200", code)
			}
			results <- resp
		}()
	}
	async(blocker)
	<-entered

	// Three same-identity singles with distinct seeds queue up.
	const merged = 3
	for i := 0; i < merged; i++ {
		req := poisson2DRequest(225)
		req.Seed = int64(i + 1)
		async(req)
	}
	waitFor(t, func() bool { return s.sched.depth() >= merged })
	close(release)

	coalescedWidths := map[int]int{}
	hashes := map[int64]string{}
	for i := 0; i < merged+1; i++ {
		resp := <-results
		if resp.Result.Scenario.Matrix.N == 225 {
			coalescedWidths[resp.Coalesced]++
			hashes[resp.Result.Scenario.Seed] = resp.Result.ResidualHash
		}
	}
	if coalescedWidths[merged] != merged {
		t.Fatalf("coalesced widths %v, want all %d requests merged into one %d-wide block",
			coalescedWidths, merged, merged)
	}
	// Every merged request must answer the hash it answers when solved
	// alone (warm, uncontended server: no coalescing now).
	for seed, want := range hashes {
		req := poisson2DRequest(225)
		req.Seed = seed
		var resp SolveResponse
		if code := postSolve(t, ts.URL, req, &resp); code != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, code)
		}
		if resp.Coalesced > 1 {
			t.Errorf("seed %d: uncontended solve reports coalesced=%d", seed, resp.Coalesced)
		}
		if resp.Result.ResidualHash != want {
			t.Errorf("seed %d: merged hash %s != solo hash %s", seed, want, resp.Result.ResidualHash)
		}
	}
}

// TestCoalesceMixedDeadlines pins the corner the merge must not break:
// when same-identity requests with different deadlines queue together and
// one expires before a solver frees, that request alone answers 504 — the
// coalescing scan drops it — while the others merge and succeed.
func TestCoalesceMixedDeadlines(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 8})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	blocker := poisson2DRequest(64)
	okCodes := make(chan SolveResponse, 4)
	go func() {
		var resp SolveResponse
		postSolve(t, ts.URL, blocker, &resp)
		okCodes <- resp
	}()
	<-entered

	// Two patient same-identity singles and one with a 50ms deadline.
	for i := 0; i < 2; i++ {
		req := poisson2DRequest(225)
		req.Seed = int64(i + 1)
		go func() {
			var resp SolveResponse
			if code := postSolve(t, ts.URL, req, &resp); code != http.StatusOK {
				t.Errorf("patient request: status %d, want 200", code)
			}
			okCodes <- resp
		}()
	}
	timed := poisson2DRequest(225)
	timed.Seed = 99
	timed.TimeoutMillis = 50
	timedCode := make(chan int, 1)
	go func() {
		var er ErrorResponse
		timedCode <- postSolve(t, ts.URL, timed, &er)
	}()
	waitFor(t, func() bool { return s.sched.depth() >= 3 })

	// The short deadline fires while everything is still queued.
	if code := <-timedCode; code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, want 504", code)
	}
	close(release)

	for i := 0; i < 3; i++ {
		resp := <-okCodes
		if n := resp.Result.Scenario.Matrix.N; n == 225 && resp.Coalesced != 2 {
			t.Errorf("survivor (seed %d): coalesced %d, want 2 (expired lane dropped)",
				resp.Result.Scenario.Seed, resp.Coalesced)
		}
	}
	if got := s.expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
	if got := s.completed.Load(); got != 3 {
		t.Errorf("completed = %d, want 3", got)
	}
}

// TestBatchSurvivesMidQueueEviction pins the second coalescing corner: a
// queued batch whose matrix entry is evicted while it waits still solves
// on the entry it holds, and a fresh request for the evicted matrix
// rebuilds it with unchanged hashes.
func TestBatchSurvivesMidQueueEviction(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 8, CacheEntries: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	blocker := poisson2DRequest(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var resp SolveResponse
		postSolve(t, ts.URL, blocker, &resp)
	}()
	<-entered

	// The batch queues holding its materialised entry.
	breq := &BatchSolveRequest{
		SolveRequest: *poisson2DRequest(225),
		RHS:          []BatchRHS{{Seed: 1}, {Seed: 2}},
	}
	var batchResp BatchSolveResponse
	batchDone := make(chan int, 1)
	go func() {
		batchDone <- postBatch(t, ts.URL, breq, &batchResp)
	}()
	waitFor(t, func() bool { return s.sched.depth() >= 1 })

	// A third matrix displaces the batch's entry from the 1-slot cache
	// while the batch is still queued.
	other := poisson2DRequest(100)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var resp SolveResponse
		postSolve(t, ts.URL, other, &resp)
	}()
	waitFor(t, func() bool { return s.sched.depth() >= 2 })

	close(release)
	if code := <-batchDone; code != http.StatusOK {
		t.Fatalf("evicted-entry batch: status %d, want 200", code)
	}
	wg.Wait()
	for i, br := range batchResp.Results {
		if br.SolveError != "" {
			t.Fatalf("rhs %d: solve error %s", i, br.SolveError)
		}
	}

	// Refetch: the matrix rebuilds from its spec and must hash identically.
	var again BatchSolveResponse
	if code := postBatch(t, ts.URL, breq, &again); code != http.StatusOK {
		t.Fatalf("refetch batch: status %d", code)
	}
	if again.CacheHit {
		// The entry was evicted, so the refetch must have been a miss —
		// unless the eviction raced the earlier solves; either way the
		// hashes below are the real gate.
		t.Log("refetch reported a cache hit")
	}
	for i := range again.Results {
		if got, want := again.Results[i].Result.ResidualHash, batchResp.Results[i].Result.ResidualHash; got != want {
			t.Errorf("rhs %d: refetched hash %s != pre-eviction hash %s", i, got, want)
		}
	}
}

// TestBatchCacheAccounting pins the footprint-weighted eviction rule for
// blocked solves: an entry that served a k-wide batch weighs its base
// footprint plus k per-lane arenas, the charge grows monotonically with
// the high-water width, and widening can push the cache over its byte
// budget and evict colder entries.
func TestBatchCacheAccounting(t *testing.T) {
	s := New(Config{Workers: 1, Concurrency: 1})
	defer s.Shutdown()

	req := poisson2DRequest(100)
	ent, _ := warmEntry(t, s, req)
	s.cache.noteMaterialised(ent)
	base := s.cache.stats().Bytes
	if base != entryFootprint(ent.a) {
		t.Fatalf("materialised bytes %d, want entryFootprint %d", base, entryFootprint(ent.a))
	}

	s.cache.noteBatchWidth(ent, 4)
	want := base + 4*perRHSFootprint(ent.a)
	if got := s.cache.stats().Bytes; got != want {
		t.Errorf("after k=4: bytes %d, want %d (base + 4 lanes)", got, want)
	}
	// Narrower and repeated widths never shrink or double-charge.
	s.cache.noteBatchWidth(ent, 2)
	s.cache.noteBatchWidth(ent, 4)
	if got := s.cache.stats().Bytes; got != want {
		t.Errorf("after re-noting ≤ widths: bytes %d, want unchanged %d", got, want)
	}
	// Widening charges only the delta.
	s.cache.noteBatchWidth(ent, 6)
	want = base + 6*perRHSFootprint(ent.a)
	if got := s.cache.stats().Bytes; got != want {
		t.Errorf("after k=6: bytes %d, want %d", got, want)
	}

	// Eviction on the byte budget: a second entry fits beside the first
	// only until the first widens past the budget.
	budget := entryFootprint(ent.a) + 6*perRHSFootprint(ent.a) + 2*entryFootprint(ent.a)
	s2 := New(Config{Workers: 1, Concurrency: 1, CacheBytes: budget})
	defer s2.Shutdown()
	entA, _ := warmEntry(t, s2, poisson2DRequest(100))
	s2.cache.noteMaterialised(entA)
	entB, _ := warmEntry(t, s2, poisson2DRequest(64))
	s2.cache.noteMaterialised(entB)
	if got := s2.cache.stats().Entries; got != 2 {
		t.Fatalf("both entries admitted: got %d", got)
	}
	// entA is the LRU entry; widening it overflows the budget and the
	// eviction loop drops from the LRU end, so entA itself goes and the
	// MRU entry survives.
	s2.cache.noteBatchWidth(entA, 64)
	st := s2.cache.stats()
	if st.Entries != 1 || st.Evictions == 0 {
		t.Errorf("after over-budget widening: %+v, want 1 entry and an eviction", st)
	}
	if _, hit := s2.cache.get(entB.key, entB.label, entB.spec); !hit {
		t.Error("survivor is not the MRU entry")
	}
}
