package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
)

// postSolveTraced posts a solve with an optional inbound trace header and
// returns the decoded response plus the echoed trace header.
func postSolveTraced(t *testing.T, url string, req *SolveRequest, inbound string) (*SolveResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if inbound != "" {
		hreq.Header.Set(api.TraceHeader, inbound)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve: status %d (%s)", resp.StatusCode, raw)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.Header.Get(api.TraceHeader)
}

func TestShardMintsAndEchoesTraceID(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, echoed := postSolveTraced(t, ts.URL, poisson2DRequest(16), "")
	if echoed == "" || !obs.ValidTraceID(echoed) {
		t.Fatalf("shard did not mint a valid trace ID: %q", echoed)
	}
	if resp.Result.TraceID != echoed {
		t.Fatalf("result trace_id %q != header %q", resp.Result.TraceID, echoed)
	}
}

func TestShardReusesInboundTraceID(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, echoed := postSolveTraced(t, ts.URL, poisson2DRequest(16), "router-minted-42")
	if echoed != "router-minted-42" {
		t.Fatalf("inbound trace ID not reused: %q", echoed)
	}
	if resp.Result.TraceID != "router-minted-42" {
		t.Fatalf("result trace_id = %q", resp.Result.TraceID)
	}

	// A malformed inbound ID is replaced, never echoed verbatim.
	_, echoed = postSolveTraced(t, ts.URL, poisson2DRequest(16), "bad id with junk")
	if echoed == "" || strings.Contains(echoed, "bad id") || !obs.ValidTraceID(echoed) {
		t.Fatalf("malformed inbound ID mishandled: %q", echoed)
	}
}

func TestTracezCarriesSpansAndSolverTallies(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, ShardLabel: "s0"})
	_, id := postSolveTraced(t, ts.URL, poisson2DRequest(16), "")

	tz, err := api.NewClient(ts.URL).Tracez(context.Background(), 0, id)
	if err != nil {
		t.Fatal(err)
	}
	if tz.Schema != api.SchemaVersion || tz.Tier != api.TierShard {
		t.Fatalf("envelope wrong: %+v", tz)
	}
	if tz.Count != 1 || len(tz.Traces) != 1 {
		t.Fatalf("by-ID lookup returned %d traces", len(tz.Traces))
	}
	rec := tz.Traces[0]
	if rec.ID != id || rec.Tier != api.TierShard {
		t.Fatalf("trace identity wrong: %+v", rec)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{obs.SpanCacheFill, obs.SpanQueueWait, obs.SpanSolve} {
		if !names[want] {
			t.Errorf("trace missing %q span: %+v", want, rec.Spans)
		}
	}
	if rec.Solver == nil || rec.Solver.Iterations == 0 {
		t.Fatalf("trace missing solver tallies: %+v", rec.Solver)
	}
	if rec.DurationMillis <= 0 {
		t.Errorf("duration not recorded: %v", rec.DurationMillis)
	}

	// The second identical request hits the cache: no cache-fill span.
	_, id2 := postSolveTraced(t, ts.URL, poisson2DRequest(16), "")
	tz2, err := api.NewClient(ts.URL).Tracez(context.Background(), 0, id2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range tz2.Traces[0].Spans {
		if sp.Name == obs.SpanCacheFill {
			t.Errorf("warm solve recorded a cache-fill span")
		}
	}

	if s.tracer.Total() < 2 {
		t.Errorf("tracer total = %d, want >= 2", s.tracer.Total())
	}
}

func TestStreamedTerminalEventCarriesTraceID(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	req := poisson2DRequest(16)
	resp, err := api.NewClient(ts.URL).SolveStream(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.TraceID == "" || !obs.ValidTraceID(resp.Result.TraceID) {
		t.Fatalf("streamed terminal result has no trace ID: %+v", resp.Result.TraceID)
	}
	tz, err := api.NewClient(ts.URL).Tracez(context.Background(), 0, resp.Result.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tz.Traces) != 1 {
		t.Fatalf("streamed trace not retained: %d", len(tz.Traces))
	}
	names := map[string]bool{}
	for _, sp := range tz.Traces[0].Spans {
		names[sp.Name] = true
	}
	if !names[obs.SpanSolve] || !names[obs.SpanQueueWait] {
		t.Errorf("streamed trace missing solve/queue-wait spans: %+v", tz.Traces[0].Spans)
	}
}

// scrapeMetrics fetches /metrics and returns the value of each plain
// (label-free) sample line.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestMetricsReconcileWithStatusz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	for i := 0; i < 3; i++ {
		req := poisson2DRequest(16)
		req.Seed = int64(10 + i)
		var out SolveResponse
		if code := postSolve(t, ts.URL, req, &out); code != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, code)
		}
	}

	m := scrapeMetrics(t, ts.URL)
	st, err := api.NewClient(ts.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard == nil {
		t.Fatal("statusz has no shard section")
	}
	checks := map[string]float64{
		"resilient_schema_version":                 float64(api.SchemaVersion),
		"resilient_shard_completed_total":          float64(st.Shard.Completed),
		"resilient_shard_failed_total":             float64(st.Shard.Failed),
		"resilient_shard_rejected_total":           float64(st.Shard.Rejected),
		"resilient_shard_expired_total":            float64(st.Shard.Expired),
		"resilient_shard_cache_hits_total":         float64(st.Shard.Cache.Hits),
		"resilient_shard_cache_misses_total":       float64(st.Shard.Cache.Misses),
		"resilient_shard_cache_entries":            float64(st.Shard.Cache.Entries),
		"resilient_shard_queue_capacity":           8,
		"resilient_shard_solve_seconds_count":      3,
		"resilient_shard_queue_wait_seconds_count": 3,
		"resilient_shard_traces_total":             3,
	}
	for name, want := range checks {
		got, ok := m[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if m["resilient_shard_completed_total"] != 3 {
		t.Errorf("completed_total = %v, want 3", m["resilient_shard_completed_total"])
	}
}

func TestShardStatuszBuildInfo(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, ShardLabel: "s7"})
	st, err := api.NewClient(ts.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b := st.Build
	if b == nil {
		t.Fatal("statusz has no build info")
	}
	if b.GoVersion == "" || !strings.HasPrefix(b.GoVersion, "go") {
		t.Errorf("go_version = %q", b.GoVersion)
	}
	if b.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", b.GOMAXPROCS)
	}
	if b.Version == "" {
		t.Errorf("version empty")
	}
	if b.Label != "s7" {
		t.Errorf("label = %q, want s7", b.Label)
	}
}

func TestShardPprofBehindAdminToken(t *testing.T) {
	_, tsNoToken := testServer(t, Config{Workers: 1})
	resp, err := http.Get(tsNoToken.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("no token configured: status %d, want 403", resp.StatusCode)
	}

	_, ts := testServer(t, Config{Workers: 1, AdminToken: "sekrit"})
	get := func(auth string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/debug/pprof/cmdline", nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", "Bearer "+auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Errorf("missing token: status %d, want 401", code)
	}
	if code := get("wrong"); code != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", code)
	}
	if code := get("sekrit"); code != http.StatusOK {
		t.Errorf("right token: status %d, want 200", code)
	}
}
