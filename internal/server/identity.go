package server

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/sparse"
)

// Identity is the canonical cache identity of a solve request's matrix:
// named generator specs key on their canonical JSON, inline matrices on
// their CSR content fingerprint. It is the single key space shared by the
// per-matrix artifact cache here and the consistent-hash placement in
// internal/router — both resolve it through ResolveIdentity, so the
// routing tier and the cache can never disagree about which requests
// share a matrix.
type Identity struct {
	// Key is the cache/routing key ("spec:{...}" or "inline:%016x").
	Key string
	// Label is the human-readable matrix name used in records.
	Label string
	// Spec is the resolved generator spec (Gen "inline" for inline
	// matrices).
	Spec harness.MatrixSpec
	// Build materialises the matrix; it runs at most once per cache
	// entry. Routing-only callers never invoke it.
	Build func() (*sparse.CSR, error)
}

// ResolveIdentity derives the request's matrix identity. The request must
// already be validated (exactly one of Matrix and Inline set); inline
// matrices are structurally validated here because their fingerprint is
// only meaningful for a well-formed CSR.
func ResolveIdentity(req *SolveRequest) (Identity, error) {
	if req.Inline != nil {
		a, err := req.Inline.ToCSR()
		if err != nil {
			return Identity{}, err
		}
		label := fmt.Sprintf("inline:%016x", a.Fingerprint())
		return Identity{
			Key:   label,
			Label: label,
			Spec:  harness.MatrixSpec{Gen: "inline", N: a.Rows},
			Build: func() (*sparse.CSR, error) { return a, nil },
		}, nil
	}
	if req.Matrix == nil {
		return Identity{}, fmt.Errorf("request names no matrix")
	}
	spec := *req.Matrix
	js, err := json.Marshal(spec)
	if err != nil {
		return Identity{}, err
	}
	return Identity{
		Key:   "spec:" + string(js),
		Label: spec.String(),
		Spec:  spec,
		Build: spec.Build,
	}, nil
}
