package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/harness"
)

// TestEveryEndpointStampsSchema sweeps the shard's HTTP surface — success
// bodies and error envelopes alike — and asserts every response carries
// the wire schema version.
func TestEveryEndpointStampsSchema(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	spec, err := harness.NewMatrixSpec("tridiag", 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(SolveRequest{Matrix: &spec, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"solve ok", http.MethodPost, "/v1/solve", string(good), http.StatusOK},
		{"solve wrong method", http.MethodGet, "/v1/solve", "", http.StatusMethodNotAllowed},
		{"solve bad body", http.MethodPost, "/v1/solve", "{not json", http.StatusBadRequest},
		{"solve bad request", http.MethodPost, "/v1/solve", `{"matrix":{"kind":"nope","n":4}}`, http.StatusBadRequest},
		{"batch wrong method", http.MethodGet, "/v1/solve/batch", "", http.StatusMethodNotAllowed},
		{"batch bad body", http.MethodPost, "/v1/solve/batch", "{not json", http.StatusBadRequest},
		{"stats", http.MethodGet, "/v1/stats", "", http.StatusOK},
		{"statusz", http.MethodGet, "/v1/statusz", "", http.StatusOK},
		{"statusz wrong method", http.MethodPost, "/v1/statusz", "", http.StatusMethodNotAllowed},
		{"healthz", http.MethodGet, "/v1/healthz", "", http.StatusOK},
		{"tracez", http.MethodGet, "/v1/tracez", "", http.StatusOK},
		{"tracez last-n", http.MethodGet, "/v1/tracez?n=2", "", http.StatusOK},
		{"tracez by id", http.MethodGet, "/v1/tracez?id=nosuchtrace", "", http.StatusOK},
		{"tracez wrong method", http.MethodPost, "/v1/tracez", "", http.StatusMethodNotAllowed},
		{"pprof no token", http.MethodGet, "/debug/pprof/", "", http.StatusForbidden},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			var stamped struct {
				Schema int `json:"schema"`
			}
			if err := json.Unmarshal(raw, &stamped); err != nil {
				t.Fatalf("response is not JSON: %v (body %s)", err, raw)
			}
			if stamped.Schema != api.SchemaVersion {
				t.Errorf("schema %d, want %d (body %s)", stamped.Schema, api.SchemaVersion, raw)
			}
		})
	}
}
