// Package server implements the resident resilient-solve service: a
// long-running HTTP/JSON front end over the scenario harness that accepts
// solve requests (a named matrix spec or an inline CSR, a solver, a
// protection scheme and fault-injection knobs), schedules them over the
// shared worker-pool engine with a bounded queue and per-request
// deadlines, and answers with the same schema-versioned result records the
// campaign tooling emits.
//
// Its core is a per-matrix artifact cache: the assembled CSR, its
// NNZ-balanced partition plans, the ABFT checksum encodings, explicit
// preconditioners, manufactured right-hand sides, model-optimal
// checkpoint/verification intervals and a pool of warm solver workspaces
// are all built once per matrix and reused across requests, so a warm
// fault-free solve of a known matrix performs zero heap allocations on the
// request hot path (gated by alloc_test.go) and repeated identical
// requests return bit-identical residual-history hashes.
//
// The wire contract itself — every request and response body, the error
// envelope, and the schema version — lives in internal/api and is merely
// aliased here: server, router and clients all marshal the same types, so
// the contract cannot drift between them.
package server

import (
	"repro/internal/api"
)

// SchemaVersion identifies the request/response layout of the /v1 API.
const SchemaVersion = api.SchemaVersion

// Wire types, aliased from the shared contract package. See internal/api
// for field documentation.
type (
	InlineCSR          = api.InlineCSR
	SolveRequest       = api.SolveRequest
	SolveResponse      = api.SolveResponse
	BatchRHS           = api.BatchRHS
	BatchSolveRequest  = api.BatchSolveRequest
	BatchResult        = api.BatchResult
	BatchSolveResponse = api.BatchSolveResponse
	ErrorResponse      = api.Error
	CacheStats         = api.CacheStats
	HealthResponse     = api.HealthResponse
	StatsResponse      = api.StatsResponse
)

// maxBatchRHS bounds the right-hand sides of one batch request.
const maxBatchRHS = api.MaxBatchRHS
