package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

func poisson2DRequest(n int) *SolveRequest {
	spec, _ := harness.NewMatrixSpec("poisson2d", n, 0)
	return &SolveRequest{Matrix: &spec, Seed: 7}
}

// postSolve posts the request and decodes the body into out (a
// *SolveResponse for 200, *ErrorResponse otherwise). Returns the status.
func postSolve(t *testing.T, url string, req *SolveRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func TestSolveEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, Concurrency: 2, QueueDepth: 8})

	cases := []struct {
		solver, scheme string
		alpha          float64
	}{
		{"cg", "abft-correction", 0},
		{"cg", "abft-detection", 0},
		{"cg", "online-detection", 0},
		{"cg", "unprotected", 0},
		{"cg", "abft-correction", 0.05},
		{"pcg", "abft-correction", 0},
		{"pcg", "unprotected", 0},
		{"bicgstab", "abft-correction", 0},
	}
	for _, tc := range cases {
		name := tc.solver + "/" + tc.scheme
		req := poisson2DRequest(225)
		req.Solver, req.Scheme, req.Alpha = tc.solver, tc.scheme, tc.alpha
		var resp SolveResponse
		if code := postSolve(t, ts.URL, req, &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		if resp.Schema != SchemaVersion {
			t.Errorf("%s: schema %d, want %d", name, resp.Schema, SchemaVersion)
		}
		if resp.SolveError != "" {
			t.Fatalf("%s: solve error: %s", name, resp.SolveError)
		}
		r := resp.Result
		if r.Schema != harness.SchemaVersion || r.Converged != 1 || r.Reps != 1 {
			t.Errorf("%s: record schema=%d converged=%d reps=%d", name, r.Schema, r.Converged, r.Reps)
		}
		if r.ResidualHash == "" || r.ResidualHash == harness.HashHistory(nil) {
			t.Errorf("%s: empty residual hash %q", name, r.ResidualHash)
		}
		if r.Matrix.N != 225 || r.Matrix.NNZ == 0 {
			t.Errorf("%s: matrix info %+v", name, r.Matrix)
		}
		if r.MaxFinalResidual > 1e-6 {
			t.Errorf("%s: final residual %g", name, r.MaxFinalResidual)
		}
	}
}

func TestSolveRequestValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Concurrency: 1})

	cases := []struct {
		name string
		req  *SolveRequest
		code int
	}{
		{"no matrix", &SolveRequest{Solver: "cg"}, http.StatusBadRequest},
		{"both matrices", func() *SolveRequest {
			r := poisson2DRequest(16)
			r.Inline = &InlineCSR{Rows: 1, Cols: 1, Rowidx: []int{0, 1}, Colid: []int{0}, Val: []float64{1}}
			return r
		}(), http.StatusBadRequest},
		{"unknown solver", func() *SolveRequest {
			r := poisson2DRequest(16)
			r.Solver = "chebyshev"
			return r
		}(), http.StatusBadRequest},
		{"fault-injected baseline", func() *SolveRequest {
			r := poisson2DRequest(16)
			r.Scheme = "unprotected"
			r.Alpha = 0.1
			return r
		}(), http.StatusBadRequest},
		{"future schema", func() *SolveRequest {
			r := poisson2DRequest(16)
			r.Schema = SchemaVersion + 1
			return r
		}(), http.StatusBadRequest},
		{"bad inline matrix", &SolveRequest{Inline: &InlineCSR{
			Rows: 2, Cols: 2, Rowidx: []int{0, 1}, Colid: []int{0}, Val: []float64{1},
		}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := postSolve(t, ts.URL, tc.req, &er); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		} else if er.Message == "" || er.Code == "" {
			t.Errorf("%s: incomplete error envelope %+v", tc.name, er)
		}
	}
}

// TestRepeatedRequestsBitIdentical is the server-path determinism gate:
// repeated identical requests — sequential and concurrent, cold and warm
// cache — must return bit-identical residual-history hashes and identical
// canonical records.
func TestRepeatedRequestsBitIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, Concurrency: 4, QueueDepth: 32})

	for _, tc := range []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"pcg", "unprotected"},
		{"bicgstab", "abft-correction"},
	} {
		req := poisson2DRequest(225)
		req.Solver, req.Scheme = tc.solver, tc.scheme

		const reps = 6
		responses := make([]SolveResponse, reps)
		var wg sync.WaitGroup
		for i := 0; i < reps; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if code := postSolve(t, ts.URL, req, &responses[i]); code != http.StatusOK {
					t.Errorf("rep %d: status %d", i, code)
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("%s/%s: request failures", tc.solver, tc.scheme)
		}
		want, err := json.Marshal(responses[0].Result.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < reps; i++ {
			if responses[i].Result.ResidualHash != responses[0].Result.ResidualHash {
				t.Errorf("%s/%s rep %d: hash %s != %s", tc.solver, tc.scheme, i,
					responses[i].Result.ResidualHash, responses[0].Result.ResidualHash)
			}
			got, err := json.Marshal(responses[i].Result.Canonical())
			if err != nil {
				t.Fatal(err)
			}
			// WallSeconds and the wall-clock response fields differ; the
			// canonical record must not.
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s rep %d: canonical record differs:\n%s\n%s", tc.solver, tc.scheme, i, got, want)
			}
		}
	}
}

// TestDeterminismAcrossWorkerCounts runs the same request on a sequential
// and a 4-worker server: the deterministic blocked kernels must produce
// the same residual hash.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	req := poisson2DRequest(225)
	req.Scheme = "abft-correction"

	var hashes []string
	for _, workers := range []int{1, 4} {
		_, ts := testServer(t, Config{Workers: workers, Concurrency: 2})
		var resp SolveResponse
		if code := postSolve(t, ts.URL, req, &resp); code != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, code)
		}
		hashes = append(hashes, resp.Result.ResidualHash)
	}
	if hashes[0] != hashes[1] {
		t.Errorf("hash differs across worker counts: %s vs %s", hashes[0], hashes[1])
	}
}

func TestCacheHitReporting(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1})
	req := poisson2DRequest(64)

	var cold, warm SolveResponse
	postSolve(t, ts.URL, req, &cold)
	postSolve(t, ts.URL, req, &warm)
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if !warm.CacheHit {
		t.Error("second request reported a cache miss")
	}
	cs := s.cache.stats()
	if cs.Entries != 1 || cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 entry, 1 hit, 1 miss", cs)
	}
}

// TestQueueSaturationAndDeadline pins the admission-control semantics: a
// full queue answers 429 immediately, and a queued request whose deadline
// expires before a solver slot frees answers 504 without ever solving.
func TestQueueSaturationAndDeadline(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 2})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	req := poisson2DRequest(64)
	type outcome struct {
		code int
		resp SolveResponse
	}
	results := make(chan outcome, 4)
	async := func(r *SolveRequest) {
		go func() {
			var resp SolveResponse
			code := postSolve(t, ts.URL, r, &resp)
			results <- outcome{code, resp}
		}()
	}

	// A claims the only solver slot and blocks inside the hook.
	async(req)
	<-entered
	// B fills queue slot 1.
	async(req)
	waitFor(t, func() bool { return s.sched.depth() >= 1 })
	// D fills queue slot 2 with a deadline far shorter than A's hold.
	timed := poisson2DRequest(64)
	timed.TimeoutMillis = 50
	var er ErrorResponse
	timedCode := make(chan int, 1)
	go func() { timedCode <- postSolve(t, ts.URL, timed, &er) }()
	waitFor(t, func() bool { return s.sched.depth() >= 2 })

	// C finds the queue full.
	var full ErrorResponse
	if code := postSolve(t, ts.URL, req, &full); code != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429", code)
	}
	// D expires while queued.
	if code := <-timedCode; code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, want 504", code)
	}

	close(release)
	for i := 0; i < 2; i++ {
		out := <-results
		if out.code != http.StatusOK {
			t.Errorf("blocked request %d: status %d", i, out.code)
		}
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if got := s.expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
	if got := s.completed.Load(); got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

// TestGracefulShutdownDrains verifies Shutdown semantics: new requests
// are refused immediately, but everything already admitted — the solve in
// flight and the solve still queued — completes with a full response.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Concurrency: 1, QueueDepth: 4})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testHookPreSolve = func() {
		entered <- struct{}{}
		<-release
	}

	req := poisson2DRequest(64)
	codes := make(chan int, 2)
	async := func() {
		go func() {
			var resp SolveResponse
			codes <- postSolve(t, ts.URL, req, &resp)
		}()
	}
	async() // in flight, blocked in the hook
	<-entered
	async() // admitted to the queue
	waitFor(t, func() bool { return s.sched.depth() >= 1 })

	shutdownDone := make(chan struct{})
	go func() {
		s.Shutdown()
		close(shutdownDone)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	// New work is refused while draining.
	var er ErrorResponse
	if code := postSolve(t, ts.URL, req, &er); code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", code)
	}

	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned before the queue drained")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("admitted request %d: status %d after drain, want 200", i, code)
		}
	}
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the queue drained")
	}
	if got := s.completed.Load(); got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

func TestStatsAndHealthEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Concurrency: 1})
	req := poisson2DRequest(64)
	postSolve(t, ts.URL, req, nil)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != SchemaVersion || st.Completed != 1 || st.Cache.Entries != 1 {
		t.Errorf("stats %+v: want schema %d, 1 completed, 1 cache entry", st, SchemaVersion)
	}

	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Schema != SchemaVersion || health.Draining {
		t.Errorf("health %+v, want ok/schema %d/not draining", health, SchemaVersion)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
