// The race runtime randomly drops sync.Pool puts (by design, to shake out
// pool-dependence bugs), so warm solve contexts are rebuilt at random and
// allocation counts are meaningless under -race. The determinism half of
// this gate (determinism_test.go) runs everywhere; the allocation half is
// race-build-excluded.
//go:build !race

package server

import (
	"testing"

	"repro/internal/harness"
)

// This file is the allocation gate of the request hot path — the
// acceptance criterion of the solve service: once a matrix's artifacts
// are cached and a first request has warmed a solve context, a fault-free
// solve of the same matrix must perform zero heap allocations between
// request dispatch and outcome (Server.solve). JSON transport framing is
// deliberately outside the gate; the solve itself — workspace reuse,
// cached RHS/preconditioner/intervals, residual-history fingerprint —
// must not touch the heap.

func TestZeroAllocWarmSolvePath(t *testing.T) {
	s := New(Config{Workers: 1, Concurrency: 1, QueueDepth: 4})
	defer s.Shutdown()

	cases := []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"cg", "abft-detection"},
		{"cg", "online-detection"},
		{"cg", "unprotected"},
		{"pcg", "abft-correction"},
		{"pcg", "online-detection"},
		{"pcg", "unprotected"},
		{"bicgstab", "abft-correction"},
		{"bicgstab", "abft-detection"},
		{"bicgstab", "unprotected"},
	}
	for _, tc := range cases {
		name := tc.solver + "/" + tc.scheme
		spec, err := harness.NewMatrixSpec("poisson2d", 576, 0)
		if err != nil {
			t.Fatal(err)
		}
		req := &SolveRequest{Matrix: &spec, Solver: tc.solver, Scheme: tc.scheme, Seed: 3}
		ent, sc := warmEntry(t, s, req)

		solve := func() {
			if out := s.solve(ent, sc, req.rhsSeed()); out.err != nil {
				t.Fatalf("%s: %v", name, out.err)
			}
		}
		solve()
		solve() // warm: workspaces, RHS, preconditioner, intervals, history capacity
		if allocs := testing.AllocsPerRun(10, solve); allocs != 0 {
			t.Errorf("%s: %v allocs per warm solve, want 0", name, allocs)
		}
	}
}
