// The race runtime randomly drops sync.Pool puts (by design, to shake out
// pool-dependence bugs), so warm solve contexts are rebuilt at random and
// allocation counts are meaningless under -race. The determinism half of
// this gate (determinism_test.go) runs everywhere; the allocation half is
// race-build-excluded.
//go:build !race

package server

import (
	"testing"

	"repro/internal/harness"
)

// This file is the allocation gate of the request hot path — the
// acceptance criterion of the solve service: once a matrix's artifacts
// are cached and a first request has warmed a solve context, a fault-free
// solve of the same matrix must perform zero heap allocations between
// request dispatch and outcome (Server.solve). JSON transport framing is
// deliberately outside the gate; the solve itself — workspace reuse,
// cached RHS/preconditioner/intervals, residual-history fingerprint —
// must not touch the heap.

func TestZeroAllocWarmSolvePath(t *testing.T) {
	s := New(Config{Workers: 1, Concurrency: 1, QueueDepth: 4})
	defer s.Shutdown()

	cases := []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"cg", "abft-detection"},
		{"cg", "online-detection"},
		{"cg", "unprotected"},
		{"pcg", "abft-correction"},
		{"pcg", "online-detection"},
		{"pcg", "unprotected"},
		{"bicgstab", "abft-correction"},
		{"bicgstab", "abft-detection"},
		{"bicgstab", "unprotected"},
	}
	for _, tc := range cases {
		name := tc.solver + "/" + tc.scheme
		spec, err := harness.NewMatrixSpec("poisson2d", 576, 0)
		if err != nil {
			t.Fatal(err)
		}
		req := &SolveRequest{Matrix: &spec, Solver: tc.solver, Scheme: tc.scheme, Seed: 3}
		ent, sc := warmEntry(t, s, req)

		solve := func() {
			if out := s.solve(ent, sc, req.ResolvedRHSSeed(), nil); out.err != nil {
				t.Fatalf("%s: %v", name, out.err)
			}
		}
		solve()
		solve() // warm: workspaces, RHS, preconditioner, intervals, history capacity
		if allocs := testing.AllocsPerRun(10, solve); allocs != 0 {
			t.Errorf("%s: %v allocs per warm solve, want 0", name, allocs)
		}

		// Traced solves ride the same context: the live iteration tally is
		// an increment through a pre-bound closure, so attaching an active
		// trace must not cost a single allocation either. The Active is
		// drawn outside the measured region — per-request trace setup is
		// handler-side, off the solve hot path, and the Active itself is
		// pooled there.
		tr := s.tracer.Start("")
		traced := func() {
			if out := s.solve(ent, sc, req.ResolvedRHSSeed(), tr); out.err != nil {
				t.Fatalf("%s traced: %v", name, out.err)
			}
		}
		traced()
		if allocs := testing.AllocsPerRun(10, traced); allocs != 0 {
			t.Errorf("%s: %v allocs per warm traced solve, want 0", name, allocs)
		}
		if tr.Solver.Iterations == 0 {
			t.Errorf("%s: traced solve recorded no iterations", name)
		}
		s.tracer.Finish(tr)
	}
}

// TestZeroAllocWarmBatchPath extends the gate to the blocked drivers: a
// warm batched solve — pooled block workspaces, per-lane argument and
// history slices at capacity, cached RHS vectors — must allocate nothing
// per group, across the blocked (cg) and sequential-fallback (pcg) paths.
func TestZeroAllocWarmBatchPath(t *testing.T) {
	s := New(Config{Workers: 1, Concurrency: 1, QueueDepth: 4})
	defer s.Shutdown()

	cases := []struct{ solver, scheme string }{
		{"cg", "abft-correction"},
		{"cg", "abft-detection"},
		{"cg", "unprotected"},
		{"pcg", "abft-correction"},
	}
	for _, tc := range cases {
		name := tc.solver + "/" + tc.scheme
		spec, err := harness.NewMatrixSpec("poisson2d", 576, 0)
		if err != nil {
			t.Fatal(err)
		}
		req := &SolveRequest{Matrix: &spec, Solver: tc.solver, Scheme: tc.scheme, Seed: 3}
		ent, sc := warmEntry(t, s, req)

		// One 3-wide task, reused across runs exactly as the scheduler
		// reuses a coalesced group (outs are overwritten in place).
		tk := newTask("", []rhsSpec{{3, 3}, {4, 4}, {5, 5}})
		group := []*task{tk}
		solve := func() {
			s.runGroup(ent, sc, group)
			for i, out := range tk.outs {
				if out.err != nil {
					t.Fatalf("%s lane %d: %v", name, i, out.err)
				}
			}
		}
		solve()
		solve() // warm: block workspaces, lane slices, RHS cache, history capacity
		if allocs := testing.AllocsPerRun(10, solve); allocs != 0 {
			t.Errorf("%s: %v allocs per warm batched solve, want 0", name, allocs)
		}
	}
}
