package api

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// TraceHeader carries the request's trace identifier between tiers and
// back to the client. The router mints one per request when the client
// does not supply a valid ID (see obs.ValidTraceID), forwards it to the
// shard it routes to — including every hedged and failover attempt — and
// echoes it on the response. Shards accept an inbound ID the same way,
// so direct shard calls are traceable too.
const TraceHeader = "X-Resilient-Trace"

// TraceResponse is the body of GET /v1/tracez on both tiers: the most
// recently completed traces, newest first. Query parameters: ?n= caps
// the number returned, ?id= looks up one trace ID exactly (a request
// that crossed the tier more than once may return several records).
type TraceResponse struct {
	Schema int               `json:"schema"`
	Tier   string            `json:"tier"`
	Count  int               `json:"count"`
	Total  uint64            `json:"total"`
	Traces []obs.TraceRecord `json:"traces"`
}

// TracezSnapshot answers one GET /v1/tracez request from a tier's
// tracer: both tiers serve the identical contract, so the query parsing
// and envelope shaping live here. ?n= caps the records (invalid or
// absent = all retained), ?id= filters to one trace ID.
func TracezSnapshot(t *obs.Tracer, tier string, r *http.Request) TraceResponse {
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	traces := t.Snapshot(n, q.Get("id"))
	return TraceResponse{
		Schema: SchemaVersion,
		Tier:   tier,
		Count:  len(traces),
		Total:  t.Total(),
		Traces: traces,
	}
}

// BuildInfo identifies the process behind a statusz scrape: module
// version, Go toolchain, GOMAXPROCS, uptime, and the shard label where
// one applies. Served by both tiers inside StatuszResponse so fleets of
// scraped processes can be told apart.
type BuildInfo struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Label         string  `json:"label,omitempty"`
}
