package api

import (
	"crypto/subtle"
	"errors"
	"net/http"
	"net/http/pprof"
	"strings"
)

// MountPprof mounts the net/http/pprof endpoints on mux behind the
// admin bearer token, using the same gate semantics as the router's
// admin API: with no token configured profiling is disabled outright
// (403), a missing or wrong token answers 401, and the comparison is
// constant-time. Both daemons call this so a deployment that already
// carries an admin token gets CPU/heap/goroutine profiles for free
// without exposing them to anonymous callers.
func MountPprof(mux *http.ServeMux, token string) {
	gate := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if token == "" {
				WriteError(w, http.StatusForbidden, CodeForbidden,
					errors.New("profiling disabled: no admin token configured"), 0)
				return
			}
			got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			if subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
				WriteError(w, http.StatusUnauthorized, CodeUnauthorized,
					errors.New("missing or invalid admin token"), 0)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/debug/pprof/", gate(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", gate(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", gate(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", gate(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", gate(pprof.Trace))
}
