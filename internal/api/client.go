package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxResponseBytes bounds a decoded response body.
const maxResponseBytes = 64 << 20

// Client is the typed HTTP client over the whole wire contract: the solve
// surface of a resilientd shard or a resrouter front end, plus the
// router-only /routerz and token-authenticated /v1/admin surfaces.
// Non-200 answers decode the unified envelope and come back as *Error, so
// callers branch on the machine-readable code, never on message strings.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// ClientOption customises a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithAdminToken attaches the bearer token the admin endpoints require.
func WithAdminToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithTimeout bounds every request issued by the client.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.hc.Timeout = d }
}

// NewClient builds a client for the service at base (e.g.
// "http://127.0.0.1:8723").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 2 * time.Minute},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// Solve posts one solve request.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveStream posts one solve request with "Accept: text/event-stream"
// and delivers every decoded progress event to onEvent (nil skips
// delivery); the terminal result event is returned like a buffered
// Solve. A terminal error event comes back as *Error, exactly as a
// buffered non-200 would. onEvent returning an error aborts the stream
// (cancelling the solve's delivery, not the solve). Servers that do not
// stream (or a non-flushing hop) answer plain JSON; SolveStream falls
// back to decoding that buffered body, so callers never need to probe
// capability first.
func (c *Client) SolveStream(ctx context.Context, req *SolveRequest, onEvent func(*SolveEvent) error) (*SolveResponse, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// Buffered answer (old server, non-streaming hop, or an error
		// envelope rejected before streaming began): decode it the
		// buffered way, digest check included.
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if err != nil {
			return nil, fmt.Errorf("POST /v1/solve: reading response: %w", err)
		}
		if !VerifyDigest(resp.Header.Get(DigestHeader), body) {
			return nil, fmt.Errorf("POST /v1/solve: response digest mismatch (corrupt body)")
		}
		if resp.StatusCode != http.StatusOK {
			var e Error
			if json.Unmarshal(body, &e) != nil || e.Message == "" {
				e = Error{
					Schema:  SchemaVersion,
					Code:    CodeForStatus(resp.StatusCode),
					Message: fmt.Sprintf("POST /v1/solve: %s: %s", resp.Status, bytes.TrimSpace(body)),
				}
			}
			return nil, &e
		}
		var out SolveResponse
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, fmt.Errorf("POST /v1/solve: decoding response: %w", err)
		}
		return &out, nil
	}

	rd := NewSSEReader(resp.Body)
	var terminal *SolveEvent
	var terminalData []byte
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("POST /v1/solve: %w", err)
		}
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return nil, err
			}
		}
		if ev.Terminal() {
			terminal = ev
			terminalData = append([]byte(nil), rd.LastFrameData()...)
			// Drain to EOF so the trailer becomes visible.
			for {
				if _, err := rd.Next(); err != nil {
					break
				}
			}
			break
		}
	}
	if terminal == nil {
		return nil, fmt.Errorf("POST /v1/solve: stream ended without a terminal event")
	}
	// The trailer repeats the terminal frame's digest; verify it against
	// the exact wire bytes when the transport delivered one (an absent
	// trailer verifies trivially, like an absent header).
	if !VerifyDigest(resp.Trailer.Get(DigestHeader), terminalData) {
		return nil, fmt.Errorf("POST /v1/solve: stream trailer digest mismatch (corrupt terminal frame)")
	}
	if terminal.Kind == EventError {
		if terminal.Error != nil {
			return nil, terminal.Error
		}
		return nil, fmt.Errorf("POST /v1/solve: stream ended with an empty error event")
	}
	if terminal.Result == nil {
		return nil, fmt.Errorf("POST /v1/solve: stream result event carries no result")
	}
	return terminal.Result, nil
}

// SolveBatch posts one batched multi-RHS solve request.
func (c *Client) SolveBatch(ctx context.Context, req *BatchSolveRequest) (*BatchSolveResponse, error) {
	var out BatchSolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /v1/healthz (shards and routers both serve it; the
// router's body is RouterHealth — use RouterHealth for that).
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RouterHealth fetches a router's own /v1/healthz.
func (c *Client) RouterHealth(ctx context.Context) (*RouterHealth, error) {
	var out RouterHealth
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches a shard's /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Routerz fetches a router's /routerz shard map.
func (c *Client) Routerz(ctx context.Context) (*RouterzResponse, error) {
	var out RouterzResponse
	if err := c.do(ctx, http.MethodGet, "/routerz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Statusz fetches /v1/statusz, the unified introspection surface both
// tiers serve: Tier says who answered.
func (c *Client) Statusz(ctx context.Context) (*StatuszResponse, error) {
	var out StatuszResponse
	if err := c.do(ctx, http.MethodGet, "/v1/statusz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tracez fetches /v1/tracez: the most recently completed traces on the
// target tier. n caps the number returned (0 = all retained); a
// non-empty id looks one trace up exactly.
func (c *Client) Tracez(ctx context.Context, n int, id string) (*TraceResponse, error) {
	path := "/v1/tracez"
	sep := "?"
	if n > 0 {
		path += fmt.Sprintf("%sn=%d", sep, n)
		sep = "&"
	}
	if id != "" {
		path += sep + "id=" + id
	}
	var out TraceResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminTopology fetches the live topology through the admin API.
func (c *Client) AdminTopology(ctx context.Context) (*AdminTopologyResponse, error) {
	var out AdminTopologyResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/topology", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminAddShard adds a shard to the ring (or re-admits a drained one).
// An empty addr asks the router's shard runtime to materialise it.
func (c *Client) AdminAddShard(ctx context.Context, name, addr string) (*AdminShardResponse, error) {
	return c.AdminAddShardWeighted(ctx, name, addr, 0)
}

// AdminAddShardWeighted is AdminAddShard with an explicit ring weight
// (0 = the router's default). Re-adding a known shard with a different
// weight rebalances it in place.
func (c *Client) AdminAddShardWeighted(ctx context.Context, name, addr string, weight float64) (*AdminShardResponse, error) {
	var out AdminShardResponse
	req := AdminAddShardRequest{Name: name, Addr: addr, VnodeWeight: weight}
	if err := c.do(ctx, http.MethodPost, "/v1/admin/shards", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminDrainShard latches the shard out of the ring: new keys route past
// it, in-flight requests finish.
func (c *Client) AdminDrainShard(ctx context.Context, name string) (*AdminShardResponse, error) {
	var out AdminShardResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/shards/"+name+"/drain", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminRemoveShard removes the shard from the topology entirely.
func (c *Client) AdminRemoveShard(ctx context.Context, name string) (*AdminRemoveResponse, error) {
	var out AdminRemoveResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/admin/shards/"+name, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do issues one request and decodes the answer: 200 into out, anything
// else into the unified envelope returned as *Error. A non-envelope error
// body (a crashed proxy, a non-API server) still yields an *Error with
// CodeInternal and the raw body as the message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("%s %s: reading response: %w", method, path, err)
	}
	if !VerifyDigest(resp.Header.Get(DigestHeader), raw) {
		return fmt.Errorf("%s %s: response digest mismatch (corrupt body)", method, path)
	}
	if resp.StatusCode != http.StatusOK {
		var e Error
		if json.Unmarshal(raw, &e) != nil || e.Message == "" {
			e = Error{
				Schema:  SchemaVersion,
				Code:    CodeForStatus(resp.StatusCode),
				Message: fmt.Sprintf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(raw)),
			}
		}
		return &e
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%s %s: decoding response: %w", method, path, err)
	}
	return nil
}
