// Package api is the single source of truth for the solve service's wire
// contract: every request and response body exchanged between clients
// (cmd/resload, the router's forwarding path, operators' scripts), the
// resident solve service (internal/server) and the sharded routing tier
// (internal/router) is defined here, schema-versioned, and consumed by
// all of them through one set of types — the server cannot drift from the
// clients because they marshal the same structs.
//
// The package also defines the unified error envelope (Error) every
// non-200 answer carries, and a small typed HTTP client (Client) over the
// whole surface, the admin control plane included.
package api

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sparse"
)

// SchemaVersion identifies the request/response layout of the /v1 API
// (the router's /routerz and the /v1/admin surface stamp the same
// version). Bump it on any incompatible change.
const SchemaVersion = 1

// MaxBatchRHS bounds the right-hand sides of one batch request.
const MaxBatchRHS = 64

// InlineCSR carries a matrix by content instead of by named generator
// spec: the standard CSR triplet plus the dimensions. Inline matrices are
// cached under their content fingerprint, so resubmitting the same matrix
// hits the warm artifacts.
type InlineCSR struct {
	Rows   int       `json:"rows"`
	Cols   int       `json:"cols"`
	Rowidx []int     `json:"rowidx"`
	Colid  []int     `json:"colid"`
	Val    []float64 `json:"val"`
}

// ToCSR assembles and structurally validates the matrix.
func (ic *InlineCSR) ToCSR() (*sparse.CSR, error) {
	a := &sparse.CSR{
		Rows: ic.Rows, Cols: ic.Cols,
		Val: ic.Val, Colid: ic.Colid, Rowidx: ic.Rowidx,
	}
	if a.Val == nil {
		a.Val = []float64{}
	}
	if a.Colid == nil {
		a.Colid = []int{}
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("inline matrix: %w", err)
	}
	return a, nil
}

// SolveRequest is the body of POST /v1/solve. Exactly one of Matrix and
// Inline names the system; the remaining fields mirror the scenario axes
// (zero values select the harness defaults: solver cg, scheme
// abft-correction, fault-free).
type SolveRequest struct {
	// Schema must be 0 (current) or SchemaVersion.
	Schema int `json:"schema,omitempty"`
	// Matrix names a generator spec (shared with the campaign records).
	Matrix *harness.MatrixSpec `json:"matrix,omitempty"`
	// Inline carries the matrix by content.
	Inline *InlineCSR `json:"inline,omitempty"`
	// Solver is cg (default), pcg or bicgstab.
	Solver string `json:"solver,omitempty"`
	// Precond is the PCG preconditioner: jacobi (default) or neumann.
	Precond string `json:"precond,omitempty"`
	// Scheme is unprotected, online-detection, abft-detection or
	// abft-correction (default).
	Scheme string `json:"scheme,omitempty"`
	// Alpha is the expected silent errors per iteration (0 = fault-free).
	Alpha float64 `json:"alpha,omitempty"`
	// Tol is the relative residual tolerance (0 = solver default).
	Tol float64 `json:"tol,omitempty"`
	// MaxIters caps the useful iterations (0 = solver default).
	MaxIters int `json:"max_iters,omitempty"`
	// S and D override the model-optimal checkpoint and verification
	// intervals when > 0.
	S int `json:"s,omitempty"`
	D int `json:"d,omitempty"`
	// Seed bases the injector seeding (and the right-hand side unless
	// RHSSeed is set).
	Seed int64 `json:"seed,omitempty"`
	// RHSSeed, when set, seeds the manufactured right-hand side
	// independently of Seed (a pointer so 0 is expressible).
	RHSSeed *int64 `json:"rhs_seed,omitempty"`
	// TimeoutMillis bounds this request's total queue + solve time; 0
	// selects the server default, and the server's maximum clamps it.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// WithDefaults resolves the scenario-axis defaults the same way the
// harness does, so the scenario echoed in the result is fully explicit.
// Clients (cmd/resload) share it to name request cells canonically.
func (r *SolveRequest) WithDefaults() {
	if r.Solver == "" {
		r.Solver = "cg"
	}
	if r.Scheme == "" {
		r.Scheme = "abft-correction"
	}
	if r.Solver == "pcg" && r.Precond == "" {
		r.Precond = "jacobi"
	}
}

// Validate rejects malformed requests before they reach the queue.
func (r *SolveRequest) Validate() error {
	if r.Schema != 0 && r.Schema != SchemaVersion {
		return fmt.Errorf("unsupported schema %d (this server speaks %d)", r.Schema, SchemaVersion)
	}
	if (r.Matrix == nil) == (r.Inline == nil) {
		return fmt.Errorf("exactly one of \"matrix\" and \"inline\" must be set")
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	return r.Scenario(harness.MatrixSpec{}, "request").Validate()
}

// Scenario shapes the request as a harness scenario against the resolved
// matrix spec. The name is derived from the axes and the matrix label, so
// identical requests map to identical scenario records.
func (r *SolveRequest) Scenario(spec harness.MatrixSpec, label string) harness.Scenario {
	sc := harness.Scenario{
		Name:     "serve/" + r.Solver + "/" + r.Scheme + "/" + label,
		Matrix:   spec,
		Solver:   r.Solver,
		Precond:  r.Precond,
		Scheme:   r.Scheme,
		Alpha:    r.Alpha,
		Tol:      r.Tol,
		MaxIters: r.MaxIters,
		S:        r.S,
		D:        r.D,
		Reps:     1,
		Seed:     r.Seed,
	}
	if r.RHSSeed != nil {
		sc = sc.WithRHSSeed(*r.RHSSeed)
	}
	return sc
}

// ResolvedRHSSeed is the seed of the manufactured right-hand side: RHSSeed
// when pinned, the trial seed otherwise.
func (r *SolveRequest) ResolvedRHSSeed() int64 {
	if r.RHSSeed != nil {
		return *r.RHSSeed
	}
	return r.Seed
}

// SolveResponse is the body of a successful (HTTP 200) solve. A solve
// that ran but failed numerically (breakdown, iteration budget) is still a
// 200: SolveError carries the reason and the record reports Failures=1.
type SolveResponse struct {
	Schema int `json:"schema"`
	// Result is the standard campaign record of the single-trial run; its
	// deterministic fields (residual hash included) are bit-identical for
	// repeated identical requests, any worker count and warm or cold
	// caches.
	Result harness.Result `json:"result"`
	// CacheHit reports whether the per-matrix artifacts were already
	// resident.
	CacheHit bool `json:"cache_hit"`
	// QueueMillis and SolveMillis break down the measured wall time.
	QueueMillis float64 `json:"queue_ms"`
	SolveMillis float64 `json:"solve_ms"`
	// Coalesced is the total right-hand-side width of the blocked solve
	// this request was merged into (1 or absent when it ran alone). The
	// result bits are identical either way.
	Coalesced int `json:"coalesced,omitempty"`
	// SolveError is set when the solver itself failed.
	SolveError string `json:"solve_error,omitempty"`
}

// BatchRHS names one right-hand side of a batch request: a trial seed
// (injector seeding, and the manufactured RHS unless RHSSeed overrides it),
// mirroring SolveRequest's Seed/RHSSeed pair per system.
type BatchRHS struct {
	Seed    int64  `json:"seed,omitempty"`
	RHSSeed *int64 `json:"rhs_seed,omitempty"`
}

// ResolvedRHSSeed is the seed of this right-hand side's manufactured
// vector.
func (r *BatchRHS) ResolvedRHSSeed() int64 {
	if r.RHSSeed != nil {
		return *r.RHSSeed
	}
	return r.Seed
}

// BatchSolveRequest is the body of POST /v1/solve/batch: one matrix and
// one set of scenario axes (the embedded SolveRequest, whose own Seed and
// RHSSeed are ignored), solved against every right-hand side in RHS as a
// single blocked solve. Each RHS converges independently and its result is
// bit-identical to solving it alone via /v1/solve.
type BatchSolveRequest struct {
	SolveRequest
	RHS []BatchRHS `json:"rhs"`
}

// Validate rejects malformed batch requests before they reach the queue.
func (r *BatchSolveRequest) Validate() error {
	if len(r.RHS) == 0 {
		return fmt.Errorf("batch request needs at least one entry in \"rhs\"")
	}
	if len(r.RHS) > MaxBatchRHS {
		return fmt.Errorf("batch request carries %d right-hand sides, maximum is %d", len(r.RHS), MaxBatchRHS)
	}
	return r.SolveRequest.Validate()
}

// BatchResult is one right-hand side's outcome inside a batch response,
// in RHS order.
type BatchResult struct {
	// Result is the standard campaign record of this system's trial, with
	// the same determinism guarantees as a single solve.
	Result harness.Result `json:"result"`
	// SolveMillis is the wall time of the whole blocked solve this system
	// ran in (shared across the batch, not per-RHS attribution).
	SolveMillis float64 `json:"solve_ms"`
	// SolveError is set when this system's solve failed.
	SolveError string `json:"solve_error,omitempty"`
}

// BatchSolveResponse is the body of a successful (HTTP 200) batch solve.
type BatchSolveResponse struct {
	Schema   int  `json:"schema"`
	CacheHit bool `json:"cache_hit"`
	// QueueMillis is the time the batch waited for a solver slot.
	QueueMillis float64 `json:"queue_ms"`
	// Coalesced is the total RHS width of the blocked solve that ran,
	// ≥ len(Results) when queued singles were merged in.
	Coalesced int `json:"coalesced"`
	// Results holds one record per requested right-hand side, in order.
	Results []BatchResult `json:"results"`
}

// CacheStats summarises the artifact cache for /v1/stats.
type CacheStats struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Bytes is the estimated resident footprint of the cached matrices
	// and CapacityBytes its budget (0 = unbounded).
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	// TTLEvictions counts entries aged out idle, a subset of Evictions.
	TTLEvictions int64 `json:"ttl_evictions"`
}

// HealthResponse is the body of GET /v1/healthz. Routers use it as the
// active health-probe answer: Status is "ok" or "draining", and the queue
// fields let a prober prefer less-loaded shards.
type HealthResponse struct {
	Schema        int     `json:"schema"`
	Status        string  `json:"status"`
	Shard         string  `json:"shard,omitempty"`
	Draining      bool    `json:"draining"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Tier names for StatuszResponse.Tier.
const (
	TierRouter = "router"
	TierShard  = "shard"
)

// StatuszResponse is the body of GET /v1/statusz, the introspection
// surface both tiers serve under one path: Tier says which one answered,
// and exactly one of Router and Shard carries its typed status. The
// historical per-tier paths (/routerz, /v1/stats) stay as aliases.
type StatuszResponse struct {
	Schema int              `json:"schema"`
	Tier   string           `json:"tier"`
	Build  *BuildInfo       `json:"build,omitempty"`
	Router *RouterzResponse `json:"router,omitempty"`
	Shard  *StatsResponse   `json:"shard,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Schema        int        `json:"schema"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Workers       int        `json:"workers"`
	Concurrency   int        `json:"concurrency"`
	QueueDepth    int        `json:"queue_depth"`
	QueueCapacity int        `json:"queue_capacity"`
	Completed     int64      `json:"completed"`
	Failed        int64      `json:"failed"`
	Rejected      int64      `json:"rejected"`
	Expired       int64      `json:"expired"`
	Draining      bool       `json:"draining"`
	Cache         CacheStats `json:"cache"`
}
