package api

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Machine-readable error codes of the unified envelope. Clients branch on
// these, never on the human-readable message: the codes distinguish
// retryable congestion (saturated, draining) from terminal outcomes
// (bad_request, expired) even where the HTTP status alone is ambiguous.
const (
	// CodeBadRequest marks a malformed or unsupported request (400).
	CodeBadRequest = "bad_request"
	// CodeUnauthorized marks a missing or wrong admin token (401).
	CodeUnauthorized = "unauthorized"
	// CodeForbidden marks an admin call against a router whose admin API
	// is disabled (403).
	CodeForbidden = "forbidden"
	// CodeNotFound marks an unknown resource, e.g. an admin operation
	// naming a shard that is not in the topology (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed marks a wrong HTTP method (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict marks an admin operation the current topology state
	// refuses, e.g. removing the last serving shard (409).
	CodeConflict = "conflict"
	// CodeSaturated marks backpressure: the solve queue (or every routing
	// candidate's queue) is full. Retry after RetryAfterMillis (429).
	CodeSaturated = "saturated"
	// CodeExpired marks a request whose deadline passed while it was
	// still queued; the solve never ran (504).
	CodeExpired = "expired"
	// CodeDraining marks a server or router that is shutting down and
	// refuses new work (503).
	CodeDraining = "draining"
	// CodeUnroutable marks a routed request every candidate shard failed
	// to serve (502).
	CodeUnroutable = "unroutable"
	// CodeInternal marks everything else (5xx).
	CodeInternal = "internal"
)

// Error is the unified JSON error envelope: the body of every non-200
// answer from the solve service, the router and the admin API. It is
// schema-versioned like the success bodies, and it implements error so a
// typed client can return it directly.
type Error struct {
	Schema int `json:"schema"`
	// Code is the machine-readable class (the Code* constants).
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// RetryAfterMillis, when > 0, hints how long a client should back off
	// before retrying (saturated and draining answers set it).
	RetryAfterMillis int `json:"retry_after_ms,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// CodeForStatus maps an HTTP status to the default envelope code, for
// responders that have no more specific classification.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusConflict:
		return CodeConflict
	case http.StatusTooManyRequests:
		return CodeSaturated
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusGatewayTimeout:
		return CodeExpired
	case http.StatusBadGateway:
		return CodeUnroutable
	default:
		return CodeInternal
	}
}

// WriteJSON writes v as the JSON body of the given status, stamped with
// the content digest of the exact bytes written (DigestHeader) so every
// downstream hop can verify end-to-end integrity. The body keeps the
// trailing newline json.Encoder used to emit — existing recorded digests
// and goldens depend on the byte format.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		// Wire types are plain data; a marshal failure is programmer error.
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(DigestHeader, DigestBytes(body))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// WriteError writes the unified envelope. code "" selects the default
// mapping for the status; retryMillis > 0 additionally sets the standard
// Retry-After header (rounded up to whole seconds).
func WriteError(w http.ResponseWriter, status int, code string, err error, retryMillis int) {
	if code == "" {
		code = CodeForStatus(status)
	}
	if retryMillis > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (retryMillis+999)/1000))
	}
	WriteJSON(w, status, &Error{
		Schema:           SchemaVersion,
		Code:             code,
		Message:          err.Error(),
		RetryAfterMillis: retryMillis,
	})
}
