package api

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSSERoundTrip streams events through a real HTTP hop — SSEWriter on
// the server, SSEReader on the client — and checks every frame decodes,
// the terminal digest lands in the trailer, and the trailer matches the
// terminal frame's wire bytes.
func TestSSERoundTrip(t *testing.T) {
	want := []*SolveEvent{
		{Kind: EventIteration, Iteration: 1, Rho: 0.5},
		{Kind: EventDetection, Iteration: 2, Detections: 1, Corrections: 1, RolledBack: true},
		{Kind: EventResult, Result: &SolveResponse{Schema: SchemaVersion}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, err := NewSSEWriter(w)
		if err != nil {
			t.Errorf("NewSSEWriter: %v", err)
			return
		}
		for _, ev := range want {
			cp := *ev
			if err := sw.Send(&cp); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	}))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q, want text/event-stream", ct)
	}
	rd := NewSSEReader(resp.Body)
	var got []*SolveEvent
	var lastData []byte
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, ev)
		lastData = append([]byte(nil), rd.LastFrameData()...)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i, ev := range got {
		if ev.Schema != SchemaVersion {
			t.Errorf("event %d schema %d, want %d", i, ev.Schema, SchemaVersion)
		}
		if ev.Kind != want[i].Kind || ev.Iteration != want[i].Iteration {
			t.Errorf("event %d = %+v, want kind %s iter %d", i, ev, want[i].Kind, want[i].Iteration)
		}
	}
	if !got[len(got)-1].Terminal() {
		t.Error("last event is not terminal")
	}
	// The trailer must repeat the terminal frame's own digest.
	trailer := resp.Trailer.Get(DigestHeader)
	if trailer == "" {
		t.Fatal("no digest trailer after the stream")
	}
	if !VerifyDigest(trailer, lastData) {
		t.Errorf("trailer %q does not verify the terminal frame bytes", trailer)
	}
}

// TestSSEReaderRejectsCorruptFrame flips a byte inside a frame's data
// and requires the per-frame digest in the id field to catch it.
func TestSSEReaderRejectsCorruptFrame(t *testing.T) {
	frame, err := MarshalSSE(&SolveEvent{Kind: EventIteration, Iteration: 3, Rho: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(frame), `"iteration":3`, `"iteration":4`, 1)
	if corrupt == string(frame) {
		t.Fatal("corruption did not apply")
	}
	if _, err := NewSSEReader(strings.NewReader(corrupt)).Next(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("corrupt frame error = %v, want digest mismatch", err)
	}
	// The pristine frame must still decode.
	if _, err := NewSSEReader(strings.NewReader(string(frame))).Next(); err != nil {
		t.Errorf("pristine frame: %v", err)
	}
}

// TestSSEReaderTruncatedMidFrame distinguishes a clean end of stream
// (io.EOF) from a connection that died inside a frame.
func TestSSEReaderTruncatedMidFrame(t *testing.T) {
	frame, err := MarshalSSE(&SolveEvent{Kind: EventIteration, Iteration: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the frame-terminating blank line: the reader must report a
	// truncation, not a clean EOF.
	cut := strings.TrimRight(string(frame), "\n")
	if _, err := NewSSEReader(strings.NewReader(cut)).Next(); err == nil || err == io.EOF {
		t.Errorf("truncated frame error = %v, want a mid-frame truncation error", err)
	}
	if _, err := NewSSEReader(strings.NewReader("")).Next(); err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

// TestSolveStreamClient runs Client.SolveStream against streaming,
// error-terminating and buffered-fallback servers.
func TestSolveStreamClient(t *testing.T) {
	req := &SolveRequest{Solver: "cg", Scheme: "abft-correction"}

	t.Run("result", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if acc := r.Header.Get("Accept"); !strings.Contains(acc, "text/event-stream") {
				t.Errorf("Accept = %q, want text/event-stream", acc)
			}
			sw, _ := NewSSEWriter(w)
			sw.Send(&SolveEvent{Kind: EventIteration, Iteration: 1, Rho: 2})
			sw.Send(&SolveEvent{Kind: EventIteration, Iteration: 2, Rho: 1})
			res := &SolveResponse{Schema: SchemaVersion}
			res.Result.ResidualHash = "fnv1a:feedbeef"
			sw.Send(&SolveEvent{Kind: EventResult, Result: res})
		}))
		defer ts.Close()
		var events int
		resp, err := NewClient(ts.URL).SolveStream(t.Context(), req, func(ev *SolveEvent) error {
			events++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.ResidualHash != "fnv1a:feedbeef" {
			t.Errorf("hash %q", resp.Result.ResidualHash)
		}
		if events != 3 {
			t.Errorf("saw %d events, want 3 (2 iterations + terminal)", events)
		}
	})

	t.Run("error event", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, _ := NewSSEWriter(w)
			sw.Send(&SolveEvent{Kind: EventIteration, Iteration: 1})
			sw.Send(&SolveEvent{Kind: EventError, Error: &Error{
				Schema: SchemaVersion, Code: CodeExpired, Message: "deadline exceeded while queued",
			}})
		}))
		defer ts.Close()
		_, err := NewClient(ts.URL).SolveStream(t.Context(), req, nil)
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeExpired {
			t.Fatalf("error = %v, want *Error with code %q", err, CodeExpired)
		}
	})

	t.Run("buffered fallback", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			res := &SolveResponse{Schema: SchemaVersion}
			res.Result.ResidualHash = "fnv1a:0ddba11"
			WriteJSON(w, http.StatusOK, res)
		}))
		defer ts.Close()
		resp, err := NewClient(ts.URL).SolveStream(t.Context(), req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.ResidualHash != "fnv1a:0ddba11" {
			t.Errorf("hash %q", resp.Result.ResidualHash)
		}
	})

	t.Run("onEvent abort", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, _ := NewSSEWriter(w)
			sw.Send(&SolveEvent{Kind: EventIteration, Iteration: 1})
			sw.Send(&SolveEvent{Kind: EventResult, Result: &SolveResponse{Schema: SchemaVersion}})
		}))
		defer ts.Close()
		abort := errors.New("enough")
		if _, err := NewClient(ts.URL).SolveStream(t.Context(), req, func(*SolveEvent) error { return abort }); !errors.Is(err, abort) {
			t.Errorf("error = %v, want the onEvent abort", err)
		}
	})
}

// TestSummarizeLatencies pins the shared estimator, P999 included.
func TestSummarizeLatencies(t *testing.T) {
	if s := SummarizeLatencies(nil); s.Count != 0 || s.P99Ms != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	ms := make([]float64, 1000)
	for i := range ms {
		ms[i] = float64(i + 1)
	}
	s := SummarizeLatencies(ms)
	if s.Count != 1000 || s.P50Ms != 500 || s.P90Ms != 900 || s.P99Ms != 990 || s.P999Ms != 999 || s.MaxMs != 1000 {
		t.Errorf("summary over 1..1000 = %+v", s)
	}
	if s.MeanMs != 500.5 {
		t.Errorf("mean = %v, want 500.5", s.MeanMs)
	}
}
