package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestClientDecodesEnvelope: a non-200 with a well-formed envelope body
// comes back as *Error with every field intact, reachable via errors.As.
func TestClientDecodesEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusTooManyRequests, CodeSaturated, errors.New("queue full"), 250)
	}))
	defer ts.Close()

	_, err := NewClient(ts.URL).Solve(context.Background(), &SolveRequest{})
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T), want *Error", err, err)
	}
	if e.Schema != SchemaVersion || e.Code != CodeSaturated || e.Message != "queue full" || e.RetryAfterMillis != 250 {
		t.Errorf("decoded envelope %+v", e)
	}
	if e.Error() != "saturated: queue full" {
		t.Errorf("Error() = %q", e.Error())
	}
}

// TestClientSynthesizesEnvelope: a non-200 whose body is not an envelope
// (a crashed proxy, an HTML error page) still yields a typed *Error with
// the status-derived code and the raw body preserved in the message.
func TestClientSynthesizesEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}))
	defer ts.Close()

	_, err := NewClient(ts.URL).Routerz(context.Background())
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T), want *Error", err, err)
	}
	if e.Code != CodeUnroutable || e.Schema != SchemaVersion {
		t.Errorf("synthesized envelope %+v, want code %q", e, CodeUnroutable)
	}
}

// TestClientSendsBearerToken: WithAdminToken attaches the Authorization
// header to every request; without it none is sent.
func TestClientSendsBearerToken(t *testing.T) {
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("Authorization"))
		WriteJSON(w, http.StatusOK, AdminTopologyResponse{Schema: SchemaVersion})
	}))
	defer ts.Close()

	if _, err := NewClient(ts.URL, WithAdminToken("tok")).AdminTopology(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ts.URL).AdminTopology(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "Bearer tok" || got[1] != "" {
		t.Errorf("Authorization headers %q, want [Bearer tok, empty]", got)
	}
}

// TestCodeForStatusCoversEveryMappedStatus pins the status→code table.
func TestCodeForStatusCoversEveryMappedStatus(t *testing.T) {
	want := map[int]string{
		http.StatusBadRequest:          CodeBadRequest,
		http.StatusUnauthorized:        CodeUnauthorized,
		http.StatusForbidden:           CodeForbidden,
		http.StatusNotFound:            CodeNotFound,
		http.StatusMethodNotAllowed:    CodeMethodNotAllowed,
		http.StatusConflict:            CodeConflict,
		http.StatusTooManyRequests:     CodeSaturated,
		http.StatusServiceUnavailable:  CodeDraining,
		http.StatusGatewayTimeout:      CodeExpired,
		http.StatusBadGateway:          CodeUnroutable,
		http.StatusInternalServerError: CodeInternal,
	}
	for status, code := range want {
		if got := CodeForStatus(status); got != code {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, code)
		}
	}
}

// TestWriteErrorSetsRetryAfterHeader: a retry hint surfaces both in the
// envelope (milliseconds) and the standard header (whole seconds, rounded
// up).
func TestWriteErrorSetsRetryAfterHeader(t *testing.T) {
	rr := httptest.NewRecorder()
	WriteError(rr, http.StatusServiceUnavailable, CodeDraining, errors.New("draining"), 1500)
	if got := rr.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want 2 (1500ms rounded up)", got)
	}
	rr = httptest.NewRecorder()
	WriteError(rr, http.StatusBadRequest, "", errors.New("nope"), 0)
	if got := rr.Header().Get("Retry-After"); got != "" {
		t.Errorf("Retry-After %q on a non-retryable error", got)
	}
}
