package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Streaming solve contract. POST /v1/solve with "Accept:
// text/event-stream" answers with schema-versioned server-sent events:
// one frame per solver iteration (kind "iteration"), one per
// detection/correction episode (kind "detection"), and exactly one
// terminal frame — the full SolveResponse (kind "result") or the unified
// error envelope (kind "error"). Every frame carries its own content
// digest in the SSE id field, and the terminal frame's digest is repeated
// in the X-Resilient-Digest HTTP trailer so a buffered client and a
// streaming client verify the same end-to-end integrity contract.

// SolveEvent kinds.
const (
	// EventIteration reports one solver iteration: Iteration and the
	// current residual Rho.
	EventIteration = "iteration"
	// EventDetection reports a fault-detection episode: the detection and
	// correction deltas since the previous episode, and whether the solver
	// rolled back to a checkpoint.
	EventDetection = "detection"
	// EventResult is the terminal success frame; Result carries the same
	// SolveResponse a buffered request would have received, bit-identical
	// deterministic fields included.
	EventResult = "result"
	// EventError is the terminal failure frame; Error carries the same
	// envelope a buffered request would have received as a non-200 body.
	EventError = "error"
)

// Hedging headers. Hedging is transparent to correctness (replicas are
// bit-identical by construction) so it defaults on when the router
// enables it; a client opts a single request out with "X-Resilient-Hedge:
// off" (e.g. resload's unhedged baseline pass).
const (
	// HedgeHeader is the request header controlling per-request hedging.
	HedgeHeader = "X-Resilient-Hedge"
	// HedgeOff is the HedgeHeader value that disables hedging for one
	// request.
	HedgeOff = "off"
	// HedgedHeader is set to "1" on relayed responses that were won by the
	// hedge (the second, late-armed request) rather than the primary.
	HedgedHeader = "X-Resilient-Hedged"
)

// SolveEvent is one frame of a streamed solve. Kind selects which fields
// are meaningful; Schema stamps every frame like any other wire body.
type SolveEvent struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Iteration and Rho report solver progress (kinds iteration and
	// detection).
	Iteration int     `json:"iteration,omitempty"`
	Rho       float64 `json:"rho,omitempty"`
	// Detections/Corrections are the episode deltas (kind detection).
	Detections  int64 `json:"detections,omitempty"`
	Corrections int64 `json:"corrections,omitempty"`
	// RolledBack reports whether the episode rolled back to a checkpoint.
	RolledBack bool `json:"rolled_back,omitempty"`
	// Result is the terminal payload (kind result).
	Result *SolveResponse `json:"result,omitempty"`
	// Error is the terminal failure payload (kind error).
	Error *Error `json:"error,omitempty"`
}

// Terminal reports whether this event ends the stream.
func (e *SolveEvent) Terminal() bool {
	return e.Kind == EventResult || e.Kind == EventError
}

// MarshalSSE encodes one event as a complete SSE frame:
//
//	event: <kind>
//	id: <digest of the data line>
//	data: <compact JSON>
//	<blank line>
//
// The id field carries the frame's own content digest so a decoder can
// verify every frame, not only the terminal one.
func MarshalSSE(ev *SolveEvent) ([]byte, error) {
	if ev.Schema == 0 {
		ev.Schema = SchemaVersion
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: %s\nid: %s\ndata: %s\n\n", ev.Kind, DigestBytes(data), data)
	return b.Bytes(), nil
}

// SSEWriter emits SolveEvents as server-sent events over an HTTP
// response, flushing each frame so clients observe progress live. The
// terminal frame's content digest is recorded in the DigestHeader
// trailer (NewSSEWriter declares it before headers go out).
type SSEWriter struct {
	w       http.ResponseWriter
	f       http.Flusher
	started bool
}

// NewSSEWriter prepares w for an event stream. It returns an error —
// before any header is written — when the ResponseWriter cannot flush, so
// the caller can fall back to the buffered path. Send writes the status
// and stream headers lazily on the first frame.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("response writer cannot stream (no http.Flusher)")
	}
	return &SSEWriter{w: w, f: f}, nil
}

// Send emits one frame and flushes it. For terminal frames (result,
// error) it also stamps the frame's content digest into the DigestHeader
// trailer.
func (s *SSEWriter) Send(ev *SolveEvent) error {
	if !s.started {
		h := s.w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		// Declared before WriteHeader, assigned after the body: net/http
		// sends it as a proper HTTP trailer.
		h.Set("Trailer", DigestHeader)
		s.w.WriteHeader(http.StatusOK)
		s.started = true
	}
	if ev.Schema == 0 {
		ev.Schema = SchemaVersion
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	digest := DigestBytes(data)
	if ev.Terminal() {
		s.w.Header().Set(DigestHeader, digest)
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\nid: %s\ndata: %s\n\n", ev.Kind, digest, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// SSEReader decodes a solve event stream frame by frame, verifying each
// frame's id digest against its data bytes.
type SSEReader struct {
	sc       *bufio.Scanner
	lastData []byte
}

// LastFrameData returns the raw data bytes of the most recent frame Next
// decoded — the exact wire bytes the stream trailer's digest covers.
func (r *SSEReader) LastFrameData() []byte { return r.lastData }

// NewSSEReader wraps an event-stream body.
func NewSSEReader(r io.Reader) *SSEReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxResponseBytes)
	return &SSEReader{sc: sc}
}

// Next returns the next decoded event, io.EOF at a clean end of stream,
// or an error for malformed or corrupt frames. A frame whose id digest
// does not match its data bytes is corrupt — the streaming analogue of a
// body-digest mismatch.
func (r *SSEReader) Next() (*SolveEvent, error) {
	var kind, id string
	var data []byte
	seen := false
	for r.sc.Scan() {
		line := r.sc.Text()
		if line == "" {
			if !seen {
				continue // leading keep-alive blank
			}
			return r.assemble(kind, id, data)
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case strings.HasPrefix(line, ":"):
			// comment/keep-alive line, ignore
		default:
			return nil, fmt.Errorf("malformed SSE line %q", line)
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, err
	}
	if seen {
		// Connection died inside a frame.
		return nil, fmt.Errorf("stream truncated mid-frame")
	}
	return nil, io.EOF
}

func (r *SSEReader) assemble(kind, id string, data []byte) (*SolveEvent, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("SSE frame %q has no data", kind)
	}
	if !VerifyDigest(id, data) {
		return nil, fmt.Errorf("SSE frame digest mismatch (corrupt frame)")
	}
	r.lastData = data
	var ev SolveEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		return nil, fmt.Errorf("decoding SSE frame: %w", err)
	}
	if ev.Schema != SchemaVersion {
		return nil, fmt.Errorf("SSE frame schema %d, want %d", ev.Schema, SchemaVersion)
	}
	if kind != "" && ev.Kind != kind {
		return nil, fmt.Errorf("SSE frame kind %q does not match event line %q", ev.Kind, kind)
	}
	return &ev, nil
}
