package api

import (
	"fmt"

	"repro/internal/sparse"
)

// DigestHeader carries the end-to-end content digest: every JSON body the
// solve service or the router writes is stamped with the FNV-1a 64
// fingerprint of its exact bytes, in the same "fnv1a:%016x" format as the
// harness residual hashes. The router recomputes the digest over every
// buffered shard response before relaying it and treats a mismatch like a
// connection failure (failover to the next ring replica), so a bit flip
// between shard and router can never reach a client. Clients (the typed
// Client, resload) may verify the final hop the same way.
const DigestHeader = "X-Resilient-Digest"

// DigestBytes fingerprints a response body with the repository's FNV-1a
// 64 family (byte-wise, same loop as sparse.FNV1aString).
func DigestBytes(b []byte) string {
	h := uint64(sparse.FNV1aOffset64)
	for _, c := range b {
		h = sparse.FNVMix64(h, uint64(c))
	}
	return fmt.Sprintf("fnv1a:%016x", h)
}

// VerifyDigest recomputes the digest of body and compares it to the
// stamped header value. It reports false only on an actual mismatch: an
// empty stamp (a pre-digest peer) verifies trivially.
func VerifyDigest(stamp string, body []byte) bool {
	return stamp == "" || stamp == DigestBytes(body)
}
