package api

import (
	"math"
	"sort"
)

// LatencySummary is the shared latency digest of a sample set: mean,
// nearest-rank tail percentiles and the maximum, in milliseconds. resload
// reports one per run (and one per hedged/unhedged pass), and the hedge
// CI gate compares two of them.
type LatencySummary struct {
	Count  int     `json:"count,omitempty"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SummarizeLatencies digests a sample set (milliseconds). The slice is
// sorted in place.
func SummarizeLatencies(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	return LatencySummary{
		Count:  len(ms),
		MeanMs: sum / float64(len(ms)),
		P50Ms:  NearestRank(ms, 0.50),
		P90Ms:  NearestRank(ms, 0.90),
		P99Ms:  NearestRank(ms, 0.99),
		P999Ms: NearestRank(ms, 0.999),
		MaxMs:  ms[len(ms)-1],
	}
}

// NearestRank returns the q-th percentile of an ascending-sorted sample
// by the nearest-rank method: the smallest element with at least q·n
// samples at or below it. Ceil (not round) is the textbook definition —
// with 26 samples, p90 is element ⌈0.9·26⌉ = 24, not 23 — and it
// guarantees the result is always an observed sample.
func NearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
