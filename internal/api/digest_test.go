package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDigestBytesFormat(t *testing.T) {
	// FNV-1a of the empty input is the offset basis — a fixed point that
	// pins both the algorithm and the rendered format.
	if got := DigestBytes(nil); got != "fnv1a:cbf29ce484222325" {
		t.Errorf("DigestBytes(nil) = %q, want the FNV-1a offset basis", got)
	}
	a := DigestBytes([]byte(`{"schema":1}`))
	if !strings.HasPrefix(a, "fnv1a:") || len(a) != len("fnv1a:")+16 {
		t.Errorf("digest %q: want fnv1a: plus 16 hex digits", a)
	}
	if b := DigestBytes([]byte(`{"schema":2}`)); b == a {
		t.Errorf("distinct bodies share digest %q", a)
	}
	if again := DigestBytes([]byte(`{"schema":1}`)); again != a {
		t.Errorf("digest not stable: %q vs %q", again, a)
	}
}

func TestVerifyDigest(t *testing.T) {
	body := []byte(`{"schema":1,"served_by":"s0"}` + "\n")
	stamp := DigestBytes(body)
	if !VerifyDigest(stamp, body) {
		t.Error("correct stamp rejected")
	}
	// An empty stamp verifies trivially: pre-digest peers stay routable.
	if !VerifyDigest("", body) {
		t.Error("unstamped response rejected")
	}
	corrupt := append([]byte(nil), body...)
	corrupt[5] ^= 0x01
	if VerifyDigest(stamp, corrupt) {
		t.Error("single-bit corruption passed verification")
	}
	if VerifyDigest(stamp, body[:len(body)-1]) {
		t.Error("truncated body passed verification")
	}
}

// TestWriteJSONStampsDigest pins the producer half of the integrity
// contract: every WriteJSON body carries a digest header that verifies
// over the exact bytes written, trailing newline included.
func TestWriteJSONStampsDigest(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusTeapot, map[string]int{"schema": SchemaVersion})

	if rec.Code != http.StatusTeapot {
		t.Errorf("status %d, want %d", rec.Code, http.StatusTeapot)
	}
	body := rec.Body.Bytes()
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatalf("body %q: want newline-terminated JSON", body)
	}
	stamp := rec.Header().Get(DigestHeader)
	if stamp == "" {
		t.Fatal("no digest header stamped")
	}
	if !VerifyDigest(stamp, body) {
		t.Errorf("stamp %q does not verify over the written body %q", stamp, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var out map[string]int
	if err := json.Unmarshal(body, &out); err != nil || out["schema"] != SchemaVersion {
		t.Errorf("body round-trip failed: %v, %v", out, err)
	}
}
