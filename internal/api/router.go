package api

// RouterzResponse is the body of GET /routerz.
type RouterzResponse struct {
	Schema        int           `json:"schema"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Vnodes        int           `json:"vnodes"`
	Replicas      int           `json:"replicas"`
	Draining      bool          `json:"draining"`
	Shards        []ShardStatus `json:"shards"`
	HealthyShards int           `json:"healthy_shards"`
	// Routed counts requests answered through the ring; Failovers counts
	// attempts past a key's owner; Unroutable counts requests every
	// candidate failed.
	Routed     int64           `json:"routed"`
	Failovers  int64           `json:"failovers"`
	Unroutable int64           `json:"unroutable"`
	Keys       KeyDistribution `json:"keys"`
	// Integrity reports the router's end-to-end response verification.
	Integrity IntegrityStats `json:"integrity"`
	// Hedge reports the tail-latency hedging tier (always present; Enabled
	// is false when the router runs unhedged).
	Hedge HedgeStats `json:"hedge"`
	// Chaos is present only when the router runs with a fault-injection
	// plan (-chaos-plan); it snapshots the injector.
	Chaos *ChaosStats `json:"chaos,omitempty"`
}

// IntegrityStats counts the router's response-integrity verdicts: every
// forwarded shard response is digest- and schema-checked before relay,
// and a corrupt response is treated exactly like a connection failure.
type IntegrityStats struct {
	// DigestVerified counts responses whose stamped digest matched the
	// received bytes.
	DigestVerified int64 `json:"digest_verified"`
	// CorruptResponses counts responses rejected before relay: digest
	// mismatch or schema violation. None of these reached a client.
	CorruptResponses int64 `json:"corrupt_responses"`
	// RetriesSpent counts attempts beyond each request's first, across
	// all causes (connection failure, 5xx, corruption).
	RetriesSpent int64 `json:"retries_spent"`
	// BudgetExhausted counts requests that burned their whole per-request
	// retry budget without a relayable answer.
	BudgetExhausted int64 `json:"budget_exhausted"`
}

// HedgeStats reports the router's hedged-read tier: for each idempotent
// solve the router picks the two healthiest replicas by EWMA latency,
// sends to the best, and arms the second after a P99-derived delay —
// first digest-verified answer wins, the loser's context is cancelled.
type HedgeStats struct {
	Enabled bool `json:"enabled"`
	// BaseDelayMs is the configured floor of the arm delay; MaxDelayMs its
	// ceiling. Between them, the primary shard's observed P99 decides.
	BaseDelayMs float64 `json:"base_delay_ms,omitempty"`
	MaxDelayMs  float64 `json:"max_delay_ms,omitempty"`
	// Armed counts hedges actually launched (primary outlived the delay).
	Armed int64 `json:"armed"`
	// Wins counts hedges whose second request answered first; PrimaryWins
	// counts armed hedges the primary still won.
	Wins        int64 `json:"wins"`
	PrimaryWins int64 `json:"primary_wins"`
	// LosersCanceled counts in-flight loser requests cancelled after a
	// winner was chosen.
	LosersCanceled int64 `json:"losers_canceled"`
	// StreamedPassthrough counts streaming solves relayed on the
	// non-idempotent fast path (never hedged, never retried).
	StreamedPassthrough int64 `json:"streamed_passthrough"`
}

// ChaosStats snapshots a fault injector (router -chaos-plan, or the
// standalone reschaos proxy's /chaosz).
type ChaosStats struct {
	Seed          int64 `json:"seed"`
	Requests      int64 `json:"requests"`
	Passed        int64 `json:"passed"`
	Resets        int64 `json:"resets"`
	Storms503     int64 `json:"storms_503"`
	Kills         int64 `json:"kills"`
	Truncations   int64 `json:"truncations"`
	BitFlips      int64 `json:"bit_flips"`
	LatencySpikes int64 `json:"latency_spikes"`
	// TraceHash is the order-independent XOR-fold of every injection
	// decision (identity, attempt, fault). Two runs of the same plan over
	// the same request multiset produce the same hash — the determinism
	// gate chaos-smoke pins in CI.
	TraceHash string `json:"trace_hash"`
}

// Shard lifecycle states reported by /routerz and the admin API. A shard
// is active when it is on the ring and passing health probes, ejected
// when probes (or passive circuit-breaking) took it out of rotation, and
// draining when an operator latched it out of the ring: new keys route
// past it, in-flight requests finish, and only an admin re-add returns it
// to service — probe outcomes keep updating its health picture but cannot
// clear the latch.
const (
	ShardActive   = "active"
	ShardEjected  = "ejected"
	ShardDraining = "draining"
)

// ShardStatus is one shard's live picture in /routerz.
type ShardStatus struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is the lifecycle state: active, ejected or draining.
	State               string  `json:"state"`
	Healthy             bool    `json:"healthy"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	EWMALatencyMs       float64 `json:"ewma_latency_ms"`
	// P99LatencyMs is the nearest-rank P99 over the shard's recent latency
	// window (0 until enough samples accumulate) — the basis of the hedge
	// arm delay.
	P99LatencyMs        float64 `json:"p99_latency_ms,omitempty"`
	LastError           string  `json:"last_error,omitempty"`
	LastProbeAgeSeconds float64 `json:"last_probe_age_seconds,omitempty"`
	Inflight            int64   `json:"inflight"`
	Routed              int64   `json:"routed"`
	Errors              int64   `json:"errors"`
	// VNodes is the shard's virtual-node count on the ring (0 while
	// draining — a drained shard owns no keys).
	VNodes int `json:"vnodes"`
	// VnodeWeight is the shard's relative ring weight (1.0 = the router's
	// default vnode count; omitted when default).
	VnodeWeight float64 `json:"vnode_weight,omitempty"`
}

// KeyDistribution reports how many distinct routing keys this router has
// seen and which shard each landed on. Tracking is bounded: when
// Saturated is true, Distinct is a floor and keys beyond the bound are
// unattributed.
type KeyDistribution struct {
	Distinct  int            `json:"distinct"`
	Saturated bool           `json:"saturated,omitempty"`
	PerShard  map[string]int `json:"per_shard"`
}

// RouterHealth is the body of the router's own GET /v1/healthz.
type RouterHealth struct {
	Schema        int    `json:"schema"`
	Status        string `json:"status"`
	HealthyShards int    `json:"healthy_shards"`
	TotalShards   int    `json:"total_shards"`
}

// AdminShard is one shard of the admin API's topology picture.
type AdminShard struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is the lifecycle state: active, ejected or draining.
	State   string `json:"state"`
	Healthy bool   `json:"healthy"`
	// Inflight counts requests currently forwarded to this shard — the
	// signal an operator watches reach zero before removing a drained
	// shard.
	Inflight int64 `json:"inflight"`
	// VnodeWeight is the shard's relative ring weight (1.0 when omitted).
	VnodeWeight float64 `json:"vnode_weight,omitempty"`
}

// AdminTopologyResponse is the body of GET /v1/admin/topology.
type AdminTopologyResponse struct {
	Schema   int          `json:"schema"`
	Vnodes   int          `json:"vnodes"`
	Replicas int          `json:"replicas"`
	Shards   []AdminShard `json:"shards"`
}

// AdminAddShardRequest is the body of POST /v1/admin/shards: add a new
// shard to the ring, or re-admit a drained one (matching Name). An empty
// Addr asks the router's shard runtime to materialise the process.
type AdminAddShardRequest struct {
	// Schema must be 0 (current) or SchemaVersion.
	Schema int    `json:"schema,omitempty"`
	Name   string `json:"name"`
	Addr   string `json:"addr,omitempty"`
	// VnodeWeight scales the shard's share of the ring relative to the
	// router's default vnode count (0 or omitted = 1.0). A re-add of a
	// known shard with a different weight rebalances it in place.
	VnodeWeight float64 `json:"vnode_weight,omitempty"`
}

// AdminShardResponse is the body of a successful shard add or drain.
type AdminShardResponse struct {
	Schema int        `json:"schema"`
	Shard  AdminShard `json:"shard"`
}

// AdminRemoveResponse is the body of a successful DELETE
// /v1/admin/shards/{label}.
type AdminRemoveResponse struct {
	Schema  int    `json:"schema"`
	Removed string `json:"removed"`
}
