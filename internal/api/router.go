package api

// RouterzResponse is the body of GET /routerz.
type RouterzResponse struct {
	Schema        int           `json:"schema"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Vnodes        int           `json:"vnodes"`
	Replicas      int           `json:"replicas"`
	Draining      bool          `json:"draining"`
	Shards        []ShardStatus `json:"shards"`
	HealthyShards int           `json:"healthy_shards"`
	// Routed counts requests answered through the ring; Failovers counts
	// attempts past a key's owner; Unroutable counts requests every
	// candidate failed.
	Routed     int64           `json:"routed"`
	Failovers  int64           `json:"failovers"`
	Unroutable int64           `json:"unroutable"`
	Keys       KeyDistribution `json:"keys"`
}

// Shard lifecycle states reported by /routerz and the admin API. A shard
// is active when it is on the ring and passing health probes, ejected
// when probes (or passive circuit-breaking) took it out of rotation, and
// draining when an operator latched it out of the ring: new keys route
// past it, in-flight requests finish, and only an admin re-add returns it
// to service — probe outcomes keep updating its health picture but cannot
// clear the latch.
const (
	ShardActive   = "active"
	ShardEjected  = "ejected"
	ShardDraining = "draining"
)

// ShardStatus is one shard's live picture in /routerz.
type ShardStatus struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is the lifecycle state: active, ejected or draining.
	State               string  `json:"state"`
	Healthy             bool    `json:"healthy"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	EWMALatencyMs       float64 `json:"ewma_latency_ms"`
	LastError           string  `json:"last_error,omitempty"`
	LastProbeAgeSeconds float64 `json:"last_probe_age_seconds,omitempty"`
	Inflight            int64   `json:"inflight"`
	Routed              int64   `json:"routed"`
	Errors              int64   `json:"errors"`
	// VNodes is the shard's virtual-node count on the ring (0 while
	// draining — a drained shard owns no keys).
	VNodes int `json:"vnodes"`
}

// KeyDistribution reports how many distinct routing keys this router has
// seen and which shard each landed on. Tracking is bounded: when
// Saturated is true, Distinct is a floor and keys beyond the bound are
// unattributed.
type KeyDistribution struct {
	Distinct  int            `json:"distinct"`
	Saturated bool           `json:"saturated,omitempty"`
	PerShard  map[string]int `json:"per_shard"`
}

// RouterHealth is the body of the router's own GET /v1/healthz.
type RouterHealth struct {
	Schema        int    `json:"schema"`
	Status        string `json:"status"`
	HealthyShards int    `json:"healthy_shards"`
	TotalShards   int    `json:"total_shards"`
}

// AdminShard is one shard of the admin API's topology picture.
type AdminShard struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is the lifecycle state: active, ejected or draining.
	State   string `json:"state"`
	Healthy bool   `json:"healthy"`
	// Inflight counts requests currently forwarded to this shard — the
	// signal an operator watches reach zero before removing a drained
	// shard.
	Inflight int64 `json:"inflight"`
}

// AdminTopologyResponse is the body of GET /v1/admin/topology.
type AdminTopologyResponse struct {
	Schema   int          `json:"schema"`
	Vnodes   int          `json:"vnodes"`
	Replicas int          `json:"replicas"`
	Shards   []AdminShard `json:"shards"`
}

// AdminAddShardRequest is the body of POST /v1/admin/shards: add a new
// shard to the ring, or re-admit a drained one (matching Name). An empty
// Addr asks the router's shard runtime to materialise the process.
type AdminAddShardRequest struct {
	// Schema must be 0 (current) or SchemaVersion.
	Schema int    `json:"schema,omitempty"`
	Name   string `json:"name"`
	Addr   string `json:"addr,omitempty"`
}

// AdminShardResponse is the body of a successful shard add or drain.
type AdminShardResponse struct {
	Schema int        `json:"schema"`
	Shard  AdminShard `json:"shard"`
}

// AdminRemoveResponse is the body of a successful DELETE
// /v1/admin/shards/{label}.
type AdminRemoveResponse struct {
	Schema  int    `json:"schema"`
	Removed string `json:"removed"`
}
