package abft

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitflip"
	"repro/internal/checksum"
	"repro/internal/sparse"
)

// harness bundles a protected matrix with a fresh input and reference.
type harness struct {
	p    *Protected
	x    []float64
	xRef checksum.Vector
	y    []float64
	orig *sparse.CSR // pristine copy for restoration checks
}

func newHarness(t *testing.T, n int, mode Mode, seed int64) *harness {
	t.Helper()
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.1, DiagShift: 1, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1000))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p := NewProtected(a, mode)
	// The unit tests exercise low-order bit flips, so they use the tight
	// componentwise tolerance; the norm-policy behaviour (cheap, harmless
	// false negatives on low-order flips) has its own tests below.
	p.SetPolicy(TolComponent)
	return &harness{
		p:    p,
		x:    x,
		xRef: checksum.NewVector(x),
		y:    make([]float64, n),
		orig: a.Clone(),
	}
}

func TestNormPolicyCleanPasses(t *testing.T) {
	h := newHarness(t, 80, DetectCorrect, 41)
	h.p.SetPolicy(TolNorm)
	if out := h.run(); out.Detected {
		t.Fatalf("norm policy false positive: %+v", out)
	}
}

func TestNormPolicyCatchesSignificantErrors(t *testing.T) {
	h := newHarness(t, 80, DetectCorrect, 42)
	h.p.SetPolicy(TolNorm)
	h.p.A.Val[10] = bitflip.Float64(h.p.A.Val[10], 62) // exponent: huge change
	out := h.run()
	if !out.Detected || !out.Corrected {
		t.Fatalf("norm policy missed a significant Val error: %+v", out)
	}
	h.checkClean(t)
}

func TestNormPolicyFalseNegativesAreHarmless(t *testing.T) {
	// A flip of a low mantissa bit may fall under the Eq. (9) tolerance:
	// the paper accepts these because the perturbation is below rounding
	// scale. Verify the undetected case really is harmless.
	h := newHarness(t, 80, DetectCorrect, 43)
	h.p.SetPolicy(TolNorm)
	orig := h.p.A.Val[5]
	h.p.A.Val[5] = bitflip.Float64(orig, 2) // last ulps
	out := h.run()
	if out.Detected {
		return // tight run: detected anyway, also fine
	}
	if math.Abs(h.p.A.Val[5]-orig) > 1e-9*(1+math.Abs(orig)) {
		t.Fatal("undetected flip was not small")
	}
}

// run performs the protected product and verification.
func (h *harness) run() Outcome {
	sr := h.p.MulVec(h.y, h.x)
	return h.p.Verify(h.y, h.x, h.xRef, sr)
}

// runCorrupt performs the product, applies corrupt to the state (inputs
// were already corruptible before the product; pass pre=true corruption via
// corruptPre), then verifies.
func (h *harness) runWithPostCorrupt(corrupt func()) Outcome {
	sr := h.p.MulVec(h.y, h.x)
	if corrupt != nil {
		corrupt()
	}
	return h.p.Verify(h.y, h.x, h.xRef, sr)
}

func (h *harness) checkClean(t *testing.T) {
	t.Helper()
	// After a correction the matrix must match the pristine copy to within
	// last-ulp rounding of the repairs.
	if len(h.p.A.Val) != len(h.orig.Val) {
		t.Fatal("matrix shape changed")
	}
	for k := range h.p.A.Val {
		if d := math.Abs(h.p.A.Val[k] - h.orig.Val[k]); d > 1e-9*(1+math.Abs(h.orig.Val[k])) {
			t.Fatalf("Val[%d] = %v, want %v", k, h.p.A.Val[k], h.orig.Val[k])
		}
		if h.p.A.Colid[k] != h.orig.Colid[k] {
			t.Fatalf("Colid[%d] = %d, want %d", k, h.p.A.Colid[k], h.orig.Colid[k])
		}
	}
	for i := range h.p.A.Rowidx {
		if h.p.A.Rowidx[i] != h.orig.Rowidx[i] {
			t.Fatalf("Rowidx[%d] = %d, want %d", i, h.p.A.Rowidx[i], h.orig.Rowidx[i])
		}
	}
	// And y must equal the true product.
	want := make([]float64, len(h.y))
	h.orig.MulVec(want, h.x)
	for i := range want {
		if d := math.Abs(h.y[i] - want[i]); d > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, h.y[i], want[i])
		}
	}
}

func TestCleanProductPasses(t *testing.T) {
	for _, mode := range []Mode{Detect, DetectCorrect} {
		h := newHarness(t, 60, mode, 1)
		out := h.run()
		if out.Detected {
			t.Fatalf("mode %v: false positive on clean product: %+v", mode, out)
		}
	}
}

func TestNoFalsePositivesManyRuns(t *testing.T) {
	// The Theorem-2 tolerance must never flag a fault-free product, for
	// varied matrices and inputs (paper Section 5.1).
	for seed := int64(0); seed < 25; seed++ {
		h := newHarness(t, 40+int(seed)*7, DetectCorrect, seed)
		if out := h.run(); out.Detected {
			t.Fatalf("seed %d: false positive %+v", seed, out)
		}
	}
}

func TestNoFalsePositivesLaplacian(t *testing.T) {
	// Zero-column-sum matrices exercise the shifted checksum logic.
	a := sparse.RandomGraphLaplacian(80, 4, 0, 3)
	p := NewProtected(a, DetectCorrect)
	x := make([]float64, 80)
	rng := rand.New(rand.NewSource(4))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 80)
	sr := p.MulVec(y, x)
	if out := p.Verify(y, x, checksum.NewVector(x), sr); out.Detected {
		t.Fatalf("false positive on Laplacian: %+v", out)
	}
}

// --- single-error correction, one test per error class ---

func TestCorrectValError(t *testing.T) {
	for _, bit := range []uint{20, 40, 51, 55, 61, 63} {
		h := newHarness(t, 50, DetectCorrect, int64(bit))
		k := 17 % len(h.p.A.Val)
		h.p.A.Val[k] = bitflip.Float64(h.p.A.Val[k], bit)
		out := h.run()
		if !out.Detected || !out.Corrected {
			t.Fatalf("bit %d: Val error not corrected: %+v", bit, out)
		}
		if out.Class != ClassVal {
			t.Fatalf("bit %d: class = %v, want Val", bit, out.Class)
		}
		h.checkClean(t)
	}
}

func TestCorrectValErrorNaN(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 5)
	h.p.A.Val[3] = math.NaN()
	out := h.run()
	if !out.Corrected || out.Class != ClassVal {
		t.Fatalf("NaN Val not corrected: %+v", out)
	}
	h.checkClean(t)
}

func TestCorrectColidInRange(t *testing.T) {
	// Flip a low bit so the corrupted index stays in range: the zC̃ == 2
	// path of the decoder.
	for seed := int64(0); seed < 10; seed++ {
		h := newHarness(t, 64, DetectCorrect, seed)
		a := h.p.A
		// Find an entry whose bit-1 flip stays in range and lands on a
		// column not already present in the row.
		fixed := false
		for k := range a.Colid {
			nc := bitflip.Int(a.Colid[k], 1)
			if nc < 0 || nc >= a.Cols || nc == a.Colid[k] {
				continue
			}
			row := rowOf(a, k)
			if hasCol(a, row, nc) {
				continue
			}
			a.Colid[k] = nc
			fixed = true
			break
		}
		if !fixed {
			t.Fatal("no suitable Colid flip found")
		}
		out := h.run()
		if !out.Corrected || out.Class != ClassColid {
			t.Fatalf("seed %d: in-range Colid error: %+v", seed, out)
		}
		h.checkClean(t)
	}
}

func TestCorrectColidOutOfRange(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 7)
	a := h.p.A
	k := 11 % len(a.Colid)
	a.Colid[k] = bitflip.Int(a.Colid[k], 25) // way out of range
	out := h.run()
	if !out.Corrected || out.Class != ClassColid {
		t.Fatalf("out-of-range Colid error: %+v", out)
	}
	h.checkClean(t)
}

func TestCorrectRowidxError(t *testing.T) {
	for _, idx := range []int{0, 10, 25, 50} {
		for _, bit := range []uint{0, 2, 5, 20} {
			h := newHarness(t, 50, DetectCorrect, int64(idx)*31+int64(bit))
			a := h.p.A
			a.Rowidx[idx] = bitflip.Int(a.Rowidx[idx], bit)
			out := h.run()
			if !out.Corrected || out.Class != ClassRowidx {
				t.Fatalf("idx %d bit %d: Rowidx error: %+v", idx, bit, out)
			}
			h.checkClean(t)
		}
	}
}

func TestCorrectXError(t *testing.T) {
	for _, bit := range []uint{30, 50, 55, 62, 63} {
		h := newHarness(t, 50, DetectCorrect, int64(bit)+100)
		h.x[13] = bitflip.Float64(h.x[13], bit)
		out := h.run()
		if !out.Corrected || out.Class != ClassX {
			t.Fatalf("bit %d: x error: %+v", bit, out)
		}
		h.checkClean(t)
	}
}

func TestCorrectXErrorNaN(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 9)
	h.x[20] = math.NaN()
	out := h.run()
	if !out.Corrected || out.Class != ClassX {
		t.Fatalf("NaN x error: %+v", out)
	}
	h.checkClean(t)
}

func TestCorrectComputationError(t *testing.T) {
	// Corrupt y after the product: a computation error.
	for _, bit := range []uint{30, 50, 62, 63} {
		h := newHarness(t, 50, DetectCorrect, int64(bit)+200)
		out := h.runWithPostCorrupt(func() {
			h.y[7] = bitflip.Float64(h.y[7], bit)
		})
		if !out.Corrected || out.Class != ClassComputation {
			t.Fatalf("bit %d: computation error: %+v", bit, out)
		}
		h.checkClean(t)
	}
}

func TestCorrectComputationErrorNaN(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 11)
	out := h.runWithPostCorrupt(func() { h.y[31] = math.Inf(1) })
	if !out.Corrected || out.Class != ClassComputation {
		t.Fatalf("Inf computation error: %+v", out)
	}
	h.checkClean(t)
}

// --- detection-only mode ---

func TestDetectModeDetectsButDoesNotCorrect(t *testing.T) {
	corruptions := []struct {
		name string
		do   func(h *harness)
	}{
		{"Val", func(h *harness) { h.p.A.Val[5] = bitflip.Float64(h.p.A.Val[5], 60) }},
		{"Rowidx", func(h *harness) { h.p.A.Rowidx[8] = bitflip.Int(h.p.A.Rowidx[8], 3) }},
		{"x", func(h *harness) { h.x[9] = bitflip.Float64(h.x[9], 61) }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			h := newHarness(t, 50, Detect, 31)
			c.do(h)
			out := h.run()
			if !out.Detected {
				t.Fatal("error not detected")
			}
			if out.Corrected {
				t.Fatal("Detect mode must not correct")
			}
		})
	}
}

// --- double errors: detected, not corrected (rollback signal) ---

func TestDoubleErrorsDetectedNotCorrected(t *testing.T) {
	cases := []struct {
		name string
		do   func(h *harness)
	}{
		{"twoVal", func(h *harness) {
			h.p.A.Val[3] = bitflip.Float64(h.p.A.Val[3], 58)
			h.p.A.Val[40] = bitflip.Float64(h.p.A.Val[40], 58)
		}},
		{"valAndX", func(h *harness) {
			h.p.A.Val[3] = bitflip.Float64(h.p.A.Val[3], 58)
			h.x[5] = bitflip.Float64(h.x[5], 58)
		}},
		{"twoRowidx", func(h *harness) {
			h.p.A.Rowidx[4] = bitflip.Int(h.p.A.Rowidx[4], 2)
			h.p.A.Rowidx[20] = bitflip.Int(h.p.A.Rowidx[20], 3)
		}},
		{"twoX", func(h *harness) {
			h.x[5] = bitflip.Float64(h.x[5], 59)
			h.x[25] = bitflip.Float64(h.x[25], 59)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHarness(t, 50, DetectCorrect, 77)
			c.do(h)
			out := h.run()
			if !out.Detected {
				t.Fatal("double error not detected")
			}
			if out.Corrected {
				t.Fatal("double error must not be reported corrected")
			}
		})
	}
}

// --- statistics ---

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(t, 40, DetectCorrect, 13)
	h.run() // clean
	h.p.A.Val[2] = bitflip.Float64(h.p.A.Val[2], 60)
	h.run() // corrected
	s := h.p.Stats()
	if s.Products != 2 || s.Detections != 1 || s.Corrections != 1 || s.Rollbacks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Double error → rollback.
	h.p.A.Val[2] = bitflip.Float64(h.p.A.Val[2], 60)
	h.x[1] = bitflip.Float64(h.x[1], 60)
	h.run()
	s = h.p.Stats()
	if s.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1 (stats %+v)", s.Rollbacks, s)
	}
}

// --- the paper's shifted no-copy test ---

func TestShiftedTestCleanPasses(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 17)
	h.p.MulVec(h.y, h.x)
	xPrime := append([]float64(nil), h.x...)
	if !h.p.ShiftedTest(h.y, h.x, xPrime) {
		t.Fatal("shifted test false positive on clean product")
	}
}

func TestShiftedTestCatchesXErrorInZeroSumColumn(t *testing.T) {
	// On a graph Laplacian every unshifted column checksum is zero, so the
	// unshifted test cᵀx = Σy cannot see an error in x — the shift fixes
	// exactly this (paper Section 3.2).
	a := sparse.RandomGraphLaplacian(60, 4, 0, 21)
	p := NewProtected(a, DetectCorrect)
	rng := rand.New(rand.NewSource(22))
	x := make([]float64, 60)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xPrime := append([]float64(nil), x...)
	y := make([]float64, 60)

	// Corrupt x AFTER taking the pristine copy, then compute y from the
	// corrupted x (memory fault before the product).
	x[10] += 3.5
	p.MulVec(y, x)

	// Unshifted comparison: C1ᵀx′ vs Σy. C1 is all zeros, so both sides
	// see no difference from the x corruption → undetectable.
	var c1xp float64
	for j := range xPrime {
		c1xp += p.CS.C1[j] * xPrime[j]
	}
	// The shifted test must detect it.
	if p.ShiftedTest(y, x, xPrime) {
		t.Fatal("shifted test missed an x error in a zero-sum column")
	}
}

func TestShiftedTestCatchesValError(t *testing.T) {
	h := newHarness(t, 50, DetectCorrect, 23)
	h.p.A.Val[4] = bitflip.Float64(h.p.A.Val[4], 60)
	h.p.MulVec(h.y, h.x)
	xPrime := append([]float64(nil), h.x...)
	if h.p.ShiftedTest(h.y, h.x, xPrime) {
		t.Fatal("shifted test missed a Val error")
	}
}

// --- flop accounting ---

func TestFlopCounts(t *testing.T) {
	h := newHarness(t, 30, DetectCorrect, 29)
	if h.p.FlopsMulVec() <= h.p.A.FlopsMulVec() {
		t.Fatal("protected product must cost more than the plain one")
	}
	det := NewProtected(h.orig.Clone(), Detect)
	if det.FlopsVerify() >= h.p.FlopsVerify() {
		t.Fatal("Detect verification must be cheaper than DetectCorrect")
	}
}

// --- helpers ---

func rowOf(a *sparse.CSR, k int) int {
	for i := 0; i < a.Rows; i++ {
		if k >= a.Rowidx[i] && k < a.Rowidx[i+1] {
			return i
		}
	}
	return -1
}

func hasCol(a *sparse.CSR, row, col int) bool {
	for k := a.Rowidx[row]; k < a.Rowidx[row+1]; k++ {
		if a.Colid[k] == col {
			return true
		}
	}
	return false
}

func TestModeString(t *testing.T) {
	if Detect.String() != "abft-detect" || DetectCorrect.String() != "abft-correct" {
		t.Fatal("mode names wrong")
	}
	if ClassVal.String() != "Val" || ClassNone.String() != "none" {
		t.Fatal("class names wrong")
	}
}
