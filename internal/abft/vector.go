package abft

import (
	"math"

	"repro/internal/checksum"
)

// VectorGuard is the reliable two-row checksum shadow of a solver vector.
// It generalises the paper's protection of the SpMxV input x (auxiliary
// copy x′ plus checksum c_x) uniformly to the other iteration vectors
// (r and x in CG): the guard is refreshed — in reliable mode, as the paper
// assumes for all checksum operations — whenever the vector is rewritten by
// a verified operation, and checked at each verification point. A single
// memory fault between refresh and check is detected (Detect mode) or
// located and repaired in place (DetectCorrect mode).
type VectorGuard struct {
	ref  checksum.Vector
	mode Mode
}

// NewGuard captures the checksum of v, assumed fault-free at this moment.
func NewGuard(v []float64, mode Mode) *VectorGuard {
	return &VectorGuard{ref: checksum.NewVector(v), mode: mode}
}

// Refresh re-captures the checksum after a verified write of v.
func (g *VectorGuard) Refresh(v []float64) { g.ref = checksum.NewVector(v) }

// Reset re-arms the guard over a new vector and mode, as a fresh NewGuard
// would (workspace reuse).
func (g *VectorGuard) Reset(v []float64, mode Mode) {
	g.ref = checksum.NewVector(v)
	g.mode = mode
}

// Ref returns the current reference checksum (used by Protected.Verify for
// the SpMxV input).
func (g *VectorGuard) Ref() checksum.Vector { return g.ref }

// Check verifies v against the reference. In DetectCorrect mode a single
// corrupted entry is located from the defect ratio and repaired in place
// (including Inf/NaN poisoning, reconstructed from the first checksum row).
func (g *VectorGuard) Check(v []float64) Outcome {
	d1, d2 := g.ref.Defect(v)
	t1, t2 := checksum.VectorTolerance(v)
	bad := exceeds(d1, t1) || (g.mode == DetectCorrect && exceeds(d2, t2))
	if !bad {
		return Outcome{}
	}
	if g.mode == Detect {
		return Outcome{Detected: true, Class: ClassX}
	}
	return g.correct(v, d1, d2)
}

func (g *VectorGuard) correct(v []float64, d1, d2 float64) Outcome {
	fail := Outcome{Detected: true, Class: ClassMultiple}

	d := -1
	if !finite(d1) || !finite(d2) {
		// A poisoned entry (Inf/NaN) cannot be located from the ratio; scan.
		d = suspectIndex(v)
	} else {
		if d1 == 0 {
			return fail
		}
		pos := d2 / d1 // (d+1) for a single error at index d
		r := math.Round(pos)
		if math.Abs(pos-r) > math.Max(1e-8*math.Abs(pos), 0.05) {
			return fail
		}
		d = int(r) - 1
	}
	if d < 0 || d >= len(v) {
		return fail
	}
	// Reconstruct the original entry from the first checksum row by
	// exclusion. This is exact to within Σ|vᵢ| rounding regardless of the
	// corruption magnitude; the naive repair v[d] += d1 loses the original
	// value entirely when the corruption delta dwarfs it (a high exponent
	// bit flip turns an O(1) entry into O(1e19): the ulp of the delta is
	// then larger than the value being restored).
	var rest float64
	for i, x := range v {
		if i != d {
			rest += x
		}
	}
	if !finite(rest) {
		return fail
	}
	v[d] = g.ref.S1 - rest
	return g.recheck(v)
}

func (g *VectorGuard) recheck(v []float64) Outcome {
	d1, d2 := g.ref.Defect(v)
	t1, t2 := checksum.VectorTolerance(v)
	if exceeds(d1, t1) || exceeds(d2, t2) {
		return Outcome{Detected: true, Class: ClassMultiple}
	}
	return Outcome{Detected: true, Corrected: true, Class: ClassX}
}

// FlopsCheck returns the per-check flop cost of a guard over a length-n
// vector: the two weighted sums plus the tolerance pass.
func FlopsCheck(mode Mode, n int) int64 {
	rows := int64(1)
	if mode == DetectCorrect {
		rows = 2
	}
	return rows * 4 * int64(n)
}

// FlopsRefresh returns the flop cost of refreshing a guard.
func FlopsRefresh(n int) int64 { return 3 * int64(n) }
