package abft

import (
	"math/rand"
	"testing"

	"repro/internal/bitflip"
	"repro/internal/checksum"
	"repro/internal/sparse"
)

// TestRandomSingleFaultCampaign fires hundreds of random single bit flips —
// uniformly over Val, Colid, Rowidx, x and y, like the paper's injector —
// at protected products and requires that every flip is either corrected,
// flagged for rollback, or provably harmless (below the detection
// tolerance with a negligible effect on the product).
func TestRandomSingleFaultCampaign(t *testing.T) {
	const trials = 400
	rng := rand.New(rand.NewSource(99))

	var corrected, rolledBack, undetected, harmlessMiss int
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(50)
		a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.15, DiagShift: 1, Seed: int64(trial)})
		p := NewProtected(a, DetectCorrect)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xRef := checksum.NewVector(x)
		y := make([]float64, n)
		truth := make([]float64, n)
		aClean := a.Clone()
		aClean.MulVec(truth, x)
		xClean := append([]float64(nil), x...)

		// Choose a target uniformly over the words.
		nnz := a.NNZ()
		total := nnz*2 + len(a.Rowidx) + 2*n // Val, Colid, Rowidx, x, y
		w := rng.Intn(total)
		postCompute := false
		switch {
		case w < nnz:
			a.Val[w] = bitflip.Float64(a.Val[w], uint(rng.Intn(64)))
		case w < 2*nnz:
			a.Colid[w-nnz] = bitflip.Int(a.Colid[w-nnz], uint(rng.Intn(25)))
		case w < 2*nnz+len(a.Rowidx):
			a.Rowidx[w-2*nnz] = bitflip.Int(a.Rowidx[w-2*nnz], uint(rng.Intn(25)))
		case w < 2*nnz+len(a.Rowidx)+n:
			x[w-2*nnz-len(a.Rowidx)] = bitflip.Float64(x[w-2*nnz-len(a.Rowidx)], uint(rng.Intn(64)))
		default:
			postCompute = true
		}

		sr := p.MulVec(y, x)
		if postCompute {
			i := w - 2*nnz - len(a.Rowidx) - n
			y[i] = bitflip.Float64(y[i], uint(rng.Intn(64)))
		}
		out := p.Verify(y, x, xRef, sr)

		switch {
		case out.Corrected:
			corrected++
			// After correction the product must be (approximately) right.
			for i := range truth {
				if diff := abs(y[i] - truth[i]); diff > 1e-6*(1+abs(truth[i])) {
					t.Fatalf("trial %d: corrected but y[%d]=%v want %v", trial, i, y[i], truth[i])
				}
			}
		case out.Detected:
			rolledBack++
		default:
			undetected++
			// An undetected flip must be harmless: the product and the
			// state must be near the truth (the paper's false negatives —
			// low-order mantissa flips below the rounding tolerance).
			ok := true
			for i := range truth {
				if abs(y[i]-truth[i]) > 1e-4*(1+abs(truth[i])) {
					ok = false
					break
				}
			}
			for i := range x {
				if abs(x[i]-xClean[i]) > 1e-4*(1+abs(xClean[i])) {
					ok = false
				}
			}
			if !ok {
				harmlessMiss++
			}
		}
	}

	t.Logf("campaign: %d corrected, %d rollback, %d undetected (harmless), %d harmful misses",
		corrected, rolledBack, undetected, harmlessMiss)
	if corrected == 0 {
		t.Fatal("campaign exercised no corrections")
	}
	if harmlessMiss > 0 {
		t.Fatalf("%d harmful undetected faults", harmlessMiss)
	}
	// Forward recovery is the whole point: most single faults must be
	// corrected rather than rolled back.
	if float64(corrected) < 0.5*float64(corrected+rolledBack) {
		t.Fatalf("only %d/%d detected faults corrected", corrected, corrected+rolledBack)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
