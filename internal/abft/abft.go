// Package abft implements the paper's Algorithm 2: an ABFT-protected sparse
// matrix–vector product over CSR storage that detects up to two silent
// errors and corrects a single one striking
//
//   - the Val array (a nonzero value),
//   - the Colid array (a column index),
//   - the Rowidx array (a row pointer),
//   - the input vector x, or
//   - the computation of y = Ax itself (equivalently, the output y).
//
// Detection compares three families of checksums (paper Theorem 1):
//
//	(iii) the running weighted sum sr of the Rowidx entries touched during
//	      the product against the reliable checksum cr;
//	(i)   the weighted sums of y against the reliable column checksums
//	      applied to x (defects dx);
//	(ii)  the weighted sums of x against the reliable reference captured
//	      when x was last verified (defects dx′ — the paper uses the
//	      auxiliary copy x′ and the shifted checksum c for the same purpose).
//
// Under the two-row weighting W = [1 … 1; 1 2 … n], a single error of value
// δ at position d produces the defect pair (δ, (d+1)·δ), so the position is
// the ratio of the defects and the value is the first defect: that is the
// forward-recovery decoder implemented in correct.go.
//
// The package also provides VectorGuard (vector.go), the uniform extension
// of the x-protection to the other solver vectors, and the paper's shifted
// no-copy detection test (ShiftedTest) that works even for matrices with
// zero column sums such as graph Laplacians.
//
// Selective reliability: everything stored inside Protected and VectorGuard
// (checksum rows, cr, k, tolerances) lives in "reliable" memory and is never
// struck by the fault injector, matching the paper's model.
package abft

import (
	"math"

	"repro/internal/checksum"
	"repro/internal/sparse"
)

// Mode selects the protection level.
type Mode int

const (
	// Detect uses a single checksum row: any single error is detected but
	// cannot be located, so the caller must roll back (ABFT-Detection).
	Detect Mode = iota
	// DetectCorrect uses two checksum rows: up to two errors are detected
	// and a single error is located and repaired in place, enabling forward
	// recovery (ABFT-Correction).
	DetectCorrect
)

// String returns the scheme name used in reports.
func (m Mode) String() string {
	if m == Detect {
		return "abft-detect"
	}
	return "abft-correct"
}

// ErrorClass classifies where a detected error struck.
type ErrorClass int

// Error classes reported by Verify.
const (
	ClassNone        ErrorClass = iota
	ClassComputation            // the product itself (an entry of y)
	ClassVal                    // a matrix nonzero value
	ClassColid                  // a matrix column index
	ClassRowidx                 // a matrix row pointer
	ClassX                      // the input vector
	ClassMultiple               // more than one error (uncorrectable)
)

// String returns a short label for the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassComputation:
		return "computation"
	case ClassVal:
		return "Val"
	case ClassColid:
		return "Colid"
	case ClassRowidx:
		return "Rowidx"
	case ClassX:
		return "x"
	case ClassMultiple:
		return "multiple"
	default:
		return "unknown"
	}
}

// Outcome reports the result of a protected product's verification.
type Outcome struct {
	// Detected is true when any checksum test failed.
	Detected bool
	// Corrected is true when the error was repaired in place (forward
	// recovery). Only possible in DetectCorrect mode for single errors.
	Corrected bool
	// Class is the located error class (best effort; ClassMultiple when the
	// defects are inconsistent with a single error).
	Class ErrorClass
}

// Stats accumulates verification outcomes over a protected matrix lifetime.
type Stats struct {
	Products     int64 // protected products performed
	Detections   int64 // products with at least one failed test
	Corrections  int64 // single errors repaired forward
	Rollbacks    int64 // detections left to the caller (uncorrectable or Detect mode)
	PerClass     [ClassMultiple + 1]int64
	FalseCorrect int64 // corrections whose re-verification failed (counted as rollbacks too)
}

// TolerancePolicy selects how the rounding tolerances of the checksum
// comparisons are computed.
type TolerancePolicy int

const (
	// TolNorm uses the paper's Eq. (9): a norm bound whose matrix part is
	// precomputed once, so each verification costs only the max-norms of x
	// and y. Looser (more false negatives on low-order bit flips, which the
	// paper shows are harmless) but cheap — this is the default, matching
	// the paper's choice and its cost model.
	TolNorm TolerancePolicy = iota
	// TolComponent uses the componentwise bound of Eq. (7) with
	// precomputed |w|ᵀ|A| rows: tighter by orders of magnitude but costs an
	// extra O(n) pass per verification. Used by the ablation experiments.
	TolComponent
)

// Protected wraps a live (corruptible) CSR matrix with its reliable
// checksum encoding.
type Protected struct {
	// A is the live matrix: the fault injector strikes its arrays directly.
	A *sparse.CSR
	// CS is the reliable checksum encoding computed from A when it was known
	// to be good.
	CS *checksum.Matrix

	mode   Mode
	policy TolerancePolicy
	// eps is the integer-proximity threshold for the position ratios
	// (paper Section 3.2); defaults to 1e-8.
	eps   float64
	stats Stats

	// Precomputed norm-tolerance factors (TolNorm): tol = factor · ‖·‖∞.
	tolX1Fac, tolX2Fac float64 // × ‖x‖∞, covers C_rᵀx rounding incl. shift
	tolY1Fac, tolY2Fac float64 // × ‖y‖∞, covers w_rᵀy rounding
	tolP1Fac, tolP2Fac float64 // × ‖x‖∞, covers the reference-sum defects

	// scratch for correction (avoid per-verify allocations)
	cPrime1, cPrime2 []float64
}

// tolSafety widens the Eq. (9) norm bound: the bound tracks the dominant
// rounding terms but can be undercut by ~20%% in edge regimes (observed near
// CG convergence, where the defect is pure accumulated rounding on a tiny
// iterate); the safety factor converts those marginal cases into the
// harmless-false-negative bucket instead of spurious detections.
const tolSafety = 4

// NewProtected computes the checksum encoding of a (assumed fault-free at
// this moment) and returns the protected wrapper with the TolNorm policy.
func NewProtected(a *sparse.CSR, mode Mode) *Protected {
	p := &Protected{
		A:    a,
		mode: mode,
		eps:  1e-8,
	}
	p.Reencode()
	return p
}

// Renew re-targets a protected wrapper at a (possibly different) live
// matrix, resetting mode, policy, tolerances and statistics to the state a
// fresh NewProtected would produce while reusing the checksum storage.
// Workspaces use it so repeated protected solves allocate nothing.
func (p *Protected) Renew(a *sparse.CSR, mode Mode) {
	p.A = a
	p.mode = mode
	p.policy = TolNorm
	p.eps = 1e-8
	p.stats = Stats{}
	p.Reencode()
}

// Reencode rebuilds the reliable checksum encoding from the live matrix.
// The resilient drivers call it after a forward repair of the matrix (the
// reconstructed entry matches the original only to rounding, so the
// bitwise C == C′ identity used by the error decoder must be re-anchored)
// and after a rollback (the restored matrix predates any later repairs).
func (p *Protected) Reencode() {
	p.CS = checksum.NewMatrixInto(p.CS, p.A)
	n := float64(p.CS.N)
	g := tolSafety * 2 * checksum.Gamma(2*p.CS.N)
	p.tolX1Fac = g * n * (p.CS.Norm1 + math.Abs(p.CS.K))
	p.tolX2Fac = g * n * n * p.CS.Norm1
	p.tolY1Fac = g * n
	p.tolY2Fac = g * n * n
	p.tolP1Fac = g * n
	p.tolP2Fac = g * n * n
}

// SetPolicy selects the tolerance policy (TolNorm by default).
func (p *Protected) SetPolicy(policy TolerancePolicy) { p.policy = policy }

// Mode returns the protection mode.
func (p *Protected) Mode() Mode { return p.mode }

// Stats returns a copy of the accumulated statistics.
func (p *Protected) Stats() Stats { return p.stats }

// SetEpsilon overrides the integer-proximity threshold used by the decoders.
func (p *Protected) SetEpsilon(eps float64) { p.eps = eps }

// RowSums holds the runtime Rowidx counters accumulated during a product
// (the paper's sr), to be passed to Verify.
type RowSums struct {
	S1, S2 float64
}

// MulVec computes y ← Ax over the possibly corrupted arrays with the
// runtime Rowidx checksums fused into the product traversal (the separate
// O(n) pass over Rowidx is gone; each entry is accumulated exactly once, in
// index order, so sr is bitwise identical to the unfused two-pass code). It
// never panics on corrupted indices: out-of-range row pointers are clamped
// and out-of-range column indices contribute nothing — the checksum tests
// flag the corruption afterwards.
//
// The output checksums are deliberately NOT fused into the product: the
// defect tests must re-read y at verification time, because the window
// between the product and its verification is part of the protection
// contract — a memory fault striking y (or a deferred computation-error
// injection) in that window must be caught by Verify, and sums captured at
// product time would silently absorb it. Verify instead reads y and x once
// each (see defects).
func (p *Protected) MulVec(y, x []float64) RowSums {
	a := p.A
	n := a.Rows
	nnz := len(a.Val)
	var sr RowSums
	for i := 0; i < n; i++ {
		lo, hi := a.Rowidx[i], a.Rowidx[i+1]
		fv := float64(lo)
		sr.S1 += fv
		sr.S2 += float64(i+1) * fv
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		var s float64
		for k := lo; k < hi; k++ {
			if ind := a.Colid[k]; uint(ind) < uint(len(x)) {
				s += a.Val[k] * x[ind]
			}
		}
		y[i] = s
	}
	fv := float64(a.Rowidx[n])
	sr.S1 += fv
	sr.S2 += float64(n+1) * fv
	return sr
}

// MulVecBlock computes ys[j] ← A·xs[j] for every column in one traversal of
// the possibly corrupted arrays, with the runtime Rowidx checksums fused in.
// Each row's pointer pair is read and accumulated into sr exactly once — in
// the same index order as MulVec — and each column's product accumulates
// left-to-right with the same clamping and column-index guards, so every
// output column and the returned sr are bitwise identical to k separate
// MulVec calls (sr depends only on Rowidx, so one accumulation serves all
// columns). The per-column output checksums are, as in MulVec, deliberately
// NOT captured here: each column's Verify must re-read its y so the window
// between product and verification stays protected.
func (p *Protected) MulVecBlock(ys, xs [][]float64) RowSums {
	a := p.A
	n := a.Rows
	nnz := len(a.Val)
	var sr RowSums
	for i := 0; i < n; i++ {
		lo, hi := a.Rowidx[i], a.Rowidx[i+1]
		fv := float64(lo)
		sr.S1 += fv
		sr.S2 += float64(i+1) * fv
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		for j := range xs {
			x := xs[j]
			var s float64
			for k := lo; k < hi; k++ {
				if ind := a.Colid[k]; uint(ind) < uint(len(x)) {
					s += a.Val[k] * x[ind]
				}
			}
			ys[j][i] = s
		}
	}
	fv := float64(a.Rowidx[n])
	sr.S1 += fv
	sr.S2 += float64(n+1) * fv
	return sr
}

// defects computes the dx and dx′ defect pairs and their tolerances.
//
//	dx[r]  = w_rᵀ y − C_rᵀ x        (error in A or in the computation)
//	dxp[r] = w_rᵀ xRef − w_rᵀ x     (error in x relative to its reference)
//
// This is the fused verification kernel: everything derived from y (the two
// weighted sums, ‖y‖∞ and — under TolComponent — the rounding masses) is
// accumulated in ONE pass over y, and everything derived from x (C₁ᵀx,
// C₂ᵀx, the reference sums, ‖x‖∞ and the componentwise masses) in ONE pass
// over x, replacing the historical five-to-seven separate passes. Each
// accumulator keeps the exact summation order of its former standalone
// loop, so every defect and tolerance — and therefore every detection
// outcome — is bitwise unchanged.
func (p *Protected) defects(y, x []float64, xRef checksum.Vector) (dx1, dx2, tolx1, tolx2, dxp1, dxp2, tolp1, tolp2 float64) {
	comp := p.policy == TolComponent

	var sy1, sy2, normY, ay1, ay2 float64
	for i, v := range y {
		sy1 += v
		sy2 += float64(i+1) * v
		if v > normY {
			normY = v
		} else if -v > normY {
			normY = -v
		}
		if comp {
			av := math.Abs(v)
			ay1 += av
			ay2 += float64(i+1) * av
		}
	}

	c1, c2 := p.CS.C1, p.CS.C2
	absC1, absC2 := p.CS.AbsC1, p.CS.AbsC2
	var c1x, c2x, sx1, sx2, normX, ac1, ac2, ax1, ax2 float64
	for j, xj := range x {
		c1x += c1[j] * xj
		c2x += c2[j] * xj
		sx1 += xj
		sx2 += float64(j+1) * xj
		if xj > normX {
			normX = xj
		} else if -xj > normX {
			normX = -xj
		}
		if comp {
			ax := math.Abs(xj)
			ac1 += absC1[j] * ax
			ac2 += absC2[j] * ax
			ax1 += ax
			ax2 += float64(j+1) * ax
		}
	}

	dx1 = sy1 - c1x
	dx2 = sy2 - c2x
	dxp1 = xRef.S1 - sx1
	dxp2 = xRef.S2 - sx2

	if comp {
		// Componentwise bound (paper Eq. (7)) plus the rounding mass of the
		// weighted sums of y — the same quantities ToleranceComponentBoth,
		// roundTolY and VectorTolerance produce, from the fused passes.
		gM := 2 * checksum.Gamma(2*p.CS.N)
		gY := 2 * checksum.Gamma(len(y))
		gX := 2 * checksum.Gamma(len(x))
		tolx1 = gM*(ac1+math.Abs(p.CS.K)*ax1) + gY*ay1
		tolx2 = gM*ac2 + gY*ay2
		tolp1 = gX * ax1
		tolp2 = gX * ax2
		return
	}
	// TolNorm (paper Eq. (9)): the matrix factors are precomputed; each
	// verification only needs the two max-norms.
	tolx1 = p.tolX1Fac*normX + p.tolY1Fac*normY
	tolx2 = p.tolX2Fac*normX + p.tolY2Fac*normY
	tolp1 = p.tolP1Fac * normX
	tolp2 = p.tolP2Fac * normX
	return
}

// roundTolY bounds the rounding of the weighted sum of y itself.
func roundTolY(y []float64, row int) float64 {
	var s float64
	for i, v := range y {
		av := math.Abs(v)
		if row == 2 {
			av *= float64(i + 1)
		}
		s += av
	}
	return 2 * checksum.Gamma(len(y)) * s
}

// Verify runs the checksum tests on a completed product and, in
// DetectCorrect mode, attempts forward recovery of a single error. xRef is
// the reliable checksum of x captured when x was last known good (the
// paper's auxiliary copy x′ serves this role). On successful correction the
// corrupted array (A, x or y) has been repaired in place.
func (p *Protected) Verify(y, x []float64, xRef checksum.Vector, sr RowSums) Outcome {
	p.stats.Products++
	out := p.verify(y, x, xRef, sr, true)
	if out.Detected {
		p.stats.Detections++
		p.stats.PerClass[out.Class]++
		if out.Corrected {
			p.stats.Corrections++
		} else {
			p.stats.Rollbacks++
		}
	}
	return out
}

// verify implements one detection/correction pass. allowRepair guards the
// recursion: after a repair we re-verify once, and a second failure means
// multiple errors struck.
func (p *Protected) verify(y, x []float64, xRef checksum.Vector, sr RowSums, allowRepair bool) Outcome {
	// Test (iii): Rowidx checksums — exact integer comparison.
	dr1 := p.CS.CR1 - sr.S1
	dr2 := p.CS.CR2 - sr.S2
	if dr1 != 0 || dr2 != 0 {
		if p.mode == Detect || !allowRepair {
			cls := ClassRowidx
			if !allowRepair {
				cls = ClassMultiple
			}
			return Outcome{Detected: true, Class: cls}
		}
		return p.correctRowidx(y, x, xRef, dr1, dr2)
	}

	// Tests (i)/(ii): column checksum defects. Non-finite defects (Inf/NaN
	// poisoning from exponent-bit flips) always count as detections.
	dx1, dx2, tolx1, tolx2, dxp1, dxp2, tolp1, tolp2 := p.defects(y, x, xRef)
	dxBad := exceeds(dx1, tolx1) || (p.mode == DetectCorrect && exceeds(dx2, tolx2))
	dxpBad := exceeds(dxp1, tolp1) || (p.mode == DetectCorrect && exceeds(dxp2, tolp2))

	switch {
	case !dxBad && !dxpBad:
		return Outcome{}
	case p.mode == Detect || !allowRepair:
		cls := ClassComputation
		if dxpBad {
			cls = ClassX
		}
		if dxBad && dxpBad {
			cls = ClassMultiple
		}
		return Outcome{Detected: true, Class: cls}
	case dxpBad && !finite(dxp1):
		// A non-finite entry of x poisons the dx sums too; repair x from
		// the reference checksum before judging the rest.
		return p.repairNonFiniteX(y, x, xRef)
	case dxBad && dxpBad:
		// A single finite error cannot fail both families: x errors leave y
		// consistent with the corrupted x; matrix/computation errors leave
		// x consistent with its reference.
		return Outcome{Detected: true, Class: ClassMultiple}
	case dxpBad:
		return p.correctX(y, x, xRef, dxp1, dxp2)
	default:
		return p.correctMatrixOrComputation(y, x, xRef, dx1, dx2)
	}
}

// nearestInt returns the nearest integer to v and whether v is close enough
// to it to be trusted as an error position. Positions are integers spaced 1
// apart, so the absolute floor of 0.05 tolerates rounding noise on small
// defects; a mislocated repair is caught by the mandatory re-verification,
// which turns it into a rollback rather than a silent corruption.
func (p *Protected) nearestInt(v float64) (int, bool) {
	r := math.Round(v)
	if math.Abs(v-r) > math.Max(p.eps*math.Abs(v), 0.05) {
		return 0, false
	}
	if math.Abs(r) > 1e15 {
		return 0, false
	}
	return int(r), true
}

// ShiftedTest implements the paper's no-reference detection test (Theorem 1
// conditions i–ii) using the shifted checksum c = C1 + k and the auxiliary
// copy xPrime of x:
//
//	(i)  (C1+k)ᵀ x  == Σy + k·Σx
//	(ii) (C1+k)ᵀ x′ == Σy + k·Σx
//
// The shift k makes errors striking x detectable even in columns whose
// unshifted checksum is zero (e.g. every column of a graph Laplacian).
// It returns true when both tests pass within the rounding tolerance.
func (p *Protected) ShiftedTest(y, x, xPrime []float64) bool {
	sy, _ := checksum.Sums(y)
	sx, _ := checksum.Sums(x)
	k := p.CS.K
	rhs := sy + k*sx

	var lhs, lhsPrime float64
	for j := range x {
		c := p.CS.C1[j] + k
		lhs += c * x[j]
		lhsPrime += c * xPrime[j]
	}
	tol := p.CS.ToleranceComponent(1, x) + roundTolY(y, 1) + 2*checksum.Gamma(len(x))*math.Abs(k)*sumAbs(x)
	tolPrime := p.CS.ToleranceComponent(1, xPrime) + roundTolY(y, 1) + 2*checksum.Gamma(len(x))*math.Abs(k)*sumAbs(xPrime)
	return math.Abs(lhs-rhs) <= tol && math.Abs(lhsPrime-rhs) <= tolPrime
}

func sumAbs(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// FlopsMulVec returns the flop count of the protected product itself
// (identical to the plain product plus the O(n) sr accumulation).
func (p *Protected) FlopsMulVec() int64 {
	return p.A.FlopsMulVec() + 4*int64(len(p.A.Rowidx))
}

// FlopsVerify returns the per-product verification overhead in flops:
// roughly 3 length-n weighted sums per checksum row (Σy, Cᵀx, tolerance
// pass) plus the x-reference defects. Detect mode uses one row,
// DetectCorrect two — the paper's O(kn) overhead.
func (p *Protected) FlopsVerify() int64 {
	n := int64(p.CS.N)
	rows := int64(1)
	if p.mode == DetectCorrect {
		rows = 2
	}
	return rows * 8 * n
}
