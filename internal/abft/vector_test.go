package abft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitflip"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 5
	}
	return v
}

func TestGuardCleanPasses(t *testing.T) {
	v := randVec(100, 1)
	g := NewGuard(v, DetectCorrect)
	if out := g.Check(v); out.Detected {
		t.Fatalf("false positive: %+v", out)
	}
}

func TestGuardDetectsSingleError(t *testing.T) {
	v := randVec(100, 2)
	g := NewGuard(v, Detect)
	v[37] = bitflip.Float64(v[37], 60)
	out := g.Check(v)
	if !out.Detected || out.Corrected {
		t.Fatalf("detect mode: %+v", out)
	}
}

func TestGuardCorrectsSingleError(t *testing.T) {
	for _, bit := range []uint{40, 52, 58, 62, 63} {
		v := randVec(100, 3)
		orig := append([]float64(nil), v...)
		g := NewGuard(v, DetectCorrect)
		v[71] = bitflip.Float64(v[71], bit)
		out := g.Check(v)
		if !out.Detected || !out.Corrected {
			t.Fatalf("bit %d: %+v", bit, out)
		}
		if d := math.Abs(v[71] - orig[71]); d > 1e-9*(1+math.Abs(orig[71])) {
			t.Fatalf("bit %d: repaired value %v, want %v", bit, v[71], orig[71])
		}
	}
}

func TestGuardCorrectsNaN(t *testing.T) {
	v := randVec(64, 4)
	orig := v[10]
	g := NewGuard(v, DetectCorrect)
	v[10] = math.NaN()
	out := g.Check(v)
	if !out.Corrected {
		t.Fatalf("NaN not corrected: %+v", out)
	}
	if math.Abs(v[10]-orig) > 1e-9*(1+math.Abs(orig)) {
		t.Fatalf("repaired %v, want %v", v[10], orig)
	}
}

func TestGuardCorrectsInf(t *testing.T) {
	v := randVec(64, 5)
	orig := v[0]
	g := NewGuard(v, DetectCorrect)
	v[0] = math.Inf(-1)
	if out := g.Check(v); !out.Corrected {
		t.Fatalf("Inf not corrected: %+v", out)
	}
	if math.Abs(v[0]-orig) > 1e-9*(1+math.Abs(orig)) {
		t.Fatal("bad repair")
	}
}

func TestGuardDoubleErrorUncorrectable(t *testing.T) {
	v := randVec(100, 6)
	g := NewGuard(v, DetectCorrect)
	v[3] += 7
	v[90] -= 2
	out := g.Check(v)
	if !out.Detected || out.Corrected {
		t.Fatalf("double error: %+v", out)
	}
}

func TestGuardDoubleNaNUncorrectable(t *testing.T) {
	v := randVec(50, 7)
	g := NewGuard(v, DetectCorrect)
	v[1] = math.NaN()
	v[2] = math.NaN()
	out := g.Check(v)
	if !out.Detected || out.Corrected {
		t.Fatalf("double NaN: %+v", out)
	}
}

func TestGuardRefresh(t *testing.T) {
	v := randVec(50, 8)
	g := NewGuard(v, DetectCorrect)
	v[9] = 123 // legitimate rewrite
	g.Refresh(v)
	if out := g.Check(v); out.Detected {
		t.Fatalf("refresh did not absorb the write: %+v", out)
	}
}

// Property: any significant single-entry corruption of a random vector is
// corrected back to the original value (within rounding).
func TestGuardCorrectionProperty(t *testing.T) {
	f := func(seed int64, idxRaw uint16, delta float64) bool {
		if delta != delta || math.IsInf(delta, 0) {
			return true
		}
		n := 20 + int(idxRaw)%80
		idx := int(idxRaw) % n
		v := randVec(n, seed)
		// Significant relative to the tolerance: scale the perturbation.
		if math.Abs(delta) < 1e-3 {
			delta = math.Copysign(1e-3+math.Abs(delta), delta+1)
		}
		orig := v[idx]
		g := NewGuard(v, DetectCorrect)
		v[idx] += delta
		out := g.Check(v)
		if !out.Corrected {
			return false
		}
		return math.Abs(v[idx]-orig) <= 1e-6*(1+math.Abs(orig))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGuardFlops(t *testing.T) {
	if FlopsCheck(Detect, 100) >= FlopsCheck(DetectCorrect, 100) {
		t.Fatal("detect check must be cheaper")
	}
	if FlopsRefresh(100) <= 0 {
		t.Fatal("refresh flops must be positive")
	}
}
