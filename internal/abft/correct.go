package abft

import (
	"math"

	"repro/internal/checksum"
)

// This file implements the forward-recovery decoders of the paper's
// Section 3.2 (procedure CorrectErrors of Algorithm 2). Each decoder
// locates a single error from the two-row checksum defects, repairs the
// corrupted word in place, recomputes the affected part of the product and
// re-verifies the full test battery once. A failed re-verification means
// the single-error assumption was violated and the caller must roll back.

// exceeds reports whether a defect is beyond its tolerance. Non-finite
// defects (a bit flip in an exponent can turn a value into ±Inf or NaN,
// which poisons every sum it enters) always count as detections: a plain
// |d| > tol comparison is false for NaN and would mask the error.
func exceeds(d, tol float64) bool {
	return math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > tol
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// correctRowidx repairs a single corrupted row pointer. The defect pair is
// (−δ, −(j+1)·δ) for a corruption of +δ at index j, so j is recovered from
// the ratio and δ from the first component. Only rows j−1 and j are
// affected by a row-pointer move, so only those two output entries need to
// be recomputed (the paper recomputes the same neighbourhood).
func (p *Protected) correctRowidx(y, x []float64, xRef checksum.Vector, dr1, dr2 float64) Outcome {
	fail := Outcome{Detected: true, Class: ClassMultiple}
	if dr1 == 0 {
		// S1 untouched but S2 defective: impossible for a single error.
		return fail
	}
	pos1, ok := p.nearestInt(dr2 / dr1)
	if !ok {
		return fail
	}
	j := pos1 - 1 // weights are 1-based
	if j < 0 || j >= len(p.A.Rowidx) {
		return fail
	}
	delta, ok := p.nearestInt(dr1)
	if !ok {
		return fail
	}
	p.A.Rowidx[j] += delta

	// Recompute the two rows adjacent to the repaired boundary.
	n := p.A.Rows
	for _, row := range []int{j - 1, j} {
		if row >= 0 && row < n {
			y[row] = p.robustRow(row, x)
		}
	}
	sr := p.recomputeRowSums()
	out := p.verify(y, x, xRef, sr, false)
	if out.Detected {
		p.stats.FalseCorrect++
		return fail
	}
	return Outcome{Detected: true, Corrected: true, Class: ClassRowidx}
}

// correctX repairs a single corrupted entry of the input vector. The defect
// pair against the reliable reference is (−δ, −(d+1)·δ); after repairing
// x[d] the product is recomputed in full (the paper subtracts δ·A[:,d],
// which is the same O(nnz) cost through column access in CSR).
func (p *Protected) correctX(y, x []float64, xRef checksum.Vector, dxp1, dxp2 float64) Outcome {
	fail := Outcome{Detected: true, Class: ClassMultiple}
	if dxp1 == 0 {
		return fail
	}
	pos1, ok := p.nearestInt(dxp2 / dxp1)
	if !ok {
		return fail
	}
	d := pos1 - 1
	if d < 0 || d >= len(x) {
		return fail
	}
	// Reconstruct the original entry by exclusion from the reference sum:
	// robust to corruption deltas that dwarf the original value (see
	// VectorGuard.correct for the rounding argument).
	var rest float64
	for i, v := range x {
		if i != d {
			rest += v
		}
	}
	if !finite(rest) {
		return fail
	}
	x[d] = xRef.S1 - rest
	sr := p.MulVec(y, x)
	out := p.verify(y, x, xRef, sr, false)
	if out.Detected {
		p.stats.FalseCorrect++
		return fail
	}
	return Outcome{Detected: true, Corrected: true, Class: ClassX}
}

// correctMatrixOrComputation distinguishes and repairs a single error in the
// computation of y, in Val or in Colid, following the paper's case analysis
// on the number of nonzero columns of C̃ = C − C′ where C′ = WᵀÃ is the
// checksum recomputed from the live (possibly corrupted) matrix:
//
//	zC̃ = 0 → the matrix is intact: the error is in y[d]; recompute it.
//	zC̃ = 1 → a Val entry in row d, column f is corrupted (or a Colid entry
//	          was knocked out of range, losing its column contribution).
//	zC̃ = 2 → a Colid entry moved a value from one column to the other.
//	zC̃ > 2 → more than one error: uncorrectable.
//
// C′ is recomputed with exactly the accumulation order of
// checksum.NewMatrix, so intact columns compare bit-identical and the
// zero-column count needs no tolerance.
func (p *Protected) correctMatrixOrComputation(y, x []float64, xRef checksum.Vector, dx1, dx2 float64) Outcome {
	fail := Outcome{Detected: true, Class: ClassMultiple}

	cp1, cp2 := p.recomputeColChecksums()
	var diffCols []int
	for j := 0; j < p.CS.N; j++ {
		if p.CS.C1[j] != cp1[j] || p.CS.C2[j] != cp2[j] {
			diffCols = append(diffCols, j)
			if len(diffCols) > 2 {
				return fail
			}
		}
	}

	// Locate the affected row from the defect ratio where possible; with
	// non-finite defects fall back to scanning for the poisoned entry.
	d := -1
	if finite(dx1) && finite(dx2) && dx1 != 0 {
		if pos1, ok := p.nearestInt(dx2 / dx1); ok {
			d = pos1 - 1
		}
	}

	switch len(diffCols) {
	case 0:
		// Pure computation error: the matrix is intact, so the defect lives
		// in y. If the ratio did not localise it (non-finite defects), scan
		// y for a single non-finite entry.
		if d < 0 || d >= p.A.Rows {
			d = singleNonFinite(y)
			if d < 0 {
				return fail
			}
		}
		y[d] = p.robustRow(d, x)
		return p.finish(y, x, xRef, ClassComputation)

	case 1:
		f := diffCols[0]
		ct1 := p.CS.C1[f] - cp1[f]
		ct2 := p.CS.C2[f] - cp2[f]
		// The column defect ratio localises the row even when the dx ratio
		// could not (e.g. NaN poisoning of the weighted sums of y).
		if finite(ct1) && finite(ct2) && ct1 != 0 {
			if rowPos, ok := p.nearestInt(ct2 / ct1); ok {
				rd := rowPos - 1
				if d >= 0 && rd != d && finite(dx1) {
					return fail // inconsistent localisations ⇒ multi-error
				}
				d = rd
			}
		}
		if d < 0 || d >= p.A.Rows {
			// Non-finite Val entry: locate it by scanning row ranges.
			if k, row := p.singleNonFiniteVal(); k >= 0 {
				if p.A.Colid[k] != f {
					return fail
				}
				p.A.Val[k] = p.CS.C1[f] - p.colSumExcluding(f, k)
				y[row] = p.robustRow(row, x)
				return p.finish(y, x, xRef, ClassVal)
			}
			return fail
		}
		// Val repair: find the entry of row d at column f and reconstruct it
		// from the reliable column checksum by exclusion (robust to any
		// corruption magnitude, including Inf/NaN).
		for k := p.A.Rowidx[d]; k < p.A.Rowidx[d+1]; k++ {
			if p.A.Colid[k] == f {
				p.A.Val[k] = p.CS.C1[f] - p.colSumExcluding(f, k)
				y[d] = p.robustRow(d, x)
				return p.finish(y, x, xRef, ClassVal)
			}
		}
		// No such entry: the column contribution was lost entirely, which
		// happens when a Colid entry was corrupted to an out-of-range value.
		// Restore the first out-of-range index in row d to column f.
		for k := p.A.Rowidx[d]; k < p.A.Rowidx[d+1]; k++ {
			if c := p.A.Colid[k]; c < 0 || c >= p.A.Cols {
				p.A.Colid[k] = f
				y[d] = p.robustRow(d, x)
				return p.finish(y, x, xRef, ClassColid)
			}
		}
		return fail

	case 2:
		if d < 0 || d >= p.A.Rows {
			return fail
		}
		f1, f2 := diffCols[0], diffCols[1]
		// A value moved between the two columns within row d. Try each
		// candidate position: tentatively move it back, recompute the row
		// and re-verify; revert on failure. Floating-point rounding makes
		// checksum-arithmetic validation unreliable, so the re-verification
		// is the arbiter.
		for k := p.A.Rowidx[d]; k < p.A.Rowidx[d+1]; k++ {
			cur := p.A.Colid[k]
			var oth int
			switch cur {
			case f1:
				oth = f2
			case f2:
				oth = f1
			default:
				continue
			}
			p.A.Colid[k] = oth
			oldY := y[d]
			y[d] = p.robustRow(d, x)
			sr := p.recomputeRowSums()
			if out := p.verify(y, x, xRef, sr, false); !out.Detected {
				return Outcome{Detected: true, Corrected: true, Class: ClassColid}
			}
			p.A.Colid[k] = cur // revert and try the next candidate
			y[d] = oldY
		}
		return fail

	default:
		return fail
	}
}

// finish re-verifies after a repair and returns the final outcome.
func (p *Protected) finish(y, x []float64, xRef checksum.Vector, cls ErrorClass) Outcome {
	sr := p.recomputeRowSums()
	out := p.verify(y, x, xRef, sr, false)
	if out.Detected {
		p.stats.FalseCorrect++
		return Outcome{Detected: true, Class: ClassMultiple}
	}
	return Outcome{Detected: true, Corrected: true, Class: cls}
}

// repairNonFiniteX restores a single non-finite entry of x from the
// reference checksum: the original value is S1ref − Σ_{i≠d} xᵢ. Returns
// false when the corruption is not a unique non-finite entry.
func (p *Protected) repairNonFiniteX(y, x []float64, xRef checksum.Vector) Outcome {
	fail := Outcome{Detected: true, Class: ClassMultiple}
	d := suspectIndex(x)
	if d < 0 {
		return fail
	}
	var rest float64
	for i, v := range x {
		if i != d {
			rest += v
		}
	}
	if !finite(rest) {
		return fail
	}
	x[d] = xRef.S1 - rest
	sr := p.MulVec(y, x)
	out := p.verify(y, x, xRef, sr, false)
	if out.Detected {
		p.stats.FalseCorrect++
		return fail
	}
	return Outcome{Detected: true, Corrected: true, Class: ClassX}
}

// singleNonFinite returns the index of the unique non-finite entry of v, or
// -1 if there is none or more than one.
func singleNonFinite(v []float64) int {
	idx := -1
	for i, x := range v {
		if !finite(x) {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	return idx
}

// suspectIndex locates the entry to blame when the checksum defects are
// non-finite: the unique non-finite entry if there is one, otherwise a
// huge-but-finite entry whose *weighted* sum overflowed (e.g. an entry of
// −1.5e308 stays finite while (i+1)·(−1.5e308) is −Inf). Returns -1 when no
// single culprit stands out.
func suspectIndex(v []float64) int {
	if d := singleNonFinite(v); d >= 0 {
		return d
	}
	best, bi := 0.0, -1
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, bi = a, i
		}
	}
	if best > 1e200 {
		return bi
	}
	return -1
}

// singleNonFiniteVal returns the position k and row of the unique
// non-finite Val entry, or (-1, -1).
func (p *Protected) singleNonFiniteVal() (k, row int) {
	k, row = -1, -1
	a := p.A
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.Rowidx[i], a.Rowidx[i+1]
		if lo < 0 {
			lo = 0
		}
		if hi > len(a.Val) {
			hi = len(a.Val)
		}
		for kk := lo; kk < hi; kk++ {
			if !finite(a.Val[kk]) {
				if k >= 0 {
					return -1, -1
				}
				k, row = kk, i
			}
		}
	}
	return k, row
}

// colSumExcluding returns Σ over row entries with column f of Val, skipping
// position exclude — used to reconstruct a poisoned Val entry from the
// reliable column checksum.
func (p *Protected) colSumExcluding(f, exclude int) float64 {
	a := p.A
	var s float64
	for k, c := range a.Colid {
		if k != exclude && c == f {
			s += a.Val[k]
		}
	}
	return s
}

// robustRow recomputes one output entry tolerating corrupted indices.
func (p *Protected) robustRow(i int, x []float64) float64 {
	a := p.A
	lo, hi := a.Rowidx[i], a.Rowidx[i+1]
	if lo < 0 {
		lo = 0
	}
	if hi > len(a.Val) {
		hi = len(a.Val)
	}
	var s float64
	for k := lo; k < hi; k++ {
		if ind := a.Colid[k]; uint(ind) < uint(len(x)) {
			s += a.Val[k] * x[ind]
		}
	}
	return s
}

// recomputeRowSums rebuilds the runtime Rowidx checksums from the live
// array.
func (p *Protected) recomputeRowSums() RowSums {
	var sr RowSums
	for idx, v := range p.A.Rowidx {
		fv := float64(v)
		sr.S1 += fv
		sr.S2 += float64(idx+1) * fv
	}
	return sr
}

// recomputeColChecksums rebuilds C′ = WᵀÃ from the live matrix with the
// same accumulation order as checksum.NewMatrix, so that on intact columns
// the recomputed sums are bit-identical to the reliable ones and the
// comparison needs no tolerance. Out-of-range column indices are skipped
// (their contribution is lost, surfacing as a single-column defect).
func (p *Protected) recomputeColChecksums() ([]float64, []float64) {
	n := p.CS.N
	if len(p.cPrime1) != n {
		p.cPrime1 = make([]float64, n)
		p.cPrime2 = make([]float64, n)
	}
	cp1, cp2 := p.cPrime1, p.cPrime2
	for j := 0; j < n; j++ {
		cp1[j] = 0
		cp2[j] = 0
	}
	a := p.A
	for i := 0; i < a.Rows; i++ {
		w2 := float64(i + 1)
		lo, hi := a.Rowidx[i], a.Rowidx[i+1]
		if lo < 0 {
			lo = 0
		}
		if hi > len(a.Val) {
			hi = len(a.Val)
		}
		for k := lo; k < hi; k++ {
			j := a.Colid[k]
			if uint(j) >= uint(n) {
				continue
			}
			v := a.Val[k]
			cp1[j] += v
			cp2[j] += w2 * v
		}
	}
	return cp1, cp2
}
