// Package pool implements the shared worker-pool execution engine that the
// hot paths of this repository run on: the blocked-checksum parallel SpMxV
// (internal/parallel), the row-partitioned CSR products (internal/sparse),
// the blocked vector kernels (internal/vec) and the fault-campaign fan-out
// (internal/sim).
//
// The engine is a fixed set of resident worker goroutines (sized by
// runtime.GOMAXPROCS by default) fed over an unbuffered channel. Every
// parallel operation is expressed as a chunked range [0, n): the caller's
// goroutine always participates in draining the chunk queue, and work is
// only handed to a resident worker that is ready to receive it. Two
// properties follow:
//
//   - No deadlock under nesting. A kernel running on a worker may itself
//     call into the pool (e.g. a fault-campaign trial whose solver uses the
//     parallel SpMxV); if no worker is idle the nested call simply degrades
//     to inline execution on the calling goroutine.
//   - No unbounded goroutine growth. The pool never spawns per-call
//     goroutines; concurrency is bounded by the resident worker count.
//
// Chunk boundaries depend only on (n, grain), never on the worker count or
// the scheduling order, so deterministic algorithms (such as the blocked
// reductions in internal/vec) produce bitwise-identical results whether they
// run on one goroutine or many.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable worker-pool execution engine. The zero value is not
// usable; construct with New. A Pool may be shared freely between
// goroutines; Run/ForEach/RunErr are safe for concurrent use. Close is the
// only exception: it must not overlap an in-flight Run.
type Pool struct {
	workers int
	start   sync.Once
	stop    sync.Once
	closed  atomic.Bool
	tasks   chan func()
}

// New returns a pool with the given number of resident workers. workers <= 0
// selects runtime.GOMAXPROCS(0). Workers are started lazily on first use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, sized by GOMAXPROCS at first
// use. The hot-path kernels accept any *Pool; Default is the conventional
// choice when the caller has no reason to isolate its parallelism.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Workers returns the resident worker count.
func (p *Pool) Workers() int { return p.workers }

// Close releases the resident worker goroutines of a dedicated pool. After
// Close, Run and friends still work but execute sequentially on the caller.
// Close must not be called while a Run is in flight, and must not be called
// on the shared Default pool (which lives for the process). Closing an
// already-closed or never-started pool is a no-op.
func (p *Pool) Close() {
	p.stop.Do(func() {
		p.closed.Store(true)
		// Ensure the started state is settled so workers (if any) observe
		// the close instead of a later Run racing ensureStarted.
		p.start.Do(func() {})
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

// ensureStarted launches the resident workers exactly once.
func (p *Pool) ensureStarted() {
	p.start.Do(func() {
		p.tasks = make(chan func())
		for i := 0; i < p.workers; i++ {
			go func() {
				for task := range p.tasks {
					task()
				}
			}()
		}
	})
}

// chunksFor splits [0, n) into equal chunks of at least grain indices,
// capped at a small multiple of the worker count so the dynamic scheduler
// can balance skewed chunks without drowning in dispatch overhead. The
// returned chunk size depends only on (n, grain, workers).
func (p *Pool) chunksFor(n, grain int) (nchunks, size int) {
	if grain < 1 {
		grain = 1
	}
	nchunks = (n + grain - 1) / grain
	if cap := 4 * p.workers; nchunks > cap {
		nchunks = cap
	}
	if nchunks < 1 {
		nchunks = 1
	}
	size = (n + nchunks - 1) / nchunks
	nchunks = (n + size - 1) / size
	return nchunks, size
}

// job carries the dispatch state of one Run/RunRanges call. Jobs are
// recycled through a sync.Pool and each job's task closure is built once at
// allocation, so steady-state dispatches perform no heap allocation of
// their own (the caller's fn closure is the only per-call capture).
type job struct {
	cursor  atomic.Int64
	wg      sync.WaitGroup
	n, size int
	nchunks int
	bounds  []int // non-nil: explicit chunk boundaries (RunRanges)
	fn      func(lo, hi int)
	task    func()
}

var jobPool = sync.Pool{New: func() any {
	j := &job{}
	j.task = func() {
		j.drain()
		j.wg.Done()
	}
	return j
}}

// drain claims chunks off the job's atomic cursor until none remain.
func (j *job) drain() {
	for {
		c := int(j.cursor.Add(1) - 1)
		if c >= j.nchunks {
			return
		}
		var lo, hi int
		if j.bounds != nil {
			lo, hi = j.bounds[c], j.bounds[c+1]
		} else {
			lo = c * j.size
			hi = lo + j.size
			if hi > j.n {
				hi = j.n
			}
		}
		j.fn(lo, hi)
	}
}

// Run partitions [0, n) into chunks of at least grain indices and executes
// fn(lo, hi) over the chunks concurrently, blocking until every chunk has
// completed. Chunks are claimed dynamically (an atomic cursor), so uneven
// chunk costs — e.g. nonzero-count skew across matrix row blocks — balance
// across workers. fn must be safe to call concurrently for disjoint ranges.
//
// The calling goroutine always processes chunks itself, and idle resident
// workers join it; if the pool is saturated the call degrades gracefully to
// sequential execution instead of blocking.
func (p *Pool) Run(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nchunks, size := p.chunksFor(n, grain)
	if nchunks == 1 || p.workers == 1 || p.closed.Load() {
		fn(0, n)
		return
	}
	p.dispatch(nchunks, n, size, nil, fn)
}

// RunRanges executes fn over the explicit consecutive chunks
// [bounds[c], bounds[c+1]) for c in [0, len(bounds)-1), claimed dynamically
// exactly like Run's uniform chunks. The caller provides the boundaries —
// typically a precomputed work-balanced partition (see sparse.Partition) —
// so dispatch does no per-call planning. A single chunk, a single-worker
// pool or a closed pool runs inline on the caller.
func (p *Pool) RunRanges(bounds []int, fn func(lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 {
		return
	}
	if nchunks == 1 || p.workers == 1 || p.closed.Load() {
		fn(bounds[0], bounds[nchunks])
		return
	}
	p.dispatch(nchunks, 0, 0, bounds, fn)
}

// dispatch hands the chunk queue to idle resident workers and drains it on
// the calling goroutine, blocking until every chunk completed.
func (p *Pool) dispatch(nchunks, n, size int, bounds []int, fn func(lo, hi int)) {
	p.ensureStarted()

	j := jobPool.Get().(*job)
	j.cursor.Store(0)
	j.n, j.size, j.nchunks = n, size, nchunks
	j.bounds, j.fn = bounds, fn

	helpers := p.workers - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- j.task:
		default:
			// Every resident worker is busy (e.g. nested parallelism):
			// the caller drains the queue alone rather than waiting.
			j.wg.Done()
		}
	}
	j.drain()
	j.wg.Wait()

	j.fn = nil
	j.bounds = nil
	jobPool.Put(j)
}

// ForEach executes fn(i) for every i in [0, n) across the pool, blocking
// until all calls return. Each index is an independent unit of work; indices
// are grouped into chunks internally and each chunk runs its indices in
// ascending order.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.Run(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RunErr is Run for chunk bodies that can fail. All chunks execute (a
// failing chunk does not cancel its siblings — the hot paths have no
// mid-flight cancellation semantics); the error of the lowest-indexed
// failing chunk is returned, making the aggregate outcome deterministic
// under any scheduling.
func (p *Pool) RunErr(n, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	nchunks, size := p.chunksFor(n, grain)
	errs := make([]error, nchunks)
	p.Run(n, grain, func(lo, hi int) {
		errs[lo/size] = fn(lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
