package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	p := New(4)
	for _, n := range []int{0, 1, 7, 255, 256, 257, 10000} {
		for _, grain := range []int{1, 3, 64, 100000} {
			hits := make([]int32, n)
			p.Run(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d grain=%d: bad chunk [%d,%d)", n, grain, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d executed %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForEachOrderWithinChunks(t *testing.T) {
	p := New(3)
	const n = 1000
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	p.ForEach(n, func(i int) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
	})
	if len(seen) != n {
		t.Fatalf("ForEach visited %d of %d indices", len(seen), n)
	}
}

func TestDefaultPoolSizedByGOMAXPROCS(t *testing.T) {
	if got := Default().Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default().Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if New(0).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("New(0) must size by GOMAXPROCS")
	}
	if New(7).Workers() != 7 {
		t.Fatal("New(7) must keep the explicit size")
	}
}

func TestRunErrReturnsLowestIndexedFailure(t *testing.T) {
	p := New(4)
	errA := errors.New("a")
	for trial := 0; trial < 10; trial++ {
		err := p.RunErr(1000, 10, func(lo, hi int) error {
			if lo >= 500 {
				return fmt.Errorf("high chunk %d", lo)
			}
			if lo >= 240 {
				return errA
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: RunErr = %v, want the lowest-indexed failure %v", trial, err, errA)
		}
	}
	if err := p.RunErr(100, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("all-success RunErr = %v", err)
	}
}

// TestNestedRunDoesNotDeadlock drives pool calls from inside pool calls —
// the shape of a fault campaign whose trials run parallel kernels — with
// fewer workers than outstanding parallel regions.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		p.Run(1000, 10, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if total.Load() != 8*1000 {
		t.Fatalf("nested execution covered %d indices, want %d", total.Load(), 8*1000)
	}
}

// TestConcurrentCallers hammers one shared pool from many goroutines with
// shrunken chunk sizes, verifying every caller sees its own range covered
// exactly once. Run with -race this is the engine's central safety test.
func TestConcurrentCallers(t *testing.T) {
	p := New(4)
	const callers = 16
	const n = 3000
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sums := make([]int64, n)
			p.Run(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sums[i]++
				}
			})
			for i, s := range sums {
				if s != 1 {
					t.Errorf("caller %d: index %d covered %d times", c, i, s)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRunDeterministicPartials verifies the scheduling-independence
// contract: chunk boundaries depend only on (n, grain), so a blocked
// reduction over per-chunk slots gives identical results on repeated runs.
func TestRunDeterministicPartials(t *testing.T) {
	p := New(4)
	const n = 100003
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%37) * 0.125
	}
	reduce := func() float64 {
		nchunks, size := p.chunksFor(n, 1)
		partials := make([]float64, nchunks)
		p.Run(n, 1, func(lo, hi int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			partials[lo/size] = s
		})
		var s float64
		for _, v := range partials {
			s += v
		}
		return s
	}
	want := reduce()
	for trial := 0; trial < 20; trial++ {
		if got := reduce(); got != want {
			t.Fatalf("trial %d: blocked reduction %v != %v", trial, got, want)
		}
	}
}

func TestCloseReleasesWorkersAndDegradesToSequential(t *testing.T) {
	p := New(4)
	var n atomic.Int64
	p.Run(100, 1, func(lo, hi int) { n.Add(int64(hi - lo)) }) // start workers
	p.Close()
	p.Close()                                                 // idempotent
	p.Run(100, 1, func(lo, hi int) { n.Add(int64(hi - lo)) }) // sequential now
	if n.Load() != 200 {
		t.Fatalf("covered %d indices across Close, want 200", n.Load())
	}

	// A never-started pool must also close cleanly and stay usable.
	q := New(4)
	q.Close()
	total := 0
	q.Run(50, 1, func(lo, hi int) { total += hi - lo }) // inline, no race
	if total != 50 {
		t.Fatalf("closed never-started pool covered %d, want 50", total)
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	p := New(2)
	called := false
	p.Run(0, 1, func(lo, hi int) { called = true })
	p.Run(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Run must not invoke fn for n <= 0")
	}
	if err := p.RunErr(0, 1, func(lo, hi int) error { return errors.New("x") }); err != nil {
		t.Fatal("RunErr must be nil for n <= 0")
	}
}

// --- RunRanges ---

func TestRunRangesCoversBounds(t *testing.T) {
	p := New(4)
	defer p.Close()
	bounds := []int{0, 5, 7, 100, 101, 256}
	n := bounds[len(bounds)-1]
	var hits [256]int32
	p.RunRanges(bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i := 0; i < n; i++ {
		if hits[i] != 1 {
			t.Fatalf("index %d executed %d times, want 1", i, hits[i])
		}
	}
}

func TestRunRangesDegenerate(t *testing.T) {
	p := New(4)
	defer p.Close()
	ran := false
	p.RunRanges(nil, func(lo, hi int) { ran = true })
	p.RunRanges([]int{}, func(lo, hi int) { ran = true })
	p.RunRanges([]int{3}, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("RunRanges executed fn on empty bounds")
	}
	// Single chunk runs inline on the caller.
	got := -1
	p.RunRanges([]int{2, 9}, func(lo, hi int) { got = hi - lo })
	if got != 7 {
		t.Fatalf("single-range chunk = %d, want 7", got)
	}
}

func TestRunRangesOnClosedPoolRunsInline(t *testing.T) {
	p := New(4)
	p.Close()
	var sum int
	p.RunRanges([]int{0, 2, 4}, func(lo, hi int) { sum += hi - lo })
	if sum != 4 {
		t.Fatalf("closed-pool RunRanges covered %d indices, want 4", sum)
	}
}
