// Package sparse implements the sparse-matrix substrate for the resilient
// solvers: a CSR (compressed sparse row) matrix type, a COO assembly helper,
// test-problem generators (Poisson stencils, graph Laplacians, banded random
// SPD matrices) and Matrix Market I/O.
//
// The CSR layout follows the paper exactly: three arrays Val (nonzero
// values), Colid (column index of each nonzero) and Rowidx (n+1 row
// pointers). The ABFT scheme in internal/abft protects precisely these three
// arrays, so they are exported fields rather than hidden behind accessors.
package sparse

import (
	"fmt"
	"math"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i owns the nonzero range Val[Rowidx[i]:Rowidx[i+1]], with column
// indices Colid[Rowidx[i]:Rowidx[i+1]]. Invariants (checked by Validate):
// Rowidx is non-decreasing, Rowidx[0]==0, Rowidx[Rows]==len(Val),
// len(Val)==len(Colid), and every Colid entry is in [0, Cols).
type CSR struct {
	Rows, Cols int
	Val        []float64
	Colid      []int
	Rowidx     []int

	// plan caches NNZ-balanced partition plans for the parallel kernels
	// (see partition.go). It is derived data — never serialised, never
	// compared — and CopyFrom invalidates it.
	plan planCache
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns nnz / (rows*cols).
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// MemoryWords returns the number of machine words occupied by the matrix
// representation (Val + Colid + Rowidx), the quantity M entering the fault
// rate λ = α/M in the paper's experiments.
func (m *CSR) MemoryWords() int {
	return len(m.Val) + len(m.Colid) + len(m.Rowidx)
}

// Validate checks the CSR structural invariants and returns a descriptive
// error for the first violation found.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.Rowidx) != m.Rows+1 {
		return fmt.Errorf("sparse: len(Rowidx)=%d, want rows+1=%d", len(m.Rowidx), m.Rows+1)
	}
	if len(m.Val) != len(m.Colid) {
		return fmt.Errorf("sparse: len(Val)=%d != len(Colid)=%d", len(m.Val), len(m.Colid))
	}
	if m.Rowidx[0] != 0 {
		return fmt.Errorf("sparse: Rowidx[0]=%d, want 0", m.Rowidx[0])
	}
	if m.Rowidx[m.Rows] != len(m.Val) {
		return fmt.Errorf("sparse: Rowidx[rows]=%d, want nnz=%d", m.Rowidx[m.Rows], len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.Rowidx[i] > m.Rowidx[i+1] {
			return fmt.Errorf("sparse: Rowidx decreases at row %d (%d > %d)", i, m.Rowidx[i], m.Rowidx[i+1])
		}
	}
	for k, c := range m.Colid {
		if c < 0 || c >= m.Cols {
			return fmt.Errorf("sparse: Colid[%d]=%d out of range [0,%d)", k, c, m.Cols)
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix. The resilient drivers checkpoint
// the matrix with Clone so that memory faults on A can be rolled back.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Val:    make([]float64, len(m.Val)),
		Colid:  make([]int, len(m.Colid)),
		Rowidx: make([]int, len(m.Rowidx)),
	}
	copy(out.Val, m.Val)
	copy(out.Colid, m.Colid)
	copy(out.Rowidx, m.Rowidx)
	return out
}

// CopyFrom restores the receiver's arrays from src without reallocating.
// Panics if the shapes differ; rollback only ever restores like for like.
func (m *CSR) CopyFrom(src *CSR) {
	if m.Rows != src.Rows || m.Cols != src.Cols || len(m.Val) != len(src.Val) {
		panic("sparse: CopyFrom shape mismatch")
	}
	copy(m.Val, src.Val)
	copy(m.Colid, src.Colid)
	copy(m.Rowidx, src.Rowidx)
	// The restored Rowidx may differ from the one the cached partition
	// plans were balanced for (a rollback can undo a repaired pointer).
	m.InvalidatePlans()
}

// Equal reports whether two matrices are structurally and numerically
// identical (NaNs compare equal to NaNs).
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || len(m.Val) != len(o.Val) || len(m.Rowidx) != len(o.Rowidx) {
		return false
	}
	for i := range m.Rowidx {
		if m.Rowidx[i] != o.Rowidx[i] {
			return false
		}
	}
	for i := range m.Colid {
		if m.Colid[i] != o.Colid[i] {
			return false
		}
	}
	for i := range m.Val {
		if m.Val[i] != o.Val[i] && !(math.IsNaN(m.Val[i]) && math.IsNaN(o.Val[i])) {
			return false
		}
	}
	return true
}

// MulVec computes y ← Ax. y must have length Rows and x length Cols; y may
// not alias x.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			s += m.Val[k] * x[m.Colid[k]]
		}
		y[i] = s
	}
}

// MulVecSums computes y ← Ax and, fused into the same traversal, the
// two weighted output checksums s1 = Σ yᵢ and s2 = Σ (i+1)·yᵢ. Each row is
// accumulated left-to-right exactly as in MulVec and the checksums are
// accumulated in row order exactly as checksum.Sums would over the finished
// y, so both the output vector and the sums are bitwise identical to the
// unfused MulVec-then-Sums sequence — while Val, Colid and y are read once
// instead of twice.
func (m *CSR) MulVecSums(y, x []float64) (s1, s2 float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecSums dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			s += m.Val[k] * x[m.Colid[k]]
		}
		y[i] = s
		s1 += s
		s2 += float64(i+1) * s
	}
	return s1, s2
}

// MulVecBlock computes ys[j] ← A·xs[j] for every column j in one traversal
// of the CSR arrays. The loop nest is row-outer/column-inner: each row's
// Val/Colid segment is read once and stays hot across all k columns, which
// is where the blocked tier's bandwidth win comes from. Every column is
// accumulated left-to-right exactly as MulVec would, so each output vector
// is bitwise identical to k separate MulVec calls. No scratch is needed —
// the kernel allocates nothing.
func (m *CSR) MulVecBlock(ys, xs [][]float64) {
	if len(ys) != len(xs) {
		panic(fmt.Sprintf("sparse: MulVecBlock: %d outputs for %d inputs", len(ys), len(xs)))
	}
	for j := range xs {
		if len(xs[j]) != m.Cols || len(ys[j]) != m.Rows {
			panic(fmt.Sprintf("sparse: MulVecBlock dimensions: A is %dx%d, len(xs[%d])=%d, len(ys[%d])=%d",
				m.Rows, m.Cols, j, len(xs[j]), j, len(ys[j])))
		}
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.Rowidx[i], m.Rowidx[i+1]
		for j := range xs {
			x := xs[j]
			var s float64
			for k := lo; k < hi; k++ {
				s += m.Val[k] * x[m.Colid[k]]
			}
			ys[j][i] = s
		}
	}
}

// MulVecSumsBlock is MulVecBlock fused with per-column output checksum
// accumulation: one traversal computes ys[j] ← A·xs[j] and the weighted
// sums s1s[j] = Σᵢ ys[j][i], s2s[j] = Σᵢ (i+1)·ys[j][i]. Per-column
// accumulation order matches MulVecSums exactly, so outputs and checksums
// are bitwise identical to k separate MulVecSums calls.
func (m *CSR) MulVecSumsBlock(ys, xs [][]float64, s1s, s2s []float64) {
	if len(ys) != len(xs) || len(s1s) < len(xs) || len(s2s) < len(xs) {
		panic(fmt.Sprintf("sparse: MulVecSumsBlock: %d outputs, %d inputs, %d/%d sum slots",
			len(ys), len(xs), len(s1s), len(s2s)))
	}
	for j := range xs {
		if len(xs[j]) != m.Cols || len(ys[j]) != m.Rows {
			panic(fmt.Sprintf("sparse: MulVecSumsBlock dimensions: A is %dx%d, len(xs[%d])=%d, len(ys[%d])=%d",
				m.Rows, m.Cols, j, len(xs[j]), j, len(ys[j])))
		}
		s1s[j], s2s[j] = 0, 0
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.Rowidx[i], m.Rowidx[i+1]
		w := float64(i + 1)
		for j := range xs {
			x := xs[j]
			var s float64
			for k := lo; k < hi; k++ {
				s += m.Val[k] * x[m.Colid[k]]
			}
			ys[j][i] = s
			s1s[j] += s
			s2s[j] += w * s
		}
	}
}

// MulVecRobust computes y ← Ax tolerating a corrupted representation: row
// pointer ranges are clamped to the valid nonzero range and out-of-range
// column indices contribute nothing. The resilient drivers use it so that a
// bit flip in Colid or Rowidx perturbs the result (to be caught by the
// verification mechanism) instead of crashing the process.
func (m *CSR) MulVecRobust(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecRobust dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	nnz := len(m.Val)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.Rowidx[i], m.Rowidx[i+1]
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		var s float64
		for k := lo; k < hi; k++ {
			if ind := m.Colid[k]; uint(ind) < uint(len(x)) {
				s += m.Val[k] * x[ind]
			}
		}
		y[i] = s
	}
}

// MulVecRobustSums is MulVecRobust fused with output checksum and max-norm
// accumulation: in one traversal it computes y ← Ax (clamped row-pointer
// ranges, skipped out-of-range column indices), the weighted sums
// s1 = Σ yᵢ and s2 = Σ (i+1)·yᵢ, and normY = maxᵢ|yᵢ|. The per-row
// accumulation order matches MulVecRobust and the checksum accumulation
// order matches checksum.Sums over the finished vector, so every returned
// quantity is bitwise identical to the unfused multi-pass sequence.
//
// Note that abft.Protected.MulVec deliberately does NOT use this kernel
// for its defect tests: the window between a protected product and its
// verification is part of the ABFT protection contract, so Verify must
// re-read y (see the comment there). This kernel serves callers whose
// checksum consumer needs the sums of the product as written — e.g.
// capturing a reliable reference of a freshly computed vector in the same
// pass, as the per-block verification in internal/parallel does for its
// own output slices.
func (m *CSR) MulVecRobustSums(y, x []float64) (s1, s2, normY float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecRobustSums dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	nnz := len(m.Val)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.Rowidx[i], m.Rowidx[i+1]
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		var s float64
		for k := lo; k < hi; k++ {
			if ind := m.Colid[k]; uint(ind) < uint(len(x)) {
				s += m.Val[k] * x[ind]
			}
		}
		y[i] = s
		s1 += s
		s2 += float64(i+1) * s
		if s > normY {
			normY = s
		} else if -s > normY {
			normY = -s
		}
	}
	return s1, s2, normY
}

// MulVecRow recomputes the single output entry yᵢ = Σ_k Val[k]·x[Colid[k]]
// for row i. The ABFT correction step uses it to repair corrupted rows
// without redoing the whole product.
func (m *CSR) MulVecRow(i int, x []float64) float64 {
	var s float64
	for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
		s += m.Val[k] * x[m.Colid[k]]
	}
	return s
}

// MulTransVec computes y ← Aᵀx. Needed by the CGNE/BiCG family the paper
// names as further targets of the scheme.
func (m *CSR) MulTransVec(y, x []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: MulTransVec dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			y[m.Colid[k]] += m.Val[k] * xi
		}
	}
}

// Norm1 returns ‖A‖₁ = max_j Σᵢ |aᵢⱼ| (maximum absolute column sum), the
// norm entering the Theorem-2 rounding tolerance.
func (m *CSR) Norm1() float64 {
	colSums := make([]float64, m.Cols)
	for k, v := range m.Val {
		colSums[m.Colid[k]] += math.Abs(v)
	}
	var max float64
	for _, s := range colSums {
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns ‖A‖∞ = maxᵢ Σⱼ |aᵢⱼ| (maximum absolute row sum).
func (m *CSR) NormInf() float64 {
	var max float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			s += math.Abs(m.Val[k])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MaxColNNZ returns the maximum number of stored nonzeros in any column
// (n' in the paper's accuracy discussion, Section 5.1).
func (m *CSR) MaxColNNZ() int {
	counts := make([]int, m.Cols)
	for _, c := range m.Colid {
		counts[c]++
	}
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// ColSums returns the vector of column sums cⱼ = Σᵢ aᵢⱼ, i.e. the unshifted
// ones-weighted checksum row of the matrix.
func (m *CSR) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for k, v := range m.Val {
		sums[m.Colid[k]] += v
	}
	return sums
}

// Diag returns the diagonal entries of the matrix (zero where no stored
// diagonal entry exists). Used by the Jacobi preconditioner.
func (m *CSR) Diag() []float64 {
	return m.DiagInto(make([]float64, m.Rows))
}

// DiagInto fills d (length Rows, caller-provided so hot paths can reuse
// scratch) with the diagonal entries and returns it.
func (m *CSR) DiagInto(d []float64) []float64 {
	if len(d) != m.Rows {
		panic(fmt.Sprintf("sparse: DiagInto scratch length %d, want %d", len(d), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		d[i] = 0
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			if m.Colid[k] == i {
				d[i] = m.Val[k]
				break
			}
		}
	}
	return d
}

// At returns A[i,j] by scanning row i. It is O(row nnz) and intended for
// tests and error decoding, not inner loops.
func (m *CSR) At(i, j int) float64 {
	for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
		if m.Colid[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// IsSymmetric reports whether A equals Aᵀ up to tol in absolute value.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			j := m.Colid[k]
			if math.Abs(m.Val[k]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsDiagDominant reports whether |aᵢᵢ| ≥ Σ_{j≠i} |aᵢⱼ| for all rows, with
// strict inequality in at least one row. Together with symmetry and positive
// diagonal this certifies positive definiteness of the generated test
// matrices.
func (m *CSR) IsDiagDominant() bool {
	strict := false
	for i := 0; i < m.Rows; i++ {
		var off, diag float64
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			if m.Colid[k] == i {
				diag = math.Abs(m.Val[k])
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag < off {
			return false
		}
		if diag > off {
			strict = true
		}
	}
	return strict
}

// FlopsMulVec returns the flop count of one SpMxV (a multiply and an add per
// stored nonzero), used by the cost model: Titer is dominated by this.
func (m *CSR) FlopsMulVec() int64 { return 2 * int64(m.NNZ()) }
