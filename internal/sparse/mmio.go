package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O for the "coordinate real" flavours used by sparse
// collections. Supported qualifiers: general and symmetric; pattern matrices
// are read with all values set to 1.

// maxMMDim bounds the dimensions and entry count accepted from a size
// line: far beyond any matrix this repository handles, but small enough
// that a hostile or corrupted header cannot drive a multi-gigabyte
// allocation (or a makeslice panic) before a single entry is read.
const maxMMDim = 1 << 28

// WriteMatrixMarket writes m in Matrix Market coordinate/real/general format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Colid[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate stream into a CSR
// matrix. Symmetric storage is expanded; pattern entries become 1.0.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad Matrix Market header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Skip comment lines, find the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions in size line (%d x %d, %d entries)", rows, cols, nnz)
	}
	if rows > maxMMDim || cols > maxMMDim || nnz > maxMMDim {
		return nil, fmt.Errorf("sparse: implausibly large size line (%d x %d, %d entries; limit %d)", rows, cols, nnz, maxMMDim)
	}
	if symmetry == "symmetric" && rows != cols {
		return nil, fmt.Errorf("sparse: symmetric matrix must be square, got %dx%d", rows, cols)
	}

	c := NewCOO(rows, cols)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		wantFields := 3
		if field == "pattern" {
			wantFields = 2
		}
		if len(f) < wantFields {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of %dx%d", i, j, rows, cols)
		}
		c.Add(i-1, j-1, v)
		if symmetry == "symmetric" && i != j {
			c.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c.ToCSR(), nil
}
