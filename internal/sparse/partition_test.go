package sparse

import "testing"

// skewedCSR builds a matrix whose nonzeros are concentrated in the last
// rows (row i holds ~i² entries, capped), so uniform row chunks are badly
// unbalanced.
func skewedCSR(rows int) *CSR {
	var vals []float64
	var cols []int
	rowidx := make([]int, 1, rows+1)
	for i := 0; i < rows; i++ {
		nnz := 1 + (i*i)/(rows*8)
		for k := 0; k < nnz; k++ {
			vals = append(vals, 1)
			cols = append(cols, (i+k)%rows)
		}
		rowidx = append(rowidx, len(vals))
	}
	return &CSR{Rows: rows, Cols: rows, Val: vals, Colid: cols, Rowidx: rowidx}
}

func checkPartition(t *testing.T, m *CSR, p Partition) {
	t.Helper()
	if p.Bounds[0] != 0 || p.Bounds[len(p.Bounds)-1] != m.Rows {
		t.Fatalf("partition does not cover [0,%d): bounds %v", m.Rows, p.Bounds)
	}
	for i := 0; i+1 < len(p.Bounds); i++ {
		if p.Bounds[i] >= p.Bounds[i+1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, p.Bounds)
		}
	}
}

func TestNNZPartitionBalance(t *testing.T) {
	m := skewedCSR(4096)
	const chunks = 8
	p := m.NNZPartition(chunks)
	checkPartition(t, m, p)
	if p.Chunks() != chunks {
		t.Fatalf("got %d chunks, want %d", p.Chunks(), chunks)
	}
	ideal := m.NNZ() / chunks
	for c := 0; c < p.Chunks(); c++ {
		got := m.Rowidx[p.Bounds[c+1]] - m.Rowidx[p.Bounds[c]]
		if got > 2*ideal {
			t.Errorf("chunk %d owns %d nnz, ideal %d: badly unbalanced %v", c, got, ideal, p.Bounds)
		}
	}
	// Uniform row chunking on this matrix is demonstrably worse: the last
	// eighth of the rows holds far more than 2× the ideal nonzeros.
	uniformLast := m.NNZ() - m.Rowidx[m.Rows-m.Rows/chunks]
	if uniformLast <= 2*ideal {
		t.Fatalf("test matrix not skewed enough (last uniform chunk %d nnz, ideal %d)", uniformLast, ideal)
	}
}

func TestNNZPartitionDegenerate(t *testing.T) {
	m := skewedCSR(10)
	for _, chunks := range []int{-1, 0, 1, 10, 50} {
		checkPartition(t, m, m.NNZPartition(chunks))
	}
	empty := &CSR{Rows: 0, Cols: 0, Rowidx: []int{0}}
	p := empty.NNZPartition(4)
	if p.Chunks() != 1 || p.Bounds[0] != 0 || p.Bounds[1] != 0 {
		t.Fatalf("empty-matrix partition: %v", p.Bounds)
	}
	// All nonzeros in a single row: cuts must stay strictly increasing.
	heavy := &CSR{Rows: 4, Cols: 4,
		Val:    []float64{1, 1, 1, 1},
		Colid:  []int{0, 1, 2, 3},
		Rowidx: []int{0, 0, 4, 4, 4}}
	checkPartition(t, heavy, heavy.NNZPartition(4))
}

func TestPlanForCachingAndInvalidation(t *testing.T) {
	m := skewedCSR(4096)
	p1 := m.PlanFor(4)
	p2 := m.PlanFor(4)
	if &p1.Bounds[0] != &p2.Bounds[0] {
		t.Error("PlanFor did not return the cached plan")
	}
	checkPartition(t, m, p1)

	m.InvalidatePlans()
	p3 := m.PlanFor(4)
	if &p1.Bounds[0] == &p3.Bounds[0] {
		t.Error("InvalidatePlans kept the stale plan")
	}

	// CopyFrom (the rollback path) must invalidate too.
	m.PlanFor(4)
	m.CopyFrom(m.Clone())
	p4 := m.PlanFor(4)
	if &p3.Bounds[0] == &p4.Bounds[0] {
		t.Error("CopyFrom kept the stale plan")
	}
}

func TestPlanForConcurrent(t *testing.T) {
	m := skewedCSR(4096)
	done := make(chan Partition, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- m.PlanFor(4) }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		p := <-done
		if p.Chunks() != first.Chunks() {
			t.Fatalf("concurrent PlanFor disagreed: %d vs %d chunks", p.Chunks(), first.Chunks())
		}
	}
}
