package sparse

import (
	"sort"
	"sync"
)

// This file implements precomputed NNZ-balanced partition plans for the
// parallel CSR kernels. The uniform row chunking used previously assigns
// every chunk the same number of rows, which load-balances badly on
// matrices with skewed nonzero distributions (banded suite matrices whose
// bandwidth varies across the row range, graph Laplacians with hub
// vertices): one chunk can own several times the nonzeros of another, and
// the dynamic chunk claiming in internal/pool can only mop up so much skew
// when there are few chunks per worker. A partition plan instead cuts the
// row range so every chunk owns approximately the same number of stored
// nonzeros — i.e. the same amount of SpMxV work — by binary-searching the
// Rowidx prefix sums. Plans depend only on (Rowidx, chunk count), are
// cached on the matrix per chunk count, and are invalidated by CopyFrom
// (the rollback path) and InvalidatePlans.
//
// Correctness never depends on a plan: chunk boundaries are row indices
// covering [0, Rows) exactly once, every row is still computed by the same
// per-row kernel, and rows are written to disjoint slices of y — so the
// product stays bitwise identical to the sequential kernel for any plan,
// any worker count, and even a plan gone stale through in-place mutation
// of the matrix (it merely balances suboptimally until re-planned).

// Partition is a precomputed row partition: chunk c covers rows
// [Bounds[c], Bounds[c+1]). Bounds is strictly increasing with
// Bounds[0] == 0 and Bounds[len-1] == Rows.
type Partition struct {
	Bounds []int
}

// Chunks returns the number of row chunks in the plan.
func (p Partition) Chunks() int {
	if len(p.Bounds) == 0 {
		return 0
	}
	return len(p.Bounds) - 1
}

// NNZPartition splits the matrix rows into at most chunks ranges of
// approximately equal stored nonzeros. Cut points are found by binary
// search on the Rowidx prefix sums, so planning costs
// O(chunks · log rows). Degenerate inputs (chunks < 1, empty matrices,
// fewer rows than chunks) collapse to fewer chunks; the result always
// covers [0, Rows) exactly.
func (m *CSR) NNZPartition(chunks int) Partition {
	rows := m.Rows
	if chunks < 1 {
		chunks = 1
	}
	if chunks > rows {
		chunks = rows
	}
	if rows <= 0 {
		return Partition{Bounds: []int{0, 0}}
	}
	total := m.Rowidx[rows]
	bounds := make([]int, 1, chunks+1)
	bounds[0] = 0
	prev := 0
	for c := 1; c < chunks; c++ {
		// Smallest row ≥ prev whose prefix nnz reaches the c-th equal share.
		target := int64(total) * int64(c) / int64(chunks)
		cut := prev + sort.Search(rows-prev, func(i int) bool {
			return int64(m.Rowidx[prev+i]) >= target
		})
		// Keep bounds strictly increasing: empty-row runs or heavy single
		// rows can pull successive cuts onto the same row.
		if cut <= prev {
			cut = prev + 1
		}
		if cut >= rows {
			break
		}
		bounds = append(bounds, cut)
		prev = cut
	}
	bounds = append(bounds, rows)
	return Partition{Bounds: bounds}
}

// planCache memoises partition plans per chunk count. The zero value is
// ready to use; access is synchronised because parallel products on a
// shared matrix may race to plan it.
type planCache struct {
	mu    sync.Mutex
	plans map[int]Partition
}

// PlanFor returns the cached NNZ-balanced plan with the chunk count the
// parallel kernels use for the given worker count (the same 4×workers
// oversubscription as the pool's dynamic scheduler, capped by the
// parallelRowGrain minimum chunk size), computing and caching it on first
// use.
func (m *CSR) PlanFor(workers int) Partition {
	chunks := planChunks(m.Rows, workers)
	m.plan.mu.Lock()
	defer m.plan.mu.Unlock()
	if p, ok := m.plan.plans[chunks]; ok {
		return p
	}
	p := m.NNZPartition(chunks)
	if m.plan.plans == nil {
		m.plan.plans = make(map[int]Partition)
	}
	m.plan.plans[chunks] = p
	return p
}

// planChunks mirrors pool.chunksFor's sizing: enough chunks for dynamic
// balancing (4 per worker) without dropping below the grain that keeps
// dispatch overhead negligible.
func planChunks(rows, workers int) int {
	chunks := rows / parallelRowGrain
	if cap := 4 * workers; chunks > cap {
		chunks = cap
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// InvalidatePlans drops the cached partition plans. Callers that mutate
// the matrix structure in place (beyond the silent bit flips of the fault
// model, which plans tolerate by construction) should invalidate so the
// next parallel product re-balances.
func (m *CSR) InvalidatePlans() {
	m.plan.mu.Lock()
	m.plan.plans = nil
	m.plan.mu.Unlock()
}
