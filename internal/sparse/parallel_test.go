package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/pool"
)

func randX(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestMulVecParallelMatchesSequential: every row is accumulated in the same
// order as the sequential kernel and rows write disjoint outputs, so the
// parallel product must be bitwise identical for any worker count and any
// matrix size straddling the cutoff.
func TestMulVecParallelMatchesSequential(t *testing.T) {
	for _, side := range []int{20, 50, 80} { // n = 400, 2500, 6400: below and above ParallelMinRows
		a := Poisson2D(side, side)
		x := randX(a.Cols, int64(side))
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		for _, workers := range []int{1, 2, 4} {
			p := pool.New(workers)
			got := make([]float64, a.Rows)
			a.MulVecParallel(p, got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("side=%d workers=%d: row %d: %v != %v", side, workers, i, got[i], want[i])
				}
			}
		}
		got := make([]float64, a.Rows)
		a.MulVecParallel(nil, got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side=%d nil pool: row %d differs", side, i)
			}
		}
	}
}

// TestMulVecRobustParallelToleratesCorruption corrupts Rowidx and Colid the
// way the fault injector does and checks the parallel robust product agrees
// with the sequential robust product instead of crashing a worker.
func TestMulVecRobustParallelToleratesCorruption(t *testing.T) {
	a := Poisson2D(60, 60) // n = 3600 > ParallelMinRows
	x := randX(a.Cols, 7)
	p := pool.New(4)

	// Corrupt a row pointer far out of range and a column index negative.
	a.Rowidx[100] = 1 << 40
	a.Colid[50] = -3

	want := make([]float64, a.Rows)
	a.MulVecRobust(want, x)
	got := make([]float64, a.Rows)
	a.MulVecRobustParallel(p, got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: robust parallel %v != robust sequential %v", i, got[i], want[i])
		}
	}
}

func TestMulVecParallelDimensionPanic(t *testing.T) {
	a := Poisson2D(10, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecParallel must panic on dimension mismatch")
		}
	}()
	a.MulVecParallel(nil, make([]float64, 3), make([]float64, a.Cols))
}
