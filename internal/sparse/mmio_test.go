package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RandomSPD(RandomSPDOptions{N: 40, Density: 0.08, DiagShift: 1, Seed: 5})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle of [2 -1; -1 2]
2 2 3
1 1 2.0
2 1 -1.0
2 2 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := Tridiag(2, 2, -1)
	if !m.Equal(want) {
		t.Fatalf("symmetric expansion wrong: got %+v", m)
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 1
2 3
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 1 || m.NNZ() != 2 {
		t.Fatalf("pattern read wrong: %+v", m)
	}
}

func TestReadSkipsComments(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
% another

1 1 1
1 1 3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 {
		t.Fatal("comment skipping broken")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"badHeader":    "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"badFormat":    "%%MatrixMarket matrix array real general\n1 1\n1\n",
		"badField":     "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"badSymmetry":  "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"missingSize":  "%%MatrixMarket matrix coordinate real general\n",
		"truncated":    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"outOfRange":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"badRowIndex":  "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"badValue":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"shortEntries": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
				t.Fatalf("expected error for %s", name)
			}
		})
	}
}
