package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RandomSPD(RandomSPDOptions{N: 40, Density: 0.08, DiagShift: 1, Seed: 5})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle of [2 -1; -1 2]
2 2 3
1 1 2.0
2 1 -1.0
2 2 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := Tridiag(2, 2, -1)
	if !m.Equal(want) {
		t.Fatalf("symmetric expansion wrong: got %+v", m)
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 1
2 3
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 1 || m.NNZ() != 2 {
		t.Fatalf("pattern read wrong: %+v", m)
	}
}

func TestReadSkipsComments(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
% another

1 1 1
1 1 3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 {
		t.Fatal("comment skipping broken")
	}
}

// TestReadErrors feeds malformed Matrix Market input to the reader and
// checks that every case is rejected with a descriptive error — never a
// panic (a t.Run goroutine panicking fails the suite, so each case doubles
// as a no-panic regression test).
func TestReadErrors(t *testing.T) {
	cases := map[string]struct {
		src     string
		wantErr string
	}{
		"empty":               {"", "empty Matrix Market stream"},
		"badHeader":           {"%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n", "bad Matrix Market header"},
		"shortHeader":         {"%%MatrixMarket matrix\n1 1 1\n1 1 1\n", "bad Matrix Market header"},
		"notAMatrix":          {"%%MatrixMarket vector coordinate real general\n1 1 1\n1 1 1\n", "bad Matrix Market header"},
		"badFormat":           {"%%MatrixMarket matrix array real general\n1 1\n1\n", "only coordinate format"},
		"badField":            {"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", "unsupported field"},
		"badSymmetry":         {"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n", "unsupported symmetry"},
		"missingSize":         {"%%MatrixMarket matrix coordinate real general\n", "missing size line"},
		"badSizeLine":         {"%%MatrixMarket matrix coordinate real general\n2 two 4\n", "bad size line"},
		"shortSizeLine":       {"%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1.0\n", "bad size line"},
		"negativeDims":        {"%%MatrixMarket matrix coordinate real general\n-3 -3 0\n", "negative dimensions"},
		"negativeNNZ":         {"%%MatrixMarket matrix coordinate real general\n2 2 -1\n", "negative dimensions"},
		"hugeDims":            {"%%MatrixMarket matrix coordinate real general\n1000000000000000000 1 0\n", "implausibly large"},
		"hugeNNZ":             {"%%MatrixMarket matrix coordinate real general\n2 2 999999999999\n", "implausibly large"},
		"symmetricNonSquare":  {"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n", "must be square"},
		"truncated":           {"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", "expected 2 entries, got 1"},
		"outOfRange":          {"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n", "out of 2x2"},
		"colOutOfRange":       {"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5 1.0\n", "out of 2x2"},
		"zeroIndex":           {"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", "out of 2x2"},
		"entryBeyondZeroDims": {"%%MatrixMarket matrix coordinate real general\n0 0 1\n1 1 1.0\n", "out of 0x0"},
		"badRowIndex":         {"%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n", "bad row index"},
		"badColIndex":         {"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 y 1.0\n", "bad col index"},
		"badValue":            {"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n", "bad value"},
		"valueOverflow":       {"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1e999\n", "bad value"},
		"shortEntries":        {"%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n", "bad entry line"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadMatrixMarket(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("expected error for %s", name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadEmptyMatrix checks the degenerate-but-valid cases around the
// hardened size validation.
func TestReadEmptyMatrix(t *testing.T) {
	m, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real general\n0 0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.NNZ() != 0 {
		t.Fatalf("empty matrix read wrong: %+v", m)
	}
	m, err = ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real general\n3 3 0\n"))
	if err != nil || m.Rows != 3 || m.NNZ() != 0 {
		t.Fatalf("structurally empty matrix: %+v, %v", m, err)
	}
}
