package sparse

import (
	"fmt"

	"repro/internal/pool"
)

// ParallelMinRows is the row-count cutoff below which the parallel products
// fall back to their sequential counterparts: under it the SpMxV fits in
// cache and pool dispatch costs more than it saves. The resilient drivers in
// internal/core use the same cutoff to decide whether an iteration's
// products go through the pool.
const ParallelMinRows = 2048

// parallelRowGrain is the minimum number of rows per scheduled chunk.
// Chunks are claimed dynamically, so nonzero skew across row ranges is
// balanced by the pool rather than by a static nnz partition.
const parallelRowGrain = 256

// MulVecParallel computes y ← Ax with the row range executed across the
// pool. Every output row is computed by exactly the same left-to-right
// accumulation as MulVec, and rows are written to disjoint slices of y, so
// the result is bitwise identical to the sequential product for any worker
// count. A nil pool, a single-worker pool or a small matrix all run
// sequentially.
func (m *CSR) MulVecParallel(p *pool.Pool, y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecParallel dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	if p == nil || p.Workers() == 1 || m.Rows < ParallelMinRows {
		m.MulVec(y, x)
		return
	}
	p.Run(m.Rows, parallelRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
				s += m.Val[k] * x[m.Colid[k]]
			}
			y[i] = s
		}
	})
}

// MulVecRobustParallel is MulVecParallel with MulVecRobust's tolerance of a
// corrupted representation: row pointer ranges are clamped and out-of-range
// column indices contribute nothing, so a bit flip in Colid or Rowidx
// perturbs the product instead of crashing a worker. Row i's accumulation
// order matches MulVecRobust exactly, so sequential and parallel execution
// agree bitwise.
func (m *CSR) MulVecRobustParallel(p *pool.Pool, y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecRobustParallel dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	if p == nil || p.Workers() == 1 || m.Rows < ParallelMinRows {
		m.MulVecRobust(y, x)
		return
	}
	nnz := len(m.Val)
	p.Run(m.Rows, parallelRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rlo, rhi := m.Rowidx[i], m.Rowidx[i+1]
			if rlo < 0 {
				rlo = 0
			}
			if rhi > nnz {
				rhi = nnz
			}
			var s float64
			for k := rlo; k < rhi; k++ {
				if ind := m.Colid[k]; uint(ind) < uint(len(x)) {
					s += m.Val[k] * x[ind]
				}
			}
			y[i] = s
		}
	})
}
