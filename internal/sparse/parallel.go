package sparse

import (
	"fmt"

	"repro/internal/pool"
)

// ParallelMinRows is the row-count cutoff below which the parallel products
// fall back to their sequential counterparts: under it the SpMxV fits in
// cache and pool dispatch costs more than it saves. The resilient drivers in
// internal/core use the same cutoff to decide whether an iteration's
// products go through the pool.
const ParallelMinRows = 2048

// parallelRowGrain is the minimum number of rows per scheduled chunk,
// bounding the NNZ-balanced partition's chunk count so dispatch overhead
// stays negligible on small matrices.
const parallelRowGrain = 256

// MulVecParallel computes y ← Ax with the row range executed across the
// pool, chunked by the matrix's cached NNZ-balanced partition plan (see
// partition.go) so every chunk carries approximately equal work even under
// skewed nonzero distributions. Every output row is computed by exactly the
// same left-to-right accumulation as MulVec, and rows are written to
// disjoint slices of y, so the result is bitwise identical to the
// sequential product for any worker count and any plan. A nil pool, a
// single-worker pool or a small matrix all run sequentially.
func (m *CSR) MulVecParallel(p *pool.Pool, y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecParallel dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	if p == nil || p.Workers() == 1 || m.Rows < ParallelMinRows {
		m.MulVec(y, x)
		return
	}
	p.RunRanges(m.PlanFor(p.Workers()).Bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
				s += m.Val[k] * x[m.Colid[k]]
			}
			y[i] = s
		}
	})
}

// MulVecRobustParallel is MulVecParallel with MulVecRobust's tolerance of a
// corrupted representation: row pointer ranges are clamped and out-of-range
// column indices contribute nothing, so a bit flip in Colid or Rowidx
// perturbs the product instead of crashing a worker. Row i's accumulation
// order matches MulVecRobust exactly, so sequential and parallel execution
// agree bitwise. The NNZ-balanced plan may be stale for a corrupted Rowidx
// (plans are balanced on the trusted structure); that only skews the load,
// never the result.
func (m *CSR) MulVecRobustParallel(p *pool.Pool, y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecRobustParallel dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	if p == nil || p.Workers() == 1 || m.Rows < ParallelMinRows {
		m.MulVecRobust(y, x)
		return
	}
	nnz := len(m.Val)
	p.RunRanges(m.PlanFor(p.Workers()).Bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rlo, rhi := m.Rowidx[i], m.Rowidx[i+1]
			if rlo < 0 {
				rlo = 0
			}
			if rhi > nnz {
				rhi = nnz
			}
			var s float64
			for k := rlo; k < rhi; k++ {
				if ind := m.Colid[k]; uint(ind) < uint(len(x)) {
					s += m.Val[k] * x[ind]
				}
			}
			y[i] = s
		}
	})
}
