package sparse

import "math"

// FNV-1a constants, 64-bit variant, shared by every content fingerprint
// in this repository (CSR content hashes here, residual-history hashes in
// internal/harness) so the hash family cannot silently fork.
const (
	FNV1aOffset64 = 14695981039346656037
	fnvPrime64    = 1099511628211
)

// FNVMix64 folds one 64-bit word into an FNV-1a state, byte by byte in
// little-endian order (identical to hashing the word's
// binary.LittleEndian encoding through a hash.Hash64).
func FNVMix64(h, word uint64) uint64 {
	for shift := 0; shift < 64; shift += 8 {
		h ^= (word >> shift) & 0xff
		h *= fnvPrime64
	}
	return h
}

// FNV1aString hashes a string through the same 64-bit FNV-1a family as
// every other fingerprint in this repository. The consistent-hash ring in
// internal/router keys shard placement on it, so ring placement is as
// deterministic (and as portable across processes) as the content hashes.
func FNV1aString(s string) uint64 {
	h := uint64(FNV1aOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Fingerprint returns a 64-bit FNV-1a content hash of the matrix: the
// dimensions, the row pointers, the column indices and the IEEE-754 bit
// patterns of the values, in that order. Matrices with identical content
// always agree. Content-addressed caches of per-matrix artifacts —
// checksum encodings, partition plans, warm solver workspaces — key on it
// when the matrix arrives inline rather than as a named generator spec.
func (m *CSR) Fingerprint() uint64 {
	h := uint64(FNV1aOffset64)
	h = FNVMix64(h, uint64(m.Rows))
	h = FNVMix64(h, uint64(m.Cols))
	for _, r := range m.Rowidx {
		h = FNVMix64(h, uint64(r))
	}
	for _, c := range m.Colid {
		h = FNVMix64(h, uint64(c))
	}
	for _, v := range m.Val {
		h = FNVMix64(h, math.Float64bits(v))
	}
	return h
}
