package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains deterministic generators for the test problems used by
// the experiments. All generators take an explicit seed, so every experiment
// in the repository is reproducible bit for bit.

// Poisson2D returns the standard 5-point finite-difference discretisation of
// the Laplace operator on an nx×ny grid with Dirichlet boundary conditions.
// The matrix is symmetric positive definite with 4 on the diagonal and -1 on
// the four neighbour couplings; n = nx*ny.
func Poisson2D(nx, ny int) *CSR {
	if nx <= 0 || ny <= 0 {
		panic("sparse: Poisson2D needs positive grid dimensions")
	}
	n := nx * ny
	c := NewCOO(n, n)
	idx := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			row := idx(i, j)
			c.Add(row, row, 4)
			if i > 0 {
				c.Add(row, idx(i-1, j), -1)
			}
			if i < nx-1 {
				c.Add(row, idx(i+1, j), -1)
			}
			if j > 0 {
				c.Add(row, idx(i, j-1), -1)
			}
			if j < ny-1 {
				c.Add(row, idx(i, j+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// Poisson3D returns the 7-point stencil discretisation of the Laplacian on
// an nx×ny×nz grid with Dirichlet boundaries (diagonal 6, neighbours -1).
func Poisson3D(nx, ny, nz int) *CSR {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic("sparse: Poisson3D needs positive grid dimensions")
	}
	n := nx * ny * nz
	c := NewCOO(n, n)
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				row := idx(i, j, k)
				c.Add(row, row, 6)
				if i > 0 {
					c.Add(row, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					c.Add(row, idx(i+1, j, k), -1)
				}
				if j > 0 {
					c.Add(row, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					c.Add(row, idx(i, j+1, k), -1)
				}
				if k > 0 {
					c.Add(row, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					c.Add(row, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

// Tridiag returns the n×n tridiagonal matrix with the given diagonal and
// off-diagonal values (e.g. Tridiag(n, 2, -1) is the 1D Poisson matrix).
func Tridiag(n int, diag, off float64) *CSR {
	if n <= 0 {
		panic("sparse: Tridiag needs n > 0")
	}
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, diag)
		if i > 0 {
			c.Add(i, i-1, off)
		}
		if i < n-1 {
			c.Add(i, i+1, off)
		}
	}
	return c.ToCSR()
}

// RandomGraphLaplacian returns the combinatorial Laplacian L = D − Adj of a
// random undirected graph with n vertices and roughly degree edges per
// vertex, shifted by shift·I. With shift = 0 the matrix has exactly zero
// column sums — the case that motivates the paper's shifted checksum vector
// (Section 3.2) — and is positive semi-definite; any shift > 0 makes it SPD.
func RandomGraphLaplacian(n, degree int, shift float64, seed int64) *CSR {
	if n <= 1 || degree <= 0 {
		panic("sparse: RandomGraphLaplacian needs n > 1 and degree > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	// Collect unique undirected edges.
	edges := make(map[[2]int]bool)
	// A Hamiltonian ring keeps the graph connected.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	want := n * degree / 2
	for len(edges) < want {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		edges[[2]int{i, j}] = true
	}
	deg := make([]int, n)
	c := NewCOO(n, n)
	for e := range edges {
		c.Add(e[0], e[1], -1)
		c.Add(e[1], e[0], -1)
		deg[e[0]]++
		deg[e[1]]++
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(deg[i])+shift)
	}
	return c.ToCSR()
}

// RandomSPDOptions configures RandomSPD.
type RandomSPDOptions struct {
	// N is the matrix dimension.
	N int
	// Density is the target nnz/N² (the generator matches it to within the
	// rounding of the per-row off-diagonal count).
	Density float64
	// Bandwidth limits off-diagonal entries to |i−j| ≤ Bandwidth. Zero means
	// unlimited (columns drawn uniformly). A finite band mimics the locality
	// of discretised operators and keeps SpMxV cache behaviour realistic.
	Bandwidth int
	// DiagShift is added to the row-sum diagonal; it lower-bounds the
	// smallest eigenvalue, so smaller shifts give harder CG problems (more
	// iterations). Must be > 0.
	DiagShift float64
	// ValueDecades spreads the off-diagonal magnitudes over this many
	// decades (|value| ∈ 10^[-ValueDecades, 0)), mimicking heterogeneous
	// diffusion coefficients. Zero keeps the magnitudes within one decade,
	// which yields well-conditioned expander-like matrices that CG solves
	// in a handful of iterations; 3–4 decades produce the hundreds of
	// iterations typical of the paper's PDE matrices.
	ValueDecades float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// RandomSPD generates a symmetric strictly diagonally dominant (hence
// positive definite) matrix of dimension N with approximately Density·N²
// stored nonzeros. Off-diagonal values are drawn uniformly from [-1, 0);
// each diagonal entry is the absolute row sum plus DiagShift, which makes
// the matrix SPD by Gershgorin's theorem.
//
// This is the synthetic stand-in for the UFL collection matrices used in the
// paper: the experiments depend only on n, nnz and SPD-ness (see DESIGN.md).
func RandomSPD(opt RandomSPDOptions) *CSR {
	if opt.N <= 0 {
		panic("sparse: RandomSPD needs N > 0")
	}
	if opt.DiagShift <= 0 {
		panic("sparse: RandomSPD needs DiagShift > 0")
	}
	n := opt.N
	rng := rand.New(rand.NewSource(opt.Seed))

	targetNNZ := opt.Density * float64(n) * float64(n)
	// Off-diagonals per row (total, both triangles), excluding the diagonal.
	offPerRow := int(targetNNZ/float64(n)) - 1
	if offPerRow < 2 {
		offPerRow = 2
	}
	// We add symmetric pairs, so pick half as many upper-triangle entries.
	upperPerRow := offPerRow / 2
	if upperPerRow < 1 {
		upperPerRow = 1
	}

	band := opt.Bandwidth
	if band <= 0 {
		band = n
	}

	type key struct{ i, j int }
	seen := make(map[key]bool, n*upperPerRow)
	c := NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		placed := 0
		attempts := 0
		for placed < upperPerRow && attempts < 20*upperPerRow {
			attempts++
			lo := i + 1
			hi := i + band
			if hi > n-1 {
				hi = n - 1
			}
			if lo > hi {
				break
			}
			j := lo + rng.Intn(hi-lo+1)
			k := key{i, j}
			if seen[k] {
				continue
			}
			seen[k] = true
			v := -(rng.Float64()*0.9 + 0.1) // uniform in [-1, -0.1)
			if opt.ValueDecades > 0 {
				v = -math.Pow(10, -opt.ValueDecades*rng.Float64())
			}
			c.Add(i, j, v)
			c.Add(j, i, v)
			rowAbs[i] += -v
			rowAbs[j] += -v
			placed++
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+opt.DiagShift)
	}
	return c.ToCSR()
}

// SuiteSPDOptions configures SuiteSPD.
type SuiteSPDOptions struct {
	// N is the matrix dimension.
	N int
	// Density is the target nnz/N².
	Density float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// SuiteSPD generates the synthetic stand-ins for the paper's UFL test
// matrices: a 2D Dirichlet diffusion backbone (which gives the κ ~ N
// conditioning — and hence the hundreds of CG iterations — typical of
// discretised PDEs) filled to the target density with weak random band
// couplings (which carry the memory footprint and SpMxV cost of the denser
// collection matrices without destroying the spectrum).
//
// The result is symmetric and strictly diagonally dominant on the boundary
// rows (Dirichlet), hence positive definite.
func SuiteSPD(opt SuiteSPDOptions) *CSR {
	n := opt.N
	if n < 4 {
		panic("sparse: SuiteSPD needs N ≥ 4")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	ny := int(math.Sqrt(float64(n)))
	if ny < 2 {
		ny = 2
	}

	c := NewCOO(n, n)
	rowAbs := make([]float64, n)
	deficit := make([]float64, n) // Dirichlet boundary surplus per row

	// 5-point stencil backbone with mildly heterogeneous weights. Node i
	// sits at grid position (i/ny, i%ny); the last partial row of the grid
	// simply has fewer neighbours (extra Dirichlet boundary).
	couple := func(i, j int) {
		w := 0.5 + rng.Float64()
		c.Add(i, j, -w)
		c.Add(j, i, -w)
		rowAbs[i] += w
		rowAbs[j] += w
	}
	for i := 0; i < n; i++ {
		if (i+1)%ny != 0 && i+1 < n {
			couple(i, i+1) // east neighbour
		}
		if i+ny < n {
			couple(i, i+ny) // south neighbour
		}
		// Every missing neighbour (boundary) contributes its expected
		// weight to the diagonal, as eliminating a Dirichlet node does.
		neighbours := 0
		if i%ny != 0 {
			neighbours++
		}
		if (i+1)%ny != 0 && i+1 < n {
			neighbours++
		}
		if i >= ny {
			neighbours++
		}
		if i+ny < n {
			neighbours++
		}
		deficit[i] = float64(4-neighbours) * 1.0
	}

	// Weak band fill to the target density: these couplings are 1e-3 of
	// the backbone scale, so they dominate the memory and flop counts of
	// the suite matrices without changing the conditioning.
	extraPerRow := int(opt.Density*float64(n)) - 5
	band := 4 * ny
	type key struct{ i, j int }
	seen := make(map[key]bool)
	for i := 0; i < n && extraPerRow > 0; i++ {
		placed, attempts := 0, 0
		upper := extraPerRow / 2
		for placed < upper && attempts < 20*upper {
			attempts++
			lo, hi := i+2, i+band
			if hi > n-1 {
				hi = n - 1
			}
			if lo > hi {
				break
			}
			j := lo + rng.Intn(hi-lo+1)
			k := key{i, j}
			if seen[k] || (j-i) == ny {
				continue
			}
			seen[k] = true
			w := 1e-3 * (0.1 + rng.Float64())
			c.Add(i, j, -w)
			c.Add(j, i, -w)
			rowAbs[i] += w
			rowAbs[j] += w
			placed++
		}
	}

	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+deficit[i])
	}
	return c.ToCSR()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	return c.ToCSR()
}

// Dense converts a dense row-major matrix into CSR, dropping exact zeros.
// Intended for small test fixtures.
func Dense(rows, cols int, a []float64) *CSR {
	if len(a) != rows*cols {
		panic(fmt.Sprintf("sparse: Dense needs %d entries, got %d", rows*cols, len(a)))
	}
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := a[i*cols+j]; v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	return c.ToCSR()
}
