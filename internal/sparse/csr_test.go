package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fixture: the 3x3 matrix
//
//	[ 2 -1  0]
//	[-1  2 -1]
//	[ 0 -1  2]
func tri3() *CSR { return Tridiag(3, 2, -1) }

func TestCSRValidateOK(t *testing.T) {
	m := tri3()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", m.NNZ())
	}
	if m.MemoryWords() != 7+7+4 {
		t.Fatalf("MemoryWords = %d", m.MemoryWords())
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"rowidx0", func(m *CSR) { m.Rowidx[0] = 1 }},
		{"rowidxLast", func(m *CSR) { m.Rowidx[m.Rows] = 99 }},
		{"rowidxDecreasing", func(m *CSR) { m.Rowidx[1] = m.Rowidx[2] + 1 }},
		{"colidNegative", func(m *CSR) { m.Colid[0] = -1 }},
		{"colidTooBig", func(m *CSR) { m.Colid[0] = m.Cols }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tri3()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("Validate accepted corrupted matrix")
			}
		})
	}
}

func TestMulVec(t *testing.T) {
	m := tri3()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(y, x)
	want := []float64{0, 0, 4} // [2-2, -1+4-3, -2+6]
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestMulVecRow(t *testing.T) {
	m := tri3()
	x := []float64{1, 2, 3}
	for i := 0; i < 3; i++ {
		y := make([]float64, 3)
		m.MulVec(y, x)
		if got := m.MulVecRow(i, x); got != y[i] {
			t.Fatalf("MulVecRow(%d) = %v, want %v", i, got, y[i])
		}
	}
}

func TestMulTransVec(t *testing.T) {
	// Non-symmetric fixture: [1 2; 0 3].
	m := Dense(2, 2, []float64{1, 2, 0, 3})
	x := []float64{1, 1}
	y := make([]float64, 2)
	m.MulTransVec(y, x)
	want := []float64{1, 5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulTransVec = %v, want %v", y, want)
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := tri3()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestNorms(t *testing.T) {
	m := Dense(2, 2, []float64{1, -2, 3, 4})
	if got := m.Norm1(); got != 6 { // col sums |1|+|3|=4, |2|+|4|=6
		t.Errorf("Norm1 = %v, want 6", got)
	}
	if got := m.NormInf(); got != 7 { // row sums 3, 7
		t.Errorf("NormInf = %v, want 7", got)
	}
}

func TestColSumsDiagAt(t *testing.T) {
	m := tri3()
	cs := m.ColSums()
	want := []float64{1, 0, 1}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("ColSums = %v, want %v", cs, want)
		}
	}
	d := m.Diag()
	for i := range d {
		if d[i] != 2 {
			t.Fatalf("Diag = %v", d)
		}
	}
	if m.At(0, 1) != -1 || m.At(0, 2) != 0 {
		t.Fatal("At wrong")
	}
}

func TestCloneCopyEqual(t *testing.T) {
	m := tri3()
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("Clone not Equal")
	}
	c.Val[0] = 42
	if m.Equal(c) {
		t.Fatal("Equal missed value diff")
	}
	if m.Val[0] == 42 {
		t.Fatal("Clone shares Val array")
	}
	m.CopyFrom(c)
	if !m.Equal(c) {
		t.Fatal("CopyFrom did not restore equality")
	}
}

func TestEqualNaN(t *testing.T) {
	m := tri3()
	c := m.Clone()
	m.Val[0] = math.NaN()
	c.Val[0] = math.NaN()
	if !m.Equal(c) {
		t.Fatal("Equal should treat NaN == NaN")
	}
}

func TestSymmetryChecks(t *testing.T) {
	if !tri3().IsSymmetric(0) {
		t.Error("tridiag should be symmetric")
	}
	if Dense(2, 2, []float64{1, 2, 0, 3}).IsSymmetric(0) {
		t.Error("upper triangular is not symmetric")
	}
	if !tri3().IsDiagDominant() {
		t.Error("tridiag(2,-1) should be weakly diag dominant with strict rows")
	}
}

func TestMaxColNNZ(t *testing.T) {
	m := tri3()
	if got := m.MaxColNNZ(); got != 3 {
		t.Fatalf("MaxColNNZ = %d, want 3", got)
	}
}

func TestFlopsMulVec(t *testing.T) {
	if tri3().FlopsMulVec() != 14 {
		t.Fatal("FlopsMulVec wrong")
	}
}

func TestDensity(t *testing.T) {
	m := tri3()
	if got := m.Density(); math.Abs(got-7.0/9.0) > 1e-15 {
		t.Fatalf("Density = %v", got)
	}
}

// Property: MulVec agrees with a naive dense multiply on random matrices.
func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		dense := make([]float64, n*n)
		for i := range dense {
			if rng.Float64() < 0.3 {
				dense[i] = rng.NormFloat64()
			}
		}
		m := Dense(n, n, dense)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		m.MulVec(y, x)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += dense[i*n+j] * x[j]
			}
			if math.Abs(want-y[i]) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulTransVec(y, x) equals building the transpose densely.
func TestMulTransVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(10)
		cols := 2 + rng.Intn(10)
		dense := make([]float64, rows*cols)
		for i := range dense {
			if rng.Float64() < 0.4 {
				dense[i] = rng.NormFloat64()
			}
		}
		m := Dense(rows, cols, dense)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, cols)
		m.MulTransVec(y, x)
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += dense[i*cols+j] * x[i]
			}
			if math.Abs(want-y[j]) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
