package sparse

import (
	"fmt"
	"sort"
)

// COO accumulates matrix entries in coordinate (triplet) form and converts
// them to CSR. Duplicate entries at the same (i,j) are summed, matching the
// Matrix Market convention for assembled finite-element matrices.
type COO struct {
	rows, cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty rows×cols triplet accumulator.
func NewCOO(rows, cols int) *COO {
	return &COO{rows: rows, cols: cols}
}

// Rows returns the row dimension.
func (c *COO) Rows() int { return c.rows }

// Cols returns the column dimension.
func (c *COO) Cols() int { return c.cols }

// NNZ returns the number of accumulated triplets (before duplicate merging).
func (c *COO) NNZ() int { return len(c.V) }

// Add appends the entry A[i,j] += v. Panics on out-of-range indices: the
// generators are deterministic, so this is a programming error.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends A[i,j] += v and, when i != j, A[j,i] += v. Convenient for
// building symmetric matrices from their lower triangle.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// ToCSR converts the accumulated triplets into a CSR matrix with sorted
// column indices per row and duplicates summed. Entries that sum exactly to
// zero are kept (the structure may be meaningful, e.g. for checksums of
// pattern-symmetric matrices).
func (c *COO) ToCSR() *CSR {
	type trip struct {
		i, j int
		v    float64
	}
	ts := make([]trip, len(c.V))
	for k := range c.V {
		ts[k] = trip{c.I[k], c.J[k], c.V[k]}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].i != ts[b].i {
			return ts[a].i < ts[b].i
		}
		return ts[a].j < ts[b].j
	})

	m := &CSR{Rows: c.rows, Cols: c.cols, Rowidx: make([]int, c.rows+1)}
	for k := 0; k < len(ts); {
		i, j := ts[k].i, ts[k].j
		v := ts[k].v
		k++
		for k < len(ts) && ts[k].i == i && ts[k].j == j {
			v += ts[k].v
			k++
		}
		m.Val = append(m.Val, v)
		m.Colid = append(m.Colid, j)
		m.Rowidx[i+1]++
	}
	for i := 0; i < c.rows; i++ {
		m.Rowidx[i+1] += m.Rowidx[i]
	}
	return m
}
