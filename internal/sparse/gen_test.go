package sparse

import (
	"math"
	"testing"
)

func TestPoisson2DStructure(t *testing.T) {
	m := Poisson2D(4, 5)
	if m.Rows != 20 || m.Cols != 20 {
		t.Fatalf("dimensions %dx%d", m.Rows, m.Cols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Error("Poisson2D must be symmetric")
	}
	if !m.IsDiagDominant() {
		t.Error("Poisson2D must be diagonally dominant")
	}
	// Interior point has 5 nonzeros, corner has 3.
	nnzRow := func(i int) int { return m.Rowidx[i+1] - m.Rowidx[i] }
	if nnzRow(0) != 3 {
		t.Errorf("corner row nnz = %d, want 3", nnzRow(0))
	}
	// Row for grid point (1,1) = 1*5+1 = 6 is interior.
	if nnzRow(6) != 5 {
		t.Errorf("interior row nnz = %d, want 5", nnzRow(6))
	}
}

func TestPoisson3DStructure(t *testing.T) {
	m := Poisson3D(3, 3, 3)
	if m.Rows != 27 {
		t.Fatalf("rows = %d", m.Rows)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) || !m.IsDiagDominant() {
		t.Error("Poisson3D must be symmetric diagonally dominant")
	}
	// Center point (1,1,1) has 7 nonzeros.
	center := (1*3+1)*3 + 1
	if got := m.Rowidx[center+1] - m.Rowidx[center]; got != 7 {
		t.Errorf("center row nnz = %d, want 7", got)
	}
}

func TestTridiag(t *testing.T) {
	m := Tridiag(5, 2, -1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 13 {
		t.Fatalf("nnz = %d, want 13", m.NNZ())
	}
	if m.At(2, 2) != 2 || m.At(2, 3) != -1 || m.At(2, 0) != 0 {
		t.Fatal("wrong entries")
	}
}

func TestRandomGraphLaplacianZeroColSums(t *testing.T) {
	m := RandomGraphLaplacian(50, 4, 0, 7)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Error("Laplacian must be symmetric")
	}
	// The defining property for the shifted-checksum discussion: every
	// column of a combinatorial Laplacian sums to zero.
	for j, s := range m.ColSums() {
		if s != 0 {
			t.Fatalf("column %d sums to %v, want 0", j, s)
		}
	}
}

func TestRandomGraphLaplacianShifted(t *testing.T) {
	m := RandomGraphLaplacian(30, 4, 0.5, 7)
	if !m.IsDiagDominant() {
		t.Error("shifted Laplacian must be strictly diag dominant")
	}
	for j, s := range m.ColSums() {
		if math.Abs(s-0.5) > 1e-12 {
			t.Fatalf("column %d sums to %v, want 0.5", j, s)
		}
	}
}

func TestRandomGraphLaplacianDeterministic(t *testing.T) {
	a := RandomGraphLaplacian(40, 4, 0, 3)
	b := RandomGraphLaplacian(40, 4, 0, 3)
	if !a.Equal(b) {
		t.Fatal("generator is not deterministic for equal seeds")
	}
}

func TestRandomSPD(t *testing.T) {
	m := RandomSPD(RandomSPDOptions{N: 200, Density: 0.05, DiagShift: 1, Seed: 1})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Error("RandomSPD must be symmetric")
	}
	if !m.IsDiagDominant() {
		t.Error("RandomSPD must be strictly diagonally dominant")
	}
	// Density should be in the right ballpark (within 3x either way — the
	// generator rounds the per-row count).
	d := m.Density()
	if d < 0.05/3 || d > 0.05*3 {
		t.Errorf("density = %v, want ≈ 0.05", d)
	}
}

func TestRandomSPDDeterministic(t *testing.T) {
	opt := RandomSPDOptions{N: 100, Density: 0.03, DiagShift: 0.5, Seed: 42}
	if !RandomSPD(opt).Equal(RandomSPD(opt)) {
		t.Fatal("RandomSPD not deterministic")
	}
}

func TestRandomSPDBandwidth(t *testing.T) {
	band := 10
	m := RandomSPD(RandomSPDOptions{N: 150, Density: 0.02, Bandwidth: band, DiagShift: 1, Seed: 9})
	for i := 0; i < m.Rows; i++ {
		for k := m.Rowidx[i]; k < m.Rowidx[i+1]; k++ {
			if d := m.Colid[k] - i; d > band || d < -band {
				t.Fatalf("entry (%d,%d) outside bandwidth %d", i, m.Colid[k], band)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity MulVec wrong")
		}
	}
}

func TestDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dense(2, 2, []float64{1})
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 1, 5)
	m := c.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates merged)", m.NNZ())
	}
	if m.At(0, 0) != 3 {
		t.Fatalf("At(0,0) = %v, want 3", m.At(0, 0))
	}
}

func TestCOOSortedColumns(t *testing.T) {
	c := NewCOO(1, 5)
	c.Add(0, 4, 1)
	c.Add(0, 0, 1)
	c.Add(0, 2, 1)
	m := c.ToCSR()
	for k := 1; k < m.NNZ(); k++ {
		if m.Colid[k-1] >= m.Colid[k] {
			t.Fatal("columns not sorted within row")
		}
	}
}

func TestCOOAddSym(t *testing.T) {
	c := NewCOO(3, 3)
	c.AddSym(0, 1, -2)
	c.AddSym(2, 2, 5)
	m := c.ToCSR()
	if m.At(0, 1) != -2 || m.At(1, 0) != -2 || m.At(2, 2) != 5 {
		t.Fatal("AddSym entries wrong")
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}
