package tmr

import (
	"testing"

	"repro/internal/vec"
)

func TestDotNoFault(t *testing.T) {
	var e Executor
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := e.Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if v, m := e.Stats(); v != 1 || m != 0 {
		t.Fatalf("stats = %d votes, %d mismatches", v, m)
	}
}

func TestDotOutvotesSingleTransient(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		e := Executor{Corrupt: func(replica int, scalar *float64, _ []float64) {
			if replica == victim && scalar != nil {
				*scalar += 1e6
			}
		}}
		a := []float64{1, 2, 3}
		b := []float64{4, 5, 6}
		if got := e.Dot(a, b); got != 32 {
			t.Fatalf("victim %d: Dot = %v, want 32", victim, got)
		}
		if _, m := e.Stats(); m != 1 {
			t.Fatalf("victim %d: mismatch not recorded", victim)
		}
	}
}

func TestNorm2Sq(t *testing.T) {
	var e Executor
	if got := e.Norm2Sq([]float64{3, 4}); got != 25 {
		t.Fatalf("Norm2Sq = %v", got)
	}
}

func TestAxpyNoFault(t *testing.T) {
	var e Executor
	x := []float64{1, 2}
	y := []float64{10, 20}
	e.Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestAxpyOutvotesSingleTransient(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		e := Executor{Corrupt: func(replica int, _ *float64, out []float64) {
			if replica == victim && out != nil {
				out[0] += 42
			}
		}}
		x := []float64{1, 2}
		y := []float64{10, 20}
		e.Axpy(2, x, y)
		if y[0] != 12 || y[1] != 24 {
			t.Fatalf("victim %d: Axpy = %v", victim, y)
		}
		if _, m := e.Stats(); m != 1 {
			t.Fatalf("victim %d: mismatch not recorded", victim)
		}
	}
}

func TestAxpyTo(t *testing.T) {
	var e Executor
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	e.AxpyTo(dst, -1, x, y)
	if dst[0] != 9 || dst[1] != 18 {
		t.Fatalf("AxpyTo = %v", dst)
	}
	if y[0] != 10 {
		t.Fatal("AxpyTo modified y")
	}
}

func TestXpay(t *testing.T) {
	var e Executor
	x := []float64{1, 2}
	y := []float64{10, 20}
	e.Xpay(0.5, x, y)
	if y[0] != 6 || y[1] != 12 {
		t.Fatalf("Xpay = %v", y)
	}
}

func TestXpayOutvotesTransient(t *testing.T) {
	e := Executor{Corrupt: func(replica int, _ *float64, out []float64) {
		if replica == 2 && out != nil {
			out[1] = -999
		}
	}}
	x := []float64{1, 2}
	y := []float64{10, 20}
	e.Xpay(0.5, x, y)
	if y[1] != 12 {
		t.Fatalf("Xpay with transient = %v", y)
	}
}

func TestMatchesPlainKernels(t *testing.T) {
	var e Executor
	x := []float64{0.1, -2.5, 3.75, 4}
	y := []float64{1, 2, 3, 4}
	yCopy := append([]float64(nil), y...)
	e.Axpy(1.5, x, y)
	vec.Axpy(1.5, x, yCopy)
	for i := range y {
		if y[i] != yCopy[i] {
			t.Fatal("TMR Axpy differs from plain Axpy")
		}
	}
	if e.Dot(x, y) != vec.Dot(x, y) {
		t.Fatal("TMR Dot differs from plain Dot")
	}
}

func TestFlops(t *testing.T) {
	if FlopsDot(10) != 3*vec.FlopsDot(10) || FlopsAxpy(10) != 3*vec.FlopsAxpy(10) {
		t.Fatal("TMR flops must be 3x plain")
	}
}
