// Package tmr implements triple modular redundancy for the cheap vector
// kernels of the solvers (dot products, norms, axpy updates), as prescribed
// by the paper's Section 3: "As ABFT methods for vector operations is as
// costly as a repeated computation, we use triple modular redundancy (TMR)
// for them for simplicity … we compute the dots, norms and axpy operations
// in the resilient mode."
//
// Each operation is executed three times and the results voted: two
// matching replicas win. On deterministic hardware the three replicas are
// bit-identical unless a transient fault strikes one of them; the Corrupt
// hook lets tests and fault campaigns inject exactly such a transient into
// a chosen replica.
package tmr

import (
	"repro/internal/pool"
	"repro/internal/vec"
)

// Executor runs vector kernels in triple modular redundancy.
type Executor struct {
	// Corrupt, when non-nil, is invoked once per replica with the replica
	// index (0–2) and the scalar result or output vector, and may perturb it
	// to simulate a transient computation fault in that replica.
	Corrupt func(replica int, scalar *float64, vector []float64)

	// Pool, when non-nil, executes each replica's kernel across the worker
	// pool using the deterministic blocked variants from internal/vec, so
	// the three replicas stay bit-identical (the voting invariant) while the
	// O(n) work runs concurrently. Nil runs the same blocked kernels
	// sequentially — same bits, one goroutine.
	Pool *pool.Pool

	votes      int64
	mismatches int64

	// replicas is the resident scratch for the element-wise voted kernels:
	// reused across calls so steady-state TMR iterations allocate nothing.
	replicas [3][]float64
}

// Stats reports how many votes were taken and how many had a dissenting
// replica (i.e. a transient was outvoted).
func (e *Executor) Stats() (votes, mismatches int64) { return e.votes, e.mismatches }

// voteScalar returns the majority of three scalars; when all three differ it
// returns the first (detectable by the caller comparing replicas — with
// independent transients this is negligible, as the paper assumes).
func (e *Executor) voteScalar(a, b, c float64) float64 {
	e.votes++
	if a == b || a == c {
		if a != b || a != c {
			e.mismatches++
		}
		return a
	}
	e.mismatches++
	return b // b == c, or total disagreement
}

// Dot computes aᵀb with TMR. The fault-free fast path takes no replica
// addresses, so the replicas stay on the stack and the call is
// allocation-free; the Corrupt hook (tests and campaigns only) goes through
// the slow path.
func (e *Executor) Dot(a, b []float64) float64 {
	if e.Corrupt != nil {
		return e.dotCorrupt(a, b)
	}
	r0 := vec.DotPool(e.Pool, a, b)
	r1 := vec.DotPool(e.Pool, a, b)
	r2 := vec.DotPool(e.Pool, a, b)
	return e.voteScalar(r0, r1, r2)
}

func (e *Executor) dotCorrupt(a, b []float64) float64 {
	var r [3]float64
	for i := 0; i < 3; i++ {
		r[i] = vec.DotPool(e.Pool, a, b)
		e.Corrupt(i, &r[i], nil)
	}
	return e.voteScalar(r[0], r[1], r[2])
}

// Norm2Sq computes ‖a‖₂² with TMR (fast/corrupt split as in Dot).
func (e *Executor) Norm2Sq(a []float64) float64 {
	if e.Corrupt != nil {
		return e.norm2SqCorrupt(a)
	}
	r0 := vec.Norm2SqPool(e.Pool, a)
	r1 := vec.Norm2SqPool(e.Pool, a)
	r2 := vec.Norm2SqPool(e.Pool, a)
	return e.voteScalar(r0, r1, r2)
}

func (e *Executor) norm2SqCorrupt(a []float64) float64 {
	var r [3]float64
	for i := 0; i < 3; i++ {
		r[i] = vec.Norm2SqPool(e.Pool, a)
		e.Corrupt(i, &r[i], nil)
	}
	return e.voteScalar(r[0], r[1], r[2])
}

// Axpy computes y ← y + alpha·x with TMR: the three replica outputs are
// voted element-wise into y.
func (e *Executor) Axpy(alpha float64, x, y []float64) {
	e.applyVoted(y, func(dst []float64) {
		copy(dst, y)
		vec.AxpyPool(e.Pool, alpha, x, dst)
	})
}

// AxpyTo computes dst ← y + alpha·x with TMR.
func (e *Executor) AxpyTo(dst []float64, alpha float64, x, y []float64) {
	e.applyVoted(dst, func(out []float64) {
		vec.AxpyToPool(e.Pool, out, alpha, x, y)
	})
}

// Xpay computes y ← x + alpha·y with TMR.
func (e *Executor) Xpay(alpha float64, x, y []float64) {
	e.applyVoted(y, func(dst []float64) {
		copy(dst, y)
		vec.XpayPool(e.Pool, alpha, x, dst)
	})
}

// applyVoted runs op into three replica buffers, corrupts them through the
// hook, votes element-wise and writes the result into out.
func (e *Executor) applyVoted(out []float64, op func(dst []float64)) {
	n := len(out)
	var bufs [3][]float64
	for i := 0; i < 3; i++ {
		if cap(e.replicas[i]) < n {
			e.replicas[i] = make([]float64, n)
		}
		bufs[i] = e.replicas[i][:n]
		op(bufs[i])
		if e.Corrupt != nil {
			e.Corrupt(i, nil, bufs[i])
		}
	}
	e.votes++
	dissent := false
	for j := 0; j < n; j++ {
		a, b, c := bufs[0][j], bufs[1][j], bufs[2][j]
		switch {
		case a == b || a == c:
			if a != b || a != c {
				dissent = true
			}
			out[j] = a
		default:
			dissent = true
			out[j] = b
		}
	}
	if dissent {
		e.mismatches++
	}
}

// FlopsDot returns the TMR cost of a dot product: three replicas.
func FlopsDot(n int) int64 { return 3 * vec.FlopsDot(n) }

// FlopsAxpy returns the TMR cost of an axpy: three replicas.
func FlopsAxpy(n int) int64 { return 3 * vec.FlopsAxpy(n) }
