// Package checksum implements the weighted checksum encodings of the
// paper's Section 3.2: column checksums of a CSR matrix under the weight
// rows w1 = (1, …, 1) and w2 = (1, 2, …, n), the shift constant k that
// eliminates zero checksum columns (the paper's fix for matrices such as
// graph Laplacians, where Shantharam et al.'s scheme breaks down), row
// pointer checksums, and the floating-point comparison tolerances of
// Theorem 2.
//
// The two-row encoding is what enables forward recovery: a single error at
// position d produces checksum defects (δ, d·δ), so the ratio of the second
// defect to the first localises the error and the first defect is the
// correction value.
package checksum

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Unit roundoff of IEEE-754 binary64.
const u = 0x1p-53

// Gamma returns γ_m = m·u / (1 − m·u), the standard rounding-error constant
// of Higham's analysis (paper Theorem 2 uses γ_{2n}).
func Gamma(m int) float64 {
	mu := float64(m) * u
	return mu / (1 - mu)
}

// Sums returns the two weighted sums of v under the implicit weight rows
// w1 = ones and w2 = (1, 2, …, n): s1 = Σ vᵢ and s2 = Σ (i+1)·vᵢ.
func Sums(v []float64) (s1, s2 float64) {
	for i, x := range v {
		s1 += x
		s2 += float64(i+1) * x
	}
	return s1, s2
}

// SumsInt is Sums for integer arrays (used for the Rowidx pointers). The
// values are accumulated in float64; row pointers are ≤ nnz ≤ 2^40 in any
// realistic matrix, far below the 2^53 exact-integer range of float64.
func SumsInt(v []int) (s1, s2 float64) {
	for i, x := range v {
		s1 += float64(x)
		s2 += float64(i+1) * float64(x)
	}
	return s1, s2
}

// Matrix holds the reliable checksum encoding of a CSR matrix. It is
// computed once per matrix (ComputeChecksums in the paper's Algorithm 2) and
// reused across every protected SpMxV, which is what makes the per-product
// overhead O(n) rather than O(nnz).
type Matrix struct {
	N int // matrix dimension (square)

	// C1, C2 are the unshifted column checksums C_r[j] = Σᵢ w_r[i]·A[i][j].
	C1, C2 []float64

	// AbsC1, AbsC2 are the column checksums of |A| under |w_r|, used for the
	// componentwise rounding tolerance (paper Eq. (7)).
	AbsC1, AbsC2 []float64

	// K is the shift constant: C1[j] + K ≠ 0 for every column j, so errors
	// striking x are detectable even in zero-sum columns (paper Theorem 1,
	// condition 1).
	K float64

	// CR1, CR2 are the weighted checksums of the Rowidx array.
	CR1, CR2 float64

	// Norm1 is ‖A‖₁, retained for the norm-based tolerance (paper Eq. (9)).
	Norm1 float64
}

// NewMatrix computes the checksum encoding of A. A must be square (the
// solvers only protect square systems; the row-block parallel decomposition
// in internal/parallel handles the rectangular local blocks).
//
// The encoder tolerates a structurally corrupted representation — clamped
// row-pointer ranges, skipped out-of-range column indices — because the
// resilient drivers re-encode after rollbacks, and a checkpoint can carry a
// *latent* corruption whose numerical effect was below the detection
// tolerance (e.g. an out-of-range Colid on a tiny value). Re-encoding such
// a matrix simply adopts the harmless perturbation as the new reference.
func NewMatrix(a *sparse.CSR) *Matrix {
	return NewMatrixInto(nil, a)
}

// NewMatrixInto recomputes the checksum encoding of a into m, reusing its
// checksum rows when the dimension matches; a nil or mis-sized m gets fresh
// storage. The resilient drivers re-encode after every forward repair and
// rollback, so reuse keeps those paths allocation-free. The accumulation
// order is identical to a fresh NewMatrix, so the encoding is bitwise the
// same either way.
func NewMatrixInto(m *Matrix, a *sparse.CSR) *Matrix {
	if a.Rows != a.Cols {
		panic("checksum: NewMatrix requires a square matrix")
	}
	n := a.Rows
	nnz := len(a.Val)
	if m == nil || len(m.C1) != n {
		m = &Matrix{
			N:     n,
			C1:    make([]float64, n),
			C2:    make([]float64, n),
			AbsC1: make([]float64, n),
			AbsC2: make([]float64, n),
		}
	} else {
		m.N = n
		m.Norm1 = 0
		for j := 0; j < n; j++ {
			m.C1[j], m.C2[j], m.AbsC1[j], m.AbsC2[j] = 0, 0, 0, 0
		}
	}
	for i := 0; i < n; i++ {
		w2 := float64(i + 1)
		lo, hi := a.Rowidx[i], a.Rowidx[i+1]
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		for k := lo; k < hi; k++ {
			j := a.Colid[k]
			if uint(j) >= uint(n) {
				continue
			}
			v := a.Val[k]
			av := math.Abs(v)
			m.C1[j] += v
			m.C2[j] += w2 * v
			m.AbsC1[j] += av
			m.AbsC2[j] += w2 * av
		}
	}
	m.CR1, m.CR2 = SumsInt(a.Rowidx)
	for _, s := range m.AbsC1 {
		if s > m.Norm1 {
			m.Norm1 = s
		}
	}
	m.K = ShiftK(m.C1, m.Norm1)
	return m
}

// ShiftK returns a shift constant k such that colSums[j] + k ≠ 0 for all j.
// Any |colSums[j]| is bounded by ‖A‖₁, so norm1 + 1 always works; we keep
// the deterministic choice simple rather than minimal.
func ShiftK(colSums []float64, norm1 float64) float64 {
	k := norm1 + 1
	for hasZero(colSums, k) {
		k++ // can only happen with adversarial values; still terminates fast
	}
	return k
}

func hasZero(colSums []float64, k float64) bool {
	for _, c := range colSums {
		if c+k == 0 {
			return true
		}
	}
	return false
}

// ToleranceComponent returns the componentwise rounding tolerance of the
// paper's Eq. (7) for the weight row r ∈ {1, 2}:
//
//	2 γ_{2n} Σ_j AbsC_r[j]·|x_j|
//
// It costs one length-n pass per verification, and is far tighter than the
// norm bound for matrices with uneven column weights.
func (m *Matrix) ToleranceComponent(r int, x []float64) float64 {
	absC := m.absRow(r)
	var s float64
	for j, xj := range x {
		s += absC[j] * math.Abs(xj)
	}
	// The shift contributes |k|·Σ|x| to row 1's effective checksum when the
	// shifted test is used; fold it in for safety.
	if r == 1 {
		var sx float64
		for _, xj := range x {
			sx += math.Abs(xj)
		}
		s += math.Abs(m.K) * sx
	}
	return 2 * Gamma(2*m.N) * s
}

// ToleranceComponentBoth returns the componentwise tolerances of both
// weight rows in a single pass over x. Each accumulator follows the exact
// summation order of the corresponding ToleranceComponent call, so the
// results are bitwise identical to calling it twice at half the memory
// traffic.
func (m *Matrix) ToleranceComponentBoth(x []float64) (t1, t2 float64) {
	var s1, s2, sx float64
	for j, xj := range x {
		ax := math.Abs(xj)
		s1 += m.AbsC1[j] * ax
		s2 += m.AbsC2[j] * ax
		sx += ax
	}
	s1 += math.Abs(m.K) * sx
	g := 2 * Gamma(2*m.N)
	return g * s1, g * s2
}

// ToleranceNorm returns the norm-based tolerance of the paper's Eq. (9):
//
//	2 γ_{2n} n ‖w_r‖∞ ‖A‖₁ ‖x‖∞
//
// with ‖w1‖∞ = 1 and ‖w2‖∞ = n. It needs only ‖x‖∞ at verification time but
// overestimates badly for large n — kept for the ablation experiment.
func (m *Matrix) ToleranceNorm(r int, normXInf float64) float64 {
	wInf := 1.0
	if r == 2 {
		wInf = float64(m.N)
	}
	base := 2 * Gamma(2*m.N) * float64(m.N) * wInf * m.Norm1 * normXInf
	if r == 1 {
		base += 2 * Gamma(2*m.N) * float64(m.N) * math.Abs(m.K) * normXInf
	}
	return base
}

func (m *Matrix) absRow(r int) []float64 {
	switch r {
	case 1:
		return m.AbsC1
	case 2:
		return m.AbsC2
	default:
		panic("checksum: weight row index must be 1 or 2")
	}
}

// Row returns the unshifted checksum row r.
func (m *Matrix) Row(r int) []float64 {
	switch r {
	case 1:
		return m.C1
	case 2:
		return m.C2
	default:
		panic("checksum: weight row index must be 1 or 2")
	}
}

// FlopsCompute returns the flop count of NewMatrix (the setup cost that is
// amortised over all SpMxVs with the same matrix): roughly 8 flops per
// stored nonzero plus the Rowidx sums.
func FlopsCompute(a *sparse.CSR) int64 {
	return 8*int64(a.NNZ()) + 4*int64(len(a.Rowidx))
}

// Vector holds the reliable two-row checksum of a dense vector, refreshed
// whenever the vector is (re)written by a verified operation. It is the
// uniform extension of the paper's x-protection (auxiliary copy x′ and
// checksum c_x) to all solver vectors; see DESIGN.md.
type Vector struct {
	S1, S2 float64
}

// NewVector checksums v.
func NewVector(v []float64) Vector {
	s1, s2 := Sums(v)
	return Vector{S1: s1, S2: s2}
}

// Defect returns the checksum defects (d1, d2) of v against the recorded
// sums: dᵣ = Sᵣ − wᵣᵀv. A single error of value δ at index i produces
// (δ, (i+1)·δ) up to rounding.
func (c Vector) Defect(v []float64) (d1, d2 float64) {
	s1, s2 := Sums(v)
	return c.S1 - s1, c.S2 - s2
}

// VectorTolerance returns the rounding tolerance for comparing a length-n
// vector's running checksum against a stored one: 2 γ_n Σ|vᵢ| for row 1 and
// 2 γ_n Σ (i+1)|vᵢ| for row 2 (both returned).
func VectorTolerance(v []float64) (t1, t2 float64) {
	var a1, a2 float64
	for i, x := range v {
		ax := math.Abs(x)
		a1 += ax
		a2 += float64(i+1) * ax
	}
	g := 2 * Gamma(len(v))
	return g * a1, g * a2
}

// RandomWeights returns a random weight vector with entries in [0.5, 1.5),
// used by the weight-vector ablation (the paper argues the ones vector is
// preferable because random weights cost extra flops and rounding).
func RandomWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	return w
}

// GeneralMatrixChecksum computes wᵀA for an arbitrary weight vector — the
// generalised checksum row used by the ablation benchmarks.
func GeneralMatrixChecksum(a *sparse.CSR, w []float64) []float64 {
	if len(w) != a.Rows {
		panic("checksum: weight length mismatch")
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		wi := w[i]
		for k := a.Rowidx[i]; k < a.Rowidx[i+1]; k++ {
			out[a.Colid[k]] += wi * a.Val[k]
		}
	}
	return out
}
