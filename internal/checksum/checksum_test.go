package checksum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestGamma(t *testing.T) {
	g := Gamma(100)
	want := 100 * 0x1p-53 / (1 - 100*0x1p-53)
	if g != want {
		t.Fatalf("Gamma(100) = %v, want %v", g, want)
	}
	if Gamma(10) >= Gamma(20) {
		t.Fatal("Gamma must be increasing")
	}
}

func TestSums(t *testing.T) {
	s1, s2 := Sums([]float64{10, 20, 30})
	if s1 != 60 {
		t.Errorf("s1 = %v, want 60", s1)
	}
	if s2 != 10+40+90 {
		t.Errorf("s2 = %v, want 140", s2)
	}
}

func TestSumsInt(t *testing.T) {
	s1, s2 := SumsInt([]int{1, 2, 3})
	if s1 != 6 || s2 != 1+4+9 {
		t.Fatalf("SumsInt = %v, %v", s1, s2)
	}
}

func TestNewMatrixChecksums(t *testing.T) {
	// A = [2 -1 0; -1 2 -1; 0 -1 2]
	a := sparse.Tridiag(3, 2, -1)
	m := NewMatrix(a)
	// Column sums: [1, 0, 1]; weighted (1,2,3) column sums:
	// col0: 1*2 + 2*(-1) = 0; col1: 1*(-1)+2*2+3*(-1) = 0; col2: 2*(-1)+3*2 = 4.
	wantC1 := []float64{1, 0, 1}
	wantC2 := []float64{0, 0, 4}
	for j := range wantC1 {
		if m.C1[j] != wantC1[j] {
			t.Fatalf("C1 = %v, want %v", m.C1, wantC1)
		}
		if m.C2[j] != wantC2[j] {
			t.Fatalf("C2 = %v, want %v", m.C2, wantC2)
		}
	}
	// AbsC1: column sums of |A|: [3, 4, 3].
	if m.AbsC1[1] != 4 {
		t.Fatalf("AbsC1 = %v", m.AbsC1)
	}
	// Rowidx = [0 1 4 7] → wait: Tridiag(3) rowidx is [0,2,5,7].
	cr1, cr2 := SumsInt(a.Rowidx)
	if m.CR1 != cr1 || m.CR2 != cr2 {
		t.Fatal("Rowidx checksums wrong")
	}
	// Shift: norm1 = 4, k = 5, and C1[j]+k ∈ {6,5,6} all nonzero.
	if m.K != 5 {
		t.Fatalf("K = %v, want 5", m.K)
	}
	for j := range m.C1 {
		if m.C1[j]+m.K == 0 {
			t.Fatal("shifted checksum has a zero column")
		}
	}
}

func TestShiftKHandlesZeroColumnSums(t *testing.T) {
	// Graph Laplacians have exactly zero column sums: the motivating case.
	a := sparse.RandomGraphLaplacian(60, 4, 0, 5)
	m := NewMatrix(a)
	for j := range m.C1 {
		if m.C1[j] != 0 {
			t.Fatalf("Laplacian column %d sum = %v, want 0", j, m.C1[j])
		}
		if m.C1[j]+m.K == 0 {
			t.Fatal("shift failed to clear zero column")
		}
	}
}

func TestShiftKAdversarial(t *testing.T) {
	// Column sums engineered so the first candidate k collides.
	cols := []float64{-(1.5 + 1)} // norm1 pretend = 1.5 → k starts at 2.5
	k := ShiftK(cols, 1.5)
	if cols[0]+k == 0 {
		t.Fatal("ShiftK returned a colliding shift")
	}
}

func TestNewMatrixRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(sparse.Dense(2, 3, make([]float64, 6)))
}

// Property: checksum identity w_rᵀ(Ax) == C_rᵀx holds to within the
// componentwise tolerance for random matrices and vectors (fault-free).
func TestChecksumIdentityWithinTolerance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.2, DiagShift: 1, Seed: seed})
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		m := NewMatrix(a)
		y := make([]float64, n)
		a.MulVec(y, x)

		s1, s2 := Sums(y)
		var c1x, c2x float64
		for j := range x {
			c1x += m.C1[j] * x[j]
			c2x += m.C2[j] * x[j]
		}
		if math.Abs(s1-c1x) > m.ToleranceComponent(1, x) {
			return false
		}
		return math.Abs(s2-c2x) <= m.ToleranceComponent(2, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the shifted identity (paper Theorem 1, condition i) holds:
// (C1+k)ᵀx == Σy + k·Σx within tolerance.
func TestShiftedChecksumIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.3, DiagShift: 1, Seed: seed + 1})
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		m := NewMatrix(a)
		y := make([]float64, n)
		a.MulVec(y, x)
		var lhs float64
		for j := range x {
			lhs += (m.C1[j] + m.K) * x[j]
		}
		sy, _ := Sums(y)
		sx, _ := Sums(x)
		rhs := sy + m.K*sx
		return math.Abs(lhs-rhs) <= m.ToleranceComponent(1, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestToleranceNormDominatesComponent(t *testing.T) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 100, Density: 0.05, DiagShift: 1, Seed: 4})
	m := NewMatrix(a)
	x := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var nx float64
	for _, v := range x {
		if av := math.Abs(v); av > nx {
			nx = av
		}
	}
	for r := 1; r <= 2; r++ {
		comp := m.ToleranceComponent(r, x)
		norm := m.ToleranceNorm(r, nx)
		if comp > norm {
			t.Fatalf("row %d: component tolerance %v exceeds norm tolerance %v", r, comp, norm)
		}
	}
}

func TestVectorChecksumDefect(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	c := NewVector(v)
	d1, d2 := c.Defect(v)
	if d1 != 0 || d2 != 0 {
		t.Fatalf("clean defect = (%v,%v)", d1, d2)
	}
	// Corrupt index 2 by +5: defects must be (-5, -(2+1)*5).
	v[2] += 5
	d1, d2 = c.Defect(v)
	if d1 != -5 || d2 != -15 {
		t.Fatalf("defect = (%v,%v), want (-5,-15)", d1, d2)
	}
	// Localisation: ratio gives the 1-based position.
	if pos := d2 / d1; pos != 3 {
		t.Fatalf("position ratio = %v, want 3", pos)
	}
}

func TestVectorTolerance(t *testing.T) {
	v := []float64{1, -1, 1}
	t1, t2 := VectorTolerance(v)
	if t1 <= 0 || t2 <= 0 {
		t.Fatal("tolerances must be positive for nonzero vectors")
	}
	if t2 <= t1 {
		t.Fatal("row-2 tolerance must exceed row-1 for increasing weights")
	}
}

func TestRandomWeights(t *testing.T) {
	w := RandomWeights(100, 3)
	for _, v := range w {
		if v < 0.5 || v >= 1.5 {
			t.Fatalf("weight %v out of [0.5, 1.5)", v)
		}
	}
	w2 := RandomWeights(100, 3)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("RandomWeights not deterministic")
		}
	}
}

func TestGeneralMatrixChecksum(t *testing.T) {
	a := sparse.Tridiag(3, 2, -1)
	ones := []float64{1, 1, 1}
	got := GeneralMatrixChecksum(a, ones)
	m := NewMatrix(a)
	for j := range got {
		if got[j] != m.C1[j] {
			t.Fatalf("ones-weight general checksum %v != C1 %v", got, m.C1)
		}
	}
}

func TestFlopsCompute(t *testing.T) {
	a := sparse.Tridiag(10, 2, -1)
	if FlopsCompute(a) <= 0 {
		t.Fatal("flops must be positive")
	}
}

func TestRowAccessors(t *testing.T) {
	m := NewMatrix(sparse.Tridiag(3, 2, -1))
	if &m.Row(1)[0] != &m.C1[0] || &m.Row(2)[0] != &m.C2[0] {
		t.Fatal("Row accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for row 3")
		}
	}()
	m.Row(3)
}

func TestToleranceComponentBothMatchesSingleRows(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	m := NewMatrix(a)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%13) - 6.5
	}
	t1, t2 := m.ToleranceComponentBoth(x)
	if w1 := m.ToleranceComponent(1, x); math.Float64bits(t1) != math.Float64bits(w1) {
		t.Errorf("row 1: fused %v != single-pass %v", t1, w1)
	}
	if w2 := m.ToleranceComponent(2, x); math.Float64bits(t2) != math.Float64bits(w2) {
		t.Errorf("row 2: fused %v != single-pass %v", t2, w2)
	}
}

func TestNewMatrixIntoReusesAndMatches(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	fresh := NewMatrix(a)
	reused := NewMatrixInto(NewMatrix(sparse.Poisson2D(10, 10)), a)
	if &reused.C1[0] == &fresh.C1[0] {
		t.Fatal("test bug: expected distinct storage")
	}
	for j := range fresh.C1 {
		if fresh.C1[j] != reused.C1[j] || fresh.C2[j] != reused.C2[j] ||
			fresh.AbsC1[j] != reused.AbsC1[j] || fresh.AbsC2[j] != reused.AbsC2[j] {
			t.Fatalf("column %d: reused encode differs from fresh", j)
		}
	}
	if fresh.K != reused.K || fresh.Norm1 != reused.Norm1 || fresh.CR1 != reused.CR1 || fresh.CR2 != reused.CR2 {
		t.Fatal("scalar encoding differs between fresh and reused")
	}
	// Mis-sized reuse falls back to fresh storage.
	small := NewMatrix(sparse.Poisson2D(4, 4))
	grown := NewMatrixInto(small, a)
	if grown.N != a.Rows || len(grown.C1) != a.Rows {
		t.Fatalf("mis-sized reuse: N=%d len=%d", grown.N, len(grown.C1))
	}
}
