package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// BlockWorkspaces bundles the reusable arenas of a blocked multi-RHS solve:
// the core block workspace (shared matrix copy + checksum encoding, per-lane
// vectors), the solver workspace for the unprotected blocked CG, and a
// sequential workspace pair for the axis combinations the blocked drivers do
// not cover (see SolveBlockWith). Not safe for concurrent solves.
type BlockWorkspaces struct {
	Core   *core.BlockWorkspace
	Solver *solver.Workspace
	Seq    *Workspaces

	// per-lane scratch of the unprotected dispatch, reused across solves
	res  []solver.Result
	onit func(rhs, it int, res float64)

	// per-lane iteration adapters of the sequential fallback, bound to
	// seqCB so the closures themselves survive across solves (the warm
	// batched path is gated at zero allocations).
	seqCB   func(rhs, it int, rho float64)
	seqOnit []func(it int, rho float64)
}

// laneCallback returns lane j's iteration adapter for cb, growing the
// cached closure set on first use only.
func (ws *BlockWorkspaces) laneCallback(j int, cb func(rhs, it int, rho float64)) func(it int, rho float64) {
	ws.seqCB = cb
	for len(ws.seqOnit) <= j {
		lane := len(ws.seqOnit)
		ws.seqOnit = append(ws.seqOnit, func(it int, rho float64) { ws.seqCB(lane, it, rho) })
	}
	return ws.seqOnit[j]
}

// NewBlockWorkspaces returns an empty warm-up-on-first-use workspace bundle.
func NewBlockWorkspaces() *BlockWorkspaces {
	return &BlockWorkspaces{
		Core:   core.NewBlockWorkspace(),
		Solver: solver.NewWorkspace(),
		Seq:    &Workspaces{Core: core.NewWorkspace(), Solver: solver.NewWorkspace()},
	}
}

// BlockOpts bundles the execution hooks of SolveBlockWith. Every field is
// optional.
type BlockOpts struct {
	// Pool, when non-nil, runs the parallel kernels on the worker pool; the
	// arithmetic is identical either way.
	Pool *pool.Pool
	// Ws supplies the reusable block arenas; nil builds single-use ones.
	Ws *BlockWorkspaces
	// M is a prebuilt PCG preconditioner, forwarded to the sequential
	// fallback (the blocked drivers cover CG only).
	M *sparse.CSR
	// OnIteration, when non-nil, receives every right-hand side's
	// per-iteration recurrence scalar — for each RHS exactly the (it, rho)
	// stream a sequential SolveWith of that system would deliver.
	OnIteration func(rhs, it int, rho float64)
}

// SolveBlockWith solves the k systems A·x_j = bs[j] under one scenario's
// axes, with per-system trial seeds. Right-hand sides are prebuilt by the
// caller (the batch service resolves each from its own rhs_seed).
//
// Dispatch: CG × {unprotected, abft-detection, abft-correction} × fault-free
// runs the true blocked drivers (one matrix traversal per iteration covers
// every active system); every other combination — PCG, BiCGstab,
// online-detection, or fault injection, whose per-system injector streams
// and preconditioner state don't share a traversal — falls back to
// sequential per-system solves on the Seq workspace pair. Both paths are
// bitwise identical per system to a sequential SolveWith of that system
// alone; the blocked drivers guarantee it by construction (gated in CI on
// every suite matrix), the fallback trivially.
//
// Per-system statistics and errors land in sts[j] and errs[j] (length ≥ k).
func SolveBlockWith(a *sparse.CSR, bs [][]float64, sc Scenario, seeds []int64, opt BlockOpts, sts []core.Stats, errs []error) error {
	k := len(bs)
	if k == 0 {
		return nil
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return err
	}
	if len(seeds) < k {
		return fmt.Errorf("harness: SolveBlockWith needs len(seeds) ≥ %d", k)
	}
	if len(sts) < k || len(errs) < k {
		return fmt.Errorf("harness: SolveBlockWith needs len(sts) and len(errs) ≥ %d", k)
	}
	ws := opt.Ws
	if ws == nil {
		ws = NewBlockWorkspaces()
	}
	scheme, unprotected, _ := ParseScheme(sc.Scheme)

	switch {
	case sc.Solver == "cg" && sc.Alpha == 0 && unprotected:
		return solveBlockUnprotected(a, bs, sc, ws, opt, sts, errs)
	case sc.Solver == "cg" && sc.Alpha == 0 && (scheme == core.ABFTDetection || scheme == core.ABFTCorrection):
		_, err := core.SolveBlock(a, bs, core.BlockConfig{
			Scheme: scheme, S: sc.S, D: sc.D, Tol: sc.Tol, MaxIters: sc.MaxIters,
			Pool: opt.Pool, OnIteration: opt.OnIteration, Ws: ws.Core,
		}, sts, errs)
		return err
	default:
		for j := 0; j < k; j++ {
			scj := sc
			scj.Seed = seeds[j]
			var onIter func(it int, rho float64)
			if opt.OnIteration != nil {
				onIter = ws.laneCallback(j, opt.OnIteration)
			}
			_, st, err := SolveWith(a, bs[j], scj, seeds[j], SolveOpts{
				Pool: opt.Pool, Ws: ws.Seq, M: opt.M, OnIteration: onIter,
			})
			sts[j] = st
			errs[j] = err
		}
		return nil
	}
}

// solveBlockUnprotected runs the blocked unprotected CG and shapes each
// lane's outcome exactly as solveUnprotected would for that system alone.
func solveBlockUnprotected(a *sparse.CSR, bs [][]float64, sc Scenario, ws *BlockWorkspaces, opt BlockOpts, sts []core.Stats, errs []error) error {
	k := len(bs)
	opts := solver.BlockOptions{Tol: sc.Tol, MaxIter: sc.MaxIters, Ws: ws.Solver}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 20 * a.Rows
	}
	if opt.OnIteration != nil {
		opts.OnIteration = opt.OnIteration
	}
	ws.res = ws.res[:0]
	for len(ws.res) < k {
		ws.res = append(ws.res, solver.Result{})
	}
	if err := solver.CGBlock(a, bs, opts, ws.res, errs); err != nil {
		return err
	}
	titer := rawTiter(a, sc.Solver)
	for j := 0; j < k; j++ {
		res := ws.res[j]
		st := core.Stats{
			UsefulIterations: res.Iterations,
			TotalIterations:  int64(res.Iterations),
			Converged:        res.Converged,
		}
		st.SimTime = float64(res.Iterations) * titer
		st.TimeIter = st.SimTime
		if nb := normOf(bs[j]); nb > 0 {
			st.FinalResidual = res.Residual / nb
		}
		sts[j] = st
	}
	return nil
}
