package harness

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// MatrixSpec declaratively names a matrix source, so a scenario record can
// be replayed from its JSON form alone. Exactly one generator is selected by
// Gen; the remaining fields parameterise it (unused fields are ignored and
// omitted from JSON).
type MatrixSpec struct {
	// Gen selects the source: poisson2d, poisson3d, tridiag, laplacian,
	// randomspd, suite or file.
	Gen string `json:"gen"`
	// N is the target dimension for the synthetic generators. Stencil
	// generators round the side up, so the result covers at least N rows.
	// For suite matrices a nonzero N derives the downscale factor instead.
	N int `json:"n,omitempty"`
	// ID is the UFL collection id (Gen == "suite").
	ID int `json:"id,omitempty"`
	// Scale is the explicit suite downscale factor; 0 derives it from N.
	Scale int `json:"scale,omitempty"`
	// Seed drives the randomised generators (laplacian, randomspd).
	Seed int64 `json:"seed,omitempty"`
	// Shift is the diagonal shift of the laplacian generator.
	Shift float64 `json:"shift,omitempty"`
	// Density is the target density of the randomspd generator (default
	// 0.01).
	Density float64 `json:"density,omitempty"`
	// Path is the Matrix Market file (Gen == "file").
	Path string `json:"path,omitempty"`
}

// NewMatrixSpec resolves the generator grammar shared by the commands:
// "poisson2d", "poisson3d", "tridiag", "laplacian", "randomspd" or
// "suite:<id>", with n as the target dimension and seed for the randomised
// generators.
func NewMatrixSpec(gen string, n int, seed int64) (MatrixSpec, error) {
	if strings.HasPrefix(gen, "suite:") {
		id, err := strconv.Atoi(strings.TrimPrefix(gen, "suite:"))
		if err != nil {
			return MatrixSpec{}, fmt.Errorf("bad suite id in %q", gen)
		}
		if _, ok := SuiteByID(id); !ok {
			return MatrixSpec{}, fmt.Errorf("unknown suite matrix %d", id)
		}
		return MatrixSpec{Gen: "suite", ID: id, N: n}, nil
	}
	switch gen {
	case "poisson2d", "poisson3d", "tridiag", "laplacian", "randomspd":
		return MatrixSpec{Gen: gen, N: n, Seed: seed}, nil
	case "":
		return MatrixSpec{}, fmt.Errorf("empty generator")
	default:
		return MatrixSpec{}, fmt.Errorf("unknown generator %q", gen)
	}
}

// FileMatrixSpec names a Matrix Market file source.
func FileMatrixSpec(path string) MatrixSpec {
	return MatrixSpec{Gen: "file", Path: path}
}

// String renders a compact human-readable label for listings.
func (ms MatrixSpec) String() string {
	switch ms.Gen {
	case "suite":
		if ms.Scale > 1 {
			return fmt.Sprintf("suite:%d/s%d", ms.ID, ms.Scale)
		}
		return fmt.Sprintf("suite:%d", ms.ID)
	case "file":
		return "file:" + ms.Path
	default:
		return fmt.Sprintf("%s:%d", ms.Gen, ms.N)
	}
}

// Build materialises the matrix. Deterministic for a fixed spec.
func (ms MatrixSpec) Build() (*sparse.CSR, error) {
	switch ms.Gen {
	case "poisson2d":
		side := coveringRoot(ms.N, 2)
		return sparse.Poisson2D(side, side), nil
	case "poisson3d":
		side := coveringRoot(ms.N, 3)
		return sparse.Poisson3D(side, side, side), nil
	case "tridiag":
		if ms.N < 1 {
			return nil, fmt.Errorf("tridiag needs n ≥ 1, got %d", ms.N)
		}
		return sparse.Tridiag(ms.N, 2, -1), nil
	case "laplacian":
		return sparse.RandomGraphLaplacian(ms.N, 6, ms.Shift, ms.Seed), nil
	case "randomspd":
		density := ms.Density
		if density == 0 {
			density = 0.01
		}
		return sparse.RandomSPD(sparse.RandomSPDOptions{
			N: ms.N, Density: density, DiagShift: 0.5, Seed: ms.Seed,
		}), nil
	case "suite":
		sm, ok := SuiteByID(ms.ID)
		if !ok {
			return nil, fmt.Errorf("unknown suite matrix %d", ms.ID)
		}
		scale := ms.Scale
		if scale < 1 {
			scale = 1
			if ms.N > 0 && ms.N < sm.N {
				scale = sm.N / ms.N
			}
		}
		return sm.Generate(scale), nil
	case "file":
		f, err := os.Open(ms.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sparse.ReadMatrixMarket(f)
	case "":
		return nil, fmt.Errorf("matrix spec has no generator")
	default:
		return nil, fmt.Errorf("unknown generator %q", ms.Gen)
	}
}

// coveringRoot returns the smallest side whose deg-th power covers n.
func coveringRoot(n, deg int) int {
	s := 1
	for {
		p := 1
		for i := 0; i < deg; i++ {
			p *= s
		}
		if p >= n {
			return s
		}
		s++
	}
}
