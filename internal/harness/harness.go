// Package harness is the scenario subsystem behind every experiment and
// benchmark in this repository: it composes the existing axes — matrix
// generators, solvers (CG, PCG, BiCGstab), protection schemes (the three
// resilient methods plus the unprotected baseline), the silent-error
// injector and worker counts — into named, seeded, reproducible scenarios
// with a typed, schema-versioned JSON result record.
//
// The experiment packages (internal/sim) define the paper's Table 1 and
// Figure 1 campaigns as harness scenarios, cmd/resbench lists and runs
// registered scenarios (optionally sharded across processes, with an
// aggregator that merges shard outputs), and CI drives a smoke campaign
// whose records gate regressions.
//
// Every scenario is deterministic in its seed: the solver kernels use
// deterministic blocked arithmetic and per-trial injector seeds are fixed
// by trial index, so a record's canonical form (wall time excluded) is
// bitwise identical for any worker count.
package harness

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Scenario names one reproducible experiment cell: a matrix, a solver, a
// protection scheme, a fault rate and the seeding. The zero value of every
// optional field selects a sensible default (see withDefaults).
type Scenario struct {
	// Name uniquely identifies the scenario in the registry and in result
	// records, conventionally path-like: "smoke/cg/abft-correction/poisson2d".
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// Tags support substring filtering beyond the name.
	Tags []string `json:"tags,omitempty"`
	// Matrix names the matrix source.
	Matrix MatrixSpec `json:"matrix"`
	// Solver is cg (default), pcg or bicgstab.
	Solver string `json:"solver,omitempty"`
	// Precond is the PCG preconditioner: jacobi (default) or neumann.
	Precond string `json:"precond,omitempty"`
	// Scheme is unprotected, online-detection, abft-detection or
	// abft-correction (default).
	Scheme string `json:"scheme,omitempty"`
	// Alpha is the expected silent errors per iteration (0 = fault-free).
	Alpha float64 `json:"alpha,omitempty"`
	// Tol is the relative residual tolerance (0 = the solver default, 1e-8).
	Tol float64 `json:"tol,omitempty"`
	// MaxIters caps the useful iterations (0 = the solver default).
	MaxIters int `json:"max_iters,omitempty"`
	// S and D override the model-optimal checkpoint and verification
	// intervals when > 0.
	S int `json:"s,omitempty"`
	D int `json:"d,omitempty"`
	// Reps is the number of independent trials (default 1). Trial i uses
	// injector seed Seed + i·7919.
	Reps int `json:"reps,omitempty"`
	// Seed bases the deterministic trial seeding.
	Seed int64 `json:"seed,omitempty"`
	// RHSSeed, when set, seeds the manufactured right-hand side instead of
	// Seed. A pointer so that every value — including 0 — is expressible:
	// campaigns share one RHS across cells whose trial seeds differ (see
	// WithRHSSeed).
	RHSSeed *int64 `json:"rhs_seed,omitempty"`
	// Baseline requests an additional fault-free unprotected reference solve
	// so the record reports the protection overhead.
	Baseline bool `json:"baseline,omitempty"`
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Solver == "" {
		sc.Solver = "cg"
	}
	if sc.Scheme == "" {
		sc.Scheme = "abft-correction"
	}
	if sc.Solver == "pcg" && sc.Precond == "" {
		sc.Precond = "jacobi"
	}
	if sc.Reps < 1 {
		sc.Reps = 1
	}
	return sc
}

func (sc Scenario) rhsSeed() int64 {
	if sc.RHSSeed != nil {
		return *sc.RHSSeed
	}
	return sc.Seed
}

// WithRHSSeed pins the right-hand-side seed (any value, 0 included),
// decoupling it from the per-cell trial seeding.
func (sc Scenario) WithRHSSeed(seed int64) Scenario {
	sc.RHSSeed = &seed
	return sc
}

// Validate rejects axis combinations the drivers do not support.
func (sc Scenario) Validate() error {
	sc = sc.withDefaults()
	switch sc.Solver {
	case "cg", "pcg", "bicgstab":
	default:
		return fmt.Errorf("harness: unknown solver %q", sc.Solver)
	}
	if sc.Scheme != "unprotected" {
		if _, _, err := ParseScheme(sc.Scheme); err != nil {
			return err
		}
	}
	if sc.Scheme == "unprotected" && sc.Alpha > 0 {
		return fmt.Errorf("harness: %s: the unprotected baseline cannot run under fault injection", sc.Name)
	}
	if sc.Solver == "bicgstab" && sc.Scheme == "online-detection" {
		return fmt.Errorf("harness: %s: BiCGstab supports the ABFT schemes only", sc.Name)
	}
	if sc.Solver == "pcg" {
		switch sc.Precond {
		case "jacobi", "neumann":
		default:
			return fmt.Errorf("harness: unknown preconditioner %q", sc.Precond)
		}
	}
	return nil
}

// ParseScheme resolves a scheme slug (or its common aliases) to the core
// scheme. The second result is true for the unprotected baseline, in which
// case the core scheme is meaningless.
func ParseScheme(name string) (core.Scheme, bool, error) {
	switch name {
	case "online-detection", "online":
		return core.OnlineDetection, false, nil
	case "abft-detection", "abft-d":
		return core.ABFTDetection, false, nil
	case "abft-correction", "abft-c":
		return core.ABFTCorrection, false, nil
	case "unprotected", "none":
		return 0, true, nil
	default:
		return 0, false, fmt.Errorf("unknown scheme %q", name)
	}
}

// SchemeSlug is the inverse of ParseScheme for the protected schemes.
func SchemeSlug(s core.Scheme) string {
	switch s {
	case core.OnlineDetection:
		return "online-detection"
	case core.ABFTDetection:
		return "abft-detection"
	default:
		return "abft-correction"
	}
}

// Workspaces bundles the reusable solver arenas of one campaign worker:
// trials running on it reuse the working matrix copies, iteration vectors,
// checksum encodings and checkpoint stores, so a warm worker performs
// per-trial heap allocations only for the bookkeeping the drivers cannot
// recycle. Not safe for concurrent solves.
type Workspaces struct {
	Core   *core.Workspace
	Solver *solver.Workspace
}

// wsPool recycles per-worker workspaces across the campaign fan-out.
var wsPool = sync.Pool{New: func() any {
	return &Workspaces{Core: core.NewWorkspace(), Solver: solver.NewWorkspace()}
}}

// SolveOne runs a single trial of the scenario on a prebuilt matrix and
// right-hand side: it constructs the injector from (sc.Alpha, seed),
// dispatches on the solver axis and returns the solution and statistics.
// onIter, when non-nil, receives the per-iteration recurrence scalar (used
// to fingerprint trajectories). pl, when non-nil, runs the solver kernels
// on the worker pool; the arithmetic is identical either way.
func SolveOne(pl *pool.Pool, a *sparse.CSR, b []float64, sc Scenario, seed int64, onIter func(it int, rho float64)) ([]float64, core.Stats, error) {
	return SolveWith(a, b, sc, seed, SolveOpts{Pool: pl, OnIteration: onIter})
}

// SolveOpts bundles the cache-aware execution hooks of SolveWith. Every
// field is optional; the zero value reproduces SolveOne.
type SolveOpts struct {
	// Pool, when non-nil, runs the solver kernels on the worker pool; the
	// arithmetic is identical either way.
	Pool *pool.Pool
	// Ws supplies reusable solver arenas: a warm workspace pair makes the
	// solve allocation-free, and the returned solution aliases workspace
	// memory. Must not be shared by concurrent solves.
	Ws *Workspaces
	// M is a prebuilt PCG preconditioner (the matrix buildPrecond would
	// derive from sc.Precond). Callers that serve many solves on one
	// matrix cache it so the request path skips reconstruction; nil builds
	// it per call. Ignored for non-PCG solvers.
	M *sparse.CSR
	// OnIteration, when non-nil, receives the per-iteration recurrence
	// scalar (used to fingerprint trajectories).
	OnIteration func(it int, rho float64)
	// OnDetection, when non-nil, receives one event per fault-detection
	// episode (streaming solves surface these live). The unprotected
	// scheme has no detection machinery and never calls it.
	OnDetection func(core.DetectionEvent)
}

// SolveWith is the single-trial solve primitive behind SolveOne and the
// campaign drivers, with every reusable artifact injectable: long-running
// callers (the solve service) hand in cached workspaces and
// preconditioners so a warm solve of a known matrix never reconstructs
// per-matrix state. Results are bitwise identical for any combination of
// hooks.
func SolveWith(a *sparse.CSR, b []float64, sc Scenario, seed int64, opt SolveOpts) ([]float64, core.Stats, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, core.Stats{}, err
	}
	var coreWs *core.Workspace
	var solverWs *solver.Workspace
	if opt.Ws != nil {
		coreWs, solverWs = opt.Ws.Core, opt.Ws.Solver
	}
	scheme, unprotected, _ := ParseScheme(sc.Scheme)
	if unprotected {
		return solveUnprotected(a, b, sc, opt.M, solverWs, opt.OnIteration)
	}
	var inj *fault.Injector
	if sc.Alpha > 0 {
		inj = fault.New(fault.Config{Alpha: sc.Alpha, Seed: seed})
	}
	switch sc.Solver {
	case "pcg":
		m := opt.M
		if m == nil {
			var err error
			if m, err = buildPrecond(a, sc.Precond); err != nil {
				return nil, core.Stats{}, err
			}
		}
		return core.SolvePCG(a, b, core.PCGConfig{
			Scheme: scheme, M: m, S: sc.S, D: sc.D, Tol: sc.Tol,
			MaxIters: sc.MaxIters, Injector: inj, Pool: opt.Pool, OnIteration: opt.OnIteration,
			OnDetection: opt.OnDetection, Ws: coreWs,
		})
	case "bicgstab":
		return core.SolveBiCGstab(a, b, core.BiCGstabConfig{
			Scheme: scheme, S: sc.S, Tol: sc.Tol,
			MaxIters: sc.MaxIters, Injector: inj, Pool: opt.Pool, OnIteration: opt.OnIteration,
			OnDetection: opt.OnDetection, Ws: coreWs,
		})
	default: // cg
		return core.Solve(a, b, core.Config{
			Scheme: scheme, S: sc.S, D: sc.D, Tol: sc.Tol,
			MaxIters: sc.MaxIters, Injector: inj, Pool: opt.Pool, OnIteration: opt.OnIteration,
			OnDetection: opt.OnDetection, Ws: coreWs,
		})
	}
}

// solveUnprotected runs the fault-free reference solver and shapes its
// outcome as core.Stats: SimTime is iterations × the raw Titer of the cost
// model, so overheads computed against it match the paper's normalisation.
// The residual history streams through the solver's OnIteration hook, so a
// warm workspace-carrying solve allocates nothing even when fingerprinted.
func solveUnprotected(a *sparse.CSR, b []float64, sc Scenario, m *sparse.CSR, ws *solver.Workspace, onIter func(it int, rho float64)) ([]float64, core.Stats, error) {
	opt := solver.Options{Tol: sc.Tol, MaxIter: sc.MaxIters, OnIteration: onIter, Ws: ws}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 20 * a.Rows
	}
	var res solver.Result
	var err error
	switch sc.Solver {
	case "pcg":
		// Apply the same explicit preconditioner the protected driver would
		// protect, so overheads compare like against like.
		if m == nil {
			m, err = buildPrecond(a, sc.Precond)
		}
		if err == nil {
			res, err = solver.PCGWith(a, m, b, opt)
		}
	case "bicgstab":
		res, err = solver.BiCGstab(a, b, opt)
	default:
		res, err = solver.CG(a, b, opt)
	}
	st := core.Stats{
		UsefulIterations: res.Iterations,
		TotalIterations:  int64(res.Iterations),
		Converged:        res.Converged,
	}
	st.SimTime = float64(res.Iterations) * rawTiter(a, sc.Solver)
	st.TimeIter = st.SimTime
	if nb := normOf(b); nb > 0 {
		st.FinalResidual = res.Residual / nb
	}
	return res.X, st, err
}

// rawTiter is the modeled cost of one raw (unprotected) iteration.
func rawTiter(a *sparse.CSR, solverKind string) float64 {
	t := core.NewCosts(a, core.OnlineDetection, core.DefaultCostParams()).Titer
	if solverKind == "bicgstab" {
		t *= 2 // two products and roughly twice the vector work
	}
	return t
}

func normOf(b []float64) float64 {
	var s float64
	for _, v := range b {
		s += v * v
	}
	if s == 0 {
		return 1
	}
	return math.Sqrt(s)
}

func buildPrecond(a *sparse.CSR, kind string) (*sparse.CSR, error) {
	switch kind {
	case "neumann":
		return precond.Neumann(a, precond.NeumannOptions{})
	default:
		return precond.Jacobi(a)
	}
}

// trialOutcome is one rep's contribution to the aggregate record.
type trialOutcome struct {
	st     core.Stats
	failed bool
}

// trialSeedStride spaces the per-trial injector seeds (kept identical to
// the historical campaign seeding so refactored experiments reproduce their
// previous outputs).
const trialSeedStride = 7919

// runTrials executes sc.Reps independent trials. With a pool and more than
// one rep the trials fan out across workers (sequential kernels); a single
// rep instead hands the pool to the solver kernels. Trial 0 records the
// per-iteration recurrence history into hist. Outcomes land in per-trial
// slots, so the result is deterministic for any worker count.
func runTrials(pl *pool.Pool, a *sparse.CSR, b []float64, sc Scenario) (outs []trialOutcome, hist []float64) {
	sc = sc.withDefaults()
	outs = make([]trialOutcome, sc.Reps)
	trial := func(rep int) {
		var onIter func(int, float64)
		if rep == 0 {
			onIter = func(_ int, rho float64) { hist = append(hist, rho) }
		}
		ws := wsPool.Get().(*Workspaces)
		_, st, err := SolveWith(a, b, sc, sc.Seed+int64(rep)*trialSeedStride,
			SolveOpts{Pool: kernelPool(pl, sc.Reps), Ws: ws, OnIteration: onIter})
		wsPool.Put(ws)
		outs[rep] = trialOutcome{st: st, failed: err != nil}
	}
	if pl == nil || sc.Reps == 1 {
		for rep := 0; rep < sc.Reps; rep++ {
			trial(rep)
		}
	} else {
		pl.ForEach(sc.Reps, trial)
	}
	return outs, hist
}

// kernelPool decides where the pool goes: campaigns (reps > 1) spend it on
// the trial fan-out, single solves spend it inside the kernels.
func kernelPool(pl *pool.Pool, reps int) *pool.Pool {
	if reps == 1 {
		return pl
	}
	return nil
}

// TrialsOn is the campaign primitive: it runs the scenario's repetitions on
// the pool (nil = sequential) against a prebuilt matrix and right-hand side
// and returns the mean modeled time, the per-trial samples and the failure
// count — deterministic in sc.Seed for any worker count.
func TrialsOn(pl *pool.Pool, a *sparse.CSR, b []float64, sc Scenario) (mean float64, samples []float64, failures int) {
	outs, _ := runTrials(pl, a, b, sc)
	samples = make([]float64, len(outs))
	for i, o := range outs {
		samples[i] = o.st.SimTime
		if o.failed {
			failures++
		}
	}
	return Mean(samples), samples, failures
}

// RunOn runs the full scenario against a prebuilt matrix on the given pool
// and aggregates the trials into a Result record.
func RunOn(pl *pool.Pool, a *sparse.CSR, sc Scenario) (Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	b, _ := RHS(a, sc.rhsSeed())
	start := time.Now()
	outs, hist := runTrials(pl, a, b, sc)
	wall := time.Since(start).Seconds()

	res := newResult(sc, a, outs, hist)
	res.WallSeconds = wall
	if sc.Baseline && sc.Scheme != "unprotected" {
		base := sc
		base.Scheme = "unprotected"
		base.Alpha = 0
		base.Reps = 1
		base.Baseline = false
		switch _, st, err := SolveOne(pl, a, b, base, base.Seed, nil); {
		case err != nil:
			res.BaselineError = err.Error()
		case st.SimTime <= 0:
			res.BaselineError = "baseline solve reported no time"
		default:
			res.BaselineTime = st.SimTime
			res.Overhead = res.MeanSimTime/st.SimTime - 1
		}
	}
	return res, nil
}

// Run builds the scenario's matrix, sizes a pool from opt and runs it.
func Run(sc Scenario, opt RunOptions) (Result, error) {
	sc = sc.withDefaults()
	if opt.Seed != 0 {
		sc.Seed = opt.Seed
	}
	if opt.Reps > 0 {
		sc.Reps = opt.Reps
	}
	if opt.Baseline {
		sc.Baseline = true
	}
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	a, err := sc.Matrix.Build()
	if err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", sc.Name, err)
	}
	pl, done := PoolFor(opt.Workers)
	defer done()
	res, err := RunOn(pl, a, sc)
	if err != nil {
		return res, err
	}
	res.Workers = opt.Workers
	return res, nil
}

// RunOptions are the per-invocation knobs of Run, overriding the scenario's
// own values when set.
type RunOptions struct {
	// Workers sizes the worker pool: 0 = the shared GOMAXPROCS pool, 1 =
	// sequential, otherwise a dedicated pool of that size.
	Workers int
	// Seed overrides the scenario seed when nonzero.
	Seed int64
	// Reps overrides the scenario repetitions when positive.
	Reps int
	// Baseline forces the unprotected reference solve on.
	Baseline bool
}

// PoolFor resolves the Workers knob shared by the commands: 0 selects the
// process-wide default pool, 1 forces sequential execution, and any other
// value sizes a dedicated pool. The returned cleanup releases a dedicated
// pool's workers (and is a no-op otherwise).
func PoolFor(workers int) (*pool.Pool, func()) {
	switch {
	case workers == 1:
		return nil, func() {}
	case workers > 1:
		p := pool.New(workers)
		return p, p.Close
	default:
		return pool.Default(), func() {}
	}
}
