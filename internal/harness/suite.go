package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// SuiteMatrix describes one matrix of the paper's test suite by its
// published properties (paper Table 1, columns 1–3): the UFL collection id,
// the dimension n and the density nnz/n². The actual UFL files are not
// redistributable here, so Generate builds a synthetic SPD matrix matching
// n and density — the only properties the experiments depend on (they set
// the memory size M, the iteration cost and the checksum costs).
type SuiteMatrix struct {
	ID      int
	N       int
	Density float64
}

// PaperSuite lists the nine positive definite matrices of the paper's
// Table 1, with n between 17456 and 74752 and density below 1e-2.
var PaperSuite = []SuiteMatrix{
	{ID: 341, N: 23052, Density: 2.15e-3},
	{ID: 752, N: 74752, Density: 1.07e-4},
	{ID: 924, N: 60000, Density: 2.11e-4},
	{ID: 1288, N: 30401, Density: 5.10e-4},
	{ID: 1289, N: 36441, Density: 4.26e-4},
	{ID: 1311, N: 48962, Density: 2.14e-4},
	{ID: 1312, N: 40000, Density: 1.24e-4},
	{ID: 1848, N: 65025, Density: 2.44e-4},
	{ID: 2213, N: 20000, Density: 1.39e-3},
}

// SuiteByID returns the suite entry with the given UFL id, or false.
func SuiteByID(id int) (SuiteMatrix, bool) {
	for _, m := range PaperSuite {
		if m.ID == id {
			return m, true
		}
	}
	return SuiteMatrix{}, false
}

// SelectSuite resolves a comma-separated list of UFL ids against the paper
// suite; an empty string selects all nine matrices. The experiment commands
// share it for their -matrices flags.
func SelectSuite(ids string) ([]SuiteMatrix, error) {
	if ids == "" {
		return PaperSuite, nil
	}
	var suite []SuiteMatrix
	for _, part := range strings.Split(ids, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad matrix id %q: %v", part, err)
		}
		m, ok := SuiteByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown matrix id %d", id)
		}
		suite = append(suite, m)
	}
	return suite, nil
}

// ScaledN returns the dimension after downscaling by `scale` (≥ 1). The
// density is scaled up by the same factor, which preserves the
// nonzeros-per-row profile — and with it every cost ratio of the model
// (Titer/Tverif/Tcp are all per-row-profile quantities).
func (sm SuiteMatrix) ScaledN(scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := sm.N / scale
	if n < 200 {
		n = 200
	}
	return n
}

// Generate builds the synthetic SPD instance at the given downscale factor:
// a 2D diffusion backbone (PDE-like conditioning, so CG takes O(√n)
// iterations as on the real collection matrices) filled to the target
// density with weak band couplings (see sparse.SuiteSPD). Deterministic for
// fixed (id, scale).
func (sm SuiteMatrix) Generate(scale int) *sparse.CSR {
	n := sm.ScaledN(scale)
	density := sm.Density * float64(sm.N) / float64(n) // preserve nnz/row
	return sparse.SuiteSPD(sparse.SuiteSPDOptions{
		N:       n,
		Density: density,
		Seed:    int64(sm.ID),
	})
}

// RHS manufactures a right-hand side b = A·xTrue for a random solution
// vector, deterministic in the seed. Returns b and xTrue.
func RHS(a *sparse.CSR, seed int64) (b, xTrue []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := a.Rows
	xTrue = make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b = make([]float64, n)
	a.MulVec(b, xTrue)
	return b, xTrue
}
