package harness

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanCI returns the mean and the half-width of its 95% normal confidence
// interval.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// LogSpace returns k points logarithmically spaced between lo and hi
// inclusive.
func LogSpace(lo, hi float64, k int) []float64 {
	if k <= 1 {
		return []float64{lo}
	}
	out := make([]float64, k)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		t := float64(i) / float64(k-1)
		out[i] = math.Exp(llo + t*(lhi-llo))
	}
	return out
}
