package harness

import "fmt"

// The built-in catalog: a smoke tier small enough for CI to run on every
// push (exercising every axis — solvers, schemes, generators, fault rates)
// and a sweep tier for quick local fault-rate scans. Campaign-scale
// scenarios (the paper's Table 1 and Figure 1 cells) are registered by
// internal/sim on top of these.
func init() {
	for _, scheme := range []string{"unprotected", "online-detection", "abft-detection", "abft-correction"} {
		alpha := 1.0 / 64
		if scheme == "unprotected" {
			alpha = 0
		}
		MustRegister(Scenario{
			Name:        "smoke/cg/" + scheme + "/poisson2d",
			Description: fmt.Sprintf("CG %s on a 30×30 Poisson stencil, α=%g", scheme, alpha),
			Tags:        []string{"smoke", "ci"},
			Matrix:      MatrixSpec{Gen: "poisson2d", N: 900},
			Solver:      "cg",
			Scheme:      scheme,
			Alpha:       alpha,
			Reps:        3,
			Seed:        1,
			Baseline:    scheme != "unprotected",
		})
	}
	MustRegister(Scenario{
		Name:        "smoke/pcg/abft-correction/suite2213",
		Description: "Jacobi-PCG ABFT-Correction on the downscaled suite matrix #2213",
		Tags:        []string{"smoke", "ci"},
		Matrix:      MatrixSpec{Gen: "suite", ID: 2213, Scale: 96},
		Solver:      "pcg",
		Precond:     "jacobi",
		Scheme:      "abft-correction",
		Alpha:       1.0 / 32,
		Reps:        3,
		Seed:        1,
		Baseline:    true,
	})
	MustRegister(Scenario{
		Name:        "smoke/bicgstab/abft-detection/randomspd",
		Description: "BiCGstab ABFT-Detection on a random banded SPD matrix",
		Tags:        []string{"smoke", "ci"},
		Matrix:      MatrixSpec{Gen: "randomspd", N: 600, Seed: 42},
		Solver:      "bicgstab",
		Scheme:      "abft-detection",
		Alpha:       1.0 / 64,
		Reps:        3,
		Seed:        1,
		Baseline:    true,
	})
	MustRegister(Scenario{
		Name:        "smoke/cg/abft-correction/tridiag",
		Description: "Fault-free CG ABFT-Correction on the 1D Laplacian",
		Tags:        []string{"smoke", "ci"},
		Matrix:      MatrixSpec{Gen: "tridiag", N: 400},
		Solver:      "cg",
		Scheme:      "abft-correction",
		Reps:        1,
		Seed:        1,
		Baseline:    true,
	})
	for _, mtbf := range []float64{100, 1000, 10000} {
		MustRegister(Scenario{
			Name:        fmt.Sprintf("sweep/cg/abft-correction/suite341/mtbf%g", mtbf),
			Description: fmt.Sprintf("CG ABFT-Correction on suite #341 (scale 96) at MTBF %g", mtbf),
			Tags:        []string{"sweep"},
			Matrix:      MatrixSpec{Gen: "suite", ID: 341, Scale: 96},
			Solver:      "cg",
			Scheme:      "abft-correction",
			Alpha:       1 / mtbf,
			Reps:        5,
			Seed:        1,
			Baseline:    true,
		})
	}
}
