package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden result record")

// goldenScenario is the pinned regression scenario: small enough to run in
// milliseconds, faulty enough to exercise every counter.
func goldenScenario() Scenario {
	return Scenario{
		Name:     "golden/cg/abft-correction/poisson2d",
		Matrix:   MatrixSpec{Gen: "poisson2d", N: 225},
		Solver:   "cg",
		Scheme:   "abft-correction",
		Alpha:    1.0 / 32,
		Reps:     2,
		Seed:     5,
		Baseline: true,
	}
}

// TestGoldenResultRecord pins both the JSON schema and the deterministic
// content of a result record. If it fails after an intentional solver or
// schema change, regenerate with:
//
//	go test ./internal/harness -run TestGoldenResultRecord -update
func TestGoldenResultRecord(t *testing.T) {
	res, err := Run(goldenScenario(), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, []Result{res.Canonical()}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "result_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(buf.Bytes())) {
		t.Fatalf("result record diverged from golden file (intentional? regenerate with -update):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestGoldenSchemaFields guards the JSON field *set* separately from the
// values, so a renamed or dropped key is reported as a schema break even
// when the golden file was regenerated carelessly.
func TestGoldenSchemaFields(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "result_golden.json"))
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	var records []map[string]any
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("golden file has %d records, want 1", len(records))
	}
	for _, key := range []string{
		"schema", "scenario", "workers", "matrix", "reps", "converged",
		"failures", "d", "s", "mean_useful_iters", "mean_total_iters",
		"detections", "corrections", "rollbacks", "checkpoints",
		"faults_injected", "mean_sim_time", "ci95_sim_time", "sim_times",
		"max_final_residual", "flops_per_iter", "residual_hash",
		"wall_seconds",
	} {
		if _, ok := records[0][key]; !ok {
			t.Errorf("schema key %q missing from the record", key)
		}
	}
	if int(records[0]["schema"].(float64)) != SchemaVersion {
		t.Errorf("golden schema version %v != %d", records[0]["schema"], SchemaVersion)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	res, err := Run(goldenScenario(), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Scenario.Name != res.Scenario.Name {
		t.Fatalf("round trip lost the record: %+v", back)
	}
	a, _ := json.Marshal(res.Canonical())
	b, _ := json.Marshal(back[0].Canonical())
	if string(a) != string(b) {
		t.Fatal("round trip changed the canonical record")
	}
	if _, err := ReadResults(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestMergeShards(t *testing.T) {
	mk := func(name string, mean float64) Result {
		return Result{
			Schema:      SchemaVersion,
			Scenario:    Scenario{Name: name},
			MeanSimTime: mean,
			WallSeconds: mean * 10, // differs per shard; canonical ignores it
		}
	}
	merged, err := Merge(
		[]Result{mk("b", 2), mk("a", 1)},
		[]Result{mk("c", 3), mk("a", 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d records, want 3", len(merged))
	}
	for i, want := range []string{"a", "b", "c"} {
		if merged[i].Scenario.Name != want {
			t.Fatalf("merge order: %v", merged)
		}
	}
	// Same scenario, different deterministic content: conflict.
	if _, err := Merge([]Result{mk("a", 1)}, []Result{mk("a", 99)}); err == nil {
		t.Fatal("conflicting shards must fail to merge")
	}
	// Same scenario, different wall time only: fine (deduplicated).
	r1, r2 := mk("a", 1), mk("a", 1)
	r2.WallSeconds = 1234
	merged, err = Merge([]Result{r1}, []Result{r2})
	if err != nil || len(merged) != 1 {
		t.Fatalf("wall-time-only difference must dedupe: %v, %v", merged, err)
	}
	// Same scenario served by two different shards (a failover): the
	// shard label is provenance, not content — never a merge conflict.
	r1, r2 = mk("a", 1), mk("a", 1)
	r1.Shard, r2.Shard = "s0", "s2"
	merged, err = Merge([]Result{r1}, []Result{r2})
	if err != nil || len(merged) != 1 {
		t.Fatalf("shard-only difference must dedupe: %v, %v", merged, err)
	}
}

func TestHashHistory(t *testing.T) {
	h1 := HashHistory([]float64{1, 2, 3})
	h2 := HashHistory([]float64{1, 2, 3})
	h3 := HashHistory([]float64{1, 2, 4})
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	if h1 == h3 {
		t.Fatal("hash must distinguish histories")
	}
	if !strings.HasPrefix(h1, "fnv1a:") {
		t.Fatalf("hash format: %s", h1)
	}
	if HashHistory(nil) == HashHistory([]float64{0}) {
		t.Fatal("length must be part of the hash")
	}
}
