package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The registry maps scenario names to their definitions. Registration is
// metadata-only (no matrix is built until Run), so packages register whole
// campaigns cheaply at startup.
var registry = struct {
	sync.Mutex
	byName map[string]Scenario
}{byName: make(map[string]Scenario)}

// Register adds a scenario to the registry. Re-registering a name is an
// error unless the definition is unchanged.
func Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("harness: scenario needs a name")
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.byName[sc.Name]; ok {
		// Compare the JSON forms: scenarios may hold pointers (RHSSeed),
		// which must compare by value, not by address.
		prevJSON, err := json.Marshal(prev)
		if err != nil {
			return err
		}
		scJSON, err := json.Marshal(sc)
		if err != nil {
			return err
		}
		if !bytes.Equal(prevJSON, scJSON) {
			return fmt.Errorf("harness: scenario %q already registered with a different definition", sc.Name)
		}
		return nil
	}
	registry.byName[sc.Name] = sc
	return nil
}

// MustRegister is Register for static catalogs; it panics on error.
func MustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Lookup returns the registered scenario with the exact name.
func Lookup(name string) (Scenario, bool) {
	registry.Lock()
	defer registry.Unlock()
	sc, ok := registry.byName[name]
	return sc, ok
}

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Scenario, 0, len(registry.byName))
	for _, sc := range registry.byName {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Match returns the scenarios whose name or tags contain the filter
// substring (every scenario for an empty filter), sorted by name.
func Match(filter string) []Scenario {
	all := All()
	if filter == "" {
		return all
	}
	var out []Scenario
	for _, sc := range all {
		if strings.Contains(sc.Name, filter) {
			out = append(out, sc)
			continue
		}
		for _, tag := range sc.Tags {
			if strings.Contains(tag, filter) {
				out = append(out, sc)
				break
			}
		}
	}
	return out
}

// Shard selects the k-th of n round-robin shards of a scenario list (spec
// "k/n" with 0 ≤ k < n), so a campaign can be split across processes and
// the outputs merged back with Merge.
func Shard(scs []Scenario, spec string) ([]Scenario, error) {
	if spec == "" {
		return scs, nil
	}
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return nil, fmt.Errorf("harness: bad shard spec %q, want k/n", spec)
	}
	k, err1 := strconv.Atoi(parts[0])
	n, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n < 1 || k < 0 || k >= n {
		return nil, fmt.Errorf("harness: bad shard spec %q, want 0 ≤ k < n", spec)
	}
	var out []Scenario
	for i, sc := range scs {
		if i%n == k {
			out = append(out, sc)
		}
	}
	return out, nil
}
