package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sparse"
)

// SchemaVersion identifies the result record layout. Bump it on any
// incompatible change to Result's JSON shape; the golden-file test pins the
// current layout.
const SchemaVersion = 1

// MatrixInfo echoes the materialised matrix so records are interpretable
// without rebuilding it.
type MatrixInfo struct {
	Label   string  `json:"label"`
	N       int     `json:"n"`
	NNZ     int     `json:"nnz"`
	Density float64 `json:"density"`
}

// Result is the machine-readable record of one scenario run: the scenario
// echo, the materialised matrix, and the aggregate of the independent
// trials. All fields except WallSeconds are deterministic in the scenario
// seed for any worker count (the Canonical method zeroes the rest).
type Result struct {
	// Schema is SchemaVersion at the time the record was produced.
	Schema int `json:"schema"`
	// Scenario echoes the exact scenario that produced the record (with
	// defaults resolved), so it can be replayed from the JSON alone.
	Scenario Scenario `json:"scenario"`
	// Workers is the pool sizing knob the run used (0 = shared default
	// pool); it never changes the record's deterministic fields.
	Workers int `json:"workers"`
	// Matrix describes the materialised matrix.
	Matrix MatrixInfo `json:"matrix"`
	// Reps is the number of trials aggregated below; Converged of them
	// reached the tolerance and Failures did not (failed trials still
	// contribute their accumulated time, like the paper's campaigns).
	Reps      int `json:"reps"`
	Converged int `json:"converged"`
	Failures  int `json:"failures"`
	// D and S are the verification and checkpoint intervals actually used
	// (after model optimisation), from trial 0.
	D int `json:"d"`
	S int `json:"s"`
	// MeanUsefulIters and MeanTotalIters average the converging work and
	// the total executed work (including rolled-back iterations).
	MeanUsefulIters float64 `json:"mean_useful_iters"`
	MeanTotalIters  float64 `json:"mean_total_iters"`
	// Fault accounting, summed over all trials.
	Detections     int64 `json:"detections"`
	Corrections    int64 `json:"corrections"`
	Rollbacks      int64 `json:"rollbacks"`
	Checkpoints    int64 `json:"checkpoints"`
	FaultsInjected int64 `json:"faults_injected"`
	// MeanSimTime is the mean modeled execution time over the trials with
	// the half-width of its 95% confidence interval; SimTimes keeps the raw
	// per-trial samples so shard merges can recompute exact statistics.
	MeanSimTime float64   `json:"mean_sim_time"`
	CI95SimTime float64   `json:"ci95_sim_time"`
	SimTimes    []float64 `json:"sim_times"`
	// MaxFinalResidual is the worst true relative residual over the trials.
	MaxFinalResidual float64 `json:"max_final_residual"`
	// FlopsPerIter is the raw per-iteration flop count on this matrix (the
	// quantity the modeled times are priced from).
	FlopsPerIter int64 `json:"flops_per_iter"`
	// ResidualHash is an FNV-1a fingerprint of trial 0's per-iteration
	// recurrence history — the determinism and regression gate: it must be
	// identical across worker counts and stable across commits.
	ResidualHash string `json:"residual_hash"`
	// BaselineTime and Overhead are reported when the scenario requested
	// the unprotected reference: Overhead = MeanSimTime/BaselineTime − 1.
	// If the reference solve itself failed, BaselineError records why and
	// the other two fields are absent.
	BaselineTime  float64 `json:"baseline_time,omitempty"`
	Overhead      float64 `json:"overhead,omitempty"`
	BaselineError string  `json:"baseline_error,omitempty"`
	// WallSeconds is the measured wall-clock time of the run — the only
	// non-deterministic field besides Shard.
	WallSeconds float64 `json:"wall_seconds"`
	// Shard is provenance, not content: the label of the service process
	// that produced the record in a sharded deployment (empty outside
	// one). After a failover the same scenario may legitimately be served
	// by different shards, so Canonical ignores it.
	Shard string `json:"shard,omitempty"`
	// TraceID is provenance like Shard: the distributed trace the solve
	// was recorded under (query it at /v1/tracez on the tier that served
	// the request). Canonical ignores it.
	TraceID string `json:"trace_id,omitempty"`
}

// newResult aggregates the trial outcomes into a record.
func newResult(sc Scenario, a *sparse.CSR, outs []trialOutcome, hist []float64) Result {
	r := Result{
		Schema:   SchemaVersion,
		Scenario: sc,
		Matrix: MatrixInfo{
			Label:   sc.Matrix.String(),
			N:       a.Rows,
			NNZ:     a.NNZ(),
			Density: a.Density(),
		},
		Reps:         len(outs),
		FlopsPerIter: core.CGFlopsPerIter(a),
		ResidualHash: HashHistory(hist),
	}
	if sc.Solver == "bicgstab" {
		r.FlopsPerIter *= 2
	}
	var useful, total float64
	r.SimTimes = make([]float64, len(outs))
	for i, o := range outs {
		if o.failed {
			r.Failures++
		}
		if o.st.Converged {
			r.Converged++
		}
		if i == 0 {
			r.D, r.S = o.st.D, o.st.S
		}
		useful += float64(o.st.UsefulIterations)
		total += float64(o.st.TotalIterations)
		r.Detections += o.st.Detections
		r.Corrections += o.st.Corrections
		r.Rollbacks += o.st.Rollbacks
		r.Checkpoints += o.st.Checkpoints
		r.FaultsInjected += o.st.FaultsInjected
		r.SimTimes[i] = o.st.SimTime
		if o.st.FinalResidual > r.MaxFinalResidual {
			r.MaxFinalResidual = o.st.FinalResidual
		}
	}
	if n := float64(len(outs)); n > 0 {
		r.MeanUsefulIters = useful / n
		r.MeanTotalIters = total / n
	}
	r.MeanSimTime, r.CI95SimTime = MeanCI(r.SimTimes)
	return r
}

// HashHistory fingerprints a per-iteration scalar history with FNV-1a over
// the IEEE-754 bit patterns, prefixed by the length.
func HashHistory(hist []float64) string {
	return FormatHash(HashBits(hist))
}

// HashBits is the allocation-free core of HashHistory: it returns the raw
// 64-bit FNV-1a state instead of the formatted string, so a request hot
// path can fingerprint a trajectory without touching the heap and defer
// the formatting (FormatHash) to response encoding.
func HashBits(hist []float64) uint64 {
	h := uint64(sparse.FNV1aOffset64)
	h = sparse.FNVMix64(h, uint64(len(hist)))
	for _, v := range hist {
		h = sparse.FNVMix64(h, math.Float64bits(v))
	}
	return h
}

// FormatHash renders HashBits in the canonical record form.
func FormatHash(bits uint64) string {
	return fmt.Sprintf("fnv1a:%016x", bits)
}

// Canonical returns the record with its non-deterministic fields zeroed:
// two canonical records from the same scenario and seed must be identical
// for any worker count. Tests and the CI determinism gate compare these.
func (r Result) Canonical() Result {
	r.WallSeconds = 0
	r.Workers = 0
	r.Shard = ""
	r.TraceID = ""
	return r
}

// WriteResults encodes records as an indented JSON array (the resbench
// on-disk format).
func WriteResults(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadResults decodes a resbench JSON array.
func ReadResults(r io.Reader) ([]Result, error) {
	var rs []Result
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("harness: decoding results: %w", err)
	}
	return rs, nil
}

// Merge combines shard outputs from a campaign split across processes into
// one sorted record set. Records for the same scenario must agree in
// canonical form (they are deduplicated); a conflict — two shards claiming
// the same scenario with different deterministic content — is an error,
// because it means the shards did not run the same code or seeds.
func Merge(shards ...[]Result) ([]Result, error) {
	byName := make(map[string]Result)
	var order []string
	for _, shard := range shards {
		for _, r := range shard {
			name := r.Scenario.Name
			prev, ok := byName[name]
			if !ok {
				byName[name] = r
				order = append(order, name)
				continue
			}
			a, err := json.Marshal(prev.Canonical())
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(r.Canonical())
			if err != nil {
				return nil, err
			}
			if string(a) != string(b) {
				return nil, fmt.Errorf("harness: conflicting results for scenario %q", name)
			}
		}
	}
	sort.Strings(order)
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out, nil
}
