package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pool"
	"repro/internal/sparse"
)

func testScenario() Scenario {
	return Scenario{
		Name:   "test/cg/abft-correction/poisson2d",
		Matrix: MatrixSpec{Gen: "poisson2d", N: 400},
		Solver: "cg",
		Scheme: "abft-correction",
		Alpha:  1.0 / 32,
		Reps:   4,
		Seed:   7,
	}
}

// TestRunOnDeterministicAcrossWorkers is the core harness guarantee: the
// canonical record (wall time excluded) is bitwise identical whether the
// scenario runs sequentially or fanned out across pools of any size.
func TestRunOnDeterministicAcrossWorkers(t *testing.T) {
	sc := testScenario()
	a, err := sc.Matrix.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunOn(nil, a, sc)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Canonical())
	if want.Failures == want.Reps {
		t.Fatalf("degenerate scenario: every trial failed: %+v", want)
	}
	if want.ResidualHash == HashHistory(nil) {
		t.Fatal("residual hash must cover a non-empty history")
	}
	for _, workers := range []int{1, 2, 4} {
		p := pool.New(workers)
		got, err := RunOn(p, a, sc)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(got.Canonical())
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("workers=%d: canonical record diverged:\n%s\nvs sequential:\n%s",
				workers, gotJSON, wantJSON)
		}
	}
}

// TestRunBuildsMatrixAndEchoesScenario exercises the top-level Run entry.
func TestRunBuildsMatrixAndEchoesScenario(t *testing.T) {
	sc := testScenario()
	sc.Reps = 2
	res, err := Run(sc, RunOptions{Workers: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario.Seed != 11 {
		t.Fatalf("seed override not echoed: %+v", res.Scenario)
	}
	if res.Workers != 2 || res.Schema != SchemaVersion || res.Reps != 2 {
		t.Fatalf("record header wrong: %+v", res)
	}
	if res.Matrix.N != 400 || res.Matrix.NNZ == 0 {
		t.Fatalf("matrix info missing: %+v", res.Matrix)
	}
	if res.FlopsPerIter <= 0 || res.MeanSimTime <= 0 {
		t.Fatalf("work accounting missing: %+v", res)
	}
	if res.WallSeconds <= 0 {
		t.Fatalf("wall time not measured: %+v", res)
	}
}

// TestSolverAxes runs every solver × scheme combination the drivers
// support on a tiny SPD matrix, fault-free, and checks convergence.
func TestSolverAxes(t *testing.T) {
	a := sparse.Tridiag(150, 2, -1)
	b, _ := RHS(a, 3)
	cases := []struct {
		solver, scheme string
	}{
		{"cg", "unprotected"},
		{"cg", "online-detection"},
		{"cg", "abft-detection"},
		{"cg", "abft-correction"},
		{"pcg", "unprotected"},
		{"pcg", "online-detection"},
		{"pcg", "abft-correction"},
		{"bicgstab", "unprotected"},
		{"bicgstab", "abft-detection"},
		{"bicgstab", "abft-correction"},
	}
	for _, tc := range cases {
		sc := Scenario{Solver: tc.solver, Scheme: tc.scheme, Tol: 1e-8}
		var hist []float64
		_, st, err := SolveOne(nil, a, b, sc, 1, func(_ int, rho float64) { hist = append(hist, rho) })
		if err != nil {
			t.Errorf("%s/%s: %v", tc.solver, tc.scheme, err)
			continue
		}
		if !st.Converged || st.UsefulIterations == 0 {
			t.Errorf("%s/%s: not converged: %+v", tc.solver, tc.scheme, st)
		}
		if len(hist) == 0 {
			t.Errorf("%s/%s: no iteration history recorded", tc.solver, tc.scheme)
		}
		if st.FinalResidual > 1e-6 {
			t.Errorf("%s/%s: final residual %v", tc.solver, tc.scheme, st.FinalResidual)
		}
	}
}

// TestBaselineOverhead checks the unprotected reference accounting: the
// protected mean must exceed the baseline, giving a positive overhead.
func TestBaselineOverhead(t *testing.T) {
	sc := Scenario{
		Name:     "test/overhead",
		Matrix:   MatrixSpec{Gen: "poisson2d", N: 400},
		Scheme:   "abft-correction",
		Reps:     1,
		Seed:     1,
		Baseline: true,
	}
	res, err := Run(sc, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineTime <= 0 {
		t.Fatalf("baseline not run: %+v", res)
	}
	if res.Overhead <= 0 {
		t.Fatalf("ABFT protection must cost something over the raw solve: overhead = %v", res.Overhead)
	}
}

// TestUnprotectedNeumannPCG pins the like-for-like baseline contract: the
// unprotected PCG reference uses the scenario's own preconditioner, so the
// Neumann axis must run (and converge) unprotected too.
func TestUnprotectedNeumannPCG(t *testing.T) {
	a := sparse.Tridiag(150, 2, -1)
	b, _ := RHS(a, 3)
	sc := Scenario{Solver: "pcg", Precond: "neumann", Scheme: "unprotected", Tol: 1e-8}
	_, st, err := SolveOne(nil, a, b, sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("unprotected neumann PCG did not converge: %+v", st)
	}
}

// TestRHSSeedZeroIsHonoured guards the sentinel regression: a pinned
// right-hand-side seed of exactly 0 must be used, not silently replaced by
// the per-cell trial seed.
func TestRHSSeedZeroIsHonoured(t *testing.T) {
	sc := Scenario{Seed: 5}.WithRHSSeed(0)
	if got := sc.rhsSeed(); got != 0 {
		t.Fatalf("rhsSeed() = %d, want the pinned 0", got)
	}
	if got := (Scenario{Seed: 5}).rhsSeed(); got != 5 {
		t.Fatalf("unpinned rhsSeed() = %d, want the trial seed 5", got)
	}
}

// TestBaselineFailureIsRecorded: a baseline solve that cannot converge
// must surface in the record, not vanish silently.
func TestBaselineFailureIsRecorded(t *testing.T) {
	sc := Scenario{
		Name:     "test/baseline-failure",
		Matrix:   MatrixSpec{Gen: "poisson2d", N: 100},
		Scheme:   "abft-correction",
		MaxIters: 1, // far too few for convergence, protected or not
		Reps:     1,
		Seed:     1,
		Baseline: true,
	}
	res, err := Run(sc, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineError == "" {
		t.Fatalf("failed baseline must be recorded: %+v", res)
	}
	if res.BaselineTime != 0 || res.Overhead != 0 {
		t.Fatalf("failed baseline must not report a time or overhead: %+v", res)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		sc   Scenario
		want string
	}{
		{Scenario{Solver: "simplex"}, "unknown solver"},
		{Scenario{Scheme: "tmr-everything"}, "unknown scheme"},
		{Scenario{Scheme: "unprotected", Alpha: 0.1}, "cannot run under fault injection"},
		{Scenario{Solver: "bicgstab", Scheme: "online-detection"}, "ABFT schemes only"},
		{Scenario{Solver: "pcg", Precond: "ilu0"}, "unknown preconditioner"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want containing %q", tc.sc, err, tc.want)
		}
	}
	if err := (Scenario{}).Validate(); err != nil {
		t.Errorf("zero scenario must validate via defaults, got %v", err)
	}
}

func TestMatrixSpecs(t *testing.T) {
	for _, spec := range []MatrixSpec{
		{Gen: "poisson2d", N: 100},
		{Gen: "poisson3d", N: 64},
		{Gen: "tridiag", N: 50},
		{Gen: "laplacian", N: 60, Shift: 0.01, Seed: 42},
		{Gen: "randomspd", N: 80, Seed: 42},
		{Gen: "suite", ID: 2213, Scale: 96},
		{Gen: "suite", ID: 2213, N: 250},
	} {
		a, err := spec.Build()
		if err != nil {
			t.Errorf("%v: %v", spec, err)
			continue
		}
		if a.Rows == 0 || a.NNZ() == 0 {
			t.Errorf("%v: empty matrix", spec)
		}
		b, err := spec.Build()
		if err != nil || !a.Equal(b) {
			t.Errorf("%v: build not deterministic", spec)
		}
	}
	for _, spec := range []MatrixSpec{
		{},
		{Gen: "hilbert", N: 10},
		{Gen: "suite", ID: 1},
		{Gen: "file", Path: "/nonexistent/a.mtx"},
	} {
		if _, err := spec.Build(); err == nil {
			t.Errorf("%v: expected error", spec)
		}
	}
}

func TestNewMatrixSpec(t *testing.T) {
	if _, err := NewMatrixSpec("suite:abc", 0, 0); err == nil || !strings.Contains(err.Error(), "bad suite id") {
		t.Errorf("suite:abc error = %v", err)
	}
	if _, err := NewMatrixSpec("suite:9999", 0, 0); err == nil || !strings.Contains(err.Error(), "unknown suite matrix") {
		t.Errorf("suite:9999 error = %v", err)
	}
	if _, err := NewMatrixSpec("nonesuch", 10, 0); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Errorf("nonesuch error = %v", err)
	}
	ms, err := NewMatrixSpec("suite:341", 250, 0)
	if err != nil || ms.ID != 341 || ms.N != 250 {
		t.Errorf("suite:341 = %+v, %v", ms, err)
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) == 0 {
		t.Fatal("built-in catalog must register scenarios")
	}
	sc, ok := Lookup("smoke/cg/abft-correction/poisson2d")
	if !ok {
		t.Fatal("smoke catalog entry missing")
	}
	if sc.Matrix.Gen != "poisson2d" {
		t.Fatalf("unexpected catalog entry: %+v", sc)
	}
	smoke := Match("smoke")
	if len(smoke) < 6 {
		t.Fatalf("smoke tier too small: %d", len(smoke))
	}
	for i := 1; i < len(smoke); i++ {
		if smoke[i-1].Name >= smoke[i].Name {
			t.Fatal("Match must sort by name")
		}
	}
	if n := len(Match("no-such-scenario-xyz")); n != 0 {
		t.Fatalf("bogus filter matched %d", n)
	}
	// Tags participate in matching.
	if len(Match("ci")) == 0 {
		t.Fatal("tag filter found nothing")
	}
	// Re-registering identically is idempotent; conflicting is an error.
	if err := Register(sc); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	conflict := sc
	conflict.Alpha = 0.5
	if err := Register(conflict); err == nil {
		t.Fatal("conflicting re-register must fail")
	}
	if err := Register(Scenario{}); err == nil {
		t.Fatal("nameless scenario must fail")
	}
}

func TestShard(t *testing.T) {
	scs := Match("smoke")
	var merged []Scenario
	for k := 0; k < 3; k++ {
		part, err := Shard(scs, "0/1")
		if err != nil {
			t.Fatal(err)
		}
		_ = part
	}
	for k := 0; k < 3; k++ {
		part, err := Shard(scs, shardSpec(k, 3))
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part...)
	}
	if len(merged) != len(scs) {
		t.Fatalf("shards cover %d of %d scenarios", len(merged), len(scs))
	}
	for _, bad := range []string{"x", "1/0", "3/3", "-1/2", "1/2/3"} {
		if _, err := Shard(scs, bad); err == nil {
			t.Errorf("Shard(%q) must fail", bad)
		}
	}
	all, err := Shard(scs, "")
	if err != nil || len(all) != len(scs) {
		t.Fatal("empty spec must select everything")
	}
}

func shardSpec(k, n int) string {
	return string(rune('0'+k)) + "/" + string(rune('0'+n))
}
