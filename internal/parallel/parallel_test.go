package parallel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitflip"
	"repro/internal/sparse"
)

func setup(t *testing.T, n, nblocks int, seed int64) (*Protected, []float64, []float64, []float64) {
	t.Helper()
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.1, DiagShift: 1, Seed: seed})
	p := New(a, nblocks)
	rng := rand.New(rand.NewSource(seed + 1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	truth := make([]float64, n)
	a.Clone().MulVec(truth, x)
	return p, x, y, truth
}

func TestCleanProduct(t *testing.T) {
	for _, nb := range []int{1, 2, 4, 7, 16} {
		p, x, y, truth := setup(t, 120, nb, int64(nb))
		out := p.MulVec(y, x)
		if out.Detected {
			t.Fatalf("nblocks=%d: false positive %+v", nb, out)
		}
		for i := range truth {
			if math.Abs(y[i]-truth[i]) > 1e-12*(1+math.Abs(truth[i])) {
				t.Fatalf("nblocks=%d: y[%d] = %v, want %v", nb, i, y[i], truth[i])
			}
		}
	}
}

func TestBlockPartitionCoversAllRows(t *testing.T) {
	p, _, _, _ := setup(t, 103, 7, 3) // deliberately non-divisible
	covered := 0
	next := 0
	for _, b := range p.blocks {
		if b.Row0 != next {
			t.Fatalf("block starts at %d, want %d", b.Row0, next)
		}
		covered += b.Rows
		next += b.Rows
	}
	if covered != 103 {
		t.Fatalf("blocks cover %d rows, want 103", covered)
	}
	if p.Blocks() != 7 {
		t.Fatalf("Blocks() = %d", p.Blocks())
	}
}

func TestDetectsComputationError(t *testing.T) {
	p, x, y, _ := setup(t, 120, 4, 5)
	// Compute cleanly, then corrupt one output entry and re-verify by
	// running the product again through a corrupted Val entry instead:
	// corrupt a matrix value so the block recomputation cannot hide it.
	p.A.Val[13] = bitflip.Float64(p.A.Val[13], 60)
	out := p.MulVec(y, x)
	if !out.Detected {
		t.Fatal("Val corruption not detected")
	}
	if len(out.BlockErrors) != 1 {
		t.Fatalf("errors in %d blocks, want 1", len(out.BlockErrors))
	}
}

func TestLocalCorrectionOfPostComputeError(t *testing.T) {
	// The y-slice repair path: corrupt y after computing, then verify via a
	// second MulVec... the public API folds compute+verify, so instead
	// corrupt a Rowidx entry (detected, not corrected) vs a y recompute
	// (corrected) — exercise the corrected path with a Val flip whose
	// repaired row recompute fixes the slice: not applicable. Keep this
	// test on the detect side: Rowidx corruption must be detected.
	p, x, y, _ := setup(t, 120, 4, 7)
	p.A.Rowidx[30] = bitflip.Int(p.A.Rowidx[30], 2)
	out := p.MulVec(y, x)
	if !out.Detected {
		t.Fatal("Rowidx corruption not detected")
	}
	if out.Corrected {
		t.Fatal("Rowidx corruption is not locally correctable in the block scheme")
	}
}

func TestMultipleBlocksDetectIndependently(t *testing.T) {
	// Two errors in two different blocks: the sequential scheme would give
	// up; the block scheme localises both.
	p, x, y, _ := setup(t, 200, 4, 9)
	// Pick one Val entry in block 0 and one in block 3.
	b0 := p.blocks[0]
	b3 := p.blocks[3]
	k0 := p.A.Rowidx[b0.Row0]
	k3 := p.A.Rowidx[b3.Row0]
	p.A.Val[k0] = bitflip.Float64(p.A.Val[k0], 61)
	p.A.Val[k3] = bitflip.Float64(p.A.Val[k3], 61)
	out := p.MulVec(y, x)
	if !out.Detected {
		t.Fatal("two-block corruption not detected")
	}
	if len(out.BlockErrors) != 2 {
		t.Fatalf("errors localised to %d blocks, want 2", len(out.BlockErrors))
	}
}

func TestDimensionPanics(t *testing.T) {
	p, _, _, _ := setup(t, 50, 2, 11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MulVec(make([]float64, 49), make([]float64, 50))
}

func TestSingleBlockMatchesSequential(t *testing.T) {
	p, x, y, truth := setup(t, 80, 1, 13)
	out := p.MulVec(y, x)
	if out.Detected {
		t.Fatal("clean single-block product detected an error")
	}
	for i := range truth {
		if y[i] != truth[i] {
			t.Fatal("single block result differs from sequential")
		}
	}
}

func TestManyBlocksStress(t *testing.T) {
	// More blocks than a typical core count; exercises the goroutine fan-out.
	p, x, y, truth := setup(t, 500, 32, 17)
	out := p.MulVec(y, x)
	if out.Detected {
		t.Fatal("false positive under fan-out")
	}
	for i := range truth {
		if math.Abs(y[i]-truth[i]) > 1e-12*(1+math.Abs(truth[i])) {
			t.Fatal("fan-out product wrong")
		}
	}
}

func TestBlocksClampedToRows(t *testing.T) {
	a := sparse.Tridiag(3, 2, -1)
	p := New(a, 10)
	if p.Blocks() != 3 {
		t.Fatalf("blocks = %d, want 3 (clamped to rows)", p.Blocks())
	}
}
