package parallel

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitflip"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// TestMulVecOnWorkerCounts verifies the pooled block execution produces the
// same product and the same aggregate outcome for every pool size,
// including the sequential nil pool — the per-block outcome merge must not
// depend on scheduling.
func TestMulVecOnWorkerCounts(t *testing.T) {
	n := 1200
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.01, DiagShift: 1, Seed: 3})
	p := New(a, 16)
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	want := make([]float64, n)
	refOut := p.MulVecOn(nil, want, x)
	if refOut.Detected {
		t.Fatal("clean product must not detect")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pl := pool.New(workers)
		got := make([]float64, n)
		out := p.MulVecOn(pl, got, x)
		if out.Detected != refOut.Detected {
			t.Fatalf("workers=%d: outcome %v != sequential %v", workers, out, refOut)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentProtectedProducts runs many goroutines through one shared
// Protected and one shared pool simultaneously, each with its own output
// vector, while half of them face a corrupted private copy of the matrix.
// Under -race this exercises the engine's block scheduling, the inline
// fallback under saturation, and the per-block repair writes.
func TestConcurrentProtectedProducts(t *testing.T) {
	n := 900
	clean := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.01, DiagShift: 1, Seed: 5})
	pl := pool.New(3)
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns its matrix copy and Protected; the pool is
			// the only shared mutable machinery.
			a := clean.Clone()
			prot := New(a, 8)
			y := make([]float64, n)
			corrupt := g%2 == 1
			for iter := 0; iter < 10; iter++ {
				if corrupt {
					k := a.Rowidx[(g*37+iter*101)%n]
					a.Val[k] = bitflip.Float64(a.Val[k], 60)
				}
				out := prot.MulVecOn(pl, y, x)
				if corrupt && !out.Detected {
					t.Errorf("goroutine %d iter %d: corruption went undetected", g, iter)
					return
				}
				if !corrupt && out.Detected {
					t.Errorf("goroutine %d iter %d: false positive", g, iter)
					return
				}
				if corrupt {
					a.CopyFrom(clean) // restore for the next round
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTinyBlocksUnderPool shrinks blocks to a handful of rows each — far
// more blocks than workers — and checks detection still localises the
// faulty block deterministically.
func TestTinyBlocksUnderPool(t *testing.T) {
	n := 600
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.02, DiagShift: 1, Seed: 7})
	p := New(a, n/4) // 4-row blocks
	pl := pool.New(4)
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)

	k := a.Rowidx[300]
	orig := a.Val[k]
	a.Val[k] = bitflip.Float64(a.Val[k], 62)
	var blocksSeen []int
	for trial := 0; trial < 5; trial++ {
		out := p.MulVecOn(pl, y, x)
		if !out.Detected {
			t.Fatalf("trial %d: flip in row 300 not detected", trial)
		}
		if trial == 0 {
			blocksSeen = out.BlockErrors
		} else if len(out.BlockErrors) != len(blocksSeen) {
			t.Fatalf("trial %d: block error set changed: %v vs %v", trial, out.BlockErrors, blocksSeen)
		}
	}
	a.Val[k] = orig
	if out := p.MulVecOn(pl, y, x); out.Detected {
		t.Fatal("restored matrix must verify clean")
	}
}
