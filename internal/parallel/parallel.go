// Package parallel implements the row-block decomposed, ABFT-protected
// sparse matrix–vector product sketched in the paper's introduction: in a
// message-passing implementation each processing element owns a block of
// matrix rows and computes its slice of the output; "performing error
// detection and correction locally implies global error detection and
// correction for the SpMxV", with the local blocks being rectangular in
// general.
//
// Here the processing elements are goroutines. Each block carries its own
// weighted column checksums (computed over the block's rows, i.e. the
// rectangular local matrix), verifies its slice of the product
// independently, and repairs local single errors exactly like the global
// decoder — so k simultaneous errors in k distinct blocks are all corrected
// forward, strictly more than the single global error the sequential scheme
// handles.
package parallel

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// Block is one row block of the decomposition with its local checksums.
type Block struct {
	// Row0 is the first global row of the block; the block covers rows
	// [Row0, Row0+Rows).
	Row0, Rows int

	// c1, c2 are the local column checksums Σ_{i∈block} w_r[i−Row0]·a[i][j]
	// (local weights 1 and 1..rows, exactly the rectangular-block encoding).
	c1, c2 []float64
	// cr1, cr2 checksum the block's slice of Rowidx.
	cr1, cr2 float64
}

// Protected is a matrix partitioned into row blocks with per-block
// checksum protection.
type Protected struct {
	A      *sparse.CSR
	blocks []Block
}

// Outcome aggregates the per-block verification results.
type Outcome struct {
	Detected    bool
	Corrected   bool // true only if every detecting block corrected locally
	BlockErrors []int
}

// New partitions a into at most nblocks row blocks of approximately equal
// stored nonzeros (the NNZ-balanced partition of sparse.NNZPartition, so
// each processing element owns the same amount of SpMxV work rather than
// the same number of rows) and computes the local checksums. a must be
// fault-free at this moment.
func New(a *sparse.CSR, nblocks int) *Protected {
	part := a.NNZPartition(nblocks)
	p := &Protected{A: a}
	p.blocks = make([]Block, 0, part.Chunks())
	for bi := 0; bi < part.Chunks(); bi++ {
		lo, hi := part.Bounds[bi], part.Bounds[bi+1]
		b := Block{Row0: lo, Rows: hi - lo}
		b.encode(a)
		p.blocks = append(p.blocks, b)
	}
	return p
}

// Blocks returns the number of blocks.
func (p *Protected) Blocks() int { return len(p.blocks) }

// encode computes the block's local checksums from the (trusted) matrix.
func (b *Block) encode(a *sparse.CSR) {
	b.c1 = make([]float64, a.Cols)
	b.c2 = make([]float64, a.Cols)
	b.cr1, b.cr2 = 0, 0
	for i := 0; i < b.Rows; i++ {
		gi := b.Row0 + i
		w2 := float64(i + 1)
		for k := a.Rowidx[gi]; k < a.Rowidx[gi+1]; k++ {
			j := a.Colid[k]
			v := a.Val[k]
			b.c1[j] += v
			b.c2[j] += w2 * v
		}
	}
	for i := 0; i <= b.Rows; i++ {
		v := float64(a.Rowidx[b.Row0+i])
		b.cr1 += v
		b.cr2 += float64(i+1) * v
	}
}

// MulVec computes y ← Ax with the blocks executed concurrently on the
// shared worker pool, each verifying (and in-place repairing, when
// possible) its own slice. It returns the aggregate outcome; on
// Detected && !Corrected the caller must roll back, exactly like the
// sequential driver.
func (p *Protected) MulVec(y, x []float64) Outcome {
	return p.MulVecOn(pool.Default(), y, x)
}

// MulVecOn is MulVec on an explicit pool; a nil pool runs the blocks
// sequentially. Blocks own disjoint row slices of y and each block's
// verification reads only its own slice, so the per-block outcomes — and
// their deterministic in-order merge below — do not depend on worker count
// or scheduling.
func (p *Protected) MulVecOn(pl *pool.Pool, y, x []float64) Outcome {
	if len(x) != p.A.Cols || len(y) != p.A.Rows {
		panic(fmt.Sprintf("parallel: MulVec dimensions: A is %dx%d, len(x)=%d, len(y)=%d",
			p.A.Rows, p.A.Cols, len(x), len(y)))
	}
	results := make([]Outcome, len(p.blocks))
	verify := func(bi int) {
		results[bi] = p.blocks[bi].mulVerify(p.A, y, x)
	}
	if pl == nil {
		for bi := range p.blocks {
			verify(bi)
		}
	} else {
		pl.ForEach(len(p.blocks), verify)
	}

	var out Outcome
	out.Corrected = true
	for bi, r := range results {
		if r.Detected {
			out.Detected = true
			out.BlockErrors = append(out.BlockErrors, bi)
			if !r.Corrected {
				out.Corrected = false
			}
		}
	}
	if !out.Detected {
		out.Corrected = false
	}
	return out
}

// mulVerify computes the block's slice of the product — with the slice
// checksums and max-norm fused into the same traversal — verifies it against
// the local checksums and attempts a local single-error repair.
func (b *Block) mulVerify(a *sparse.CSR, y, x []float64) Outcome {
	sr1, sr2, sy1, sy2, yScale := b.computeSlice(a, y, x)

	// Rowidx test (exact integers).
	if sr1 != b.cr1 || sr2 != b.cr2 {
		return Outcome{Detected: true}
	}
	d1, d2, tol1, tol2 := b.defects(sy1, sy2, yScale, x)
	if abs(d1) <= tol1 && abs(d2) <= tol2 && finite(d1) && finite(d2) {
		return Outcome{}
	}

	// Local repair: the defect pair localises the faulty local row.
	if finite(d1) && finite(d2) && d1 != 0 {
		pos := d2 / d1
		ipos := int(pos + 0.5)
		if absf(pos-float64(ipos)) <= maxf(1e-8*absf(pos), 0.05) && ipos >= 1 && ipos <= b.Rows {
			gi := b.Row0 + ipos - 1
			y[gi] = rowProduct(a, gi, x)
			sy1, sy2, yScale = b.sliceSums(y)
			d1, d2, tol1, tol2 = b.defects(sy1, sy2, yScale, x)
			if abs(d1) <= tol1 && abs(d2) <= tol2 {
				return Outcome{Detected: true, Corrected: true}
			}
		}
	}
	return Outcome{Detected: true}
}

// computeSlice runs the robust product over the block's rows, returning the
// running Rowidx checksums plus the fused slice checksums sy1 = Σ yᵢ,
// sy2 = Σ (i+1)·yᵢ (local weights) and the slice max-norm. Accumulation
// orders match the unfused slice-then-sums sequence bit for bit.
func (b *Block) computeSlice(a *sparse.CSR, y, x []float64) (sr1, sr2, sy1, sy2, yScale float64) {
	nnz := len(a.Val)
	for i := 0; i <= b.Rows; i++ {
		v := float64(a.Rowidx[b.Row0+i])
		sr1 += v
		sr2 += float64(i+1) * v
	}
	for i := 0; i < b.Rows; i++ {
		gi := b.Row0 + i
		lo, hi := a.Rowidx[gi], a.Rowidx[gi+1]
		if lo < 0 {
			lo = 0
		}
		if hi > nnz {
			hi = nnz
		}
		var s float64
		for k := lo; k < hi; k++ {
			if ind := a.Colid[k]; uint(ind) < uint(len(x)) {
				s += a.Val[k] * x[ind]
			}
		}
		y[gi] = s
		sy1 += s
		sy2 += float64(i+1) * s
		if a := absf(s); a > yScale {
			yScale = a
		}
	}
	return sr1, sr2, sy1, sy2, yScale
}

// sliceSums recomputes the fused slice quantities from y after a repair.
func (b *Block) sliceSums(y []float64) (sy1, sy2, yScale float64) {
	for i := 0; i < b.Rows; i++ {
		v := y[b.Row0+i]
		sy1 += v
		sy2 += float64(i+1) * v
		if a := absf(v); a > yScale {
			yScale = a
		}
	}
	return sy1, sy2, yScale
}

// defects compares the block's (precomputed) output-slice checksums against
// the local column checksums applied to x, with a norm-based tolerance.
func (b *Block) defects(sy1, sy2, yScale float64, x []float64) (d1, d2, tol1, tol2 float64) {
	var c1x, c2x, absScale float64
	for j, xj := range x {
		c1x += b.c1[j] * xj
		c2x += b.c2[j] * xj
		if a := absf(b.c1[j] * xj); a > absScale {
			absScale = a
		}
	}
	n := float64(len(x) + b.Rows)
	g := 8 * checksum.Gamma(2*(len(x)+b.Rows))
	tol1 = g * n * (absScale + yScale)
	tol2 = g * n * float64(b.Rows) * (absScale + yScale)
	d1 = sy1 - c1x
	d2 = sy2 - c2x
	return
}

func rowProduct(a *sparse.CSR, i int, x []float64) float64 {
	lo, hi := a.Rowidx[i], a.Rowidx[i+1]
	if lo < 0 {
		lo = 0
	}
	if hi > len(a.Val) {
		hi = len(a.Val)
	}
	var s float64
	for k := lo; k < hi; k++ {
		if ind := a.Colid[k]; uint(ind) < uint(len(x)) {
			s += a.Val[k] * x[ind]
		}
	}
	return s
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func absf(v float64) float64 { return abs(v) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func finite(v float64) bool { return v == v && v < 1e308 && v > -1e308 }
