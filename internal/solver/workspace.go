package solver

// Workspace holds the reusable iteration vectors of the unprotected
// solvers. A solve that carries a workspace (Options.Ws) performs zero
// heap allocations once the workspace is warm: the iteration vectors, the
// preconditioner scratch and the true-residual scratch all come from here,
// and steady-state iterations allocate nothing to begin with.
//
// A workspace may be reused across solves of any sizes (buffers grow as
// needed and shrink never) but must not be shared by concurrent solves.
// Result.X aliases workspace memory when a workspace is used: the caller
// must copy it out before the next solve reuses the buffer.
type Workspace struct {
	bufs [][]float64
	next int
	blk  blockScratch
}

// blockScratch carries the per-lane bookkeeping of CGBlock: vector headers,
// gathered active-column headers and per-lane scalars, all reused across
// solves so a warm blocked solve allocates nothing.
type blockScratch struct {
	xs, rs, qs, ps [][]float64
	gps, gqs       [][]float64
	gidx           []int
	rho, normB     []float64
	active         []bool
}

// NewWorkspace returns an empty workspace; buffers are created on first
// use and recycled afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin resets the take cursor for a new solve. A nil receiver returns a
// fresh workspace so the solvers can call it unconditionally.
func (w *Workspace) begin() *Workspace {
	if w == nil {
		return &Workspace{}
	}
	w.next = 0
	return w
}

// take returns the next length-n scratch buffer. Contents are NOT zeroed —
// each use site initialises explicitly (the take order inside a solver is
// fixed, so a warm workspace hands back the same buffers every solve).
func (w *Workspace) take(n int) []float64 {
	if w.next < len(w.bufs) {
		b := w.bufs[w.next]
		if cap(b) >= n {
			w.bufs[w.next] = b[:n]
			w.next++
			return b[:n]
		}
	}
	b := make([]float64, n)
	if w.next < len(w.bufs) {
		w.bufs[w.next] = b
	} else {
		w.bufs = append(w.bufs, b)
	}
	w.next++
	return b
}

// takeZero is take with the buffer cleared.
func (w *Workspace) takeZero(n int) []float64 {
	b := w.take(n)
	for i := range b {
		b[i] = 0
	}
	return b
}
