package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// BlockOptions configures a blocked multi-RHS CG solve.
type BlockOptions struct {
	// Tol is the relative residual tolerance (default 1e-10, as in Options).
	Tol float64
	// MaxIter caps the iterations per right-hand side; 0 means 10·n.
	MaxIter int
	// OnIteration, when non-nil, streams each right-hand side's
	// per-iteration recurrence residual norm — the same (it, value) pairs
	// the sequential CG's OnIteration would deliver for that system solved
	// alone, tagged with the RHS index.
	OnIteration func(rhs, it int, res float64)
	// Ws supplies the iteration vectors and lane bookkeeping from a
	// reusable workspace: a warm workspace makes the whole block solve
	// allocation-free. Result.X then aliases workspace memory.
	Ws *Workspace
}

// CGBlock solves the k systems A·x_j = bs[j] simultaneously with the
// Conjugate Gradient method: every iteration computes all active products
// q_j = A·p_j in one traversal of the CSR arrays (sparse.CSR.MulVecBlock),
// so the matrix is streamed once per block instead of once per system.
// Convergence is tracked independently per right-hand side — a converged
// or broken-down lane drops out of the block while the rest continue — and
// each lane's trajectory is bitwise identical to solving that system alone
// with CG, because the blocked product computes each column with exactly
// the sequential kernel's arithmetic.
//
// Per-lane results and errors land in res[j] and errs[j] (both must have
// length ≥ len(bs)).
func CGBlock(a *sparse.CSR, bs [][]float64, opt BlockOptions, res []Result, errs []error) error {
	n := a.Rows
	k := len(bs)
	if k == 0 {
		return nil
	}
	if a.Cols != n {
		return fmt.Errorf("solver: CGBlock needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	for j, b := range bs {
		if len(b) != n {
			return fmt.Errorf("solver: CGBlock dimension mismatch: A %dx%d, len(bs[%d])=%d", a.Rows, a.Cols, j, len(b))
		}
	}
	if len(res) < k || len(errs) < k {
		return fmt.Errorf("solver: CGBlock needs len(res) and len(errs) ≥ %d", k)
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
	}
	ws := opt.Ws.begin()
	blk := &ws.blk
	blk.xs, blk.rs, blk.qs, blk.ps = blk.xs[:0], blk.rs[:0], blk.qs[:0], blk.ps[:0]
	blk.rho, blk.normB, blk.active = blk.rho[:0], blk.normB[:0], blk.active[:0]

	// Per-lane setup, taking vectors in a fixed order and running exactly
	// the sequential CG's initialisation arithmetic.
	for j := 0; j < k; j++ {
		x := ws.takeZero(n)
		r := ws.take(n)
		q := ws.take(n)
		p := ws.take(n)
		a.MulVec(q, x) // r0 = b − A x0
		vec.Sub(r, bs[j], q)
		copy(p, r)
		normB := vec.Norm2(bs[j])
		if normB == 0 {
			normB = 1
		}
		blk.xs = append(blk.xs, x)
		blk.rs = append(blk.rs, r)
		blk.qs = append(blk.qs, q)
		blk.ps = append(blk.ps, p)
		blk.rho = append(blk.rho, vec.Norm2Sq(r))
		blk.normB = append(blk.normB, normB)
		blk.active = append(blk.active, true)
		res[j] = Result{X: x}
		errs[j] = nil
	}

	remaining := k
	for it := 0; remaining > 0; it++ {
		blk.gps, blk.gqs, blk.gidx = blk.gps[:0], blk.gqs[:0], blk.gidx[:0]
		for j := 0; j < k; j++ {
			if !blk.active[j] {
				continue
			}
			if it >= opt.MaxIter {
				// Iteration budget exhausted: the sequential post-loop path.
				res[j].Residual = trueResidualInto(blk.qs[j], a, blk.xs[j], bs[j])
				res[j].Converged = math.Sqrt(blk.rho[j]) <= opt.Tol*blk.normB[j]
				if !res[j].Converged {
					errs[j] = fmt.Errorf("%w: CG after %d iterations, ‖r‖/‖b‖ = %.3e",
						ErrNotConverged, res[j].Iterations, math.Sqrt(blk.rho[j])/blk.normB[j])
				}
				blk.active[j] = false
				remaining--
				continue
			}
			if opt.OnIteration != nil {
				opt.OnIteration(j, it+1, math.Sqrt(blk.rho[j]))
			}
			if math.Sqrt(blk.rho[j]) <= opt.Tol*blk.normB[j] {
				res[j].Iterations = it
				res[j].Converged = true
				res[j].Residual = trueResidualInto(blk.qs[j], a, blk.xs[j], bs[j])
				blk.active[j] = false
				remaining--
				continue
			}
			blk.gps = append(blk.gps, blk.ps[j])
			blk.gqs = append(blk.gqs, blk.qs[j])
			blk.gidx = append(blk.gidx, j)
		}
		if len(blk.gidx) == 0 {
			continue
		}
		a.MulVecBlock(blk.gqs, blk.gps)
		for _, j := range blk.gidx {
			p, q, r, x := blk.ps[j], blk.qs[j], blk.rs[j], blk.xs[j]
			pq := vec.Dot(p, q)
			if pq <= 0 || math.IsNaN(pq) {
				errs[j] = fmt.Errorf("solver: CG breakdown at iteration %d (pᵀAp = %v): matrix not SPD?", it, pq)
				blk.active[j] = false
				remaining--
				continue
			}
			alpha := blk.rho[j] / pq
			vec.Axpy(alpha, p, x)
			vec.Axpy(-alpha, q, r)
			rhoNew := vec.Norm2Sq(r)
			beta := rhoNew / blk.rho[j]
			vec.Xpay(beta, r, p) // p ← r + β p
			blk.rho[j] = rhoNew
			res[j].Iterations = it + 1
		}
	}
	return nil
}
