package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// BiCGstab solves Ax = b for general (non-symmetric) A using the
// stabilised bi-conjugate gradient method. The paper lists BiCGstab among
// the solvers its protection scheme extends to; it uses exactly the kernels
// the scheme protects (SpMxV, dots, axpys).
func BiCGstab(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return Result{}, fmt.Errorf("solver: BiCGstab dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	opt = opt.withDefaults(n)
	ws := opt.Ws.begin()

	x := ws.takeZero(n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := ws.take(n)
	t := ws.take(n) // A·s later; r0 scratch now
	a.MulVec(t, x)
	vec.Sub(r, b, t)
	rHat := ws.take(n) // shadow residual, fixed
	copy(rHat, r)
	p := ws.take(n)
	v := ws.take(n)
	s := ws.take(n)
	for i := range n {
		p[i], v[i], s[i] = 0, 0, 0
	}

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	res := Result{X: x}

	for it := 0; it < opt.MaxIter; it++ {
		rNorm := vec.Norm2(r)
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, rNorm)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it+1, rNorm)
		}
		if rNorm <= opt.Tol*normB {
			res.Iterations = it
			res.Converged = true
			res.Residual = trueResidualInto(t, a, x, b)
			return res, nil
		}

		rhoNew := vec.Dot(rHat, r)
		if rhoNew == 0 || math.IsNaN(rhoNew) {
			return res, fmt.Errorf("solver: BiCGstab breakdown (ρ = %v) at iteration %d", rhoNew, it)
		}
		if it == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			// p ← r + β (p − ω v)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew

		a.MulVec(v, p)
		den := vec.Dot(rHat, v)
		if den == 0 || math.IsNaN(den) {
			return res, fmt.Errorf("solver: BiCGstab breakdown (r̂ᵀv = %v) at iteration %d", den, it)
		}
		alpha = rho / den
		vec.AxpyTo(s, -alpha, v, r)

		// Early convergence on the half step.
		if vec.Norm2(s) <= opt.Tol*normB {
			vec.Axpy(alpha, p, x)
			res.Iterations = it + 1
			res.Converged = true
			res.Residual = trueResidualInto(t, a, x, b)
			return res, nil
		}

		a.MulVec(t, s)
		tt := vec.Norm2Sq(t)
		if tt == 0 || math.IsNaN(tt) {
			return res, fmt.Errorf("solver: BiCGstab breakdown (‖t‖ = 0) at iteration %d", it)
		}
		omega = vec.Dot(t, s) / tt
		if omega == 0 || math.IsNaN(omega) {
			return res, fmt.Errorf("solver: BiCGstab breakdown (ω = %v) at iteration %d", omega, it)
		}

		vec.Axpy(alpha, p, x)
		vec.Axpy(omega, s, x)
		vec.AxpyTo(r, -omega, t, s)
		res.Iterations = it + 1
	}
	res.Residual = trueResidualInto(t, a, x, b)
	res.Converged = res.Residual <= opt.Tol*normB
	if !res.Converged {
		return res, fmt.Errorf("%w: BiCGstab after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}
