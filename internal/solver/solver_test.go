package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// manufactured returns (A, b, xTrue) with b = A·xTrue for a known solution.
func manufactured(a *sparse.CSR, seed int64) (b, xTrue []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := a.Rows
	xTrue = make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b = make([]float64, n)
	a.MulVec(b, xTrue)
	return b, xTrue
}

func checkSolution(t *testing.T, a *sparse.CSR, x, xTrue, b []float64, tol float64) {
	t.Helper()
	if d := vec.MaxAbsDiff(x, xTrue); d > tol*(1+vec.NormInf(xTrue)) {
		t.Fatalf("solution error %v exceeds %v", d, tol)
	}
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	if rn := vec.Norm2(r); rn > tol*vec.Norm2(b) {
		t.Fatalf("residual %v exceeds %v·‖b‖", rn, tol)
	}
}

func TestCGPoisson2D(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, xTrue := manufactured(a, 1)
	res, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-6)
}

func TestCGTridiag(t *testing.T) {
	a := sparse.Tridiag(100, 2, -1)
	b, xTrue := manufactured(a, 2)
	res, err := CG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-5)
}

func TestCGRandomSPD(t *testing.T) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 300, Density: 0.05, DiagShift: 0.5, Seed: 3})
	b, xTrue := manufactured(a, 3)
	res, err := CG(a, b, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-7)
	if res.Iterations <= 1 {
		t.Fatal("suspiciously fast convergence")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := sparse.Tridiag(50, 2, -1)
	b := make([]float64, 50)
	res, err := CG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(res.X) != 0 {
		t.Fatal("zero rhs must give zero solution from zero guess")
	}
}

func TestCGWarmStart(t *testing.T) {
	a := sparse.Poisson2D(15, 15)
	b, xTrue := manufactured(a, 4)
	// Start from the exact solution: 0 iterations.
	res, err := CG(a, b, Options{X0: xTrue})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

func TestCGRecordsResiduals(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	b, _ := manufactured(a, 5)
	res, err := CG(a, b, Options{RecordResiduals: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) == 0 {
		t.Fatal("no residual history")
	}
	// Residuals should shrink overall: last well below the first.
	if res.Residuals[len(res.Residuals)-1] > 1e-6*res.Residuals[0] {
		t.Fatal("residual history did not decrease")
	}
}

func TestCGMaxIterError(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := manufactured(a, 6)
	_, err := CG(a, b, Options{Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := sparse.Poisson2D(4, 4)
	if _, err := CG(a, make([]float64, 3), Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCGNonSPDBreakdown(t *testing.T) {
	// Indefinite matrix: CG must report breakdown, not loop.
	a := sparse.Dense(2, 2, []float64{1, 0, 0, -1})
	b := []float64{1, 1}
	if _, err := CG(a, b, Options{}); err == nil {
		t.Fatal("expected breakdown error on indefinite matrix")
	}
}

func TestPCGPoisson(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, xTrue := manufactured(a, 7)
	res, err := PCG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-6)
}

func TestPCGBeatsOrMatchesCGOnSkewedDiagonal(t *testing.T) {
	// Jacobi helps when the diagonal is badly scaled.
	n := 200
	c := sparse.NewCOO(n, n)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		scale := math.Pow(10, 4*rng.Float64()) // diagonal spread 1..1e4
		c.Add(i, i, scale)
		if i > 0 {
			c.AddSym(i, i-1, -0.1)
		}
	}
	a := c.ToCSR()
	b, _ := manufactured(a, 9)
	cg, err1 := CG(a, b, Options{Tol: 1e-10, MaxIter: 5000})
	pcg, err2 := PCG(a, b, Options{Tol: 1e-10, MaxIter: 5000})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if pcg.Iterations > cg.Iterations {
		t.Fatalf("PCG (%d iters) slower than CG (%d iters) on skewed diagonal", pcg.Iterations, cg.Iterations)
	}
}

func TestPCGZeroDiagonal(t *testing.T) {
	a := sparse.Dense(2, 2, []float64{0, 1, 1, 0})
	if _, err := PCG(a, []float64{1, 1}, Options{}); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestBiCGstabNonsymmetric(t *testing.T) {
	// Convection–diffusion style: Poisson plus a skew part.
	base := sparse.Poisson2D(15, 15)
	c := sparse.NewCOO(base.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for k := base.Rowidx[i]; k < base.Rowidx[i+1]; k++ {
			c.Add(i, base.Colid[k], base.Val[k])
		}
		if i+1 < base.Rows {
			c.Add(i, i+1, 0.3)
			c.Add(i+1, i, -0.3)
		}
	}
	a := c.ToCSR()
	b, xTrue := manufactured(a, 10)
	res, err := BiCGstab(a, b, Options{Tol: 1e-10, MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-5)
}

func TestBiCGstabMatchesCGOnSPD(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	b, xTrue := manufactured(a, 11)
	res, err := BiCGstab(a, b, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-6)
}

func TestGMRESNonsymmetric(t *testing.T) {
	base := sparse.Poisson2D(12, 12)
	c := sparse.NewCOO(base.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for k := base.Rowidx[i]; k < base.Rowidx[i+1]; k++ {
			c.Add(i, base.Colid[k], base.Val[k])
		}
		if i+1 < base.Rows {
			c.Add(i, i+1, 0.5)
		}
	}
	a := c.ToCSR()
	b, xTrue := manufactured(a, 12)
	res, err := GMRES(a, b, GMRESOptions{Options: Options{Tol: 1e-10, MaxIter: 5000}, Restart: 40})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-5)
}

func TestGMRESSmallRestart(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	b, xTrue := manufactured(a, 13)
	res, err := GMRES(a, b, GMRESOptions{Options: Options{Tol: 1e-9, MaxIter: 20000}, Restart: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-4)
}

func TestGMRESExactAfterNSteps(t *testing.T) {
	// Full GMRES (restart ≥ n) converges in at most n iterations.
	n := 30
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.3, DiagShift: 1, Seed: 14})
	b, xTrue := manufactured(a, 14)
	res, err := GMRES(a, b, GMRESOptions{Options: Options{Tol: 1e-10, MaxIter: 10 * n}, Restart: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > n+1 {
		t.Fatalf("full GMRES took %d > n iterations", res.Iterations)
	}
	checkSolution(t, a, res.X, xTrue, b, 1e-5)
}

func TestAllSolversAgree(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	b, _ := manufactured(a, 15)
	cg, err1 := CG(a, b, Options{Tol: 1e-11})
	pcg, err2 := PCG(a, b, Options{Tol: 1e-11})
	bi, err3 := BiCGstab(a, b, Options{Tol: 1e-11})
	gm, err4 := GMRES(a, b, GMRESOptions{Options: Options{Tol: 1e-11, MaxIter: 5000}, Restart: 50})
	for i, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			t.Fatalf("solver %d: %v", i, err)
		}
	}
	for _, other := range [][]float64{pcg.X, bi.X, gm.X} {
		if d := vec.MaxAbsDiff(cg.X, other); d > 1e-6 {
			t.Fatalf("solvers disagree by %v", d)
		}
	}
}
