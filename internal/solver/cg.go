// Package solver implements the unprotected baseline iterative solvers:
// Conjugate Gradient (the paper's Algorithm 1), Jacobi-preconditioned CG,
// BiCGstab and restarted GMRES. The paper's resilience techniques target
// "any iterative solver that uses sparse matrix vector multiplies and
// vector operations" — CGNE, BiCG, BiCGstab and preconditioned variants are
// named explicitly — so the baselines beyond CG both ground that claim and
// serve as fault-free references for the resilient drivers in
// internal/core.
package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// ErrNotConverged is wrapped by solvers that hit their iteration budget.
var ErrNotConverged = errors.New("solver: not converged")

// Options configures a solve.
type Options struct {
	// Tol is the relative residual tolerance: stop when ‖r‖ ≤ Tol·‖b‖.
	Tol float64
	// MaxIter caps the iterations; 0 means 10·n.
	MaxIter int
	// X0 is the initial guess (zero vector if nil).
	X0 []float64
	// RecordResiduals, when true, stores ‖r‖ at every iteration in the
	// result (used by convergence tests and plots).
	RecordResiduals bool
	// OnIteration, when non-nil, streams the per-iteration recurrence
	// residual norm: it is called with the 1-based iteration index at
	// exactly the point where RecordResiduals would append, and receives
	// the same values. Unlike RecordResiduals it performs no allocation,
	// so a workspace-carrying warm solve that fingerprints its trajectory
	// stays allocation-free. Honoured by CG, PCG, PCGWith and BiCGstab.
	OnIteration func(it int, res float64)
	// Ws, when non-nil, supplies the iteration vectors from a reusable
	// workspace: a warm workspace makes the whole solve allocation-free.
	// Result.X then aliases workspace memory — copy it out before reuse.
	Ws *Workspace
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
	}
	return o
}

// Result reports the outcome of a solve.
type Result struct {
	X          []float64
	Iterations int
	Converged  bool
	// Residual is the final true residual norm ‖b − Ax‖ (recomputed, not
	// the recurrence value).
	Residual  float64
	Residuals []float64 // per-iteration recurrence residual norms, if recorded
}

// CG solves Ax = b for symmetric positive definite A using the Conjugate
// Gradient method (paper Algorithm 1).
func CG(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return Result{}, fmt.Errorf("solver: CG dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	opt = opt.withDefaults(n)
	ws := opt.Ws.begin()

	x := ws.takeZero(n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := ws.take(n)
	q := ws.take(n)
	// r0 = b − A x0
	a.MulVec(q, x)
	vec.Sub(r, b, q)
	p := ws.take(n)
	copy(p, r)

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho := vec.Norm2Sq(r)
	res := Result{X: x}

	for it := 0; it < opt.MaxIter; it++ {
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, math.Sqrt(rho))
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it+1, math.Sqrt(rho))
		}
		if math.Sqrt(rho) <= opt.Tol*normB {
			res.Iterations = it
			res.Converged = true
			res.Residual = trueResidualInto(q, a, x, b)
			return res, nil
		}
		a.MulVec(q, p)
		pq := vec.Dot(p, q)
		if pq <= 0 || math.IsNaN(pq) {
			return res, fmt.Errorf("solver: CG breakdown at iteration %d (pᵀAp = %v): matrix not SPD?", it, pq)
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)
		rhoNew := vec.Norm2Sq(r)
		beta := rhoNew / rho
		vec.Xpay(beta, r, p) // p ← r + β p
		rho = rhoNew
		res.Iterations = it + 1
	}
	res.Residual = trueResidualInto(q, a, x, b)
	res.Converged = math.Sqrt(rho) <= opt.Tol*normB
	if !res.Converged {
		return res, fmt.Errorf("%w: CG after %d iterations, ‖r‖/‖b‖ = %.3e",
			ErrNotConverged, res.Iterations, math.Sqrt(rho)/normB)
	}
	return res, nil
}

// PCG solves Ax = b with Jacobi (diagonal) preconditioning: the paper's
// conclusion singles out diagonal preconditioners as directly compatible
// with the protection scheme.
func PCG(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return Result{}, fmt.Errorf("solver: PCG dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	opt = opt.withDefaults(n)
	ws := opt.Ws.begin()

	invD := a.DiagInto(ws.take(n))
	for i, d := range invD {
		if d == 0 {
			return Result{}, fmt.Errorf("solver: PCG needs a nonzero diagonal (row %d)", i)
		}
		invD[i] = 1 / d
	}

	x := ws.takeZero(n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := ws.take(n)
	q := ws.take(n)
	z := ws.take(n)
	a.MulVec(q, x)
	vec.Sub(r, b, q)
	applyDiag(z, invD, r)
	p := ws.take(n)
	copy(p, z)

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho := vec.Dot(r, z)
	res := Result{X: x}

	for it := 0; it < opt.MaxIter; it++ {
		rNorm := vec.Norm2(r)
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, rNorm)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it+1, rNorm)
		}
		if rNorm <= opt.Tol*normB {
			res.Iterations = it
			res.Converged = true
			res.Residual = trueResidualInto(q, a, x, b)
			return res, nil
		}
		a.MulVec(q, p)
		pq := vec.Dot(p, q)
		if pq <= 0 || math.IsNaN(pq) {
			return res, fmt.Errorf("solver: PCG breakdown at iteration %d (pᵀAp = %v)", it, pq)
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)
		applyDiag(z, invD, r)
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		vec.Xpay(beta, z, p)
		rho = rhoNew
		res.Iterations = it + 1
	}
	res.Residual = trueResidualInto(q, a, x, b)
	res.Converged = vec.Norm2(r) <= opt.Tol*normB
	if !res.Converged {
		return res, fmt.Errorf("%w: PCG after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// PCGWith solves Ax = b with an explicit sparse preconditioner M ≈ A⁻¹
// applied as z = M·r each iteration. It is the unprotected reference for
// the resilient PCG driver, which protects exactly such an explicit M
// (Jacobi or approximate inverse, see internal/precond), so overheads
// compare like against like for any preconditioner.
func PCGWith(a, m *sparse.CSR, b []float64, opt Options) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return Result{}, fmt.Errorf("solver: PCG dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	if m == nil || m.Rows != n || m.Cols != n {
		return Result{}, fmt.Errorf("solver: PCG needs an n×n preconditioner")
	}
	opt = opt.withDefaults(n)
	ws := opt.Ws.begin()

	x := ws.takeZero(n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := ws.take(n)
	q := ws.take(n)
	z := ws.take(n)
	a.MulVec(q, x)
	vec.Sub(r, b, q)
	m.MulVec(z, r)
	p := ws.take(n)
	copy(p, z)

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho := vec.Dot(r, z)
	res := Result{X: x}

	for it := 0; it < opt.MaxIter; it++ {
		rNorm := vec.Norm2(r)
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, rNorm)
		}
		if opt.OnIteration != nil {
			opt.OnIteration(it+1, rNorm)
		}
		if rNorm <= opt.Tol*normB {
			res.Iterations = it
			res.Converged = true
			res.Residual = trueResidualInto(q, a, x, b)
			return res, nil
		}
		a.MulVec(q, p)
		pq := vec.Dot(p, q)
		if pq <= 0 || math.IsNaN(pq) {
			return res, fmt.Errorf("solver: PCG breakdown at iteration %d (pᵀAp = %v)", it, pq)
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)
		m.MulVec(z, r)
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		vec.Xpay(beta, z, p)
		rho = rhoNew
		res.Iterations = it + 1
	}
	res.Residual = trueResidualInto(q, a, x, b)
	res.Converged = vec.Norm2(r) <= opt.Tol*normB
	if !res.Converged {
		return res, fmt.Errorf("%w: PCG after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

func applyDiag(dst, invD, r []float64) {
	for i := range dst {
		dst[i] = invD[i] * r[i]
	}
}

// trueResidualInto recomputes ‖b − Ax‖ using t as scratch (any length-n
// buffer whose contents are dead, typically q).
func trueResidualInto(t []float64, a *sparse.CSR, x, b []float64) float64 {
	a.MulVec(t, x)
	vec.Sub(t, b, t)
	return vec.Norm2(t)
}
