package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// GMRESOptions extends Options with the restart length.
type GMRESOptions struct {
	Options
	// Restart is the Krylov basis size m of GMRES(m); 0 means 30.
	Restart int
}

// GMRES solves Ax = b for general A using restarted GMRES with modified
// Gram–Schmidt orthogonalisation and Givens rotations for the least-squares
// update. Heroux and Hoemmen's fault-tolerant GMRES is the related-work
// anchor the paper cites for selective reliability; this baseline lets the
// repository exercise the protection scheme on a long-recurrence method.
func GMRES(a *sparse.CSR, b []float64, opt GMRESOptions) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return Result{}, fmt.Errorf("solver: GMRES dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	opt.Options = opt.Options.withDefaults(n)
	m := opt.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}

	r := make([]float64, n)
	tmp := make([]float64, n)
	res := Result{X: x}

	// Krylov basis and Hessenberg storage, reused across restarts.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)

	totalIters := 0
	for totalIters < opt.MaxIter {
		// r = b − Ax; restart from the true residual.
		a.MulVec(tmp, x)
		vec.Sub(r, b, tmp)
		beta := vec.Norm2(r)
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, beta)
		}
		if beta <= opt.Tol*normB {
			res.Iterations = totalIters
			res.Converged = true
			res.Residual = beta
			return res, nil
		}

		vec.Copy(v[0], r)
		vec.Scale(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0 // columns built this cycle
		for ; k < m && totalIters < opt.MaxIter; k++ {
			totalIters++
			// Arnoldi step with modified Gram–Schmidt.
			w := v[k+1]
			a.MulVec(w, v[k])
			for i := 0; i <= k; i++ {
				h[i][k] = vec.Dot(w, v[i])
				vec.Axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = vec.Norm2(w)
			if h[k+1][k] > 0 {
				vec.Scale(1/h[k+1][k], w)
			}

			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			if opt.RecordResiduals {
				res.Residuals = append(res.Residuals, math.Abs(g[k+1]))
			}
			if math.Abs(g[k+1]) <= opt.Tol*normB {
				k++
				break
			}
		}

		// Solve the upper-triangular system h[0:k,0:k] y = g[0:k].
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return res, fmt.Errorf("solver: GMRES breakdown (singular Hessenberg) at iteration %d", totalIters)
			}
			y[i] = s / h[i][i]
		}
		for j := 0; j < k; j++ {
			vec.Axpy(y[j], v[j], x)
		}
		res.Iterations = totalIters
	}

	res.Residual = trueResidualInto(make([]float64, len(b)), a, x, b)
	res.Converged = res.Residual <= opt.Tol*normB
	if !res.Converged {
		return res, fmt.Errorf("%w: GMRES after %d iterations, ‖r‖/‖b‖ = %.3e",
			ErrNotConverged, res.Iterations, res.Residual/normB)
	}
	return res, nil
}
