package core

import (
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/sparse"
	"repro/internal/tmr"
	"repro/internal/vec"
)

// maxFinalCheckRetries bounds the convergence re-verification loop: a
// latent corruption that was checkpointed (e.g. a Val flip in a column
// where the iterate happens to be zero) can make the final residual check
// fail repeatedly; after this many failures the solve aborts.
const maxFinalCheckRetries = 20

// Solve runs the resilient CG of the configured scheme on Ax = b and
// returns the solution, the execution statistics and an error when the
// method did not converge. The caller's matrix is never modified: faults
// are injected into an internal working copy.
func Solve(a *sparse.CSR, b []float64, cfg Config) ([]float64, Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("core: dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	cfg = cfg.withDefaults(n)
	ws := cfg.Ws.begin()

	live := ws.liveCopy(a)
	costs := NewCosts(live, cfg.Scheme, cfg.Costs)

	alpha := 0.0
	if cfg.Injector != nil {
		alpha = cfg.Injector.Alpha()
	}
	d, s := cfg.D, cfg.S
	if d == 0 || s == 0 {
		od, os := OptimalIntervals(a, cfg.Scheme, alpha, cfg.Costs)
		if d == 0 {
			d = od
		}
		if s == 0 {
			s = os
		}
	}
	if cfg.Scheme != OnlineDetection {
		d = 1 // ABFT schemes verify every iteration by construction
	}

	run := &ws.rs
	exec := run.exec // preserve the TMR executor's resident replica scratch
	*run = runState{
		cfg:   cfg,
		costs: costs,
		live:  live,
		b:     b,
		x:     ws.takeZero(n),
		r:     ws.takeCopy(b), // x0 = 0 ⇒ r0 = b
		p:     ws.takeCopy(b),
		q:     ws.take(n),
		rr:    ws.take(n),
		d:     d,
		s:     s,
	}
	run.stats = Stats{Scheme: cfg.Scheme, D: d, S: s}
	st := &run.stats
	ws.state = fault.State{A: live, R: run.r, P: run.p, Q: run.q, X: run.x}
	run.state = &ws.state

	run.exec = exec
	run.exec.Pool = cfg.Pool
	if cfg.Scheme != OnlineDetection {
		mode := abftMode(cfg.Scheme)
		run.prot = ws.protected(live, mode)
		run.rGuard = ws.guard(0, run.r, mode)
		run.pGuard = ws.guard(1, run.p, mode)
		run.xGuard = ws.guard(2, run.x, mode)
		st.SimTime += SetupCost(live, cfg.Scheme, cfg.Costs)
	}

	run.store, run.initStore = ws.stores()
	run.view = ws.liveView(live, nil)
	run.view.Vectors["x"] = run.x
	run.view.Vectors["r"] = run.r
	run.view.Vectors["p"] = run.p
	run.normB = vec.Norm2(b)
	if run.normB == 0 {
		run.normB = 1
	}
	run.rho = vec.Norm2Sq(run.r)
	run.saveCheckpoint(false) // initial state; re-reading inputs is free
	run.initStore.Save(run.view)

	err := run.loop()
	st.SimTime = st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery + st.SimTime
	if cfg.Injector != nil {
		st.FaultsInjected = cfg.Injector.Stats().Flips
	}
	// The reported residual uses the caller's pristine matrix.
	rr := run.rr
	a.MulVecParallel(cfg.Pool, rr, run.x)
	vec.Sub(rr, b, rr)
	st.FinalResidual = vec.Norm2(rr) / run.normB
	return run.x, *st, err
}

// runState carries the live solver state through the iteration loop.
type runState struct {
	cfg   Config
	costs Costs
	live  *sparse.CSR
	b     []float64
	x     []float64
	r     []float64
	p     []float64
	q     []float64
	rr    []float64 // scratch for onlineVerify and the final residual
	state *fault.State
	store *checkpoint.Store
	view  *checkpoint.State // reusable live-state view for save/rollback
	stats Stats

	prot   *abft.Protected
	rGuard *abft.VectorGuard
	pGuard *abft.VectorGuard
	xGuard *abft.VectorGuard
	exec   tmr.Executor

	normB float64
	rho   float64
	it    int // useful iterations completed (rolls back with the state)
	d, s  int
	last  int // iteration of the last checkpoint

	// Livelock escalation: a checkpoint that itself carries (sub-tolerance)
	// corruption can fail verification deterministically on every retry.
	// After stuckLimit rollbacks with no forward progress the driver
	// restores the pristine initial state instead ("re-reading the input
	// data", which the paper notes is how the first frame recovers).
	initStore *checkpoint.Store
	highWater int
	stuck     int
}

// stuckLimit is the number of no-progress rollbacks tolerated before
// escalating to the initial state.
const stuckLimit = 5

func (rs *runState) loop() error {
	cfg := rs.cfg
	st := &rs.stats
	maxTotal := int64(cfg.MaxIters)*10 + 1000
	finalRetries := 0
	emit := detectionEmitter(cfg.OnDetection, st)

	for {
		// Convergence test on the recurrence residual, confirmed against a
		// recomputed true residual so grossly corrupted state cannot be
		// returned. The confirmation threshold is floored at the detection
		// capability of the verification mechanisms (~1e-6 relative):
		// sub-threshold false negatives leave a drift the paper explicitly
		// accepts ("the algorithm still converges towards the correct
		// answer"), and demanding more here would loop forever on a
		// consistently-corrupted-but-harmless system.
		if math.Sqrt(rs.rho) <= cfg.Tol*rs.normB {
			st.TimeVerif += rs.costs.Titer // one confirmation SpMxV
			rs.live.MulVecRobustParallel(cfg.Pool, rs.q, rs.x)
			vec.Sub(rs.q, rs.b, rs.q)
			confirmTol := math.Max(10*cfg.Tol, 1e-6) * rs.normB
			if tr := vec.Norm2(rs.q); tr <= confirmTol && !math.IsNaN(tr) {
				st.Converged = true
				st.UsefulIterations = rs.it
				return nil
			}
			finalRetries++
			if finalRetries >= maxFinalCheckRetries {
				st.UsefulIterations = rs.it
				return fmt.Errorf("core: %v: convergence confirmation kept failing (latent corruption)", cfg.Scheme)
			}
			rs.rollback()
			continue
		}
		if rs.it >= cfg.MaxIters || st.TotalIterations >= maxTotal {
			st.UsefulIterations = rs.it
			return fmt.Errorf("core: %v: not converged after %d useful (%d total) iterations",
				cfg.Scheme, rs.it, st.TotalIterations)
		}

		st.TotalIterations++
		var deferredQ []fault.Event
		if cfg.Injector != nil {
			_, deferredQ = cfg.Injector.InjectIterationSplit(rs.state)
		}

		ok := rs.iterate(deferredQ)
		if !ok {
			if emit != nil {
				emit(rs.it, true)
			}
			rs.rollback()
			continue
		}

		rs.it++
		if cfg.OnIteration != nil {
			cfg.OnIteration(rs.it, rs.rho)
		}
		if emit != nil {
			emit(rs.it, false)
		}
		if rs.it > rs.highWater {
			rs.highWater = rs.it
			rs.stuck = 0
		}
		if rs.it%rs.d == 0 { // chunk boundary
			if cfg.Scheme == OnlineDetection {
				st.TimeVerif += rs.costs.Tverif
				if !rs.onlineVerify() {
					st.Detections++
					if emit != nil {
						emit(rs.it, true)
					}
					rs.rollback()
					continue
				}
			}
			if (rs.it/rs.d)%rs.s == 0 && rs.it > rs.last {
				rs.saveCheckpoint(true)
			}
		}
	}
}

// iterate performs one CG iteration on the live (possibly corrupted)
// state. It returns false when an uncorrectable error was detected and the
// caller must roll back.
func (rs *runState) iterate(deferredQ []fault.Event) bool {
	st := &rs.stats
	abftScheme := rs.cfg.Scheme != OnlineDetection

	if abftScheme {
		st.TimeIter += rs.costs.Titer
		st.TimeVerif += rs.costs.Tverif

		// Memory-fault checks on the vectors written last iteration.
		outR := rs.rGuard.Check(rs.r)
		outX := rs.xGuard.Check(rs.x)

		sr := rs.prot.MulVec(rs.q, rs.p)
		for _, ev := range deferredQ {
			rs.cfg.Injector.ApplyEvent(rs.state, ev)
		}
		if !rs.settleABFT(outR, outX, sr) {
			return false
		}
	} else {
		st.TimeIter += rs.costs.Titer
		rs.live.MulVecRobustParallel(rs.cfg.Pool, rs.q, rs.p)
		for _, ev := range deferredQ {
			rs.cfg.Injector.ApplyEvent(rs.state, ev)
		}
	}

	return rs.recurrences(abftScheme)
}

// settleABFT verifies a completed protected product against the shared
// runtime Rowidx sums and resolves the joint detection outcome of the two
// vector guards and the product. It is the post-product half of an ABFT
// iteration, shared verbatim by the sequential and the blocked drivers so
// their detection behaviour is identical by construction.
func (rs *runState) settleABFT(outR, outX abft.Outcome, sr abft.RowSums) bool {
	st := &rs.stats
	outQ := rs.prot.Verify(rs.q, rs.p, rs.pGuard.Ref(), sr)

	vecCorrect := TcorrectVector(rs.live, rs.cfg.Costs)
	names := [3]string{"rGuard", "xGuard", "product"}
	for i, out := range [3]abft.Outcome{outR, outX, outQ} {
		if !out.Detected {
			continue
		}
		st.Detections++
		if !out.Corrected {
			rs.trace("it=%d %s detected uncorrectable class=%v", rs.it, names[i], out.Class)
			return false
		}
		st.Corrections++
		// Guard repairs (r, x) are O(n); product repairs may recompute
		// the O(nnz) column checksums.
		if i < 2 || out.Class == abft.ClassX {
			st.TimeVerif += vecCorrect
		} else {
			st.TimeVerif += rs.costs.Tcorrect
		}
		// A matrix repair restores the original entry only to rounding;
		// re-anchor the bitwise checksum identity on the repaired matrix.
		if i == 2 && (out.Class == abft.ClassVal || out.Class == abft.ClassColid || out.Class == abft.ClassRowidx) {
			rs.prot.Reencode()
		}
	}
	return true
}

// recurrences runs the CG recurrences (paper Algorithm 1, lines 6–10) after
// the product q = A·p is in place. ABFT schemes run the vector kernels
// under TMR (selective reliability for the computation); both schemes treat
// non-finite or non-positive curvature as a detected error.
func (rs *runState) recurrences(abftScheme bool) bool {
	st := &rs.stats
	var pq float64
	if abftScheme {
		pq = rs.exec.Dot(rs.p, rs.q)
	} else {
		pq = vec.DotPool(rs.cfg.Pool, rs.p, rs.q)
	}
	if pq <= 0 || math.IsNaN(pq) || math.IsInf(pq, 0) {
		st.Detections++
		return false
	}
	alpha := rs.rho / pq

	if abftScheme {
		rs.exec.Axpy(alpha, rs.p, rs.x)
		rs.xGuard.Refresh(rs.x)
		rs.exec.Axpy(-alpha, rs.q, rs.r)
		rs.rGuard.Refresh(rs.r)
	} else {
		vec.AxpyPool(rs.cfg.Pool, alpha, rs.p, rs.x)
		vec.AxpyPool(rs.cfg.Pool, -alpha, rs.q, rs.r)
	}

	var rhoNew float64
	if abftScheme {
		rhoNew = rs.exec.Norm2Sq(rs.r)
	} else {
		rhoNew = vec.Norm2SqPool(rs.cfg.Pool, rs.r)
	}
	if math.IsNaN(rhoNew) || math.IsInf(rhoNew, 0) {
		st.Detections++
		return false
	}
	beta := rhoNew / rs.rho
	if abftScheme {
		rs.exec.Xpay(beta, rs.r, rs.p)
		rs.pGuard.Refresh(rs.p)
	} else {
		vec.XpayPool(rs.cfg.Pool, beta, rs.r, rs.p)
	}
	rs.rho = rhoNew
	return true
}

// onlineVerify implements Chen's periodic tests (paper Section 3.1): the
// residual is recomputed as b − Ax and compared with the recurrence
// residual, and the A-orthogonality of the current direction p against the
// last product q = A·p_prev is checked. Any discrepancy — including
// non-finite values — reports an error.
func (rs *runState) onlineVerify() bool {
	rr := rs.rr
	rs.live.MulVecRobustParallel(rs.cfg.Pool, rr, rs.x)
	vec.Sub(rr, rs.b, rr)

	normRR := vec.Norm2(rr)
	normR := vec.Norm2(rs.r)
	if math.IsNaN(normRR) || math.IsNaN(normR) || math.IsInf(normRR, 0) || math.IsInf(normR, 0) {
		return false
	}
	diff := vec.MaxAbsDiff(rr, rs.r)
	scale := math.Max(rs.normB, math.Max(normRR, normR))
	if diff > 1e-6*scale {
		return false
	}

	// Orthogonality: after the p-update, p_{i+1}ᵀ A p_i = 0 up to rounding.
	normP := vec.Norm2(rs.p)
	normQ := vec.Norm2(rs.q)
	if normP == 0 || normQ == 0 || math.IsNaN(normP) || math.IsNaN(normQ) {
		return false
	}
	ortho := math.Abs(vec.Dot(rs.p, rs.q)) / (normP * normQ)
	return ortho <= 1e-6 && !math.IsNaN(ortho)
}

// saveCheckpoint snapshots the full resilient state (matrix included)
// through the reusable live-state view. The view must carry the recurrence
// scalar: the initial-state store deep-copies the same view, and an
// escalated rollback resumes from its rho.
func (rs *runState) saveCheckpoint(charge bool) {
	rs.view.Iteration = rs.it
	rs.view.Scalars["rho"] = rs.rho
	rs.store.Save(rs.view)
	rs.last = rs.it
	if charge {
		rs.stats.Checkpoints++
		rs.stats.TimeCkpt += rs.costs.Tcp
	}
}

func (rs *runState) trace(format string, args ...any) {
	if rs.cfg.Trace != nil {
		rs.cfg.Trace(format, args...)
	}
}

// rollback restores the last checkpoint (escalating to the pristine
// initial state after stuckLimit no-progress retries) and re-arms the
// guards and the matrix checksum encoding.
func (rs *runState) rollback() {
	store := rs.store
	rs.stuck++
	if rs.stuck > stuckLimit {
		rs.trace("it=%d escalating rollback to initial state after %d stuck retries", rs.it, rs.stuck-1)
		store = rs.initStore
		rs.stuck = 0
		rs.highWater = 0
		rs.last = 0
	}
	store.Restore(rs.view)
	rs.it = rs.view.Iteration
	rs.rho = rs.view.Scalars["rho"]
	rs.stats.Rollbacks++
	rs.stats.TimeRecovery += rs.costs.Trec
	if rs.cfg.Scheme != OnlineDetection {
		rs.rGuard.Refresh(rs.r)
		rs.pGuard.Refresh(rs.p)
		rs.xGuard.Refresh(rs.x)
		// The restored matrix predates any later forward repairs, whose ulp
		// residues were absorbed into the current encoding; re-anchor it.
		rs.prot.Reencode()
	}
}
