// Package core implements the paper's primary contribution: resilient
// Conjugate Gradient drivers that combine backward recovery (checkpoint and
// rollback) with per-iteration verification, in three flavours:
//
//	OnlineDetection — Chen's scheme (PPoPP'13) as extended by the paper:
//	    verify every d iterations by recomputing the residual and checking
//	    the A-orthogonality of consecutive search directions; checkpoint
//	    every s·d iterations (including the matrix A, so memory faults on A
//	    are recoverable); roll back on any detection.
//	ABFTDetection  — single-checksum ABFT SpMxV every iteration plus TMR
//	    vector kernels; roll back on any detection.
//	ABFTCorrection — two-checksum ABFT SpMxV: single errors are corrected
//	    forward with no rollback; only multi-error iterations roll back.
//
// The drivers operate on genuinely corrupted memory (the fault injector
// flips real bits in the live arrays) and account execution time through a
// deterministic cost model, so the experiments of the paper's Section 5 are
// reproducible bit for bit.
package core

import (
	"repro/internal/abft"
	"repro/internal/sparse"
)

// CostParams converts operation counts into model time. The defaults
// correspond to a nominal 1 Gflop/s core with memory copies at half the
// flop throughput — only ratios matter for every claim in the paper.
type CostParams struct {
	// FlopTime is the cost of one floating-point operation, in seconds.
	FlopTime float64
	// WordTime is the cost of copying one machine word (checkpoint,
	// recovery), in seconds.
	WordTime float64
	// RelModeExtra is the *time* surcharge factor for operations executed
	// in reliable mode (the TMR vector kernels and the guard refreshes):
	// the extra time charged is RelModeExtra × the raw kernel time. The
	// paper's selective reliability model (Section 2) prices reliable mode
	// in energy, not time ("error-free but energy consuming"), so the
	// default is 0; set 2 to model TMR as three full sequential
	// re-executions (the ablation benchmark exercises both).
	RelModeExtra float64
}

// DefaultCostParams returns the nominal calibration.
func DefaultCostParams() CostParams {
	return CostParams{FlopTime: 1e-9, WordTime: 2e-9, RelModeExtra: 0}
}

// Costs holds the derived per-operation times (seconds) for one scheme on
// one matrix: the quantities Titer, Tverif, Tcp and Trec of the paper's
// model, plus the forward-correction cost that the model neglects (it is
// paid only on actual corrections, which are rare).
type Costs struct {
	Titer    float64 // raw CG iteration (paper's Titer)
	Tverif   float64 // per-chunk verification overhead
	Tcp      float64 // checkpoint
	Trec     float64 // recovery
	Tcorrect float64 // one forward correction (ABFT-Correction only)
}

// cgFlopsPerIter is the flop count of one raw CG iteration: one SpMxV plus
// two dot products and three axpy-type updates (paper Section 3.1).
func cgFlopsPerIter(a *sparse.CSR) int64 {
	n := int64(a.Rows)
	return a.FlopsMulVec() + 2*(2*n) + 3*(2*n)
}

// CGFlopsPerIter exposes the raw per-iteration flop count of CG on this
// matrix — the quantity Titer is priced from. Campaign records report it so
// modeled times can be converted back into work.
func CGFlopsPerIter(a *sparse.CSR) int64 { return cgFlopsPerIter(a) }

// checkpointWords is the snapshot size: the three matrix arrays plus the
// three iteration vectors (x, r, p) — identical for all three methods, as
// the paper notes.
func checkpointWords(a *sparse.CSR) int64 {
	return int64(a.MemoryWords() + 3*a.Rows)
}

// NewCosts derives the cost model for the given scheme and matrix.
func NewCosts(a *sparse.CSR, scheme Scheme, cp CostParams) Costs {
	n := int64(a.Rows)
	iterFlops := cgFlopsPerIter(a)
	words := checkpointWords(a)

	c := Costs{
		Titer: float64(iterFlops) * cp.FlopTime,
		Tcp:   float64(words) * cp.WordTime,
		Trec:  float64(words) * cp.WordTime,
	}

	switch scheme {
	case OnlineDetection:
		// Verification: recompute the residual b − Ax (one extra SpMxV plus
		// a subtraction and a norm) and check the orthogonality of p and q
		// (one dot and two norms). The SpMxV dominates, as the paper notes.
		verifFlops := a.FlopsMulVec() + 2*n + 2*n + (2*n + 4*n)
		c.Tverif = float64(verifFlops) * cp.FlopTime
	case ABFTDetection, ABFTCorrection:
		// Per-iteration overhead charged as wall time, matching the
		// implementation under the TolNorm policy: the runtime Rowidx
		// counters (4n), the weighted sums of y (3n), C_rᵀx (2n per row),
		// the reference sums of x (3n), the two max-norms (2n) and the
		// vector-guard checks on r and x (4n each). The TMR vector kernels
		// and the guard refreshes run in reliable mode, priced in energy
		// under the paper's selective-reliability model; their time
		// surcharge is RelModeExtra (0 by default, see CostParams).
		tests := 4*(n+1) + 3*n + 2*n + 3*n + 2*n
		if scheme == ABFTCorrection {
			tests += 2 * n // second checksum row of Cᵀx
		}
		guardChecks := 2 * 4 * n
		relMode := cp.RelModeExtra * float64(2*(2*n)+3*(2*n)+3*3*n)
		c.Tverif = float64(tests+guardChecks)*cp.FlopTime + relMode*cp.FlopTime
		// A forward correction of a matrix or computation error recomputes
		// the column checksums (O(nnz)) plus a row and a re-verification.
		c.Tcorrect = float64(4*int64(a.NNZ())+32*n) * cp.FlopTime
	}
	return c
}

// TcorrectVector is the cost of repairing a single vector-guard error
// (O(n): reconstruction by exclusion plus a recheck).
func TcorrectVector(a *sparse.CSR, cp CostParams) float64 {
	return float64(8*int64(a.Rows)) * cp.FlopTime
}

// SetupCost returns the one-off cost of building the ABFT checksum
// encoding (amortised over the whole solve; zero for Online-Detection).
func SetupCost(a *sparse.CSR, scheme Scheme, cp CostParams) float64 {
	if scheme == OnlineDetection {
		return 0
	}
	return float64(8*int64(a.NNZ())+4*int64(len(a.Rowidx))) * cp.FlopTime
}

// abftMode maps a scheme to the ABFT protection mode.
func abftMode(s Scheme) abft.Mode {
	if s == ABFTCorrection {
		return abft.DetectCorrect
	}
	return abft.Detect
}
