package core

import (
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/tmr"
	"repro/internal/vec"
)

// This file implements the resilient *preconditioned* CG driver, the
// extension the paper's conclusion targets: "diagonal, approximate inverse,
// and triangular preconditioners seem to be particularly attracting, since
// it should be possible to treat them by adapting the techniques described
// in this paper". A preconditioner applied as an explicit sparse matrix
// (Jacobi or a sparse approximate inverse, see internal/precond) is
// protected by exactly the same ABFT-SpMxV machinery as A: its own
// checksum rows, its own detect/correct verification, and inclusion in the
// checkpointed state so matrix faults on M are also recoverable.

// PCGConfig parameterises a resilient preconditioned solve.
type PCGConfig struct {
	// Scheme selects the resilience method (OnlineDetection uses Chen-style
	// residual verification on the preconditioned recurrences).
	Scheme Scheme
	// M is the explicit sparse preconditioner (e.g. precond.Jacobi or
	// precond.Neumann output). Must be SPD for PCG.
	M *sparse.CSR
	// S, D, Tol, MaxIters, Injector, Costs, Trace, Pool, OnIteration, Ws:
	// as in Config.
	S, D        int
	Tol         float64
	MaxIters    int
	Injector    *fault.Injector
	Costs       CostParams
	Trace       func(format string, args ...any)
	Pool        *pool.Pool
	OnIteration func(it int, rho float64)
	OnDetection func(DetectionEvent)
	Ws          *Workspace
}

// SolvePCG runs the resilient preconditioned CG on Ax = b. Both A and M
// live in corruptible memory; both products are ABFT-protected under the
// ABFT schemes. Statistics are reported exactly as for Solve.
func SolvePCG(a *sparse.CSR, b []float64, cfg PCGConfig) ([]float64, Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("core: PCG dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	if cfg.M == nil || cfg.M.Rows != n || cfg.M.Cols != n {
		return nil, Stats{}, fmt.Errorf("core: PCG needs an n×n preconditioner")
	}
	base := Config{
		Scheme: cfg.Scheme, S: cfg.S, D: cfg.D, Tol: cfg.Tol,
		MaxIters: cfg.MaxIters, Injector: cfg.Injector, Costs: cfg.Costs,
		Trace: cfg.Trace, Pool: cfg.Pool, OnIteration: cfg.OnIteration,
		OnDetection: cfg.OnDetection,
	}
	base = base.withDefaults(n)
	ws := cfg.Ws.begin()

	liveA := ws.liveCopy(a)
	liveM := ws.liveMCopy(cfg.M)
	costs := NewCosts(liveA, base.Scheme, base.Costs)
	// The preconditioner product adds its own iteration and verification
	// cost on top of the CG baseline.
	costs.Titer += float64(liveM.FlopsMulVec()) * base.Costs.FlopTime
	if base.Scheme != OnlineDetection {
		costs.Tverif += float64(12*int64(n)) * base.Costs.FlopTime
	}
	// Checkpoints now carry M as well.
	extraCp := float64(liveM.MemoryWords()) * base.Costs.WordTime
	costs.Tcp += extraCp
	costs.Trec += extraCp

	alpha := 0.0
	if cfg.Injector != nil {
		alpha = cfg.Injector.Alpha()
	}
	d, s := base.D, base.S
	if d == 0 || s == 0 {
		od, os := OptimalIntervals(a, base.Scheme, alpha, base.Costs)
		if d == 0 {
			d = od
		}
		if s == 0 {
			s = os
		}
	}
	if base.Scheme != OnlineDetection {
		d = 1
	}

	p := &ws.pr
	exec := p.exec // preserve the TMR executor's resident replica scratch
	*p = pcgRun{
		cfg:   base,
		costs: costs,
		a:     liveA,
		m:     liveM,
		b:     b,
		x:     ws.takeZero(n),
		r:     ws.takeCopy(b),
		z:     ws.take(n),
		p:     ws.takeZero(n),
		q:     ws.take(n),
		rr:    ws.take(n),
		d:     d,
		s:     s,
	}
	p.stats = Stats{Scheme: base.Scheme, D: d, S: s}
	st := &p.stats
	ws.state = fault.State{A: liveA, M: liveM, R: p.r, P: p.p, Q: p.q, X: p.x, Z: p.z}
	p.state = &ws.state
	p.exec = exec
	p.exec.Pool = cfg.Pool

	if base.Scheme != OnlineDetection {
		mode := abftMode(base.Scheme)
		p.protA = ws.protected(liveA, mode)
		p.protM = ws.protectedM(liveM, mode)
		p.rGuard = ws.guard(0, p.r, mode)
		p.pGuard = ws.guard(1, p.p, mode)
		p.xGuard = ws.guard(2, p.x, mode)
		st.SimTime += SetupCost(liveA, base.Scheme, base.Costs)
		st.SimTime += SetupCost(liveM, base.Scheme, base.Costs)
	}

	p.normB = vec.Norm2(b)
	if p.normB == 0 {
		p.normB = 1
	}
	// z0 = M r0, p0 = z0, rho0 = rᵀz.
	p.m.MulVecRobustParallel(cfg.Pool, p.z, p.r)
	copy(p.p, p.z)
	p.rho = vec.DotPool(cfg.Pool, p.r, p.z)
	if base.Scheme != OnlineDetection {
		p.rGuard.Refresh(p.r)
		p.pGuard.Refresh(p.p)
		p.xGuard.Refresh(p.x)
	}

	p.store, p.initStore = ws.stores()
	p.view = ws.liveView(liveA, liveM)
	p.view.Vectors["x"] = p.x
	p.view.Vectors["r"] = p.r
	p.view.Vectors["p"] = p.p
	p.view.Vectors["z"] = p.z
	p.save(false)
	p.initStore.Save(p.view)

	err := p.loop()
	st.SimTime = st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery + st.SimTime
	if cfg.Injector != nil {
		st.FaultsInjected = cfg.Injector.Stats().Flips
	}
	rr := p.rr
	a.MulVecParallel(cfg.Pool, rr, p.x)
	vec.Sub(rr, b, rr)
	st.FinalResidual = vec.Norm2(rr) / p.normB
	return p.x, *st, err
}

type pcgRun struct {
	cfg   Config
	costs Costs
	a, m  *sparse.CSR
	b     []float64
	x     []float64
	r     []float64
	z     []float64
	p     []float64
	q     []float64
	rr    []float64 // scratch for onlineVerify and the final residual
	state *fault.State
	stats Stats
	view  *checkpoint.State // reusable live-state view for save/rollback

	protA, protM           *abft.Protected
	rGuard, pGuard, xGuard *abft.VectorGuard
	exec                   tmr.Executor

	store, initStore *checkpoint.Store
	normB            float64
	rho              float64
	it               int
	d, s             int
	last             int
	highWater        int
	stuck            int
}

func (p *pcgRun) save(charge bool) {
	p.view.Iteration = p.it
	p.view.Scalars["rho"] = p.rho
	p.store.Save(p.view)
	p.last = p.it
	if charge {
		p.stats.Checkpoints++
		p.stats.TimeCkpt += p.costs.Tcp
	}
}

func (p *pcgRun) loop() error {
	cfg := p.cfg
	st := &p.stats
	maxTotal := int64(cfg.MaxIters)*10 + 1000
	finalRetries := 0
	emit := detectionEmitter(cfg.OnDetection, st)

	for {
		// Convergence on ‖r‖ (not the preconditioned ρ = rᵀz), matching the
		// unprotected baseline's criterion exactly.
		if vec.Norm2(p.r) <= cfg.Tol*p.normB {
			st.TimeVerif += p.costs.Titer
			p.a.MulVecRobustParallel(cfg.Pool, p.q, p.x)
			vec.Sub(p.q, p.b, p.q)
			confirmTol := math.Max(10*cfg.Tol, 1e-6) * p.normB
			if tr := vec.Norm2(p.q); tr <= confirmTol && !math.IsNaN(tr) {
				st.Converged = true
				st.UsefulIterations = p.it
				return nil
			}
			finalRetries++
			if finalRetries >= maxFinalCheckRetries {
				st.UsefulIterations = p.it
				return fmt.Errorf("core: PCG %v: convergence confirmation kept failing", cfg.Scheme)
			}
			p.rollback()
			continue
		}
		if p.it >= cfg.MaxIters || st.TotalIterations >= maxTotal {
			st.UsefulIterations = p.it
			return fmt.Errorf("core: PCG %v: not converged after %d useful (%d total) iterations",
				cfg.Scheme, p.it, st.TotalIterations)
		}

		st.TotalIterations++
		var deferred []fault.Event
		if cfg.Injector != nil {
			_, deferred = cfg.Injector.InjectIterationSplit(p.state)
		}
		if !p.iterate(deferred) {
			if emit != nil {
				emit(p.it, true)
			}
			p.rollback()
			continue
		}

		p.it++
		if cfg.OnIteration != nil {
			cfg.OnIteration(p.it, p.rho)
		}
		if emit != nil {
			emit(p.it, false)
		}
		if p.it > p.highWater {
			p.highWater = p.it
			p.stuck = 0
		}
		if p.it%p.d == 0 {
			if cfg.Scheme == OnlineDetection {
				st.TimeVerif += p.costs.Tverif
				if !p.onlineVerify() {
					st.Detections++
					if emit != nil {
						emit(p.it, true)
					}
					p.rollback()
					continue
				}
			}
			if (p.it/p.d)%p.s == 0 && p.it > p.last {
				p.save(true)
			}
		}
	}
}

func (p *pcgRun) iterate(deferred []fault.Event) bool {
	st := &p.stats
	abftScheme := p.cfg.Scheme != OnlineDetection
	st.TimeIter += p.costs.Titer

	applyDeferred := func(target fault.Target) {
		for _, ev := range deferred {
			if ev.Target == target {
				p.cfg.Injector.ApplyEvent(p.state, ev)
			}
		}
	}

	if abftScheme {
		st.TimeVerif += p.costs.Tverif

		outR := p.rGuard.Check(p.r)
		outX := p.xGuard.Check(p.x)

		srA := p.protA.MulVec(p.q, p.p)
		applyDeferred(fault.TargetVecQ)
		outQ := p.protA.Verify(p.q, p.p, p.pGuard.Ref(), srA)

		for i, out := range [3]abft.Outcome{outR, outX, outQ} {
			if !out.Detected {
				continue
			}
			st.Detections++
			if !out.Corrected {
				return false
			}
			st.Corrections++
			if i == 2 && (out.Class == abft.ClassVal || out.Class == abft.ClassColid || out.Class == abft.ClassRowidx) {
				st.TimeVerif += p.costs.Tcorrect
				p.protA.Reencode()
			} else {
				st.TimeVerif += TcorrectVector(p.a, p.cfg.Costs)
			}
		}
	} else {
		p.a.MulVecRobustParallel(p.cfg.Pool, p.q, p.p)
		applyDeferred(fault.TargetVecQ)
	}

	var pq float64
	if abftScheme {
		pq = p.exec.Dot(p.p, p.q)
	} else {
		pq = vec.DotPool(p.cfg.Pool, p.p, p.q)
	}
	if pq <= 0 || math.IsNaN(pq) || math.IsInf(pq, 0) {
		st.Detections++
		return false
	}
	alpha := p.rho / pq

	if abftScheme {
		p.exec.Axpy(alpha, p.p, p.x)
		p.xGuard.Refresh(p.x)
		p.exec.Axpy(-alpha, p.q, p.r)
		p.rGuard.Refresh(p.r)
	} else {
		vec.AxpyPool(p.cfg.Pool, alpha, p.p, p.x)
		vec.AxpyPool(p.cfg.Pool, -alpha, p.q, p.r)
	}

	// The preconditioner application z ← M·r, protected like the A-product
	// (its own checksums; the r-guard provides the input reference).
	if abftScheme {
		srM := p.protM.MulVec(p.z, p.r)
		applyDeferred(fault.TargetVecZ)
		outZ := p.protM.Verify(p.z, p.r, p.rGuard.Ref(), srM)
		if outZ.Detected {
			st.Detections++
			if !outZ.Corrected {
				return false
			}
			st.Corrections++
			st.TimeVerif += p.costs.Tcorrect
			if outZ.Class == abft.ClassVal || outZ.Class == abft.ClassColid || outZ.Class == abft.ClassRowidx {
				p.protM.Reencode()
			}
		}
	} else {
		p.m.MulVecRobustParallel(p.cfg.Pool, p.z, p.r)
		applyDeferred(fault.TargetVecZ)
	}

	var rhoNew float64
	if abftScheme {
		rhoNew = p.exec.Dot(p.r, p.z)
	} else {
		rhoNew = vec.DotPool(p.cfg.Pool, p.r, p.z)
	}
	if math.IsNaN(rhoNew) || math.IsInf(rhoNew, 0) {
		st.Detections++
		return false
	}
	beta := rhoNew / p.rho
	if abftScheme {
		p.exec.Xpay(beta, p.z, p.p)
		p.pGuard.Refresh(p.p)
	} else {
		vec.XpayPool(p.cfg.Pool, beta, p.z, p.p)
	}
	p.rho = rhoNew
	return true
}

// onlineVerify for PCG: the recomputed-residual test is unchanged; the
// orthogonality test uses the preconditioned direction.
func (p *pcgRun) onlineVerify() bool {
	rr := p.rr
	p.a.MulVecRobustParallel(p.cfg.Pool, rr, p.x)
	vec.Sub(rr, p.b, rr)

	normRR := vec.Norm2(rr)
	normR := vec.Norm2(p.r)
	if math.IsNaN(normRR) || math.IsNaN(normR) || math.IsInf(normRR, 0) || math.IsInf(normR, 0) {
		return false
	}
	diff := vec.MaxAbsDiff(rr, p.r)
	scale := math.Max(p.normB, math.Max(normRR, normR))
	if diff > 1e-6*scale {
		return false
	}
	normP := vec.Norm2(p.p)
	normQ := vec.Norm2(p.q)
	if normP == 0 || normQ == 0 || math.IsNaN(normP) || math.IsNaN(normQ) {
		return false
	}
	ortho := math.Abs(vec.Dot(p.p, p.q)) / (normP * normQ)
	return ortho <= 1e-6 && !math.IsNaN(ortho)
}

func (p *pcgRun) rollback() {
	store := p.store
	p.stuck++
	if p.stuck > stuckLimit {
		store = p.initStore
		p.stuck = 0
		p.highWater = 0
		p.last = 0
	}
	store.Restore(p.view)
	p.it = p.view.Iteration
	p.rho = p.view.Scalars["rho"]
	p.stats.Rollbacks++
	p.stats.TimeRecovery += p.costs.Trec
	if p.cfg.Scheme != OnlineDetection {
		p.rGuard.Refresh(p.r)
		p.pGuard.Refresh(p.p)
		p.xGuard.Refresh(p.x)
		p.protA.Reencode()
		p.protM.Reencode()
	}
}
