package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func pcgFixture(t *testing.T, n int, seed int64) (*sparse.CSR, *sparse.CSR, []float64, []float64) {
	t.Helper()
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: n, Density: 0.01, Seed: seed})
	m, err := precond.Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	b, xTrue := rhsFor(a, seed)
	return a, m, b, xTrue
}

func TestPCGFaultFreeMatchesPlain(t *testing.T) {
	a, m, b, xTrue := pcgFixture(t, 900, 1)
	ref, err := solver.PCG(a, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		t.Run(scheme.String(), func(t *testing.T) {
			x, st, err := SolvePCG(a, b, PCGConfig{Scheme: scheme, M: m, Tol: 1e-10})
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged || st.Detections != 0 {
				t.Fatalf("fault-free PCG: %+v", st)
			}
			if d := vec.MaxAbsDiff(x, xTrue); d > 1e-5*(1+vec.NormInf(xTrue)) {
				t.Fatalf("solution error %v", d)
			}
			if diff := st.UsefulIterations - ref.Iterations; diff < -1 || diff > 1 {
				t.Fatalf("iterations %d vs plain PCG %d", st.UsefulIterations, ref.Iterations)
			}
		})
	}
}

func TestPCGConvergesUnderFaults(t *testing.T) {
	for _, scheme := range Schemes {
		t.Run(scheme.String(), func(t *testing.T) {
			a, m, b, xTrue := pcgFixture(t, 900, 2)
			inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 31})
			x, st, err := SolvePCG(a, b, PCGConfig{Scheme: scheme, M: m, Tol: 1e-9, Injector: inj})
			if err != nil {
				t.Fatalf("%v (stats %+v)", err, st)
			}
			if st.FaultsInjected == 0 {
				t.Fatal("vacuous: no faults injected")
			}
			if st.FinalResidual > 1e-6 {
				t.Fatalf("residual %v", st.FinalResidual)
			}
			if d := vec.MaxAbsDiff(x, xTrue); d > 1e-3*(1+vec.NormInf(xTrue)) {
				t.Fatalf("solution error %v", d)
			}
		})
	}
}

func TestPCGPreconditionerFaultsAreHandled(t *testing.T) {
	// Restrict the injector to M's arrays only: the second protected
	// product must absorb all of them (correction or rollback).
	a, m, b, _ := pcgFixture(t, 900, 3)
	inj := fault.New(fault.Config{
		Alpha: 1.0 / 8, Seed: 41,
		Disabled: []fault.Target{
			fault.TargetVal, fault.TargetColid, fault.TargetRowidx,
			fault.TargetVecR, fault.TargetVecP, fault.TargetVecQ,
			fault.TargetVecX, fault.TargetVecZ,
		},
	})
	_, st, err := SolvePCG(a, b, PCGConfig{Scheme: ABFTCorrection, M: m, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, st)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("vacuous: no preconditioner faults")
	}
	if st.Detections == 0 {
		t.Fatal("no preconditioner fault was ever detected — protection inactive?")
	}
	if st.FinalResidual > 1e-6 {
		t.Fatalf("residual %v", st.FinalResidual)
	}
}

func TestPCGWithNeumannPreconditioner(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 900, Density: 0.01, Seed: 5})
	m, err := precond.Neumann(a, precond.NeumannOptions{Terms: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, xTrue := rhsFor(a, 5)
	inj := fault.New(fault.Config{Alpha: 0.02, Seed: 51})
	x, st, err := SolvePCG(a, b, PCGConfig{Scheme: ABFTCorrection, M: m, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, st)
	}
	if d := vec.MaxAbsDiff(x, xTrue); d > 1e-3*(1+vec.NormInf(xTrue)) {
		t.Fatalf("solution error %v", d)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
}

func TestPCGValidation(t *testing.T) {
	a, m, b, _ := pcgFixture(t, 400, 7)
	if _, _, err := SolvePCG(a, b[:10], PCGConfig{Scheme: ABFTCorrection, M: m}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, _, err := SolvePCG(a, b, PCGConfig{Scheme: ABFTCorrection}); err == nil {
		t.Fatal("expected missing-preconditioner error")
	}
	bad := sparse.Identity(3)
	if _, _, err := SolvePCG(a, b, PCGConfig{Scheme: ABFTCorrection, M: bad}); err == nil {
		t.Fatal("expected preconditioner shape error")
	}
}

func TestPCGDeterministic(t *testing.T) {
	a, m, b, _ := pcgFixture(t, 600, 8)
	run := func() Stats {
		inj := fault.New(fault.Config{Alpha: 0.05, Seed: 61})
		_, st, err := SolvePCG(a, b, PCGConfig{Scheme: ABFTCorrection, M: m, Tol: 1e-8, Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	s1, s2 := run(), run()
	if s1.SimTime != s2.SimTime || s1.Corrections != s2.Corrections {
		t.Fatalf("non-deterministic PCG: %+v vs %+v", s1, s2)
	}
}
