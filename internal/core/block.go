package core

import (
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// BlockConfig parameterises a blocked multi-RHS resilient solve. The axes
// mirror Config; fault injection is deliberately absent — the blocked tier
// shares one live matrix and one checksum encoding across the right-hand
// sides, which is only sound when nothing mutates them mid-block, so
// SolveBlock is a fault-free tier (the service's batch path, where ABFT
// verification still guards against real silent errors, is exactly that).
type BlockConfig struct {
	// Scheme selects the resilience method: ABFTDetection or ABFTCorrection.
	// OnlineDetection has no protected product to amortise and is not
	// supported here (callers fall back to sequential solves).
	Scheme Scheme
	// S and D override the model-optimal checkpoint and verification
	// intervals when > 0 (D is forced to 1 for the ABFT schemes, as in the
	// sequential driver).
	S, D int
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64
	// MaxIters caps the useful iterations per right-hand side (default 20·n).
	MaxIters int
	// Costs calibrates the time accounting; zero value means defaults.
	Costs CostParams
	// Pool, when non-nil, executes the confirmation and final-residual
	// products on the worker pool; the arithmetic is identical either way.
	Pool *pool.Pool
	// OnIteration, when non-nil, is called after every useful iteration of
	// every right-hand side with the RHS index, the iteration count and the
	// recurrence scalar ρ — the same values the sequential driver's
	// OnIteration would deliver for that system solved alone.
	OnIteration func(rhs, it int, rho float64)
	// Ws supplies the reusable block arena; a warm workspace makes repeated
	// block solves allocation-free. Must not be shared by concurrent solves.
	Ws *BlockWorkspace
}

// BlockWorkspace is the reusable arena of the blocked driver: one shared
// working matrix copy and one shared checksum encoding (the amortisation
// win — the encoding is built once per block instead of once per solve),
// plus a per-lane core.Workspace carrying each right-hand side's private
// vectors, guards and checkpoint stores. Storage grows with the widest
// block seen and is recycled afterwards.
type BlockWorkspace struct {
	live  *sparse.CSR
	prot  *abft.Protected
	lanes []*blockLane
	// gathered active-column headers for the shared product, and the
	// returned solution headers — reused across rounds and solves.
	ps, qs [][]float64
	idx    []int
	xs     [][]float64
	onIter func(rhs, it int, rho float64)
}

// NewBlockWorkspace returns an empty block workspace; storage is created on
// first use and recycled afterwards.
func NewBlockWorkspace() *BlockWorkspace { return &BlockWorkspace{} }

// Prewarm builds the shared working matrix copy and checksum encoding ahead
// of the first block solve, so a cache handing out warm workspaces pays the
// construction cost at fill time instead of on the request path. Optional;
// never changes results.
func (bw *BlockWorkspace) Prewarm(a *sparse.CSR, scheme Scheme) {
	live := bw.liveCopy(a)
	if scheme != OnlineDetection {
		bw.protected(live, abftMode(scheme))
	}
}

func (bw *BlockWorkspace) begin() *BlockWorkspace {
	if bw == nil {
		return &BlockWorkspace{}
	}
	return bw
}

// liveCopy mirrors Workspace.liveCopy for the shared slot.
func (bw *BlockWorkspace) liveCopy(a *sparse.CSR) *sparse.CSR {
	if bw.live != nil && bw.live.Rows == a.Rows && bw.live.Cols == a.Cols && len(bw.live.Val) == len(a.Val) {
		bw.live.CopyFrom(a)
		return bw.live
	}
	bw.live = a.Clone()
	return bw.live
}

func (bw *BlockWorkspace) protected(a *sparse.CSR, mode abft.Mode) *abft.Protected {
	if bw.prot == nil {
		bw.prot = abft.NewProtected(a, mode)
	} else {
		bw.prot.Renew(a, mode)
	}
	return bw.prot
}

// lane returns the j-th per-RHS lane, growing the pool as needed. The
// OnIteration closure is built once per lane and reads the workspace's
// current callback, so warm solves install a new callback without
// allocating.
func (bw *BlockWorkspace) lane(j int) *blockLane {
	for len(bw.lanes) <= j {
		bl := &blockLane{ws: NewWorkspace(), idx: len(bw.lanes), bw: bw}
		bl.cb = func(it int, rho float64) {
			if f := bl.bw.onIter; f != nil {
				f(bl.idx, it, rho)
			}
		}
		bw.lanes = append(bw.lanes, bl)
	}
	return bw.lanes[j]
}

// blockLane is the per-RHS solve state of one block: a private workspace
// (vectors, guards, checkpoint stores) plus the lockstep bookkeeping that
// the sequential driver keeps in local variables of its loop.
type blockLane struct {
	ws  *Workspace
	idx int
	bw  *BlockWorkspace
	cb  func(it int, rho float64)

	// outR/outX hold the pre-product guard outcomes across the shared
	// product (the sequential driver computes and consumes them inside one
	// iterate call).
	outR, outX abft.Outcome
	pending    bool
	done       bool
	err        error

	finalRetries int
	maxTotal     int64
}

// SolveBlock runs the resilient CG of the configured ABFT scheme on the k
// systems A·x_j = bs[j] simultaneously: every iteration gathers the active
// direction vectors and computes all products q_j = A·p_j in ONE protected
// traversal of the CSR arrays (abft.Protected.MulVecBlock), paying the
// Rowidx checksum accumulation once per block instead of once per system.
// Convergence, verification and detection state stay fully independent per
// right-hand side, and each lane's entire trajectory — iterates, residual
// history, statistics — is bitwise identical to solving that system alone
// with Solve, because the blocked product computes each column with exactly
// the sequential kernel's arithmetic and the shared Rowidx sums are bitwise
// equal to the per-solve sums (they depend only on Rowidx).
//
// Per-lane statistics and errors land in sts[j] and errs[j] (both must have
// length ≥ len(bs)); the returned solutions alias workspace memory. The
// caller's matrix is never modified.
func SolveBlock(a *sparse.CSR, bs [][]float64, cfg BlockConfig, sts []Stats, errs []error) ([][]float64, error) {
	n := a.Rows
	k := len(bs)
	if k == 0 {
		return nil, nil
	}
	if a.Cols != n {
		return nil, fmt.Errorf("core: SolveBlock needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	for j, b := range bs {
		if len(b) != n {
			return nil, fmt.Errorf("core: SolveBlock dimension mismatch: A %dx%d, len(bs[%d])=%d", a.Rows, a.Cols, j, len(b))
		}
	}
	if len(sts) < k || len(errs) < k {
		return nil, fmt.Errorf("core: SolveBlock needs len(sts) and len(errs) ≥ %d", k)
	}
	if cfg.Scheme != ABFTDetection && cfg.Scheme != ABFTCorrection {
		return nil, fmt.Errorf("core: SolveBlock supports the ABFT schemes only, got %v", cfg.Scheme)
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-8
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 20 * n
	}
	if cfg.Costs == (CostParams{}) {
		cfg.Costs = DefaultCostParams()
	}

	bw := cfg.Ws.begin()
	bw.onIter = cfg.OnIteration
	live := bw.liveCopy(a)
	costs := NewCosts(live, cfg.Scheme, cfg.Costs)
	mode := abftMode(cfg.Scheme)
	prot := bw.protected(live, mode)

	d, s := cfg.D, cfg.S
	if d == 0 || s == 0 {
		od, os := OptimalIntervals(a, cfg.Scheme, 0, cfg.Costs)
		if d == 0 {
			d = od
		}
		if s == 0 {
			s = os
		}
	}
	d = 1 // ABFT schemes verify every iteration by construction

	// Per-lane setup, mirroring Solve's exactly: same take order, same
	// initial checkpointing, same cost charges.
	setup := SetupCost(live, cfg.Scheme, cfg.Costs)
	for j := 0; j < k; j++ {
		lane := bw.lane(j)
		ws := lane.ws.begin()
		run := &ws.rs
		exec := run.exec // preserve the TMR executor's resident replica scratch
		laneCfg := Config{
			Scheme: cfg.Scheme, S: s, D: d, Tol: cfg.Tol, MaxIters: cfg.MaxIters,
			Costs: cfg.Costs, Pool: cfg.Pool, OnIteration: lane.cb, Ws: ws,
		}
		*run = runState{
			cfg:   laneCfg,
			costs: costs,
			live:  live,
			b:     bs[j],
			x:     ws.takeZero(n),
			r:     ws.takeCopy(bs[j]), // x0 = 0 ⇒ r0 = b
			p:     ws.takeCopy(bs[j]),
			q:     ws.take(n),
			rr:    ws.take(n),
			d:     d,
			s:     s,
		}
		run.stats = Stats{Scheme: cfg.Scheme, D: d, S: s}
		ws.state = fault.State{A: live, R: run.r, P: run.p, Q: run.q, X: run.x}
		run.state = &ws.state
		run.exec = exec
		run.exec.Pool = cfg.Pool
		run.prot = prot
		run.rGuard = ws.guard(0, run.r, mode)
		run.pGuard = ws.guard(1, run.p, mode)
		run.xGuard = ws.guard(2, run.x, mode)
		run.stats.SimTime += setup

		run.store, run.initStore = ws.stores()
		run.view = ws.liveView(live, nil)
		run.view.Vectors["x"] = run.x
		run.view.Vectors["r"] = run.r
		run.view.Vectors["p"] = run.p
		run.normB = vec.Norm2(bs[j])
		if run.normB == 0 {
			run.normB = 1
		}
		run.rho = vec.Norm2Sq(run.r)
		run.saveCheckpoint(false) // initial state; re-reading inputs is free
		run.initStore.Save(run.view)

		lane.pending, lane.done, lane.err = false, false, nil
		lane.outR, lane.outX = abft.Outcome{}, abft.Outcome{}
		lane.finalRetries = 0
		lane.maxTotal = int64(cfg.MaxIters)*10 + 1000
	}

	// Lockstep rounds: each active lane advances to its product point, the
	// gathered products run as one protected block traversal, and each lane
	// completes its iteration on the shared Rowidx sums.
	for {
		bw.ps, bw.qs, bw.idx = bw.ps[:0], bw.qs[:0], bw.idx[:0]
		for j := 0; j < k; j++ {
			lane := bw.lanes[j]
			if lane.done {
				continue
			}
			lane.advance()
			if lane.pending {
				rs := &lane.ws.rs
				bw.ps = append(bw.ps, rs.p)
				bw.qs = append(bw.qs, rs.q)
				bw.idx = append(bw.idx, j)
			}
		}
		if len(bw.idx) == 0 {
			break
		}
		sr := prot.MulVecBlock(bw.qs, bw.ps)
		for _, j := range bw.idx {
			bw.lanes[j].finish(sr)
		}
	}

	// Finalisation mirrors Solve: compose SimTime and recompute the true
	// residual on the caller's pristine matrix.
	bw.xs = bw.xs[:0]
	for j := 0; j < k; j++ {
		lane := bw.lanes[j]
		rs := &lane.ws.rs
		st := &rs.stats
		st.SimTime = st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery + st.SimTime
		rr := rs.rr
		a.MulVecParallel(cfg.Pool, rr, rs.x)
		vec.Sub(rr, rs.b, rr)
		st.FinalResidual = vec.Norm2(rr) / rs.normB
		sts[j] = *st
		errs[j] = lane.err
		bw.xs = append(bw.xs, rs.x)
	}
	return bw.xs, nil
}

// advance replays the head of the sequential driver's loop for one lane —
// convergence test with confirmed true residual, iteration budget, the
// pre-product cost charges and guard checks — and stops either because the
// lane finished (done) or because its product q ← A·p is pending in the
// next shared block traversal.
func (bl *blockLane) advance() {
	rs := &bl.ws.rs
	cfg := rs.cfg
	st := &rs.stats
	for {
		if math.Sqrt(rs.rho) <= cfg.Tol*rs.normB {
			st.TimeVerif += rs.costs.Titer // one confirmation SpMxV
			rs.live.MulVecRobustParallel(cfg.Pool, rs.q, rs.x)
			vec.Sub(rs.q, rs.b, rs.q)
			confirmTol := math.Max(10*cfg.Tol, 1e-6) * rs.normB
			if tr := vec.Norm2(rs.q); tr <= confirmTol && !math.IsNaN(tr) {
				st.Converged = true
				st.UsefulIterations = rs.it
				bl.done = true
				return
			}
			bl.finalRetries++
			if bl.finalRetries >= maxFinalCheckRetries {
				st.UsefulIterations = rs.it
				bl.err = fmt.Errorf("core: %v: convergence confirmation kept failing (latent corruption)", cfg.Scheme)
				bl.done = true
				return
			}
			rs.rollback()
			continue
		}
		if rs.it >= cfg.MaxIters || st.TotalIterations >= bl.maxTotal {
			st.UsefulIterations = rs.it
			bl.err = fmt.Errorf("core: %v: not converged after %d useful (%d total) iterations",
				cfg.Scheme, rs.it, st.TotalIterations)
			bl.done = true
			return
		}

		st.TotalIterations++
		// Pre-product half of the ABFT iteration (no fault injection in
		// block mode): cost charges and the memory-fault checks on the
		// vectors written last iteration.
		st.TimeIter += rs.costs.Titer
		st.TimeVerif += rs.costs.Tverif
		bl.outR = rs.rGuard.Check(rs.r)
		bl.outX = rs.xGuard.Check(rs.x)
		bl.pending = true
		return
	}
}

// finish completes one lane's iteration after the shared block product:
// verification against the shared Rowidx sums, the CG recurrences, and the
// post-iteration bookkeeping — exactly the sequence the sequential driver
// runs, so outcomes and checkpoint cadence match bitwise.
func (bl *blockLane) finish(sr abft.RowSums) {
	rs := &bl.ws.rs
	cfg := rs.cfg
	bl.pending = false
	if !rs.settleABFT(bl.outR, bl.outX, sr) || !rs.recurrences(true) {
		rs.rollback()
		return
	}
	rs.it++
	if cfg.OnIteration != nil {
		cfg.OnIteration(rs.it, rs.rho)
	}
	if rs.it > rs.highWater {
		rs.highWater = rs.it
		rs.stuck = 0
	}
	if rs.it%rs.d == 0 { // chunk boundary (d = 1 for the ABFT schemes)
		if (rs.it/rs.d)%rs.s == 0 && rs.it > rs.last {
			rs.saveCheckpoint(true)
		}
	}
}
