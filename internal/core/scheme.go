package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// Scheme identifies one of the three resilient methods compared in the
// paper.
type Scheme int

const (
	// OnlineDetection is Chen's verification scheme extended with matrix
	// checkpointing (paper Section 4.2.1).
	OnlineDetection Scheme = iota
	// ABFTDetection verifies every iteration with single checksums and
	// rolls back on detection (Section 4.2.2).
	ABFTDetection
	// ABFTCorrection verifies every iteration with double checksums and
	// corrects single errors forward (Section 4.2.3).
	ABFTCorrection
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case OnlineDetection:
		return "Online-Detection"
	case ABFTDetection:
		return "ABFT-Detection"
	case ABFTCorrection:
		return "ABFT-Correction"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists all three, in the paper's presentation order.
var Schemes = []Scheme{OnlineDetection, ABFTDetection, ABFTCorrection}

// Config parameterises a resilient solve.
type Config struct {
	// Scheme selects the resilience method.
	Scheme Scheme
	// S is the checkpoint interval in chunks (the paper's s). 0 means
	// model-optimal via Eq. (6).
	S int
	// D is the verification interval in iterations (the paper's d, only
	// meaningful for OnlineDetection; ABFT schemes verify every iteration).
	// 0 means model-optimal.
	D int
	// Tol is the relative residual tolerance ‖r‖ ≤ Tol·‖b‖ (default 1e-8).
	Tol float64
	// MaxIters caps the useful iterations (default 20·n).
	MaxIters int
	// Injector, when non-nil, strikes the live state with bit flips each
	// iteration. Nil runs fault-free.
	Injector *fault.Injector
	// Costs calibrates the time accounting; zero value means defaults.
	Costs CostParams
	// Trace, when non-nil, receives a line per notable event (detections,
	// corrections, rollbacks, checkpoints) for debugging and audits.
	Trace func(format string, args ...any)
	// Pool, when non-nil, executes the solver's hot kernels — the SpMxV row
	// ranges and the blocked vector reductions — across the worker pool.
	// Kernels use deterministic blocked summation, so a solve with any pool
	// (including nil) produces a bitwise-identical iterate trajectory; the
	// pool changes wall-clock time only, never the arithmetic.
	Pool *pool.Pool
	// OnIteration, when non-nil, is called after every useful iteration with
	// the iteration count and the current recurrence quantity ρ (‖r‖² for
	// CG, rᵀz for PCG). Tests use it to compare residual histories across
	// execution modes.
	OnIteration func(it int, rho float64)
	// OnDetection, when non-nil, is called after every fault-detection
	// episode with the detection/correction deltas since the previous
	// episode. Streaming solves surface these as live events; nil costs
	// nothing on the hot path.
	OnDetection func(DetectionEvent)
	// Ws, when non-nil, supplies the working matrix copy, iteration vectors,
	// checksum encodings and checkpoint stores from a reusable arena: a warm
	// workspace makes repeated solves allocation-free. The arithmetic is
	// identical with or without a workspace. Must not be shared by
	// concurrent solves, and the returned solution vector aliases workspace
	// memory — copy it out before the next solve on the same workspace
	// overwrites it.
	Ws *Workspace
}

func (c Config) withDefaults(n int) Config {
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 20 * n
	}
	if c.Costs == (CostParams{}) {
		c.Costs = DefaultCostParams()
	}
	return c
}

// DetectionEvent is one fault-detection episode, reported through
// Config.OnDetection: the counter deltas since the previous episode and
// whether the solver recovered by rolling back to a checkpoint (false
// means it corrected forward).
type DetectionEvent struct {
	// Iteration is the useful-iteration count when the episode surfaced.
	Iteration int
	// Detections and Corrections are deltas since the last event.
	Detections  int64
	Corrections int64
	// RolledBack reports checkpoint recovery (vs. forward correction).
	RolledBack bool
}

// detectionEmitter adapts an OnDetection hook into a per-episode closure
// over the live Stats counters. A nil hook returns a nil func — callers
// guard on that, so the fault-free hot path allocates nothing.
func detectionEmitter(hook func(DetectionEvent), st *Stats) func(it int, rolledBack bool) {
	if hook == nil {
		return nil
	}
	var lastD, lastC int64
	return func(it int, rolledBack bool) {
		d, c := st.Detections-lastD, st.Corrections-lastC
		if d == 0 && c == 0 {
			return
		}
		lastD, lastC = st.Detections, st.Corrections
		hook(DetectionEvent{Iteration: it, Detections: d, Corrections: c, RolledBack: rolledBack})
	}
}

// Stats reports everything the experiments need about one resilient solve.
type Stats struct {
	Scheme Scheme
	// D and S are the intervals actually used (after model optimisation).
	D, S int
	// UsefulIterations is the number of iterations contributing to the
	// returned solution; TotalIterations includes re-executed work.
	UsefulIterations int
	TotalIterations  int64
	// Detections counts iterations where some test failed; Corrections the
	// subset repaired forward; Rollbacks the subset that recovered from the
	// checkpoint.
	Detections  int64
	Corrections int64
	Rollbacks   int64
	Checkpoints int64
	// SimTime is the modeled execution time in seconds, with its breakdown.
	SimTime      float64
	TimeIter     float64
	TimeVerif    float64
	TimeCkpt     float64
	TimeRecovery float64
	Converged    bool
	// FinalResidual is the true relative residual ‖b − Ax‖/‖b‖ of the
	// returned solution, recomputed on the pristine matrix.
	FinalResidual float64
	// FaultsInjected is the number of bit flips applied by the injector.
	FaultsInjected int64
}

// OnlineMaxD caps the verification interval of Online-Detection. The
// periodic tests compare the maintained recurrence residual against a
// recomputation: the comparison threshold must cover the drift accumulated
// since the last verification, and the window of state that can silently
// carry sub-threshold corruption into a checkpoint grows with d. Chen-style
// implementations therefore verify over short windows regardless of how far
// pure amortisation arguments would stretch d; the experiments in the paper
// behave accordingly (Online-Detection's verification overhead does not
// vanish at low fault rates — the paper attributes its low-λ slowness to
// exactly this overhead).
const OnlineMaxD = 4

// OptimalIntervals returns the model-optimal (d, s) for the scheme on this
// matrix at fault rate alpha (expected faults per iteration), using the
// paper's Eq. (6). For ABFT schemes d is always 1; for Online-Detection d
// is additionally capped at OnlineMaxD (see its comment).
func OptimalIntervals(a *sparse.CSR, scheme Scheme, alpha float64, cp CostParams) (d, s int) {
	costs := NewCosts(a, scheme, cp)
	// Work in units of Titer, like the paper (Titer normalised to 1, λ = α).
	switch scheme {
	case OnlineDetection:
		op := model.OnlineParams{
			Titer:  1,
			Tverif: costs.Tverif / costs.Titer,
			Tcp:    costs.Tcp / costs.Titer,
			Trec:   costs.Trec / costs.Titer,
			Lambda: alpha,
		}
		d, s, _ = op.Optimal(OnlineMaxD, 4096)
		return d, s
	default:
		p := model.Params{
			T:          1,
			Tverif:     costs.Tverif / costs.Titer,
			Tcp:        costs.Tcp / costs.Titer,
			Trec:       costs.Trec / costs.Titer,
			Lambda:     alpha,
			Correcting: scheme == ABFTCorrection,
		}
		s, _ = p.OptimalS(16384)
		return 1, s
	}
}
