package core

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// poissonSystem manufactures b = A·xTrue on a 2D Poisson grid big enough to
// cross the sparse.ParallelMinRows cutoff, so the pooled code paths really
// execute.
func poissonSystem(side int, seed int64) (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(side, side)
	rng := rand.New(rand.NewSource(seed))
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return a, b
}

// history records the (iteration, rho) trajectory of a solve.
type history struct {
	its  []int
	rhos []float64
}

func (h *history) hook() func(int, float64) {
	return func(it int, rho float64) {
		h.its = append(h.its, it)
		h.rhos = append(h.rhos, rho)
	}
}

func (h *history) equal(o *history) bool {
	if len(h.its) != len(o.its) {
		return false
	}
	for i := range h.its {
		if h.its[i] != o.its[i] || h.rhos[i] != o.rhos[i] {
			return false
		}
	}
	return true
}

// TestParallelSolveBitwiseIdentical is the acceptance test for the engine
// rewiring: for every scheme, a faulty solve run sequentially and the same
// solve run across worker pools of several sizes must produce bitwise
// identical residual histories, solutions and statistics. The kernels use
// deterministic blocked arithmetic, so the pool may only change wall-clock
// time — never a single bit of the trajectory.
func TestParallelSolveBitwiseIdentical(t *testing.T) {
	a, b := poissonSystem(52, 11) // n = 2704 > sparse.ParallelMinRows

	for _, scheme := range Schemes {
		var seqHist history
		xSeq, stSeq, errSeq := Solve(a, b, Config{
			Scheme:      scheme,
			Tol:         1e-8,
			Injector:    fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 5}),
			OnIteration: seqHist.hook(),
		})
		if errSeq != nil {
			t.Fatalf("%v: sequential solve failed: %v", scheme, errSeq)
		}
		for _, workers := range []int{2, 4} {
			var parHist history
			xPar, stPar, errPar := Solve(a, b, Config{
				Scheme:      scheme,
				Tol:         1e-8,
				Injector:    fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 5}),
				Pool:        pool.New(workers),
				OnIteration: parHist.hook(),
			})
			if errPar != nil {
				t.Fatalf("%v workers=%d: parallel solve failed: %v", scheme, workers, errPar)
			}
			if !seqHist.equal(&parHist) {
				t.Fatalf("%v workers=%d: residual history diverged (%d vs %d iterations)",
					scheme, workers, len(seqHist.its), len(parHist.its))
			}
			if !vec.Equal(xSeq, xPar) {
				t.Fatalf("%v workers=%d: solutions not bitwise identical", scheme, workers)
			}
			if stSeq != stPar {
				t.Fatalf("%v workers=%d: stats differ:\nseq %+v\npar %+v", scheme, workers, stSeq, stPar)
			}
		}
	}
}

// TestParallelPCGBitwiseIdentical extends the identity to the
// preconditioned driver, where the pool also carries the M-product.
func TestParallelPCGBitwiseIdentical(t *testing.T) {
	a, b := poissonSystem(48, 13)
	m, err := precond.Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}

	var seqHist history
	xSeq, stSeq, errSeq := SolvePCG(a, b, PCGConfig{
		Scheme:      ABFTCorrection,
		M:           m,
		Tol:         1e-9,
		Injector:    fault.New(fault.Config{Alpha: 1.0 / 32, Seed: 17}),
		OnIteration: seqHist.hook(),
	})
	if errSeq != nil {
		t.Fatalf("sequential PCG failed: %v", errSeq)
	}
	var parHist history
	xPar, stPar, errPar := SolvePCG(a, b, PCGConfig{
		Scheme:      ABFTCorrection,
		M:           m,
		Tol:         1e-9,
		Injector:    fault.New(fault.Config{Alpha: 1.0 / 32, Seed: 17}),
		Pool:        pool.New(3),
		OnIteration: parHist.hook(),
	})
	if errPar != nil {
		t.Fatalf("parallel PCG failed: %v", errPar)
	}
	if !seqHist.equal(&parHist) {
		t.Fatal("PCG residual history diverged between sequential and pooled execution")
	}
	if !vec.Equal(xSeq, xPar) || stSeq != stPar {
		t.Fatal("PCG solution or stats diverged between sequential and pooled execution")
	}
}

// TestParallelBiCGstabBitwiseIdentical covers the third driver: both
// protected products and the TMR kernels ride the pool.
func TestParallelBiCGstabBitwiseIdentical(t *testing.T) {
	a, b := poissonSystem(48, 19)

	xSeq, stSeq, errSeq := SolveBiCGstab(a, b, BiCGstabConfig{
		Scheme:   ABFTCorrection,
		Tol:      1e-8,
		Injector: fault.New(fault.Config{Alpha: 1.0 / 32, Seed: 23}),
	})
	if errSeq != nil {
		t.Fatalf("sequential BiCGstab failed: %v", errSeq)
	}
	xPar, stPar, errPar := SolveBiCGstab(a, b, BiCGstabConfig{
		Scheme:   ABFTCorrection,
		Tol:      1e-8,
		Injector: fault.New(fault.Config{Alpha: 1.0 / 32, Seed: 23}),
		Pool:     pool.New(4),
	})
	if errPar != nil {
		t.Fatalf("parallel BiCGstab failed: %v", errPar)
	}
	if !vec.Equal(xSeq, xPar) || stSeq != stPar {
		t.Fatal("BiCGstab solution or stats diverged between sequential and pooled execution")
	}
}
