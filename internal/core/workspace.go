package core

import (
	"repro/internal/abft"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/sparse"
)

// Workspace is the reusable arena of the resilient drivers. A solve that
// carries one (Config.Ws / PCGConfig.Ws / BiCGstabConfig.Ws) draws its
// working matrix copy, iteration vectors, checksum encodings, vector
// guards and checkpoint stores from the workspace instead of the heap, so
// repeated solves — the inner loop of every fault campaign — allocate
// nothing once the workspace is warm. Reuse across different solvers,
// schemes and matrix sizes is supported (storage grows as needed); sharing
// one workspace between concurrent solves is not.
type Workspace struct {
	live, liveM *sparse.CSR
	bufs        [][]float64
	next        int
	prot, protM *abft.Protected
	guards      [4]*abft.VectorGuard
	store       *checkpoint.Store
	initStore   *checkpoint.Store
	state       fault.State
	view        checkpoint.State
	rs          runState
	pr          pcgRun
	br          bicgRun
}

// NewWorkspace returns an empty workspace; storage is created on first use
// and recycled afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// Prewarm builds the workspace's working matrix copy and — for the ABFT
// schemes — its Rowidx/column checksum encodings for a ahead of the first
// solve, so a cache that hands out warm workspaces pays the construction
// cost at cache-fill time instead of on the request path. A later solve
// carrying this workspace against a same-shaped matrix reuses the storage
// built here. Prewarming is optional and never changes results.
func (w *Workspace) Prewarm(a *sparse.CSR, scheme Scheme) {
	live := w.liveCopy(a)
	if scheme != OnlineDetection {
		w.protected(live, abftMode(scheme))
	}
}

// begin resets the take cursor for a new solve; a nil receiver yields a
// fresh single-use workspace so drivers can call it unconditionally.
func (w *Workspace) begin() *Workspace {
	if w == nil {
		return &Workspace{}
	}
	w.next = 0
	return w
}

// take returns the next length-n scratch buffer, NOT zeroed: the take
// order inside each driver is fixed, and every use site initialises its
// buffer explicitly.
func (w *Workspace) take(n int) []float64 {
	if w.next < len(w.bufs) {
		b := w.bufs[w.next]
		if cap(b) >= n {
			w.bufs[w.next] = b[:n]
			w.next++
			return b[:n]
		}
	}
	b := make([]float64, n)
	if w.next < len(w.bufs) {
		w.bufs[w.next] = b
	} else {
		w.bufs = append(w.bufs, b)
	}
	w.next++
	return b
}

// takeZero is take with the buffer cleared.
func (w *Workspace) takeZero(n int) []float64 {
	b := w.take(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// takeCopy is take initialised to a copy of src.
func (w *Workspace) takeCopy(src []float64) []float64 {
	b := w.take(len(src))
	copy(b, src)
	return b
}

// liveCopy returns the workspace's working copy of a, refreshed from a
// (in place when the shapes match, so the caller's matrix is never
// aliased and a warm workspace never reallocates it).
func (w *Workspace) liveCopy(a *sparse.CSR) *sparse.CSR {
	if w.live != nil && w.live.Rows == a.Rows && w.live.Cols == a.Cols && len(w.live.Val) == len(a.Val) {
		w.live.CopyFrom(a)
		return w.live
	}
	w.live = a.Clone()
	return w.live
}

// liveMCopy is liveCopy for the preconditioner slot.
func (w *Workspace) liveMCopy(m *sparse.CSR) *sparse.CSR {
	if w.liveM != nil && w.liveM.Rows == m.Rows && w.liveM.Cols == m.Cols && len(w.liveM.Val) == len(m.Val) {
		w.liveM.CopyFrom(m)
		return w.liveM
	}
	w.liveM = m.Clone()
	return w.liveM
}

// protected returns the workspace's ABFT wrapper re-armed over a.
func (w *Workspace) protected(a *sparse.CSR, mode abft.Mode) *abft.Protected {
	if w.prot == nil {
		w.prot = abft.NewProtected(a, mode)
	} else {
		w.prot.Renew(a, mode)
	}
	return w.prot
}

// protectedM is protected for the preconditioner slot.
func (w *Workspace) protectedM(m *sparse.CSR, mode abft.Mode) *abft.Protected {
	if w.protM == nil {
		w.protM = abft.NewProtected(m, mode)
	} else {
		w.protM.Renew(m, mode)
	}
	return w.protM
}

// guard returns the i-th reusable vector guard re-armed over v.
func (w *Workspace) guard(i int, v []float64, mode abft.Mode) *abft.VectorGuard {
	if w.guards[i] == nil {
		w.guards[i] = abft.NewGuard(v, mode)
	} else {
		w.guards[i].Reset(v, mode)
	}
	return w.guards[i]
}

// stores returns the rolling checkpoint store and the initial-state store.
// Stale snapshots from a previous solve are simply overwritten by the
// driver's first Save (in place when shapes match).
func (w *Workspace) stores() (store, initStore *checkpoint.Store) {
	if w.store == nil {
		w.store = checkpoint.NewStore()
		w.initStore = checkpoint.NewStore()
	}
	return w.store, w.initStore
}

// liveView returns the reusable checkpoint view of the live state, with
// fresh matrix slots and cleared vector/scalar maps (a previous solve may
// have registered different names).
func (w *Workspace) liveView(a, m *sparse.CSR) *checkpoint.State {
	v := &w.view
	v.A, v.M = a, m
	v.Iteration = 0
	if v.Vectors == nil {
		v.Vectors = make(map[string][]float64, 8)
	} else {
		clear(v.Vectors)
	}
	if v.Scalars == nil {
		v.Scalars = make(map[string]float64, 4)
	} else {
		clear(v.Scalars)
	}
	return v
}
