package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vec"
)

func testMatrix(n int, seed int64) (*sparse.CSR, []float64, []float64) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: n, Density: 0.05, DiagShift: 0.3, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 99))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	return a, b, xTrue
}

func TestFaultFreeMatchesPlainCG(t *testing.T) {
	a, b, xTrue := testMatrix(200, 1)
	ref, err := solver.CG(a, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		t.Run(scheme.String(), func(t *testing.T) {
			x, st, err := Solve(a, b, Config{Scheme: scheme, Tol: 1e-10})
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged {
				t.Fatal("not converged")
			}
			if st.Rollbacks != 0 || st.Detections != 0 {
				t.Fatalf("fault-free run had detections: %+v", st)
			}
			if d := vec.MaxAbsDiff(x, xTrue); d > 1e-5*(1+vec.NormInf(xTrue)) {
				t.Fatalf("solution error %v", d)
			}
			// Same iteration count as plain CG (the protection must not
			// change the numerics; TMR votes are bit-identical).
			if diff := st.UsefulIterations - ref.Iterations; diff < -1 || diff > 1 {
				t.Fatalf("iterations %d vs plain CG %d", st.UsefulIterations, ref.Iterations)
			}
		})
	}
}

func TestCallerMatrixNotModified(t *testing.T) {
	a, b, _ := testMatrix(100, 2)
	pristine := a.Clone()
	inj := fault.New(fault.Config{Alpha: 0.2, Seed: 7})
	_, _, _ = Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj})
	if !a.Equal(pristine) {
		t.Fatal("Solve corrupted the caller's matrix")
	}
}

func TestConvergesUnderFaults(t *testing.T) {
	// α = 1/16 is the paper's Table-1 fault rate: one expected fault every
	// 16 iterations.
	for _, scheme := range Schemes {
		t.Run(scheme.String(), func(t *testing.T) {
			a, b, xTrue := testMatrix(250, 3)
			inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: 11})
			x, st, err := Solve(a, b, Config{Scheme: scheme, Tol: 1e-9, Injector: inj})
			if err != nil {
				t.Fatalf("err: %v (stats %+v)", err, st)
			}
			if !st.Converged {
				t.Fatal("not converged under faults")
			}
			if st.FinalResidual > 1e-7 {
				t.Fatalf("final residual %v too large", st.FinalResidual)
			}
			if d := vec.MaxAbsDiff(x, xTrue); d > 1e-4*(1+vec.NormInf(xTrue)) {
				t.Fatalf("solution error %v", d)
			}
			if st.FaultsInjected == 0 {
				t.Fatal("no faults were injected — test is vacuous")
			}
		})
	}
}

func TestABFTCorrectionAvoidsRollbacks(t *testing.T) {
	// The headline claim: at moderate fault rates ABFT-Correction fixes
	// single errors forward, so it rolls back much less than
	// ABFT-Detection on the same fault sequence. Uses a PDE-like matrix so
	// the run is long enough to collect a meaningful number of faults.
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 1600, Density: 0.01, Seed: 4})
	b, _ := rhsFor(a, 4)
	run := func(scheme Scheme) Stats {
		inj := fault.New(fault.Config{Alpha: 1.0 / 8, Seed: 21})
		_, st, err := Solve(a, b, Config{Scheme: scheme, Tol: 1e-9, Injector: inj})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		return st
	}
	det := run(ABFTDetection)
	cor := run(ABFTCorrection)
	if cor.Corrections == 0 {
		t.Fatalf("ABFT-Correction made no forward corrections: %+v", cor)
	}
	if det.Rollbacks == 0 {
		t.Fatalf("ABFT-Detection never rolled back: %+v", det)
	}
	if cor.Rollbacks >= det.Rollbacks {
		t.Fatalf("correction rollbacks (%d) not below detection rollbacks (%d)",
			cor.Rollbacks, det.Rollbacks)
	}
	// And the avoided rollbacks translate into less re-executed work.
	if cor.TotalIterations >= det.TotalIterations {
		t.Fatalf("correction re-executed as much as detection: %d vs %d",
			cor.TotalIterations, det.TotalIterations)
	}
}

func rhsFor(a *sparse.CSR, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed + 99))
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return b, xTrue
}

func TestOnlineDetectionLosesWholeChunks(t *testing.T) {
	// Online-Detection detects at chunk ends, so re-executed work (total −
	// useful) should be non-trivial when faults strike.
	a, b, _ := testMatrix(250, 5)
	inj := fault.New(fault.Config{Alpha: 1.0 / 8, Seed: 31})
	_, st, err := Solve(a, b, Config{Scheme: OnlineDetection, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, st)
	}
	if st.Rollbacks == 0 {
		t.Fatal("no rollbacks at α = 1/8 — suspicious")
	}
	if st.TotalIterations <= int64(st.UsefulIterations) {
		t.Fatal("no re-executed work recorded")
	}
}

func TestModelOptimalIntervalsUsed(t *testing.T) {
	a, b, _ := testMatrix(150, 6)
	inj := fault.New(fault.Config{Alpha: 0.05, Seed: 41})
	_, st, err := Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if st.S < 1 || st.D != 1 {
		t.Fatalf("intervals d=%d s=%d", st.D, st.S)
	}
	wantD, wantS := OptimalIntervals(a, ABFTCorrection, 0.05, DefaultCostParams())
	if st.S != wantS || st.D != wantD {
		t.Fatalf("used (d=%d,s=%d), model says (d=%d,s=%d)", st.D, st.S, wantD, wantS)
	}
}

func TestExplicitIntervalsRespected(t *testing.T) {
	a, b, _ := testMatrix(100, 7)
	_, st, err := Solve(a, b, Config{Scheme: OnlineDetection, D: 5, S: 3, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if st.D != 5 || st.S != 3 {
		t.Fatalf("intervals not respected: %+v", st)
	}
}

func TestCheckpointsHappen(t *testing.T) {
	a, b, _ := testMatrix(150, 8)
	_, st, err := Solve(a, b, Config{Scheme: ABFTDetection, S: 5, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints with s=5 over a long solve")
	}
	// Roughly one checkpoint every 5 iterations.
	approx := int64(st.UsefulIterations / 5)
	if st.Checkpoints < approx-2 || st.Checkpoints > approx+2 {
		t.Fatalf("checkpoints %d, expected ≈ %d", st.Checkpoints, approx)
	}
}

func TestSimTimeBreakdownConsistent(t *testing.T) {
	a, b, _ := testMatrix(150, 9)
	inj := fault.New(fault.Config{Alpha: 0.1, Seed: 51})
	_, st, err := Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery
	if st.SimTime < sum || st.SimTime > sum*1.2 {
		t.Fatalf("SimTime %v vs breakdown sum %v", st.SimTime, sum)
	}
	if st.TimeIter <= 0 || st.TimeVerif <= 0 {
		t.Fatalf("missing breakdown components: %+v", st)
	}
}

func TestHigherFaultRateCostsMore(t *testing.T) {
	a, b, _ := testMatrix(200, 10)
	run := func(alpha float64) float64 {
		inj := fault.New(fault.Config{Alpha: alpha, Seed: 61})
		_, st, err := Solve(a, b, Config{Scheme: ABFTDetection, Tol: 1e-9, Injector: inj})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		return st.SimTime
	}
	low := run(0.001)
	high := run(0.25)
	if high <= low {
		t.Fatalf("more faults should cost more time: %v vs %v", high, low)
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := sparse.Poisson2D(4, 4)
	if _, _, err := Solve(a, make([]float64, 3), Config{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMaxItersAbort(t *testing.T) {
	a, b, _ := testMatrix(100, 11)
	_, st, err := Solve(a, b, Config{Scheme: ABFTDetection, Tol: 1e-14, MaxIters: 3})
	if err == nil {
		t.Fatal("expected non-convergence error")
	}
	if st.Converged {
		t.Fatal("cannot be converged")
	}
}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		OnlineDetection: "Online-Detection",
		ABFTDetection:   "ABFT-Detection",
		ABFTCorrection:  "ABFT-Correction",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("%d: %q", s, s.String())
		}
	}
}

func TestCostsSane(t *testing.T) {
	// ~40 nonzeros per row, like the paper's UFL matrices (their #341 has
	// ≈50/row). The ABFT-cheaper-than-Chen claim is a dense-enough-rows
	// claim: Chen's verification recomputes the residual (O(nnz)) while the
	// ABFT tests are O(n).
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 500, Density: 0.08, DiagShift: 1, Seed: 12})
	cp := DefaultCostParams()
	online := NewCosts(a, OnlineDetection, cp)
	det := NewCosts(a, ABFTDetection, cp)
	cor := NewCosts(a, ABFTCorrection, cp)

	if det.Tverif >= online.Tverif {
		t.Fatalf("ABFT verif %v should be below online verif %v", det.Tverif, online.Tverif)
	}
	// And correction costs more than detection.
	if cor.Tverif <= det.Tverif {
		t.Fatalf("correction verif %v should exceed detection verif %v", cor.Tverif, det.Tverif)
	}
	// All methods share the same checkpoint cost (paper Section 3.1).
	if online.Tcp != det.Tcp || det.Tcp != cor.Tcp {
		t.Fatal("checkpoint costs must be identical across methods")
	}
	if SetupCost(a, OnlineDetection, cp) != 0 {
		t.Fatal("online detection has no checksum setup")
	}
	if SetupCost(a, ABFTCorrection, cp) <= 0 {
		t.Fatal("ABFT setup must cost something")
	}
}

func TestOptimalIntervalsScaleWithFaultRate(t *testing.T) {
	a := sparse.RandomSPD(sparse.RandomSPDOptions{N: 400, Density: 0.02, DiagShift: 1, Seed: 13})
	_, sHigh := OptimalIntervals(a, ABFTDetection, 0.25, DefaultCostParams())
	_, sLow := OptimalIntervals(a, ABFTDetection, 0.001, DefaultCostParams())
	if sLow <= sHigh {
		t.Fatalf("rarer faults must allow longer frames: s(0.001)=%d vs s(0.25)=%d", sLow, sHigh)
	}
	_, sCorr := OptimalIntervals(a, ABFTCorrection, 0.25, DefaultCostParams())
	if sCorr < sHigh {
		t.Fatalf("correction should checkpoint no more often: %d vs %d", sCorr, sHigh)
	}
}

func TestReproducibleWithSameSeed(t *testing.T) {
	a, b, _ := testMatrix(150, 14)
	run := func() Stats {
		inj := fault.New(fault.Config{Alpha: 0.1, Seed: 71})
		_, st, err := Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	s1, s2 := run(), run()
	if s1.SimTime != s2.SimTime || s1.TotalIterations != s2.TotalIterations ||
		s1.Corrections != s2.Corrections || s1.Rollbacks != s2.Rollbacks {
		t.Fatalf("non-deterministic: %+v vs %+v", s1, s2)
	}
}

func TestSolutionCorrectDespiteExtremeFaults(t *testing.T) {
	// Very high fault rate: one expected fault per iteration. The solver
	// may be slow but must not return a wrong answer silently.
	a, b, xTrue := testMatrix(150, 15)
	inj := fault.New(fault.Config{Alpha: 0.5, Seed: 81})
	x, st, err := Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj, MaxIters: 20000})
	if err != nil {
		t.Skipf("did not converge at extreme rate (acceptable): %v", err)
	}
	if st.FinalResidual > 1e-6 {
		t.Fatalf("converged with bad residual %v", st.FinalResidual)
	}
	if d := vec.MaxAbsDiff(x, xTrue); d > 1e-3*(1+vec.NormInf(xTrue)) {
		t.Fatalf("solution error %v under extreme faults", d)
	}
	if math.IsNaN(vec.Norm2(x)) {
		t.Fatal("NaN solution returned")
	}
}
