package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// TestOnlineDetectionCatchesMatrixCorruption checks Chen's extended scheme:
// the recomputed residual exposes a corrupted matrix even though the
// recurrence residual looks healthy, and rollback restores the
// checkpointed matrix copy.
func TestOnlineDetectionCatchesMatrixCorruption(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 900, Density: 0.01, Seed: 21})
	b, _ := rhsFor(a, 21)
	inj := fault.New(fault.Config{
		Alpha: 1.0 / 8, Seed: 9,
		// Matrix faults only.
		Disabled: []fault.Target{
			fault.TargetVecR, fault.TargetVecP, fault.TargetVecQ, fault.TargetVecX,
		},
	})
	_, st, err := Solve(a, b, Config{Scheme: OnlineDetection, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, st)
	}
	if st.Detections == 0 || st.Rollbacks == 0 {
		t.Fatalf("matrix-only faults never detected: %+v", st)
	}
	if st.FinalResidual > 1e-6 {
		t.Fatalf("residual %v", st.FinalResidual)
	}
}

// TestEscalationBreaksStuckRollbacks forces the livelock scenario: the
// checkpoint itself carries corruption that verification keeps rejecting.
// The driver must escalate to the initial state instead of spinning.
func TestEscalationBreaksStuckRollbacks(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 600, Density: 0.015, Seed: 23})
	b, _ := rhsFor(a, 23)
	// Very high fault rate: double faults per iteration are common, so
	// uncorrectable detections and corrupted-checkpoint scenarios occur.
	inj := fault.New(fault.Config{Alpha: 1.5, Seed: 13})
	var escalations int
	_, st, _ := Solve(a, b, Config{
		Scheme: ABFTCorrection, Tol: 1e-8, Injector: inj, MaxIters: 4000,
		Trace: func(format string, args ...any) {
			if strings.Contains(format, "escalating") {
				escalations++
			}
		},
	})
	// The run may or may not converge at α = 1.5; the invariant is that it
	// terminates without exhausting the total-iteration backstop purely on
	// stuck retries, i.e. rollbacks stay bounded relative to progress.
	if st.TotalIterations == 0 {
		t.Fatal("no iterations executed")
	}
	if st.Rollbacks > st.TotalIterations {
		t.Fatalf("rollbacks (%d) exceed executed iterations (%d): livelock", st.Rollbacks, st.TotalIterations)
	}
}

// TestOnlineDIntervalCap ensures the model never exceeds the documented
// verification-window cap for Online-Detection.
func TestOnlineDIntervalCap(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 900, Density: 0.01, Seed: 25})
	for _, alpha := range []float64{0.25, 1e-2, 1e-4, 1e-6} {
		d, s := OptimalIntervals(a, OnlineDetection, alpha, DefaultCostParams())
		if d < 1 || d > OnlineMaxD {
			t.Fatalf("alpha=%v: d=%d outside [1,%d]", alpha, d, OnlineMaxD)
		}
		if s < 1 {
			t.Fatalf("alpha=%v: s=%d", alpha, s)
		}
	}
}

// TestSchemeRankingAtTableRate pins the headline ordering at the paper's
// Table-1 fault rate on a dense-row matrix: ABFT-Correction fastest,
// Online-Detection slowest (model overheads 1.32/1.97/2.21 on #341).
func TestSchemeRankingAtTableRate(t *testing.T) {
	if testing.Short() {
		t.Skip("ranking test is slow")
	}
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 1440, Density: 0.0337, Seed: 341})
	b, _ := rhsFor(a, 341)
	mean := func(scheme Scheme) float64 {
		var total float64
		const reps = 6
		for rep := 0; rep < reps; rep++ {
			inj := fault.New(fault.Config{Alpha: 1.0 / 16, Seed: int64(1000 + rep)})
			_, st, _ := Solve(a, b, Config{Scheme: scheme, Tol: 1e-8, Injector: inj})
			total += st.SimTime
		}
		return total / reps
	}
	online := mean(OnlineDetection)
	correct := mean(ABFTCorrection)
	if correct >= online {
		t.Fatalf("ABFT-Correction (%v) not faster than Online-Detection (%v) at α=1/16", correct, online)
	}
}

// TestFinalResidualUsesPristineMatrix ensures the reported residual is
// computed against the caller's matrix, not the (possibly perturbed) live
// copy.
func TestFinalResidualUsesPristineMatrix(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 500, Density: 0.02, Seed: 27})
	b, _ := rhsFor(a, 27)
	inj := fault.New(fault.Config{Alpha: 0.1, Seed: 17})
	x, st, err := Solve(a, b, Config{Scheme: ABFTCorrection, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	rr := make([]float64, len(b))
	a.MulVec(rr, x)
	vec.Sub(rr, b, rr)
	want := vec.Norm2(rr) / vec.Norm2(b)
	if st.FinalResidual != want {
		t.Fatalf("FinalResidual %v != pristine recomputation %v", st.FinalResidual, want)
	}
}

// TestZeroRHS covers the degenerate normB == 0 path.
func TestZeroRHS(t *testing.T) {
	a := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: 300, Density: 0.02, Seed: 29})
	b := make([]float64, a.Rows)
	x, st, err := Solve(a, b, Config{Scheme: ABFTDetection, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || vec.Norm2(x) != 0 {
		t.Fatalf("zero rhs: %+v, ‖x‖=%v", st, vec.Norm2(x))
	}
}
