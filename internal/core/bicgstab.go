package core

import (
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/tmr"
	"repro/internal/vec"
)

// This file implements a resilient BiCGstab driver. The paper's Section 3
// claims its techniques apply to "any iterative solver that use sparse
// matrix vector multiplies and vector operations. This list includes many
// of the non-stationary iterative solvers such as CGNE, BiCG, BiCGstab".
// BiCGstab performs two SpMxVs per iteration (v = Ap and t = As); both are
// ABFT-protected with the same machinery as the CG driver, and the
// checkpoint additionally carries the shadow residual r̂ and the recurrence
// scalars (ρ, α, ω).

// BiCGstabConfig parameterises a resilient BiCGstab solve. Only the ABFT
// schemes are supported: Chen's orthogonality test is CG-specific, so
// OnlineDetection has no faithful BiCGstab counterpart.
type BiCGstabConfig struct {
	Scheme   Scheme // ABFTDetection or ABFTCorrection
	S        int
	Tol      float64
	MaxIters int
	Injector *fault.Injector
	Costs    CostParams
	// Pool, as in Config, runs the hot kernels across the worker pool with
	// deterministic blocked arithmetic.
	Pool *pool.Pool
	// OnIteration, when non-nil, is called after every useful iteration with
	// the iteration count and the current BiCG recurrence scalar ρ. The
	// harness uses it to fingerprint the iterate trajectory.
	OnIteration func(it int, rho float64)
	// OnDetection, as in Config: called per fault-detection episode.
	OnDetection func(DetectionEvent)
	// Ws, as in Config: a reusable arena making repeated solves
	// allocation-free in steady state.
	Ws *Workspace
}

// bicgRun keeps the mutable loop state of one resilient BiCGstab solve in
// the workspace, so the checkpoint/rollback helpers are methods instead of
// capturing closures — a workspace-carrying warm solve allocates nothing.
type bicgRun struct {
	view             *checkpoint.State
	store, initStore *checkpoint.Store
	costs            Costs
	stats            Stats
	exec             tmr.Executor // kept across solves: resident TMR replica scratch
	prot             *abft.Protected
	rGuard           *abft.VectorGuard
	pGuard           *abft.VectorGuard
	sGuard           *abft.VectorGuard
	xGuard           *abft.VectorGuard
	r, p, x          []float64
	it               int
	rho, alpha       float64
	omega            float64
	last, stuck      int
	highWater        int
}

// save checkpoints the live state (optionally charging checkpoint time).
func (run *bicgRun) save(charge bool) {
	run.view.Iteration = run.it
	run.view.Scalars["rho"] = run.rho
	run.view.Scalars["alpha"] = run.alpha
	run.view.Scalars["omega"] = run.omega
	run.store.Save(run.view)
	run.last = run.it
	if charge {
		run.stats.Checkpoints++
		run.stats.TimeCkpt += run.costs.Tcp
	}
}

// rollback restores the last checkpoint (or the initial state after too
// many consecutive failed recoveries) and re-arms the guards and checksum
// encodings over the restored data.
func (run *bicgRun) rollback() {
	use := run.store
	run.stuck++
	if run.stuck > stuckLimit {
		use = run.initStore
		run.stuck = 0
		run.highWater = 0
		run.last = 0
	}
	use.Restore(run.view)
	run.it = run.view.Iteration
	run.rho = run.view.Scalars["rho"]
	run.alpha = run.view.Scalars["alpha"]
	run.omega = run.view.Scalars["omega"]
	run.stats.Rollbacks++
	run.stats.TimeRecovery += run.costs.Trec
	run.rGuard.Refresh(run.r)
	run.pGuard.Refresh(run.p)
	run.xGuard.Refresh(run.x)
	run.prot.Reencode()
}

// SolveBiCGstab runs the resilient BiCGstab on Ax = b for general
// (possibly nonsymmetric) A.
func SolveBiCGstab(a *sparse.CSR, b []float64, cfg BiCGstabConfig) ([]float64, Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("core: BiCGstab dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	if cfg.Scheme == OnlineDetection {
		return nil, Stats{}, fmt.Errorf("core: BiCGstab supports the ABFT schemes only")
	}
	base := Config{
		Scheme: cfg.Scheme, S: cfg.S, Tol: cfg.Tol,
		MaxIters: cfg.MaxIters, Injector: cfg.Injector, Costs: cfg.Costs,
	}
	base = base.withDefaults(n)
	ws := cfg.Ws.begin()

	live := ws.liveCopy(a)
	costs := NewCosts(live, base.Scheme, base.Costs)
	costs.Titer *= 2 // two products and roughly twice the vector work per iteration

	alpha := 0.0
	if cfg.Injector != nil {
		alpha = cfg.Injector.Alpha()
	}
	s := base.S
	if s == 0 {
		_, s = OptimalIntervals(a, base.Scheme, alpha, base.Costs)
	}

	mode := abftMode(base.Scheme)

	r := ws.takeCopy(b) // x0 = 0
	rHat := ws.takeCopy(r)
	p := ws.takeZero(n)
	v := ws.takeZero(n)
	sv := ws.takeZero(n)
	tv := ws.take(n)
	x := ws.takeZero(n)
	rr := ws.take(n)

	run := &ws.br
	exec := run.exec // preserve the TMR executor's resident replica scratch
	*run = bicgRun{
		costs:  costs,
		stats:  Stats{Scheme: base.Scheme, D: 1, S: s},
		prot:   ws.protected(live, mode),
		rGuard: ws.guard(0, r, mode),
		pGuard: ws.guard(1, p, mode),
		sGuard: ws.guard(2, sv, mode),
		xGuard: ws.guard(3, x, mode),
		r:      r, p: p, x: x,
		rho: 1, alpha: 1, omega: 1,
	}
	run.exec = exec
	run.exec.Pool = cfg.Pool
	st := &run.stats
	prot := run.prot
	rGuard, pGuard, sGuard, xGuard := run.rGuard, run.pGuard, run.sGuard, run.xGuard
	st.SimTime += SetupCost(live, base.Scheme, base.Costs)

	ws.state = fault.State{A: live, R: r, P: p, Q: v, X: x}
	state := &ws.state
	run.store, run.initStore = ws.stores()
	run.view = ws.liveView(live, nil)
	run.view.Vectors["x"] = x
	run.view.Vectors["r"] = r
	run.view.Vectors["rHat"] = rHat
	run.view.Vectors["p"] = p
	run.view.Vectors["v"] = v

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	run.save(false)
	run.initStore.Save(run.view)

	maxTotal := int64(base.MaxIters)*10 + 1000
	finalRetries := 0
	emit := detectionEmitter(cfg.OnDetection, st)

	for {
		if vec.Norm2(r) <= base.Tol*normB {
			st.TimeVerif += costs.Titer / 2
			live.MulVecRobustParallel(cfg.Pool, tv, x)
			vec.Sub(tv, b, tv)
			confirmTol := math.Max(10*base.Tol, 1e-6) * normB
			if tr := vec.Norm2(tv); tr <= confirmTol && !math.IsNaN(tr) {
				st.Converged = true
				st.UsefulIterations = run.it
				break
			}
			finalRetries++
			if finalRetries >= maxFinalCheckRetries {
				st.UsefulIterations = run.it
				return finish(cfg.Pool, a, b, x, rr, normB, st, cfg.Injector,
					fmt.Errorf("core: BiCGstab %v: convergence confirmation kept failing", base.Scheme))
			}
			run.rollback()
			continue
		}
		if run.it >= base.MaxIters || st.TotalIterations >= maxTotal {
			st.UsefulIterations = run.it
			return finish(cfg.Pool, a, b, x, rr, normB, st, cfg.Injector,
				fmt.Errorf("core: BiCGstab %v: not converged after %d useful (%d total) iterations",
					base.Scheme, run.it, st.TotalIterations))
		}

		st.TotalIterations++
		var deferred []fault.Event
		if cfg.Injector != nil {
			_, deferred = cfg.Injector.InjectIterationSplit(state)
		}
		st.TimeIter += costs.Titer
		st.TimeVerif += costs.Tverif

		// Memory-fault checks on the guarded vectors.
		bad := false
		for i, g := range []*abft.VectorGuard{rGuard, xGuard} {
			out := g.Check([][]float64{r, x}[i])
			if out.Detected {
				st.Detections++
				if !out.Corrected {
					bad = true
					break
				}
				st.Corrections++
				st.TimeVerif += TcorrectVector(live, base.Costs)
			}
		}
		if bad {
			if emit != nil {
				emit(run.it, true)
			}
			run.rollback()
			continue
		}

		rhoNew := run.exec.Dot(rHat, r)
		if rhoNew == 0 || math.IsNaN(rhoNew) || math.IsInf(rhoNew, 0) {
			st.Detections++
			if emit != nil {
				emit(run.it, true)
			}
			run.rollback()
			continue
		}
		if run.it == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / run.rho) * (run.alpha / run.omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-run.omega*v[i])
			}
		}
		run.rho = rhoNew
		pGuard.Refresh(p)

		// First protected product: v = A·p.
		srV := prot.MulVec(v, p)
		for _, ev := range deferred {
			if ev.Target == fault.TargetVecQ {
				cfg.Injector.ApplyEvent(state, ev)
			}
		}
		outV := prot.Verify(v, p, pGuard.Ref(), srV)
		if outV.Detected {
			st.Detections++
			if !outV.Corrected {
				if emit != nil {
					emit(run.it, true)
				}
				run.rollback()
				continue
			}
			st.Corrections++
			st.TimeVerif += costs.Tcorrect
			if outV.Class == abft.ClassVal || outV.Class == abft.ClassColid || outV.Class == abft.ClassRowidx {
				prot.Reencode()
			}
		}

		den := run.exec.Dot(rHat, v)
		if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
			st.Detections++
			if emit != nil {
				emit(run.it, true)
			}
			run.rollback()
			continue
		}
		run.alpha = run.rho / den
		run.exec.AxpyTo(sv, -run.alpha, v, r)
		sGuard.Refresh(sv)

		// Early half-step convergence.
		if vec.Norm2(sv) <= base.Tol*normB {
			run.exec.Axpy(run.alpha, p, x)
			xGuard.Refresh(x)
			copy(r, sv)
			rGuard.Refresh(r)
			run.it++
			if cfg.OnIteration != nil {
				cfg.OnIteration(run.it, run.rho)
			}
			if emit != nil {
				emit(run.it, false)
			}
			continue // the top-of-loop confirmation validates it
		}

		// Second protected product: t = A·s.
		srT := prot.MulVec(tv, sv)
		outT := prot.Verify(tv, sv, sGuard.Ref(), srT)
		if outT.Detected {
			st.Detections++
			if !outT.Corrected {
				if emit != nil {
					emit(run.it, true)
				}
				run.rollback()
				continue
			}
			st.Corrections++
			st.TimeVerif += costs.Tcorrect
			if outT.Class == abft.ClassVal || outT.Class == abft.ClassColid || outT.Class == abft.ClassRowidx {
				prot.Reencode()
			}
		}

		tt := run.exec.Norm2Sq(tv)
		if tt == 0 || math.IsNaN(tt) || math.IsInf(tt, 0) {
			st.Detections++
			if emit != nil {
				emit(run.it, true)
			}
			run.rollback()
			continue
		}
		run.omega = run.exec.Dot(tv, sv) / tt
		if run.omega == 0 || math.IsNaN(run.omega) || math.IsInf(run.omega, 0) {
			st.Detections++
			if emit != nil {
				emit(run.it, true)
			}
			run.rollback()
			continue
		}

		run.exec.Axpy(run.alpha, p, x)
		run.exec.Axpy(run.omega, sv, x)
		xGuard.Refresh(x)
		run.exec.AxpyTo(r, -run.omega, tv, sv)
		rGuard.Refresh(r)

		run.it++
		if cfg.OnIteration != nil {
			cfg.OnIteration(run.it, run.rho)
		}
		if emit != nil {
			emit(run.it, false)
		}
		if run.it > run.highWater {
			run.highWater = run.it
			run.stuck = 0
		}
		if run.it%s == 0 && run.it > run.last {
			run.save(true)
		}
	}
	return finish(cfg.Pool, a, b, x, rr, normB, st, cfg.Injector, nil)
}

// finish computes the final statistics common to the drivers. rr is
// caller-provided length-n scratch for the true-residual product.
func finish(pl *pool.Pool, a *sparse.CSR, b, x, rr []float64, normB float64, st *Stats, inj *fault.Injector, err error) ([]float64, Stats, error) {
	st.SimTime = st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery + st.SimTime
	if inj != nil {
		st.FaultsInjected = inj.Stats().Flips
	}
	a.MulVecParallel(pl, rr, x)
	vec.Sub(rr, b, rr)
	st.FinalResidual = vec.Norm2(rr) / normB
	return x, *st, err
}
