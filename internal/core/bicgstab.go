package core

import (
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/tmr"
	"repro/internal/vec"
)

// This file implements a resilient BiCGstab driver. The paper's Section 3
// claims its techniques apply to "any iterative solver that use sparse
// matrix vector multiplies and vector operations. This list includes many
// of the non-stationary iterative solvers such as CGNE, BiCG, BiCGstab".
// BiCGstab performs two SpMxVs per iteration (v = Ap and t = As); both are
// ABFT-protected with the same machinery as the CG driver, and the
// checkpoint additionally carries the shadow residual r̂ and the recurrence
// scalars (ρ, α, ω).

// BiCGstabConfig parameterises a resilient BiCGstab solve. Only the ABFT
// schemes are supported: Chen's orthogonality test is CG-specific, so
// OnlineDetection has no faithful BiCGstab counterpart.
type BiCGstabConfig struct {
	Scheme   Scheme // ABFTDetection or ABFTCorrection
	S        int
	Tol      float64
	MaxIters int
	Injector *fault.Injector
	Costs    CostParams
	// Pool, as in Config, runs the hot kernels across the worker pool with
	// deterministic blocked arithmetic.
	Pool *pool.Pool
	// OnIteration, when non-nil, is called after every useful iteration with
	// the iteration count and the current BiCG recurrence scalar ρ. The
	// harness uses it to fingerprint the iterate trajectory.
	OnIteration func(it int, rho float64)
	// Ws, as in Config: a reusable arena making repeated solves
	// allocation-free in steady state.
	Ws *Workspace
}

// SolveBiCGstab runs the resilient BiCGstab on Ax = b for general
// (possibly nonsymmetric) A.
func SolveBiCGstab(a *sparse.CSR, b []float64, cfg BiCGstabConfig) ([]float64, Stats, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("core: BiCGstab dimension mismatch: A %dx%d, len(b)=%d", a.Rows, a.Cols, len(b))
	}
	if cfg.Scheme == OnlineDetection {
		return nil, Stats{}, fmt.Errorf("core: BiCGstab supports the ABFT schemes only")
	}
	base := Config{
		Scheme: cfg.Scheme, S: cfg.S, Tol: cfg.Tol,
		MaxIters: cfg.MaxIters, Injector: cfg.Injector, Costs: cfg.Costs,
	}
	base = base.withDefaults(n)
	ws := cfg.Ws.begin()

	live := ws.liveCopy(a)
	costs := NewCosts(live, base.Scheme, base.Costs)
	costs.Titer *= 2 // two products and roughly twice the vector work per iteration

	alpha := 0.0
	if cfg.Injector != nil {
		alpha = cfg.Injector.Alpha()
	}
	s := base.S
	if s == 0 {
		_, s = OptimalIntervals(a, base.Scheme, alpha, base.Costs)
	}

	st := Stats{Scheme: base.Scheme, D: 1, S: s}
	mode := abftMode(base.Scheme)

	r := ws.takeCopy(b) // x0 = 0
	rHat := ws.takeCopy(r)
	p := ws.takeZero(n)
	v := ws.takeZero(n)
	sv := ws.takeZero(n)
	tv := ws.take(n)
	x := ws.takeZero(n)
	rr := ws.take(n)

	prot := ws.protected(live, mode)
	rGuard := ws.guard(0, r, mode)
	pGuard := ws.guard(1, p, mode)
	sGuard := ws.guard(2, sv, mode)
	xGuard := ws.guard(3, x, mode)
	st.SimTime += SetupCost(live, base.Scheme, base.Costs)

	ws.state = fault.State{A: live, R: r, P: p, Q: v, X: x}
	state := &ws.state
	store, initStore := ws.stores()
	view := ws.liveView(live, nil)
	view.Vectors["x"] = x
	view.Vectors["r"] = r
	view.Vectors["rHat"] = rHat
	view.Vectors["p"] = p
	view.Vectors["v"] = v

	normB := vec.Norm2(b)
	if normB == 0 {
		normB = 1
	}
	rho, alphaS, omega := 1.0, 1.0, 1.0
	it := 0
	highWater, stuck := 0, 0
	last := 0
	var exec tmr.Executor
	exec.Pool = cfg.Pool

	save := func(charge bool) {
		view.Iteration = it
		view.Scalars["rho"] = rho
		view.Scalars["alpha"] = alphaS
		view.Scalars["omega"] = omega
		store.Save(view)
		last = it
		if charge {
			st.Checkpoints++
			st.TimeCkpt += costs.Tcp
		}
	}
	rollback := func() {
		use := store
		stuck++
		if stuck > stuckLimit {
			use = initStore
			stuck = 0
			highWater = 0
			last = 0
		}
		use.Restore(view)
		it = view.Iteration
		rho = view.Scalars["rho"]
		alphaS = view.Scalars["alpha"]
		omega = view.Scalars["omega"]
		st.Rollbacks++
		st.TimeRecovery += costs.Trec
		rGuard.Refresh(r)
		pGuard.Refresh(p)
		xGuard.Refresh(x)
		prot.Reencode()
	}
	save(false)
	initStore.Save(view)

	maxTotal := int64(base.MaxIters)*10 + 1000
	finalRetries := 0
	fail := func() { rollback() }

	for {
		if vec.Norm2(r) <= base.Tol*normB {
			st.TimeVerif += costs.Titer / 2
			live.MulVecRobustParallel(cfg.Pool, tv, x)
			vec.Sub(tv, b, tv)
			confirmTol := math.Max(10*base.Tol, 1e-6) * normB
			if tr := vec.Norm2(tv); tr <= confirmTol && !math.IsNaN(tr) {
				st.Converged = true
				st.UsefulIterations = it
				break
			}
			finalRetries++
			if finalRetries >= maxFinalCheckRetries {
				st.UsefulIterations = it
				return finish(cfg.Pool, a, b, x, rr, normB, &st, cfg.Injector,
					fmt.Errorf("core: BiCGstab %v: convergence confirmation kept failing", base.Scheme))
			}
			fail()
			continue
		}
		if it >= base.MaxIters || st.TotalIterations >= maxTotal {
			st.UsefulIterations = it
			return finish(cfg.Pool, a, b, x, rr, normB, &st, cfg.Injector,
				fmt.Errorf("core: BiCGstab %v: not converged after %d useful (%d total) iterations",
					base.Scheme, it, st.TotalIterations))
		}

		st.TotalIterations++
		var deferred []fault.Event
		if cfg.Injector != nil {
			_, deferred = cfg.Injector.InjectIterationSplit(state)
		}
		st.TimeIter += costs.Titer
		st.TimeVerif += costs.Tverif

		// Memory-fault checks on the guarded vectors.
		bad := false
		for i, g := range []*abft.VectorGuard{rGuard, xGuard} {
			out := g.Check([][]float64{r, x}[i])
			if out.Detected {
				st.Detections++
				if !out.Corrected {
					bad = true
					break
				}
				st.Corrections++
				st.TimeVerif += TcorrectVector(live, base.Costs)
			}
		}
		if bad {
			fail()
			continue
		}

		rhoNew := exec.Dot(rHat, r)
		if rhoNew == 0 || math.IsNaN(rhoNew) || math.IsInf(rhoNew, 0) {
			st.Detections++
			fail()
			continue
		}
		if it == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alphaS / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		pGuard.Refresh(p)

		// First protected product: v = A·p.
		srV := prot.MulVec(v, p)
		for _, ev := range deferred {
			if ev.Target == fault.TargetVecQ {
				cfg.Injector.ApplyEvent(state, ev)
			}
		}
		outV := prot.Verify(v, p, pGuard.Ref(), srV)
		if outV.Detected {
			st.Detections++
			if !outV.Corrected {
				fail()
				continue
			}
			st.Corrections++
			st.TimeVerif += costs.Tcorrect
			if outV.Class == abft.ClassVal || outV.Class == abft.ClassColid || outV.Class == abft.ClassRowidx {
				prot.Reencode()
			}
		}

		den := exec.Dot(rHat, v)
		if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
			st.Detections++
			fail()
			continue
		}
		alphaS = rho / den
		exec.AxpyTo(sv, -alphaS, v, r)
		sGuard.Refresh(sv)

		// Early half-step convergence.
		if vec.Norm2(sv) <= base.Tol*normB {
			exec.Axpy(alphaS, p, x)
			xGuard.Refresh(x)
			copy(r, sv)
			rGuard.Refresh(r)
			it++
			if cfg.OnIteration != nil {
				cfg.OnIteration(it, rho)
			}
			continue // the top-of-loop confirmation validates it
		}

		// Second protected product: t = A·s.
		srT := prot.MulVec(tv, sv)
		outT := prot.Verify(tv, sv, sGuard.Ref(), srT)
		if outT.Detected {
			st.Detections++
			if !outT.Corrected {
				fail()
				continue
			}
			st.Corrections++
			st.TimeVerif += costs.Tcorrect
			if outT.Class == abft.ClassVal || outT.Class == abft.ClassColid || outT.Class == abft.ClassRowidx {
				prot.Reencode()
			}
		}

		tt := exec.Norm2Sq(tv)
		if tt == 0 || math.IsNaN(tt) || math.IsInf(tt, 0) {
			st.Detections++
			fail()
			continue
		}
		omega = exec.Dot(tv, sv) / tt
		if omega == 0 || math.IsNaN(omega) || math.IsInf(omega, 0) {
			st.Detections++
			fail()
			continue
		}

		exec.Axpy(alphaS, p, x)
		exec.Axpy(omega, sv, x)
		xGuard.Refresh(x)
		exec.AxpyTo(r, -omega, tv, sv)
		rGuard.Refresh(r)

		it++
		if cfg.OnIteration != nil {
			cfg.OnIteration(it, rho)
		}
		if it > highWater {
			highWater = it
			stuck = 0
		}
		if it%s == 0 && it > last {
			save(true)
		}
	}
	return finish(cfg.Pool, a, b, x, rr, normB, &st, cfg.Injector, nil)
}

// finish computes the final statistics common to the drivers. rr is
// caller-provided length-n scratch for the true-residual product.
func finish(pl *pool.Pool, a *sparse.CSR, b, x, rr []float64, normB float64, st *Stats, inj *fault.Injector, err error) ([]float64, Stats, error) {
	st.SimTime = st.TimeIter + st.TimeVerif + st.TimeCkpt + st.TimeRecovery + st.SimTime
	if inj != nil {
		st.FaultsInjected = inj.Stats().Flips
	}
	a.MulVecParallel(pl, rr, x)
	vec.Sub(rr, b, rr)
	st.FinalResidual = vec.Norm2(rr) / normB
	return x, *st, err
}
