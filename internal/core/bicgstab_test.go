package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// nonsym builds a convection–diffusion style nonsymmetric matrix.
func nonsym(n int) *sparse.CSR {
	base := sparse.SuiteSPD(sparse.SuiteSPDOptions{N: n, Density: 0.008, Seed: 33})
	c := sparse.NewCOO(n, n)
	for i := 0; i < base.Rows; i++ {
		for k := base.Rowidx[i]; k < base.Rowidx[i+1]; k++ {
			c.Add(i, base.Colid[k], base.Val[k])
		}
		if i+1 < n {
			c.Add(i, i+1, 0.2)
			c.Add(i+1, i, -0.2)
		}
	}
	return c.ToCSR()
}

func TestBiCGstabFaultFree(t *testing.T) {
	a := nonsym(800)
	b, xTrue := rhsFor(a, 33)
	for _, scheme := range []Scheme{ABFTDetection, ABFTCorrection} {
		t.Run(scheme.String(), func(t *testing.T) {
			x, st, err := SolveBiCGstab(a, b, BiCGstabConfig{Scheme: scheme, Tol: 1e-9})
			if err != nil {
				t.Fatalf("%v (stats %+v)", err, st)
			}
			if !st.Converged || st.Detections != 0 {
				t.Fatalf("fault-free: %+v", st)
			}
			if d := vec.MaxAbsDiff(x, xTrue); d > 1e-4*(1+vec.NormInf(xTrue)) {
				t.Fatalf("solution error %v", d)
			}
		})
	}
}

func TestBiCGstabUnderFaults(t *testing.T) {
	a := nonsym(800)
	b, xTrue := rhsFor(a, 35)
	inj := fault.New(fault.Config{Alpha: 1.0 / 32, Seed: 71})
	x, st, err := SolveBiCGstab(a, b, BiCGstabConfig{Scheme: ABFTCorrection, Tol: 1e-9, Injector: inj})
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, st)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("vacuous: no faults injected")
	}
	if st.FinalResidual > 1e-6 {
		t.Fatalf("residual %v", st.FinalResidual)
	}
	if d := vec.MaxAbsDiff(x, xTrue); d > 1e-3*(1+vec.NormInf(xTrue)) {
		t.Fatalf("solution error %v", d)
	}
}

func TestBiCGstabRejectsOnline(t *testing.T) {
	a := nonsym(100)
	b, _ := rhsFor(a, 37)
	if _, _, err := SolveBiCGstab(a, b, BiCGstabConfig{Scheme: OnlineDetection}); err == nil {
		t.Fatal("OnlineDetection must be rejected for BiCGstab")
	}
}

func TestBiCGstabDimensionMismatch(t *testing.T) {
	a := nonsym(100)
	if _, _, err := SolveBiCGstab(a, make([]float64, 5), BiCGstabConfig{Scheme: ABFTCorrection}); err == nil {
		t.Fatal("expected dimension error")
	}
}
