package bitflip

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64SignBit(t *testing.T) {
	if got := Float64(1.5, 63); got != -1.5 {
		t.Fatalf("sign flip = %v, want -1.5", got)
	}
}

func TestFloat64LowBitTiny(t *testing.T) {
	v := 1.0
	got := Float64(v, 0)
	if got == v {
		t.Fatal("bit flip changed nothing")
	}
	if math.Abs(got-v) > 1e-15 {
		t.Fatalf("low mantissa flip of 1.0 changed value by %v", math.Abs(got-v))
	}
}

func TestFloat64ExponentBitHuge(t *testing.T) {
	v := 1.0
	got := Float64(v, 62) // top exponent bit
	if math.Abs(got) <= 1 {
		t.Fatalf("exponent flip should be large, got %v", got)
	}
}

func TestFloat64Involution(t *testing.T) {
	f := func(v float64, bitRaw uint8) bool {
		bit := uint(bitRaw) % Float64Bits
		w := Float64(Float64(v, bit), bit)
		return w == v || (math.IsNaN(w) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Float64(1, 64)
}

func TestIntInvolution(t *testing.T) {
	f := func(v int, bitRaw uint8) bool {
		bit := uint(bitRaw) % 63
		return Int(Int(v, bit), bit) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntChangesValue(t *testing.T) {
	if Int(5, 1) != 7 {
		t.Fatalf("Int(5,1) = %d, want 7", Int(5, 1))
	}
	if Int(5, 0) != 4 {
		t.Fatalf("Int(5,0) = %d, want 4", Int(5, 0))
	}
}

func TestIntOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Int(1, 63)
}

func TestIsSignificantFloat64(t *testing.T) {
	// Low mantissa bit of 1.0: relative change ~2^-52, insignificant at 1e-10.
	if IsSignificantFloat64(1.0, 0, 1e-10) {
		t.Error("low mantissa flip flagged significant")
	}
	// Sign bit of 1.0: change of 2, significant.
	if !IsSignificantFloat64(1.0, 63, 1e-10) {
		t.Error("sign flip not flagged significant")
	}
	// Exponent flips that make Inf must always be significant.
	big := math.MaxFloat64
	for bit := uint(52); bit < 64; bit++ {
		f := Float64(big, bit)
		if math.IsInf(f, 0) && !IsSignificantFloat64(big, bit, 1e-10) {
			t.Errorf("Inf-producing flip at bit %d not significant", bit)
		}
	}
}
