// Package bitflip provides the low-level silent-error primitives: flipping
// a single bit in the binary representation of float64 and integer words.
//
// The paper models silent errors as independent bit flips striking memory
// words (matrix arrays and solver vectors) or the results of arithmetic
// operations. This package is the only place in the repository that touches
// raw bit patterns, so the fault model is easy to audit.
package bitflip

import (
	"fmt"
	"math"
)

// Float64Bits is the number of bits in a float64 word.
const Float64Bits = 64

// Float64 returns v with bit `bit` (0 = least significant mantissa bit,
// 63 = sign bit) flipped.
func Float64(v float64, bit uint) float64 {
	if bit >= Float64Bits {
		panic(fmt.Sprintf("bitflip: float64 bit %d out of range", bit))
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << bit))
}

// Int flips bit `bit` of an int. Only the low 63 bits are eligible: flipping
// the sign bit of an index word produces a huge negative number that no real
// memory corruption model needs to distinguish from any other invalid index,
// and keeping indices representable avoids undefined behaviour in tests that
// do arithmetic on corrupted values.
func Int(v int, bit uint) int {
	if bit >= 63 {
		panic(fmt.Sprintf("bitflip: int bit %d out of range", bit))
	}
	return v ^ (1 << bit)
}

// IsSignificantFloat64 reports whether flipping `bit` of v changes its value
// by more than relTol in relative terms. Low-order mantissa flips of small
// values fall below any realistic detection threshold (the paper's Section
// 5.1 discusses exactly these undetectable-but-harmless flips).
func IsSignificantFloat64(v float64, bit uint, relTol float64) bool {
	f := Float64(v, bit)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return true
	}
	d := math.Abs(f - v)
	scale := math.Max(math.Abs(v), 1)
	return d > relTol*scale
}
