// Package checkpoint implements the backward-recovery substrate: an
// in-memory snapshot store for the resilient solver state.
//
// Following the paper (Section 3.1), a checkpoint saves the current
// iteration vectors *and the sparse matrix A*: "if this error comes from a
// corruption in data memory, we need to recover with a valid copy of the
// data matrix A. This holds for the three methods under study … which have
// exactly the same checkpoint cost."
//
// Checkpoints are only ever taken right after a verification, so the saved
// state is always valid; recovery rolls the live state back to it. Both
// operations are error-free in the model (selective reliability), and their
// costs Tcp and Trec are charged by the caller through the cost model using
// the Words() size of the snapshot.
package checkpoint

import (
	"repro/internal/sparse"
)

// State is the solver state covered by a checkpoint: the matrix and the
// named iteration vectors (CG needs x, r, p; other solvers register what
// they use).
type State struct {
	A *sparse.CSR
	// M is the explicit sparse preconditioner of the PCG drivers (nil for
	// unpreconditioned solvers); it is checkpointed and restored exactly
	// like A, so memory faults on the preconditioner are recoverable too.
	M         *sparse.CSR
	Vectors   map[string][]float64
	Iteration int
	// Scalars preserves recurrence scalars (e.g. ‖r‖² of the checkpointed
	// iteration) that the solver needs to resume mid-stream.
	Scalars map[string]float64
}

// Store holds the last snapshot and usage counters.
type Store struct {
	saved       *State
	saves       int64
	restores    int64
	savedWords  int64
	hasSnapshot bool
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Save deep-copies the live state into the store, replacing any previous
// snapshot. When the previous snapshot has exactly the live state's shape
// (same matrix dimensions, same vector names and lengths) the copy happens
// in place, so periodic checkpointing in a steady-state solve allocates
// nothing; otherwise fresh storage is taken.
func (s *Store) Save(live *State) {
	if s.hasSnapshot && sameShape(s.saved, live) {
		snap := s.saved
		snap.Iteration = live.Iteration
		if live.A != nil {
			snap.A.CopyFrom(live.A)
		}
		if live.M != nil {
			snap.M.CopyFrom(live.M)
		}
		for name, v := range live.Vectors {
			copy(snap.Vectors[name], v)
		}
		clear(snap.Scalars)
		for name, v := range live.Scalars {
			snap.Scalars[name] = v
		}
		s.saves++
		return
	}
	snap := &State{
		Iteration: live.Iteration,
		Vectors:   make(map[string][]float64, len(live.Vectors)),
		Scalars:   make(map[string]float64, len(live.Scalars)),
	}
	if live.A != nil {
		snap.A = live.A.Clone()
	}
	if live.M != nil {
		snap.M = live.M.Clone()
	}
	for name, v := range live.Vectors {
		cp := make([]float64, len(v))
		copy(cp, v)
		snap.Vectors[name] = cp
	}
	for name, v := range live.Scalars {
		snap.Scalars[name] = v
	}
	s.saved = snap
	s.saves++
	s.savedWords = int64(snapWords(snap))
	s.hasSnapshot = true
}

// sameShape reports whether the snapshot can absorb the live state without
// reallocating.
func sameShape(snap, live *State) bool {
	if (snap.A == nil) != (live.A == nil) || (snap.M == nil) != (live.M == nil) {
		return false
	}
	if snap.A != nil && (snap.A.Rows != live.A.Rows || snap.A.Cols != live.A.Cols || len(snap.A.Val) != len(live.A.Val)) {
		return false
	}
	if snap.M != nil && (snap.M.Rows != live.M.Rows || snap.M.Cols != live.M.Cols || len(snap.M.Val) != len(live.M.Val)) {
		return false
	}
	if len(snap.Vectors) != len(live.Vectors) {
		return false
	}
	for name, v := range live.Vectors {
		sv, ok := snap.Vectors[name]
		if !ok || len(sv) != len(v) {
			return false
		}
	}
	return true
}

// Restore copies the snapshot back into the live state (in place: the live
// arrays keep their identity so aliases held by the solver stay valid).
// Panics if no snapshot exists or shapes mismatch — both are programming
// errors in the drivers.
func (s *Store) Restore(live *State) {
	if !s.hasSnapshot {
		panic("checkpoint: Restore without a snapshot")
	}
	snap := s.saved
	if (snap.A == nil) != (live.A == nil) {
		panic("checkpoint: matrix presence mismatch")
	}
	if snap.A != nil {
		live.A.CopyFrom(snap.A)
	}
	if (snap.M == nil) != (live.M == nil) {
		panic("checkpoint: preconditioner presence mismatch")
	}
	if snap.M != nil {
		live.M.CopyFrom(snap.M)
	}
	for name, v := range snap.Vectors {
		dst, ok := live.Vectors[name]
		if !ok || len(dst) != len(v) {
			panic("checkpoint: vector shape mismatch for " + name)
		}
		copy(dst, v)
	}
	live.Iteration = snap.Iteration
	if live.Scalars == nil {
		live.Scalars = make(map[string]float64, len(snap.Scalars))
	}
	for name, v := range snap.Scalars {
		live.Scalars[name] = v
	}
	s.restores++
}

// HasSnapshot reports whether a snapshot exists.
func (s *Store) HasSnapshot() bool { return s.hasSnapshot }

// SavedIteration returns the iteration number of the snapshot (-1 if none).
func (s *Store) SavedIteration() int {
	if !s.hasSnapshot {
		return -1
	}
	return s.saved.Iteration
}

// Words returns the size of the last snapshot in machine words — the
// quantity the cost model converts into Tcp and Trec.
func (s *Store) Words() int64 { return s.savedWords }

// Counters returns how many saves and restores have been performed.
func (s *Store) Counters() (saves, restores int64) { return s.saves, s.restores }

func snapWords(st *State) int {
	w := 0
	if st.A != nil {
		w += st.A.MemoryWords()
	}
	if st.M != nil {
		w += st.M.MemoryWords()
	}
	for _, v := range st.Vectors {
		w += len(v)
	}
	return w
}

// StateWords returns the checkpointable size of a live state without saving
// it (used to compute Tcp before the first checkpoint).
func StateWords(st *State) int64 { return int64(snapWords(st)) }
