package checkpoint

import (
	"testing"

	"repro/internal/sparse"
)

func liveState(n int) *State {
	x := make([]float64, n)
	r := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		r[i] = float64(-i)
	}
	return &State{
		A:         sparse.Tridiag(n, 2, -1),
		Vectors:   map[string][]float64{"x": x, "r": r},
		Iteration: 7,
		Scalars:   map[string]float64{"rho": 3.5},
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	st := liveState(10)
	store := NewStore()
	store.Save(st)

	// Corrupt everything.
	st.A.Val[0] = 999
	st.A.Colid[1] = 5
	st.A.Rowidx[2] = 0
	st.Vectors["x"][3] = -1
	st.Vectors["r"][4] = 42
	st.Iteration = 99
	st.Scalars["rho"] = -1

	store.Restore(st)

	want := liveState(10)
	if !st.A.Equal(want.A) {
		t.Fatal("matrix not restored")
	}
	for name := range want.Vectors {
		for i := range want.Vectors[name] {
			if st.Vectors[name][i] != want.Vectors[name][i] {
				t.Fatalf("vector %s not restored", name)
			}
		}
	}
	if st.Iteration != 7 || st.Scalars["rho"] != 3.5 {
		t.Fatal("scalars not restored")
	}
}

func TestRestoreKeepsArrayIdentity(t *testing.T) {
	st := liveState(5)
	xAlias := st.Vectors["x"]
	store := NewStore()
	store.Save(st)
	st.Vectors["x"][0] = 123
	store.Restore(st)
	if xAlias[0] != 0 {
		t.Fatal("restore must write through the original array")
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	st := liveState(5)
	store := NewStore()
	store.Save(st)
	// Mutating the live state must not change the snapshot.
	st.A.Val[0] = 77
	st.Vectors["x"][0] = 77
	store.Restore(st)
	if st.A.Val[0] == 77 || st.Vectors["x"][0] == 77 {
		t.Fatal("snapshot shares memory with live state")
	}
}

func TestSaveOverwritesPrevious(t *testing.T) {
	st := liveState(5)
	store := NewStore()
	store.Save(st)
	st.Iteration = 20
	st.Vectors["x"][0] = 5
	store.Save(st)
	st.Vectors["x"][0] = 9
	store.Restore(st)
	if st.Iteration != 20 || st.Vectors["x"][0] != 5 {
		t.Fatal("second snapshot not used")
	}
}

func TestRestoreWithoutSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore().Restore(liveState(3))
}

func TestWordsAndCounters(t *testing.T) {
	st := liveState(10)
	store := NewStore()
	if store.HasSnapshot() || store.SavedIteration() != -1 {
		t.Fatal("empty store state wrong")
	}
	store.Save(st)
	wantWords := int64(st.A.MemoryWords() + 20)
	if store.Words() != wantWords {
		t.Fatalf("Words = %d, want %d", store.Words(), wantWords)
	}
	if StateWords(st) != wantWords {
		t.Fatalf("StateWords = %d, want %d", StateWords(st), wantWords)
	}
	store.Restore(st)
	store.Restore(st)
	saves, restores := store.Counters()
	if saves != 1 || restores != 2 {
		t.Fatalf("counters = %d, %d", saves, restores)
	}
	if store.SavedIteration() != 7 {
		t.Fatalf("SavedIteration = %d", store.SavedIteration())
	}
}

func TestNoMatrixState(t *testing.T) {
	st := &State{Vectors: map[string][]float64{"x": {1, 2, 3}}}
	store := NewStore()
	store.Save(st)
	st.Vectors["x"][1] = 9
	store.Restore(st)
	if st.Vectors["x"][1] != 2 {
		t.Fatal("vector-only state not restored")
	}
}
