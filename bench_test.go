// Package repro's root benchmarks regenerate the paper's evaluation:
//
//	BenchmarkTable1_*   — the Table 1 model-validation cells (s̃ vs s*).
//	BenchmarkFigure1_*  — the Figure 1 execution-time points per scheme
//	                      and fault rate.
//	BenchmarkSpMxV*     — the Section 3.2 overhead claims (protected vs
//	                      plain product, checksum setup amortisation).
//	Benchmark*Ablation* — the Section 5.1 design choices (ones vs random
//	                      weight vectors, norm vs componentwise tolerance).
//
// The experiment benchmarks default to downscaled matrices so a full
// `go test -bench=.` stays tractable; the cmd/faultsim and cmd/modelval
// binaries run the full-size versions.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/abft"
	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/tmr"
	"repro/internal/vec"
)

const benchScale = 48 // suite downscale for the experiment benchmarks

// benchMatrix builds one suite instance per id for the benchmarks.
func benchMatrix(b *testing.B, id int) (*simMatrix, []float64) {
	b.Helper()
	sm, ok := sim.SuiteByID(id)
	if !ok {
		b.Fatalf("unknown suite matrix %d", id)
	}
	a := sm.Generate(benchScale)
	rhs, _ := sim.RHS(a, int64(id))
	return &simMatrix{sm: sm, a: a}, rhs
}

type simMatrix struct {
	sm sim.SuiteMatrix
	a  *sparse.CSR
}

// --- Table 1: model validation (one benchmark per scheme on the smallest
// matrix; the full nine-matrix table is cmd/modelval) ---

func BenchmarkTable1_ABFTDetection_2213(b *testing.B) {
	b.ReportAllocs()
	benchTable1Cell(b, core.ABFTDetection)
}

func BenchmarkTable1_ABFTCorrection_2213(b *testing.B) {
	b.ReportAllocs()
	benchTable1Cell(b, core.ABFTCorrection)
}

func benchTable1Cell(b *testing.B, scheme core.Scheme) {
	m, rhs := benchMatrix(b, 2213)
	alpha := 1.0 / 16
	_, sTilde := core.OptimalIntervals(m.a, scheme, alpha, core.DefaultCostParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean, _, _ := sim.AverageTime(m.a, rhs, scheme, alpha, sTilde, 1, 1e-8, int64(i), 3)
		b.ReportMetric(mean, "model-s-time")
	}
}

// --- Figure 1: execution time vs fault rate, one benchmark per scheme at
// the paper's Table-1 fault rate and at a low rate (the crossover ends of
// the sweep; the full sweep is cmd/faultsim) ---

func BenchmarkFigure1_Online_341_HighRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.OnlineDetection, 1.0/16)
}

func BenchmarkFigure1_ABFTDetection_341_HighRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.ABFTDetection, 1.0/16)
}

func BenchmarkFigure1_ABFTCorrection_341_HighRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.ABFTCorrection, 1.0/16)
}

func BenchmarkFigure1_Online_341_LowRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.OnlineDetection, 1e-4)
}

func BenchmarkFigure1_ABFTDetection_341_LowRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.ABFTDetection, 1e-4)
}

func BenchmarkFigure1_ABFTCorrection_341_LowRate(b *testing.B) {
	b.ReportAllocs()
	benchFigure1Point(b, core.ABFTCorrection, 1e-4)
}

func benchFigure1Point(b *testing.B, scheme core.Scheme, alpha float64) {
	m, rhs := benchMatrix(b, 341)
	b.ResetTimer()
	var lastMean float64
	for i := 0; i < b.N; i++ {
		st, err := sim.RunOnce(m.a, rhs, scheme, alpha, 0, 0, 1e-8, int64(i))
		if err != nil {
			b.Logf("run %d did not converge: %v", i, err)
		}
		lastMean = st.SimTime
	}
	b.ReportMetric(lastMean, "model-seconds")
}

// --- Section 3.2: SpMxV overheads ---

func BenchmarkSpMxVPlain(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	x := randVec(m.a.Rows, 1)
	y := make([]float64, m.a.Rows)
	b.SetBytes(int64(12 * m.a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.a.MulVec(y, x)
	}
}

func BenchmarkSpMxVRobust(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	x := randVec(m.a.Rows, 1)
	y := make([]float64, m.a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.a.MulVecRobust(y, x)
	}
}

func BenchmarkSpMxVProtectedDetect(b *testing.B) {
	b.ReportAllocs()
	benchProtected(b, abft.Detect)
}

func BenchmarkSpMxVProtectedCorrect(b *testing.B) {
	b.ReportAllocs()
	benchProtected(b, abft.DetectCorrect)
}

func benchProtected(b *testing.B, mode abft.Mode) {
	m, _ := benchMatrix(b, 341)
	p := abft.NewProtected(m.a, mode)
	x := randVec(m.a.Rows, 1)
	ref := checksum.NewVector(x)
	y := make([]float64, m.a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := p.MulVec(y, x)
		if out := p.Verify(y, x, ref, sr); out.Detected {
			b.Fatal("false positive in benchmark")
		}
	}
}

func BenchmarkSpMxVParallel8(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	p := parallel.New(m.a, 8)
	x := randVec(m.a.Rows, 1)
	y := make([]float64, m.a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := p.MulVec(y, x); out.Detected {
			b.Fatal("false positive in benchmark")
		}
	}
}

func BenchmarkComputeChecksums(b *testing.B) {
	b.ReportAllocs()
	// The setup cost that is amortised over all products with one matrix.
	m, _ := benchMatrix(b, 341)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = checksum.NewMatrix(m.a)
	}
}

// --- Section 5.1 ablations ---

func BenchmarkWeightAblationOnes(b *testing.B) {
	b.ReportAllocs()
	// The paper keeps w = (1,…,1) because a random weight vector costs
	// extra multiplications; these two benchmarks quantify that claim.
	m, _ := benchMatrix(b, 341)
	ones := make([]float64, m.a.Rows)
	for i := range ones {
		ones[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = checksum.GeneralMatrixChecksum(m.a, ones)
	}
}

func BenchmarkWeightAblationRandom(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	w := checksum.RandomWeights(m.a.Rows, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = checksum.GeneralMatrixChecksum(m.a, w)
	}
}

func BenchmarkToleranceAblationNorm(b *testing.B) {
	b.ReportAllocs()
	benchTolerance(b, abft.TolNorm)
}

func BenchmarkToleranceAblationComponent(b *testing.B) {
	b.ReportAllocs()
	benchTolerance(b, abft.TolComponent)
}

func benchTolerance(b *testing.B, policy abft.TolerancePolicy) {
	m, _ := benchMatrix(b, 341)
	p := abft.NewProtected(m.a, abft.DetectCorrect)
	p.SetPolicy(policy)
	x := randVec(m.a.Rows, 1)
	ref := checksum.NewVector(x)
	y := make([]float64, m.a.Rows)
	sr := p.MulVec(y, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := p.Verify(y, x, ref, sr); out.Detected {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkRelModeAblation(b *testing.B) {
	b.ReportAllocs()
	// The selective-reliability pricing choice: reliable mode free in time
	// (the default) vs TMR charged as three sequential executions.
	m, rhs := benchMatrix(b, 2213)
	for _, extra := range []float64{0, 2} {
		name := "energyPriced"
		if extra > 0 {
			name = "timePriced3x"
		}
		b.Run(name, func(b *testing.B) {
			cp := core.DefaultCostParams()
			cp.RelModeExtra = extra
			for i := 0; i < b.N; i++ {
				_, st, err := core.Solve(m.a, rhs, core.Config{
					Scheme: core.ABFTCorrection, Tol: 1e-8, Costs: cp,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.SimTime, "model-seconds")
			}
		})
	}
}

// --- TMR and model micro-benchmarks ---

func BenchmarkTMRDot(b *testing.B) {
	b.ReportAllocs()
	x := randVec(1<<13, 1)
	y := randVec(1<<13, 2)
	var e tmr.Executor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Dot(x, y)
	}
}

func BenchmarkPlainDot(b *testing.B) {
	b.ReportAllocs()
	x := randVec(1<<13, 1)
	y := randVec(1<<13, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.Dot(x, y)
	}
}

func BenchmarkOptimalS(b *testing.B) {
	b.ReportAllocs()
	p := model.Params{T: 1, Tverif: 0.2, Tcp: 1.9, Trec: 1.9, Lambda: 1.0 / 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.OptimalS(16384)
	}
}

func BenchmarkOptimalPlacementDP(b *testing.B) {
	b.ReportAllocs()
	p := model.Params{T: 1, Tverif: 0.2, Tcp: 1.9, Trec: 1.9, Lambda: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = model.OptimalPlacement(p, 500)
	}
}

// --- Worker-pool engine: parallel vs sequential hot kernels ---
//
// The BenchmarkPool* pairs quantify the internal/pool rewiring on matrices
// above the parallel cutoff (n ≥ 100k rows). On a multicore host the
// *Parallel variants should beat their *Sequential baselines by roughly the
// core count; on a single-core host they degrade to the sequential path.

// benchPoolMatrix is a 2D Poisson system with n = 102400 ≥ 100k rows.
func benchPoolMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	return sparse.Poisson2D(320, 320)
}

func BenchmarkPoolSpMVSequential(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkPoolSpMVParallel(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	p := pool.Default()
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecParallel(p, y, x)
	}
}

func BenchmarkPoolSpMVRobustSequential(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRobust(y, x)
	}
}

func BenchmarkPoolSpMVRobustParallel(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	p := pool.Default()
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRobustParallel(p, y, x)
	}
}

func BenchmarkPoolProtectedBlocksSequential(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	pr := parallel.New(a, 2*pool.Default().Workers())
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := pr.MulVecOn(nil, y, x); out.Detected {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkPoolProtectedBlocksParallel(b *testing.B) {
	b.ReportAllocs()
	a := benchPoolMatrix(b)
	pr := parallel.New(a, 2*pool.Default().Workers())
	p := pool.Default()
	x := randVec(a.Cols, 1)
	y := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := pr.MulVecOn(p, y, x); out.Detected {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkPoolDotSequential(b *testing.B) {
	b.ReportAllocs()
	x := randVec(1<<20, 1)
	y := randVec(1<<20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.DotPool(nil, x, y)
	}
}

func BenchmarkPoolDotParallel(b *testing.B) {
	b.ReportAllocs()
	p := pool.Default()
	x := randVec(1<<20, 1)
	y := randVec(1<<20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.DotPool(p, x, y)
	}
}

func BenchmarkPoolCampaignSequential(b *testing.B) {
	b.ReportAllocs()
	m, rhs := benchMatrix(b, 2213)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AverageTimePool(nil, m.a, rhs, core.ABFTCorrection, 1.0/16, 2, 1, 1e-8, 1, 4)
	}
}

func BenchmarkPoolCampaignParallel(b *testing.B) {
	b.ReportAllocs()
	p := pool.Default()
	m, rhs := benchMatrix(b, 2213)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AverageTimePool(p, m.a, rhs, core.ABFTCorrection, 1.0/16, 2, 1, 1e-8, 1, 4)
	}
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// --- Zero-allocation steady-state solver iterations ---
//
// The Benchmark*SteadyState benchmarks run one full warm solve per op on a
// workspace: after the first op everything — matrix copy, vectors, checksum
// encodings, checkpoints — is recycled, so allocs/op must report 0 and
// ns/op divided by the iteration count approximates the per-iteration cost.

func BenchmarkCGSteadyState(b *testing.B) {
	b.ReportAllocs()
	benchSolverSteadyState(b, "cg")
}

func BenchmarkPCGSteadyState(b *testing.B) {
	b.ReportAllocs()
	benchSolverSteadyState(b, "pcg")
}

func benchSolverSteadyState(b *testing.B, kind string) {
	a := sparse.Poisson2D(48, 48)
	rhs := randVec(a.Rows, 3)
	ws := solver.NewWorkspace()
	opt := solver.Options{Tol: 1e-8, Ws: ws}
	run := func() (solver.Result, error) {
		if kind == "pcg" {
			return solver.PCG(a, rhs, opt)
		}
		return solver.CG(a, rhs, opt)
	}
	if _, err := run(); err != nil { // warm the workspace
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreSolveSteadyState(b *testing.B) {
	for _, scheme := range []core.Scheme{core.ABFTDetection, core.ABFTCorrection} {
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			a := sparse.Poisson2D(48, 48)
			rhs := randVec(a.Rows, 3)
			ws := core.NewWorkspace()
			cfg := core.Config{Scheme: scheme, Tol: 1e-8, S: 4, Ws: ws}
			if _, _, err := core.Solve(a, rhs, cfg); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(a, rhs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpMxVFusedSums vs BenchmarkSpMxVUnfusedSums quantify the fused
// SpMV+checksum traversal against the two-pass equivalent it replaced.

func BenchmarkSpMxVFusedSums(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	x := randVec(m.a.Rows, 1)
	y := make([]float64, m.a.Rows)
	b.SetBytes(int64(12 * m.a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = m.a.MulVecRobustSums(y, x)
	}
}

func BenchmarkSpMxVUnfusedSums(b *testing.B) {
	b.ReportAllocs()
	m, _ := benchMatrix(b, 341)
	x := randVec(m.a.Rows, 1)
	y := make([]float64, m.a.Rows)
	b.SetBytes(int64(12 * m.a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.a.MulVecRobust(y, x)
		s1, s2 := checksum.Sums(y)
		_, _ = s1, s2
		_ = vec.NormInf(y)
	}
}
